// R-T5 — Multi-task ablation: one shared encoder with 8 slot heads (the
// paper's design) vs dedicated single-task models for three representative
// slots (ego_action, actor_action, road_layout).
//
// Expected shape: the multi-task model roughly matches per-slot accuracy of
// the specialists while amortizing one encoder across all 8 slots (~1/K the
// total parameters/training time of K specialists).
#include "bench_common.hpp"

using namespace tsdx;
using namespace tsdx::bench;

namespace {

core::SlotMask single_slot(sdl::Slot slot) {
  core::SlotMask mask{};
  mask[static_cast<std::size_t>(slot)] = true;
  return mask;
}

}  // namespace

int main() {
  print_banner("R-T5", "multi-task heads vs dedicated single-task models");

  const data::Dataset ds =
      data::Dataset::synthesize(render_config(), kDatasetSize, kDataSeed);
  const auto splits = ds.split(0.7, 0.15);
  const core::TrainConfig tc = train_config(12);
  const core::ModelConfig cfg = model_config(core::AttentionKind::kDividedST);

  const sdl::Slot probes[] = {sdl::Slot::kEgoAction, sdl::Slot::kActorAction,
                              sdl::Slot::kRoadLayout};

  std::printf("%-26s %9s %8s  %10s %12s %12s\n", "model", "params", "train_s",
              "ego_action", "actor_action", "road_layout");

  // Shared-encoder multi-task model (the paper's design).
  {
    BuiltModel model = make_video_transformer(cfg);
    const EvalRow row =
        fit_and_evaluate(model, splits.train, splits.val, splits.test, tc);
    std::printf("%-26s %9lld %7.1fs  %10.3f %12.3f %12.3f\n",
                "multi_task (all 8 slots)",
                static_cast<long long>(row.params), row.train_seconds,
                row.metrics.slot_accuracy(sdl::Slot::kEgoAction),
                row.metrics.slot_accuracy(sdl::Slot::kActorAction),
                row.metrics.slot_accuracy(sdl::Slot::kRoadLayout));
  }
  // Dedicated specialists.
  double total_params = 0, total_time = 0;
  for (const sdl::Slot slot : probes) {
    BuiltModel model =
        make_video_transformer(cfg, kModelSeed, single_slot(slot));
    const EvalRow row =
        fit_and_evaluate(model, splits.train, splits.val, splits.test, tc);
    total_params += static_cast<double>(row.params);
    total_time += row.train_seconds;
    std::printf("%-26s %9lld %7.1fs  ",
                (std::string("single_task:") +
                 std::string(sdl::to_string(slot)))
                    .c_str(),
                static_cast<long long>(row.params), row.train_seconds);
    for (const sdl::Slot col : probes) {
      if (col == slot) {
        std::printf("%*.3f", col == sdl::Slot::kEgoAction        ? 10
                             : col == sdl::Slot::kActorAction    ? 13
                                                                 : 13,
                    row.metrics.slot_accuracy(col));
      } else {
        std::printf("%*s", col == sdl::Slot::kEgoAction        ? 10
                           : col == sdl::Slot::kActorAction    ? 13
                                                               : 13,
                    "-");
      }
    }
    std::printf("\n");
  }
  std::printf("\n3 specialists combined: %.0f params, %.1fs train — the "
              "multi-task model covers all 8 slots with one encoder.\n",
              total_params, total_time);
  return 0;
}
