// R-F5 (extension) — Camera-frame ablation: north-up (HD-map style) vs
// ego-aligned (stabilized dashcam BEV) rendering of the same scenarios.
//
// Expected shape: ego actions are *easier* in the north-up frame (the ego
// rectangle visibly rotates/shifts) and *harder* ego-aligned (the evidence
// moves into global scene motion); environment slots are frame-agnostic.
#include "bench_common.hpp"

using namespace tsdx;
using namespace tsdx::bench;

int main() {
  print_banner("R-F5", "camera frame: north-up vs ego-aligned BEV");

  const core::TrainConfig tc = train_config(12);

  std::printf("%-12s  %7s %10s %7s %6s %6s\n", "camera", "actions",
              "ego_action", "env", "meanAc", "meanF1");
  const sim::CameraFrame frames[] = {sim::CameraFrame::kNorthUp,
                                     sim::CameraFrame::kEgoAligned};
  for (const auto camera : frames) {
    sim::RenderConfig render = render_config();
    render.camera = camera;
    const data::Dataset ds =
        data::Dataset::synthesize(render, kDatasetSize, kDataSeed);
    const auto splits = ds.split(0.7, 0.15);
    BuiltModel model =
        make_video_transformer(model_config(core::AttentionKind::kDividedST));
    const EvalRow row =
        fit_and_evaluate(model, splits.train, splits.val, splits.test, tc);
    std::printf("%-12s  %7.3f %10.3f %7.3f %6.3f %6.3f\n",
                camera == sim::CameraFrame::kNorthUp ? "north_up"
                                                     : "ego_aligned",
                action_slots_accuracy(row.metrics),
                row.metrics.slot_accuracy(sdl::Slot::kEgoAction),
                env_slots_accuracy(row.metrics), row.metrics.mean_accuracy(),
                row.metrics.mean_macro_f1());
  }
  return 0;
}
