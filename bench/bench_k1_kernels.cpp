// R-K1 — Compute-kernel throughput (tsdx::tensor::kernels): GFLOP/s of the
// cache-blocked, panel-packed GEMM vs the seed's scalar loop (which carried a
// per-element zero-test branch in the hot path), on the exact GEMM shapes the
// bench-scale DividedST extractor runs per clip: tubelet embedding, QKV
// projections, attention QKᵀ / A·V, and the MLP. A final section measures
// end-to-end single-clip forward throughput at 1 thread vs the full intra-op
// budget.
//
// Expected shape: blocked-1t beats scalar on every shape (unit-stride packed
// panels auto-vectorize; the scalar loop's branch defeats vectorization), and
// the parallel column scales with cores on the larger shapes while small
// ones stay on the inline path (grain exceeds the row count).
//
// --smoke runs a reduced rep count and writes BENCH_K1.json (see
// tools/bench_gate.py, which the bench-smoke CI job runs against the
// committed bench/BENCH_K1_baseline.json).
#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "sim/clipgen.hpp"
#include "tensor/kernels/gemm.hpp"
#include "tensor/kernels/parallel_for.hpp"
#include "tensor/rng.hpp"

using namespace tsdx;
using namespace tsdx::bench;
namespace kernels = tsdx::tensor::kernels;

namespace {

/// The seed repo's matmul inner loop, kept verbatim as the baseline: row-wise
/// axpy with a per-element zero-skip branch, no blocking, no packing.
void seed_mm(std::int64_t m, std::int64_t k, std::int64_t n, const float* a,
             const float* b, float* c) {
  for (std::int64_t i = 0; i < m; ++i) {
    for (std::int64_t p = 0; p < k; ++p) {
      const float aip = a[i * k + p];
      if (aip == 0.0f) continue;
      const float* brow = b + p * n;
      float* crow = c + i * n;
      for (std::int64_t j = 0; j < n; ++j) crow[j] += aip * brow[j];
    }
  }
}

/// One GEMM the extractor runs, [batch] independent [m,k]x[k,n] products.
/// kT shapes (attention scores) are benched through mm_nt; the scalar
/// baseline sees a pre-transposed B, mirroring the seed's transpose_last2
/// materialization (transpose cost excluded — this bench isolates the GEMM).
struct ShapeSpec {
  const char* name;
  std::int64_t batch, m, k, n;
  bool nt;
};

// dim 48, depth 4, heads 4 (head_dim 12), 8 frames @ 32px, patch 8,
// tubelet 1 => 128 tokens, tubelet_dim 3*8*8 = 192, mlp_hidden 96.
// "-b8" rows are the same layer under a serving micro-batch of 8 clips.
constexpr ShapeSpec kShapes[] = {
    {"tubelet-embed", 1, 128, 192, 48, false},
    {"qkv-proj", 1, 128, 48, 48, false},
    {"attn-scores", 4, 128, 12, 128, true},
    {"attn-av", 4, 128, 128, 12, false},
    {"mlp-fc1", 1, 128, 48, 96, false},
    {"mlp-fc2", 1, 128, 96, 48, false},
    {"tubelet-embed-b8", 1, 1024, 192, 48, false},
    {"qkv-proj-b8", 1, 1024, 48, 48, false},
    {"attn-scores-b8", 32, 128, 12, 128, true},
    {"attn-av-b8", 32, 128, 128, 12, false},
};

/// Best-of-reps wall time for fn (seconds).
template <typename Fn>
double time_best(std::size_t reps, const Fn& fn) {
  double best = 1e300;
  for (std::size_t r = 0; r < reps; ++r) {
    const auto start = std::chrono::steady_clock::now();
    fn();
    best = std::min(best, std::chrono::duration<double>(
                              std::chrono::steady_clock::now() - start)
                              .count());
  }
  return best;
}

struct ShapeResult {
  const ShapeSpec* spec = nullptr;
  double scalar_gflops = 0.0;
  double blocked_gflops = 0.0;
  double parallel_gflops = 0.0;
};

ShapeResult bench_shape(const ShapeSpec& s, std::size_t reps,
                        std::size_t pool_threads) {
  tensor::Rng rng(kDataSeed ^ static_cast<std::uint64_t>(s.m * s.k * s.n));
  const auto fill = [&rng](std::vector<float>& v) {
    for (auto& x : v) x = static_cast<float>(rng.normal());
  };
  std::vector<float> a(static_cast<std::size_t>(s.batch * s.m * s.k));
  std::vector<float> b(static_cast<std::size_t>(s.batch * s.k * s.n));
  std::vector<float> c(static_cast<std::size_t>(s.batch * s.m * s.n));
  fill(a);
  fill(b);
  // Pre-transposed B for the scalar baseline on kT shapes (the seed path
  // materialized the transpose before its GEMM).
  std::vector<float> bt;
  if (s.nt) {
    bt.resize(b.size());
    for (std::int64_t g = 0; g < s.batch; ++g) {
      const float* src = b.data() + g * s.k * s.n;  // stored [n, k]
      float* dst = bt.data() + g * s.k * s.n;       // want [k, n]
      for (std::int64_t j = 0; j < s.n; ++j) {
        for (std::int64_t p = 0; p < s.k; ++p) {
          dst[p * s.n + j] = src[j * s.k + p];
        }
      }
    }
  }

  const double flops =
      2.0 * static_cast<double>(s.batch) * static_cast<double>(s.m) *
      static_cast<double>(s.k) * static_cast<double>(s.n);
  const auto gflops = [flops](double seconds) {
    return flops / seconds / 1e9;
  };

  ShapeResult result;
  result.spec = &s;
  result.scalar_gflops = gflops(time_best(reps, [&] {
    std::memset(c.data(), 0, c.size() * sizeof(float));
    const float* bp = s.nt ? bt.data() : b.data();
    for (std::int64_t g = 0; g < s.batch; ++g) {
      seed_mm(s.m, s.k, s.n, a.data() + g * s.m * s.k, bp + g * s.k * s.n,
              c.data() + g * s.m * s.n);
    }
  }));

  const auto run_blocked = [&] {
    std::memset(c.data(), 0, c.size() * sizeof(float));
    for (std::int64_t g = 0; g < s.batch; ++g) {
      kernels::mm(kernels::Trans::kN, s.nt ? kernels::Trans::kT
                                           : kernels::Trans::kN,
                  s.m, s.k, s.n, a.data() + g * s.m * s.k,
                  b.data() + g * s.k * s.n, c.data() + g * s.m * s.n);
    }
  };
  par::set_threads(1);
  result.blocked_gflops = gflops(time_best(reps, run_blocked));
  par::set_threads(pool_threads);
  result.parallel_gflops = gflops(time_best(reps, run_blocked));
  par::set_threads(1);
  return result;
}

double geomean(const std::vector<ShapeResult>& rows,
               double ShapeResult::*field) {
  double log_sum = 0.0;
  for (const ShapeResult& r : rows) log_sum += std::log(r.*field);
  return std::exp(log_sum / static_cast<double>(rows.size()));
}

void write_json(const char* path, const std::vector<ShapeResult>& rows,
                double forward_1t, double forward_nt,
                std::size_t pool_threads) {
  std::FILE* f = std::fopen(path, "w");
  if (!f) {
    std::fprintf(stderr, "bench_k1_kernels: cannot write %s\n", path);
    return;
  }
  std::fprintf(f, "{\n  \"bench\": \"bench_k1_kernels\",\n");
  std::fprintf(f, "  \"pool_threads\": %zu,\n", pool_threads);
  std::fprintf(f, "  \"shapes\": [\n");
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const ShapeResult& r = rows[i];
    std::fprintf(f,
                 "    {\"name\": \"%s\", \"batch\": %lld, \"m\": %lld, "
                 "\"k\": %lld, \"n\": %lld, \"scalar_gflops\": %.4f, "
                 "\"blocked_gflops\": %.4f, \"parallel_gflops\": %.4f}%s\n",
                 r.spec->name, static_cast<long long>(r.spec->batch),
                 static_cast<long long>(r.spec->m),
                 static_cast<long long>(r.spec->k),
                 static_cast<long long>(r.spec->n), r.scalar_gflops,
                 r.blocked_gflops, r.parallel_gflops,
                 i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n");
  std::fprintf(f,
               "  \"summary\": {\"scalar_geomean\": %.4f, "
               "\"blocked_geomean\": %.4f, \"parallel_geomean\": %.4f, "
               "\"forward_clips_per_s_1t\": %.4f, "
               "\"forward_clips_per_s_nt\": %.4f}\n}\n",
               geomean(rows, &ShapeResult::scalar_gflops),
               geomean(rows, &ShapeResult::blocked_gflops),
               geomean(rows, &ShapeResult::parallel_gflops), forward_1t,
               forward_nt);
  std::fclose(f);
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  const char* json_path = nullptr;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    } else {
      std::fprintf(stderr, "usage: %s [--smoke] [--json PATH]\n", argv[0]);
      return 2;
    }
  }
  if (smoke && json_path == nullptr) json_path = "BENCH_K1.json";

  std::size_t pool_threads =
      std::max(1u, std::thread::hardware_concurrency());
  if (par::env_override()) pool_threads = par::threads();

  print_banner("R-K1", "compute-kernel throughput (blocked GEMM + tsdx::par)");
  const std::size_t reps = smoke ? 5 : 20;
  std::printf("best of %zu reps per cell; parallel column uses %zu threads\n\n",
              reps, pool_threads);
  std::printf("%-20s %16s %9s %9s %9s %9s %9s\n", "shape (per clip)",
              "batch x m.k.n", "scalar", "blocked1t", "parallel", "blk-spdup",
              "par-spdup");

  std::vector<ShapeResult> rows;
  for (const ShapeSpec& s : kShapes) {
    rows.push_back(bench_shape(s, reps, pool_threads));
    const ShapeResult& r = rows.back();
    char dims[32];
    std::snprintf(dims, sizeof(dims), "%lldx%lld.%lld.%lld",
                  static_cast<long long>(s.batch),
                  static_cast<long long>(s.m), static_cast<long long>(s.k),
                  static_cast<long long>(s.n));
    std::printf("%-20s %16s %9.2f %9.2f %9.2f %8.2fx %8.2fx\n", s.name, dims,
                r.scalar_gflops, r.blocked_gflops, r.parallel_gflops,
                r.blocked_gflops / r.scalar_gflops,
                r.parallel_gflops / r.scalar_gflops);
  }
  std::printf("%-20s %16s %9.2f %9.2f %9.2f %8.2fx %8.2fx\n", "geomean", "",
              geomean(rows, &ShapeResult::scalar_gflops),
              geomean(rows, &ShapeResult::blocked_gflops),
              geomean(rows, &ShapeResult::parallel_gflops),
              geomean(rows, &ShapeResult::blocked_gflops) /
                  geomean(rows, &ShapeResult::scalar_gflops),
              geomean(rows, &ShapeResult::parallel_gflops) /
                  geomean(rows, &ShapeResult::scalar_gflops));

  // End-to-end: single-clip forward through the full extractor (all GEMMs
  // routed through the kernels), 1 thread vs the full intra-op budget.
  auto extractor = std::make_shared<core::ScenarioExtractor>(
      model_config(core::AttentionKind::kDividedST), kModelSeed);
  extractor->freeze();
  sim::ClipGenerator gen(render_config(), kDataSeed);
  const sim::VideoClip clip = gen.generate().video;
  const std::size_t fwd_reps = smoke ? 3 : 10;
  par::set_threads(1);
  const double fwd_1t =
      1.0 / time_best(fwd_reps, [&] { extractor->extract(clip); });
  par::set_threads(pool_threads);
  const double fwd_nt =
      1.0 / time_best(fwd_reps, [&] { extractor->extract(clip); });
  par::set_threads(1);
  std::printf("\nsingle-clip forward: %.2f clips/s @1 thread, "
              "%.2f clips/s @%zu threads (%.2fx)\n",
              fwd_1t, fwd_nt, pool_threads, fwd_nt / fwd_1t);

  if (json_path != nullptr) {
    write_json(json_path, rows, fwd_1t, fwd_nt, pool_threads);
    std::printf("wrote %s\n", json_path);
  }
  return 0;
}
