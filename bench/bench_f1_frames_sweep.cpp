// R-F1 — Accuracy vs number of input frames (2, 4, 8, 16) for the video
// transformer and both CNN baselines.
//
// Expected shape: action-slot accuracy rises with frame count and saturates;
// CNN-Avg barely benefits (it cannot use order); appearance slots are flat.
#include "bench_common.hpp"

using namespace tsdx;
using namespace tsdx::bench;

int main() {
  print_banner("R-F1", "accuracy vs temporal context (frame count)");

  const core::TrainConfig tc = train_config(8);
  const std::int64_t frame_counts[] = {2, 4, 8, 16};

  std::printf("%-14s %7s  %7s %7s %6s %6s  %8s\n", "model", "frames",
              "actions", "env", "meanAc", "meanF1", "train");

  for (const std::int64_t frames : frame_counts) {
    // Fresh dataset per frame count (same seed -> same scenarios, denser
    // temporal sampling).
    const data::Dataset ds = data::Dataset::synthesize(
        render_config(frames), kDatasetSize, kDataSeed);
    const auto splits = ds.split(0.7, 0.15);

    auto report = [&](BuiltModel model) {
      const EvalRow row =
          fit_and_evaluate(model, splits.train, splits.val, splits.test, tc);
      std::printf("%-14s %7lld  %7.3f %7.3f %6.3f %6.3f  %7.1fs\n",
                  row.name.c_str(), static_cast<long long>(frames),
                  action_slots_accuracy(row.metrics),
                  env_slots_accuracy(row.metrics),
                  row.metrics.mean_accuracy(), row.metrics.mean_macro_f1(),
                  row.train_seconds);
    };
    report(make_video_transformer(
        model_config(core::AttentionKind::kDividedST, frames)));
    report(make_cnn_lstm());
    report(make_cnn_avg());
    std::printf("\n");
  }
  return 0;
}
