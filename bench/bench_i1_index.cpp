// R-I1 — Scenario index at scale: build a million-description corpus, then
// measure the IVF index against the exact flat scan — recall@10 and
// queries/s across the nprobe sweep, plus build time for both backends.
//
// Acceptance (EXPERIMENTS.md R-I1): at >= 1M documents there must exist an
// nprobe setting with recall@10 >= 0.9 at >= 5x the flat scan's
// throughput; the summary line prints both numbers and the pass/fail
// verdict. --smoke runs a reduced corpus and writes BENCH_I1.json for the
// CI gate (tools/bench_gate.py vs bench/BENCH_I1_baseline.json, which
// gates recall_at_10 and speedup_vs_flat per nprobe shape).
//
// Documents are sim::sample_description draws — the same distribution the
// clip generator renders, minus the rendering, which is what makes a
// million of them cheap. The corpus is heavily duplicated (the SDL label
// space is finite), which is exactly the regime the paper's retrieval story
// lives in: near-duplicate scenarios quantize to the same inverted list, so
// small nprobe keeps high recall.
#include <cstring>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "index/flat.hpp"
#include "index/ivf.hpp"
#include "sim/world.hpp"
#include "tensor/rng.hpp"

using namespace tsdx;
using namespace tsdx::bench;
namespace ix = tsdx::index;  // alias: POSIX ::index() shadows the namespace

namespace {

constexpr std::size_t kTopK = 10;

struct ProbeResult {
  std::size_t nprobe = 0;
  double recall = 0;
  double queries_per_s = 0;
  double speedup = 0;
};

struct Scale {
  std::size_t docs;
  std::size_t nlist;
  std::size_t train_size;
  std::size_t queries;
  std::vector<std::size_t> nprobe_sweep;
};

double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

void write_json(const char* path, const Scale& scale, double flat_build_s,
                double ivf_build_s, double flat_qps,
                const std::vector<ProbeResult>& rows) {
  std::FILE* f = std::fopen(path, "w");
  if (!f) {
    std::fprintf(stderr, "bench_i1_index: cannot write %s\n", path);
    return;
  }
  std::fprintf(f, "{\n  \"bench\": \"bench_i1_index\",\n");
  std::fprintf(f, "  \"docs\": %zu,\n  \"nlist\": %zu,\n", scale.docs,
               scale.nlist);
  std::fprintf(f, "  \"gated_metrics\": [\"recall_at_10\", "
                  "\"speedup_vs_flat\"],\n");
  std::fprintf(f, "  \"shapes\": [\n");
  std::fprintf(f,
               "    {\"name\": \"flat_d%zu\", \"build_s\": %.3f, "
               "\"queries_per_s\": %.3f},\n",
               scale.docs, flat_build_s, flat_qps);
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const ProbeResult& r = rows[i];
    std::fprintf(f,
                 "    {\"name\": \"ivf_d%zu_p%zu\", \"nprobe\": %zu, "
                 "\"build_s\": %.3f, \"recall_at_10\": %.4f, "
                 "\"queries_per_s\": %.3f, \"speedup_vs_flat\": %.4f}%s\n",
                 scale.docs, r.nprobe, r.nprobe, ivf_build_s, r.recall,
                 r.queries_per_s, r.speedup, i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  const char* json_path = nullptr;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    } else {
      std::fprintf(stderr, "usage: %s [--smoke] [--json PATH]\n", argv[0]);
      return 2;
    }
  }
  if (smoke && json_path == nullptr) json_path = "BENCH_I1.json";

  print_banner("R-I1", "scenario index: IVF recall/speed vs exact scan");

  const Scale scale = smoke ? Scale{50'000, 64, 8'192, 50, {1, 2, 4, 8, 16}}
                            : Scale{1'000'000, 256, 32'768, 200,
                                    {1, 2, 4, 8, 16, 32}};

  // ---- corpus ---------------------------------------------------------------
  std::printf("sampling %zu descriptions...\n", scale.docs);
  tensor::Rng rng(kDataSeed);
  std::vector<sdl::ScenarioDescription> corpus;
  corpus.reserve(scale.docs);
  for (std::size_t i = 0; i < scale.docs; ++i) {
    corpus.push_back(sim::sample_description(rng));
  }
  tensor::Rng query_rng(kDataSeed + 1);
  std::vector<std::vector<float>> query_vecs;
  query_vecs.reserve(scale.queries);
  for (std::size_t i = 0; i < scale.queries; ++i) {
    query_vecs.push_back(
        sdl::scenario_to_vector(sim::sample_description(query_rng)));
  }

  // ---- build both indexes ---------------------------------------------------
  auto start = std::chrono::steady_clock::now();
  ix::FlatIndex flat;
  for (std::size_t id = 0; id < corpus.size(); ++id) {
    flat.insert(id, corpus[id]);
  }
  const double flat_build_s = seconds_since(start);
  std::printf("flat:  built %zu docs in %.2fs (%.1f MB)\n", flat.size(),
              flat_build_s,
              static_cast<double>(flat.memory_bytes()) / (1024.0 * 1024.0));

  ix::IvfConfig ivf_cfg;
  ivf_cfg.nlist = scale.nlist;
  ivf_cfg.train_size = scale.train_size;
  start = std::chrono::steady_clock::now();
  ix::IvfIndex ivf(ivf_cfg);
  {
    constexpr std::size_t kChunk = 65'536;
    std::vector<std::pair<ix::DocId, sdl::ScenarioDescription>> chunk;
    for (std::size_t begin = 0; begin < corpus.size(); begin += kChunk) {
      const std::size_t end = std::min(begin + kChunk, corpus.size());
      chunk.clear();
      chunk.reserve(end - begin);
      for (std::size_t id = begin; id < end; ++id) {
        chunk.emplace_back(id, corpus[id]);
      }
      ivf.insert_batch(chunk);
    }
  }
  const double ivf_build_s = seconds_since(start);
  std::printf("ivf:   built %zu docs in %.2fs (nlist=%zu, train=%zu, "
              "%.1f MB)\n",
              ivf.size(), ivf_build_s, scale.nlist, scale.train_size,
              static_cast<double>(ivf.memory_bytes()) / (1024.0 * 1024.0));

  // ---- exact ground truth + flat throughput ---------------------------------
  start = std::chrono::steady_clock::now();
  std::vector<std::vector<ix::Hit>> exact;
  exact.reserve(query_vecs.size());
  for (const auto& qv : query_vecs) {
    exact.push_back(flat.search_vector(qv, kTopK));
  }
  const double flat_qps =
      static_cast<double>(query_vecs.size()) / seconds_since(start);
  std::printf("flat:  %.1f queries/s (exact ground truth)\n\n", flat_qps);

  // ---- nprobe sweep ---------------------------------------------------------
  std::printf("%8s %12s %14s %10s\n", "nprobe", "recall@10", "queries/s",
              "speedup");
  std::vector<ProbeResult> rows;
  for (const std::size_t nprobe : scale.nprobe_sweep) {
    start = std::chrono::steady_clock::now();
    std::size_t found = 0, total = 0;
    for (std::size_t q = 0; q < query_vecs.size(); ++q) {
      const auto approx = ivf.search_vector(query_vecs[q], kTopK, {}, nprobe);
      for (const auto& want : exact[q]) {
        ++total;
        for (const auto& got : approx) {
          if (got.id == want.id) {
            ++found;
            break;
          }
        }
      }
    }
    const double elapsed = seconds_since(start);
    ProbeResult r;
    r.nprobe = nprobe;
    r.recall = static_cast<double>(found) / static_cast<double>(total);
    r.queries_per_s = static_cast<double>(query_vecs.size()) / elapsed;
    r.speedup = r.queries_per_s / flat_qps;
    rows.push_back(r);
    std::printf("%8zu %12.4f %14.1f %9.1fx\n", r.nprobe, r.recall,
                r.queries_per_s, r.speedup);
  }

  // ---- acceptance -----------------------------------------------------------
  // Best speedup among settings that clear the recall bar.
  const ProbeResult* best = nullptr;
  for (const ProbeResult& r : rows) {
    if (r.recall >= 0.9 && (best == nullptr || r.speedup > best->speedup)) {
      best = &r;
    }
  }
  if (best != nullptr) {
    std::printf("\nACCEPTANCE: pass — recall@10=%.4f (>= 0.9) at nprobe=%zu "
                "with %.1fx speedup over the flat scan (>= 5x: %s)\n",
                best->recall, best->nprobe, best->speedup,
                best->speedup >= 5.0 ? "yes" : "NO");
  } else {
    std::printf("\nACCEPTANCE: FAIL — no nprobe setting reached "
                "recall@10 >= 0.9\n");
  }

  if (json_path != nullptr) {
    write_json(json_path, scale, flat_build_s, ivf_build_s, flat_qps, rows);
    std::printf("wrote %s\n", json_path);
  }
  const bool accepted =
      !smoke ? (best != nullptr && best->speedup >= 5.0) : true;
  return accepted ? 0 : 1;
}
