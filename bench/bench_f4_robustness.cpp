// R-F4 (extension) — Robustness to input corruption: test accuracy of a
// trained extractor under sensor noise, tracker dropout, and frame drops of
// increasing severity (clean-trained; no corruption at training time).
//
// Expected shape: graceful degradation with noise; tracker dropout hits the
// salient-actor slots specifically; frame drops hit the action slots (the
// motion signal) while appearance slots hold.
#include "bench_common.hpp"
#include "data/corruption.hpp"

using namespace tsdx;
using namespace tsdx::bench;

namespace {

data::SlotMetrics evaluate_corrupted(const core::ScenarioModel& model,
                                     const data::Dataset& test,
                                     data::Corruption kind, double severity) {
  nn::Rng rng(515);  // fixed corruption stream per sweep point
  data::Dataset corrupted;
  for (std::size_t i = 0; i < test.size(); ++i) {
    data::Example ex = test[i];
    ex.video = data::corrupt_clip(ex.video, kind, severity, rng);
    corrupted.add(std::move(ex));
  }
  return core::Trainer::evaluate(model, corrupted);
}

}  // namespace

int main() {
  print_banner("R-F4", "robustness to input corruption (clean-trained model)");

  const data::Dataset ds =
      data::Dataset::synthesize(render_config(), kDatasetSize, kDataSeed);
  const auto splits = ds.split(0.7, 0.15);

  BuiltModel built =
      make_video_transformer(model_config(core::AttentionKind::kDividedST));
  core::Trainer(train_config(12)).fit(*built.model, splits.train, splits.val);
  built.model->set_training(false);

  std::printf("%-18s %9s  %7s %7s %7s %6s\n", "corruption", "severity",
              "env", "actions", "actor", "meanAc");
  const data::Corruption kinds[] = {data::Corruption::kSensorNoise,
                                    data::Corruption::kTrackerDropout,
                                    data::Corruption::kFrameDrop};
  const double severities[] = {0.0, 0.25, 0.5, 1.0};
  for (const auto kind : kinds) {
    for (const double severity : severities) {
      const data::SlotMetrics m =
          evaluate_corrupted(*built.model, splits.test, kind, severity);
      const double actor = (m.slot_accuracy(sdl::Slot::kActorType) +
                            m.slot_accuracy(sdl::Slot::kActorAction) +
                            m.slot_accuracy(sdl::Slot::kActorPosition)) /
                           3.0;
      std::printf("%-18s %9.2f  %7.3f %7.3f %7.3f %6.3f\n",
                  data::corruption_name(kind).c_str(), severity,
                  env_slots_accuracy(m), action_slots_accuracy(m), actor,
                  m.mean_accuracy());
    }
    std::printf("\n");
  }
  return 0;
}
