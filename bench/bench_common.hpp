// bench_common.hpp — shared harness for the experiment benches.
//
// Every bench binary regenerates one reconstructed table/figure (R-T*/R-F*,
// see DESIGN.md / EXPERIMENTS.md). They share a standard dataset recipe and
// a train-and-evaluate helper so rows are comparable across binaries.
//
// Scale note: models run at "bench" scale (32 px, 8 frames, dim 48) so the
// full suite finishes in minutes on a laptop CPU. The *comparative shape* of
// the numbers — which model wins, how trends move — is the reproduction
// target, not absolute accuracy on real driving footage (see DESIGN.md §2).
#pragma once

#include <chrono>
#include <cstdio>
#include <functional>
#include <memory>
#include <string>

#include "baseline/cnn.hpp"
#include "baseline/cnn3d.hpp"
#include "baseline/majority.hpp"
#include "core/extractor.hpp"
#include "core/trainer.hpp"
#include "obs/metrics.hpp"

namespace tsdx::bench {

// ---- standard configuration ---------------------------------------------------

inline constexpr std::int64_t kImageSize = 32;
inline constexpr std::int64_t kFrames = 8;
inline constexpr std::size_t kDatasetSize = 320;
inline constexpr std::uint64_t kDataSeed = 20240325;  // DATE'24 ASD day 1
inline constexpr std::uint64_t kModelSeed = 7;

inline sim::RenderConfig render_config(std::int64_t frames = kFrames,
                                       std::int64_t image = kImageSize) {
  sim::RenderConfig cfg;
  cfg.height = cfg.width = image;
  cfg.frames = frames;
  return cfg;
}

inline core::ModelConfig model_config(core::AttentionKind kind,
                                      std::int64_t frames = kFrames,
                                      std::int64_t image = kImageSize,
                                      std::int64_t patch = 8,
                                      std::int64_t tubelet = 1) {
  core::ModelConfig cfg;
  cfg.frames = frames;
  cfg.image_size = image;
  cfg.patch_size = patch;
  cfg.tubelet_frames = tubelet;
  cfg.dim = 48;
  cfg.depth = 4;
  cfg.heads = 4;
  cfg.mlp_ratio = 2;
  cfg.attention = kind;
  return cfg;
}

inline core::TrainConfig train_config(std::size_t epochs = 10) {
  core::TrainConfig tc;
  tc.epochs = epochs;
  tc.batch_size = 8;
  tc.lr = 3e-3f;
  tc.seed = 1;
  return tc;
}

// ---- model factories ------------------------------------------------------------

/// A model plus the Rng that must outlive it.
struct BuiltModel {
  std::string name;
  std::shared_ptr<nn::Rng> rng;
  std::shared_ptr<core::ScenarioModel> model;
};

inline BuiltModel make_video_transformer(const core::ModelConfig& cfg,
                                         std::uint64_t seed = kModelSeed,
                                         core::SlotMask mask = core::kAllSlots) {
  BuiltModel built;
  built.rng = std::make_shared<nn::Rng>(seed);
  auto backbone = std::make_unique<core::VideoTransformer>(cfg, *built.rng);
  built.name = backbone->name();
  built.model = std::make_shared<core::ScenarioModel>(std::move(backbone),
                                                      *built.rng, mask);
  return built;
}

inline BuiltModel make_cnn_avg(std::int64_t image = kImageSize,
                               std::int64_t dim = 48,
                               std::uint64_t seed = kModelSeed) {
  BuiltModel built;
  built.rng = std::make_shared<nn::Rng>(seed);
  auto backbone = std::make_unique<baseline::CnnAvgBackbone>(
      sim::kNumChannels, image, dim, *built.rng);
  built.name = backbone->name();
  built.model =
      std::make_shared<core::ScenarioModel>(std::move(backbone), *built.rng);
  return built;
}

inline BuiltModel make_cnn_lstm(std::int64_t image = kImageSize,
                                std::int64_t dim = 48,
                                std::uint64_t seed = kModelSeed) {
  BuiltModel built;
  built.rng = std::make_shared<nn::Rng>(seed);
  auto backbone = std::make_unique<baseline::CnnLstmBackbone>(
      sim::kNumChannels, image, dim, *built.rng);
  built.name = backbone->name();
  built.model =
      std::make_shared<core::ScenarioModel>(std::move(backbone), *built.rng);
  return built;
}

inline BuiltModel make_cnn_gru(std::int64_t image = kImageSize,
                               std::int64_t dim = 48,
                               std::uint64_t seed = kModelSeed) {
  BuiltModel built;
  built.rng = std::make_shared<nn::Rng>(seed);
  auto backbone = std::make_unique<baseline::CnnGruBackbone>(
      sim::kNumChannels, image, dim, *built.rng);
  built.name = backbone->name();
  built.model =
      std::make_shared<core::ScenarioModel>(std::move(backbone), *built.rng);
  return built;
}

inline BuiltModel make_c3d(std::int64_t frames = kFrames,
                           std::int64_t image = kImageSize,
                           std::int64_t dim = 48,
                           std::uint64_t seed = kModelSeed) {
  BuiltModel built;
  built.rng = std::make_shared<nn::Rng>(seed);
  auto backbone = std::make_unique<baseline::C3dBackbone>(
      sim::kNumChannels, frames, image, dim, *built.rng);
  built.name = backbone->name();
  built.model =
      std::make_shared<core::ScenarioModel>(std::move(backbone), *built.rng);
  return built;
}

// ---- train & evaluate ---------------------------------------------------------------

struct EvalRow {
  std::string name;
  std::int64_t params = 0;
  double train_seconds = 0.0;
  data::SlotMetrics metrics;
};

inline EvalRow fit_and_evaluate(BuiltModel& built,
                                const data::Dataset& train,
                                const data::Dataset& val,
                                const data::Dataset& test,
                                const core::TrainConfig& tc) {
  EvalRow row;
  row.name = built.name;
  row.params = built.model->num_parameters();
  const core::TrainResult result =
      core::Trainer(tc).fit(*built.model, train, val);
  row.train_seconds = result.train_seconds;
  built.model->set_training(false);
  row.metrics = core::Trainer::evaluate(*built.model, test);
  return row;
}

// ---- latency percentiles --------------------------------------------------------------
//
// Shared by every bench that reports tail latency (R-T3, R-S1): one sample
// store + one row format, so percentile columns are computed identically
// across tables. The histogram is tsdx::obs::LatencyHistogram — the same
// exact-percentile store the serving runtime reports through (src/serve
// aliases it too), so bench tables and live server stats agree by
// construction.

using LatencyHistogram = obs::LatencyHistogram;

/// Run `fn` `iterations` times and record each wall-clock duration (ms).
inline LatencyHistogram time_repeated(std::size_t iterations,
                                      const std::function<void()>& fn) {
  LatencyHistogram hist;
  for (std::size_t i = 0; i < iterations; ++i) {
    const auto start = std::chrono::steady_clock::now();
    fn();
    hist.record(std::chrono::duration<double, std::milli>(
                    std::chrono::steady_clock::now() - start)
                    .count());
  }
  return hist;
}

inline void print_latency_header(const char* label_column) {
  std::printf("%-26s %8s %8s %8s %8s %8s\n", label_column, "n", "p50ms",
              "p95ms", "p99ms", "meanms");
}

inline void print_latency_row(const std::string& label,
                              const LatencyHistogram& hist) {
  std::printf("%-26s %8zu %8.2f %8.2f %8.2f %8.2f\n", label.c_str(),
              hist.count(), hist.percentile(50.0), hist.percentile(95.0),
              hist.percentile(99.0), hist.mean());
}

// ---- printing -------------------------------------------------------------------------

inline double action_slots_accuracy(const data::SlotMetrics& m) {
  return (m.slot_accuracy(sdl::Slot::kEgoAction) +
          m.slot_accuracy(sdl::Slot::kActorAction)) /
         2.0;
}

inline double env_slots_accuracy(const data::SlotMetrics& m) {
  return (m.slot_accuracy(sdl::Slot::kRoadLayout) +
          m.slot_accuracy(sdl::Slot::kTimeOfDay) +
          m.slot_accuracy(sdl::Slot::kWeather) +
          m.slot_accuracy(sdl::Slot::kTrafficDensity)) /
         4.0;
}

inline void print_banner(const char* experiment, const char* title) {
  std::printf("\n=== %s: %s ===\n", experiment, title);
  std::printf("(dataset: %zu synthetic clips, %lld frames @ %lldx%lld px, "
              "seed %llu)\n\n",
              kDatasetSize, static_cast<long long>(kFrames),
              static_cast<long long>(kImageSize),
              static_cast<long long>(kImageSize),
              static_cast<unsigned long long>(kDataSeed));
}

}  // namespace tsdx::bench
