// R-T8 (extension) — Confidence calibration: per-slot expected calibration
// error and mean confidence of the trained extractor, before and after
// temperature scaling fitted on the validation split.
//
// Expected shape: the raw model is over-confident on the hard actor slots;
// temperature scaling reduces ECE without moving accuracy (argmax-invariant).
#include "bench_common.hpp"
#include "core/calibration.hpp"

using namespace tsdx;
using namespace tsdx::bench;

int main() {
  print_banner("R-T8", "per-slot confidence calibration");

  const data::Dataset ds =
      data::Dataset::synthesize(render_config(), kDatasetSize, kDataSeed);
  const auto splits = ds.split(0.7, 0.15);

  BuiltModel built =
      make_video_transformer(model_config(core::AttentionKind::kDividedST));
  core::Trainer(train_config(12)).fit(*built.model, splits.train, splits.val);
  built.model->set_training(false);

  const auto scaling = core::TemperatureScaling::fit(*built.model, splits.val);
  core::TemperatureScaling identity;

  std::printf("%-16s %6s  %8s %8s %8s  %8s %8s\n", "slot", "temp", "acc",
              "conf_raw", "ece_raw", "conf_cal", "ece_cal");
  double raw_sum = 0.0, cal_sum = 0.0;
  for (std::size_t s = 0; s < sdl::kNumSlots; ++s) {
    const auto slot = static_cast<sdl::Slot>(s);
    const auto raw = identity.report(*built.model, splits.test, slot);
    const auto cal = scaling.report(*built.model, splits.test, slot);
    raw_sum += raw.ece;
    cal_sum += cal.ece;
    std::printf("%-16s %6.2f  %8.3f %8.3f %8.3f  %8.3f %8.3f\n",
                std::string(sdl::to_string(slot)).c_str(),
                scaling.temperature(slot), raw.accuracy, raw.mean_confidence,
                raw.ece, cal.mean_confidence, cal.ece);
  }
  std::printf("%-16s %6s  %8s %8s %8.3f  %8s %8.3f\n", "mean", "", "", "",
              raw_sum / sdl::kNumSlots, "", cal_sum / sdl::kNumSlots);
  return 0;
}
