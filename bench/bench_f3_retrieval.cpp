// R-F3 — Scenario retrieval: "find clips like this one" using
// (a) Scenario2Vector embeddings of *extracted* descriptions,
// (b) Scenario2Vector embeddings of ground-truth descriptions (oracle
//     upper bound), (c) raw-pixel cosine similarity, (d) random ranking.
//
// Relevance: a library clip is relevant to a query iff it matches the
// query's ego action AND salient actor type (the search intents the SDL is
// designed for). Expected shape: truth >> extracted >> pixels > random.
#include <algorithm>
#include <numeric>

#include "bench_common.hpp"
#include "index/flat.hpp"
#include "sdl/embedding.hpp"

using namespace tsdx;
using namespace tsdx::bench;
namespace ix = tsdx::index;  // alias: POSIX ::index() shadows the namespace

namespace {

bool relevant(const sdl::ScenarioDescription& a,
              const sdl::ScenarioDescription& b) {
  return a.ego_action == b.ego_action &&
         a.salient_actor.type == b.salient_actor.type;
}

double pixel_similarity(const sim::VideoClip& a, const sim::VideoClip& b) {
  double dot = 0, na = 0, nb = 0;
  for (std::size_t i = 0; i < a.data.size(); ++i) {
    dot += a.data[i] * b.data[i];
    na += a.data[i] * a.data[i];
    nb += b.data[i] * b.data[i];
  }
  return dot / (std::sqrt(na) * std::sqrt(nb) + 1e-12);
}

struct RankingScores {
  double p1 = 0, p5 = 0, map = 0;
};

/// Scores: for each query, rank library items by `score(query, item)` desc.
template <class ScoreFn>
RankingScores evaluate_ranking(const data::Dataset& queries,
                               const data::Dataset& library, ScoreFn score) {
  std::vector<std::vector<bool>> rankings;
  double p1 = 0, p5 = 0;
  for (std::size_t q = 0; q < queries.size(); ++q) {
    std::vector<std::pair<double, std::size_t>> scored;
    for (std::size_t i = 0; i < library.size(); ++i) {
      scored.emplace_back(score(q, i), i);
    }
    std::stable_sort(scored.begin(), scored.end(),
                     [](const auto& a, const auto& b) { return a.first > b.first; });
    std::vector<bool> rel;
    for (const auto& [s, i] : scored) {
      rel.push_back(relevant(queries[q].description, library[i].description));
    }
    p1 += data::precision_at_k(rel, 1);
    p5 += data::precision_at_k(rel, 5);
    rankings.push_back(std::move(rel));
  }
  RankingScores out;
  out.p1 = p1 / static_cast<double>(queries.size());
  out.p5 = p5 / static_cast<double>(queries.size());
  out.map = data::mean_average_precision(rankings);
  return out;
}

/// SDL variant: rank through a tsdx::index::FlatIndex holding the library
/// (DocId == library position, k == library size: the full exact ranking).
///
/// This reproduces the pre-index score-function path bit for bit: the index
/// stores the same scenario_to_vector embeddings, scores with the same
/// float accumulation order as sdl::cosine_similarity, and breaks score
/// ties by ascending DocId — exactly what stable_sort over (double)score
/// with ascending insertion order produced.
RankingScores evaluate_index_ranking(const data::Dataset& queries,
                                     const data::Dataset& library,
                                     const ix::FlatIndex& index) {
  std::vector<std::vector<bool>> rankings;
  double p1 = 0, p5 = 0;
  for (std::size_t q = 0; q < queries.size(); ++q) {
    const std::vector<ix::Hit> hits =
        index.search({queries[q].description, {}, library.size()});
    std::vector<bool> rel;
    for (const ix::Hit& hit : hits) {
      rel.push_back(relevant(queries[q].description,
                             library[hit.id].description));
    }
    p1 += data::precision_at_k(rel, 1);
    p5 += data::precision_at_k(rel, 5);
    rankings.push_back(std::move(rel));
  }
  RankingScores out;
  out.p1 = p1 / static_cast<double>(queries.size());
  out.p5 = p5 / static_cast<double>(queries.size());
  out.map = data::mean_average_precision(rankings);
  return out;
}

void print_scores(const char* name, const RankingScores& s) {
  std::printf("%-22s %6.3f %6.3f %6.3f\n", name, s.p1, s.p5, s.map);
}

}  // namespace

int main() {
  print_banner("R-F3", "scenario retrieval via extracted descriptions");

  const data::Dataset ds =
      data::Dataset::synthesize(render_config(), kDatasetSize, kDataSeed);
  const auto splits = ds.split(0.6, 0.1);
  const data::Dataset& library = splits.test;  // ~96 clips
  // Queries: a slice of the library itself (leave-one-in retrieval is fine —
  // every method sees the same setup).
  const data::Dataset queries = library.take(24);

  // Train the extractor and extract a description for every library clip.
  std::printf("training extractor (divided space-time)...\n");
  BuiltModel built =
      make_video_transformer(model_config(core::AttentionKind::kDividedST));
  core::Trainer(train_config(12)).fit(*built.model, splits.train, splits.val);
  built.model->set_training(false);
  core::ScenarioExtractor extractor(built.model);

  std::vector<sdl::ScenarioDescription> extracted;
  for (std::size_t i = 0; i < library.size(); ++i) {
    extracted.push_back(extractor.extract(library[i].video).description);
  }
  // The SDL rankings run through the scenario index: one FlatIndex per
  // description source, library position as the DocId.
  ix::FlatIndex truth_index, extracted_index;
  for (std::size_t i = 0; i < library.size(); ++i) {
    truth_index.insert(i, library[i].description);
    extracted_index.insert(i, extracted[i]);
  }

  std::printf("\n%-22s %6s %6s %6s\n", "ranking method", "P@1", "P@5", "mAP");
  print_scores("sdl_truth (oracle)",
               evaluate_index_ranking(queries, library, truth_index));
  print_scores("sdl_extracted (ours)",
               evaluate_index_ranking(queries, library, extracted_index));
  print_scores("raw_pixels",
               evaluate_ranking(queries, library, [&](std::size_t q,
                                                      std::size_t i) {
                 return pixel_similarity(queries[q].video, library[i].video);
               }));
  {
    nn::Rng rng(4242);
    std::vector<std::vector<double>> noise(
        queries.size(), std::vector<double>(library.size()));
    for (auto& row : noise) {
      for (auto& v : row) v = rng.uniform();
    }
    print_scores("random",
                 evaluate_ranking(queries, library,
                                  [&](std::size_t q, std::size_t i) {
                                    return noise[q][i];
                                  }));
  }
  std::printf("\nrelevance: library clip matches query's ego action AND "
              "salient actor type.\nqueries=%zu library=%zu\n", queries.size(),
              library.size());
  return 0;
}
