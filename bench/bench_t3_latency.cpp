// R-T3 — Embedded-inference cost (DATE = resource-constrained platforms):
// single-clip CPU latency and parameter count for every model family,
// measured with google-benchmark.
//
// Expected shape: SpaceOnly < DividedST ~ FactorizedEncoder < Joint (token
// count squared in the joint attention); CNN-Avg cheapest overall; CNN-LSTM
// adds recurrent cost.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <vector>

#include "bench_common.hpp"

using namespace tsdx;
using namespace tsdx::bench;

namespace {

/// One random clip batch of size 1 at bench geometry.
nn::Tensor make_clip(nn::Rng& rng) {
  return nn::Tensor::rand_uniform(
      {1, kFrames, sim::kNumChannels, kImageSize, kImageSize}, rng, 0.0f, 1.0f);
}

void run_inference(benchmark::State& state, BuiltModel built) {
  built.model->set_training(false);
  nn::Rng rng(99);
  const nn::Tensor clip = make_clip(rng);
  for (auto _ : state) {
    const auto preds = built.model->predict(clip);
    benchmark::DoNotOptimize(preds);
  }
  state.counters["params"] =
      static_cast<double>(built.model->num_parameters());
  state.counters["clips_per_s"] = benchmark::Counter(
      static_cast<double>(state.iterations()), benchmark::Counter::kIsRate);
}

void BM_VtJoint(benchmark::State& state) {
  run_inference(state,
                make_video_transformer(model_config(core::AttentionKind::kJoint)));
}
void BM_VtDividedST(benchmark::State& state) {
  run_inference(state, make_video_transformer(
                           model_config(core::AttentionKind::kDividedST)));
}
void BM_VtFactorized(benchmark::State& state) {
  run_inference(state, make_video_transformer(model_config(
                           core::AttentionKind::kFactorizedEncoder)));
}
void BM_VtSpaceOnly(benchmark::State& state) {
  run_inference(state, make_video_transformer(
                           model_config(core::AttentionKind::kSpaceOnly)));
}
void BM_CnnAvg(benchmark::State& state) { run_inference(state, make_cnn_avg()); }
void BM_CnnLstm(benchmark::State& state) {
  run_inference(state, make_cnn_lstm());
}
void BM_CnnGru(benchmark::State& state) { run_inference(state, make_cnn_gru()); }
void BM_C3d(benchmark::State& state) { run_inference(state, make_c3d()); }

BENCHMARK(BM_VtJoint)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_VtDividedST)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_VtFactorized)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_VtSpaceOnly)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_CnnAvg)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_CnnLstm)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_CnnGru)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_C3d)->Unit(benchmark::kMillisecond);

/// Latency as a function of frame count for the paper's model (scaling row
/// of the table).
void BM_VtDividedFrames(benchmark::State& state) {
  const std::int64_t frames = state.range(0);
  BuiltModel built = make_video_transformer(
      model_config(core::AttentionKind::kDividedST, frames));
  built.model->set_training(false);
  nn::Rng rng(100);
  const nn::Tensor clip = nn::Tensor::rand_uniform(
      {1, frames, sim::kNumChannels, kImageSize, kImageSize}, rng, 0.0f, 1.0f);
  for (auto _ : state) {
    const auto preds = built.model->predict(clip);
    benchmark::DoNotOptimize(preds);
  }
}
BENCHMARK(BM_VtDividedFrames)->Arg(2)->Arg(4)->Arg(8)->Arg(16)->Unit(
    benchmark::kMillisecond);

/// Tail-latency table (p50/p95/p99 per model), via the shared percentile
/// helper in bench_common.hpp — the same distribution machinery the serving
/// runtime reports (R-S1), so the two tables are directly comparable.
void print_percentile_table() {
  constexpr std::size_t kIterations = 40;
  std::printf("\nSingle-clip latency percentiles (%zu iterations):\n",
              kIterations);
  print_latency_header("model");
  const std::vector<BuiltModel (*)()> factories = {
      +[] { return make_video_transformer(
                model_config(core::AttentionKind::kDividedST)); },
      +[] { return make_video_transformer(
                model_config(core::AttentionKind::kJoint)); },
      +[] { return make_cnn_avg(); },
      +[] { return make_cnn_gru(); },
  };
  for (const auto& factory : factories) {
    BuiltModel built = factory();
    built.model->set_training(false);
    nn::Rng rng(99);
    const nn::Tensor clip = make_clip(rng);
    const LatencyHistogram hist = time_repeated(kIterations, [&] {
      const auto preds = built.model->predict(clip);
      benchmark::DoNotOptimize(preds);
    });
    print_latency_row(built.name, hist);
  }
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  print_percentile_table();
  return 0;
}
