// R-T6 (extension) — Token-pooling ablation: unweighted mean vs learned
// single-query attention pooling, for the divided space-time and space-only
// encoders.
//
// Expected shape: attention pooling helps the slots that depend on one small
// region (the salient-actor slots — the pool can lock onto the tracked
// mask), at the cost of `dim` extra parameters.
#include "bench_common.hpp"

using namespace tsdx;
using namespace tsdx::bench;

int main() {
  print_banner("R-T6", "token pooling: mean vs learned attention pool");

  const data::Dataset ds =
      data::Dataset::synthesize(render_config(), kDatasetSize, kDataSeed);
  const auto splits = ds.split(0.7, 0.15);
  const core::TrainConfig tc = train_config(12);

  std::printf("%-16s %-10s %9s  %7s %7s %6s %6s  %8s\n", "attention",
              "pooling", "params", "actor", "actions", "meanAc", "meanF1",
              "train");

  const core::AttentionKind kinds[] = {core::AttentionKind::kDividedST,
                                       core::AttentionKind::kSpaceOnly};
  const core::Pooling poolings[] = {core::Pooling::kMean,
                                    core::Pooling::kAttention};
  for (const auto kind : kinds) {
    for (const auto pooling : poolings) {
      core::ModelConfig cfg = model_config(kind);
      cfg.pooling = pooling;
      BuiltModel model = make_video_transformer(cfg);
      const EvalRow row =
          fit_and_evaluate(model, splits.train, splits.val, splits.test, tc);
      const auto& m = row.metrics;
      const double actor =
          (m.slot_accuracy(sdl::Slot::kActorType) +
           m.slot_accuracy(sdl::Slot::kActorAction) +
           m.slot_accuracy(sdl::Slot::kActorPosition)) /
          3.0;
      std::printf("%-16s %-10s %9lld  %7.3f %7.3f %6.3f %6.3f  %7.1fs\n",
                  core::to_string(kind).c_str(),
                  core::to_string(pooling).c_str(),
                  static_cast<long long>(row.params), actor,
                  action_slots_accuracy(m), m.mean_accuracy(),
                  m.mean_macro_f1(), row.train_seconds);
    }
  }
  return 0;
}
