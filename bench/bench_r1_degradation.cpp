// R-R1 — Graceful degradation under overload (tsdx::serve fault tolerance):
// drive the server with an *open-loop* arrival process (requests arrive on a
// clock, whether or not earlier ones finished — unlike R-S1's closed loop,
// where clients self-throttle) at multiples of its measured capacity, and
// report where every request went: answered by the primary model, answered
// degraded by the fallback, shed by the bounded queue, or expired at its
// deadline.
//
// Expected shape: below capacity everything completes on the primary. Past
// capacity the bounded queue saturates; sustained saturation trips the
// circuit breaker, and the mix shifts from primary to degraded-fallback
// answers (cheap, O(1)) plus shed/expired requests — but the server keeps
// answering and never wedges. This is the quantitative version of the
// fault-tolerance contract in DESIGN.md §9.
//
// R-R2 (second half of this binary) scales the same open-loop arrival
// process out over a tsdx::serve::Router fleet of 1/2/4 replicas and runs a
// three-phase arc per fleet size: steady load, hard-kill of replica 0 at
// peak, then revive. The acceptance contract: goodput (answered/s, primary
// + degraded) retains >= 70% through the kill — via failover retries when a
// sibling exists, via the fleet fallback when the fleet goes fully dark —
// and recovers after the heal. --smoke runs reduced request counts and
// writes BENCH_R1.json for the CI gate (tools/bench_gate.py vs
// bench/BENCH_R1_baseline.json, which gates goodput_retention and
// recovery_ratio per fleet shape — ratios, so the gate is
// machine-speed-independent).
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "serve/fallback.hpp"
#include "serve/queue.hpp"
#include "serve/router.hpp"
#include "serve/server.hpp"
#include "serve/thread_pool.hpp"
#include "sim/clipgen.hpp"

using namespace tsdx;
using namespace tsdx::bench;

namespace {

constexpr std::size_t kClipPool = 16;
constexpr std::size_t kCalibrationClips = 24;

std::vector<sim::VideoClip> make_clip_pool() {
  sim::ClipGenerator gen(render_config(), kDataSeed);
  std::vector<sim::VideoClip> clips;
  clips.reserve(kClipPool);
  for (std::size_t i = 0; i < kClipPool; ++i) {
    clips.push_back(gen.generate().video);
  }
  return clips;
}

/// All-zero slot labels (straight road, day, clear, sparse, ego cruising,
/// no salient actor) — the degraded answer used while the circuit is open.
std::shared_ptr<serve::MajorityFallback> make_fallback() {
  sdl::SlotLabels labels{};
  std::array<float, sdl::kNumSlots> confidence{};
  confidence.fill(1.0f);
  return std::make_shared<serve::MajorityFallback>(labels, confidence);
}

struct LoadPoint {
  double multiplier = 0.0;     ///< offered load as a fraction of capacity
  double offered_cps = 0.0;    ///< offered clips/s
  double answered_cps = 0.0;   ///< completed (primary + degraded) clips/s
  serve::ServerStats stats;
};

LoadPoint run_load_point(
    const std::shared_ptr<const core::ScenarioExtractor>& extractor,
    double multiplier, double capacity_cps, double service_ms,
    const std::vector<sim::VideoClip>& clips, std::size_t requests) {
  serve::ServerConfig cfg;
  cfg.workers = 1;
  cfg.max_batch = 8;
  cfg.batch_window = std::chrono::microseconds{0};
  // A small queue + shed-oldest keeps waiting time bounded: under overload
  // the freshest clips win, which is the right policy for live video.
  cfg.queue_capacity = 8;
  cfg.overflow = serve::OverflowPolicy::kShedOldest;
  cfg.fallback = make_fallback();
  // Saturation (not faults) is the trip condition under overload: a queue
  // pinned at capacity for ~4 service times means the primary has fallen
  // behind and the fallback should absorb the excess.
  cfg.circuit.saturation_window =
      std::chrono::milliseconds(static_cast<long>(4.0 * service_ms) + 1);
  cfg.circuit.cooldown =
      std::chrono::milliseconds(static_cast<long>(8.0 * service_ms) + 1);
  serve::InferenceServer server(extractor, cfg);

  const double offered_cps = multiplier * capacity_cps;
  const auto interval = std::chrono::duration_cast<
      serve::InferenceServer::Clock::duration>(
      std::chrono::duration<double>(1.0 / offered_cps));
  // Deadline budget: a request older than ~6 service times is stale; expire
  // it rather than serve an answer nobody is waiting for any more.
  const auto deadline_budget = std::chrono::duration_cast<
      serve::InferenceServer::Clock::duration>(
      std::chrono::duration<double, std::milli>(6.0 * service_ms));

  std::vector<std::future<core::ExtractionResult>> futures;
  futures.reserve(requests);
  const auto start = serve::InferenceServer::Clock::now();
  auto next_arrival = start;
  for (std::size_t i = 0; i < requests; ++i) {
    std::this_thread::sleep_until(next_arrival);
    next_arrival += interval;
    const auto now = serve::InferenceServer::Clock::now();
    futures.push_back(
        server.submit(clips[i % clips.size()], now + deadline_budget));
  }
  server.drain();
  const double seconds = std::chrono::duration<double>(
                             serve::InferenceServer::Clock::now() - start)
                             .count();
  // Consume every future so no exception is silently dropped; the stats
  // counters classify the outcomes.
  for (auto& f : futures) {
    try {
      static_cast<void>(f.get());
    } catch (const std::exception&) {
      // shed / expired / stopped — counted by the server.
    }
  }

  LoadPoint point;
  point.multiplier = multiplier;
  point.offered_cps = offered_cps;
  point.stats = server.stats();
  point.answered_cps = static_cast<double>(point.stats.completed) / seconds;
  return point;
}

// ---- R-R2: multi-replica overload arc -------------------------------------------

struct FleetPhase {
  double answered_cps = 0.0;
  double p99_ms = 0.0;
  std::uint64_t completed = 0;   ///< primary + degraded answers this phase
  std::uint64_t degraded = 0;
  std::uint64_t failed = 0;      ///< expired / shed / exhausted retries
  std::uint64_t retries = 0;
};

struct FleetRow {
  std::size_t replicas = 0;
  FleetPhase before, kill, heal;
  double retention = 0.0;  ///< kill answered/s over before answered/s
  double recovery = 0.0;   ///< heal answered/s over before answered/s
};

/// Block until the router has resolved every accepted request, without
/// tearing it down (drain() is terminal; the arc reuses one router across
/// its three phases).
void settle(serve::Router& router) {
  while (router.stats().pending != 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
}

/// One open-loop phase against a live router: `requests` arrivals at
/// `offered_cps`, each with a deadline, completion latency measured
/// client-side by a waiter pool. `kill_at` (if set) hard-kills replica 0
/// after that many arrivals — mid-stream, the way real replicas die.
FleetPhase run_fleet_phase(serve::Router& router,
                           const std::vector<sim::VideoClip>& clips,
                           std::size_t requests, double offered_cps,
                           double deadline_ms,
                           std::optional<std::size_t> kill_at) {
  using Clock = serve::Router::Clock;
  const serve::RouterStats before = router.stats();

  struct InFlight {
    Clock::time_point submitted;
    std::future<core::ExtractionResult> future;
  };
  serve::BoundedQueue<InFlight> inflight(requests + 1,
                                         serve::OverflowPolicy::kReject);
  LatencyHistogram hist;
  std::mutex hist_mutex;
  serve::ThreadPool waiters;
  waiters.spawn(4, [&](std::size_t) {
    while (auto item = inflight.pop()) {
      try {
        static_cast<void>(item->future.get());
      } catch (const std::exception&) {
        continue;  // expired / shed — classified by the router's counters
      }
      const double ms = std::chrono::duration<double, std::milli>(
                            Clock::now() - item->submitted)
                            .count();
      std::lock_guard<std::mutex> lock(hist_mutex);
      hist.record(ms);
    }
  });

  const auto interval =
      std::chrono::duration_cast<Clock::duration>(
          std::chrono::duration<double>(1.0 / offered_cps));
  const auto deadline_budget = std::chrono::duration_cast<Clock::duration>(
      std::chrono::duration<double, std::milli>(deadline_ms));
  const auto start = Clock::now();
  auto next_arrival = start;
  for (std::size_t i = 0; i < requests; ++i) {
    if (kill_at && i == *kill_at) router.kill_replica(0);
    std::this_thread::sleep_until(next_arrival);
    next_arrival += interval;
    const auto now = Clock::now();
    InFlight entry;
    entry.submitted = now;
    try {
      entry.future =
          router.submit(clips[i % clips.size()], now + deadline_budget);
    } catch (const std::exception&) {
      continue;  // refused at the front door — counted as route.shed
    }
    static_cast<void>(inflight.push(std::move(entry)));
  }
  settle(router);
  const double seconds =
      std::chrono::duration<double>(Clock::now() - start).count();
  inflight.close();
  waiters.join();

  const serve::RouterStats after = router.stats();
  FleetPhase phase;
  phase.completed = after.completed - before.completed;
  phase.degraded = after.degraded - before.degraded;
  phase.failed = after.failed - before.failed;
  phase.retries = after.retries - before.retries;
  phase.answered_cps = static_cast<double>(phase.completed) / seconds;
  phase.p99_ms = hist.count() > 0 ? hist.percentile(99.0) : 0.0;
  return phase;
}

/// The full arc for one fleet size: steady -> kill replica 0 at peak ->
/// revive. Offered load is 0.7x the fleet's nominal capacity (N x the
/// calibrated single-worker rate) so the *healthy* fleet has headroom and
/// the kill is what pushes the survivors into overload.
FleetRow run_fleet_arc(
    const std::shared_ptr<const core::ScenarioExtractor>& extractor,
    std::size_t replicas, double capacity_cps, double service_ms,
    const std::vector<sim::VideoClip>& clips, std::size_t requests) {
  serve::RouterConfig cfg;
  cfg.replicas = replicas;
  cfg.server.workers = 1;
  cfg.server.max_batch = 8;
  cfg.server.batch_window = std::chrono::microseconds{0};
  cfg.server.queue_capacity = 8;
  // kReject (not shed-oldest): a full replica queue bounces the dispatch so
  // the *router* spills it to a less-loaded sibling — and only sheds to the
  // fleet fallback when every queue is full.
  cfg.server.overflow = serve::OverflowPolicy::kReject;
  cfg.fallback = make_fallback();
  cfg.relay_threads = 4;
  cfg.max_attempts = 3;
  cfg.retry_budget_floor = 16.0;
  cfg.metrics = std::make_shared<obs::Registry>();
  serve::Router router(extractor, cfg);

  // Offered load: 0.7x the fleet's *usable* capacity. Replicas only add
  // throughput up to the core count — on a 1-core CI host a 4-replica fleet
  // still serves ~1x the calibrated rate, and offering 2.8x would drown
  // every phase equally and measure nothing but the fallback. The ratios
  // stay meaningful on any machine: the healthy fleet has headroom, the
  // kill is what removes capacity.
  const std::size_t cores = std::max<std::size_t>(
      1, std::thread::hardware_concurrency());
  const double offered_cps =
      0.7 * static_cast<double>(std::min(replicas, cores)) * capacity_cps;
  // Deadline: ~8 service times — enough headroom for one failover retry,
  // tight enough that a wedged fleet expires requests instead of queueing
  // answers nobody is waiting for.
  const double deadline_ms = 8.0 * service_ms;

  FleetRow row;
  row.replicas = replicas;
  // Unrecorded warmup: fault the code paths and thread stacks in (first
  // extract per worker is cold) so `before` measures steady state, not
  // startup — the retention/recovery ratios divide by it.
  static_cast<void>(run_fleet_phase(router, clips, requests / 2, offered_cps,
                                    deadline_ms, std::nullopt));
  row.before = run_fleet_phase(router, clips, requests, offered_cps,
                               deadline_ms, std::nullopt);
  row.kill = run_fleet_phase(router, clips, requests, offered_cps,
                             deadline_ms, requests / 3);
  router.revive_replica(0);
  row.heal = run_fleet_phase(router, clips, requests, offered_cps,
                             deadline_ms, std::nullopt);
  router.drain();

  row.retention = row.before.answered_cps > 0.0
                      ? row.kill.answered_cps / row.before.answered_cps
                      : 0.0;
  row.recovery = row.before.answered_cps > 0.0
                     ? row.heal.answered_cps / row.before.answered_cps
                     : 0.0;
  return row;
}

void write_json(const char* path, const std::vector<FleetRow>& rows) {
  std::FILE* f = std::fopen(path, "w");
  if (!f) {
    std::fprintf(stderr, "bench_r1_degradation: cannot write %s\n", path);
    return;
  }
  std::fprintf(f, "{\n  \"bench\": \"bench_r1_degradation\",\n");
  std::fprintf(f,
               "  \"gated_metrics\": [\"goodput_retention\", "
               "\"recovery_ratio\"],\n");
  std::fprintf(f, "  \"shapes\": [\n");
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const FleetRow& r = rows[i];
    std::fprintf(f,
                 "    {\"name\": \"fleet_r%zu\", \"replicas\": %zu, "
                 "\"goodput_retention\": %.4f, \"recovery_ratio\": %.4f, "
                 "\"before_answered_per_s\": %.3f, "
                 "\"kill_answered_per_s\": %.3f, "
                 "\"heal_answered_per_s\": %.3f, "
                 "\"kill_degraded\": %llu, \"kill_retries\": %llu, "
                 "\"p99_ms_kill\": %.3f}%s\n",
                 r.replicas, r.replicas, r.retention, r.recovery,
                 r.before.answered_cps, r.kill.answered_cps,
                 r.heal.answered_cps,
                 static_cast<unsigned long long>(r.kill.degraded),
                 static_cast<unsigned long long>(r.kill.retries),
                 r.kill.p99_ms, i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  const char* json_path = nullptr;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    } else {
      std::fprintf(stderr, "usage: %s [--smoke] [--json PATH]\n", argv[0]);
      return 2;
    }
  }
  if (smoke && json_path == nullptr) json_path = "BENCH_R1.json";

  print_banner("R-R1", "graceful degradation under open-loop overload");
  const std::size_t requests = smoke ? 48 : 120;

  auto extractor = std::make_shared<core::ScenarioExtractor>(
      model_config(core::AttentionKind::kDividedST), kModelSeed);
  extractor->freeze();
  const std::vector<sim::VideoClip> clips = make_clip_pool();

  // Calibrate capacity: mean sequential service time of the primary model.
  const auto cal_start = std::chrono::steady_clock::now();
  for (std::size_t i = 0; i < kCalibrationClips; ++i) {
    static_cast<void>(extractor->extract(clips[i % clips.size()]));
  }
  const double service_ms =
      std::chrono::duration<double, std::milli>(
          std::chrono::steady_clock::now() - cal_start)
          .count() /
      static_cast<double>(kCalibrationClips);
  const double capacity_cps = 1000.0 / service_ms;
  std::printf("calibration: %.2f ms/clip sequential -> capacity ~%.1f "
              "clips/s (1 worker)\n",
              service_ms, capacity_cps);
  std::printf("%zu open-loop requests per point, queue=8 shed-oldest, "
              "deadline=6 service times, majority fallback\n\n",
              requests);

  std::printf("%-8s %9s %10s %8s %8s %6s %8s %6s %10s\n", "load", "offered/s",
              "answered/s", "primary", "degraded", "shed", "expired", "trips",
              "circuit");
  const std::vector<double> multipliers =
      smoke ? std::vector<double>{0.5, 2.0}
            : std::vector<double>{0.5, 1.0, 2.0, 4.0};
  for (const double m : multipliers) {
    const LoadPoint p =
        run_load_point(extractor, m, capacity_cps, service_ms, clips,
                       requests);
    const serve::ServerStats& s = p.stats;
    char label[16];
    std::snprintf(label, sizeof(label), "%.1fx", p.multiplier);
    std::printf("%-8s %9.1f %10.1f %8llu %8llu %6llu %8llu %6llu %10s\n",
                label, p.offered_cps, p.answered_cps,
                static_cast<unsigned long long>(s.completed -
                                                s.degraded_completions),
                static_cast<unsigned long long>(s.degraded_completions),
                static_cast<unsigned long long>(s.shed),
                static_cast<unsigned long long>(s.deadline_expired),
                static_cast<unsigned long long>(s.circuit_trips),
                serve::to_string(s.circuit_state));
  }

  std::printf(
      "\n(primary + degraded + shed + expired = %zu accepted requests per "
      "row.\n degraded answers carry an explicit warning — see "
      "serve::kDegradedWarning — so\n no client mistakes a base-rate answer "
      "for a model extraction.)\n",
      requests);

  // ---- R-R2: replica-kill arc over router fleets ----------------------------
  std::printf("\n=== R-R2: replica kill + heal over a router fleet ===\n");
  std::printf("(0.7x fleet capacity open-loop, kill replica 0 after 1/3 of "
              "the kill phase,\n revive before the heal phase; %zu requests "
              "per phase, queue=8 reject ->\n router spills to siblings, "
              "fleet-level majority fallback)\n\n",
              requests);
  std::printf("%-8s %12s %12s %12s %10s %10s %10s %9s\n", "fleet",
              "before c/s", "kill c/s", "heal c/s", "retention", "recovery",
              "p99kill", "retries");
  std::vector<FleetRow> rows;
  for (const std::size_t n : {std::size_t{1}, std::size_t{2},
                              std::size_t{4}}) {
    const FleetRow r =
        run_fleet_arc(extractor, n, capacity_cps, service_ms, clips,
                      requests);
    rows.push_back(r);
    char label[16];
    std::snprintf(label, sizeof(label), "r=%zu", r.replicas);
    std::printf("%-8s %12.1f %12.1f %12.1f %9.2fx %9.2fx %8.1fms %9llu\n",
                label, r.before.answered_cps, r.kill.answered_cps,
                r.heal.answered_cps, r.retention, r.recovery, r.kill.p99_ms,
                static_cast<unsigned long long>(r.kill.retries));
  }

  bool accepted = true;
  for (const FleetRow& r : rows) {
    if (r.retention < 0.70 || r.recovery < 0.80) accepted = false;
  }
  std::printf("\nACCEPTANCE: %s — every fleet size must retain >= 70%% "
              "goodput through the kill\n(failover retries with siblings, "
              "fleet fallback when fully dark) and recover to\n>= 80%% after "
              "the heal.\n",
              accepted ? "pass" : "FAIL");

  if (json_path != nullptr) {
    write_json(json_path, rows);
    std::printf("wrote %s\n", json_path);
  }
  return (smoke || accepted) ? 0 : 1;
}
