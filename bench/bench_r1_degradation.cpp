// R-R1 — Graceful degradation under overload (tsdx::serve fault tolerance):
// drive the server with an *open-loop* arrival process (requests arrive on a
// clock, whether or not earlier ones finished — unlike R-S1's closed loop,
// where clients self-throttle) at multiples of its measured capacity, and
// report where every request went: answered by the primary model, answered
// degraded by the fallback, shed by the bounded queue, or expired at its
// deadline.
//
// Expected shape: below capacity everything completes on the primary. Past
// capacity the bounded queue saturates; sustained saturation trips the
// circuit breaker, and the mix shifts from primary to degraded-fallback
// answers (cheap, O(1)) plus shed/expired requests — but the server keeps
// answering and never wedges. This is the quantitative version of the
// fault-tolerance contract in DESIGN.md §9.
#include <chrono>
#include <cstdio>
#include <future>
#include <memory>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "serve/fallback.hpp"
#include "serve/server.hpp"
#include "sim/clipgen.hpp"

using namespace tsdx;
using namespace tsdx::bench;

namespace {

constexpr std::size_t kClipPool = 16;
constexpr std::size_t kRequests = 120;  // per offered-load point
constexpr std::size_t kCalibrationClips = 24;

std::vector<sim::VideoClip> make_clip_pool() {
  sim::ClipGenerator gen(render_config(), kDataSeed);
  std::vector<sim::VideoClip> clips;
  clips.reserve(kClipPool);
  for (std::size_t i = 0; i < kClipPool; ++i) {
    clips.push_back(gen.generate().video);
  }
  return clips;
}

/// All-zero slot labels (straight road, day, clear, sparse, ego cruising,
/// no salient actor) — the degraded answer used while the circuit is open.
std::shared_ptr<serve::MajorityFallback> make_fallback() {
  sdl::SlotLabels labels{};
  std::array<float, sdl::kNumSlots> confidence{};
  confidence.fill(1.0f);
  return std::make_shared<serve::MajorityFallback>(labels, confidence);
}

struct LoadPoint {
  double multiplier = 0.0;     ///< offered load as a fraction of capacity
  double offered_cps = 0.0;    ///< offered clips/s
  double answered_cps = 0.0;   ///< completed (primary + degraded) clips/s
  serve::ServerStats stats;
};

LoadPoint run_load_point(
    const std::shared_ptr<const core::ScenarioExtractor>& extractor,
    double multiplier, double capacity_cps, double service_ms,
    const std::vector<sim::VideoClip>& clips) {
  serve::ServerConfig cfg;
  cfg.workers = 1;
  cfg.max_batch = 8;
  cfg.batch_window = std::chrono::microseconds{0};
  // A small queue + shed-oldest keeps waiting time bounded: under overload
  // the freshest clips win, which is the right policy for live video.
  cfg.queue_capacity = 8;
  cfg.overflow = serve::OverflowPolicy::kShedOldest;
  cfg.fallback = make_fallback();
  // Saturation (not faults) is the trip condition under overload: a queue
  // pinned at capacity for ~4 service times means the primary has fallen
  // behind and the fallback should absorb the excess.
  cfg.circuit.saturation_window =
      std::chrono::milliseconds(static_cast<long>(4.0 * service_ms) + 1);
  cfg.circuit.cooldown =
      std::chrono::milliseconds(static_cast<long>(8.0 * service_ms) + 1);
  serve::InferenceServer server(extractor, cfg);

  const double offered_cps = multiplier * capacity_cps;
  const auto interval = std::chrono::duration_cast<
      serve::InferenceServer::Clock::duration>(
      std::chrono::duration<double>(1.0 / offered_cps));
  // Deadline budget: a request older than ~6 service times is stale; expire
  // it rather than serve an answer nobody is waiting for any more.
  const auto deadline_budget = std::chrono::duration_cast<
      serve::InferenceServer::Clock::duration>(
      std::chrono::duration<double, std::milli>(6.0 * service_ms));

  std::vector<std::future<core::ExtractionResult>> futures;
  futures.reserve(kRequests);
  const auto start = serve::InferenceServer::Clock::now();
  auto next_arrival = start;
  for (std::size_t i = 0; i < kRequests; ++i) {
    std::this_thread::sleep_until(next_arrival);
    next_arrival += interval;
    const auto now = serve::InferenceServer::Clock::now();
    futures.push_back(
        server.submit(clips[i % clips.size()], now + deadline_budget));
  }
  server.drain();
  const double seconds = std::chrono::duration<double>(
                             serve::InferenceServer::Clock::now() - start)
                             .count();
  // Consume every future so no exception is silently dropped; the stats
  // counters classify the outcomes.
  for (auto& f : futures) {
    try {
      static_cast<void>(f.get());
    } catch (const std::exception&) {
      // shed / expired / stopped — counted by the server.
    }
  }

  LoadPoint point;
  point.multiplier = multiplier;
  point.offered_cps = offered_cps;
  point.stats = server.stats();
  point.answered_cps = static_cast<double>(point.stats.completed) / seconds;
  return point;
}

}  // namespace

int main() {
  print_banner("R-R1", "graceful degradation under open-loop overload");

  auto extractor = std::make_shared<core::ScenarioExtractor>(
      model_config(core::AttentionKind::kDividedST), kModelSeed);
  extractor->freeze();
  const std::vector<sim::VideoClip> clips = make_clip_pool();

  // Calibrate capacity: mean sequential service time of the primary model.
  const auto cal_start = std::chrono::steady_clock::now();
  for (std::size_t i = 0; i < kCalibrationClips; ++i) {
    static_cast<void>(extractor->extract(clips[i % clips.size()]));
  }
  const double service_ms =
      std::chrono::duration<double, std::milli>(
          std::chrono::steady_clock::now() - cal_start)
          .count() /
      static_cast<double>(kCalibrationClips);
  const double capacity_cps = 1000.0 / service_ms;
  std::printf("calibration: %.2f ms/clip sequential -> capacity ~%.1f "
              "clips/s (1 worker)\n",
              service_ms, capacity_cps);
  std::printf("%zu open-loop requests per point, queue=8 shed-oldest, "
              "deadline=6 service times, majority fallback\n\n",
              kRequests);

  std::printf("%-8s %9s %10s %8s %8s %6s %8s %6s %10s\n", "load", "offered/s",
              "answered/s", "primary", "degraded", "shed", "expired", "trips",
              "circuit");
  const double multipliers[] = {0.5, 1.0, 2.0, 4.0};
  for (const double m : multipliers) {
    const LoadPoint p =
        run_load_point(extractor, m, capacity_cps, service_ms, clips);
    const serve::ServerStats& s = p.stats;
    char label[16];
    std::snprintf(label, sizeof(label), "%.1fx", p.multiplier);
    std::printf("%-8s %9.1f %10.1f %8llu %8llu %6llu %8llu %6llu %10s\n",
                label, p.offered_cps, p.answered_cps,
                static_cast<unsigned long long>(s.completed -
                                                s.degraded_completions),
                static_cast<unsigned long long>(s.degraded_completions),
                static_cast<unsigned long long>(s.shed),
                static_cast<unsigned long long>(s.deadline_expired),
                static_cast<unsigned long long>(s.circuit_trips),
                serve::to_string(s.circuit_state));
  }

  std::printf(
      "\n(primary + degraded + shed + expired = %zu accepted requests per "
      "row.\n degraded answers carry an explicit warning — see "
      "serve::kDegradedWarning — so\n no client mistakes a base-rate answer "
      "for a model extraction.)\n",
      kRequests);
  return 0;
}
