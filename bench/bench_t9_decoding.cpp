// R-T9 (extension) — Semantically-constrained decoding: per-slot argmax vs
// exact maximum-likelihood search over the valid-combination set.
//
// Expected shape: constrained decoding lifts validity to 100% by definition,
// and recovers (never loses) slot accuracy on the examples it repairs —
// invalid argmax outputs are exactly the low-confidence ones.
#include "bench_common.hpp"
#include "core/decoding.hpp"

using namespace tsdx;
using namespace tsdx::bench;

namespace {

struct DecodeStats {
  data::SlotMetrics metrics;
  double validity = 0.0;
};

DecodeStats evaluate_decoder(const core::ScenarioModel& model,
                             const data::Dataset& test, bool constrained) {
  DecodeStats stats;
  std::vector<sdl::SlotLabels> all;
  const std::size_t batch_size = 16;
  for (std::size_t start = 0; start < test.size(); start += batch_size) {
    const std::size_t count = std::min(batch_size, test.size() - start);
    const data::Batch batch = test.make_batch(start, count);
    const auto preds = core::decode_batch(model, batch.video, constrained);
    for (std::size_t i = 0; i < preds.size(); ++i) {
      stats.metrics.add(test[start + i].labels, preds[i]);
      all.push_back(preds[i]);
    }
  }
  stats.validity = core::validity_rate(all);
  return stats;
}

}  // namespace

int main() {
  print_banner("R-T9", "argmax vs semantically-constrained decoding");

  const data::Dataset ds =
      data::Dataset::synthesize(render_config(), kDatasetSize, kDataSeed);
  const auto splits = ds.split(0.7, 0.15);

  BuiltModel built =
      make_video_transformer(model_config(core::AttentionKind::kDividedST));
  core::Trainer(train_config(12)).fit(*built.model, splits.train, splits.val);
  built.model->set_training(false);

  std::printf("%-14s %9s %7s %7s %7s %7s\n", "decoder", "validity", "meanAc",
              "meanF1", "exact", "actions");
  for (const bool constrained : {false, true}) {
    const DecodeStats stats =
        evaluate_decoder(*built.model, splits.test, constrained);
    std::printf("%-14s %8.1f%% %7.3f %7.3f %7.3f %7.3f\n",
                constrained ? "constrained" : "argmax", 100.0 * stats.validity,
                stats.metrics.mean_accuracy(), stats.metrics.mean_macro_f1(),
                stats.metrics.exact_match(),
                action_slots_accuracy(stats.metrics));
  }
  std::printf("\nconstrained = exact ML search over the %zu semantically "
              "valid label combinations.\n",
              sdl::all_valid_label_combinations().size());
  return 0;
}
