// R-S1 — Serving throughput & tail latency (tsdx::serve runtime):
// aggregate clips/s and p50/p95/p99 request latency as a function of worker
// count × micro-batch window, against the single-threaded for-loop baseline
// every offline user of ScenarioExtractor::extract() runs today.
//
// Expected shape: throughput scales with workers (≈linear until the core
// count), a non-zero batch window raises mean batch size (amortizing
// per-dispatch overhead) at the cost of p50 latency, and tail latency grows
// with queue depth under a saturating closed-loop load. The for-loop
// baseline defines 1.0× throughput and the best achievable p50 at
// concurrency 1.
#include <cstdio>
#include <cstring>
#include <future>
#include <vector>

#include "bench_common.hpp"
#include "serve/server.hpp"
#include "serve/thread_pool.hpp"
#include "sim/clipgen.hpp"

using namespace tsdx;
using namespace tsdx::bench;

namespace {

// Full run; --smoke (the bench-smoke CI job) quarters the request count and
// drops the batching-window sweep so the bench finishes in CI seconds while
// still exercising the full submit -> batch -> extract -> resolve path.
std::size_t g_requests = 160;            // per configuration
constexpr std::size_t kProducers = 4;    // client threads driving the server
constexpr std::size_t kClipPool = 16;    // distinct clips, submitted round-robin

std::vector<sim::VideoClip> make_clip_pool() {
  sim::ClipGenerator gen(render_config(), kDataSeed);
  std::vector<sim::VideoClip> clips;
  clips.reserve(kClipPool);
  for (std::size_t i = 0; i < kClipPool; ++i) {
    clips.push_back(gen.generate().video);
  }
  return clips;
}

struct RunResult {
  double seconds = 0.0;
  serve::ServerStats stats;
};

/// Closed-loop load: kProducers threads submit g_requests total and block on
/// each future (an RPC client's view of the server).
RunResult run_server_config(
    const std::shared_ptr<const core::ScenarioExtractor>& extractor,
    std::size_t workers, std::chrono::microseconds window,
    std::size_t max_batch, const std::vector<sim::VideoClip>& clips) {
  serve::ServerConfig cfg;
  cfg.workers = workers;
  cfg.max_batch = max_batch;
  cfg.batch_window = window;
  cfg.queue_capacity = 256;
  cfg.overflow = serve::OverflowPolicy::kBlock;
  serve::InferenceServer server(extractor, cfg);

  const auto start = std::chrono::steady_clock::now();
  serve::ThreadPool::run(kProducers, [&](std::size_t p) {
    const std::size_t n = g_requests / kProducers;
    for (std::size_t i = 0; i < n; ++i) {
      server.submit(clips[(p * n + i) % clips.size()]).get();
    }
  });
  server.drain();
  RunResult result;
  result.seconds = std::chrono::duration<double>(
                       std::chrono::steady_clock::now() - start)
                       .count();
  result.stats = server.stats();
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else {
      std::fprintf(stderr, "usage: %s [--smoke]\n", argv[0]);
      return 2;
    }
  }
  if (smoke) g_requests = 40;

  print_banner("R-S1", "serving throughput & tail latency (tsdx::serve)");

  // The model every configuration shares: the paper's DividedST extractor at
  // bench scale, frozen for inference.
  auto extractor = std::make_shared<core::ScenarioExtractor>(
      model_config(core::AttentionKind::kDividedST), kModelSeed);
  extractor->freeze();
  const std::vector<sim::VideoClip> clips = make_clip_pool();

  // Baseline: the offline for-loop (one thread, batch 1, no queue).
  LatencyHistogram baseline_lat;
  const auto base_start = std::chrono::steady_clock::now();
  for (std::size_t i = 0; i < g_requests; ++i) {
    const auto start = std::chrono::steady_clock::now();
    const core::ExtractionResult result =
        extractor->extract(clips[i % clips.size()]);
    baseline_lat.record(std::chrono::duration<double, std::milli>(
                            std::chrono::steady_clock::now() - start)
                            .count());
    static_cast<void>(result);
  }
  const double base_seconds = std::chrono::duration<double>(
                                  std::chrono::steady_clock::now() - base_start)
                                  .count();
  const double base_throughput = static_cast<double>(g_requests) / base_seconds;

  std::printf("%zu requests per configuration, %zu producer threads, "
              "max_batch 8, block policy\n\n",
              g_requests, kProducers);
  std::printf("%-26s %9s %8s %6s %7s %8s %8s %8s\n", "config", "clips/s",
              "speedup", "batch", "p50ms", "p95ms", "p99ms", "meanms");
  std::printf("%-26s %9.1f %8s %6.2f %7.2f %8.2f %8.2f %8.2f\n",
              "for-loop baseline", base_throughput, "1.00x", 1.0,
              baseline_lat.percentile(50.0), baseline_lat.percentile(95.0),
              baseline_lat.percentile(99.0), baseline_lat.mean());

  const std::size_t worker_counts[] = {1, 2, 4};
  const std::chrono::microseconds windows[] = {
      std::chrono::microseconds(0), std::chrono::microseconds(2000)};
  const std::size_t window_count = smoke ? 1 : 2;  // smoke: skip the sweep
  double one_worker_throughput[2] = {0.0, 0.0};
  serve::ServerStats last_stats;
  for (std::size_t w = 0; w < window_count; ++w) {
    for (const std::size_t workers : worker_counts) {
      const RunResult run =
          run_server_config(extractor, workers, windows[w], 8, clips);
      const double throughput =
          static_cast<double>(run.stats.completed) / run.seconds;
      if (workers == 1) one_worker_throughput[w] = throughput;
      char label[64];
      std::snprintf(label, sizeof(label), "serve w=%zu window=%lldus", workers,
                    static_cast<long long>(windows[w].count()));
      char speedup[16];
      std::snprintf(speedup, sizeof(speedup), "%.2fx",
                    throughput / one_worker_throughput[w]);
      std::printf("%-26s %9.1f %8s %6.2f %7.2f %8.2f %8.2f %8.2f\n", label,
                  throughput, speedup, run.stats.mean_batch_size(),
                  run.stats.latency.percentile(50.0),
                  run.stats.latency.percentile(95.0),
                  run.stats.latency.percentile(99.0), run.stats.latency.mean());
      last_stats = run.stats;
    }
  }

  // Fault-tolerance counters (see DESIGN.md §9). This closed-loop bench
  // injects nothing, so every counter should read zero with the circuit
  // closed — a healthy-path sanity check; bench_r1_degradation is where
  // they move.
  std::printf("\n%s\n", last_stats.fault_summary().c_str());

  std::printf(
      "\n(speedup column is vs the 1-worker server at the same window; "
      "compare clips/s against the for-loop row for end-to-end gain.\n"
      " scaling tops out at the machine's core count — this host has %u.)\n",
      std::thread::hardware_concurrency());
  return 0;
}
