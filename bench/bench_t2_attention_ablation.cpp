// R-T2 — Attention-factorization ablation: Joint vs DividedST vs
// FactorizedEncoder vs SpaceOnly, at matched depth/width.
//
// Expected shape: the three temporal variants beat SpaceOnly on the action
// slots (ego_action / actor_action); Joint is the most expensive per epoch;
// DividedST / FactorizedEncoder reach comparable accuracy at lower cost.
#include "bench_common.hpp"

using namespace tsdx;
using namespace tsdx::bench;

int main() {
  print_banner("R-T2", "space-time attention factorization ablation");

  const data::Dataset ds =
      data::Dataset::synthesize(render_config(), kDatasetSize, kDataSeed);
  const auto splits = ds.split(0.7, 0.15);
  const core::TrainConfig tc = train_config(12);

  std::printf("%-16s %9s %8s  %7s %7s %7s  %6s %6s\n", "attention", "params",
              "train_s", "actions", "env", "actor", "meanAc", "meanF1");

  const core::AttentionKind kinds[] = {
      core::AttentionKind::kSpaceOnly,
      core::AttentionKind::kJoint,
      core::AttentionKind::kDividedST,
      core::AttentionKind::kFactorizedEncoder,
  };
  for (core::AttentionKind kind : kinds) {
    BuiltModel model = make_video_transformer(model_config(kind));
    const EvalRow row =
        fit_and_evaluate(model, splits.train, splits.val, splits.test, tc);
    const auto& m = row.metrics;
    const double actor =
        (m.slot_accuracy(sdl::Slot::kActorType) +
         m.slot_accuracy(sdl::Slot::kActorAction) +
         m.slot_accuracy(sdl::Slot::kActorPosition)) /
        3.0;
    std::printf("%-16s %9lld %7.1fs  %7.3f %7.3f %7.3f  %6.3f %6.3f\n",
                core::to_string(kind).c_str(),
                static_cast<long long>(row.params), row.train_seconds,
                action_slots_accuracy(m), env_slots_accuracy(m), actor,
                m.mean_accuracy(), m.mean_macro_f1());
  }
  std::printf("\nactions = mean(ego_action, actor_action); env = mean of the "
              "4 environment slots;\nactor = mean of the 3 salient-actor "
              "slots.\n");
  return 0;
}
