// R-T1 — Main result: per-slot extraction accuracy of the video transformer
// vs CNN baselines vs the majority-class floor (the paper's headline table).
//
// Expected shape: vt_divided_st >= cnn_lstm >= cnn_avg >= majority on the
// temporal (action) slots; all learned models well above majority overall.
#include "bench_common.hpp"

using namespace tsdx;
using namespace tsdx::bench;

namespace {

void print_row(const EvalRow& row) {
  const auto& m = row.metrics;
  std::printf("%-14s %8lld", row.name.c_str(),
              static_cast<long long>(row.params));
  for (std::size_t s = 0; s < sdl::kNumSlots; ++s) {
    std::printf(" %6.3f", m.slot_accuracy(static_cast<sdl::Slot>(s)));
  }
  std::printf("  %6.3f %6.3f %6.3f  %7.1fs\n", m.mean_accuracy(),
              m.mean_macro_f1(), m.exact_match(), row.train_seconds);
}

}  // namespace

int main() {
  print_banner("R-T1", "per-slot extraction accuracy, main comparison");

  const data::Dataset ds =
      data::Dataset::synthesize(render_config(), kDatasetSize, kDataSeed);
  const auto splits = ds.split(0.7, 0.15);
  const core::TrainConfig tc = train_config(12);

  std::printf("%-14s %8s", "model", "params");
  for (std::size_t s = 0; s < sdl::kNumSlots; ++s) {
    std::printf(" %6.6s", std::string(sdl::to_string(static_cast<sdl::Slot>(s)))
                              .c_str());
  }
  std::printf("  %6s %6s %6s  %8s\n", "meanAc", "meanF1", "exact", "train");

  // Majority floor.
  {
    baseline::MajorityPredictor majority;
    majority.fit(splits.train);
    EvalRow row;
    row.name = "majority";
    row.params = 0;
    row.metrics = majority.evaluate(splits.test);
    print_row(row);
  }
  // CNN-Avg.
  {
    BuiltModel model = make_cnn_avg();
    print_row(fit_and_evaluate(model, splits.train, splits.val, splits.test, tc));
  }
  // CNN-LSTM.
  {
    BuiltModel model = make_cnn_lstm();
    print_row(fit_and_evaluate(model, splits.train, splits.val, splits.test, tc));
  }
  // CNN-GRU.
  {
    BuiltModel model = make_cnn_gru();
    print_row(fit_and_evaluate(model, splits.train, splits.val, splits.test, tc));
  }
  // C3D (3-D convolutions end to end).
  {
    BuiltModel model = make_c3d();
    print_row(fit_and_evaluate(model, splits.train, splits.val, splits.test, tc));
  }
  // Video transformer (divided space-time attention, the paper's model).
  {
    BuiltModel model =
        make_video_transformer(model_config(core::AttentionKind::kDividedST));
    print_row(fit_and_evaluate(model, splits.train, splits.val, splits.test, tc));
  }

  std::printf("\nslot key: road=road_layout time=time_of_day wthr=weather "
              "dens=traffic_density ego=ego_action atyp=actor_type "
              "aact=actor_action apos=actor_position\n");
  return 0;
}
