// R-F2 — Accuracy vs tubelet geometry: spatial patch size {4, 8, 16} and
// temporal tubelet depth {1, 2} for the DividedST video transformer.
//
// Expected shape: patch 16 (only 4 tokens/frame) loses spatial detail and
// actor slots suffer; patch 4 gives the most tokens and the best (or tied)
// accuracy at the highest compute; temporal tubelets of 2 trade a little
// accuracy for half the tokens.
#include "bench_common.hpp"

using namespace tsdx;
using namespace tsdx::bench;

int main() {
  print_banner("R-F2", "accuracy vs tubelet geometry (patch / tubelet size)");

  const data::Dataset ds =
      data::Dataset::synthesize(render_config(), kDatasetSize, kDataSeed);
  const auto splits = ds.split(0.7, 0.15);
  const core::TrainConfig tc = train_config(8);

  std::printf("%-7s %-8s %7s %9s  %7s %7s %6s %6s  %8s\n", "patch",
              "tubelet", "tokens", "params", "actions", "actor", "meanAc",
              "meanF1", "train");

  const std::int64_t patches[] = {4, 8, 16};
  const std::int64_t tubelets[] = {1, 2};
  for (const std::int64_t patch : patches) {
    for (const std::int64_t tubelet : tubelets) {
      const core::ModelConfig cfg = model_config(
          core::AttentionKind::kDividedST, kFrames, kImageSize, patch, tubelet);
      BuiltModel model = make_video_transformer(cfg);
      const EvalRow row =
          fit_and_evaluate(model, splits.train, splits.val, splits.test, tc);
      const auto& m = row.metrics;
      const double actor =
          (m.slot_accuracy(sdl::Slot::kActorType) +
           m.slot_accuracy(sdl::Slot::kActorAction) +
           m.slot_accuracy(sdl::Slot::kActorPosition)) /
          3.0;
      std::printf("%-7lld %-8lld %7lld %9lld  %7.3f %7.3f %6.3f %6.3f  %7.1fs\n",
                  static_cast<long long>(patch),
                  static_cast<long long>(tubelet),
                  static_cast<long long>(cfg.total_tokens()),
                  static_cast<long long>(row.params),
                  action_slots_accuracy(m), actor, m.mean_accuracy(),
                  m.mean_macro_f1(), row.train_seconds);
    }
  }
  return 0;
}
