// R-T4 — Data efficiency: test macro-F1 as a function of training-set size
// (12.5%, 25%, 50%, 100% of the training split), video transformer vs
// CNN-LSTM.
//
// Expected shape: monotone improvement with data for both; the transformer
// holds an edge at every budget (the token inductive bias suits the BEV
// input), with the gap widest at the full budget.
#include "bench_common.hpp"

using namespace tsdx;
using namespace tsdx::bench;

int main() {
  print_banner("R-T4", "accuracy vs training-set size");

  const data::Dataset ds =
      data::Dataset::synthesize(render_config(), kDatasetSize, kDataSeed);
  const auto splits = ds.split(0.7, 0.15);
  const core::TrainConfig tc = train_config(10);

  std::printf("%-14s %8s %8s  %6s %6s %7s\n", "model", "train_n", "frac",
              "meanAc", "meanF1", "actions");

  const double fractions[] = {0.125, 0.25, 0.5, 1.0};
  for (const double frac : fractions) {
    const std::size_t n =
        static_cast<std::size_t>(splits.train.size() * frac);
    const data::Dataset subset = splits.train.take(n);

    auto report = [&](BuiltModel model) {
      const EvalRow row =
          fit_and_evaluate(model, subset, splits.val, splits.test, tc);
      std::printf("%-14s %8zu %7.0f%%  %6.3f %6.3f %7.3f\n", row.name.c_str(),
                  n, frac * 100.0, row.metrics.mean_accuracy(),
                  row.metrics.mean_macro_f1(),
                  action_slots_accuracy(row.metrics));
    };
    report(make_video_transformer(
        model_config(core::AttentionKind::kDividedST)));
    report(make_cnn_lstm());
    std::printf("\n");
  }
  return 0;
}
