// R-K2 — Compiled-plan throughput (tsdx::plan): batch extraction clips/s of
// the traced static execution plan (fused ops, arena-planned buffers, zero
// hot-path allocation) vs the dynamic interpreter walking the module tree,
// on the bench-scale DividedST extractor at serving micro-batch sizes 1/4/8.
//
// Two things are measured and both are gated in CI (tools/bench_gate.py vs
// bench/BENCH_K2_baseline.json):
//   * speedup_vs_dynamic — compiled clips/s over dynamic clips/s per batch
//     size. The win comes from fusion (QK^T+scale+softmax, bias+GELU,
//     residual+LayerNorm) and from replacing per-op allocate/free with one
//     arena, so it must survive any refactor of src/plan or src/tensor.
//   * equivalence_exact — 1.0 iff the compiled results are bit-identical to
//     the dynamic path's (labels, confidences, warnings). This is the
//     plan.hpp equivalence contract observed end to end; any drift gates
//     the PR even if throughput improved.
//
// The steady-state allocation discipline is also checked: after the warm-up
// run, the timed region must not grow the arena (growths() flat). A bench
// run that allocates in the hot path reports steady_state_growths > 0 and
// fails equivalence gating via exit status 3.
//
// --smoke runs a reduced rep count and writes BENCH_K2.json (see
// tools/bench_gate.py, which the bench-smoke CI job runs against the
// committed bench/BENCH_K2_baseline.json).
#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "plan/executor.hpp"
#include "sdl/description.hpp"
#include "sim/clipgen.hpp"
#include "tensor/kernels/parallel_for.hpp"

using namespace tsdx;
using namespace tsdx::bench;

namespace {

/// Best-of-reps wall time for fn (seconds).
template <typename Fn>
double time_best(std::size_t reps, const Fn& fn) {
  double best = 1e300;
  for (std::size_t r = 0; r < reps; ++r) {
    const auto start = std::chrono::steady_clock::now();
    fn();
    best = std::min(best, std::chrono::duration<double>(
                              std::chrono::steady_clock::now() - start)
                              .count());
  }
  return best;
}

/// A serving micro-batch of `count` clips, stacked the way the server's
/// worker loop stacks them ([B, T, C, H, W], clip-major).
data::Batch make_batch(const std::vector<sim::VideoClip>& clips,
                       std::size_t count) {
  const sim::VideoClip& head = clips.front();
  const std::size_t per_clip = head.data.size();
  std::vector<float> stacked;
  stacked.reserve(per_clip * count);
  for (std::size_t i = 0; i < count; ++i) {
    stacked.insert(stacked.end(), clips[i].data.begin(), clips[i].data.end());
  }
  data::Batch batch;
  batch.video = nn::Tensor::from_vector(
      {static_cast<std::int64_t>(count), head.frames, sim::kNumChannels,
       head.height, head.width},
      std::move(stacked));
  return batch;
}

/// Bitwise result equality: labels, confidences (memcmp, no tolerance),
/// warnings. The compiled path's contract is exact equality, so the bench
/// records 1.0 or 0.0 — nothing in between.
bool bit_identical(const std::vector<core::ExtractionResult>& a,
                   const std::vector<core::ExtractionResult>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (sdl::to_slot_labels(a[i].description) !=
        sdl::to_slot_labels(b[i].description)) {
      return false;
    }
    if (std::memcmp(a[i].confidence.data(), b[i].confidence.data(),
                    a[i].confidence.size() * sizeof(float)) != 0) {
      return false;
    }
    if (a[i].warnings != b[i].warnings) return false;
  }
  return true;
}

struct BatchResult {
  std::size_t batch = 0;
  double dynamic_clips_per_s = 0.0;
  double compiled_clips_per_s = 0.0;
  double speedup = 0.0;
  double equivalence = 0.0;
  std::uint64_t steady_state_growths = 0;
};

void write_json(const char* path, const std::vector<BatchResult>& rows,
                std::size_t pool_threads, std::int64_t fused_ops,
                std::size_t arena_bytes) {
  std::FILE* f = std::fopen(path, "w");
  if (!f) {
    std::fprintf(stderr, "bench_k2_plan: cannot write %s\n", path);
    return;
  }
  double log_speedup = 0.0;
  double min_equiv = 1.0;
  for (const BatchResult& r : rows) {
    log_speedup += std::log(r.speedup);
    min_equiv = std::min(min_equiv, r.equivalence);
  }
  const double geomean =
      std::exp(log_speedup / static_cast<double>(rows.size()));

  std::fprintf(f, "{\n  \"bench\": \"bench_k2_plan\",\n");
  std::fprintf(f, "  \"pool_threads\": %zu,\n", pool_threads);
  std::fprintf(
      f, "  \"gated_metrics\": [\"speedup_vs_dynamic\", \"equivalence_exact\"],\n");
  std::fprintf(f, "  \"shapes\": [\n");
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const BatchResult& r = rows[i];
    std::fprintf(f,
                 "    {\"name\": \"batch%zu\", \"batch\": %zu, "
                 "\"dynamic_clips_per_s\": %.4f, "
                 "\"compiled_clips_per_s\": %.4f, "
                 "\"speedup_vs_dynamic\": %.4f, "
                 "\"equivalence_exact\": %.1f, "
                 "\"steady_state_growths\": %llu}%s\n",
                 r.batch, r.batch, r.dynamic_clips_per_s,
                 r.compiled_clips_per_s, r.speedup, r.equivalence,
                 static_cast<unsigned long long>(r.steady_state_growths),
                 i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n");
  std::fprintf(f,
               "  \"summary\": {\"speedup_geomean\": %.4f, "
               "\"equivalence_min\": %.1f, \"fused_ops\": %lld, "
               "\"arena_bytes\": %zu}\n}\n",
               geomean, min_equiv, static_cast<long long>(fused_ops),
               arena_bytes);
  std::fclose(f);
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  const char* json_path = nullptr;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    } else {
      std::fprintf(stderr, "usage: %s [--smoke] [--json PATH]\n", argv[0]);
      return 2;
    }
  }
  if (smoke && json_path == nullptr) json_path = "BENCH_K2.json";

  std::size_t pool_threads =
      std::max(1u, std::thread::hardware_concurrency());
  if (par::env_override()) pool_threads = par::threads();

  print_banner("R-K2",
               "compiled-plan throughput (tsdx::plan vs dynamic forward)");
  const std::size_t reps = smoke ? 3 : 10;
  std::printf("best of %zu reps per cell; %zu intra-op threads\n\n", reps,
              pool_threads);

  auto extractor = std::make_shared<core::ScenarioExtractor>(
      model_config(core::AttentionKind::kDividedST), kModelSeed);
  extractor->freeze();

  sim::ClipGenerator gen(render_config(), kDataSeed);
  constexpr std::size_t kBatchSizes[] = {1, 4, 8};
  const std::size_t max_batch =
      *std::max_element(std::begin(kBatchSizes), std::end(kBatchSizes));
  std::vector<sim::VideoClip> clips;
  clips.reserve(max_batch);
  for (std::size_t i = 0; i < max_batch; ++i) {
    clips.push_back(gen.generate().video);
  }

  par::set_threads(pool_threads);

  std::printf("%-8s %14s %14s %9s %6s %8s\n", "batch", "dynamic c/s",
              "compiled c/s", "speedup", "exact", "growths");

  auto cache = std::make_shared<plan::PlanCache>();
  std::vector<BatchResult> rows;
  bool all_exact = true;
  bool steady = true;
  std::int64_t fused_ops = 0;
  std::size_t arena_bytes = 0;
  for (const std::size_t b : kBatchSizes) {
    const data::Batch batch = make_batch(clips, b);

    std::vector<core::ExtractionResult> dynamic_results;
    const double dynamic_s = time_best(
        reps, [&] { dynamic_results = extractor->extract_batch(batch); });

    // One executor per batch size, like one server worker: the warm-up run
    // compiles (cache shared across sizes, keyed by geometry) and sizes the
    // arena; the timed region must then run allocation-free.
    plan::PlanExecutor executor(extractor, cache);
    std::vector<core::ExtractionResult> compiled_results =
        executor.extract_batch(batch);
    const std::uint64_t growths_after_warmup = executor.arena().growths();
    const double compiled_s = time_best(
        reps, [&] { compiled_results = executor.extract_batch(batch); });

    BatchResult r;
    r.batch = b;
    r.dynamic_clips_per_s = static_cast<double>(b) / dynamic_s;
    r.compiled_clips_per_s = static_cast<double>(b) / compiled_s;
    r.speedup = r.compiled_clips_per_s / r.dynamic_clips_per_s;
    r.equivalence = bit_identical(compiled_results, dynamic_results) ? 1.0
                                                                     : 0.0;
    r.steady_state_growths =
        executor.arena().growths() - growths_after_warmup;
    all_exact = all_exact && r.equivalence == 1.0;
    steady = steady && r.steady_state_growths == 0;
    rows.push_back(r);

    const auto plan = cache->get_or_compile(
        extractor->model(), batch.video.shape());
    if (plan != nullptr) {
      fused_ops = plan->fused_ops();
      arena_bytes = plan->arena_bytes();
    }

    std::printf("%-8zu %14.2f %14.2f %8.2fx %6s %8llu\n", b,
                r.dynamic_clips_per_s, r.compiled_clips_per_s, r.speedup,
                r.equivalence == 1.0 ? "yes" : "NO",
                static_cast<unsigned long long>(r.steady_state_growths));
  }
  par::set_threads(1);

  std::printf("\nlargest plan: %lld fused ops, %zu arena bytes\n",
              static_cast<long long>(fused_ops), arena_bytes);
  if (!all_exact) {
    std::fprintf(stderr,
                 "bench_k2_plan: compiled results are NOT bit-identical\n");
  }
  if (!steady) {
    std::fprintf(stderr,
                 "bench_k2_plan: arena grew during the timed region\n");
  }

  if (json_path != nullptr) {
    write_json(json_path, rows, pool_threads, fused_ops, arena_bytes);
    std::printf("wrote %s\n", json_path);
  }
  return (all_exact && steady) ? 0 : 3;
}
