// R-T10 (extension) — Positional-embedding ablation: learned tables vs fixed
// sinusoidal codes vs none, for the divided space-time transformer.
//
// Expected shape: "none" loses the slots that need to know *where* and
// *when* a token sits (relative position, actions); sinusoidal recovers most
// of the learned tables' accuracy with zero extra parameters.
#include "bench_common.hpp"

using namespace tsdx;
using namespace tsdx::bench;

int main() {
  print_banner("R-T10", "positional embeddings: learned vs sinusoidal vs none");

  const data::Dataset ds =
      data::Dataset::synthesize(render_config(), kDatasetSize, kDataSeed);
  const auto splits = ds.split(0.7, 0.15);
  const core::TrainConfig tc = train_config(12);

  std::printf("%-12s %9s  %7s %8s %6s %6s\n", "positional", "params",
              "actions", "apos", "meanAc", "meanF1");

  const core::PositionalKind kinds[] = {core::PositionalKind::kLearned,
                                        core::PositionalKind::kSinusoidal,
                                        core::PositionalKind::kNone};
  for (const auto kind : kinds) {
    core::ModelConfig cfg = model_config(core::AttentionKind::kDividedST);
    cfg.positional = kind;
    BuiltModel model = make_video_transformer(cfg);
    const EvalRow row =
        fit_and_evaluate(model, splits.train, splits.val, splits.test, tc);
    std::printf("%-12s %9lld  %7.3f %8.3f %6.3f %6.3f\n",
                core::to_string(kind).c_str(),
                static_cast<long long>(row.params),
                action_slots_accuracy(row.metrics),
                row.metrics.slot_accuracy(sdl::Slot::kActorPosition),
                row.metrics.mean_accuracy(), row.metrics.mean_macro_f1());
  }
  return 0;
}
