// R-T7 (extension) — Mirror-augmentation ablation: training with vs without
// the label-aware horizontal mirror, at a small and the full data budget.
//
// Expected shape: augmentation helps most at the small budget (it doubles
// effective data and balances the left/right action classes); at the full
// budget the gain shrinks.
#include "bench_common.hpp"
#include "core/augment.hpp"

using namespace tsdx;
using namespace tsdx::bench;

int main() {
  print_banner("R-T7", "label-aware mirror augmentation ablation");

  const data::Dataset ds =
      data::Dataset::synthesize(render_config(), kDatasetSize, kDataSeed);
  const auto splits = ds.split(0.7, 0.15);
  const core::TrainConfig tc = train_config(10);

  std::printf("%-10s %-8s %8s  %7s %6s %6s\n", "train", "mirror", "eff_n",
              "actions", "meanAc", "meanF1");

  const double fractions[] = {0.25, 1.0};
  for (const double frac : fractions) {
    const data::Dataset subset =
        splits.train.take(static_cast<std::size_t>(splits.train.size() * frac));
    for (const bool mirror : {false, true}) {
      const data::Dataset train_set =
          mirror ? core::augment_mirror(subset) : subset;
      BuiltModel model = make_video_transformer(
          model_config(core::AttentionKind::kDividedST));
      const EvalRow row =
          fit_and_evaluate(model, train_set, splits.val, splits.test, tc);
      std::printf("%8.0f%% %-8s %8zu  %7.3f %6.3f %6.3f\n", frac * 100.0,
                  mirror ? "yes" : "no", train_set.size(),
                  action_slots_accuracy(row.metrics),
                  row.metrics.mean_accuracy(), row.metrics.mean_macro_f1());
    }
  }
  return 0;
}
