// route_demo — scaling the extractor service out: a Router fronting three
// InferenceServer replicas with per-tenant admission control, least-loaded
// dispatch, health-probe failover and deadline-aware retries. The demo
// scripts the full operational arc (DESIGN.md §15 "Router & admission
// control"):
//
//   1. two tenants with different fair-share weights stream requests
//      through the healthy fleet;
//   2. replica 1 is hard-killed mid-stream — traffic fails over to its
//      siblings, no request is lost;
//   3. the replica is revived and rejoins the rotation;
//   4. the route.* metrics surface is dumped as JSON.
//
// Flags:
//   --smoke   smaller model and request counts, for CI (seconds).
#include <chrono>
#include <cstdio>
#include <cstring>
#include <future>
#include <memory>
#include <string>
#include <vector>

#include "core/extractor.hpp"
#include "obs/metrics.hpp"
#include "sdl/description.hpp"
#include "serve/fallback.hpp"
#include "serve/router.hpp"
#include "serve/thread_pool.hpp"
#include "sim/clipgen.hpp"

namespace core = tsdx::core;
namespace obs = tsdx::obs;
namespace sdl = tsdx::sdl;
namespace serve = tsdx::serve;
namespace sim = tsdx::sim;

namespace {

struct TenantScript {
  const char* name;
  std::size_t requests;
};

void print_fleet(serve::Router& router) {
  const serve::RouterStats stats = router.stats();
  std::printf("  fleet:");
  for (std::size_t i = 0; i < stats.replica_states.size(); ++i) {
    std::printf(" replica%zu=%s", i,
                serve::to_string(stats.replica_states[i]));
  }
  std::printf("  (completed=%llu failed=%llu degraded=%llu retries=%llu "
              "failovers=%llu)\n",
              static_cast<unsigned long long>(stats.completed),
              static_cast<unsigned long long>(stats.failed),
              static_cast<unsigned long long>(stats.degraded),
              static_cast<unsigned long long>(stats.retries),
              static_cast<unsigned long long>(stats.failovers));
}

/// Each tenant streams its requests from its own producer thread; every
/// future is consumed so nothing resolves silently.
void stream(serve::Router& router, const std::vector<sim::VideoClip>& clips,
            const std::vector<TenantScript>& tenants) {
  serve::ThreadPool::run(tenants.size(), [&](std::size_t t) {
    std::size_t rejected = 0;
    std::vector<std::future<core::ExtractionResult>> futures;
    for (std::size_t i = 0; i < tenants[t].requests; ++i) {
      try {
        futures.push_back(router.submit_within(
            clips[i % clips.size()], std::chrono::milliseconds(500),
            tenants[t].name));
      } catch (const serve::AdmissionRejectedError&) {
        ++rejected;  // over rate or fair share — visible in route.shed
      }
    }
    for (auto& future : futures) {
      try {
        static_cast<void>(future.get());
      } catch (const std::exception&) {
        // expired or exhausted retries — classified by route.failed.
      }
    }
    static_cast<void>(rejected);
  });
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else {
      std::fprintf(stderr, "usage: %s [--smoke]\n", argv[0]);
      return 2;
    }
  }

  // A frozen random-init extractor: routing behaviour is independent of
  // model quality, so the demo skips training (see examples/quickstart.cpp
  // for the training walkthrough).
  sim::RenderConfig render;
  render.height = render.width = smoke ? 16 : 32;
  render.frames = smoke ? 4 : 8;
  core::ModelConfig mc;
  mc.frames = render.frames;
  mc.image_size = render.height;
  mc.patch_size = 8;
  mc.dim = smoke ? 16 : 32;
  mc.depth = 2;
  mc.heads = 4;
  mc.attention = core::AttentionKind::kDividedST;
  auto extractor = std::make_shared<core::ScenarioExtractor>(mc, 7);
  extractor->freeze();

  sim::ClipGenerator gen(render, 11);
  std::vector<sim::VideoClip> clips;
  for (int i = 0; i < 8; ++i) clips.push_back(gen.generate().video);

  // The fleet: 3 replicas, and two tenants — "interactive" owns 3x the
  // fair share of "batch", which matters once the fleet is congested.
  sdl::SlotLabels labels{};
  std::array<float, sdl::kNumSlots> confidence{};
  confidence.fill(1.0f);

  serve::RouterConfig rc;
  rc.replicas = 3;
  rc.server.workers = 1;
  rc.server.max_batch = 4;
  rc.server.queue_capacity = 16;
  rc.admission.congestion_window = 24;
  rc.admission.tenants = {{"interactive", 3.0}, {"batch", 1.0}};
  rc.fallback = std::make_shared<serve::MajorityFallback>(labels, confidence);
  rc.retry_budget_floor = 16.0;
  rc.metrics = std::make_shared<obs::Registry>();
  serve::Router router(extractor, rc);

  const std::size_t per_tenant = smoke ? 12 : 40;
  const std::vector<TenantScript> tenants = {{"interactive", per_tenant},
                                             {"batch", per_tenant}};

  std::printf("== phase 1: healthy fleet, two tenants (weights 3:1) ==\n");
  stream(router, clips, tenants);
  print_fleet(router);
  auto& registry = router.metrics_registry();
  for (const char* tenant : {"interactive", "batch"}) {
    std::printf("  tenant %-12s admitted=%llu rejected=%llu\n", tenant,
                static_cast<unsigned long long>(
                    router.admission().tenant_admitted(tenant)),
                static_cast<unsigned long long>(
                    router.admission().tenant_rejected(tenant)));
  }
  for (std::size_t i = 0; i < router.replica_count(); ++i) {
    std::printf("  replica%zu dispatched=%llu\n", i,
                static_cast<unsigned long long>(
                    registry
                        .counter("route.replica_dispatched." +
                                 std::to_string(i))
                        .value()));
  }

  std::printf("\n== phase 2: replica 1 killed; traffic fails over ==\n");
  router.kill_replica(1);
  stream(router, clips, tenants);
  print_fleet(router);

  std::printf("\n== phase 3: replica 1 revived ==\n");
  router.revive_replica(1);
  stream(router, clips, tenants);
  print_fleet(router);

  router.drain();

  std::printf("\n== route.* metrics (registry JSON) ==\n%s\n",
              router.metrics_json().c_str());
  return 0;
}
