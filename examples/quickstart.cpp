// quickstart — the 60-second tour of the library:
//   1. synthesize a labeled traffic-video dataset with the simulator,
//   2. train a tiny video-transformer scenario extractor,
//   3. run extraction on held-out clips and compare with ground truth.
//
// Run:  ./quickstart [num_clips] [epochs]
#include <cstdio>
#include <cstdlib>

#include "core/extractor.hpp"
#include "sdl/serialization.hpp"

using namespace tsdx;

int main(int argc, char** argv) {
  const std::size_t num_clips =
      argc > 1 ? static_cast<std::size_t>(std::atoi(argv[1])) : 240;
  const std::size_t epochs =
      argc > 2 ? static_cast<std::size_t>(std::atoi(argv[2])) : 8;

  // 1. Data: the simulator renders bird's-eye clips with exact SDL labels.
  core::ModelConfig model_cfg = core::ModelConfig::tiny();
  sim::RenderConfig render_cfg;
  render_cfg.height = render_cfg.width = model_cfg.image_size;
  render_cfg.frames = model_cfg.frames;

  std::printf("Synthesizing %zu clips (%lldx%lldx%lld)...\n", num_clips,
              static_cast<long long>(render_cfg.frames),
              static_cast<long long>(render_cfg.height),
              static_cast<long long>(render_cfg.width));
  const data::Dataset dataset =
      data::Dataset::synthesize(render_cfg, num_clips, /*seed=*/42);
  const auto splits = dataset.split(0.7, 0.15);
  std::printf("  train=%zu val=%zu test=%zu\n", splits.train.size(),
              splits.val.size(), splits.test.size());

  // 2. Train a divided space-time video transformer.
  core::ScenarioExtractor extractor(model_cfg, /*seed=*/7);
  std::printf("Model: %s, %lld parameters\n",
              extractor.model().backbone().name().c_str(),
              static_cast<long long>(extractor.model().num_parameters()));

  core::TrainConfig train_cfg;
  train_cfg.epochs = epochs;
  train_cfg.batch_size = 8;
  train_cfg.verbose = true;
  extractor.train(splits.train, splits.val, train_cfg);

  // 3. Extract on the test split.
  const data::SlotMetrics metrics =
      core::Trainer::evaluate(extractor.model(), splits.test);
  std::printf("\nTest: mean slot accuracy %.3f, mean macro-F1 %.3f, "
              "exact match %.3f\n\n",
              metrics.mean_accuracy(), metrics.mean_macro_f1(),
              metrics.exact_match());

  // Show three concrete extractions.
  for (std::size_t i = 0; i < std::min<std::size_t>(3, splits.test.size());
       ++i) {
    const auto& example = splits.test[i];
    const core::ExtractionResult result = extractor.extract(example.video);
    std::printf("clip %zu\n", i);
    std::printf("  truth    : %s\n",
                sdl::to_sentence(example.description).c_str());
    std::printf("  extracted: %s\n",
                sdl::to_sentence(result.description).c_str());
    std::printf("  min conf : %.2f%s\n", result.min_confidence(),
                result.warnings.empty() ? "" : "  [semantic warnings]");
    std::printf("  json     : %s\n",
                sdl::to_json_string(result.description).c_str());
  }
  return 0;
}
