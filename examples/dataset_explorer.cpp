// dataset_explorer — inspect what the traffic simulator produces: label
// balance across all SDL slots, a rendered clip as ASCII animation frames,
// and the ground-truth description in JSON and natural language.
//
// Run:  ./dataset_explorer [num_clips] [seed]
#include <cstdio>
#include <cstdlib>

#include "data/dataset.hpp"
#include "sdl/serialization.hpp"
#include "sim/render.hpp"

using namespace tsdx;

int main(int argc, char** argv) {
  const std::size_t num_clips =
      argc > 1 ? static_cast<std::size_t>(std::atoi(argv[1])) : 200;
  const std::uint64_t seed =
      argc > 2 ? static_cast<std::uint64_t>(std::atoll(argv[2])) : 1;

  sim::RenderConfig cfg;
  cfg.height = cfg.width = 48;
  cfg.frames = 6;

  std::printf("Synthesizing %zu clips (seed %llu)...\n\n", num_clips,
              static_cast<unsigned long long>(seed));
  const data::Dataset ds = data::Dataset::synthesize(cfg, num_clips, seed);

  // --- label balance -------------------------------------------------------
  std::printf("Label balance per SDL slot:\n");
  const auto hist = ds.label_histogram();
  for (std::size_t s = 0; s < sdl::kNumSlots; ++s) {
    const auto slot = static_cast<sdl::Slot>(s);
    std::printf("  %-16s", std::string(sdl::to_string(slot)).c_str());
    for (std::size_t c = 0; c < sdl::kSlotCardinality[s]; ++c) {
      std::printf(" %s=%zu",
                  std::string(sdl::slot_class_name(slot, c)).c_str(),
                  hist[s][c]);
    }
    std::printf("\n");
  }

  // --- one clip in detail -----------------------------------------------------
  const data::Example& example = ds[0];
  std::printf("\nClip 0 ground truth:\n  %s\n\n",
              sdl::to_sentence(example.description).c_str());
  std::printf("JSON:\n%s\n",
              sdl::to_json_string(example.description, /*pretty=*/true).c_str());

  std::printf("\nASCII animation ('#' vehicle, 'o' VRU, '.' road):\n");
  for (std::int64_t f = 0; f < example.video.frames; f += 2) {
    std::printf("--- frame %lld / t=%.1fs ---\n", static_cast<long long>(f),
                static_cast<double>(f) * sim::kClipDuration /
                    static_cast<double>(example.video.frames - 1));
    std::fputs(sim::ascii_frame(example.video, f).c_str(), stdout);
  }
  return 0;
}
