// search_demo — the full retrieval loop behind DESIGN.md §14: extract
// scenario descriptions from a clip library through the InferenceServer,
// stream every completion into an IVF scenario index via the bounded
// ingestion hand-off (serve::CompletionInfo -> index::IndexIngestor), then
// answer three canned structured queries — slot predicates narrowing the
// candidate set, Scenario2Vector similarity ranking what remains.
//
// The printed hits show the *ground-truth* sentence of each returned clip so
// the reader can judge retrieval quality; the index itself only ever saw
// extracted descriptions.
//
// Flags:
//   --smoke   tiny model/library, for CI (seconds, not minutes).
#include <cstdio>
#include <cstring>
#include <future>
#include <vector>

#include "core/extractor.hpp"
#include "data/dataset.hpp"
#include "index/ingest.hpp"
#include "index/ivf.hpp"
#include "sdl/description.hpp"
#include "serve/server.hpp"
#include "sim/clipgen.hpp"

namespace core = tsdx::core;
namespace data = tsdx::data;
namespace ix = tsdx::index;  // alias: POSIX ::index() shadows the namespace
namespace sdl = tsdx::sdl;
namespace serve = tsdx::serve;
namespace sim = tsdx::sim;

namespace {

std::size_t cls(auto value) { return static_cast<std::size_t>(value); }

void run_query(const char* intent, const ix::IvfIndex& index,
               const ix::StructuredQuery& query,
               const std::vector<sdl::ScenarioDescription>& truths) {
  std::printf("Query: %s\n  like: %s\n", intent,
              sdl::to_sentence(query.like).c_str());
  std::vector<ix::Hit> hits = index.search(query);
  if (hits.empty()) {
    // Predicates filter on *extracted* labels, so a weak extractor can
    // filter everything out. The embedding ranking still works without
    // them — fall back so the demo always shows the neighborhood.
    std::printf("  (no extracted description matches every predicate — "
                "similarity-only ranking instead)\n");
    hits = index.search({query.like, {}, query.k});
  }
  for (const ix::Hit& hit : hits) {
    std::printf("  %.3f clip_%03llu  %s\n", hit.score,
                static_cast<unsigned long long>(hit.id),
                sdl::to_sentence(truths[hit.id]).c_str());
  }
  std::printf("\n");
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else {
      std::fprintf(stderr, "usage: %s [--smoke]\n", argv[0]);
      return 2;
    }
  }

  // 1. A quickly-trained extractor (examples/quickstart.cpp walks through
  //    training in detail; serve_demo.cpp through the serving runtime).
  sim::RenderConfig render;
  render.height = render.width = smoke ? 16 : 32;
  render.frames = smoke ? 4 : 8;

  core::ModelConfig mc;
  mc.frames = render.frames;
  mc.image_size = render.height;
  mc.patch_size = 8;
  mc.dim = smoke ? 16 : 32;
  mc.depth = smoke ? 1 : 2;
  mc.heads = 4;
  mc.attention = core::AttentionKind::kDividedST;

  std::printf("training a small extractor...\n");
  const data::Dataset train =
      data::Dataset::synthesize(render, smoke ? 24 : 192, 1);
  const data::Dataset val =
      data::Dataset::synthesize(render, smoke ? 8 : 24, 2);
  auto extractor = std::make_shared<core::ScenarioExtractor>(mc, /*seed=*/7);
  core::TrainConfig tc;
  tc.epochs = smoke ? 1 : 8;
  tc.batch_size = 8;
  extractor->train(train, val, tc);
  extractor->freeze();

  // 2. The index and its ingestion hand-off. The IVF quantizer trains itself
  //    once train_size documents arrive; sized so both modes cross it and
  //    queries exercise the inverted-list path, not the pending buffer.
  ix::IvfConfig ivf_cfg;
  ivf_cfg.nlist = smoke ? 8 : 16;
  ivf_cfg.train_size = smoke ? 16 : 64;
  ivf_cfg.nprobe = smoke ? 4 : 8;
  ix::IvfIndex index(ivf_cfg);
  ix::IndexIngestor ingestor(index);

  // 3. The server, with the ingestor as its completion sink: every
  //    successful extraction is pushed into the index keyed by admission
  //    order, so DocId i is the i-th submitted clip.
  serve::ServerConfig sc;
  sc.workers = 2;
  sc.max_batch = 8;
  sc.queue_capacity = 64;
  sc.overflow = serve::OverflowPolicy::kBlock;
  sc.on_result = ingestor.sink();
  serve::InferenceServer server(extractor, sc);

  // 4. An unlabeled clip library, extracted through the server. Ground
  //    truth is kept only to print alongside the hits.
  const std::size_t library_size = smoke ? 32 : 240;
  std::printf("extracting %zu clips through the server...\n", library_size);
  sim::ClipGenerator gen(render, /*seed=*/999);
  std::vector<sdl::ScenarioDescription> truths;
  std::vector<std::future<core::ExtractionResult>> futures;
  truths.reserve(library_size);
  futures.reserve(library_size);
  for (std::size_t i = 0; i < library_size; ++i) {
    sim::LabeledClip clip = gen.generate();
    truths.push_back(clip.description);
    futures.push_back(server.submit(clip.video));
  }
  for (auto& f : futures) f.get();
  server.drain();
  ingestor.close();  // flush the hand-off queue before querying
  std::printf("indexed %zu extracted descriptions (%zu dropped)\n\n",
              index.size(), ingestor.dropped());

  // 5. Three canned structured queries: predicates hard-filter, the
  //    embedding ranks. Each `like` is the example scenario whose
  //    neighborhood we want; predicates pin the slots that must hold.
  {
    sdl::ScenarioDescription like;
    like.environment.road_layout = sdl::RoadLayout::kIntersection4;
    like.environment.time_of_day = sdl::TimeOfDay::kNight;
    like.ego_action = sdl::EgoAction::kStop;
    like.salient_actor = {sdl::ActorType::kPedestrian,
                          sdl::ActorAction::kCross,
                          sdl::RelativePosition::kAhead};
    run_query("pedestrian crossing at night", index,
              {like,
               {ix::SlotPredicate::equals(sdl::Slot::kActorType,
                                          cls(sdl::ActorType::kPedestrian)),
                ix::SlotPredicate::equals(sdl::Slot::kActorAction,
                                          cls(sdl::ActorAction::kCross)),
                ix::SlotPredicate::equals(sdl::Slot::kTimeOfDay,
                                          cls(sdl::TimeOfDay::kNight))},
               5},
              truths);
  }
  {
    sdl::ScenarioDescription like;
    like.environment.weather = sdl::Weather::kRain;
    like.environment.road_layout = sdl::RoadLayout::kIntersection4;
    like.ego_action = sdl::EgoAction::kTurnLeft;
    run_query("ego turning left in the rain", index,
              {like,
               {ix::SlotPredicate::equals(sdl::Slot::kEgoAction,
                                          cls(sdl::EgoAction::kTurnLeft)),
                ix::SlotPredicate::equals(sdl::Slot::kWeather,
                                          cls(sdl::Weather::kRain))},
               5},
              truths);
  }
  {
    sdl::ScenarioDescription like;
    like.environment.density = sdl::TrafficDensity::kDense;
    like.environment.road_layout = sdl::RoadLayout::kTJunction;
    run_query("dense traffic at any intersection", index,
              {like,
               {ix::SlotPredicate::equals(sdl::Slot::kTrafficDensity,
                                          cls(sdl::TrafficDensity::kDense)),
                ix::SlotPredicate::any_of(
                    sdl::Slot::kRoadLayout,
                    {cls(sdl::RoadLayout::kIntersection4),
                     cls(sdl::RoadLayout::kTJunction)})},
               5},
              truths);
  }
  return 0;
}
