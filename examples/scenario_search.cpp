// scenario_search — the downstream application the SDL was designed for:
// index a video library by *extracted* scenario descriptions and answer
// semantic queries ("ego turning left at an intersection while a pedestrian
// crosses") without looking at pixels at query time.
//
// Run:  ./scenario_search [library_size] [epochs]
#include <cstdio>
#include <cstdlib>

#include "core/extractor.hpp"
#include "sdl/embedding.hpp"
#include "sdl/serialization.hpp"

using namespace tsdx;

int main(int argc, char** argv) {
  const std::size_t library_size =
      argc > 1 ? static_cast<std::size_t>(std::atoi(argv[1])) : 80;
  const std::size_t epochs =
      argc > 2 ? static_cast<std::size_t>(std::atoi(argv[2])) : 10;

  core::ModelConfig model_cfg = core::ModelConfig::tiny();
  model_cfg.frames = 8;
  sim::RenderConfig render_cfg;
  render_cfg.height = render_cfg.width = model_cfg.image_size;
  render_cfg.frames = model_cfg.frames;

  // 1. Train an extractor on its own synthetic training set.
  std::printf("Training extractor (%zu epochs)...\n", epochs);
  const data::Dataset train_set =
      data::Dataset::synthesize(render_cfg, 240, 11);
  const auto splits = train_set.split(0.85, 0.15);
  core::ScenarioExtractor extractor(model_cfg, 12);
  core::TrainConfig tc;
  tc.epochs = epochs;
  tc.batch_size = 8;
  extractor.train(splits.train, splits.val, tc);
  extractor.model().set_training(false);

  // 2. Ingest an *unlabeled* video library: extraction is the only labeling.
  std::printf("Indexing %zu unlabeled clips by extracted description...\n",
              library_size);
  const data::Dataset library =
      data::Dataset::synthesize(render_cfg, library_size, 999);
  sdl::ScenarioIndex index;
  for (std::size_t i = 0; i < library.size(); ++i) {
    const auto result = extractor.extract(library[i].video);
    index.add("clip_" + std::to_string(i), result.description);
  }

  // 3. Queries arrive as structured descriptions (or parsed from JSON).
  const char* query_json = R"({
    "environment": {"road_layout": "intersection4", "time_of_day": "night",
                     "weather": "clear", "traffic_density": "sparse"},
    "ego_action": "turn_left",
    "salient_actor": {"type": "pedestrian", "action": "cross",
                       "position": "ahead"}
  })";
  std::string error;
  const auto query = sdl::description_from_string(query_json, &error);
  if (!query) {
    std::fprintf(stderr, "query parse error: %s\n", error.c_str());
    return 1;
  }

  std::printf("\nQuery: %s\n\nTop matches:\n",
              sdl::to_sentence(*query).c_str());
  for (const auto& hit : index.query(*query, 5)) {
    // Show the *ground-truth* sentence of the hit so the reader can judge
    // retrieval quality (the index itself only saw extracted descriptions).
    const std::size_t idx =
        static_cast<std::size_t>(std::atoi(hit.id.c_str() + 5));
    std::printf("  %.3f %s\n        truth: %s\n", hit.similarity,
                hit.id.c_str(),
                sdl::to_sentence(library[idx].description).c_str());
  }
  return 0;
}
