// serve_demo — the extractor as a service: train a small model, checkpoint
// it (CRC-verified, atomically), stand up a fault-tolerant InferenceServer,
// fire concurrent requests at it, and read the stats surface. A compressed
// tour of src/serve/ (see DESIGN.md "Serving runtime", "Fault tolerance
// contract" and §11 "Observability model").
//
// Flags:
//   --smoke         tiny model/dataset/request count, for CI (seconds, not
//                   minutes).
//   --metrics-dump  after draining, write the observability surface to the
//                   working directory: tsdx_metrics.json + tsdx_metrics.prom
//                   (the registry) and tsdx_trace.json (Perfetto-loadable
//                   span trace). Forces full tracing unless TSDX_TRACE was
//                   set explicitly, so the dumped trace is never empty.
//   --compiled      serve through compiled inference plans
//                   (ServerConfig::use_compiled_plan): one traced plan per
//                   clip geometry, fused ops, per-worker arenas. Results are
//                   bit-identical to the dynamic path.
//   --out-dir DIR   where --metrics-dump writes its files (created if
//                   missing; default: the working directory). Also writes
//                   tsdx_recorder.json, the flight-recorder ring, so
//                   tools/obs_report.py can attribute per-request latency.
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <future>
#include <string>
#include <vector>

#include "core/extractor.hpp"
#include "data/dataset.hpp"
#include "nn/serialize.hpp"
#include "obs/recorder.hpp"
#include "obs/trace.hpp"
#include "sdl/description.hpp"
#include "serve/fallback.hpp"
#include "serve/server.hpp"
#include "serve/thread_pool.hpp"
#include "sim/clipgen.hpp"

namespace core = tsdx::core;
namespace data = tsdx::data;
namespace nn = tsdx::nn;
namespace obs = tsdx::obs;
namespace sdl = tsdx::sdl;
namespace serve = tsdx::serve;
namespace sim = tsdx::sim;

namespace {

bool write_file(const std::string& path, const std::string& body) {
  std::ofstream out(path, std::ios::binary);
  out << body;
  return static_cast<bool>(out);
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  bool metrics_dump = false;
  bool compiled = false;
  std::string out_dir = ".";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else if (std::strcmp(argv[i], "--metrics-dump") == 0) {
      metrics_dump = true;
    } else if (std::strcmp(argv[i], "--compiled") == 0) {
      compiled = true;
    } else if (std::strcmp(argv[i], "--out-dir") == 0 && i + 1 < argc) {
      out_dir = argv[++i];
    } else {
      std::fprintf(stderr,
                   "usage: %s [--smoke] [--metrics-dump] [--compiled] "
                   "[--out-dir DIR]\n",
                   argv[0]);
      return 2;
    }
  }
  if (metrics_dump && std::getenv("TSDX_TRACE") == nullptr) {
    obs::trace::set_mode(obs::trace::Mode::kFull);
  }

  // 1. A quickly-trained extractor (see examples/quickstart.cpp for the
  //    full training walkthrough).
  sim::RenderConfig render;
  render.height = render.width = smoke ? 16 : 32;
  render.frames = smoke ? 4 : 8;

  core::ModelConfig mc;
  mc.frames = render.frames;
  mc.image_size = render.height;
  mc.patch_size = 8;
  mc.dim = smoke ? 16 : 32;
  mc.depth = smoke ? 1 : 2;
  mc.heads = 4;
  mc.attention = core::AttentionKind::kDividedST;

  std::printf("training a small extractor...\n");
  const data::Dataset train =
      data::Dataset::synthesize(render, smoke ? 24 : 96, 1);
  const data::Dataset val = data::Dataset::synthesize(render, smoke ? 8 : 24, 2);
  auto extractor = std::make_shared<core::ScenarioExtractor>(mc, /*seed=*/7);
  core::TrainConfig tc;
  tc.epochs = smoke ? 1 : 3;
  tc.batch_size = 8;
  extractor->train(train, val, tc);

  // 2. Checkpoint round-trip, the way a serving bootstrap would do it:
  //    save_checkpoint writes atomically with a CRC-32 footer, and
  //    load_checkpoint_or_fallback degrades a missing/corrupt file to the
  //    current weights instead of crashing the process.
  const std::string ckpt =
      (std::filesystem::temp_directory_path() / "serve_demo_ckpt.bin")
          .string();
  nn::save_checkpoint(extractor->model(), ckpt);
  const nn::CheckpointLoad loaded =
      nn::load_checkpoint_or_fallback(extractor->model(), ckpt);
  std::printf("checkpoint bootstrap: %s (%s)\n", nn::to_string(loaded), ckpt.c_str());
  std::filesystem::remove(ckpt);

  extractor->freeze();  // mandatory before serving

  // 3. The server: 2 workers, micro-batches of up to 8 formed within a 2 ms
  //    window, a 64-deep queue that blocks producers when full. Degraded
  //    mode is armed with the training set's majority answer: if the
  //    primary model faults repeatedly or the queue saturates, the circuit
  //    breaker routes requests there instead of failing them.
  serve::ServerConfig sc;
  sc.workers = 2;
  sc.max_batch = 8;
  sc.batch_window = std::chrono::microseconds(2000);
  sc.queue_capacity = 64;
  sc.overflow = serve::OverflowPolicy::kBlock;
  sc.fallback = serve::MajorityFallback::fit(train);
  sc.circuit.fault_threshold = 3;
  sc.circuit.cooldown = std::chrono::milliseconds(250);
  sc.use_compiled_plan = compiled;
  if (compiled) {
    std::printf("compiled-plan execution on: each geometry traces once, "
                "then runs fused from a per-worker arena\n");
  }
  serve::InferenceServer server(extractor, sc);

  // 4. Concurrent clients, every request carrying a half-second deadline
  //    (generous here — it exists to show the API; an expired deadline fails
  //    the future with DeadlineExceededError without the clip ever reaching
  //    the model).
  const std::size_t clients = smoke ? 2 : 4;
  const std::size_t per_client = 16;
  std::printf("serving %zu requests on %zu workers...\n\n",
              clients * per_client, sc.workers);
  sim::ClipGenerator gen(render, /*seed=*/42);
  std::vector<sim::VideoClip> clips;
  for (int i = 0; i < 16; ++i) clips.push_back(gen.generate().video);

  serve::ThreadPool::run(clients, [&](std::size_t client) {
    for (std::size_t i = 0; i < per_client; ++i) {
      std::future<core::ExtractionResult> future = server.submit_within(
          clips[(client * per_client + i) % clips.size()],
          std::chrono::milliseconds(500));
      const core::ExtractionResult result = future.get();
      if (client == 0 && i == 0) {
        std::printf("first result (min confidence %.2f):\n  %s\n\n",
                    result.min_confidence(),
                    sdl::to_sentence(result.description).c_str());
      }
    }
  });

  // 5. Finish cleanly and read the observability surface — including the
  //    fault counters (all zero on this healthy run; chaos_test and
  //    bench_r1_degradation show them moving).
  server.drain();
  const serve::ServerStats stats = server.stats();
  std::printf("%s\n%s\n", serve::ServerStats::table_header().c_str(),
              stats.table_row("serve_demo w=2").c_str());
  std::printf("\nbatch-size distribution:\n");
  for (std::size_t s = 1; s < stats.batch_size_counts.size(); ++s) {
    if (stats.batch_size_counts[s] == 0) continue;
    std::printf("  batch=%zu  x%llu\n", s,
                static_cast<unsigned long long>(stats.batch_size_counts[s]));
  }
  std::printf("\n%s\n", stats.fault_summary().c_str());

  // 6. The machine-readable view of the same run: the metrics registry in
  //    JSON + Prometheus exposition (what a GET /metrics endpoint would
  //    serve) and the span trace, loadable in https://ui.perfetto.dev.
  //    CI feeds all three to tools/trace_check.py.
  if (metrics_dump) {
    std::error_code ec;
    std::filesystem::create_directories(out_dir, ec);
    const auto in_dir = [&out_dir](const char* name) {
      return (std::filesystem::path(out_dir) / name).string();
    };
    bool ok = write_file(in_dir("tsdx_metrics.json"), server.metrics_json());
    ok = write_file(in_dir("tsdx_metrics.prom"), server.metrics_text()) && ok;
    ok = obs::trace::flush_trace(in_dir("tsdx_trace.json")) && ok;
    ok = write_file(in_dir("tsdx_recorder.json"),
                    obs::Recorder::global().to_json()) &&
         ok;
    if (!ok) {
      std::fprintf(stderr, "serve_demo: --metrics-dump failed to write\n");
      return 1;
    }
    std::printf(
        "\nwrote tsdx_metrics.{json,prom}, tsdx_trace.json, "
        "tsdx_recorder.json under %s\n",
        out_dir.c_str());
  }
  return 0;
}
