// serve_demo — the extractor as a service: train a small model, checkpoint
// it (CRC-verified, atomically), stand up a fault-tolerant InferenceServer,
// fire concurrent requests at it, and read the stats surface. A compressed
// tour of src/serve/ (see DESIGN.md "Serving runtime" and "Fault tolerance
// contract").
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <future>
#include <vector>

#include "core/extractor.hpp"
#include "data/dataset.hpp"
#include "nn/serialize.hpp"
#include "sdl/description.hpp"
#include "serve/fallback.hpp"
#include "serve/server.hpp"
#include "serve/thread_pool.hpp"
#include "sim/clipgen.hpp"

namespace core = tsdx::core;
namespace data = tsdx::data;
namespace nn = tsdx::nn;
namespace sdl = tsdx::sdl;
namespace serve = tsdx::serve;
namespace sim = tsdx::sim;

int main() {
  // 1. A quickly-trained extractor (see examples/quickstart.cpp for the
  //    full training walkthrough).
  sim::RenderConfig render;
  render.height = render.width = 32;
  render.frames = 8;

  core::ModelConfig mc;
  mc.frames = 8;
  mc.image_size = 32;
  mc.patch_size = 8;
  mc.dim = 32;
  mc.depth = 2;
  mc.heads = 4;
  mc.attention = core::AttentionKind::kDividedST;

  std::printf("training a small extractor...\n");
  const data::Dataset train = data::Dataset::synthesize(render, 96, 1);
  const data::Dataset val = data::Dataset::synthesize(render, 24, 2);
  auto extractor = std::make_shared<core::ScenarioExtractor>(mc, /*seed=*/7);
  core::TrainConfig tc;
  tc.epochs = 3;
  tc.batch_size = 8;
  extractor->train(train, val, tc);

  // 2. Checkpoint round-trip, the way a serving bootstrap would do it:
  //    save_checkpoint writes atomically with a CRC-32 footer, and
  //    load_checkpoint_or_fallback degrades a missing/corrupt file to the
  //    current weights instead of crashing the process.
  const std::string ckpt =
      (std::filesystem::temp_directory_path() / "serve_demo_ckpt.bin")
          .string();
  nn::save_checkpoint(extractor->model(), ckpt);
  const nn::CheckpointLoad loaded =
      nn::load_checkpoint_or_fallback(extractor->model(), ckpt);
  std::printf("checkpoint bootstrap: %s (%s)\n", nn::to_string(loaded), ckpt.c_str());
  std::filesystem::remove(ckpt);

  extractor->freeze();  // mandatory before serving

  // 3. The server: 2 workers, micro-batches of up to 8 formed within a 2 ms
  //    window, a 64-deep queue that blocks producers when full. Degraded
  //    mode is armed with the training set's majority answer: if the
  //    primary model faults repeatedly or the queue saturates, the circuit
  //    breaker routes requests there instead of failing them.
  serve::ServerConfig sc;
  sc.workers = 2;
  sc.max_batch = 8;
  sc.batch_window = std::chrono::microseconds(2000);
  sc.queue_capacity = 64;
  sc.overflow = serve::OverflowPolicy::kBlock;
  sc.fallback = serve::MajorityFallback::fit(train);
  sc.circuit.fault_threshold = 3;
  sc.circuit.cooldown = std::chrono::milliseconds(250);
  serve::InferenceServer server(extractor, sc);

  // 4. Four concurrent clients, 16 requests each, every request carrying a
  //    half-second deadline (generous here — it exists to show the API; an
  //    expired deadline fails the future with DeadlineExceededError without
  //    the clip ever reaching the model).
  std::printf("serving 64 requests on %zu workers...\n\n", sc.workers);
  sim::ClipGenerator gen(render, /*seed=*/42);
  std::vector<sim::VideoClip> clips;
  for (int i = 0; i < 16; ++i) clips.push_back(gen.generate().video);

  serve::ThreadPool::run(4, [&](std::size_t client) {
    for (std::size_t i = 0; i < 16; ++i) {
      std::future<core::ExtractionResult> future = server.submit_within(
          clips[(client * 16 + i) % clips.size()],
          std::chrono::milliseconds(500));
      const core::ExtractionResult result = future.get();
      if (client == 0 && i == 0) {
        std::printf("first result (min confidence %.2f):\n  %s\n\n",
                    result.min_confidence(),
                    sdl::to_sentence(result.description).c_str());
      }
    }
  });

  // 5. Finish cleanly and read the observability surface — including the
  //    fault counters (all zero on this healthy run; chaos_test and
  //    bench_r1_degradation show them moving).
  server.drain();
  const serve::ServerStats stats = server.stats();
  std::printf("%s\n%s\n", serve::ServerStats::table_header().c_str(),
              stats.table_row("serve_demo w=2").c_str());
  std::printf("\nbatch-size distribution:\n");
  for (std::size_t s = 1; s < stats.batch_size_counts.size(); ++s) {
    if (stats.batch_size_counts[s] == 0) continue;
    std::printf("  batch=%zu  x%llu\n", s,
                static_cast<unsigned long long>(stats.batch_size_counts[s]));
  }
  std::printf("\n%s\n", stats.fault_summary().c_str());
  return 0;
}
