// serve_demo — the extractor as a service: train a small model, stand up an
// InferenceServer, fire concurrent requests at it, and read the stats
// surface. A compressed tour of src/serve/ (see DESIGN.md "Serving
// runtime").
#include <cstdio>
#include <future>
#include <vector>

#include "core/extractor.hpp"
#include "data/dataset.hpp"
#include "sdl/description.hpp"
#include "serve/server.hpp"
#include "serve/thread_pool.hpp"
#include "sim/clipgen.hpp"

namespace core = tsdx::core;
namespace data = tsdx::data;
namespace sdl = tsdx::sdl;
namespace serve = tsdx::serve;
namespace sim = tsdx::sim;

int main() {
  // 1. A quickly-trained extractor (see examples/quickstart.cpp for the
  //    full training walkthrough).
  sim::RenderConfig render;
  render.height = render.width = 32;
  render.frames = 8;

  core::ModelConfig mc;
  mc.frames = 8;
  mc.image_size = 32;
  mc.patch_size = 8;
  mc.dim = 32;
  mc.depth = 2;
  mc.heads = 4;
  mc.attention = core::AttentionKind::kDividedST;

  std::printf("training a small extractor...\n");
  const data::Dataset train = data::Dataset::synthesize(render, 96, 1);
  const data::Dataset val = data::Dataset::synthesize(render, 24, 2);
  auto extractor = std::make_shared<core::ScenarioExtractor>(mc, /*seed=*/7);
  core::TrainConfig tc;
  tc.epochs = 3;
  tc.batch_size = 8;
  extractor->train(train, val, tc);
  extractor->freeze();  // mandatory before serving

  // 2. The server: 2 workers, micro-batches of up to 8 formed within a 2 ms
  //    window, a 64-deep queue that blocks producers when full.
  serve::ServerConfig sc;
  sc.workers = 2;
  sc.max_batch = 8;
  sc.batch_window = std::chrono::microseconds(2000);
  sc.queue_capacity = 64;
  sc.overflow = serve::OverflowPolicy::kBlock;
  serve::InferenceServer server(extractor, sc);

  // 3. Four concurrent clients, 16 requests each.
  std::printf("serving 64 requests on %zu workers...\n\n", sc.workers);
  sim::ClipGenerator gen(render, /*seed=*/42);
  std::vector<sim::VideoClip> clips;
  for (int i = 0; i < 16; ++i) clips.push_back(gen.generate().video);

  serve::ThreadPool::run(4, [&](std::size_t client) {
    for (std::size_t i = 0; i < 16; ++i) {
      std::future<core::ExtractionResult> future =
          server.submit(clips[(client * 16 + i) % clips.size()]);
      const core::ExtractionResult result = future.get();
      if (client == 0 && i == 0) {
        std::printf("first result (min confidence %.2f):\n  %s\n\n",
                    result.min_confidence(),
                    sdl::to_sentence(result.description).c_str());
      }
    }
  });

  // 4. Finish cleanly and read the observability surface.
  server.drain();
  const serve::ServerStats stats = server.stats();
  std::printf("%s\n%s\n", serve::ServerStats::table_header().c_str(),
              stats.table_row("serve_demo w=2").c_str());
  std::printf("\nbatch-size distribution:\n");
  for (std::size_t s = 1; s < stats.batch_size_counts.size(); ++s) {
    if (stats.batch_size_counts[s] == 0) continue;
    std::printf("  batch=%zu  x%llu\n", s,
                static_cast<unsigned long long>(stats.batch_size_counts[s]));
  }
  return 0;
}
