// train_extractor — a small training CLI: choose the attention variant,
// dataset size and schedule, train, checkpoint to disk, reload into a fresh
// model, and verify the reload reproduces the same test metrics.
//
// Run:  ./train_extractor [attention] [clips] [epochs] [ckpt_path]
//   attention in {joint, divided_st, factorized, space_only}
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "core/extractor.hpp"
#include "nn/serialize.hpp"

using namespace tsdx;

namespace {

core::AttentionKind parse_attention(const char* s) {
  if (std::strcmp(s, "joint") == 0) return core::AttentionKind::kJoint;
  if (std::strcmp(s, "divided_st") == 0) return core::AttentionKind::kDividedST;
  if (std::strcmp(s, "factorized") == 0) {
    return core::AttentionKind::kFactorizedEncoder;
  }
  if (std::strcmp(s, "space_only") == 0) return core::AttentionKind::kSpaceOnly;
  std::fprintf(stderr,
               "unknown attention '%s' (joint|divided_st|factorized|"
               "space_only), using divided_st\n",
               s);
  return core::AttentionKind::kDividedST;
}

}  // namespace

int main(int argc, char** argv) {
  const core::AttentionKind kind =
      argc > 1 ? parse_attention(argv[1]) : core::AttentionKind::kDividedST;
  const std::size_t clips =
      argc > 2 ? static_cast<std::size_t>(std::atoi(argv[2])) : 240;
  const std::size_t epochs =
      argc > 3 ? static_cast<std::size_t>(std::atoi(argv[3])) : 10;
  const char* ckpt_path = argc > 4 ? argv[4] : "/tmp/tsdx_extractor.ckpt";

  core::ModelConfig cfg = core::ModelConfig::tiny();
  cfg.frames = 8;
  cfg.attention = kind;
  sim::RenderConfig render_cfg;
  render_cfg.height = render_cfg.width = cfg.image_size;
  render_cfg.frames = cfg.frames;

  const data::Dataset ds = data::Dataset::synthesize(render_cfg, clips, 5);
  const auto splits = ds.split(0.7, 0.15);

  core::ScenarioExtractor extractor(cfg, 6);
  std::printf("model %s: %lld parameters, %zu train clips\n",
              extractor.model().backbone().name().c_str(),
              static_cast<long long>(extractor.model().num_parameters()),
              splits.train.size());

  core::TrainConfig tc;
  tc.epochs = epochs;
  tc.batch_size = 8;
  tc.verbose = true;
  extractor.train(splits.train, splits.val, tc);
  extractor.model().set_training(false);

  const data::SlotMetrics before =
      core::Trainer::evaluate(extractor.model(), splits.test);
  std::printf("\ntest mean accuracy %.3f / macro-F1 %.3f\n",
              before.mean_accuracy(), before.mean_macro_f1());

  // Checkpoint, reload into a fresh model, verify identical metrics.
  nn::save_checkpoint(extractor.model(), ckpt_path);
  std::printf("checkpoint written to %s\n", ckpt_path);

  core::ScenarioExtractor reloaded(cfg, /*seed=*/999);  // different init
  nn::load_checkpoint(reloaded.model(), ckpt_path);
  reloaded.model().set_training(false);
  const data::SlotMetrics after =
      core::Trainer::evaluate(reloaded.model(), splits.test);
  std::printf("reloaded model test mean accuracy %.3f (must match %.3f)\n",
              after.mean_accuracy(), before.mean_accuracy());
  return after.mean_accuracy() == before.mean_accuracy() ? 0 : 1;
}
