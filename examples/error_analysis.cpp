// error_analysis — where does the extractor go wrong? Per-slot confusion
// matrices, the most frequent confusions with class names, and a worst-case
// gallery with slot-level diffs against ground truth.
//
// Run:  ./error_analysis [num_clips] [epochs]
#include <algorithm>
#include <cstdio>
#include <cstdlib>

#include "core/extractor.hpp"
#include "sdl/diff.hpp"

using namespace tsdx;

int main(int argc, char** argv) {
  const std::size_t num_clips =
      argc > 1 ? static_cast<std::size_t>(std::atoi(argv[1])) : 240;
  const std::size_t epochs =
      argc > 2 ? static_cast<std::size_t>(std::atoi(argv[2])) : 10;

  core::ModelConfig cfg = core::ModelConfig::tiny();
  cfg.frames = 8;
  sim::RenderConfig render;
  render.height = render.width = cfg.image_size;
  render.frames = cfg.frames;

  const data::Dataset ds = data::Dataset::synthesize(render, num_clips, 61);
  const auto splits = ds.split(0.7, 0.15);

  std::printf("Training (%zu epochs)...\n", epochs);
  core::ScenarioExtractor extractor(cfg, 62);
  core::TrainConfig tc;
  tc.epochs = epochs;
  tc.batch_size = 8;
  tc.restore_best = true;
  extractor.train(splits.train, splits.val, tc);
  extractor.model().set_training(false);
  extractor.set_constrained_decoding(true);

  // Evaluate and remember per-example results.
  data::SlotMetrics metrics;
  struct Case {
    std::size_t index;
    std::size_t wrong_slots;
    core::ExtractionResult result;
  };
  std::vector<Case> cases;
  for (std::size_t i = 0; i < splits.test.size(); ++i) {
    core::ExtractionResult result = extractor.extract(splits.test[i].video);
    const sdl::SlotLabels pred = sdl::to_slot_labels(result.description);
    metrics.add(splits.test[i].labels, pred);
    const auto diffs =
        sdl::diff_descriptions(splits.test[i].description, result.description);
    cases.push_back(Case{i, diffs.size(), std::move(result)});
  }

  // --- per-slot summary with dominant confusion -------------------------------
  std::printf("\nPer-slot accuracy and dominant confusion (test, n=%zu):\n",
              splits.test.size());
  for (std::size_t s = 0; s < sdl::kNumSlots; ++s) {
    const auto slot = static_cast<sdl::Slot>(s);
    const data::ConfusionMatrix& cm = metrics.slot(slot);
    // Find the largest off-diagonal count.
    std::size_t bt = 0, bp = 0;
    std::uint64_t best = 0;
    for (std::size_t t = 0; t < cm.num_classes(); ++t) {
      for (std::size_t p = 0; p < cm.num_classes(); ++p) {
        if (t != p && cm.count(t, p) > best) {
          best = cm.count(t, p);
          bt = t;
          bp = p;
        }
      }
    }
    std::printf("  %-16s acc %.3f  f1 %.3f",
                std::string(sdl::to_string(slot)).c_str(), cm.accuracy(),
                cm.macro_f1());
    if (best > 0) {
      std::printf("   worst: %s -> %s (%llu)",
                  std::string(sdl::slot_class_name(slot, bt)).c_str(),
                  std::string(sdl::slot_class_name(slot, bp)).c_str(),
                  static_cast<unsigned long long>(best));
    }
    std::printf("\n");
  }

  // --- worst-case gallery -------------------------------------------------------
  std::sort(cases.begin(), cases.end(), [](const Case& a, const Case& b) {
    return a.wrong_slots > b.wrong_slots;
  });
  std::printf("\nThree worst extractions:\n");
  for (std::size_t i = 0; i < std::min<std::size_t>(3, cases.size()); ++i) {
    const Case& c = cases[i];
    const auto& example = splits.test[c.index];
    std::printf("clip %zu (%zu/8 slots wrong, min conf %.2f)\n", c.index,
                c.wrong_slots, c.result.min_confidence());
    std::printf("  truth    : %s\n",
                sdl::to_sentence(example.description).c_str());
    std::printf("  extracted: %s\n",
                sdl::to_sentence(c.result.description).c_str());
    std::printf("  diff     : %s\n",
                sdl::diff_to_string(sdl::diff_descriptions(
                                        example.description,
                                        c.result.description))
                    .c_str());
  }
  std::printf("\nExact-match rate: %.3f, mean accuracy %.3f\n",
              metrics.exact_match(), metrics.mean_accuracy());
  return 0;
}
