// coverage_report — scenario-coverage auditing, the validation use case the
// SDL enables: which (situation x behaviour) combinations has a video corpus
// actually exercised, and what is still missing?
//
// The report is computed twice — from ground-truth descriptions and from the
// *extracted* ones — so you can see how much extractor error perturbs a
// coverage audit. Also exports the extracted descriptions as JSONL.
//
// Run:  ./coverage_report [corpus_size] [epochs] [jsonl_out]
#include <cstdio>
#include <cstdlib>

#include "core/extractor.hpp"
#include "data/export.hpp"
#include "sdl/coverage.hpp"
#include "sdl/spec.hpp"

using namespace tsdx;

namespace {

void print_coverage(const char* label, const sdl::CoverageAnalyzer& cov) {
  std::printf("%s (%zu clips):\n", label, cov.count());
  std::printf("  overall slot-value coverage: %.1f%%\n",
              100.0 * cov.overall_value_coverage());
  const std::pair<sdl::Slot, sdl::Slot> pairs[] = {
      {sdl::Slot::kRoadLayout, sdl::Slot::kEgoAction},
      {sdl::Slot::kActorType, sdl::Slot::kActorAction},
      {sdl::Slot::kTimeOfDay, sdl::Slot::kActorAction},
  };
  for (const auto& [a, b] : pairs) {
    std::printf("  pair %s x %s: %.1f%% of valid combos\n",
                std::string(sdl::to_string(a)).c_str(),
                std::string(sdl::to_string(b)).c_str(),
                100.0 * cov.pair_coverage(a, b));
  }
}

}  // namespace

int main(int argc, char** argv) {
  const std::size_t corpus_size =
      argc > 1 ? static_cast<std::size_t>(std::atoi(argv[1])) : 150;
  const std::size_t epochs =
      argc > 2 ? static_cast<std::size_t>(std::atoi(argv[2])) : 10;
  const char* jsonl_out = argc > 3 ? argv[3] : "/tmp/tsdx_extracted.jsonl";

  core::ModelConfig cfg = core::ModelConfig::tiny();
  cfg.frames = 8;
  sim::RenderConfig render;
  render.height = render.width = cfg.image_size;
  render.frames = cfg.frames;

  std::printf("Training extractor...\n");
  const data::Dataset train_set = data::Dataset::synthesize(render, 240, 21);
  const auto splits = train_set.split(0.85, 0.15);
  core::ScenarioExtractor extractor(cfg, 22);
  core::TrainConfig tc;
  tc.epochs = epochs;
  tc.batch_size = 8;
  extractor.train(splits.train, splits.val, tc);
  extractor.model().set_training(false);

  std::printf("Auditing a corpus of %zu clips...\n\n", corpus_size);
  const data::Dataset corpus =
      data::Dataset::synthesize(render, corpus_size, 4711);

  sdl::CoverageAnalyzer truth_cov, extracted_cov;
  std::vector<data::DescriptionRecord> records;
  for (std::size_t i = 0; i < corpus.size(); ++i) {
    truth_cov.add(corpus[i].description);
    const auto result = extractor.extract(corpus[i].video);
    extracted_cov.add(result.description);
    records.push_back({"clip_" + std::to_string(i), result.description});
  }

  print_coverage("Ground-truth coverage", truth_cov);
  std::printf("\n");
  print_coverage("Extracted-description coverage", extracted_cov);

  std::printf("\nMissing (road_layout x ego_action) combos per ground truth:\n");
  for (const auto& mp : truth_cov.missing_pairs(sdl::Slot::kRoadLayout,
                                                sdl::Slot::kEgoAction)) {
    std::printf("  %s x %s\n", mp.value_a.c_str(), mp.value_b.c_str());
  }

  // Close the first coverage gap by *synthesizing* a matching scenario:
  // sample a valid completion of the missing (layout, ego action) pair and
  // render a clip for it.
  const auto missing =
      truth_cov.missing_pairs(sdl::Slot::kRoadLayout, sdl::Slot::kEgoAction);
  if (!missing.empty()) {
    sdl::PartialScenarioSpec spec;
    spec.road_layout = sdl::parse_road_layout(missing[0].value_a);
    spec.ego_action = sdl::parse_ego_action(missing[0].value_b);
    tsdx::tensor::Rng rng(99);
    if (const auto synthesized = sdl::sample_matching(spec, rng)) {
      sim::ClipGenerator gen(render, 12345);
      const sim::LabeledClip clip = gen.generate_for(*synthesized);
      std::printf("\nSynthesized a clip for the first gap (%s x %s):\n  %s\n",
                  missing[0].value_a.c_str(), missing[0].value_b.c_str(),
                  sdl::to_sentence(clip.description).c_str());
    }
  }

  data::write_jsonl_file(records, jsonl_out);
  std::printf("\nExtracted descriptions exported to %s (JSONL, %zu records)\n",
              jsonl_out, records.size());
  return 0;
}
