// data_test.cpp — dataset synthesis/splits/batching and the metrics suite.
#include <gtest/gtest.h>

#include "data/dataset.hpp"
#include "data/corruption.hpp"
#include "data/export.hpp"
#include "data/metrics.hpp"
#include "sim/world.hpp"
#include <algorithm>
#include <filesystem>

namespace data = tsdx::data;
namespace sdl = tsdx::sdl;
namespace sim = tsdx::sim;

namespace {

sim::RenderConfig tiny_render() {
  sim::RenderConfig cfg;
  cfg.height = cfg.width = 16;
  cfg.frames = 2;
  return cfg;
}

}  // namespace

// ---- dataset ---------------------------------------------------------------------

TEST(DatasetTest, SynthesizeDeterministic) {
  const data::Dataset a = data::Dataset::synthesize(tiny_render(), 6, 42);
  const data::Dataset b = data::Dataset::synthesize(tiny_render(), 6, 42);
  ASSERT_EQ(a.size(), 6u);
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].description, b[i].description);
    EXPECT_EQ(a[i].video.data, b[i].video.data);
    EXPECT_EQ(a[i].labels, sdl::to_slot_labels(a[i].description));
  }
}

TEST(DatasetTest, SplitFractions) {
  const data::Dataset ds = data::Dataset::synthesize(tiny_render(), 20, 1);
  const auto splits = ds.split(0.5, 0.25);
  EXPECT_EQ(splits.train.size(), 10u);
  EXPECT_EQ(splits.val.size(), 5u);
  EXPECT_EQ(splits.test.size(), 5u);
  EXPECT_THROW(ds.split(0.8, 0.3), std::invalid_argument);
}

TEST(DatasetTest, TakePrefix) {
  const data::Dataset ds = data::Dataset::synthesize(tiny_render(), 10, 2);
  EXPECT_EQ(ds.take(4).size(), 4u);
  EXPECT_EQ(ds.take(100).size(), 10u);
  EXPECT_EQ(ds.take(4)[0].description, ds[0].description);
}

TEST(DatasetTest, LabelHistogramSums) {
  const data::Dataset ds = data::Dataset::synthesize(tiny_render(), 30, 3);
  const auto hist = ds.label_histogram();
  for (std::size_t s = 0; s < sdl::kNumSlots; ++s) {
    std::size_t total = 0;
    for (std::size_t c : hist[s]) total += c;
    EXPECT_EQ(total, 30u);
  }
}

TEST(BatcherTest, BatchStackingLayout) {
  const data::Dataset ds = data::Dataset::synthesize(tiny_render(), 4, 4);
  const data::Batch batch = ds.make_batch(1, 2);
  EXPECT_EQ(batch.size(), 2);
  EXPECT_EQ(batch.video.shape(),
            (tsdx::tensor::Shape{2, 2, sim::kNumChannels, 16, 16}));
  // Batch row i must byte-match example video i+1.
  const auto bd = batch.video.data();
  const auto& v1 = ds[1].video.data;
  const auto& v2 = ds[2].video.data;
  for (std::size_t i = 0; i < v1.size(); ++i) {
    EXPECT_EQ(bd[i], v1[i]);
    EXPECT_EQ(bd[v1.size() + i], v2[i]);
  }
  for (std::size_t s = 0; s < sdl::kNumSlots; ++s) {
    EXPECT_EQ(batch.labels[s][0], static_cast<std::int64_t>(ds[1].labels[s]));
    EXPECT_EQ(batch.labels[s][1], static_cast<std::int64_t>(ds[2].labels[s]));
  }
}

TEST(BatcherTest, EpochCoversEveryExampleOnce) {
  const data::Dataset ds = data::Dataset::synthesize(tiny_render(), 10, 5);
  data::Batcher batcher(ds, 3);
  tsdx::tensor::Rng rng(9);
  const auto batches = batcher.epoch(rng);
  EXPECT_EQ(batches.size(), 4u);  // 3+3+3+1
  std::vector<bool> seen(10, false);
  for (const auto& batch : batches) {
    for (std::size_t idx : batch) {
      EXPECT_FALSE(seen[idx]);
      seen[idx] = true;
    }
  }
  for (bool s : seen) EXPECT_TRUE(s);
}

TEST(BatcherTest, ShuffleIsDeterministicInRng) {
  const data::Dataset ds = data::Dataset::synthesize(tiny_render(), 10, 6);
  data::Batcher batcher(ds, 4);
  tsdx::tensor::Rng r1(7), r2(7), r3(8);
  EXPECT_EQ(batcher.epoch(r1), batcher.epoch(r2));
  EXPECT_NE(batcher.epoch(r1), batcher.epoch(r3));
}

TEST(BatcherTest, EmptyBatchThrows) {
  const data::Dataset ds = data::Dataset::synthesize(tiny_render(), 2, 7);
  data::Batcher batcher(ds, 2);
  EXPECT_THROW(batcher.gather({}), std::invalid_argument);
}

// ---- confusion matrix / classification metrics ----------------------------------------

TEST(ConfusionTest, AccuracyAndCounts) {
  data::ConfusionMatrix m(3);
  m.add(0, 0);
  m.add(0, 0);
  m.add(1, 1);
  m.add(1, 2);
  m.add(2, 0);
  EXPECT_EQ(m.total(), 5u);
  EXPECT_EQ(m.count(1, 2), 1u);
  EXPECT_DOUBLE_EQ(m.accuracy(), 3.0 / 5.0);
  EXPECT_THROW(m.add(3, 0), std::out_of_range);
}

TEST(ConfusionTest, PrecisionRecallF1HandChecked) {
  data::ConfusionMatrix m(2);
  // class 1: tp=2 fp=1 fn=1
  m.add(1, 1);
  m.add(1, 1);
  m.add(1, 0);  // fn
  m.add(0, 1);  // fp
  m.add(0, 0);
  EXPECT_DOUBLE_EQ(m.precision(1), 2.0 / 3.0);
  EXPECT_DOUBLE_EQ(m.recall(1), 2.0 / 3.0);
  EXPECT_NEAR(m.f1(1), 2.0 / 3.0, 1e-12);
}

TEST(ConfusionTest, MacroF1IgnoresAbsentClasses) {
  data::ConfusionMatrix m(3);
  // class 2 never appears in ground truth
  m.add(0, 0);
  m.add(1, 1);
  EXPECT_DOUBLE_EQ(m.macro_f1(), 1.0);
}

TEST(ConfusionTest, DegenerateEmptyMatrix) {
  data::ConfusionMatrix m(4);
  EXPECT_DOUBLE_EQ(m.accuracy(), 0.0);
  EXPECT_DOUBLE_EQ(m.macro_f1(), 0.0);
  EXPECT_DOUBLE_EQ(m.precision(0), 0.0);
}

TEST(SlotMetricsTest, PerSlotAndExactMatch) {
  data::SlotMetrics metrics;
  sdl::SlotLabels truth = {0, 1, 2, 0, 3, 1, 2, 0};
  metrics.add(truth, truth);  // exact
  sdl::SlotLabels wrong = truth;
  wrong[0] = 1;  // one slot wrong
  metrics.add(truth, wrong);
  EXPECT_EQ(metrics.count(), 2u);
  EXPECT_DOUBLE_EQ(metrics.exact_match(), 0.5);
  EXPECT_DOUBLE_EQ(metrics.slot_accuracy(sdl::Slot::kRoadLayout), 0.5);
  EXPECT_DOUBLE_EQ(metrics.slot_accuracy(sdl::Slot::kEgoAction), 1.0);
  EXPECT_NEAR(metrics.mean_accuracy(), (0.5 + 7.0) / 8.0, 1e-12);
}

// ---- retrieval metrics -----------------------------------------------------------------

TEST(RetrievalTest, PrecisionAtK) {
  const std::vector<bool> rel = {true, false, true, true, false};
  EXPECT_DOUBLE_EQ(data::precision_at_k(rel, 1), 1.0);
  EXPECT_DOUBLE_EQ(data::precision_at_k(rel, 2), 0.5);
  EXPECT_DOUBLE_EQ(data::precision_at_k(rel, 4), 0.75);
  EXPECT_DOUBLE_EQ(data::precision_at_k(rel, 0), 0.0);
  // k beyond the list length: count hits in the list, divide by k.
  EXPECT_DOUBLE_EQ(data::precision_at_k(rel, 10), 0.3);
}

TEST(RetrievalTest, AveragePrecisionHandChecked) {
  // Relevant at ranks 1 and 3: AP = (1/1 + 2/3) / 2 = 5/6.
  EXPECT_NEAR(data::average_precision({true, false, true}), 5.0 / 6.0, 1e-12);
  EXPECT_DOUBLE_EQ(data::average_precision({false, false}), 0.0);
  EXPECT_DOUBLE_EQ(data::average_precision({}), 0.0);
  EXPECT_DOUBLE_EQ(data::average_precision({true, true}), 1.0);
}

TEST(RetrievalTest, MeanAveragePrecision) {
  const std::vector<std::vector<bool>> lists = {{true}, {false, true}};
  EXPECT_NEAR(data::mean_average_precision(lists), (1.0 + 0.5) / 2.0, 1e-12);
  EXPECT_DOUBLE_EQ(data::mean_average_precision({}), 0.0);
}

// ---- JSONL export ------------------------------------------------------------------------

TEST(ExportTest, JsonlRoundTrip) {
  tsdx::tensor::Rng rng(21);
  std::vector<data::DescriptionRecord> records;
  for (int i = 0; i < 5; ++i) {
    records.push_back({"clip_" + std::to_string(i),
                       tsdx::sim::sample_description(rng)});
  }
  const std::string text = data::to_jsonl(records);
  EXPECT_EQ(std::count(text.begin(), text.end(), '\n'), 5);
  std::string error;
  const auto back = data::from_jsonl(text, &error);
  ASSERT_TRUE(back.has_value()) << error;
  EXPECT_EQ(*back, records);
}

TEST(ExportTest, BlankLinesSkippedAndErrorsReported) {
  const auto ok = data::from_jsonl("\n   \n");
  ASSERT_TRUE(ok.has_value());
  EXPECT_TRUE(ok->empty());

  std::string error;
  EXPECT_FALSE(data::from_jsonl("{not json}\n", &error).has_value());
  EXPECT_NE(error.find("line 1"), std::string::npos);

  // Valid JSON but not a description.
  error.clear();
  EXPECT_FALSE(data::from_jsonl("{\"id\":\"x\"}\n", &error).has_value());
  EXPECT_NE(error.find("line 1"), std::string::npos);
}

TEST(ExportTest, FileRoundTrip) {
  tsdx::tensor::Rng rng(22);
  std::vector<data::DescriptionRecord> records = {
      {"a", tsdx::sim::sample_description(rng)},
      {"b", tsdx::sim::sample_description(rng)}};
  const std::string path =
      (std::filesystem::temp_directory_path() / "tsdx_export.jsonl").string();
  data::write_jsonl_file(records, path);
  const auto back = data::read_jsonl_file(path);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(*back, records);
  std::filesystem::remove(path);
  EXPECT_THROW(data::read_jsonl_file("/nonexistent/x.jsonl"),
               std::runtime_error);
}

// ---- corruption models --------------------------------------------------------------

TEST(CorruptionTest, ZeroSeverityIsIdentity) {
  const data::Dataset ds = data::Dataset::synthesize(tiny_render(), 1, 30);
  tsdx::tensor::Rng rng(1);
  for (auto kind : {data::Corruption::kSensorNoise,
                    data::Corruption::kTrackerDropout,
                    data::Corruption::kFrameDrop}) {
    const auto out = data::corrupt_clip(ds[0].video, kind, 0.0, rng);
    EXPECT_EQ(out.data, ds[0].video.data) << data::corruption_name(kind);
  }
}

TEST(CorruptionTest, SeverityRangeChecked) {
  const data::Dataset ds = data::Dataset::synthesize(tiny_render(), 1, 31);
  tsdx::tensor::Rng rng(2);
  EXPECT_THROW(
      data::corrupt_clip(ds[0].video, data::Corruption::kSensorNoise, 1.5, rng),
      std::invalid_argument);
  EXPECT_THROW(
      data::corrupt_clip(ds[0].video, data::Corruption::kSensorNoise, -0.1,
                         rng),
      std::invalid_argument);
}

TEST(CorruptionTest, SensorNoisePerturbsButStaysInRange) {
  const data::Dataset ds = data::Dataset::synthesize(tiny_render(), 1, 32);
  tsdx::tensor::Rng rng(3);
  const auto out = data::corrupt_clip(ds[0].video,
                                      data::Corruption::kSensorNoise, 0.5, rng);
  double diff = 0;
  for (std::size_t i = 0; i < out.data.size(); ++i) {
    EXPECT_GE(out.data[i], 0.0f);
    EXPECT_LE(out.data[i], 1.0f);
    diff += std::abs(out.data[i] - ds[0].video.data[i]);
  }
  EXPECT_GT(diff / out.data.size(), 0.01);
}

TEST(CorruptionTest, TrackerDropoutZeroesSalientChannelOnly) {
  const data::Dataset ds = data::Dataset::synthesize(tiny_render(), 4, 33);
  tsdx::tensor::Rng rng(4);
  // severity 1.0: every frame's salient channel must be zero; the other
  // channels untouched.
  const auto& clip = ds[0].video;
  const auto out =
      data::corrupt_clip(clip, data::Corruption::kTrackerDropout, 1.0, rng);
  for (std::int64_t t = 0; t < clip.frames; ++t) {
    for (std::int64_t y = 0; y < clip.height; ++y) {
      for (std::int64_t x = 0; x < clip.width; ++x) {
        EXPECT_EQ(out.at(t, 3, y, x), 0.0f);
        EXPECT_EQ(out.at(t, 0, y, x), clip.at(t, 0, y, x));
        EXPECT_EQ(out.at(t, 1, y, x), clip.at(t, 1, y, x));
      }
    }
  }
}

TEST(CorruptionTest, FrameDropAtFullSeverityFreezesFirstFrame) {
  const data::Dataset ds = data::Dataset::synthesize(tiny_render(), 1, 34);
  tsdx::tensor::Rng rng(5);
  const auto& clip = ds[0].video;
  const auto out =
      data::corrupt_clip(clip, data::Corruption::kFrameDrop, 1.0, rng);
  const std::size_t frame =
      static_cast<std::size_t>(sim::kNumChannels * clip.height * clip.width);
  for (std::int64_t t = 1; t < clip.frames; ++t) {
    for (std::size_t i = 0; i < frame; ++i) {
      EXPECT_EQ(out.data[static_cast<std::size_t>(t) * frame + i],
                out.data[i]);
    }
  }
}
