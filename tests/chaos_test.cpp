// chaos_test.cpp — scripted-failure coverage of the fault-tolerance stack:
// worker supervision, the circuit breaker + degraded fallback, per-request
// deadlines, and checkpoint corruption detection. Every failure here is
// *scheduled* through tsdx::serve::fault (a seeded FaultPlan), so the same
// crashes happen at the same dispatches on every run — including under the
// CI ThreadSanitizer job, which runs this binary directly.
#include <gtest/gtest.h>

#include <array>
#include <chrono>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <future>
#include <memory>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "core/extractor.hpp"
#include "nn/layers.hpp"
#include "obs/metrics.hpp"
#include "obs/slo.hpp"
#include "obs/trace.hpp"
#include "nn/serialize.hpp"
#include "sdl/description.hpp"
#include "serve/fallback.hpp"
#include "serve/fault/inject.hpp"
#include "serve/router.hpp"
#include "serve/server.hpp"
#include "serve/thread_pool.hpp"
#include "sim/clipgen.hpp"

namespace core = tsdx::core;
namespace nn = tsdx::nn;
namespace obs = tsdx::obs;
namespace sdl = tsdx::sdl;
namespace serve = tsdx::serve;
namespace fault = tsdx::serve::fault;
namespace sim = tsdx::sim;

namespace {

core::ModelConfig micro_config() {
  core::ModelConfig cfg;
  cfg.frames = 2;
  cfg.image_size = 8;
  cfg.patch_size = 4;
  cfg.tubelet_frames = 1;
  cfg.dim = 8;
  cfg.depth = 1;
  cfg.heads = 2;
  cfg.attention = core::AttentionKind::kDividedST;
  return cfg;
}

std::shared_ptr<core::ScenarioExtractor> make_frozen_extractor(
    std::uint64_t seed = 7) {
  auto extractor =
      std::make_shared<core::ScenarioExtractor>(micro_config(), seed);
  extractor->freeze();
  return extractor;
}

std::vector<sim::VideoClip> make_clips(std::size_t count,
                                       std::uint64_t seed = 11) {
  const core::ModelConfig cfg = micro_config();
  sim::RenderConfig render;
  render.height = render.width = cfg.image_size;
  render.frames = cfg.frames;
  sim::ClipGenerator gen(render, seed);
  std::vector<sim::VideoClip> clips;
  clips.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    clips.push_back(gen.generate().video);
  }
  return clips;
}

/// A canned, always-valid fallback (all-zero slot labels: straight road,
/// daytime, clear, sparse, ego cruising, no salient actor).
std::shared_ptr<serve::MajorityFallback> make_fallback() {
  sdl::SlotLabels labels{};
  std::array<float, sdl::kNumSlots> confidence{};
  confidence.fill(1.0f);
  return std::make_shared<serve::MajorityFallback>(labels, confidence);
}

/// One worker, batches of one, no batching window: extract_batch dispatch N
/// is exactly request N, so FaultPlan call indices map 1:1 to requests.
serve::ServerConfig sequential_config() {
  serve::ServerConfig cfg;
  cfg.workers = 1;
  cfg.max_batch = 1;
  cfg.batch_window = std::chrono::microseconds{0};
  cfg.queue_capacity = 8;
  return cfg;
}

bool is_degraded(const core::ExtractionResult& result) {
  return !result.warnings.empty() &&
         result.warnings.front() == serve::kDegradedWarning;
}

std::string temp_path(const char* name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

std::vector<float> flat_weights(const nn::Module& module) {
  std::vector<float> flat;
  for (const auto& [name, t] : module.named_parameters()) {
    const auto& data = t.data();
    flat.insert(flat.end(), data.begin(), data.end());
  }
  return flat;
}

}  // namespace

// ---- worker supervision ---------------------------------------------------------

// An injected fault kills the worker mid-batch: the batch's future must fail
// with the *injected* error (typed, not swallowed), and the supervisor must
// restart the worker so the next request completes on the primary model.
// Without a fallback configured, the circuit never trips.
TEST(ChaosTest, InjectedFaultFailsBatchAndSupervisorRestartsWorker) {
  auto server = serve::InferenceServer(make_frozen_extractor(),
                                       sequential_config());
  const auto clips = make_clips(2);

  fault::FaultPlan plan;
  plan.throw_on_extract_calls = {1};
  fault::ScopedFaultPlan armed(plan);

  auto doomed = server.submit(clips[0]);
  EXPECT_THROW(doomed.get(), fault::InjectedFaultError);

  // The replacement worker (same index, fresh thread) serves this one.
  auto healthy = server.submit(clips[1]);
  EXPECT_FALSE(is_degraded(healthy.get()));
  server.drain();

  const serve::ServerStats stats = server.stats();
  EXPECT_EQ(stats.worker_faults, 1u);
  EXPECT_EQ(stats.failed, 1u);
  EXPECT_EQ(stats.completed, 1u);
  EXPECT_EQ(stats.degraded_completions, 0u);
  EXPECT_EQ(stats.circuit_trips, 0u);
  EXPECT_EQ(stats.circuit_state, serve::CircuitState::kClosed);
}

// ---- circuit breaker ------------------------------------------------------------

// The full trip-and-heal arc: K consecutive injected faults open the
// circuit; while OPEN, requests are answered by the fallback (explicitly
// marked degraded); after the cooldown a probe reaches the healthy primary
// and the circuit closes again.
TEST(ChaosTest, CircuitTripsToFallbackThenProbeHeals) {
  serve::ServerConfig cfg = sequential_config();
  cfg.fallback = make_fallback();
  cfg.circuit.fault_threshold = 2;
  cfg.circuit.cooldown = std::chrono::milliseconds(50);
  auto server = serve::InferenceServer(make_frozen_extractor(), cfg);
  const auto clips = make_clips(4);

  fault::FaultPlan plan;
  plan.throw_on_extract_calls = {1, 2};
  fault::ScopedFaultPlan armed(plan);

  EXPECT_THROW(server.submit(clips[0]).get(), fault::InjectedFaultError);
  EXPECT_EQ(server.circuit_state(), serve::CircuitState::kClosed);
  EXPECT_THROW(server.submit(clips[1]).get(), fault::InjectedFaultError);
  EXPECT_EQ(server.circuit_state(), serve::CircuitState::kOpen);

  // OPEN: the fallback answers — degraded, marked as such, and counted.
  const core::ExtractionResult degraded = server.submit(clips[2]).get();
  EXPECT_TRUE(is_degraded(degraded));
  EXPECT_EQ(server.stats().degraded_completions, 1u);
  EXPECT_EQ(server.circuit_state(), serve::CircuitState::kOpen);

  // After the cooldown the next batch is the probe; extract call #3 is not
  // in the plan, so the probe succeeds and the circuit heals.
  std::this_thread::sleep_for(cfg.circuit.cooldown +
                              std::chrono::milliseconds(20));
  const core::ExtractionResult primary = server.submit(clips[3]).get();
  EXPECT_FALSE(is_degraded(primary));
  EXPECT_EQ(server.circuit_state(), serve::CircuitState::kClosed);
  server.drain();

  const serve::ServerStats stats = server.stats();
  EXPECT_EQ(stats.worker_faults, 2u);
  EXPECT_EQ(stats.failed, 2u);
  EXPECT_EQ(stats.completed, 2u);  // one degraded + one primary
  EXPECT_EQ(stats.degraded_completions, 1u);
  EXPECT_EQ(stats.circuit_trips, 1u);
  EXPECT_EQ(stats.circuit_state, serve::CircuitState::kClosed);
}

// The same fault story through the metrics registry: a server given a
// private obs::Registry surfaces its fault/degraded counters there
// (process-scrape view), with the circuit state mirrored as a gauge
// (kClosed = 0, kOpen = 1, kHalfOpen = 2).
TEST(ChaosTest, FaultCountersSurfaceThroughTheMetricsRegistry) {
  auto registry = std::make_shared<obs::Registry>();
  serve::ServerConfig cfg = sequential_config();
  cfg.fallback = make_fallback();
  cfg.circuit.fault_threshold = 2;
  cfg.circuit.cooldown = std::chrono::milliseconds(50);
  cfg.metrics = registry;
  auto server = serve::InferenceServer(make_frozen_extractor(), cfg);
  const auto clips = make_clips(4);

  EXPECT_EQ(registry->gauge("serve.circuit_state").value(), 0);  // closed

  fault::FaultPlan plan;
  plan.throw_on_extract_calls = {1, 2};
  fault::ScopedFaultPlan armed(plan);

  EXPECT_THROW(server.submit(clips[0]).get(), fault::InjectedFaultError);
  EXPECT_THROW(server.submit(clips[1]).get(), fault::InjectedFaultError);
  EXPECT_EQ(registry->counter("serve.worker_faults").value(), 2u);
  EXPECT_EQ(registry->counter("serve.circuit_trips").value(), 1u);
  EXPECT_EQ(registry->gauge("serve.circuit_state").value(), 1);  // open

  EXPECT_TRUE(is_degraded(server.submit(clips[2]).get()));
  EXPECT_EQ(registry->counter("serve.degraded_completions").value(), 1u);

  // After the cooldown the probe heals the circuit; the gauge follows.
  std::this_thread::sleep_for(cfg.circuit.cooldown +
                              std::chrono::milliseconds(20));
  EXPECT_FALSE(is_degraded(server.submit(clips[3]).get()));
  EXPECT_EQ(registry->gauge("serve.circuit_state").value(), 0);  // closed
  server.drain();

  // The registry agrees with the classic stats() surface, and the scrape
  // exports carry the same series.
  const serve::ServerStats stats = server.stats();
  EXPECT_EQ(registry->counter("serve.worker_faults").value(),
            stats.worker_faults);
  EXPECT_EQ(registry->counter("serve.failed").value(), stats.failed);
  EXPECT_EQ(registry->counter("serve.completed").value(), stats.completed);
  EXPECT_NE(server.metrics_text().find("serve_worker_faults 2"),
            std::string::npos);
}

// A probe that faults re-opens the circuit (and counts a second trip)
// instead of letting a still-broken primary back into rotation.
TEST(ChaosTest, FailedProbeReopensCircuit) {
  serve::ServerConfig cfg = sequential_config();
  cfg.fallback = make_fallback();
  cfg.circuit.fault_threshold = 1;
  cfg.circuit.cooldown = std::chrono::milliseconds(30);
  auto server = serve::InferenceServer(make_frozen_extractor(), cfg);
  const auto clips = make_clips(3);

  fault::FaultPlan plan;
  plan.throw_on_extract_calls = {1, 2};  // the trip AND the probe
  fault::ScopedFaultPlan armed(plan);

  EXPECT_THROW(server.submit(clips[0]).get(), fault::InjectedFaultError);
  EXPECT_EQ(server.circuit_state(), serve::CircuitState::kOpen);

  std::this_thread::sleep_for(cfg.circuit.cooldown +
                              std::chrono::milliseconds(20));
  EXPECT_THROW(server.submit(clips[1]).get(), fault::InjectedFaultError);
  EXPECT_EQ(server.circuit_state(), serve::CircuitState::kOpen);
  EXPECT_EQ(server.stats().circuit_trips, 2u);

  // While re-opened, the fallback still answers.
  EXPECT_TRUE(is_degraded(server.submit(clips[2]).get()));
  server.drain();
}

// With no fallback configured there is nothing to route to: repeated faults
// keep failing fast on the primary (each restarting its worker) and the
// circuit must never trip.
TEST(ChaosTest, NoFallbackMeansNoTrip) {
  serve::ServerConfig cfg = sequential_config();
  cfg.circuit.fault_threshold = 1;
  auto server = serve::InferenceServer(make_frozen_extractor(), cfg);
  const auto clips = make_clips(3);

  fault::FaultPlan plan;
  plan.throw_on_extract_calls = {1, 2};
  fault::ScopedFaultPlan armed(plan);

  EXPECT_THROW(server.submit(clips[0]).get(), fault::InjectedFaultError);
  EXPECT_THROW(server.submit(clips[1]).get(), fault::InjectedFaultError);
  EXPECT_EQ(server.circuit_state(), serve::CircuitState::kClosed);
  EXPECT_NO_THROW(server.submit(clips[2]).get());
  server.drain();
  EXPECT_EQ(server.stats().circuit_trips, 0u);
  EXPECT_EQ(server.stats().worker_faults, 2u);
}

// ---- deadlines ------------------------------------------------------------------

// Expired requests must never reach the model: one expires at submit() (fast
// fail, never enqueued), one expires while queued (scrubbed by the batcher).
// The batch-size histogram proves neither occupied a batch slot.
TEST(ChaosTest, ExpiredDeadlinesAreScrubbedBeforeDispatch) {
  serve::ServerConfig cfg;
  cfg.workers = 0;  // inline mode: nothing is processed until drain()
  cfg.max_batch = 8;
  cfg.queue_capacity = 8;
  auto server = serve::InferenceServer(make_frozen_extractor(), cfg);
  const auto clips = make_clips(4);

  // Already expired at submit(): fails immediately, never queued.
  auto dead_on_arrival =
      server.submit(clips[0], serve::InferenceServer::Clock::now() -
                                  std::chrono::milliseconds(1));
  EXPECT_EQ(server.queue_depth(), 0u);
  EXPECT_THROW(dead_on_arrival.get(), serve::DeadlineExceededError);

  // Expires while queued: accepted now, scrubbed at batching time.
  auto expires_in_queue =
      server.submit_within(clips[1], std::chrono::milliseconds(2));
  auto live_a = server.submit(clips[2]);
  auto live_b = server.submit(clips[3]);
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  server.drain();

  EXPECT_THROW(expires_in_queue.get(), serve::DeadlineExceededError);
  EXPECT_NO_THROW(live_a.get());
  EXPECT_NO_THROW(live_b.get());

  const serve::ServerStats stats = server.stats();
  EXPECT_EQ(stats.submitted, 4u);
  EXPECT_EQ(stats.deadline_expired, 2u);
  EXPECT_EQ(stats.completed, 2u);
  EXPECT_EQ(stats.failed, 0u);
  // The two live requests formed one batch of 2: the expired pair took no
  // batch slot and triggered no dispatch.
  EXPECT_EQ(stats.batches(), 1u);
  EXPECT_EQ(stats.batch_size_counts[2], 1u);
  EXPECT_EQ(stats.latency.count(), 2u);
}

// A seeded stall holds the single worker while a queued request's deadline
// runs out; the scrub must trigger exactly one deadline-miss anomaly dump in
// TSDX_OBS_DUMP_DIR, naming the offending trace and carrying its flight
// record. CI points TSDX_OBS_DUMP_DIR at a fresh directory, runs this test,
// and validates the dump with tools/trace_check.py --dump; without a preset
// directory the test arms its own.
TEST(ChaosTest, DeadlineMissWritesExactlyOneAnomalyDump) {
  namespace trace = tsdx::obs::trace;
  // Full tracing so the offending request has a nonzero trace ID to dump.
  trace::set_mode(trace::Mode::kFull);
  trace::clear();
  // Re-arm the global engine's per-kind dump cap no matter what ran before
  // this test in a whole-binary (tsan) run.
  obs::SloEngine::global().reset();

  const char* preset = std::getenv("TSDX_OBS_DUMP_DIR");
  std::filesystem::path dir;
  if (preset != nullptr && preset[0] != '\0') {
    dir = preset;
    std::filesystem::create_directories(dir);
  } else {
    dir = std::filesystem::temp_directory_path() / "chaos_test_dumps";
    std::filesystem::remove_all(dir);
    std::filesystem::create_directories(dir);
    ::setenv("TSDX_OBS_DUMP_DIR", dir.string().c_str(), 1);
  }
  const auto miss_dumps = [&dir] {
    std::set<std::string> names;
    for (const auto& entry : std::filesystem::directory_iterator(dir)) {
      const std::string name = entry.path().filename().string();
      if (name.find("deadline_miss") != std::string::npos) names.insert(name);
    }
    return names;
  };
  const std::set<std::string> before = miss_dumps();

  {
    auto server = serve::InferenceServer(make_frozen_extractor(),
                                         sequential_config());
    const auto clips = make_clips(2);
    fault::FaultPlan plan;
    plan.delay_on_extract_calls = {1};  // stall the first dispatch 20 ms
    plan.extract_delay = std::chrono::milliseconds(20);
    fault::ScopedFaultPlan armed(plan);
    auto stalled = server.submit(clips[0]);  // no deadline: occupies the worker
    auto expired =
        server.submit_within(clips[1], std::chrono::milliseconds(2));
    EXPECT_NO_THROW(stalled.get());
    EXPECT_THROW(expired.get(), serve::DeadlineExceededError);
    server.drain();
    EXPECT_EQ(server.stats().deadline_expired, 1u);
  }
  if (preset == nullptr || preset[0] == '\0') {
    ::unsetenv("TSDX_OBS_DUMP_DIR");
  }
  trace::set_mode(trace::Mode::kOff);
  trace::clear();

  // Exactly one new deadline-miss dump, and it tells the whole story: the
  // anomaly kind, a real trace ID, and that trace's deadline-expired record.
  const std::set<std::string> after = miss_dumps();
  std::vector<std::string> fresh;
  for (const std::string& name : after) {
    if (before.find(name) == before.end()) fresh.push_back(name);
  }
  ASSERT_EQ(fresh.size(), 1u);
  std::ifstream in(dir / fresh.front());
  std::stringstream buffer;
  buffer << in.rdbuf();
  const std::string body = buffer.str();
  EXPECT_NE(body.find("\"anomaly\": \"deadline_miss\""), std::string::npos)
      << body;
  const std::string key = "\"trace_id\": ";
  const std::size_t pos = body.find(key);
  ASSERT_NE(pos, std::string::npos) << body;
  const std::uint64_t offender = std::strtoull(
      body.c_str() + pos + key.size(), nullptr, 10);
  EXPECT_NE(offender, 0u) << body;
  // The offender's flight record is embedded, terminally deadline_expired.
  std::ostringstream record_key;
  record_key << "\"trace_id\": " << offender
             << ", \"kind\": \"server\", \"outcome\": \"deadline_expired\"";
  EXPECT_NE(body.find(record_key.str()), std::string::npos) << body;
  if (preset == nullptr || preset[0] == '\0') {
    std::filesystem::remove_all(dir);
  }
}

// A generous deadline is inert: the request completes normally.
TEST(ChaosTest, UnexpiredDeadlineDoesNotInterfere) {
  auto server = serve::InferenceServer(make_frozen_extractor(),
                                       sequential_config());
  const auto clips = make_clips(1);
  auto future = server.submit_within(clips[0], std::chrono::seconds(30));
  EXPECT_NO_THROW(future.get());
  server.drain();
  EXPECT_EQ(server.stats().deadline_expired, 0u);
  EXPECT_EQ(server.stats().completed, 1u);
}

// ---- injected latency -----------------------------------------------------------

// A scheduled stall on one dispatch must show up in the end-to-end latency
// tail (lower-bound assertion only: sleep_for may oversleep, never under).
TEST(ChaosTest, InjectedLatencyShowsUpInTail) {
  auto server = serve::InferenceServer(make_frozen_extractor(),
                                       sequential_config());
  const auto clips = make_clips(2);

  fault::FaultPlan plan;
  plan.delay_on_extract_calls = {1};
  plan.extract_delay = std::chrono::microseconds(20000);  // 20 ms
  fault::ScopedFaultPlan armed(plan);

  EXPECT_NO_THROW(server.submit(clips[0]).get());
  EXPECT_NO_THROW(server.submit(clips[1]).get());
  server.drain();

  const serve::ServerStats stats = server.stats();
  EXPECT_EQ(stats.completed, 2u);
  EXPECT_EQ(stats.worker_faults, 0u);
  EXPECT_GE(stats.latency.max(), 20.0);  // milliseconds
}

// ---- checkpoint corruption ------------------------------------------------------

// The injector flips one seed-chosen byte of a checkpoint after its CRC
// footer is computed. The loader must reject the file with a typed error
// carrying a byte offset, leave the target module's weights untouched, and
// the serving-bootstrap loader must degrade to kCorruptKeptInit. A clean
// re-save then loads normally.
TEST(ChaosTest, CorruptedCheckpointIsRejectedAndWeightsKept) {
  tsdx::tensor::Rng rng(21);
  nn::Mlp source(4, 8, 0.0f, rng);
  nn::Mlp target(4, 8, 0.0f, rng);  // different init
  const std::string path = temp_path("tsdx_chaos_ckpt.bin");

  {
    fault::FaultPlan plan;
    plan.seed = 42;
    plan.corrupt_next_checkpoint = true;
    fault::ScopedFaultPlan armed(plan);
    nn::save_checkpoint(source, path);
  }

  const std::vector<float> before = flat_weights(target);
  try {
    nn::load_checkpoint(target, path);
    FAIL() << "corrupted checkpoint was accepted";
  } catch (const nn::CheckpointCorruptError& e) {
    EXPECT_LT(e.byte_offset(), std::filesystem::file_size(path));
    EXPECT_NE(std::string(e.what()).find("byte offset"), std::string::npos);
  }
  EXPECT_EQ(flat_weights(target), before);

  EXPECT_EQ(nn::load_checkpoint_or_fallback(target, path),
            nn::CheckpointLoad::kCorruptKeptInit);
  EXPECT_EQ(flat_weights(target), before);

  // The injector is one-shot: the next save is clean and loads.
  nn::save_checkpoint(source, path);
  EXPECT_EQ(nn::load_checkpoint_or_fallback(target, path),
            nn::CheckpointLoad::kLoaded);
  EXPECT_EQ(flat_weights(target), flat_weights(source));
  std::filesystem::remove(path);
}

// ---- replica router under scripted replica death --------------------------------

// Concurrent producers stream requests through a 3-replica router while a
// replica-scoped plan hard-kills replica 1 after its 3rd dispatch. The
// contract under test: every admitted request resolves EXACTLY once (a
// double-set promise would throw std::future_error inside the router; a
// lost ticket would leave pending > 0 and hang drain()), and with retry
// budget available the death costs zero answers — the killed replica's
// queued requests fail over to its siblings.
TEST(ChaosTest, RouterLosesNoRequestsWhenReplicaDiesMidStream) {
  serve::RouterConfig rc;
  rc.replicas = 3;
  rc.server = sequential_config();
  // Deep queues: the two survivors must absorb the whole burst. With the
  // default capacity of 8 the siblings can fill under the 4-producer burst,
  // and a retry that finds both full falls through to the (excluded) dying
  // replica as a last resort — a legitimate shed, but not what this test
  // pins. Capacity is not under test; losing zero requests is.
  rc.server.queue_capacity = 64;
  rc.relay_threads = 3;
  rc.max_attempts = 4;
  rc.retry_budget_floor = 32.0;  // failover capacity is not under test here
  rc.down_after_failures = 2;
  rc.heal_backoff = std::chrono::seconds(30);  // no passive heal mid-test
  rc.metrics = std::make_shared<obs::Registry>();
  serve::Router router(make_frozen_extractor(), rc);
  const auto clips = make_clips(1);

  fault::FaultPlan plan;
  fault::ReplicaPlan death;
  death.domain = 1;
  death.kill_from_call = 3;  // two good dispatches, then hard-down
  plan.replica_plans = {death};
  fault::ScopedFaultPlan armed(plan);

  constexpr std::size_t kProducers = 4;
  constexpr std::size_t kPerProducer = 8;
  std::vector<std::future<core::ExtractionResult>> futures(kProducers *
                                                           kPerProducer);
  // Each producer writes only its own slot range: no synchronization needed.
  serve::ThreadPool::run(kProducers, [&](std::size_t producer) {
    for (std::size_t i = 0; i < kPerProducer; ++i) {
      futures[producer * kPerProducer + i] = router.submit(clips[0]);
    }
  });
  // Settle before drain: retried tickets sleeping out their backoff must
  // wake to a live fleet — drain() tears replicas down first (the inline
  // server contract) and would resolve a late retry fleet-dark.
  while (router.stats().pending != 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  router.drain();

  std::size_t ok = 0;
  std::size_t failed = 0;
  for (auto& future : futures) {
    try {
      EXPECT_FALSE(is_degraded(future.get()));
      ++ok;
    } catch (const std::exception&) {
      ++failed;
    }
  }
  EXPECT_EQ(ok, kProducers * kPerProducer);  // nothing lost to the death
  EXPECT_EQ(failed, 0u);

  const serve::RouterStats stats = router.stats();
  EXPECT_EQ(stats.admitted, kProducers * kPerProducer);
  EXPECT_EQ(stats.completed + stats.failed, kProducers * kPerProducer);
  EXPECT_EQ(stats.pending, 0u);
  EXPECT_GE(stats.retries, 1u);
  EXPECT_EQ(router.replica_state(1), serve::ReplicaState::kDown);
  EXPECT_GE(fault::Injector::instance().domain_calls(1), 3u);
}
