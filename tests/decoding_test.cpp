// decoding_test.cpp — constrained decoding: validity guarantees, optimality
// on crafted distributions, the argmax fast path, plus conv3d/GRU/C3D units
// that back the extended baselines.
#include <gtest/gtest.h>

#include "baseline/cnn3d.hpp"
#include "core/decoding.hpp"
#include "nn/gru.hpp"
#include "tensor/gradcheck.hpp"
#include "tensor/nn_ops.hpp"
#include "tensor/ops.hpp"

namespace baseline = tsdx::baseline;
namespace core = tsdx::core;
namespace sdl = tsdx::sdl;
namespace tt = tsdx::tensor;
using tt::Shape;
using tt::Tensor;

namespace {

/// Uniform probabilities, then boost `labels` slots to dominate.
core::SlotProbabilities probs_for(const sdl::SlotLabels& labels,
                                  float boost = 5.0f) {
  core::SlotProbabilities probs;
  for (std::size_t s = 0; s < sdl::kNumSlots; ++s) {
    probs[s].assign(sdl::kSlotCardinality[s], 1.0f);
    probs[s][labels[s]] = boost;
    float sum = 0.0f;
    for (float p : probs[s]) sum += p;
    for (float& p : probs[s]) p /= sum;
  }
  return probs;
}

}  // namespace

TEST(DecodingTest, ArgmaxPicksPeaks) {
  sdl::SlotLabels want{1, 2, 0, 1, 3, 2, 4, 5};
  EXPECT_EQ(core::decode_argmax(probs_for(want)), want);
}

TEST(DecodingTest, ConstrainedEqualsArgmaxWhenValid) {
  // A valid combination: the fast path must return it unchanged.
  sdl::ScenarioDescription d;
  d.environment.road_layout = sdl::RoadLayout::kIntersection4;
  d.ego_action = sdl::EgoAction::kTurnLeft;
  d.salient_actor = {sdl::ActorType::kPedestrian, sdl::ActorAction::kCross,
                     sdl::RelativePosition::kAhead};
  const sdl::SlotLabels labels = sdl::to_slot_labels(d);
  const auto probs = probs_for(labels);
  EXPECT_EQ(core::decode_constrained(probs), core::decode_argmax(probs));
}

TEST(DecodingTest, ConstrainedRepairsInvalidArgmax) {
  // Argmax wants "truck crossing" (invalid); the second-best actor type is
  // pedestrian, which makes it valid — constrained decoding must find it.
  sdl::ScenarioDescription d;
  d.environment.road_layout = sdl::RoadLayout::kStraight;
  d.ego_action = sdl::EgoAction::kCruise;
  d.salient_actor = {sdl::ActorType::kTruck, sdl::ActorAction::kCross,
                     sdl::RelativePosition::kAhead};
  auto probs = probs_for(sdl::to_slot_labels(d), 5.0f);
  // Give pedestrian a strong second place in the actor-type slot.
  probs[static_cast<std::size_t>(sdl::Slot::kActorType)]
       [static_cast<std::size_t>(sdl::ActorType::kPedestrian)] = 0.3f;

  const sdl::SlotLabels greedy = core::decode_argmax(probs);
  EXPECT_FALSE(sdl::is_valid(sdl::from_slot_labels(greedy)));

  const sdl::SlotLabels repaired = core::decode_constrained(probs);
  EXPECT_TRUE(sdl::is_valid(sdl::from_slot_labels(repaired)));
  EXPECT_EQ(repaired[static_cast<std::size_t>(sdl::Slot::kActorType)],
            static_cast<std::size_t>(sdl::ActorType::kPedestrian));
  // The rest of the slots stay at their argmax.
  EXPECT_EQ(repaired[static_cast<std::size_t>(sdl::Slot::kActorAction)],
            static_cast<std::size_t>(sdl::ActorAction::kCross));
}

TEST(DecodingTest, ConstrainedAlwaysValidOnRandomDistributions) {
  tt::Rng rng(77);
  for (int trial = 0; trial < 50; ++trial) {
    core::SlotProbabilities probs;
    for (std::size_t s = 0; s < sdl::kNumSlots; ++s) {
      probs[s].resize(sdl::kSlotCardinality[s]);
      float sum = 0.0f;
      for (float& p : probs[s]) {
        p = static_cast<float>(rng.uniform(0.01, 1.0));
        sum += p;
      }
      for (float& p : probs[s]) p /= sum;
    }
    const sdl::SlotLabels labels = core::decode_constrained(probs);
    EXPECT_TRUE(sdl::is_valid(sdl::from_slot_labels(labels)));
  }
}

TEST(DecodingTest, WrongProbabilitySizeThrows) {
  core::SlotProbabilities probs = probs_for(sdl::SlotLabels{});
  probs[0].pop_back();
  EXPECT_THROW(core::decode_argmax(probs), std::invalid_argument);
  EXPECT_THROW(core::decode_constrained(probs), std::invalid_argument);
}

TEST(DecodingTest, ValidityRate) {
  sdl::ScenarioDescription valid_d;
  sdl::ScenarioDescription invalid_d;
  invalid_d.salient_actor = {sdl::ActorType::kTruck, sdl::ActorAction::kCross,
                             sdl::RelativePosition::kAhead};
  EXPECT_DOUBLE_EQ(core::validity_rate({}), 1.0);
  EXPECT_DOUBLE_EQ(core::validity_rate({sdl::to_slot_labels(valid_d),
                                        sdl::to_slot_labels(invalid_d)}),
                   0.5);
}

// ---- conv3d -------------------------------------------------------------------

TEST(Conv3dTest, IdentityKernel) {
  Tensor x = Tensor::from_vector({1, 1, 2, 2, 2}, {1, 2, 3, 4, 5, 6, 7, 8});
  Tensor w = Tensor::ones({1, 1, 1, 1, 1});
  Tensor b = Tensor::zeros({1});
  const Tensor y = tt::conv3d(x, w, b);
  EXPECT_EQ(y.shape(), (Shape{1, 1, 2, 2, 2}));
  EXPECT_EQ(std::vector<float>(y.data().begin(), y.data().end()),
            std::vector<float>(x.data().begin(), x.data().end()));
}

TEST(Conv3dTest, OutputGeometryWithStridesAndPadding) {
  Tensor x = Tensor::ones({2, 3, 4, 8, 8});
  tt::Rng rng(1);
  Tensor w = Tensor::randn({5, 3, 3, 3, 3}, rng);
  Tensor b = Tensor::zeros({5});
  const Tensor y = tt::conv3d(x, w, b, /*stride_t=*/2, /*stride_s=*/2,
                              /*pad_t=*/1, /*pad_s=*/1);
  EXPECT_EQ(y.shape(), (Shape{2, 5, 2, 4, 4}));
}

TEST(Conv3dTest, ShapeValidation) {
  Tensor x = Tensor::zeros({1, 2, 4, 8, 8});
  Tensor w = Tensor::zeros({3, 3, 3, 3, 3});  // channel mismatch
  Tensor b = Tensor::zeros({3});
  EXPECT_THROW(tt::conv3d(x, w, b), std::invalid_argument);
  EXPECT_THROW(tt::conv3d(Tensor::zeros({2, 4, 8, 8}), w, b),
               std::invalid_argument);
}

TEST(Conv3dTest, GradCheck) {
  tt::Rng rng(2);
  std::vector<Tensor> inputs = {
      Tensor::randn({1, 2, 3, 4, 4}, rng, 1.0f, true),
      Tensor::randn({2, 2, 2, 3, 3}, rng, 1.0f, true),
      Tensor::randn({2}, rng, 1.0f, true),
  };
  const auto fn = [](const std::vector<Tensor>& in) {
    return tt::sum_all(
        tt::mul_scalar(tt::conv3d(in[0], in[1], in[2], 1, 2, 1, 1), 0.5f));
  };
  const auto result = tt::grad_check(fn, inputs);
  EXPECT_TRUE(result.ok) << result.detail;
}

// ---- GRU ------------------------------------------------------------------------

TEST(GruTest, ShapesAndValidation) {
  tt::Rng rng(3);
  tsdx::nn::Gru gru(3, 5, rng);
  EXPECT_EQ(gru.forward(Tensor::zeros({2, 4, 3})).shape(), (Shape{2, 5}));
  EXPECT_EQ(gru.hidden_dim(), 5);
  EXPECT_THROW(gru.forward(Tensor::zeros({2, 4, 4})), std::invalid_argument);
}

TEST(GruTest, StateBoundedByTanh) {
  tt::Rng rng(4);
  tsdx::nn::Gru gru(2, 3, rng);
  const Tensor h = gru.forward(Tensor::ones({1, 20, 2}));
  for (float v : h.data()) EXPECT_LT(std::abs(v), 1.0f);
}

TEST(GruTest, GradCheckThroughTime) {
  tt::Rng rng(5);
  tsdx::nn::Gru gru(2, 3, rng);
  Tensor x = Tensor::randn({1, 3, 2}, rng, 1.0f, true);
  std::vector<Tensor> inputs = {x};
  for (const Tensor& p : gru.parameters()) inputs.push_back(p);
  const auto fn = [&gru](const std::vector<Tensor>& in) {
    return tt::sum_all(gru.forward(in[0]));
  };
  const auto result = tt::grad_check(fn, inputs, 1e-2, 5e-2);
  EXPECT_TRUE(result.ok) << result.detail;
}

// ---- C3D / CNN-GRU baselines --------------------------------------------------------

TEST(C3dTest, ForwardShapeAndName) {
  tt::Rng rng(6);
  baseline::C3dBackbone c3d(4, 8, 16, 12, rng);
  EXPECT_EQ(c3d.forward(Tensor::zeros({2, 8, 4, 16, 16})).shape(),
            (Shape{2, 12}));
  EXPECT_EQ(c3d.name(), "c3d");
  EXPECT_EQ(c3d.feature_dim(), 12);
  EXPECT_THROW(baseline::C3dBackbone(4, 6, 16, 12, rng),
               std::invalid_argument);
  EXPECT_THROW(baseline::C3dBackbone(4, 8, 20, 12, rng),
               std::invalid_argument);
}

TEST(C3dTest, SensitiveToTemporalOrder) {
  tt::Rng rng(7);
  baseline::C3dBackbone c3d(2, 4, 16, 8, rng);
  Tensor video = Tensor::rand_uniform({1, 4, 2, 16, 16}, rng, 0.0f, 1.0f);
  std::vector<float> rev(video.data().begin(), video.data().end());
  const std::size_t frame = 2 * 16 * 16;
  for (int f = 0; f < 2; ++f) {
    for (std::size_t i = 0; i < frame; ++i) {
      std::swap(rev[f * frame + i], rev[(3 - f) * frame + i]);
    }
  }
  const Tensor a = c3d.forward(video);
  const Tensor b = c3d.forward(Tensor::from_vector({1, 4, 2, 16, 16}, rev));
  double diff = 0;
  for (std::int64_t i = 0; i < a.numel(); ++i) {
    diff += std::abs(a.at(i) - b.at(i));
  }
  EXPECT_GT(diff, 1e-4);  // 3-D convs see temporal structure
}

TEST(CnnGruTest, ForwardShapeAndName) {
  tt::Rng rng(8);
  baseline::CnnGruBackbone gru(4, 16, 10, rng);
  EXPECT_EQ(gru.forward(Tensor::zeros({2, 4, 4, 16, 16})).shape(),
            (Shape{2, 10}));
  EXPECT_EQ(gru.name(), "cnn_gru");
}
