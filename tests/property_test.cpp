// property_test.cpp — cross-module property sweeps: invariants that must
// hold over the whole scenario space, not just hand-picked cases.
#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "core/augment.hpp"
#include "data/export.hpp"
#include "sdl/coverage.hpp"
#include "sdl/embedding.hpp"
#include "sdl/serialization.hpp"
#include "sim/clipgen.hpp"

namespace core = tsdx::core;
namespace data = tsdx::data;
namespace sdl = tsdx::sdl;
namespace sim = tsdx::sim;

namespace {

sim::RenderConfig tiny_render() {
  sim::RenderConfig cfg;
  cfg.height = cfg.width = 16;
  cfg.frames = 2;
  return cfg;
}

}  // namespace

// Every (layout, ego action) pair the sampler can emit renders to a finite,
// in-range clip with the ego visible.
class LayoutEgoProperty
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(LayoutEgoProperty, RendersValidClipWhenCombinationIsValid) {
  const auto layout = static_cast<sdl::RoadLayout>(std::get<0>(GetParam()));
  const auto ego = static_cast<sdl::EgoAction>(std::get<1>(GetParam()));
  sdl::ScenarioDescription d;
  d.environment.road_layout = layout;
  d.ego_action = ego;
  if (!sdl::is_valid(d)) GTEST_SKIP() << "combination invalid by grammar";

  tsdx::tensor::Rng jitter(7), noise(8);
  const sim::World w = sim::build_world(d, jitter);
  sim::RenderConfig cfg = tiny_render();
  cfg.height = cfg.width = 32;
  cfg.frames = 4;
  const sim::VideoClip clip = sim::render_clip(w, cfg, noise);
  float veh_peak = 0.0f;
  for (float v : clip.data) {
    ASSERT_TRUE(std::isfinite(v));
    ASSERT_GE(v, 0.0f);
    ASSERT_LE(v, 1.0f);
  }
  for (std::int64_t y = 0; y < 32; ++y) {
    for (std::int64_t x = 0; x < 32; ++x) {
      veh_peak = std::max(veh_peak, clip.at(0, 1, y, x));
    }
  }
  EXPECT_GT(veh_peak, 0.8f) << "ego not visible";
}

INSTANTIATE_TEST_SUITE_P(
    AllCombos, LayoutEgoProperty,
    ::testing::Combine(::testing::Range(0, static_cast<int>(sdl::kNumRoadLayouts)),
                       ::testing::Range(0, static_cast<int>(sdl::kNumEgoActions))));

// Serialization, embedding, mirroring and coverage must be total over the
// sampler's output distribution, across seeds.
class SeedProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SeedProperty, JsonRoundTripIsIdentityOnSampledDescriptions) {
  tsdx::tensor::Rng rng(GetParam());
  for (int i = 0; i < 25; ++i) {
    const sdl::ScenarioDescription d = sim::sample_description(rng);
    const auto back = sdl::description_from_string(sdl::to_json_string(d));
    ASSERT_TRUE(back.has_value());
    EXPECT_EQ(*back, d);
  }
}

TEST_P(SeedProperty, EmbeddingIsUnitNormAndSelfSimilar) {
  tsdx::tensor::Rng rng(GetParam() ^ 0xE1u);
  for (int i = 0; i < 25; ++i) {
    const sdl::ScenarioDescription d = sim::sample_description(rng);
    const auto v = sdl::scenario_to_vector(d);
    double norm = 0;
    for (float x : v) norm += x * x;
    EXPECT_NEAR(norm, 1.0, 1e-4);
    EXPECT_NEAR(sdl::scenario_similarity(d, d), 1.0f, 1e-5f);
  }
}

TEST_P(SeedProperty, MirrorPreservesValidityAndSentenceLength) {
  tsdx::tensor::Rng rng(GetParam() ^ 0xE2u);
  for (int i = 0; i < 25; ++i) {
    const sdl::ScenarioDescription d = sim::sample_description(rng);
    const sdl::ScenarioDescription m = core::mirror_description(d);
    EXPECT_TRUE(sdl::is_valid(m));
    // The mirror never changes how many actors are described.
    EXPECT_EQ(m.background_actors.size(), d.background_actors.size());
  }
}

TEST_P(SeedProperty, SampledLabelsAreInValidCombinationSet) {
  // Everything the simulator samples must be in the enumerated valid set —
  // the two validity definitions (procedural sampler, declarative grammar)
  // agree.
  tsdx::tensor::Rng rng(GetParam() ^ 0xE3u);
  const auto& valid = sdl::all_valid_label_combinations();
  const std::set<sdl::SlotLabels> valid_set(valid.begin(), valid.end());
  for (int i = 0; i < 25; ++i) {
    const sdl::ScenarioDescription d = sim::sample_description(rng);
    EXPECT_TRUE(valid_set.contains(sdl::to_slot_labels(d)));
  }
}

TEST_P(SeedProperty, JsonlBatchRoundTrip) {
  tsdx::tensor::Rng rng(GetParam() ^ 0xE4u);
  std::vector<data::DescriptionRecord> records;
  for (int i = 0; i < 10; ++i) {
    records.push_back({std::to_string(i), sim::sample_description(rng)});
  }
  const auto back = data::from_jsonl(data::to_jsonl(records));
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(*back, records);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SeedProperty,
                         ::testing::Values(101u, 202u, 303u, 404u));

// Clip generation is deterministic and labels match descriptions across the
// whole dataset pipeline.
TEST(PipelineProperty, DatasetLabelsAlwaysMatchDescriptions) {
  const data::Dataset ds = data::Dataset::synthesize(tiny_render(), 40, 77);
  for (std::size_t i = 0; i < ds.size(); ++i) {
    EXPECT_EQ(ds[i].labels, sdl::to_slot_labels(ds[i].description));
    EXPECT_TRUE(sdl::is_valid(ds[i].description));
  }
}

TEST(PipelineProperty, MirrorAugmentedDatasetStillValid) {
  const data::Dataset ds = data::Dataset::synthesize(tiny_render(), 15, 78);
  const data::Dataset aug = core::augment_mirror(ds);
  for (std::size_t i = 0; i < aug.size(); ++i) {
    EXPECT_TRUE(sdl::is_valid(aug[i].description));
    EXPECT_EQ(aug[i].labels, sdl::to_slot_labels(aug[i].description));
  }
}
