// obs_test.cpp — the observability layer's contracts: exact-percentile edge
// cases (shared by serve stats and every bench table), the metrics registry
// (counters/gauges/histograms + JSON/Prometheus exposition), and span
// tracing — mode gating, context propagation across the tsdx::par pool, and
// the end-to-end guarantee that one submitted request produces a single
// trace ID spanning queue -> batch -> extract -> model layers -> GEMM.
#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <future>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "core/check.hpp"
#include "core/extractor.hpp"
#include "core/lockorder.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "serve/server.hpp"
#include "serve/thread_pool.hpp"
#include "sim/clipgen.hpp"
#include "tensor/kernels/parallel_for.hpp"

namespace core = tsdx::core;
namespace obs = tsdx::obs;
namespace trace = tsdx::obs::trace;
namespace par = tsdx::par;
namespace serve = tsdx::serve;
namespace sim = tsdx::sim;

namespace {

/// Reset tracing around a test so a binary-wide run (not just ctest's
/// one-process-per-test) can't leak spans or a mode between tests.
struct TraceReset {
  explicit TraceReset(trace::Mode mode) {
    trace::set_mode(mode);
    trace::clear();
  }
  ~TraceReset() {
    trace::set_mode(trace::Mode::kOff);
    trace::clear();
  }
};

core::ModelConfig micro_config() {
  core::ModelConfig cfg;
  cfg.frames = 2;
  cfg.image_size = 8;
  cfg.patch_size = 4;
  cfg.tubelet_frames = 1;
  cfg.dim = 8;
  cfg.depth = 1;
  cfg.heads = 2;
  cfg.attention = core::AttentionKind::kDividedST;
  return cfg;
}

std::shared_ptr<core::ScenarioExtractor> make_frozen_extractor() {
  auto extractor =
      std::make_shared<core::ScenarioExtractor>(micro_config(), /*seed=*/7);
  extractor->freeze();
  return extractor;
}

std::vector<sim::VideoClip> make_clips(std::size_t count) {
  const core::ModelConfig cfg = micro_config();
  sim::RenderConfig render;
  render.height = render.width = cfg.image_size;
  render.frames = cfg.frames;
  sim::ClipGenerator gen(render, /*seed=*/11);
  std::vector<sim::VideoClip> clips;
  clips.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    clips.push_back(gen.generate().video);
  }
  return clips;
}

std::set<std::string> span_names(const std::vector<trace::SpanEvent>& events,
                                 std::uint64_t trace_id) {
  std::set<std::string> names;
  for (const trace::SpanEvent& e : events) {
    if (e.trace_id == trace_id) names.insert(e.name);
  }
  return names;
}

}  // namespace

// ---- percentile edge cases -------------------------------------------------------

// The contract printers and bench tables rely on: no special-casing needed
// at any sample count.
TEST(ObsPercentileTest, EmptySampleSetReturnsZero) {
  EXPECT_EQ(obs::percentile({}, 50.0), 0.0);
  EXPECT_EQ(obs::percentile({}, 99.0), 0.0);
}

TEST(ObsPercentileTest, SingleSampleAnswersEveryPercentile) {
  for (const double p : {0.0, 1.0, 50.0, 99.0, 100.0}) {
    EXPECT_EQ(obs::percentile({42.5}, p), 42.5) << "p=" << p;
  }
}

// p99 over n < 100 samples must resolve to the maximum, never index past
// the end (nearest-rank: ceil(0.99 * 10) = 10 -> last sample).
TEST(ObsPercentileTest, TailPercentileOverFewSamplesIsTheMaximum) {
  std::vector<double> ten;
  for (int i = 1; i <= 10; ++i) ten.push_back(static_cast<double>(i));
  EXPECT_EQ(obs::percentile(ten, 99.0), 10.0);
  EXPECT_EQ(obs::percentile(ten, 95.0), 10.0);
  EXPECT_EQ(obs::percentile(ten, 90.0), 9.0);
}

TEST(ObsPercentileTest, ZeroIsMinimumAndHundredIsMaximum) {
  const std::vector<double> samples{3.0, 1.0, 2.0};  // unsorted on purpose
  EXPECT_EQ(obs::percentile(samples, 0.0), 1.0);
  EXPECT_EQ(obs::percentile(samples, 100.0), 3.0);
}

TEST(ObsPercentileTest, NearestRankMedianOfEvenCount) {
  // ceil(0.5 * 4) = rank 2 -> the second-smallest sample.
  EXPECT_EQ(obs::percentile({4.0, 1.0, 3.0, 2.0}, 50.0), 2.0);
}

TEST(ObsPercentileTest, OutOfRangePThrows) {
  EXPECT_THROW(obs::percentile({1.0}, -1.0), tsdx::ValueError);
  EXPECT_THROW(obs::percentile({1.0}, 100.5), tsdx::ValueError);
}

TEST(ObsLatencyHistogramTest, EmptyDistributionIsAllZeros) {
  const obs::LatencyHistogram hist;
  EXPECT_EQ(hist.count(), 0u);
  EXPECT_EQ(hist.mean(), 0.0);
  EXPECT_EQ(hist.max(), 0.0);
  EXPECT_EQ(hist.percentile(99.0), 0.0);
}

TEST(ObsLatencyHistogramTest, RecordsAndSummarizes) {
  obs::LatencyHistogram hist;
  hist.record(1.0);
  hist.record(3.0);
  hist.record(2.0);
  EXPECT_EQ(hist.count(), 3u);
  EXPECT_DOUBLE_EQ(hist.mean(), 2.0);
  EXPECT_EQ(hist.max(), 3.0);
  EXPECT_EQ(hist.percentile(50.0), 2.0);
}

// ---- metrics registry ------------------------------------------------------------

TEST(ObsMetricsTest, CounterAccumulates) {
  obs::Counter counter;
  EXPECT_EQ(counter.value(), 0u);
  counter.inc();
  counter.inc(41);
  EXPECT_EQ(counter.value(), 42u);
}

TEST(ObsMetricsTest, GaugeSetAddAndHighWatermark) {
  obs::Gauge gauge;
  gauge.set(5);
  gauge.add(-2);
  EXPECT_EQ(gauge.value(), 3);
  gauge.update_max(10);
  EXPECT_EQ(gauge.value(), 10);
  gauge.update_max(4);  // below the watermark: no change
  EXPECT_EQ(gauge.value(), 10);
}

TEST(ObsMetricsTest, HistogramBucketsSumAndQuantiles) {
  obs::Histogram hist({1.0, 2.0, 4.0});
  EXPECT_EQ(hist.quantile(50.0), 0.0);  // empty
  hist.observe(0.5);
  hist.observe(1.5);
  hist.observe(3.0);
  hist.observe(100.0);  // +Inf overflow bucket
  EXPECT_EQ(hist.count(), 4u);
  EXPECT_DOUBLE_EQ(hist.sum(), 105.0);
  EXPECT_EQ(hist.bucket_count(0), 1u);
  EXPECT_EQ(hist.bucket_count(1), 1u);
  EXPECT_EQ(hist.bucket_count(2), 1u);
  EXPECT_EQ(hist.bucket_count(3), 1u);  // the +Inf bucket
  // Nearest rank 2 of 4 lands in the (1, 2] bucket -> its upper bound.
  EXPECT_EQ(hist.quantile(50.0), 2.0);
  // The +Inf bucket answers with the largest finite bound.
  EXPECT_EQ(hist.quantile(100.0), 4.0);
}

TEST(ObsMetricsTest, RegistryReturnsTheSameMetricForAName) {
  obs::Registry registry;
  obs::Counter& a = registry.counter("requests");
  obs::Counter& b = registry.counter("requests");
  EXPECT_EQ(&a, &b);
  a.inc();
  EXPECT_EQ(b.value(), 1u);
}

TEST(ObsMetricsTest, RegistryRejectsOneNameAsTwoKinds) {
  obs::Registry registry;
  registry.counter("serve.depth");
  EXPECT_THROW(registry.gauge("serve.depth"), tsdx::ValueError);
  EXPECT_THROW(registry.histogram("serve.depth"), tsdx::ValueError);
}

// First-touch registration under contention: 8 threads race to create the
// same metric names on a fresh registry and then hammer them. Exactly one
// object per name may exist (everyone's increments land in it) and the maps
// must survive concurrent mutation — the scenario TSan replays with this
// whole suite under the tsan preset. This is the regression test for the
// registry's lock discipline: its mutex is annotated and rank-checked, so
// the validator (enabled here) would also flag any ordering hole.
TEST(ObsMetricsTest, RegistryFirstTouchStress) {
  tsdx::lockorder::ScopedEnable lock_order;
  obs::Registry registry;
  constexpr std::size_t kThreads = 8;
  constexpr std::uint64_t kIncrements = 200;
  std::array<obs::Counter*, kThreads> seen{};
  serve::ThreadPool::run(kThreads, [&](std::size_t t) {
    // Every thread first-touches all three kinds plus a per-thread name, so
    // the maps rehash while other threads are resolving references.
    obs::Counter& counter = registry.counter("stress.shared");
    seen[t] = &counter;
    obs::Gauge& gauge = registry.gauge("stress.gauge");
    obs::Histogram& histogram = registry.histogram("stress.hist", {1.0, 8.0});
    registry.counter("stress.thread." + std::to_string(t)).inc();
    for (std::uint64_t i = 0; i < kIncrements; ++i) {
      counter.inc();
      gauge.update_max(static_cast<std::int64_t>(i));
      histogram.observe(static_cast<double>(t));
    }
  });
  for (std::size_t t = 1; t < kThreads; ++t) EXPECT_EQ(seen[t], seen[0]);
  EXPECT_EQ(registry.counter("stress.shared").value(), kThreads * kIncrements);
  EXPECT_EQ(registry.histogram("stress.hist").count(), kThreads * kIncrements);
  for (std::size_t t = 0; t < kThreads; ++t) {
    EXPECT_EQ(registry.counter("stress.thread." + std::to_string(t)).value(),
              1u);
  }
}

TEST(ObsMetricsTest, JsonAndPrometheusExposition) {
  obs::Registry registry;
  registry.counter("gemm.calls").inc(3);
  registry.gauge("queue.depth").set(-2);
  registry.histogram("lat.ms", {1.0, 10.0}).observe(5.0);
  const std::string json = registry.to_json();
  EXPECT_NE(json.find("\"gemm.calls\": 3"), std::string::npos) << json;
  EXPECT_NE(json.find("\"queue.depth\": -2"), std::string::npos) << json;
  EXPECT_NE(json.find("\"lat.ms\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"+Inf\""), std::string::npos) << json;
  const std::string prom = registry.to_prometheus();
  EXPECT_NE(prom.find("# TYPE gemm_calls counter"), std::string::npos) << prom;
  EXPECT_NE(prom.find("gemm_calls 3"), std::string::npos) << prom;
  EXPECT_NE(prom.find("# TYPE queue_depth gauge"), std::string::npos) << prom;
  // Histogram series: cumulative buckets with le labels plus _sum/_count.
  EXPECT_NE(prom.find("lat_ms_bucket{le=\"+Inf\"} 1"), std::string::npos)
      << prom;
  EXPECT_NE(prom.find("lat_ms_count 1"), std::string::npos) << prom;
}

// ---- span tracing ----------------------------------------------------------------

TEST(ObsTraceTest, OffModeRecordsNothingAndMintsInertContexts) {
  TraceReset reset(trace::Mode::kOff);
  const trace::Context ctx = trace::mint();
  EXPECT_EQ(ctx.trace_id, 0u);
  EXPECT_FALSE(ctx.sampled);
  trace::ContextGuard guard(ctx);
  { TSDX_TRACE_SPAN("test.off"); }
  trace::record_span("test.off.explicit", ctx, trace::Clock::now(),
                     trace::Clock::now());
  EXPECT_TRUE(trace::snapshot().empty());
}

TEST(ObsTraceTest, FullModeRecordsSpansUnderTheActiveContext) {
  TraceReset reset(trace::Mode::kFull);
  const trace::Context ctx = trace::mint();
  ASSERT_GT(ctx.trace_id, 0u);
  {
    trace::ContextGuard guard(ctx);
    TSDX_TRACE_SPAN("test.outer");
    { TSDX_TRACE_SPAN("test.inner"); }
  }
  const auto events = trace::snapshot();
  ASSERT_EQ(events.size(), 2u);
  // Ring order is completion order: inner closes first.
  EXPECT_STREQ(events[0].name, "test.inner");
  EXPECT_STREQ(events[1].name, "test.outer");
  for (const trace::SpanEvent& e : events) {
    EXPECT_EQ(e.trace_id, ctx.trace_id);
    EXPECT_GE(e.duration_ns, 0);
  }
  // Nesting: the outer span's interval contains the inner's.
  EXPECT_LE(events[1].start_ns, events[0].start_ns);
  EXPECT_GE(events[1].start_ns + events[1].duration_ns,
            events[0].start_ns + events[0].duration_ns);
}

TEST(ObsTraceTest, SampledModeDropsUnsampledTraces) {
  TraceReset reset(trace::Mode::kSampled);
  {
    trace::ContextGuard guard(trace::Context{42, /*sampled=*/false});
    TSDX_TRACE_SPAN("test.unsampled");
  }
  EXPECT_TRUE(trace::snapshot().empty());
  {
    trace::ContextGuard guard(trace::Context{43, /*sampled=*/true});
    TSDX_TRACE_SPAN("test.sampled");
  }
  const auto events = trace::snapshot();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_STREQ(events[0].name, "test.sampled");
  EXPECT_EQ(events[0].trace_id, 43u);
}

TEST(ObsTraceTest, ContextGuardRestoresThePreviousContext) {
  TraceReset reset(trace::Mode::kFull);
  EXPECT_EQ(trace::current().trace_id, 0u);
  {
    trace::ContextGuard outer(trace::Context{7, true});
    EXPECT_EQ(trace::current().trace_id, 7u);
    {
      trace::ContextGuard inner(trace::Context{8, true});
      EXPECT_EQ(trace::current().trace_id, 8u);
    }
    EXPECT_EQ(trace::current().trace_id, 7u);
  }
  EXPECT_EQ(trace::current().trace_id, 0u);
}

TEST(ObsTraceTest, ParallelForCarriesTheContextOntoPoolWorkers) {
  TraceReset reset(trace::Mode::kFull);
  par::set_threads(3);
  const trace::Context ctx = trace::mint();
  {
    trace::ContextGuard guard(ctx);
    par::parallel_for(64, 8, [](std::int64_t, std::int64_t) {
      TSDX_TRACE_SPAN("test.chunk");
    });
  }
  const auto events = trace::snapshot();
  ASSERT_EQ(events.size(), 8u);  // 64 / grain 8 chunks, one span each
  for (const trace::SpanEvent& e : events) {
    EXPECT_STREQ(e.name, "test.chunk");
    EXPECT_EQ(e.trace_id, ctx.trace_id)
        << "a pool worker ran a chunk outside the publisher's trace";
  }
}

TEST(ObsTraceTest, JsonExportIsChromeTraceShaped) {
  TraceReset reset(trace::Mode::kFull);
  {
    trace::ContextGuard guard(trace::mint());
    TSDX_TRACE_SPAN("test.json");
  }
  const std::string json = trace::to_json();
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"name\": \"test.json\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"ph\": \"X\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"trace_id\""), std::string::npos) << json;
}

TEST(ObsTraceTest, FlushTraceWritesTheExportToDisk) {
  TraceReset reset(trace::Mode::kFull);
  {
    trace::ContextGuard guard(trace::mint());
    TSDX_TRACE_SPAN("test.flush");
  }
  const std::string path =
      (std::filesystem::temp_directory_path() / "obs_test_trace.json")
          .string();
  ASSERT_TRUE(trace::flush_trace(path));
  EXPECT_GT(std::filesystem::file_size(path), 0u);
  std::filesystem::remove(path);
}

// ---- end to end through the server ----------------------------------------------

// The tentpole guarantee: one submitted clip produces one trace ID whose
// spans cover the whole path — queue wait, batch formation, extractor,
// model layers, GEMM kernel — even though those run on different threads.
TEST(ObsTraceTest, OneRequestIsTracedEndToEndUnderASingleId) {
  TraceReset reset(trace::Mode::kFull);
  auto registry = std::make_shared<obs::Registry>();
  serve::ServerConfig cfg;
  cfg.workers = 1;
  cfg.max_batch = 1;
  cfg.batch_window = std::chrono::microseconds{0};
  cfg.queue_capacity = 8;
  cfg.metrics = registry;
  serve::InferenceServer server(make_frozen_extractor(), cfg);
  const auto clips = make_clips(2);
  for (const auto& clip : clips) server.submit(clip).get();
  server.drain();

  const auto events = trace::snapshot();
  const std::set<std::string> want{
      "serve.submit",  "serve.queue_wait", "serve.batch",   "serve.request",
      "extract.batch", "model.embed",      "model.attention", "gemm.mm"};
  std::set<std::uint64_t> ids;
  for (const trace::SpanEvent& e : events) ids.insert(e.trace_id);
  std::size_t full_traces = 0;
  for (const std::uint64_t id : ids) {
    const std::set<std::string> names = span_names(events, id);
    if (std::includes(names.begin(), names.end(), want.begin(), want.end())) {
      ++full_traces;
    }
  }
  // Sequential config: every request's batch adopts that request's context,
  // so both requests must be fully traced.
  EXPECT_EQ(full_traces, clips.size());

  // The same run through the metrics surface: the private registry holds
  // exactly this server's accounting.
  EXPECT_EQ(registry->counter("serve.submitted").value(), clips.size());
  EXPECT_EQ(registry->counter("serve.completed").value(), clips.size());
  EXPECT_EQ(registry->histogram("serve.latency_ms").count(), clips.size());
  EXPECT_GE(registry->histogram("serve.queue_wait_ms").count(), clips.size());
  EXPECT_EQ(registry->gauge("serve.circuit_state").value(), 0);
  const serve::ServerStats stats = server.stats();
  EXPECT_EQ(stats.submitted, clips.size());
  EXPECT_EQ(stats.completed, clips.size());
  // And the endpoint-shaped exports mention the serve series.
  EXPECT_NE(server.metrics_json().find("\"serve.submitted\""),
            std::string::npos);
  EXPECT_NE(server.metrics_text().find("serve_submitted"), std::string::npos);
}

// TSDX_TRACE=off must leave no spans behind even with a server running full
// tilt — the "unmeasurable when off" half of the overhead contract.
TEST(ObsTraceTest, ServerUnderOffModeRecordsNoSpans) {
  TraceReset reset(trace::Mode::kOff);
  serve::ServerConfig cfg;
  cfg.workers = 1;
  cfg.max_batch = 2;
  cfg.queue_capacity = 8;
  cfg.metrics = std::make_shared<obs::Registry>();
  serve::InferenceServer server(make_frozen_extractor(), cfg);
  for (const auto& clip : make_clips(3)) server.submit(clip).get();
  server.drain();
  EXPECT_TRUE(trace::snapshot().empty());
}
