// obs_test.cpp — the observability layer's contracts: exact-percentile edge
// cases (shared by serve stats and every bench table), the metrics registry
// (counters/gauges/histograms + JSON/Prometheus exposition), and span
// tracing — mode gating, context propagation across the tsdx::par pool, and
// the end-to-end guarantee that one submitted request produces a single
// trace ID spanning queue -> batch -> extract -> model layers -> GEMM.
#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <future>
#include <memory>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "core/check.hpp"
#include "core/extractor.hpp"
#include "core/lockorder.hpp"
#include "obs/metrics.hpp"
#include "obs/recorder.hpp"
#include "obs/slo.hpp"
#include "obs/trace.hpp"
#include "serve/server.hpp"
#include "serve/thread_pool.hpp"
#include "sim/clipgen.hpp"
#include "tensor/kernels/parallel_for.hpp"

namespace core = tsdx::core;
namespace obs = tsdx::obs;
namespace trace = tsdx::obs::trace;
namespace par = tsdx::par;
namespace serve = tsdx::serve;
namespace sim = tsdx::sim;

namespace {

/// Reset tracing around a test so a binary-wide run (not just ctest's
/// one-process-per-test) can't leak spans or a mode between tests.
struct TraceReset {
  explicit TraceReset(trace::Mode mode) {
    trace::set_mode(mode);
    trace::clear();
  }
  ~TraceReset() {
    trace::set_mode(trace::Mode::kOff);
    trace::clear();
  }
};

core::ModelConfig micro_config() {
  core::ModelConfig cfg;
  cfg.frames = 2;
  cfg.image_size = 8;
  cfg.patch_size = 4;
  cfg.tubelet_frames = 1;
  cfg.dim = 8;
  cfg.depth = 1;
  cfg.heads = 2;
  cfg.attention = core::AttentionKind::kDividedST;
  return cfg;
}

std::shared_ptr<core::ScenarioExtractor> make_frozen_extractor() {
  auto extractor =
      std::make_shared<core::ScenarioExtractor>(micro_config(), /*seed=*/7);
  extractor->freeze();
  return extractor;
}

std::vector<sim::VideoClip> make_clips(std::size_t count) {
  const core::ModelConfig cfg = micro_config();
  sim::RenderConfig render;
  render.height = render.width = cfg.image_size;
  render.frames = cfg.frames;
  sim::ClipGenerator gen(render, /*seed=*/11);
  std::vector<sim::VideoClip> clips;
  clips.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    clips.push_back(gen.generate().video);
  }
  return clips;
}

std::set<std::string> span_names(const std::vector<trace::SpanEvent>& events,
                                 std::uint64_t trace_id) {
  std::set<std::string> names;
  for (const trace::SpanEvent& e : events) {
    if (e.trace_id == trace_id) names.insert(e.name);
  }
  return names;
}

}  // namespace

// ---- percentile edge cases -------------------------------------------------------

// The contract printers and bench tables rely on: no special-casing needed
// at any sample count.
TEST(ObsPercentileTest, EmptySampleSetReturnsZero) {
  EXPECT_EQ(obs::percentile({}, 50.0), 0.0);
  EXPECT_EQ(obs::percentile({}, 99.0), 0.0);
}

TEST(ObsPercentileTest, SingleSampleAnswersEveryPercentile) {
  for (const double p : {0.0, 1.0, 50.0, 99.0, 100.0}) {
    EXPECT_EQ(obs::percentile({42.5}, p), 42.5) << "p=" << p;
  }
}

// p99 over n < 100 samples must resolve to the maximum, never index past
// the end (nearest-rank: ceil(0.99 * 10) = 10 -> last sample).
TEST(ObsPercentileTest, TailPercentileOverFewSamplesIsTheMaximum) {
  std::vector<double> ten;
  for (int i = 1; i <= 10; ++i) ten.push_back(static_cast<double>(i));
  EXPECT_EQ(obs::percentile(ten, 99.0), 10.0);
  EXPECT_EQ(obs::percentile(ten, 95.0), 10.0);
  EXPECT_EQ(obs::percentile(ten, 90.0), 9.0);
}

TEST(ObsPercentileTest, ZeroIsMinimumAndHundredIsMaximum) {
  const std::vector<double> samples{3.0, 1.0, 2.0};  // unsorted on purpose
  EXPECT_EQ(obs::percentile(samples, 0.0), 1.0);
  EXPECT_EQ(obs::percentile(samples, 100.0), 3.0);
}

TEST(ObsPercentileTest, NearestRankMedianOfEvenCount) {
  // ceil(0.5 * 4) = rank 2 -> the second-smallest sample.
  EXPECT_EQ(obs::percentile({4.0, 1.0, 3.0, 2.0}, 50.0), 2.0);
}

TEST(ObsPercentileTest, OutOfRangePThrows) {
  EXPECT_THROW(obs::percentile({1.0}, -1.0), tsdx::ValueError);
  EXPECT_THROW(obs::percentile({1.0}, 100.5), tsdx::ValueError);
}

TEST(ObsLatencyHistogramTest, EmptyDistributionIsAllZeros) {
  const obs::LatencyHistogram hist;
  EXPECT_EQ(hist.count(), 0u);
  EXPECT_EQ(hist.mean(), 0.0);
  EXPECT_EQ(hist.max(), 0.0);
  EXPECT_EQ(hist.percentile(99.0), 0.0);
}

TEST(ObsLatencyHistogramTest, RecordsAndSummarizes) {
  obs::LatencyHistogram hist;
  hist.record(1.0);
  hist.record(3.0);
  hist.record(2.0);
  EXPECT_EQ(hist.count(), 3u);
  EXPECT_DOUBLE_EQ(hist.mean(), 2.0);
  EXPECT_EQ(hist.max(), 3.0);
  EXPECT_EQ(hist.percentile(50.0), 2.0);
}

// The reservoir fix: storage stays bounded past kReservoirCapacity while
// count/mean/min/max remain exact running aggregates and p0/p100 are pinned
// to the true extremes. The replacement draw is a hash of the running count,
// so two histograms fed the same sequence agree on every percentile.
TEST(ObsLatencyHistogramTest, ReservoirBoundsStorageAndKeepsExactAggregates) {
  obs::LatencyHistogram hist;
  obs::LatencyHistogram twin;
  const std::size_t n = 3 * obs::LatencyHistogram::kReservoirCapacity;
  double sum = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    // A deterministic shuffle-ish sequence covering [0, n).
    const double v = static_cast<double>((i * 7919) % n);
    hist.record(v);
    twin.record(v);
    sum += v;
  }
  EXPECT_EQ(hist.count(), n);
  EXPECT_EQ(hist.samples().size(), obs::LatencyHistogram::kReservoirCapacity);
  EXPECT_DOUBLE_EQ(hist.mean(), sum / static_cast<double>(n));
  EXPECT_EQ(hist.min(), 0.0);
  EXPECT_EQ(hist.max(), static_cast<double>(n - 1));
  // p0/p100 answer from the running extremes, not the reservoir.
  EXPECT_EQ(hist.percentile(0.0), 0.0);
  EXPECT_EQ(hist.percentile(100.0), static_cast<double>(n - 1));
  // The reservoir estimate is a uniform sample of a uniform distribution:
  // the median lands near n/2 (loose bound; determinism is what's pinned).
  const double p50 = hist.percentile(50.0);
  EXPECT_GT(p50, 0.35 * static_cast<double>(n));
  EXPECT_LT(p50, 0.65 * static_cast<double>(n));
  for (const double p : {1.0, 25.0, 50.0, 75.0, 95.0, 99.0}) {
    EXPECT_EQ(hist.percentile(p), twin.percentile(p))
        << "reservoir not deterministic at p=" << p;
  }
}

// Below the capacity nothing changed: every sample is retained verbatim and
// percentiles are exact (the original contract, now with a bounded tail).
TEST(ObsLatencyHistogramTest, BelowCapacityPercentilesStayExact) {
  obs::LatencyHistogram hist;
  for (int i = 100; i >= 1; --i) hist.record(static_cast<double>(i));
  EXPECT_EQ(hist.samples().size(), 100u);
  EXPECT_EQ(hist.percentile(50.0), 50.0);
  EXPECT_EQ(hist.percentile(99.0), 99.0);
  EXPECT_EQ(hist.percentile(100.0), 100.0);
}

// ---- metrics registry ------------------------------------------------------------

TEST(ObsMetricsTest, CounterAccumulates) {
  obs::Counter counter;
  EXPECT_EQ(counter.value(), 0u);
  counter.inc();
  counter.inc(41);
  EXPECT_EQ(counter.value(), 42u);
}

TEST(ObsMetricsTest, GaugeSetAddAndHighWatermark) {
  obs::Gauge gauge;
  gauge.set(5);
  gauge.add(-2);
  EXPECT_EQ(gauge.value(), 3);
  gauge.update_max(10);
  EXPECT_EQ(gauge.value(), 10);
  gauge.update_max(4);  // below the watermark: no change
  EXPECT_EQ(gauge.value(), 10);
}

TEST(ObsMetricsTest, HistogramBucketsSumAndQuantiles) {
  obs::Histogram hist({1.0, 2.0, 4.0});
  EXPECT_EQ(hist.quantile(50.0), 0.0);  // empty
  hist.observe(0.5);
  hist.observe(1.5);
  hist.observe(3.0);
  hist.observe(100.0);  // +Inf overflow bucket
  EXPECT_EQ(hist.count(), 4u);
  EXPECT_DOUBLE_EQ(hist.sum(), 105.0);
  EXPECT_EQ(hist.bucket_count(0), 1u);
  EXPECT_EQ(hist.bucket_count(1), 1u);
  EXPECT_EQ(hist.bucket_count(2), 1u);
  EXPECT_EQ(hist.bucket_count(3), 1u);  // the +Inf bucket
  // Nearest rank 2 of 4 lands in the (1, 2] bucket -> its upper bound.
  EXPECT_EQ(hist.quantile(50.0), 2.0);
  // The +Inf bucket answers with the largest finite bound.
  EXPECT_EQ(hist.quantile(100.0), 4.0);
}

TEST(ObsMetricsTest, RegistryReturnsTheSameMetricForAName) {
  obs::Registry registry;
  obs::Counter& a = registry.counter("requests");
  obs::Counter& b = registry.counter("requests");
  EXPECT_EQ(&a, &b);
  a.inc();
  EXPECT_EQ(b.value(), 1u);
}

TEST(ObsMetricsTest, RegistryRejectsOneNameAsTwoKinds) {
  obs::Registry registry;
  registry.counter("serve.depth");
  EXPECT_THROW(registry.gauge("serve.depth"), tsdx::ValueError);
  EXPECT_THROW(registry.histogram("serve.depth"), tsdx::ValueError);
}

// First-touch registration under contention: 8 threads race to create the
// same metric names on a fresh registry and then hammer them. Exactly one
// object per name may exist (everyone's increments land in it) and the maps
// must survive concurrent mutation — the scenario TSan replays with this
// whole suite under the tsan preset. This is the regression test for the
// registry's lock discipline: its mutex is annotated and rank-checked, so
// the validator (enabled here) would also flag any ordering hole.
TEST(ObsMetricsTest, RegistryFirstTouchStress) {
  tsdx::lockorder::ScopedEnable lock_order;
  obs::Registry registry;
  constexpr std::size_t kThreads = 8;
  constexpr std::uint64_t kIncrements = 200;
  std::array<obs::Counter*, kThreads> seen{};
  serve::ThreadPool::run(kThreads, [&](std::size_t t) {
    // Every thread first-touches all three kinds plus a per-thread name, so
    // the maps rehash while other threads are resolving references.
    obs::Counter& counter = registry.counter("stress.shared");
    seen[t] = &counter;
    obs::Gauge& gauge = registry.gauge("stress.gauge");
    obs::Histogram& histogram = registry.histogram("stress.hist", {1.0, 8.0});
    registry.counter("stress.thread." + std::to_string(t)).inc();
    for (std::uint64_t i = 0; i < kIncrements; ++i) {
      counter.inc();
      gauge.update_max(static_cast<std::int64_t>(i));
      histogram.observe(static_cast<double>(t));
    }
  });
  for (std::size_t t = 1; t < kThreads; ++t) EXPECT_EQ(seen[t], seen[0]);
  EXPECT_EQ(registry.counter("stress.shared").value(), kThreads * kIncrements);
  EXPECT_EQ(registry.histogram("stress.hist").count(), kThreads * kIncrements);
  for (std::size_t t = 0; t < kThreads; ++t) {
    EXPECT_EQ(registry.counter("stress.thread." + std::to_string(t)).value(),
              1u);
  }
}

TEST(ObsMetricsTest, JsonAndPrometheusExposition) {
  obs::Registry registry;
  registry.counter("gemm.calls").inc(3);
  registry.gauge("queue.depth").set(-2);
  registry.histogram("lat.ms", {1.0, 10.0}).observe(5.0);
  const std::string json = registry.to_json();
  EXPECT_NE(json.find("\"gemm.calls\": 3"), std::string::npos) << json;
  EXPECT_NE(json.find("\"queue.depth\": -2"), std::string::npos) << json;
  EXPECT_NE(json.find("\"lat.ms\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"+Inf\""), std::string::npos) << json;
  const std::string prom = registry.to_prometheus();
  EXPECT_NE(prom.find("# TYPE gemm_calls counter"), std::string::npos) << prom;
  EXPECT_NE(prom.find("gemm_calls 3"), std::string::npos) << prom;
  EXPECT_NE(prom.find("# TYPE queue_depth gauge"), std::string::npos) << prom;
  // Histogram series: cumulative buckets with le labels plus _sum/_count.
  EXPECT_NE(prom.find("lat_ms_bucket{le=\"+Inf\"} 1"), std::string::npos)
      << prom;
  EXPECT_NE(prom.find("lat_ms_count 1"), std::string::npos) << prom;
}

// Trace-ID exemplars: an observation that carries a trace ID is remembered
// on its bucket and rendered as an OpenMetrics exemplar, linking the
// histogram's slow tail to a concrete flight-recorder trace.
TEST(ObsMetricsTest, HistogramExemplarsLinkBucketsToTraces) {
  obs::Registry registry;
  obs::Histogram& hist = registry.histogram("seg.ms", {1.0, 10.0});
  hist.observe(0.5);        // untraced: no exemplar on bucket 0
  hist.observe(5.0, 77);    // traced: exemplar on the (1, 10] bucket
  hist.observe(100.0, 78);  // traced: exemplar on the +Inf bucket
  EXPECT_EQ(hist.exemplar(0).trace_id, 0u);
  EXPECT_EQ(hist.exemplar(1).trace_id, 77u);
  EXPECT_DOUBLE_EQ(hist.exemplar(1).value, 5.0);
  EXPECT_EQ(hist.exemplar(2).trace_id, 78u);
  const std::string prom = registry.to_prometheus();
  EXPECT_NE(prom.find("seg_ms_bucket{le=\"10\"} 2 # {trace_id=\"77\"} 5"),
            std::string::npos)
      << prom;
  EXPECT_NE(prom.find("seg_ms_bucket{le=\"+Inf\"} 3 # {trace_id=\"78\"} 100"),
            std::string::npos)
      << prom;
  // The untraced bucket renders without a suffix.
  EXPECT_NE(prom.find("seg_ms_bucket{le=\"1\"} 1\n"), std::string::npos)
      << prom;
  // A later traced observation in the same bucket wins (latest exemplar).
  hist.observe(6.0, 79);
  EXPECT_EQ(hist.exemplar(1).trace_id, 79u);
}

// ---- flight recorder -------------------------------------------------------------

TEST(ObsRecorderTest, LifecycleDerivesSegmentsThatSumToEndToEnd) {
  obs::Recorder recorder;
  obs::Registry registry;
  const std::uint64_t h =
      recorder.begin(obs::Recorder::Kind::kServer, /*trace_id=*/77);
  ASSERT_NE(h, 0u);
  recorder.on_enqueued(h);
  recorder.on_dispatch(h);
  recorder.on_execute(h, recorder.mint_batch_id(), /*batch_size=*/4,
                      /*worker=*/1);
  recorder.set_path(h, obs::Recorder::Path::kPlan);
  recorder.finish(h, obs::Recorder::Outcome::kCompleted, &registry);

  const auto records = recorder.snapshot();
  ASSERT_EQ(records.size(), 1u);
  const obs::Recorder::Record& r = records[0];
  EXPECT_EQ(r.trace_id, 77u);
  EXPECT_EQ(r.outcome, obs::Recorder::Outcome::kCompleted);
  EXPECT_EQ(r.path, obs::Recorder::Path::kPlan);
  EXPECT_EQ(r.batch_size, 4u);
  EXPECT_EQ(r.worker, 1);
  EXPECT_GE(r.batch_id, 1u);
  // Timeline is monotone through the milestones.
  EXPECT_LE(r.submit_ns, r.enqueue_ns);
  EXPECT_LE(r.enqueue_ns, r.dispatch_ns);
  EXPECT_LE(r.dispatch_ns, r.execute_ns);
  EXPECT_LE(r.execute_ns, r.done_ns);

  // The derived segments partition e2e exactly — the obs_report.py
  // attribution gate depends on this invariant, pinned here at the source.
  const char* segments[] = {"obs.segment_ms.admission", "obs.segment_ms.queue",
                            "obs.segment_ms.batch_wait",
                            "obs.segment_ms.execute"};
  double attributed = 0.0;
  for (const char* name : segments) {
    obs::Histogram& hist = registry.histogram(name);
    EXPECT_EQ(hist.count(), 1u) << name;
    attributed += hist.sum();
  }
  obs::Histogram& e2e = registry.histogram("obs.e2e_ms");
  EXPECT_EQ(e2e.count(), 1u);
  EXPECT_NEAR(e2e.sum(), attributed, 1e-9);

  // And the JSON export carries the full schema trace_check.py validates.
  const std::string json = recorder.to_json();
  EXPECT_NE(json.find("\"trace_id\": 77"), std::string::npos) << json;
  EXPECT_NE(json.find("\"outcome\": \"completed\""), std::string::npos);
  EXPECT_NE(json.find("\"path\": \"plan\""), std::string::npos);
  EXPECT_NE(json.find("\"kind\": \"server\""), std::string::npos);
}

// Requests that never reach later milestones clamp the missing segments to
// zero length, so the partition invariant holds even for an expired request
// that was never dispatched — and expired/shed records stay out of the
// histograms entirely.
TEST(ObsRecorderTest, MissingMilestonesClampAndNonServedStayUnobserved) {
  obs::Recorder recorder;
  obs::Registry registry;
  // Failed after enqueue, never dispatched: queue/batch_wait/execute clamp.
  const std::uint64_t failed =
      recorder.begin(obs::Recorder::Kind::kServer, 1);
  recorder.on_enqueued(failed);
  recorder.finish(failed, obs::Recorder::Outcome::kFailed, &registry);
  EXPECT_EQ(registry.histogram("obs.e2e_ms").count(), 1u);
  EXPECT_EQ(registry.histogram("obs.segment_ms.execute").count(), 1u);
  // Deadline-expired: timeline kept in the ring, histograms untouched.
  const std::uint64_t expired =
      recorder.begin(obs::Recorder::Kind::kServer, 2);
  recorder.finish(expired, obs::Recorder::Outcome::kDeadlineExpired,
                  &registry);
  EXPECT_EQ(registry.histogram("obs.e2e_ms").count(), 1u);
  const auto records = recorder.snapshot();
  ASSERT_EQ(records.size(), 2u);
  EXPECT_EQ(records[1].outcome, obs::Recorder::Outcome::kDeadlineExpired);
}

TEST(ObsRecorderTest, RouterRecordAccumulatesRetriesIntoBackoffHistogram) {
  obs::Recorder recorder;
  obs::Registry registry;
  const std::uint64_t h = recorder.begin(obs::Recorder::Kind::kRouter, 9);
  recorder.on_admission(h, "admitted");
  recorder.set_replica(h, 2);
  recorder.on_retry(h, /*backoff_ns=*/1'000'000, /*failover=*/true);
  recorder.on_retry(h, /*backoff_ns=*/2'000'000, /*failover=*/false);
  recorder.finish(h, obs::Recorder::Outcome::kFailed, &registry);
  const auto records = recorder.snapshot();
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0].attempts, 2u);
  EXPECT_EQ(records[0].failovers, 1u);
  EXPECT_EQ(records[0].backoff_ns, 3'000'000);
  EXPECT_EQ(records[0].replica, 2);
  obs::Histogram& backoff =
      registry.histogram("obs.segment_ms.retry_backoff");
  EXPECT_EQ(backoff.count(), 1u);
  EXPECT_DOUBLE_EQ(backoff.sum(), 3.0);
  // Router records never feed the server-side e2e partition.
  EXPECT_EQ(registry.histogram("obs.e2e_ms").count(), 0u);
  const std::string json = recorder.to_json();
  EXPECT_NE(json.find("\"admission\": \"admitted\""), std::string::npos);
}

// The ring is a diagnostic buffer, not a ledger: hooks against a handle the
// ring has lapped are silently dropped instead of corrupting the younger
// record that now owns the slot.
TEST(ObsRecorderTest, LappedHandlesAreDroppedSilently) {
  obs::Recorder recorder;
  obs::Registry registry;
  const std::uint64_t old_handle =
      recorder.begin(obs::Recorder::Kind::kServer, 5);
  for (std::size_t i = 0; i < obs::Recorder::kRingCapacity; ++i) {
    recorder.begin(obs::Recorder::Kind::kServer, 0);
  }
  recorder.on_dispatch(old_handle);
  recorder.finish(old_handle, obs::Recorder::Outcome::kCompleted, &registry);
  // The lapped finish neither observed histograms nor resurfaced the record.
  EXPECT_EQ(registry.histogram("obs.e2e_ms").count(), 0u);
  for (const obs::Recorder::Record& r : recorder.snapshot()) {
    EXPECT_NE(r.id, old_handle);
  }
  // Handle 0 is the inert no-record handle: every hook is a no-op.
  recorder.on_enqueued(0);
  recorder.finish(0, obs::Recorder::Outcome::kFailed, &registry);
  EXPECT_EQ(registry.histogram("obs.e2e_ms").count(), 0u);
}

// ---- SLO engine ------------------------------------------------------------------

TEST(ObsSloTest, BurnRatesTrackBothWindowsAndTheBudget) {
  obs::Registry registry;
  obs::SloConfig cfg;
  cfg.latency_objective_ms = 100.0;
  cfg.target = 0.9;  // error budget = 10%
  obs::SloEngine engine(cfg, &registry);
  const auto t0 = obs::SloEngine::Clock::now();
  for (int i = 0; i < 9; ++i) engine.on_event(true, 10.0, t0);
  engine.on_event(true, 500.0, t0);  // over the objective: a bad event
  const obs::SloSnapshot at_t0 = engine.snapshot(t0);
  EXPECT_EQ(at_t0.good_fast, 9u);
  EXPECT_EQ(at_t0.bad_fast, 1u);
  // 10% bad over a 10% budget: burning at exactly the sustainable rate.
  EXPECT_DOUBLE_EQ(at_t0.burn_rate_fast, 1.0);
  EXPECT_DOUBLE_EQ(at_t0.burn_rate_slow, 1.0);
  EXPECT_NEAR(at_t0.budget_remaining, 0.0, 1e-12);
  // Gauges export in milli-units.
  EXPECT_EQ(registry.gauge("slo.burn_rate_fast").value(), 1000);
  EXPECT_EQ(registry.gauge("slo.budget_remaining").value(), 0);

  // Two minutes later the fast window has forgotten the burst; the slow
  // window is still bleeding — the separation that tells "spiking now"
  // from "quietly burning".
  const auto later = t0 + std::chrono::seconds(120);
  const obs::SloSnapshot at_later = engine.snapshot(later);
  EXPECT_EQ(at_later.good_fast + at_later.bad_fast, 0u);
  EXPECT_EQ(at_later.bad_slow, 1u);
  EXPECT_DOUBLE_EQ(at_later.burn_rate_fast, 0.0);
  EXPECT_DOUBLE_EQ(at_later.burn_rate_slow, 1.0);

  engine.reset();
  const obs::SloSnapshot after_reset = engine.snapshot(later);
  EXPECT_EQ(after_reset.good_slow + after_reset.bad_slow, 0u);
  EXPECT_DOUBLE_EQ(after_reset.budget_remaining, 1.0);
}

TEST(ObsSloTest, FailuresAreBadRegardlessOfLatency) {
  obs::Registry registry;
  obs::SloEngine engine(obs::SloConfig{}, &registry);
  const auto t0 = obs::SloEngine::Clock::now();
  engine.on_event(/*ok=*/false, /*latency_ms=*/0.0, t0);
  const obs::SloSnapshot snap = engine.snapshot(t0);
  EXPECT_EQ(snap.bad_fast, 1u);
  EXPECT_EQ(snap.good_fast, 0u);
}

TEST(ObsSloTest, AnomalyDumpsAreWrittenCappedAndCounted) {
  const std::filesystem::path dir =
      std::filesystem::temp_directory_path() / "obs_test_slo_dumps";
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  ::setenv("TSDX_OBS_DUMP_DIR", dir.string().c_str(), 1);
  obs::Registry registry;
  obs::SloConfig cfg;
  cfg.max_dumps_per_kind = 2;
  obs::SloEngine engine(cfg, &registry);
  for (int i = 0; i < 5; ++i) {
    engine.note_anomaly(obs::Anomaly::kRetryStorm, /*trace_id=*/0);
  }
  engine.note_anomaly(obs::Anomaly::kCircuitTrip, /*trace_id=*/0);
  ::unsetenv("TSDX_OBS_DUMP_DIR");

  // Every anomaly is counted; only the first max_dumps_per_kind hit disk.
  EXPECT_EQ(registry.counter("slo.anomalies.retry_storm").value(), 5u);
  EXPECT_EQ(registry.counter("slo.anomalies.circuit_trip").value(), 1u);
  std::size_t storm_dumps = 0;
  std::size_t trip_dumps = 0;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    const std::string name = entry.path().filename().string();
    if (name.find("retry_storm") != std::string::npos) ++storm_dumps;
    if (name.find("circuit_trip") != std::string::npos) ++trip_dumps;
    std::ifstream in(entry.path());
    std::stringstream body;
    body << in.rdbuf();
    EXPECT_NE(body.str().find("\"anomaly\""), std::string::npos);
    EXPECT_NE(body.str().find("\"records\""), std::string::npos);
    EXPECT_NE(body.str().find("\"spans\""), std::string::npos);
  }
  EXPECT_EQ(storm_dumps, 2u);
  EXPECT_EQ(trip_dumps, 1u);

  // reset() re-arms the cap (and restarts the dump sequence, so use a
  // fresh directory to count).
  engine.reset();
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  ::setenv("TSDX_OBS_DUMP_DIR", dir.string().c_str(), 1);
  engine.note_anomaly(obs::Anomaly::kRetryStorm, 0);
  ::unsetenv("TSDX_OBS_DUMP_DIR");
  storm_dumps = 0;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    if (entry.path().filename().string().find("retry_storm") !=
        std::string::npos) {
      ++storm_dumps;
    }
  }
  EXPECT_EQ(storm_dumps, 1u);
  std::filesystem::remove_all(dir);
}

// ---- span tracing ----------------------------------------------------------------

TEST(ObsTraceTest, OffModeRecordsNothingAndMintsInertContexts) {
  TraceReset reset(trace::Mode::kOff);
  const trace::Context ctx = trace::mint();
  EXPECT_EQ(ctx.trace_id, 0u);
  EXPECT_FALSE(ctx.sampled);
  trace::ContextGuard guard(ctx);
  { TSDX_TRACE_SPAN("test.off"); }
  trace::record_span("test.off.explicit", ctx, trace::Clock::now(),
                     trace::Clock::now());
  EXPECT_TRUE(trace::snapshot().empty());
}

TEST(ObsTraceTest, FullModeRecordsSpansUnderTheActiveContext) {
  TraceReset reset(trace::Mode::kFull);
  const trace::Context ctx = trace::mint();
  ASSERT_GT(ctx.trace_id, 0u);
  {
    trace::ContextGuard guard(ctx);
    TSDX_TRACE_SPAN("test.outer");
    { TSDX_TRACE_SPAN("test.inner"); }
  }
  const auto events = trace::snapshot();
  ASSERT_EQ(events.size(), 2u);
  // Ring order is completion order: inner closes first.
  EXPECT_STREQ(events[0].name, "test.inner");
  EXPECT_STREQ(events[1].name, "test.outer");
  for (const trace::SpanEvent& e : events) {
    EXPECT_EQ(e.trace_id, ctx.trace_id);
    EXPECT_GE(e.duration_ns, 0);
  }
  // Nesting: the outer span's interval contains the inner's.
  EXPECT_LE(events[1].start_ns, events[0].start_ns);
  EXPECT_GE(events[1].start_ns + events[1].duration_ns,
            events[0].start_ns + events[0].duration_ns);
}

TEST(ObsTraceTest, SampledModeDropsUnsampledTraces) {
  TraceReset reset(trace::Mode::kSampled);
  {
    trace::ContextGuard guard(trace::Context{42, /*sampled=*/false});
    TSDX_TRACE_SPAN("test.unsampled");
  }
  EXPECT_TRUE(trace::snapshot().empty());
  {
    trace::ContextGuard guard(trace::Context{43, /*sampled=*/true});
    TSDX_TRACE_SPAN("test.sampled");
  }
  const auto events = trace::snapshot();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_STREQ(events[0].name, "test.sampled");
  EXPECT_EQ(events[0].trace_id, 43u);
}

TEST(ObsTraceTest, ContextGuardRestoresThePreviousContext) {
  TraceReset reset(trace::Mode::kFull);
  EXPECT_EQ(trace::current().trace_id, 0u);
  {
    trace::ContextGuard outer(trace::Context{7, true});
    EXPECT_EQ(trace::current().trace_id, 7u);
    {
      trace::ContextGuard inner(trace::Context{8, true});
      EXPECT_EQ(trace::current().trace_id, 8u);
    }
    EXPECT_EQ(trace::current().trace_id, 7u);
  }
  EXPECT_EQ(trace::current().trace_id, 0u);
}

TEST(ObsTraceTest, ParallelForCarriesTheContextOntoPoolWorkers) {
  TraceReset reset(trace::Mode::kFull);
  par::set_threads(3);
  const trace::Context ctx = trace::mint();
  {
    trace::ContextGuard guard(ctx);
    par::parallel_for(64, 8, [](std::int64_t, std::int64_t) {
      TSDX_TRACE_SPAN("test.chunk");
    });
  }
  const auto events = trace::snapshot();
  ASSERT_EQ(events.size(), 8u);  // 64 / grain 8 chunks, one span each
  for (const trace::SpanEvent& e : events) {
    EXPECT_STREQ(e.name, "test.chunk");
    EXPECT_EQ(e.trace_id, ctx.trace_id)
        << "a pool worker ran a chunk outside the publisher's trace";
  }
}

TEST(ObsTraceTest, JsonExportIsChromeTraceShaped) {
  TraceReset reset(trace::Mode::kFull);
  {
    trace::ContextGuard guard(trace::mint());
    TSDX_TRACE_SPAN("test.json");
  }
  const std::string json = trace::to_json();
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"name\": \"test.json\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"ph\": \"X\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"trace_id\""), std::string::npos) << json;
}

TEST(ObsTraceTest, FlushTraceWritesTheExportToDisk) {
  TraceReset reset(trace::Mode::kFull);
  {
    trace::ContextGuard guard(trace::mint());
    TSDX_TRACE_SPAN("test.flush");
  }
  const std::string path =
      (std::filesystem::temp_directory_path() / "obs_test_trace.json")
          .string();
  ASSERT_TRUE(trace::flush_trace(path));
  EXPECT_GT(std::filesystem::file_size(path), 0u);
  std::filesystem::remove(path);
}

// ---- end to end through the server ----------------------------------------------

// The tentpole guarantee: one submitted clip produces one trace ID whose
// spans cover the whole path — queue wait, batch formation, extractor,
// model layers, GEMM kernel — even though those run on different threads.
TEST(ObsTraceTest, OneRequestIsTracedEndToEndUnderASingleId) {
  TraceReset reset(trace::Mode::kFull);
  auto registry = std::make_shared<obs::Registry>();
  serve::ServerConfig cfg;
  cfg.workers = 1;
  cfg.max_batch = 1;
  cfg.batch_window = std::chrono::microseconds{0};
  cfg.queue_capacity = 8;
  cfg.metrics = registry;
  serve::InferenceServer server(make_frozen_extractor(), cfg);
  const auto clips = make_clips(2);
  for (const auto& clip : clips) server.submit(clip).get();
  server.drain();

  const auto events = trace::snapshot();
  const std::set<std::string> want{
      "serve.submit",  "serve.queue_wait", "serve.batch",   "serve.request",
      "extract.batch", "model.embed",      "model.attention", "gemm.mm"};
  std::set<std::uint64_t> ids;
  for (const trace::SpanEvent& e : events) ids.insert(e.trace_id);
  std::size_t full_traces = 0;
  for (const std::uint64_t id : ids) {
    const std::set<std::string> names = span_names(events, id);
    if (std::includes(names.begin(), names.end(), want.begin(), want.end())) {
      ++full_traces;
    }
  }
  // Sequential config: every request's batch adopts that request's context,
  // so both requests must be fully traced.
  EXPECT_EQ(full_traces, clips.size());

  // The same run through the metrics surface: the private registry holds
  // exactly this server's accounting.
  EXPECT_EQ(registry->counter("serve.submitted").value(), clips.size());
  EXPECT_EQ(registry->counter("serve.completed").value(), clips.size());
  EXPECT_EQ(registry->histogram("serve.latency_ms").count(), clips.size());
  EXPECT_GE(registry->histogram("serve.queue_wait_ms").count(), clips.size());
  EXPECT_EQ(registry->gauge("serve.circuit_state").value(), 0);
  const serve::ServerStats stats = server.stats();
  EXPECT_EQ(stats.submitted, clips.size());
  EXPECT_EQ(stats.completed, clips.size());
  // And the endpoint-shaped exports mention the serve series.
  EXPECT_NE(server.metrics_json().find("\"serve.submitted\""),
            std::string::npos);
  EXPECT_NE(server.metrics_text().find("serve_submitted"), std::string::npos);
}

// TSDX_TRACE=off must leave no spans behind even with a server running full
// tilt — the "unmeasurable when off" half of the overhead contract.
TEST(ObsTraceTest, ServerUnderOffModeRecordsNoSpans) {
  TraceReset reset(trace::Mode::kOff);
  serve::ServerConfig cfg;
  cfg.workers = 1;
  cfg.max_batch = 2;
  cfg.queue_capacity = 8;
  cfg.metrics = std::make_shared<obs::Registry>();
  serve::InferenceServer server(make_frozen_extractor(), cfg);
  for (const auto& clip : make_clips(3)) server.submit(clip).get();
  server.drain();
  EXPECT_TRUE(trace::snapshot().empty());
}
