// core_test.cpp — model configuration, tokenization, all four attention
// factorizations, slot heads, multi-task loss, prediction plumbing, the
// trainer, checkpointing of full models, and the extractor API.
#include <gtest/gtest.h>

#include <filesystem>

#include "baseline/cnn.hpp"
#include "core/extractor.hpp"
#include "core/model.hpp"
#include "core/trainer.hpp"
#include "core/video_transformer.hpp"
#include "nn/optim.hpp"
#include "nn/serialize.hpp"
#include "tensor/ops.hpp"

namespace core = tsdx::core;
namespace data = tsdx::data;
namespace nn = tsdx::nn;
namespace sdl = tsdx::sdl;
namespace sim = tsdx::sim;
namespace tt = tsdx::tensor;
using tt::Shape;
using tt::Tensor;

namespace {

core::ModelConfig micro_config(core::AttentionKind kind) {
  core::ModelConfig cfg;
  cfg.frames = 4;
  cfg.image_size = 16;
  cfg.patch_size = 8;
  cfg.tubelet_frames = 2;
  cfg.dim = 16;
  cfg.depth = 2;
  cfg.heads = 2;
  cfg.attention = kind;
  return cfg;
}

Tensor random_clip_batch(const core::ModelConfig& cfg, std::int64_t b,
                         tt::Rng& rng) {
  return Tensor::rand_uniform(
      {b, cfg.frames, cfg.channels, cfg.image_size, cfg.image_size}, rng, 0.0f,
      1.0f);
}

sim::RenderConfig render_for(const core::ModelConfig& cfg) {
  sim::RenderConfig r;
  r.height = r.width = cfg.image_size;
  r.frames = cfg.frames;
  return r;
}

}  // namespace

// ---- config --------------------------------------------------------------------

TEST(ConfigTest, DerivedQuantities) {
  core::ModelConfig cfg = micro_config(core::AttentionKind::kJoint);
  EXPECT_EQ(cfg.tokens_per_frame(), 4);   // (16/8)^2
  EXPECT_EQ(cfg.temporal_tokens(), 2);    // 4/2
  EXPECT_EQ(cfg.total_tokens(), 8);
  EXPECT_EQ(cfg.tubelet_dim(), 2 * 4 * 8 * 8);
  EXPECT_NO_THROW(cfg.validate());
}

TEST(ConfigTest, ValidationCatchesBadGeometry) {
  core::ModelConfig cfg = micro_config(core::AttentionKind::kJoint);
  cfg.patch_size = 7;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
  cfg = micro_config(core::AttentionKind::kJoint);
  cfg.tubelet_frames = 3;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
  cfg = micro_config(core::AttentionKind::kJoint);
  cfg.heads = 5;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
}

TEST(ConfigTest, AttentionKindNames) {
  EXPECT_EQ(core::to_string(core::AttentionKind::kJoint), "joint");
  EXPECT_EQ(core::to_string(core::AttentionKind::kDividedST), "divided_st");
  EXPECT_EQ(core::to_string(core::AttentionKind::kFactorizedEncoder),
            "factorized");
  EXPECT_EQ(core::to_string(core::AttentionKind::kSpaceOnly), "space_only");
}

// ---- tubelet embedding -----------------------------------------------------------

TEST(TubeletTest, OutputShape) {
  tt::Rng rng(1);
  const core::ModelConfig cfg = micro_config(core::AttentionKind::kJoint);
  core::TubeletEmbedding embed(cfg, rng);
  const Tensor tokens = embed.forward(random_clip_batch(cfg, 2, rng));
  EXPECT_EQ(tokens.shape(), (Shape{2, cfg.total_tokens(), cfg.dim}));
}

TEST(TubeletTest, TokensAreSpatiallyLocal) {
  // Zero the clip except one patch; only the matching token may be non-bias.
  tt::Rng rng(2);
  core::ModelConfig cfg = micro_config(core::AttentionKind::kJoint);
  cfg.tubelet_frames = 1;
  core::TubeletEmbedding embed(cfg, rng);

  std::vector<float> clip(static_cast<std::size_t>(
      cfg.frames * cfg.channels * cfg.image_size * cfg.image_size));
  // Light up pixel (frame 0, channel 0, y=0, x=8..15) -> grid cell (0, 1),
  // i.e. spatial token 1 of temporal slice 0.
  for (int x = 8; x < 16; ++x) clip[static_cast<std::size_t>(x)] = 1.0f;
  const Tensor tokens = embed.forward(
      Tensor::from_vector({1, cfg.frames, cfg.channels, 16, 16}, clip));

  const Tensor zeros = embed.forward(
      Tensor::zeros({1, cfg.frames, cfg.channels, 16, 16}));
  // All tokens except index 1 must equal the all-zero-input token (the bias).
  for (std::int64_t n = 0; n < cfg.total_tokens(); ++n) {
    for (std::int64_t d = 0; d < cfg.dim; ++d) {
      const float got = tokens.at(n * cfg.dim + d);
      const float bias = zeros.at(n * cfg.dim + d);
      if (n == 1) continue;
      EXPECT_NEAR(got, bias, 1e-6f) << "token " << n << " dim " << d;
    }
  }
  // Token 1 must differ from bias in at least one dim.
  float diff = 0.0f;
  for (std::int64_t d = 0; d < cfg.dim; ++d) {
    diff += std::abs(tokens.at(1 * cfg.dim + d) - zeros.at(1 * cfg.dim + d));
  }
  EXPECT_GT(diff, 1e-3f);
}

TEST(TubeletTest, GeometryMismatchThrows) {
  tt::Rng rng(3);
  const core::ModelConfig cfg = micro_config(core::AttentionKind::kJoint);
  core::TubeletEmbedding embed(cfg, rng);
  EXPECT_THROW(embed.forward(Tensor::zeros({1, 4, 3, 32, 32})),
               std::invalid_argument);
  EXPECT_THROW(embed.forward(Tensor::zeros({4, 3, 16, 16})),
               std::invalid_argument);
}

// ---- video transformer variants -----------------------------------------------------

class AttentionVariant
    : public ::testing::TestWithParam<core::AttentionKind> {};

TEST_P(AttentionVariant, ForwardShapeAndFiniteness) {
  tt::Rng rng(4);
  const core::ModelConfig cfg = micro_config(GetParam());
  core::VideoTransformer model(cfg, rng);
  const Tensor features = model.forward(random_clip_batch(cfg, 3, rng));
  EXPECT_EQ(features.shape(), (Shape{3, cfg.dim}));
  for (float v : features.data()) EXPECT_TRUE(std::isfinite(v));
  EXPECT_EQ(model.feature_dim(), cfg.dim);
}

TEST_P(AttentionVariant, GradientsFlowToAllParameters) {
  tt::Rng rng(5);
  const core::ModelConfig cfg = micro_config(GetParam());
  core::VideoTransformer model(cfg, rng);
  tt::sum_all(model.forward(random_clip_batch(cfg, 1, rng))).backward();
  std::size_t touched = 0;
  for (const Tensor& p : model.parameters()) {
    bool any = false;
    for (float g : p.grad()) any |= g != 0.0f;
    touched += any ? 1 : 0;
  }
  // Every parameter tensor should receive gradient (mean pooling + residual
  // paths reach everything).
  EXPECT_EQ(touched, model.parameters().size());
}

INSTANTIATE_TEST_SUITE_P(
    Kinds, AttentionVariant,
    ::testing::Values(core::AttentionKind::kJoint,
                      core::AttentionKind::kDividedST,
                      core::AttentionKind::kFactorizedEncoder,
                      core::AttentionKind::kSpaceOnly),
    [](const ::testing::TestParamInfo<core::AttentionKind>& info) {
      return core::to_string(info.param);
    });

TEST(VideoTransformerTest, NamesEncodeAttentionKind) {
  tt::Rng rng(6);
  core::VideoTransformer m(micro_config(core::AttentionKind::kDividedST), rng);
  EXPECT_EQ(m.name(), "vt_divided_st");
}

TEST(VideoTransformerTest, JointHasNoExtraTemporalParams) {
  tt::Rng rng(7);
  core::VideoTransformer joint(micro_config(core::AttentionKind::kJoint), rng);
  core::VideoTransformer fact(
      micro_config(core::AttentionKind::kFactorizedEncoder), rng);
  EXPECT_GT(fact.num_parameters(), joint.num_parameters());
}

// ---- slot heads & model ----------------------------------------------------------------

TEST(SlotHeadsTest, LogitShapes) {
  tt::Rng rng(8);
  core::SlotHeads heads(16, rng);
  const auto logits = heads.forward(Tensor::zeros({5, 16}));
  for (std::size_t s = 0; s < sdl::kNumSlots; ++s) {
    EXPECT_EQ(logits[s].shape(),
              (Shape{5, static_cast<std::int64_t>(sdl::kSlotCardinality[s])}));
  }
}

TEST(ScenarioModelTest, LossIsFiniteAndDecreasesWhenOverfitting) {
  tt::Rng rng(9);
  const core::ModelConfig cfg = micro_config(core::AttentionKind::kDividedST);
  auto backbone = std::make_unique<core::VideoTransformer>(cfg, rng);
  core::ScenarioModel model(std::move(backbone), rng);

  const data::Dataset ds = data::Dataset::synthesize(render_for(cfg), 4, 10);
  const data::Batch batch = ds.make_batch(0, 4);

  nn::Adam opt(model.parameters(), 3e-3f);
  float first = 0.0f, last = 0.0f;
  for (int step = 0; step < 30; ++step) {
    model.zero_grad();
    Tensor loss = model.loss(batch.video, batch.labels);
    loss.backward();
    opt.step();
    if (step == 0) first = loss.item();
    last = loss.item();
  }
  EXPECT_TRUE(std::isfinite(first));
  EXPECT_LT(last, first * 0.6f) << "model failed to overfit 4 examples";
}

TEST(ScenarioModelTest, SlotMaskRestrictsLossAndPredictions) {
  tt::Rng rng(10);
  const core::ModelConfig cfg = micro_config(core::AttentionKind::kSpaceOnly);
  core::SlotMask only_ego{};
  only_ego[static_cast<std::size_t>(sdl::Slot::kEgoAction)] = true;
  auto backbone = std::make_unique<core::VideoTransformer>(cfg, rng);
  core::ScenarioModel model(std::move(backbone), rng, only_ego);

  const data::Dataset ds = data::Dataset::synthesize(render_for(cfg), 2, 11);
  const data::Batch batch = ds.make_batch(0, 2);
  EXPECT_NO_THROW(model.loss(batch.video, batch.labels));
  const auto preds = model.predict(batch.video);
  for (const auto& p : preds) {
    EXPECT_EQ(p[static_cast<std::size_t>(sdl::Slot::kRoadLayout)], 0u);
  }
  // All-false mask is a logic error.
  auto backbone2 = std::make_unique<core::VideoTransformer>(cfg, rng);
  core::ScenarioModel empty_model(std::move(backbone2), rng, core::SlotMask{});
  EXPECT_THROW(empty_model.loss(batch.video, batch.labels), std::logic_error);
}

TEST(ScenarioModelTest, PredictionConfidencesAreProbabilities) {
  tt::Rng rng(11);
  const core::ModelConfig cfg = micro_config(core::AttentionKind::kJoint);
  auto backbone = std::make_unique<core::VideoTransformer>(cfg, rng);
  core::ScenarioModel model(std::move(backbone), rng);
  const auto preds =
      model.predict_with_confidence(random_clip_batch(cfg, 2, rng));
  ASSERT_EQ(preds.size(), 2u);
  for (const auto& p : preds) {
    for (std::size_t s = 0; s < sdl::kNumSlots; ++s) {
      EXPECT_GT(p.confidence[s], 0.0f);
      EXPECT_LE(p.confidence[s], 1.0f);
      // argmax confidence must be at least uniform probability
      EXPECT_GE(p.confidence[s],
                1.0f / static_cast<float>(sdl::kSlotCardinality[s]) - 1e-5f);
      EXPECT_LT(p.labels[s], sdl::kSlotCardinality[s]);
    }
  }
}

// ---- trainer ---------------------------------------------------------------------------------

TEST(TrainerTest, FitReducesLossAndReportsHistory) {
  const core::ModelConfig cfg = micro_config(core::AttentionKind::kDividedST);
  const data::Dataset ds = data::Dataset::synthesize(render_for(cfg), 24, 12);
  const auto splits = ds.split(0.75, 0.25);

  core::ScenarioExtractor extractor(cfg, 13);
  core::TrainConfig tc;
  tc.epochs = 3;
  tc.batch_size = 4;
  const core::TrainResult result =
      extractor.train(splits.train, splits.val, tc);
  ASSERT_EQ(result.history.size(), 3u);
  EXPECT_LT(result.last().train_loss, result.history.front().train_loss);
  EXPECT_GT(result.train_seconds, 0.0);
  EXPECT_GT(result.last().val_mean_accuracy, 0.0);
}

TEST(TrainerTest, EvaluateCountsMatchDataset) {
  const core::ModelConfig cfg = micro_config(core::AttentionKind::kSpaceOnly);
  const data::Dataset ds = data::Dataset::synthesize(render_for(cfg), 10, 14);
  core::ScenarioExtractor extractor(cfg, 15);
  const data::SlotMetrics m =
      core::Trainer::evaluate(extractor.model(), ds, 4);
  EXPECT_EQ(m.count(), 10u);
}

// ---- extractor API -----------------------------------------------------------------------------

TEST(ExtractorTest, ExtractReturnsValidatedDescription) {
  const core::ModelConfig cfg = micro_config(core::AttentionKind::kJoint);
  sim::ClipGenerator gen(render_for(cfg), 16);
  core::ScenarioExtractor extractor(cfg, 17);
  const sim::LabeledClip clip = gen.generate();
  const core::ExtractionResult result = extractor.extract(clip.video);
  // Labels land in range by construction.
  const sdl::SlotLabels labels = sdl::to_slot_labels(result.description);
  for (std::size_t s = 0; s < sdl::kNumSlots; ++s) {
    EXPECT_LT(labels[s], sdl::kSlotCardinality[s]);
  }
  EXPECT_GT(result.min_confidence(), 0.0f);
}

TEST(ExtractorTest, BatchExtractionMatchesSingle) {
  const core::ModelConfig cfg = micro_config(core::AttentionKind::kDividedST);
  const data::Dataset ds = data::Dataset::synthesize(render_for(cfg), 3, 18);
  core::ScenarioExtractor extractor(cfg, 19);
  extractor.model().set_training(false);
  const auto batch_results = extractor.extract_batch(ds.make_batch(0, 3));
  ASSERT_EQ(batch_results.size(), 3u);
  for (std::size_t i = 0; i < 3; ++i) {
    const auto single = extractor.extract(ds[i].video);
    EXPECT_EQ(single.description, batch_results[i].description);
  }
}

TEST(ExtractorTest, CheckpointRoundTripPreservesPredictions) {
  const core::ModelConfig cfg = micro_config(core::AttentionKind::kJoint);
  const data::Dataset ds = data::Dataset::synthesize(render_for(cfg), 2, 20);

  core::ScenarioExtractor a(cfg, 21);
  core::ScenarioExtractor b(cfg, 22);  // different init
  a.model().set_training(false);
  b.model().set_training(false);

  const std::string path =
      (std::filesystem::temp_directory_path() / "tsdx_model.ckpt").string();
  nn::save_checkpoint(a.model(), path);
  nn::load_checkpoint(b.model(), path);

  for (std::size_t i = 0; i < ds.size(); ++i) {
    EXPECT_EQ(a.extract(ds[i].video).description,
              b.extract(ds[i].video).description);
  }
  std::filesystem::remove(path);
}

// ---- positional-embedding variants ---------------------------------------------------

TEST(PositionalTest, ParameterCountsByKind) {
  const core::ModelConfig base = micro_config(core::AttentionKind::kJoint);
  tt::Rng r1(50), r2(50), r3(50);
  core::ModelConfig learned = base;
  core::ModelConfig sinus = base;
  sinus.positional = core::PositionalKind::kSinusoidal;
  core::ModelConfig none = base;
  none.positional = core::PositionalKind::kNone;

  core::VideoTransformer m_learned(learned, r1);
  core::VideoTransformer m_sinus(sinus, r2);
  core::VideoTransformer m_none(none, r3);

  const std::int64_t pos_params =
      (base.tokens_per_frame() + base.temporal_tokens()) * base.dim;
  EXPECT_EQ(m_learned.num_parameters(), m_none.num_parameters() + pos_params);
  EXPECT_EQ(m_sinus.num_parameters(), m_none.num_parameters());
}

TEST(PositionalTest, AllKindsForwardFinite) {
  const core::PositionalKind kinds[] = {core::PositionalKind::kLearned,
                                        core::PositionalKind::kSinusoidal,
                                        core::PositionalKind::kNone};
  for (const auto kind : kinds) {
    tt::Rng rng(60);
    core::ModelConfig cfg = micro_config(core::AttentionKind::kDividedST);
    cfg.positional = kind;
    core::VideoTransformer model(cfg, rng);
    tt::Rng data_rng(61);
    const Tensor out = model.forward(random_clip_batch(cfg, 2, data_rng));
    EXPECT_EQ(out.shape(), (Shape{2, cfg.dim}));
    for (float v : out.data()) EXPECT_TRUE(std::isfinite(v));
  }
}

TEST(PositionalTest, NoneIsTokenPermutationInsensitiveJoint) {
  // Without positional info and with joint attention + mean pooling, the
  // encoder is permutation-invariant over tokens: permuting the *input
  // patches* must not change the pooled feature.
  tt::Rng rng(62);
  core::ModelConfig cfg = micro_config(core::AttentionKind::kJoint);
  cfg.positional = core::PositionalKind::kNone;
  cfg.tubelet_frames = 1;
  core::VideoTransformer model(cfg, rng);

  tt::Rng data_rng(63);
  Tensor clip = random_clip_batch(cfg, 1, data_rng);
  const Tensor f1 = model.forward(clip);

  // Swap the two temporal halves of the clip (a token permutation).
  std::vector<float> swapped(clip.data().begin(), clip.data().end());
  const std::size_t half = swapped.size() / 2;
  for (std::size_t i = 0; i < half; ++i) {
    std::swap(swapped[i], swapped[half + i]);
  }
  const Tensor f2 = model.forward(Tensor::from_vector(clip.shape(), swapped));
  for (std::int64_t i = 0; i < f1.numel(); ++i) {
    EXPECT_NEAR(f1.at(i), f2.at(i), 1e-4f);
  }
}

TEST(PositionalTest, ToStringNames) {
  EXPECT_EQ(core::to_string(core::PositionalKind::kLearned), "learned");
  EXPECT_EQ(core::to_string(core::PositionalKind::kSinusoidal), "sinusoidal");
  EXPECT_EQ(core::to_string(core::PositionalKind::kNone), "none");
}

// ---- early stopping / best restore -----------------------------------------------------------

TEST(TrainerTest, EarlyStoppingRespectsPatience) {
  const core::ModelConfig cfg = micro_config(core::AttentionKind::kSpaceOnly);
  const data::Dataset ds = data::Dataset::synthesize(render_for(cfg), 16, 70);
  const auto splits = ds.split(0.5, 0.5);
  core::ScenarioExtractor extractor(cfg, 71);
  core::TrainConfig tc;
  tc.epochs = 30;
  tc.batch_size = 4;
  tc.patience = 2;
  const core::TrainResult result =
      extractor.train(splits.train, splits.val, tc);
  // With patience 2 on an 8-example val set the run must stop early.
  EXPECT_LT(result.history.size(), 30u);
  EXPECT_TRUE(result.stopped_early);
  EXPECT_LT(result.best_epoch, result.history.size());
}

TEST(TrainerTest, RestoreBestRevertsToBestValEpoch) {
  const core::ModelConfig cfg = micro_config(core::AttentionKind::kSpaceOnly);
  const data::Dataset ds = data::Dataset::synthesize(render_for(cfg), 20, 72);
  const auto splits = ds.split(0.6, 0.4);
  core::ScenarioExtractor extractor(cfg, 73);
  core::TrainConfig tc;
  tc.epochs = 6;
  tc.batch_size = 4;
  tc.restore_best = true;
  const core::TrainResult result =
      extractor.train(splits.train, splits.val, tc);
  extractor.model().set_training(false);
  const data::SlotMetrics m =
      core::Trainer::evaluate(extractor.model(), splits.val, 4);
  // Restored parameters must reproduce the best epoch's val accuracy.
  EXPECT_NEAR(m.mean_accuracy(),
              result.history[result.best_epoch].val_mean_accuracy, 1e-9);
}

// ---- constrained extraction ------------------------------------------------------------------

TEST(ExtractorTest, ConstrainedModeGuaranteesValidity) {
  const core::ModelConfig cfg = micro_config(core::AttentionKind::kJoint);
  const data::Dataset ds = data::Dataset::synthesize(render_for(cfg), 12, 74);
  core::ScenarioExtractor extractor(cfg, 75);  // untrained: noisy outputs
  extractor.model().set_training(false);
  extractor.set_constrained_decoding(true);
  EXPECT_TRUE(extractor.constrained_decoding());
  for (std::size_t i = 0; i < ds.size(); ++i) {
    const auto result = extractor.extract(ds[i].video);
    EXPECT_TRUE(result.warnings.empty())
        << "constrained extraction produced invalid description";
    EXPECT_GT(result.min_confidence(), 0.0f);
  }
}
