// check_test.cpp — the contract-assertion layer (src/core/check.hpp).
//
// Mis-shaped inputs to every hot-path op must fail fast with a typed
// ShapeError/ValueError carrying the offending shapes, never with silent
// out-of-bounds reads. These tests pin the exception types, the
// invalid_argument compatibility contract, and the message contents.
#include <gtest/gtest.h>

#include <stdexcept>

#include "core/check.hpp"
#include "core/video_transformer.hpp"
#include "nn/attention.hpp"
#include "nn/conv.hpp"
#include "nn/gru.hpp"
#include "tensor/nn_ops.hpp"
#include "tensor/ops.hpp"

namespace tt = tsdx::tensor;
namespace nn = tsdx::nn;
using tt::Tensor;

namespace {

TEST(CheckMacros, TsdxCheckThrowsValueError) {
  EXPECT_THROW(TSDX_CHECK(1 == 2, "one is not two"), tsdx::ValueError);
  EXPECT_NO_THROW(TSDX_CHECK(1 == 1, "unused"));
}

TEST(CheckMacros, TsdxShapeAssertThrowsShapeError) {
  EXPECT_THROW(TSDX_SHAPE_ASSERT(false, "bad shape"), tsdx::ShapeError);
  EXPECT_NO_THROW(TSDX_SHAPE_ASSERT(true, "unused"));
}

TEST(CheckMacros, MessageCarriesFormattedPartsAndLocation) {
  try {
    TSDX_SHAPE_ASSERT(false, "matmul: got ", 3, " and ", 4);
    FAIL() << "expected ShapeError";
  } catch (const tsdx::ShapeError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("matmul: got 3 and 4"), std::string::npos) << what;
    EXPECT_NE(what.find("check_test.cpp"), std::string::npos) << what;
  }
}

TEST(CheckMacros, ErrorsAreInvalidArgument) {
  // Back-compat: all pre-existing catch sites use std::invalid_argument.
  EXPECT_THROW(TSDX_CHECK(false), std::invalid_argument);
  EXPECT_THROW(TSDX_SHAPE_ASSERT(false), std::invalid_argument);
  EXPECT_THROW(TSDX_CHECK(false), std::logic_error);
}

// ---- tensor accessors -----------------------------------------------------

TEST(TensorContract, AccessorsThrowTyped) {
  const Tensor t = Tensor::zeros({2, 3});
  EXPECT_THROW(t.dim(2), tsdx::ShapeError);
  EXPECT_THROW(t.item(), tsdx::ShapeError);
  EXPECT_THROW(t.at(6), tsdx::ValueError);
  EXPECT_THROW(t.at(-1), tsdx::ValueError);
  EXPECT_THROW(Tensor::from_vector({2, 2}, {1.0f, 2.0f}), tsdx::ShapeError);
}

// ---- tensor ops -----------------------------------------------------------

TEST(OpShapeContract, MatmulInnerDimMismatchThrowsShapeError) {
  const Tensor a = Tensor::zeros({3, 4});
  const Tensor b = Tensor::zeros({5, 2});
  try {
    tt::matmul(a, b);
    FAIL() << "expected ShapeError";
  } catch (const tsdx::ShapeError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("[3, 4]"), std::string::npos) << what;
    EXPECT_NE(what.find("[5, 2]"), std::string::npos) << what;
  }
}

TEST(OpShapeContract, MatmulBatchMismatchThrowsShapeError) {
  EXPECT_THROW(tt::matmul(Tensor::zeros({2, 3, 4}), Tensor::zeros({3, 4, 5})),
               tsdx::ShapeError);
  EXPECT_THROW(tt::matmul(Tensor::zeros({3}), Tensor::zeros({3, 2})),
               tsdx::ShapeError);
}

TEST(OpShapeContract, BinaryOpsRejectNonSuffixBroadcast) {
  EXPECT_THROW(tt::add(Tensor::zeros({2, 3}), Tensor::zeros({2})),
               tsdx::ShapeError);
  EXPECT_THROW(tt::mul(Tensor::zeros({4}), Tensor::zeros({5})),
               tsdx::ShapeError);
}

TEST(OpShapeContract, ShapeOpsValidate) {
  const Tensor a = Tensor::zeros({2, 3});
  EXPECT_THROW(tt::reshape(a, {4, 2}), tsdx::ShapeError);
  EXPECT_THROW(tt::reshape(a, {-1, -1}), tsdx::ShapeError);
  EXPECT_THROW(tt::permute(a, {0}), tsdx::ShapeError);
  EXPECT_THROW(tt::permute(a, {0, 0}), tsdx::ValueError);
  EXPECT_THROW(tt::transpose_last2(Tensor::zeros({3})), tsdx::ShapeError);
  EXPECT_THROW(tt::sum_dim(a, 2), tsdx::ShapeError);
  EXPECT_THROW(tt::mean_dim(a, 5), tsdx::ShapeError);
  EXPECT_THROW(tt::slice(a, 1, 2, 2), tsdx::ValueError);
  EXPECT_THROW(tt::flip(a, 2), tsdx::ShapeError);
  EXPECT_THROW(tt::concat({}, 0), tsdx::ValueError);
  EXPECT_THROW(tt::softmax_lastdim(Tensor::scalar(1.0f)), tsdx::ShapeError);
}

TEST(OpShapeContract, FusedNnOpsValidate) {
  EXPECT_THROW(
      tt::layer_norm(Tensor::zeros({2, 4}), Tensor::ones({3}),
                     Tensor::zeros({4})),
      tsdx::ShapeError);
  EXPECT_THROW(tt::cross_entropy_logits(Tensor::zeros({2, 3}), {0, 1, 2}),
               tsdx::ShapeError);
  EXPECT_THROW(tt::cross_entropy_logits(Tensor::zeros({2, 3}), {0, 7}),
               tsdx::ValueError);
  EXPECT_THROW(tt::embedding_lookup(Tensor::zeros({4, 2}), {4}),
               tsdx::ValueError);
  tt::Rng rng(1);
  EXPECT_THROW(tt::dropout(Tensor::zeros({2}), 1.5f, rng), tsdx::ValueError);
}

TEST(OpShapeContract, ConvValidates) {
  const Tensor img = Tensor::zeros({1, 2, 5, 5});
  EXPECT_THROW(tt::conv2d(img, Tensor::zeros({3, 1, 3, 3}),
                          Tensor::zeros({3})),
               tsdx::ShapeError);  // channel mismatch
  EXPECT_THROW(tt::conv2d(img, Tensor::zeros({3, 2, 3, 3}),
                          Tensor::zeros({2})),
               tsdx::ShapeError);  // bias mismatch
  EXPECT_THROW(tt::conv2d(img, Tensor::zeros({3, 2, 7, 7}),
                          Tensor::zeros({3})),
               tsdx::ShapeError);  // empty output
  EXPECT_THROW(tt::conv2d(img, Tensor::zeros({3, 2, 3, 3}),
                          Tensor::zeros({3}), /*stride=*/0),
               tsdx::ValueError);
  EXPECT_THROW(tt::conv3d(Tensor::zeros({1, 2, 4, 5, 5}),
                          Tensor::zeros({3, 1, 2, 3, 3}), Tensor::zeros({3})),
               tsdx::ShapeError);
  EXPECT_THROW(tt::max_pool2d(Tensor::zeros({1, 1, 3, 3}), /*k=*/4),
               tsdx::ShapeError);
}

// ---- nn modules ------------------------------------------------------------

TEST(ModuleShapeContract, AttentionRejectsMisShapedInput) {
  tt::Rng rng(7);
  nn::MultiHeadAttention mha(8, 2, 0.0f, rng);
  EXPECT_THROW(mha.forward(Tensor::zeros({2, 5, 6})), tsdx::ShapeError);
  EXPECT_THROW(mha.forward(Tensor::zeros({2, 8})), tsdx::ShapeError);
  EXPECT_THROW(nn::MultiHeadAttention(10, 4, 0.0f, rng), tsdx::ValueError);
}

TEST(ModuleShapeContract, RecurrentModulesRejectMisShapedInput) {
  tt::Rng rng(8);
  nn::Gru gru(4, 3, rng);
  EXPECT_THROW(gru.forward(Tensor::zeros({2, 5, 5})), tsdx::ShapeError);
  EXPECT_THROW(gru.forward(Tensor::zeros({2, 4})), tsdx::ShapeError);
}

TEST(ModuleShapeContract, ConvLayersRejectBadGeometry) {
  tt::Rng rng(9);
  EXPECT_THROW(nn::Conv2d(0, 4, 3, 1, 0, rng), tsdx::ValueError);
  EXPECT_THROW(nn::Conv3d(2, 4, 0, 3, 1, 1, 0, 0, rng), tsdx::ValueError);
  nn::Conv2d conv(2, 4, 3, 1, 0, rng);
  EXPECT_THROW(conv.forward(Tensor::zeros({1, 3, 8, 8})), tsdx::ShapeError);
}

TEST(ModuleShapeContract, VideoTransformerRejectsBadClipGeometry) {
  tt::Rng rng(10);
  tsdx::core::ModelConfig cfg;
  cfg.frames = 2;
  cfg.channels = 2;
  cfg.image_size = 4;
  cfg.patch_size = 2;
  cfg.tubelet_frames = 1;
  cfg.dim = 4;
  cfg.depth = 1;
  cfg.heads = 2;
  tsdx::core::VideoTransformer model(cfg, rng);
  // Wrong rank and wrong geometry both fail fast, before any tensor math.
  EXPECT_THROW(model.forward(Tensor::zeros({1, 2, 2, 4})), tsdx::ShapeError);
  EXPECT_THROW(model.forward(Tensor::zeros({1, 3, 2, 4, 4})),
               tsdx::ShapeError);
  EXPECT_THROW(model.forward(Tensor::zeros({1, 2, 2, 8, 8})),
               tsdx::ShapeError);
  // The configured geometry still works.
  EXPECT_NO_THROW(model.forward(Tensor::zeros({1, 2, 2, 4, 4})));
}

}  // namespace
