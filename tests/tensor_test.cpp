// tensor_test.cpp — unit tests for the tensor library: construction, shape
// plumbing, op semantics against hand-computed values, and the autograd
// engine's bookkeeping (accumulation, reuse, detach, NoGradGuard).
#include <gtest/gtest.h>

#include <cmath>

#include "tensor/nn_ops.hpp"
#include "tensor/ops.hpp"
#include "tensor/tensor.hpp"

namespace tt = tsdx::tensor;
using tt::Shape;
using tt::Tensor;

namespace {

std::vector<float> values(const Tensor& t) {
  return {t.data().begin(), t.data().end()};
}

}  // namespace

// ---- shape helpers ----------------------------------------------------------

TEST(ShapeTest, NumelAndStrides) {
  EXPECT_EQ(tt::numel({}), 1);
  EXPECT_EQ(tt::numel({2, 3, 4}), 24);
  EXPECT_EQ(tt::numel({5, 0, 3}), 0);
  EXPECT_EQ(tt::row_major_strides({2, 3, 4}), (Shape{12, 4, 1}));
  EXPECT_EQ(tt::to_string(Shape{2, 3}), "[2, 3]");
}

TEST(ShapeTest, SuffixBroadcastPredicate) {
  EXPECT_TRUE(tt::is_suffix_of({4}, {2, 3, 4}));
  EXPECT_TRUE(tt::is_suffix_of({3, 4}, {2, 3, 4}));
  EXPECT_TRUE(tt::is_suffix_of({2, 3, 4}, {2, 3, 4}));
  EXPECT_FALSE(tt::is_suffix_of({2}, {2, 3, 4}));
  EXPECT_FALSE(tt::is_suffix_of({2, 3, 4, 5}, {3, 4, 5}));
}

// ---- construction -------------------------------------------------------------

TEST(TensorTest, ZerosOnesFull) {
  Tensor z = Tensor::zeros({2, 3});
  EXPECT_EQ(z.numel(), 6);
  for (float v : z.data()) EXPECT_EQ(v, 0.0f);
  Tensor o = Tensor::ones({4});
  for (float v : o.data()) EXPECT_EQ(v, 1.0f);
  Tensor f = Tensor::full({2, 2}, 3.5f);
  for (float v : f.data()) EXPECT_EQ(v, 3.5f);
  EXPECT_FLOAT_EQ(Tensor::scalar(2.5f).item(), 2.5f);
}

TEST(TensorTest, FromVectorValidation) {
  EXPECT_NO_THROW(Tensor::from_vector({2, 2}, {1, 2, 3, 4}));
  EXPECT_THROW(Tensor::from_vector({2, 2}, {1, 2, 3}), std::invalid_argument);
}

TEST(TensorTest, RandnStatistics) {
  tt::Rng rng(123);
  Tensor r = Tensor::randn({10000}, rng, 2.0f);
  double mean = 0.0, var = 0.0;
  for (float v : r.data()) mean += v;
  mean /= 10000.0;
  for (float v : r.data()) var += (v - mean) * (v - mean);
  var /= 10000.0;
  EXPECT_NEAR(mean, 0.0, 0.1);
  EXPECT_NEAR(std::sqrt(var), 2.0, 0.1);
}

TEST(TensorTest, RandUniformRange) {
  tt::Rng rng(7);
  Tensor r = Tensor::rand_uniform({1000}, rng, -0.5f, 0.5f);
  for (float v : r.data()) {
    EXPECT_GE(v, -0.5f);
    EXPECT_LT(v, 0.5f);
  }
}

// ---- elementwise and broadcasting -------------------------------------------------

TEST(OpsTest, AddSameShape) {
  Tensor a = Tensor::from_vector({2, 2}, {1, 2, 3, 4});
  Tensor b = Tensor::from_vector({2, 2}, {10, 20, 30, 40});
  EXPECT_EQ(values(tt::add(a, b)), (std::vector<float>{11, 22, 33, 44}));
  EXPECT_EQ(values(a + b), (std::vector<float>{11, 22, 33, 44}));
}

TEST(OpsTest, SubMulDiv) {
  Tensor a = Tensor::from_vector({3}, {4, 9, 16});
  Tensor b = Tensor::from_vector({3}, {2, 3, 4});
  EXPECT_EQ(values(a - b), (std::vector<float>{2, 6, 12}));
  EXPECT_EQ(values(a * b), (std::vector<float>{8, 27, 64}));
  EXPECT_EQ(values(a / b), (std::vector<float>{2, 3, 4}));
}

TEST(OpsTest, SuffixBroadcastBias) {
  Tensor x = Tensor::from_vector({2, 3}, {1, 2, 3, 4, 5, 6});
  Tensor bias = Tensor::from_vector({3}, {10, 20, 30});
  EXPECT_EQ(values(tt::add(x, bias)),
            (std::vector<float>{11, 22, 33, 14, 25, 36}));
  // Symmetric: small operand on the left.
  EXPECT_EQ(values(tt::add(bias, x)),
            (std::vector<float>{11, 22, 33, 14, 25, 36}));
}

TEST(OpsTest, IncompatibleShapesThrow) {
  Tensor a = Tensor::zeros({2, 3});
  Tensor b = Tensor::zeros({2});
  EXPECT_THROW(tt::add(a, b), std::invalid_argument);
}

TEST(OpsTest, ScalarOps) {
  Tensor a = Tensor::from_vector({2}, {1, -2});
  EXPECT_EQ(values(tt::add_scalar(a, 1.0f)), (std::vector<float>{2, -1}));
  EXPECT_EQ(values(tt::mul_scalar(a, -3.0f)), (std::vector<float>{-3, 6}));
}

TEST(OpsTest, UnaryFunctions) {
  Tensor a = Tensor::from_vector({3}, {-1.0f, 0.0f, 2.0f});
  EXPECT_EQ(values(tt::relu(a)), (std::vector<float>{0, 0, 2}));
  EXPECT_EQ(values(tt::neg(a)), (std::vector<float>{1, 0, -2}));
  const auto s = values(tt::sigmoid(a));
  EXPECT_NEAR(s[1], 0.5f, 1e-6f);
  EXPECT_NEAR(s[2], 1.0f / (1.0f + std::exp(-2.0f)), 1e-6f);
  const auto t = values(tt::tanh(Tensor::from_vector({1}, {0.5f})));
  EXPECT_NEAR(t[0], std::tanh(0.5f), 1e-6f);
}

TEST(OpsTest, GeluMatchesReference) {
  // Reference values of tanh-approximated GELU.
  Tensor a = Tensor::from_vector({3}, {-1.0f, 0.0f, 1.0f});
  const auto g = values(tt::gelu(a));
  EXPECT_NEAR(g[0], -0.15880801f, 1e-5f);
  EXPECT_NEAR(g[1], 0.0f, 1e-7f);
  EXPECT_NEAR(g[2], 0.84119199f, 1e-5f);
}

TEST(OpsTest, AbsClampPow) {
  Tensor a = Tensor::from_vector({4}, {-2, -0.25f, 0.25f, 2});
  EXPECT_EQ(values(tt::abs(a)), (std::vector<float>{2, 0.25f, 0.25f, 2}));
  EXPECT_EQ(values(tt::clamp(a, -0.5f, 0.5f)),
            (std::vector<float>{-0.5f, -0.25f, 0.25f, 0.5f}));
  EXPECT_THROW(tt::clamp(a, 1.0f, 0.0f), std::invalid_argument);
  Tensor b = Tensor::from_vector({3}, {1, 4, 9});
  EXPECT_EQ(values(tt::pow(b, 0.5f)), (std::vector<float>{1, 2, 3}));
  EXPECT_EQ(values(tt::pow(b, 2.0f)), (std::vector<float>{1, 16, 81}));
}

TEST(OpsTest, MaxDim) {
  Tensor a = Tensor::from_vector({2, 3}, {1, 5, 2, 9, 0, 3});
  const Tensor m1 = tt::max_dim(a, 1);
  EXPECT_EQ(m1.shape(), (Shape{2}));
  EXPECT_EQ(values(m1), (std::vector<float>{5, 9}));
  const Tensor m0 = tt::max_dim(a, 0);
  EXPECT_EQ(values(m0), (std::vector<float>{9, 5, 3}));
  EXPECT_THROW(tt::max_dim(a, 2), std::invalid_argument);
}

TEST(OpsTest, StackAddsLeadingAxis) {
  Tensor a = Tensor::from_vector({2}, {1, 2});
  Tensor b = Tensor::from_vector({2}, {3, 4});
  const Tensor s = tt::stack({a, b});
  EXPECT_EQ(s.shape(), (Shape{2, 2}));
  EXPECT_EQ(values(s), (std::vector<float>{1, 2, 3, 4}));
  EXPECT_THROW(tt::stack({a, Tensor::zeros({3})}), std::invalid_argument);
  EXPECT_THROW(tt::stack({}), std::invalid_argument);
}

TEST(OpsTest, FlipReversesAxis) {
  Tensor a = Tensor::from_vector({2, 3}, {1, 2, 3, 4, 5, 6});
  EXPECT_EQ(values(tt::flip(a, 1)), (std::vector<float>{3, 2, 1, 6, 5, 4}));
  EXPECT_EQ(values(tt::flip(a, 0)), (std::vector<float>{4, 5, 6, 1, 2, 3}));
  // Involution: flip(flip(x)) == x.
  EXPECT_EQ(values(tt::flip(tt::flip(a, 1), 1)), values(a));
}

// ---- matmul ------------------------------------------------------------------------

TEST(OpsTest, Matmul2D) {
  Tensor a = Tensor::from_vector({2, 3}, {1, 2, 3, 4, 5, 6});
  Tensor b = Tensor::from_vector({3, 2}, {7, 8, 9, 10, 11, 12});
  EXPECT_EQ(tt::matmul(a, b).shape(), (Shape{2, 2}));
  EXPECT_EQ(values(tt::matmul(a, b)),
            (std::vector<float>{58, 64, 139, 154}));
}

TEST(OpsTest, MatmulBatchedSharedRhs) {
  Tensor a = Tensor::from_vector({2, 1, 2}, {1, 2, 3, 4});
  Tensor b = Tensor::from_vector({2, 2}, {1, 0, 0, 1});  // identity
  const Tensor c = tt::matmul(a, b);
  EXPECT_EQ(c.shape(), (Shape{2, 1, 2}));
  EXPECT_EQ(values(c), (std::vector<float>{1, 2, 3, 4}));
}

TEST(OpsTest, MatmulBatchedBatchedRhs) {
  Tensor a = Tensor::from_vector({2, 1, 2}, {1, 2, 3, 4});
  Tensor b = Tensor::from_vector({2, 2, 1}, {1, 1, 2, 2});
  const Tensor c = tt::matmul(a, b);
  EXPECT_EQ(c.shape(), (Shape{2, 1, 1}));
  EXPECT_EQ(values(c), (std::vector<float>{3, 14}));
}

TEST(OpsTest, MatmulShapeErrors) {
  EXPECT_THROW(tt::matmul(Tensor::zeros({2, 3}), Tensor::zeros({2, 3})),
               std::invalid_argument);
  EXPECT_THROW(tt::matmul(Tensor::zeros({3}), Tensor::zeros({3, 2})),
               std::invalid_argument);
  EXPECT_THROW(
      tt::matmul(Tensor::zeros({2, 2, 3}), Tensor::zeros({3, 3, 4})),
      std::invalid_argument);
}

// ---- reductions ------------------------------------------------------------------------

TEST(OpsTest, SumAndMeanAll) {
  Tensor a = Tensor::from_vector({2, 2}, {1, 2, 3, 4});
  EXPECT_FLOAT_EQ(tt::sum_all(a).item(), 10.0f);
  EXPECT_FLOAT_EQ(tt::mean_all(a).item(), 2.5f);
}

TEST(OpsTest, SumDimMiddle) {
  Tensor a = Tensor::from_vector({2, 2, 2}, {1, 2, 3, 4, 5, 6, 7, 8});
  const Tensor s = tt::sum_dim(a, 1);
  EXPECT_EQ(s.shape(), (Shape{2, 2}));
  EXPECT_EQ(values(s), (std::vector<float>{4, 6, 12, 14}));
  const Tensor m = tt::mean_dim(a, 2);
  EXPECT_EQ(values(m), (std::vector<float>{1.5, 3.5, 5.5, 7.5}));
}

TEST(OpsTest, SumDimOutOfRangeThrows) {
  EXPECT_THROW(tt::sum_dim(Tensor::zeros({2}), 1), std::invalid_argument);
}

// ---- shape ops ------------------------------------------------------------------------------

TEST(OpsTest, ReshapeAndInference) {
  Tensor a = Tensor::from_vector({2, 3}, {1, 2, 3, 4, 5, 6});
  EXPECT_EQ(tt::reshape(a, {3, 2}).shape(), (Shape{3, 2}));
  EXPECT_EQ(tt::reshape(a, {-1}).shape(), (Shape{6}));
  EXPECT_EQ(tt::reshape(a, {3, -1}).shape(), (Shape{3, 2}));
  EXPECT_THROW(tt::reshape(a, {4, 2}), std::invalid_argument);
  EXPECT_THROW(tt::reshape(a, {-1, -1}), std::invalid_argument);
}

TEST(OpsTest, PermuteTranspose) {
  Tensor a = Tensor::from_vector({2, 3}, {1, 2, 3, 4, 5, 6});
  const Tensor at = tt::transpose_last2(a);
  EXPECT_EQ(at.shape(), (Shape{3, 2}));
  EXPECT_EQ(values(at), (std::vector<float>{1, 4, 2, 5, 3, 6}));
}

TEST(OpsTest, Permute3D) {
  // [2,1,3] -> permute(2,0,1) -> [3,2,1]
  Tensor a = Tensor::from_vector({2, 1, 3}, {1, 2, 3, 4, 5, 6});
  const Tensor p = tt::permute(a, {2, 0, 1});
  EXPECT_EQ(p.shape(), (Shape{3, 2, 1}));
  EXPECT_EQ(values(p), (std::vector<float>{1, 4, 2, 5, 3, 6}));
}

TEST(OpsTest, PermuteInvalid) {
  Tensor a = Tensor::zeros({2, 3});
  EXPECT_THROW(tt::permute(a, {0}), std::invalid_argument);
  EXPECT_THROW(tt::permute(a, {0, 0}), std::invalid_argument);
  EXPECT_THROW(tt::permute(a, {0, 2}), std::invalid_argument);
}

TEST(OpsTest, PermuteRoundTrip) {
  tt::Rng rng(5);
  Tensor a = Tensor::randn({2, 3, 4, 5}, rng);
  const Tensor p = tt::permute(a, {3, 1, 0, 2});
  // inverse of {3,1,0,2} is {2,1,3,0}
  const Tensor back = tt::permute(p, {2, 1, 3, 0});
  EXPECT_EQ(values(back), values(a));
}

TEST(OpsTest, ConcatAndSlice) {
  Tensor a = Tensor::from_vector({2, 2}, {1, 2, 3, 4});
  Tensor b = Tensor::from_vector({2, 1}, {9, 8});
  const Tensor c = tt::concat({a, b}, 1);
  EXPECT_EQ(c.shape(), (Shape{2, 3}));
  EXPECT_EQ(values(c), (std::vector<float>{1, 2, 9, 3, 4, 8}));

  const Tensor s = tt::slice(c, 1, 2, 1);
  EXPECT_EQ(s.shape(), (Shape{2, 1}));
  EXPECT_EQ(values(s), (std::vector<float>{9, 8}));

  EXPECT_THROW(tt::slice(c, 1, 2, 2), std::invalid_argument);
  EXPECT_THROW(tt::concat({a, Tensor::zeros({3, 1})}, 1),
               std::invalid_argument);
}

// ---- softmax family ------------------------------------------------------------------------

TEST(OpsTest, SoftmaxRowsSumToOne) {
  Tensor a = Tensor::from_vector({2, 3}, {1, 2, 3, -1, 0, 100});
  const Tensor s = tt::softmax_lastdim(a);
  const auto v = values(s);
  EXPECT_NEAR(v[0] + v[1] + v[2], 1.0f, 1e-5f);
  EXPECT_NEAR(v[3] + v[4] + v[5], 1.0f, 1e-5f);
  EXPECT_NEAR(v[5], 1.0f, 1e-5f);  // stable for large logits
}

TEST(OpsTest, LogSoftmaxMatchesLogOfSoftmax) {
  Tensor a = Tensor::from_vector({1, 4}, {0.5f, -1.0f, 2.0f, 0.0f});
  const auto ls = values(tt::log_softmax_lastdim(a));
  const auto s = values(tt::softmax_lastdim(a));
  for (int i = 0; i < 4; ++i) EXPECT_NEAR(ls[i], std::log(s[i]), 1e-5f);
}

TEST(OpsTest, ArgmaxLastDim) {
  Tensor a = Tensor::from_vector({2, 3}, {1, 5, 2, 9, 0, 3});
  EXPECT_EQ(tt::argmax_lastdim(a), (std::vector<std::int64_t>{1, 0}));
}

// ---- autograd engine -------------------------------------------------------------------------

TEST(AutogradTest, SimpleChain) {
  Tensor x = Tensor::from_vector({2}, {3, 4}, /*requires_grad=*/true);
  Tensor y = tt::sum_all(tt::mul(x, x));  // sum(x^2)
  y.backward();
  EXPECT_FLOAT_EQ(x.grad()[0], 6.0f);
  EXPECT_FLOAT_EQ(x.grad()[1], 8.0f);
}

TEST(AutogradTest, GradAccumulatesAcrossBackwards) {
  Tensor x = Tensor::from_vector({1}, {2}, true);
  Tensor y = tt::sum_all(tt::mul(x, x));
  y.backward();
  y.backward();
  EXPECT_FLOAT_EQ(x.grad()[0], 8.0f);  // 4 + 4
  x.zero_grad();
  EXPECT_FLOAT_EQ(x.grad()[0], 0.0f);
}

TEST(AutogradTest, ReusedTensorAccumulates) {
  // y = x + x: dy/dx = 2
  Tensor x = Tensor::from_vector({1}, {5}, true);
  Tensor y = tt::sum_all(tt::add(x, x));
  y.backward();
  EXPECT_FLOAT_EQ(x.grad()[0], 2.0f);
}

TEST(AutogradTest, DiamondGraph) {
  // z = (x*2) + (x*3): dz/dx = 5
  Tensor x = Tensor::from_vector({1}, {1}, true);
  Tensor z = tt::sum_all(
      tt::add(tt::mul_scalar(x, 2.0f), tt::mul_scalar(x, 3.0f)));
  z.backward();
  EXPECT_FLOAT_EQ(x.grad()[0], 5.0f);
}

TEST(AutogradTest, NonScalarBackwardNeedsSeed) {
  Tensor x = Tensor::from_vector({2}, {1, 2}, true);
  Tensor y = tt::mul_scalar(x, 2.0f);
  EXPECT_THROW(y.backward(), std::logic_error);
  const std::vector<float> seed = {1.0f, 10.0f};
  y.backward(seed);
  EXPECT_FLOAT_EQ(x.grad()[0], 2.0f);
  EXPECT_FLOAT_EQ(x.grad()[1], 20.0f);
}

TEST(AutogradTest, BackwardOutsideTapeThrows) {
  Tensor x = Tensor::from_vector({1}, {1}, false);
  Tensor y = tt::mul_scalar(x, 2.0f);
  EXPECT_THROW(y.backward(), std::logic_error);
}

TEST(AutogradTest, NoGradGuardStopsTape) {
  Tensor x = Tensor::from_vector({1}, {2}, true);
  {
    tt::NoGradGuard guard;
    EXPECT_TRUE(tt::NoGradGuard::active());
    Tensor y = tt::mul(x, x);
    EXPECT_FALSE(y.requires_grad());
  }
  EXPECT_FALSE(tt::NoGradGuard::active());
  Tensor y2 = tt::mul(x, x);
  EXPECT_TRUE(y2.requires_grad());
}

TEST(AutogradTest, DetachBreaksGraph) {
  Tensor x = Tensor::from_vector({1}, {3}, true);
  Tensor d = tt::mul(x, x).detach();
  EXPECT_FALSE(d.requires_grad());
  EXPECT_FLOAT_EQ(d.at(0), 9.0f);
}

TEST(AutogradTest, BroadcastGradSumsOverLeadingDims) {
  Tensor x = Tensor::from_vector({2, 2}, {1, 2, 3, 4}, true);
  Tensor bias = Tensor::from_vector({2}, {10, 20}, true);
  Tensor y = tt::sum_all(tt::add(x, bias));
  y.backward();
  EXPECT_FLOAT_EQ(bias.grad()[0], 2.0f);  // summed over 2 rows
  EXPECT_FLOAT_EQ(bias.grad()[1], 2.0f);
}

TEST(AutogradTest, DeepChainIterativeTopoSort) {
  // 4000-deep chain: a recursive DFS would overflow the stack.
  Tensor x = Tensor::from_vector({1}, {1}, true);
  Tensor y = x;
  for (int i = 0; i < 4000; ++i) y = tt::add_scalar(y, 0.001f);
  tt::sum_all(y).backward();
  EXPECT_FLOAT_EQ(x.grad()[0], 1.0f);
}

// ---- fused nn ops: forward semantics ----------------------------------------------------------

TEST(NnOpsTest, LayerNormNormalizes) {
  Tensor x = Tensor::from_vector({2, 4}, {1, 2, 3, 4, -5, 0, 5, 10});
  Tensor gamma = Tensor::ones({4});
  Tensor beta = Tensor::zeros({4});
  const Tensor y = tt::layer_norm(x, gamma, beta);
  const auto v = values(y);
  for (int row = 0; row < 2; ++row) {
    float mean = 0, var = 0;
    for (int i = 0; i < 4; ++i) mean += v[row * 4 + i];
    mean /= 4;
    for (int i = 0; i < 4; ++i) {
      var += (v[row * 4 + i] - mean) * (v[row * 4 + i] - mean);
    }
    EXPECT_NEAR(mean, 0.0f, 1e-5f);
    EXPECT_NEAR(var / 4, 1.0f, 1e-3f);
  }
}

TEST(NnOpsTest, CrossEntropyUniformLogits) {
  Tensor logits = Tensor::zeros({3, 4});
  const Tensor loss = tt::cross_entropy_logits(logits, {0, 1, 2});
  EXPECT_NEAR(loss.item(), std::log(4.0f), 1e-5f);
}

TEST(NnOpsTest, CrossEntropyValidation) {
  EXPECT_THROW(tt::cross_entropy_logits(Tensor::zeros({2, 3}), {0}),
               std::invalid_argument);
  EXPECT_THROW(tt::cross_entropy_logits(Tensor::zeros({2, 3}), {0, 3}),
               std::invalid_argument);
}

TEST(NnOpsTest, EmbeddingLookupGathersRows) {
  Tensor w = Tensor::from_vector({3, 2}, {1, 2, 3, 4, 5, 6});
  const Tensor e = tt::embedding_lookup(w, {2, 0, 2});
  EXPECT_EQ(e.shape(), (Shape{3, 2}));
  EXPECT_EQ(values(e), (std::vector<float>{5, 6, 1, 2, 5, 6}));
  EXPECT_THROW(tt::embedding_lookup(w, {3}), std::invalid_argument);
}

TEST(NnOpsTest, Conv2dIdentityKernel) {
  // 1x1 kernel with weight 1 reproduces the input.
  Tensor x = Tensor::from_vector({1, 1, 2, 2}, {1, 2, 3, 4});
  Tensor w = Tensor::ones({1, 1, 1, 1});
  Tensor b = Tensor::zeros({1});
  EXPECT_EQ(values(tt::conv2d(x, w, b)), values(x));
}

TEST(NnOpsTest, Conv2dKnownResult) {
  // 2x2 all-ones kernel over a 3x3 ramp, stride 1, no pad.
  Tensor x = Tensor::from_vector({1, 1, 3, 3}, {1, 2, 3, 4, 5, 6, 7, 8, 9});
  Tensor w = Tensor::ones({1, 1, 2, 2});
  Tensor b = Tensor::from_vector({1}, {0.5f});
  const Tensor y = tt::conv2d(x, w, b);
  EXPECT_EQ(y.shape(), (Shape{1, 1, 2, 2}));
  EXPECT_EQ(values(y), (std::vector<float>{12.5, 16.5, 24.5, 28.5}));
}

TEST(NnOpsTest, Conv2dStridePad) {
  Tensor x = Tensor::ones({1, 1, 4, 4});
  Tensor w = Tensor::ones({1, 1, 3, 3});
  Tensor b = Tensor::zeros({1});
  const Tensor y = tt::conv2d(x, w, b, /*stride=*/2, /*pad=*/1);
  EXPECT_EQ(y.shape(), (Shape{1, 1, 2, 2}));
  // Corner windows see 4 ones; with pad=1 the (0,0) window covers rows/cols
  // -1..1 -> 2x2 valid area = 4.
  EXPECT_EQ(values(y), (std::vector<float>{4, 6, 6, 9}));
}

TEST(NnOpsTest, MaxPool2d) {
  Tensor x = Tensor::from_vector({1, 1, 2, 4}, {1, 3, 2, 0, 5, 1, 1, 7});
  const Tensor y = tt::max_pool2d(x, 2);
  EXPECT_EQ(y.shape(), (Shape{1, 1, 1, 2}));
  EXPECT_EQ(values(y), (std::vector<float>{5, 7}));
}

TEST(NnOpsTest, DropoutTrainingStatistics) {
  tt::Rng rng(99);
  Tensor x = Tensor::ones({10000});
  const Tensor y = tt::dropout(x, 0.4f, rng);
  std::size_t zeros = 0;
  double sum = 0.0;
  for (float v : y.data()) {
    if (v == 0.0f) {
      ++zeros;
    } else {
      EXPECT_NEAR(v, 1.0f / 0.6f, 1e-5f);
    }
    sum += v;
  }
  EXPECT_NEAR(static_cast<double>(zeros) / 10000.0, 0.4, 0.03);
  EXPECT_NEAR(sum / 10000.0, 1.0, 0.05);  // inverted dropout keeps E[x]
}

TEST(NnOpsTest, DropoutZeroPIsIdentity) {
  tt::Rng rng(1);
  Tensor x = Tensor::from_vector({3}, {1, 2, 3});
  EXPECT_EQ(values(tt::dropout(x, 0.0f, rng)), values(x));
  EXPECT_THROW(tt::dropout(x, 1.0f, rng), std::invalid_argument);
}

// ---- Rng determinism -----------------------------------------------------------------

TEST(RngTest, DeterministicAndSplittable) {
  tt::Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
  tt::Rng c(42);
  tt::Rng child1 = c.split();
  tt::Rng child2 = c.split();
  EXPECT_NE(child1.next_u64(), child2.next_u64());
}

TEST(RngTest, UniformIndexInRange) {
  tt::Rng rng(3);
  for (int i = 0; i < 1000; ++i) EXPECT_LT(rng.uniform_index(7), 7u);
}

TEST(RngTest, BernoulliFrequency) {
  tt::Rng rng(11);
  int hits = 0;
  for (int i = 0; i < 10000; ++i) hits += rng.bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(hits / 10000.0, 0.3, 0.02);
}
