// nn_test.cpp — layers, modules, optimizers, schedules, checkpointing.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <filesystem>

#include "nn/attention.hpp"
#include "nn/conv.hpp"
#include "nn/layers.hpp"
#include "nn/lstm.hpp"
#include "nn/optim.hpp"
#include "nn/serialize.hpp"
#include "tensor/ops.hpp"

namespace tt = tsdx::tensor;
namespace nn = tsdx::nn;
using tt::Shape;
using tt::Tensor;

// ---- module bookkeeping ------------------------------------------------------

TEST(ModuleTest, ParameterRegistrationAndCounting) {
  tt::Rng rng(1);
  nn::Linear linear(4, 3, rng);
  EXPECT_EQ(linear.num_parameters(), 4 * 3 + 3);
  const auto named = linear.named_parameters();
  ASSERT_EQ(named.size(), 2u);
  EXPECT_EQ(named[0].first, "weight");
  EXPECT_EQ(named[1].first, "bias");
  for (const Tensor& p : linear.parameters()) EXPECT_TRUE(p.requires_grad());
}

TEST(ModuleTest, NestedNamesAreDotted) {
  tt::Rng rng(1);
  nn::Mlp mlp(4, 8, 0.0f, rng);
  const auto named = mlp.named_parameters();
  ASSERT_EQ(named.size(), 4u);
  EXPECT_EQ(named[0].first, "fc1.weight");
  EXPECT_EQ(named[2].first, "fc2.weight");
}

TEST(ModuleTest, ZeroGradClearsAll) {
  tt::Rng rng(1);
  nn::Linear linear(2, 2, rng);
  Tensor x = Tensor::ones({1, 2});
  tt::sum_all(linear.forward(x)).backward();
  bool any_nonzero = false;
  for (const Tensor& p : linear.parameters()) {
    for (float g : p.grad()) any_nonzero |= g != 0.0f;
  }
  EXPECT_TRUE(any_nonzero);
  linear.zero_grad();
  for (const Tensor& p : linear.parameters()) {
    for (float g : p.grad()) EXPECT_EQ(g, 0.0f);
  }
}

TEST(ModuleTest, SetTrainingPropagates) {
  tt::Rng rng(1);
  nn::Mlp mlp(4, 8, 0.5f, rng);
  EXPECT_TRUE(mlp.training());
  mlp.set_training(false);
  EXPECT_FALSE(mlp.training());
}

// ---- layers --------------------------------------------------------------------

TEST(LinearTest, ShapeAndBatchedApplication) {
  tt::Rng rng(2);
  nn::Linear linear(3, 5, rng);
  EXPECT_EQ(linear.forward(Tensor::zeros({2, 3})).shape(), (Shape{2, 5}));
  EXPECT_EQ(linear.forward(Tensor::zeros({2, 4, 3})).shape(), (Shape{2, 4, 5}));
}

TEST(LinearTest, ZeroInputGivesBias) {
  tt::Rng rng(2);
  nn::Linear linear(3, 2, rng);
  const Tensor y = linear.forward(Tensor::zeros({1, 3}));
  // bias is initialized to zero
  EXPECT_FLOAT_EQ(y.at(0), 0.0f);
  EXPECT_FLOAT_EQ(y.at(1), 0.0f);
}

TEST(LayerNormTest, OutputIsNormalized) {
  nn::LayerNorm norm(8);
  tt::Rng rng(3);
  const Tensor y = norm.forward(Tensor::randn({4, 8}, rng, 3.0f));
  for (int r = 0; r < 4; ++r) {
    float mean = 0;
    for (int i = 0; i < 8; ++i) mean += y.at(r * 8 + i);
    EXPECT_NEAR(mean / 8, 0.0f, 1e-4f);
  }
}

TEST(DropoutTest, EvalModeIsIdentity) {
  tt::Rng rng(4);
  nn::Dropout drop(0.9f, rng);
  drop.set_training(false);
  Tensor x = Tensor::ones({100});
  const Tensor y = drop.forward(x);
  for (float v : y.data()) EXPECT_EQ(v, 1.0f);
}

TEST(DropoutTest, TrainModeDropsRoughlyP) {
  tt::Rng rng(4);
  nn::Dropout drop(0.5f, rng);
  const Tensor y = drop.forward(Tensor::ones({2000}));
  int zeros = 0;
  for (float v : y.data()) zeros += v == 0.0f ? 1 : 0;
  EXPECT_NEAR(zeros / 2000.0, 0.5, 0.06);
}

TEST(EmbeddingTest, LookupShape) {
  tt::Rng rng(5);
  nn::Embedding emb(10, 4, rng);
  EXPECT_EQ(emb.forward({1, 5, 9}).shape(), (Shape{3, 4}));
  EXPECT_EQ(emb.table().shape(), (Shape{10, 4}));
}

// ---- attention / transformer ------------------------------------------------------

TEST(AttentionTest, ForwardShapeAndDimValidation) {
  tt::Rng rng(6);
  nn::MultiHeadAttention mha(16, 4, 0.0f, rng);
  EXPECT_EQ(mha.forward(Tensor::zeros({2, 5, 16})).shape(), (Shape{2, 5, 16}));
  EXPECT_THROW(mha.forward(Tensor::zeros({2, 5, 8})), std::invalid_argument);
  EXPECT_THROW(nn::MultiHeadAttention(10, 4, 0.0f, rng), std::invalid_argument);
}

TEST(AttentionTest, TokenPermutationEquivariance) {
  // Self-attention without positional information is permutation-equivariant:
  // permuting input tokens permutes output tokens identically.
  tt::Rng rng(7);
  nn::MultiHeadAttention mha(8, 2, 0.0f, rng);
  Tensor x = Tensor::randn({1, 4, 8}, rng);
  const Tensor y = mha.forward(x);

  // Swap tokens 1 and 2 of x.
  std::vector<float> xs(x.data().begin(), x.data().end());
  for (int i = 0; i < 8; ++i) std::swap(xs[8 + i], xs[16 + i]);
  const Tensor y2 = mha.forward(Tensor::from_vector({1, 4, 8}, std::move(xs)));

  for (int i = 0; i < 8; ++i) {
    EXPECT_NEAR(y.at(8 + i), y2.at(16 + i), 1e-4f);
    EXPECT_NEAR(y.at(16 + i), y2.at(8 + i), 1e-4f);
    EXPECT_NEAR(y.at(i), y2.at(i), 1e-4f);  // untouched token unchanged
  }
}

TEST(TransformerTest, EncoderStackShapes) {
  tt::Rng rng(8);
  nn::TransformerEncoder enc(3, 16, 4, 32, 0.0f, rng);
  EXPECT_EQ(enc.depth(), 3);
  EXPECT_EQ(enc.forward(Tensor::zeros({2, 6, 16})).shape(), (Shape{2, 6, 16}));
}

TEST(TransformerTest, ParameterCountScalesWithDepth) {
  tt::Rng rng(9);
  nn::TransformerEncoder enc1(1, 16, 4, 32, 0.0f, rng);
  nn::TransformerEncoder enc2(2, 16, 4, 32, 0.0f, rng);
  const std::int64_t final_norm = 2 * 16;
  EXPECT_EQ(enc2.num_parameters() - final_norm,
            2 * (enc1.num_parameters() - final_norm));
}

// ---- conv / lstm --------------------------------------------------------------------

TEST(ConvTest, OutputGeometry) {
  tt::Rng rng(10);
  nn::Conv2d conv(3, 8, 3, 2, 1, rng);
  EXPECT_EQ(conv.forward(Tensor::zeros({2, 3, 16, 16})).shape(),
            (Shape{2, 8, 8, 8}));
  nn::MaxPool2d pool(2);
  EXPECT_EQ(pool.forward(Tensor::zeros({2, 3, 8, 8})).shape(),
            (Shape{2, 3, 4, 4}));
}

TEST(LstmTest, ShapesAndStateEvolution) {
  tt::Rng rng(11);
  nn::Lstm lstm(3, 5, rng);
  Tensor x = Tensor::randn({2, 4, 3}, rng);
  EXPECT_EQ(lstm.forward(x).shape(), (Shape{2, 5}));
  const Tensor seq = lstm.forward_sequence(x);
  EXPECT_EQ(seq.shape(), (Shape{2, 4, 5}));
  // Final hidden equals last element of the sequence output.
  const Tensor h = lstm.forward(x);
  for (int b = 0; b < 2; ++b) {
    for (int i = 0; i < 5; ++i) {
      EXPECT_NEAR(h.at(b * 5 + i), seq.at((b * 4 + 3) * 5 + i), 1e-5f);
    }
  }
  EXPECT_THROW(lstm.forward(Tensor::zeros({2, 4, 4})), std::invalid_argument);
}

TEST(LstmTest, ZeroInputKeepsBoundedState) {
  tt::Rng rng(12);
  nn::Lstm lstm(2, 3, rng);
  const Tensor h = lstm.forward(Tensor::zeros({1, 10, 2}));
  for (float v : h.data()) {
    EXPECT_LT(std::abs(v), 1.0f);  // tanh-bounded
  }
}

// ---- optimizers ------------------------------------------------------------------------

namespace {

/// Minimize ||x - target||^2 with the given optimizer; returns final loss.
template <class MakeOpt>
float optimize_quadratic(MakeOpt make_opt, int steps) {
  Tensor x = Tensor::from_vector({2}, {5.0f, -3.0f}, true);
  Tensor target = Tensor::from_vector({2}, {1.0f, 2.0f});
  auto opt = make_opt(std::vector<Tensor>{x});
  float loss_value = 0.0f;
  for (int i = 0; i < steps; ++i) {
    x.zero_grad();
    Tensor diff = tt::sub(x, target);
    Tensor loss = tt::sum_all(tt::mul(diff, diff));
    loss.backward();
    opt->step();
    loss_value = loss.item();
  }
  return loss_value;
}

}  // namespace

TEST(OptimTest, SgdConverges) {
  const float final_loss = optimize_quadratic(
      [](std::vector<Tensor> p) {
        return std::make_unique<nn::Sgd>(std::move(p), 0.05f, 0.0f);
      },
      100);
  EXPECT_LT(final_loss, 1e-4f);
}

TEST(OptimTest, SgdMomentumConvergesFasterThanPlain) {
  const float plain = optimize_quadratic(
      [](std::vector<Tensor> p) {
        return std::make_unique<nn::Sgd>(std::move(p), 0.01f, 0.0f);
      },
      40);
  const float momentum = optimize_quadratic(
      [](std::vector<Tensor> p) {
        return std::make_unique<nn::Sgd>(std::move(p), 0.01f, 0.9f);
      },
      40);
  EXPECT_LT(momentum, plain);
}

TEST(OptimTest, AdamConverges) {
  const float final_loss = optimize_quadratic(
      [](std::vector<Tensor> p) {
        return std::make_unique<nn::Adam>(std::move(p), 0.3f);
      },
      150);
  EXPECT_LT(final_loss, 1e-3f);
}

TEST(OptimTest, AdamWeightDecayShrinksParams) {
  Tensor x = Tensor::from_vector({1}, {1.0f}, true);
  nn::Adam opt({x}, 0.01f, 0.9f, 0.999f, 1e-8f, /*weight_decay=*/0.5f);
  for (int i = 0; i < 50; ++i) {
    x.zero_grad();
    // Constant zero gradient: only decay acts.
    tt::sum_all(tt::mul_scalar(x, 0.0f)).backward();
    opt.step();
  }
  EXPECT_LT(std::abs(x.at(0)), 1.0f);
}

TEST(OptimTest, CosineWarmupSchedule) {
  // Warmup ramps linearly...
  EXPECT_NEAR(nn::cosine_warmup_lr(0, 100, 1.0f, 10), 0.1f, 1e-5f);
  EXPECT_NEAR(nn::cosine_warmup_lr(9, 100, 1.0f, 10), 1.0f, 1e-5f);
  // ...then cosine decays to ~0 at the end.
  EXPECT_NEAR(nn::cosine_warmup_lr(99, 100, 1.0f, 10), 0.0f, 1e-2f);
  // Midpoint of decay is half the base lr.
  EXPECT_NEAR(nn::cosine_warmup_lr(55, 100, 1.0f, 10), 0.5f, 1e-2f);
}

TEST(OptimTest, ClipGradNorm) {
  Tensor x = Tensor::from_vector({2}, {3.0f, 4.0f}, true);
  tt::sum_all(tt::mul(x, Tensor::from_vector({2}, {3.0f, 4.0f}))).backward();
  // grad = (3, 4), norm 5; clip to 1.
  const float norm = nn::clip_grad_norm({x}, 1.0f);
  EXPECT_NEAR(norm, 5.0f, 1e-5f);
  EXPECT_NEAR(x.grad()[0], 0.6f, 1e-5f);
  EXPECT_NEAR(x.grad()[1], 0.8f, 1e-5f);
  // Below threshold: untouched.
  const float norm2 = nn::clip_grad_norm({x}, 10.0f);
  EXPECT_NEAR(norm2, 1.0f, 1e-4f);
}

// ---- serialization -----------------------------------------------------------------------

namespace {
std::string temp_path(const char* name) {
  return (std::filesystem::temp_directory_path() / name).string();
}
}  // namespace

TEST(SerializeTest, RoundTripRestoresExactWeights) {
  tt::Rng rng(13);
  nn::Mlp a(4, 8, 0.0f, rng);
  nn::Mlp b(4, 8, 0.0f, rng);  // different init

  const std::string path = temp_path("tsdx_mlp_ckpt.bin");
  nn::save_checkpoint(a, path);
  nn::load_checkpoint(b, path);

  const auto pa = a.named_parameters();
  const auto pb = b.named_parameters();
  ASSERT_EQ(pa.size(), pb.size());
  for (std::size_t i = 0; i < pa.size(); ++i) {
    ASSERT_EQ(pa[i].second.numel(), pb[i].second.numel());
    for (std::int64_t j = 0; j < pa[i].second.numel(); ++j) {
      EXPECT_EQ(pa[i].second.at(j), pb[i].second.at(j));
    }
  }
  std::filesystem::remove(path);
}

TEST(SerializeTest, ArchitectureMismatchFailsLoudly) {
  tt::Rng rng(14);
  nn::Linear small(2, 2, rng);
  nn::Linear big(4, 4, rng);
  const std::string path = temp_path("tsdx_linear_ckpt.bin");
  nn::save_checkpoint(small, path);
  EXPECT_THROW(nn::load_checkpoint(big, path), std::runtime_error);
  std::filesystem::remove(path);
}

TEST(SerializeTest, MissingFileThrows) {
  tt::Rng rng(15);
  nn::Linear linear(2, 2, rng);
  EXPECT_THROW(nn::load_checkpoint(linear, "/nonexistent/path.bin"),
               std::runtime_error);
}

TEST(SerializeTest, CorruptMagicThrows) {
  const std::string path = temp_path("tsdx_bad_magic.bin");
  {
    std::FILE* f = std::fopen(path.c_str(), "wb");
    ASSERT_NE(f, nullptr);
    std::fwrite("JUNKJUNKJUNK", 1, 12, f);
    std::fclose(f);
  }
  tt::Rng rng(16);
  nn::Linear linear(2, 2, rng);
  EXPECT_THROW(nn::load_checkpoint(linear, path), std::runtime_error);
  std::filesystem::remove(path);
}
