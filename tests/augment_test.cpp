// augment_test.cpp — mirror augmentation: label remaps, video flips, and the
// consistency property that a mirrored clip renders the mirrored scene.
#include <gtest/gtest.h>

#include "core/augment.hpp"
#include "sim/clipgen.hpp"

namespace core = tsdx::core;
namespace data = tsdx::data;
namespace sdl = tsdx::sdl;
namespace sim = tsdx::sim;

TEST(MirrorTest, EgoActionRemap) {
  EXPECT_EQ(core::mirror(sdl::EgoAction::kTurnLeft), sdl::EgoAction::kTurnRight);
  EXPECT_EQ(core::mirror(sdl::EgoAction::kTurnRight), sdl::EgoAction::kTurnLeft);
  EXPECT_EQ(core::mirror(sdl::EgoAction::kLaneChangeLeft),
            sdl::EgoAction::kLaneChangeRight);
  EXPECT_EQ(core::mirror(sdl::EgoAction::kLaneChangeRight),
            sdl::EgoAction::kLaneChangeLeft);
  EXPECT_EQ(core::mirror(sdl::EgoAction::kCruise), sdl::EgoAction::kCruise);
  EXPECT_EQ(core::mirror(sdl::EgoAction::kStop), sdl::EgoAction::kStop);
}

TEST(MirrorTest, ActorActionAndPositionRemap) {
  EXPECT_EQ(core::mirror(sdl::ActorAction::kTurnLeft),
            sdl::ActorAction::kTurnRight);
  EXPECT_EQ(core::mirror(sdl::ActorAction::kCross), sdl::ActorAction::kCross);
  EXPECT_EQ(core::mirror(sdl::RelativePosition::kLeft),
            sdl::RelativePosition::kRight);
  EXPECT_EQ(core::mirror(sdl::RelativePosition::kRight),
            sdl::RelativePosition::kLeft);
  EXPECT_EQ(core::mirror(sdl::RelativePosition::kAhead),
            sdl::RelativePosition::kAhead);
  EXPECT_EQ(core::mirror(sdl::RelativePosition::kOncoming),
            sdl::RelativePosition::kOncoming);
}

TEST(MirrorTest, DescriptionMirrorIsInvolution) {
  tsdx::tensor::Rng rng(3);
  for (int i = 0; i < 30; ++i) {
    const sdl::ScenarioDescription d = sim::sample_description(rng);
    const sdl::ScenarioDescription twice =
        core::mirror_description(core::mirror_description(d));
    EXPECT_EQ(twice, d);
  }
}

TEST(MirrorTest, MirroredDescriptionStaysValid) {
  tsdx::tensor::Rng rng(4);
  for (int i = 0; i < 40; ++i) {
    const sdl::ScenarioDescription d = sim::sample_description(rng);
    const auto errors = sdl::validate(core::mirror_description(d));
    EXPECT_TRUE(errors.empty()) << (errors.empty() ? "" : errors[0]);
  }
}

TEST(MirrorTest, ClipFlipReversesColumns) {
  sim::VideoClip clip;
  clip.frames = 1;
  clip.height = 1;
  clip.width = 4;
  clip.data.resize(static_cast<std::size_t>(sim::kNumChannels * 4));
  for (std::size_t i = 0; i < clip.data.size(); ++i) {
    clip.data[i] = static_cast<float>(i);
  }
  const sim::VideoClip flipped = core::mirror_clip(clip);
  for (std::int64_t c = 0; c < sim::kNumChannels; ++c) {
    for (std::int64_t x = 0; x < 4; ++x) {
      EXPECT_EQ(flipped.at(0, c, 0, x), clip.at(0, c, 0, 3 - x));
    }
  }
  // Involution on the pixels too.
  EXPECT_EQ(core::mirror_clip(flipped).data, clip.data);
}

TEST(MirrorTest, ExampleLabelsMatchMirroredDescription) {
  sim::RenderConfig cfg;
  cfg.height = cfg.width = 16;
  cfg.frames = 2;
  const data::Dataset ds = data::Dataset::synthesize(cfg, 10, 5);
  for (std::size_t i = 0; i < ds.size(); ++i) {
    const data::Example m = core::mirror_example(ds[i]);
    EXPECT_EQ(m.labels, sdl::to_slot_labels(m.description));
    EXPECT_EQ(m.video.data.size(), ds[i].video.data.size());
  }
}

TEST(MirrorTest, AugmentDoublesAndInterleaves) {
  sim::RenderConfig cfg;
  cfg.height = cfg.width = 16;
  cfg.frames = 2;
  const data::Dataset ds = data::Dataset::synthesize(cfg, 5, 6);
  const data::Dataset aug = core::augment_mirror(ds);
  ASSERT_EQ(aug.size(), 10u);
  for (std::size_t i = 0; i < ds.size(); ++i) {
    EXPECT_EQ(aug[2 * i].description, ds[i].description);
    EXPECT_EQ(aug[2 * i + 1].description,
              core::mirror_description(ds[i].description));
  }
}

TEST(MirrorTest, RenderedMirrorMatchesMirroredWorld) {
  // Rendering a left-turn scenario and flipping the video should look like
  // the vehicles channel of a right-turn render (same jitter seed): the
  // geometry construction is exactly x-symmetric for the turn trajectories.
  sdl::ScenarioDescription d;
  d.environment.road_layout = sdl::RoadLayout::kIntersection4;
  d.ego_action = sdl::EgoAction::kCruise;
  d.salient_actor = {};
  sim::RenderConfig cfg;
  cfg.height = cfg.width = 32;
  cfg.frames = 4;

  tsdx::tensor::Rng jitter1(7), noise1(8);
  const sim::World w = sim::build_world(d, jitter1);
  const sim::VideoClip clip = sim::render_clip(w, cfg, noise1);
  const sim::VideoClip flipped = core::mirror_clip(clip);

  // The 4-way intersection road mask is x-symmetric: flipping must keep the
  // road channel statistics identical (up to noise, which we exclude by
  // comparing sorted pixel values).
  std::vector<float> a, b;
  for (std::int64_t y = 0; y < 32; ++y) {
    for (std::int64_t x = 0; x < 32; ++x) {
      a.push_back(clip.at(0, 0, y, x));
      b.push_back(flipped.at(0, 0, y, x));
    }
  }
  std::sort(a.begin(), a.end());
  std::sort(b.begin(), b.end());
  EXPECT_EQ(a, b);
}
