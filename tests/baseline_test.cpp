// baseline_test.cpp — CNN baselines and the majority-class floor.
#include <gtest/gtest.h>

#include "baseline/cnn.hpp"
#include "baseline/majority.hpp"
#include "core/model.hpp"
#include "nn/optim.hpp"
#include "tensor/ops.hpp"

namespace baseline = tsdx::baseline;
namespace core = tsdx::core;
namespace data = tsdx::data;
namespace nn = tsdx::nn;
namespace sdl = tsdx::sdl;
namespace sim = tsdx::sim;
namespace tt = tsdx::tensor;
using tt::Shape;
using tt::Tensor;

namespace {

sim::RenderConfig tiny_render() {
  sim::RenderConfig cfg;
  cfg.height = cfg.width = 16;
  cfg.frames = 4;
  return cfg;
}

}  // namespace

TEST(FrameCnnTest, ShapeAndGeometryValidation) {
  tt::Rng rng(1);
  baseline::FrameCnn cnn(3, 16, 12, rng);
  EXPECT_EQ(cnn.forward(Tensor::zeros({5, 3, 16, 16})).shape(),
            (Shape{5, 12}));
  EXPECT_THROW(baseline::FrameCnn(3, 20, 12, rng), std::invalid_argument);
}

TEST(EncodeFramesTest, VideoToFrameFeatures) {
  tt::Rng rng(2);
  baseline::FrameCnn cnn(3, 16, 8, rng);
  const Tensor video = Tensor::zeros({2, 4, 3, 16, 16});
  EXPECT_EQ(baseline::encode_frames(cnn, video).shape(), (Shape{2, 4, 8}));
  EXPECT_THROW(baseline::encode_frames(cnn, Tensor::zeros({2, 3, 16, 16})),
               std::invalid_argument);
}

TEST(CnnBackbonesTest, ForwardShapesAndNames) {
  tt::Rng rng(3);
  baseline::CnnAvgBackbone avg(3, 16, 10, rng);
  baseline::CnnLstmBackbone lstm(3, 16, 10, rng);
  const Tensor video = Tensor::zeros({2, 4, 3, 16, 16});
  EXPECT_EQ(avg.forward(video).shape(), (Shape{2, 10}));
  EXPECT_EQ(lstm.forward(video).shape(), (Shape{2, 10}));
  EXPECT_EQ(avg.name(), "cnn_avg");
  EXPECT_EQ(lstm.name(), "cnn_lstm");
  EXPECT_EQ(avg.feature_dim(), 10);
  EXPECT_EQ(lstm.feature_dim(), 10);
}

TEST(CnnBackbonesTest, AvgIsInvariantToFrameOrderLstmIsNot) {
  tt::Rng rng(4);
  baseline::CnnAvgBackbone avg(3, 16, 8, rng);
  baseline::CnnLstmBackbone lstm(3, 16, 8, rng);

  Tensor video = Tensor::rand_uniform({1, 4, 3, 16, 16}, rng, 0.0f, 1.0f);
  // Reverse the frames.
  std::vector<float> rev(video.data().begin(), video.data().end());
  const std::size_t frame = 3 * 16 * 16;
  for (int f = 0; f < 2; ++f) {
    for (std::size_t i = 0; i < frame; ++i) {
      std::swap(rev[f * frame + i], rev[(3 - f) * frame + i]);
    }
  }
  const Tensor reversed = Tensor::from_vector({1, 4, 3, 16, 16}, rev);

  const Tensor a1 = avg.forward(video);
  const Tensor a2 = avg.forward(reversed);
  double avg_diff = 0, lstm_diff = 0;
  for (std::int64_t i = 0; i < a1.numel(); ++i) {
    avg_diff += std::abs(a1.at(i) - a2.at(i));
  }
  const Tensor l1 = lstm.forward(video);
  const Tensor l2 = lstm.forward(reversed);
  for (std::int64_t i = 0; i < l1.numel(); ++i) {
    lstm_diff += std::abs(l1.at(i) - l2.at(i));
  }
  EXPECT_LT(avg_diff, 1e-4);   // average pooling cannot see order
  EXPECT_GT(lstm_diff, 1e-4);  // the LSTM can
}

TEST(CnnBackbonesTest, OverfitsTinyBatch) {
  tt::Rng rng(5);
  auto backbone = std::make_unique<baseline::CnnAvgBackbone>(sim::kNumChannels, 16, 12, rng);
  core::ScenarioModel model(std::move(backbone), rng);
  const data::Dataset ds = data::Dataset::synthesize(tiny_render(), 4, 6);
  const data::Batch batch = ds.make_batch(0, 4);
  nn::Adam opt(model.parameters(), 3e-3f);
  float first = 0, last = 0;
  for (int i = 0; i < 30; ++i) {
    model.zero_grad();
    Tensor loss = model.loss(batch.video, batch.labels);
    loss.backward();
    opt.step();
    if (i == 0) first = loss.item();
    last = loss.item();
  }
  EXPECT_LT(last, first * 0.7f);
}

TEST(MajorityTest, PredictsMostFrequentClassPerSlot) {
  data::Dataset ds;
  auto make_example = [](sdl::EgoAction ego) {
    data::Example ex;
    ex.description.ego_action = ego;
    ex.labels = sdl::to_slot_labels(ex.description);
    ex.video.frames = 1;
    ex.video.height = ex.video.width = 2;
    ex.video.data.assign(1 * sim::kNumChannels * 2 * 2, 0.0f);
    return ex;
  };
  ds.add(make_example(sdl::EgoAction::kStop));
  ds.add(make_example(sdl::EgoAction::kStop));
  ds.add(make_example(sdl::EgoAction::kCruise));

  baseline::MajorityPredictor majority;
  majority.fit(ds);
  EXPECT_EQ(majority.predict()[static_cast<std::size_t>(sdl::Slot::kEgoAction)],
            static_cast<std::size_t>(sdl::EgoAction::kStop));

  const data::SlotMetrics m = majority.evaluate(ds);
  EXPECT_EQ(m.count(), 3u);
  EXPECT_NEAR(m.slot_accuracy(sdl::Slot::kEgoAction), 2.0 / 3.0, 1e-12);
  // Slots that are constant in the data are predicted perfectly.
  EXPECT_DOUBLE_EQ(m.slot_accuracy(sdl::Slot::kWeather), 1.0);
}

TEST(MajorityTest, OnRealDatasetBeatsNothing) {
  const data::Dataset ds = data::Dataset::synthesize(tiny_render(), 40, 7);
  baseline::MajorityPredictor majority;
  majority.fit(ds);
  const data::SlotMetrics m = majority.evaluate(ds);
  // Majority accuracy is at least 1/max_cardinality on every slot.
  for (std::size_t s = 0; s < sdl::kNumSlots; ++s) {
    EXPECT_GT(m.slot_accuracy(static_cast<sdl::Slot>(s)), 0.1);
  }
}
