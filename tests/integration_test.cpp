// integration_test.cpp — cross-module flows: train -> extract -> serialize ->
// search; the full pipeline a downstream user runs.
#include <gtest/gtest.h>

#include "baseline/majority.hpp"
#include "core/extractor.hpp"
#include "sdl/embedding.hpp"
#include "sdl/serialization.hpp"

namespace baseline = tsdx::baseline;
namespace core = tsdx::core;
namespace data = tsdx::data;
namespace sdl = tsdx::sdl;
namespace sim = tsdx::sim;

namespace {

core::ModelConfig test_config() {
  core::ModelConfig cfg = core::ModelConfig::tiny();  // 4 frames, 32 px
  return cfg;
}

sim::RenderConfig render_for(const core::ModelConfig& cfg) {
  sim::RenderConfig r;
  r.height = r.width = cfg.image_size;
  r.frames = cfg.frames;
  return r;
}

/// Shared trained extractor: training once keeps the suite fast.
struct TrainedFixture {
  data::Dataset train, val, test;
  std::unique_ptr<core::ScenarioExtractor> extractor;
  core::TrainResult result;

  TrainedFixture() {
    const core::ModelConfig cfg = test_config();
    const data::Dataset ds =
        data::Dataset::synthesize(render_for(cfg), 160, 101);
    auto splits = ds.split(0.7, 0.15);
    train = std::move(splits.train);
    val = std::move(splits.val);
    test = std::move(splits.test);

    extractor = std::make_unique<core::ScenarioExtractor>(cfg, 202);
    core::TrainConfig tc;
    tc.epochs = 12;
    tc.batch_size = 8;
    result = extractor->train(train, val, tc);
  }
};

TrainedFixture& trained() {
  static TrainedFixture fixture;
  return fixture;
}

}  // namespace

TEST(IntegrationTest, TrainingConverges) {
  const auto& f = trained();
  ASSERT_EQ(f.result.history.size(), 12u);
  EXPECT_LT(f.result.last().train_loss,
            f.result.history.front().train_loss * 0.8);
}

TEST(IntegrationTest, BeatsMajorityBaselineOnMeanAccuracy) {
  auto& f = trained();
  f.extractor->model().set_training(false);
  const data::SlotMetrics model_metrics =
      core::Trainer::evaluate(f.extractor->model(), f.test);

  baseline::MajorityPredictor majority;
  majority.fit(f.train);
  const data::SlotMetrics majority_metrics = majority.evaluate(f.test);

  EXPECT_GT(model_metrics.mean_accuracy(),
            majority_metrics.mean_accuracy() + 0.03)
      << "trained extractor should clear the majority floor";
}

TEST(IntegrationTest, EnvironmentSlotsLearnedWell) {
  auto& f = trained();
  f.extractor->model().set_training(false);
  const data::SlotMetrics m =
      core::Trainer::evaluate(f.extractor->model(), f.test);
  // Appearance slots (time of day, weather) are directly visible in pixels
  // and their average should be well above the 1/3 chance level even in a
  // short training run (individual slots fluctuate at this tiny scale).
  const double appearance = (m.slot_accuracy(sdl::Slot::kTimeOfDay) +
                             m.slot_accuracy(sdl::Slot::kWeather)) /
                            2.0;
  EXPECT_GT(appearance, 0.45);
}

TEST(IntegrationTest, ExtractSerializeParseRoundTrip) {
  auto& f = trained();
  f.extractor->model().set_training(false);
  const core::ExtractionResult result = f.extractor->extract(f.test[0].video);
  const std::string json = sdl::to_json_string(result.description);
  std::string error;
  const auto parsed = sdl::description_from_string(json, &error);
  ASSERT_TRUE(parsed.has_value()) << error;
  EXPECT_EQ(*parsed, result.description);
}

TEST(IntegrationTest, ExtractedDescriptionsPowerScenarioSearch) {
  auto& f = trained();
  f.extractor->model().set_training(false);

  // Index extracted descriptions of the test clips.
  sdl::ScenarioIndex index;
  for (std::size_t i = 0; i < f.test.size(); ++i) {
    index.add("clip" + std::to_string(i),
              f.extractor->extract(f.test[i].video).description);
  }
  // Querying with a clip's own ground truth must return *some* ranking with
  // the best hits more similar than the worst.
  const auto hits = index.query(f.test[0].description, f.test.size());
  ASSERT_EQ(hits.size(), f.test.size());
  EXPECT_GE(hits.front().similarity, hits.back().similarity);
}

TEST(IntegrationTest, ConfidencesCorrelateWithCorrectness) {
  auto& f = trained();
  f.extractor->model().set_training(false);
  double conf_correct = 0.0, conf_wrong = 0.0;
  std::size_t n_correct = 0, n_wrong = 0;
  for (std::size_t i = 0; i < f.test.size(); ++i) {
    const auto result = f.extractor->extract(f.test[i].video);
    const sdl::SlotLabels truth = f.test[i].labels;
    const sdl::SlotLabels pred = sdl::to_slot_labels(result.description);
    for (std::size_t s = 0; s < sdl::kNumSlots; ++s) {
      if (pred[s] == truth[s]) {
        conf_correct += result.confidence[s];
        ++n_correct;
      } else {
        conf_wrong += result.confidence[s];
        ++n_wrong;
      }
    }
  }
  ASSERT_GT(n_correct, 0u);
  ASSERT_GT(n_wrong, 0u);
  EXPECT_GT(conf_correct / n_correct, conf_wrong / n_wrong)
      << "softmax confidence should be higher on correct slots";
}
