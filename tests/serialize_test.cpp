// serialize_test.cpp — the v2 checkpoint format's integrity contract:
// CRC-32 detection of flipped bytes and truncation, atomic save (a stranded
// .tmp from an interrupted save never shadows the real checkpoint), and the
// serving-bootstrap loader's degrade-don't-crash behaviour. nn_test keeps
// the happy-path round-trip coverage; this file is the hostile-input side.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "nn/layers.hpp"
#include "nn/serialize.hpp"

namespace fs = std::filesystem;
namespace nn = tsdx::nn;
namespace tt = tsdx::tensor;

namespace {

std::string temp_path(const char* name) {
  return (fs::temp_directory_path() / name).string();
}

std::vector<float> flat_weights(const nn::Module& module) {
  std::vector<float> flat;
  for (const auto& [name, t] : module.named_parameters()) {
    const auto& data = t.data();
    flat.insert(flat.end(), data.begin(), data.end());
  }
  return flat;
}

void write_bytes(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

std::string read_bytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::string((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
}

/// RAII cleanup so a failing assertion cannot leak checkpoint files into
/// later tests (or later ctest runs on the same machine).
class TempFile {
 public:
  explicit TempFile(const char* name) : path_(temp_path(name)) {}
  ~TempFile() {
    std::error_code ec;
    fs::remove(path_, ec);
    fs::remove(path_ + ".tmp", ec);
  }
  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

}  // namespace

// ---- crc32 ----------------------------------------------------------------------

TEST(Crc32Test, MatchesKnownCheckValue) {
  // The CRC-32/ISO-HDLC check value: crc32("123456789") == 0xCBF43926.
  const char msg[] = "123456789";
  EXPECT_EQ(nn::crc32(msg, 9), 0xCBF43926u);
  EXPECT_EQ(nn::crc32(msg, 0), 0u);
}

TEST(Crc32Test, SensitiveToEveryByte) {
  std::string data(64, '\x5A');
  const std::uint32_t clean = nn::crc32(data.data(), data.size());
  for (std::size_t i = 0; i < data.size(); ++i) {
    std::string flipped = data;
    flipped[i] = static_cast<char>(flipped[i] ^ 0x01);
    EXPECT_NE(nn::crc32(flipped.data(), flipped.size()), clean)
        << "flip at byte " << i << " went undetected";
  }
}

// ---- integrity rejection --------------------------------------------------------

TEST(SerializeIntegrityTest, FlippedByteFailsCrcAndKeepsWeights) {
  tt::Rng rng(31);
  nn::Mlp source(4, 8, 0.0f, rng);
  nn::Mlp target(4, 8, 0.0f, rng);
  TempFile file("tsdx_ser_flip.bin");
  nn::save_checkpoint(source, file.path());

  std::string bytes = read_bytes(file.path());
  bytes[bytes.size() / 2] = static_cast<char>(bytes[bytes.size() / 2] ^ 0xFF);
  write_bytes(file.path(), bytes);

  const std::vector<float> before = flat_weights(target);
  try {
    nn::load_checkpoint(target, file.path());
    FAIL() << "flipped byte was accepted";
  } catch (const nn::CheckpointCorruptError& e) {
    // A CRC mismatch reports the footer's offset (end of protected payload).
    EXPECT_EQ(e.byte_offset(), bytes.size() - sizeof(std::uint32_t));
  }
  EXPECT_EQ(flat_weights(target), before);
}

TEST(SerializeIntegrityTest, TruncationFailsCrc) {
  tt::Rng rng(32);
  nn::Mlp source(4, 8, 0.0f, rng);
  TempFile file("tsdx_ser_trunc.bin");
  nn::save_checkpoint(source, file.path());

  const auto full = fs::file_size(file.path());
  fs::resize_file(file.path(), full - 5);
  EXPECT_THROW(nn::load_checkpoint(source, file.path()),
               nn::CheckpointCorruptError);

  // Truncated below even the header: still a typed corruption error.
  fs::resize_file(file.path(), 3);
  EXPECT_THROW(nn::load_checkpoint(source, file.path()),
               nn::CheckpointCorruptError);
}

TEST(SerializeIntegrityTest, BadMagicReportsOffsetZero) {
  TempFile file("tsdx_ser_magic.bin");
  write_bytes(file.path(), std::string(64, 'J'));
  tt::Rng rng(33);
  nn::Mlp module(4, 8, 0.0f, rng);
  try {
    nn::load_checkpoint(module, file.path());
    FAIL() << "junk file was accepted";
  } catch (const nn::CheckpointCorruptError& e) {
    EXPECT_EQ(e.byte_offset(), 0u);
  }
}

// ---- atomic save ----------------------------------------------------------------

// An interrupted save dies between writing `path + ".tmp"` and the rename.
// The invariant under test: the checkpoint under the real name is never torn
// — a stranded .tmp (even pure garbage) must not affect loading, and the
// next successful save simply replaces both.
TEST(SerializeAtomicityTest, StrandedTmpFileNeverShadowsCheckpoint) {
  tt::Rng rng(34);
  nn::Mlp source(4, 8, 0.0f, rng);
  nn::Mlp target(4, 8, 0.0f, rng);
  TempFile file("tsdx_ser_tmp.bin");
  nn::save_checkpoint(source, file.path());

  // Simulate the interrupted later save: garbage parked at the tmp name.
  write_bytes(file.path() + ".tmp", "half-written garbage");

  EXPECT_EQ(nn::load_checkpoint_or_fallback(target, file.path()),
            nn::CheckpointLoad::kLoaded);
  EXPECT_EQ(flat_weights(target), flat_weights(source));

  // A fresh save overwrites the real file atomically and leaves no .tmp.
  nn::save_checkpoint(source, file.path());
  EXPECT_FALSE(fs::exists(file.path() + ".tmp"));
  EXPECT_EQ(nn::load_checkpoint_or_fallback(target, file.path()),
            nn::CheckpointLoad::kLoaded);
}

TEST(SerializeAtomicityTest, SaveReplacesExistingCheckpoint) {
  tt::Rng rng(35);
  nn::Mlp first(4, 8, 0.0f, rng);
  nn::Mlp second(4, 8, 0.0f, rng);  // different draw from the same stream
  nn::Mlp target(4, 8, 0.0f, rng);
  ASSERT_NE(flat_weights(first), flat_weights(second));
  TempFile file("tsdx_ser_replace.bin");

  nn::save_checkpoint(first, file.path());
  nn::save_checkpoint(second, file.path());
  nn::load_checkpoint(target, file.path());
  EXPECT_EQ(flat_weights(target), flat_weights(second));
}

// ---- bootstrap loader -----------------------------------------------------------

TEST(SerializeFallbackTest, MissingFileKeepsInitWeights) {
  tt::Rng rng(36);
  nn::Mlp module(4, 8, 0.0f, rng);
  const std::vector<float> before = flat_weights(module);
  EXPECT_EQ(nn::load_checkpoint_or_fallback(
                module, temp_path("tsdx_ser_never_written.bin")),
            nn::CheckpointLoad::kMissingKeptInit);
  EXPECT_EQ(flat_weights(module), before);
}

TEST(SerializeFallbackTest, CorruptFileKeepsInitWeights) {
  tt::Rng rng(37);
  nn::Mlp source(4, 8, 0.0f, rng);
  nn::Mlp target(4, 8, 0.0f, rng);
  TempFile file("tsdx_ser_fb_corrupt.bin");
  nn::save_checkpoint(source, file.path());
  std::string bytes = read_bytes(file.path());
  bytes[10] = static_cast<char>(bytes[10] ^ 0x80);
  write_bytes(file.path(), bytes);

  const std::vector<float> before = flat_weights(target);
  EXPECT_EQ(nn::load_checkpoint_or_fallback(target, file.path()),
            nn::CheckpointLoad::kCorruptKeptInit);
  EXPECT_EQ(flat_weights(target), before);
}

// Structural mismatches are deployment bugs, not runtime corruption: the
// bootstrap loader must refuse to degrade them into silent fallbacks.
TEST(SerializeFallbackTest, ArchitectureMismatchStillThrows) {
  tt::Rng rng(38);
  nn::Mlp small(4, 8, 0.0f, rng);
  nn::Mlp big(8, 16, 0.0f, rng);
  TempFile file("tsdx_ser_fb_arch.bin");
  nn::save_checkpoint(small, file.path());
  EXPECT_THROW(nn::load_checkpoint_or_fallback(big, file.path()),
               std::runtime_error);
}

TEST(SerializeFallbackTest, OutcomeNamesAreStable) {
  EXPECT_STREQ(nn::to_string(nn::CheckpointLoad::kLoaded), "loaded");
  EXPECT_STREQ(nn::to_string(nn::CheckpointLoad::kMissingKeptInit),
               "missing-kept-init");
  EXPECT_STREQ(nn::to_string(nn::CheckpointLoad::kCorruptKeptInit),
               "corrupt-kept-init");
}
