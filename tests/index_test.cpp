// index_test.cpp — the tsdx::index subsystem: packed labels and predicates,
// the exact flat index against a hand-rolled brute-force reference, the IVF
// index's exact-degeneration and training lifecycle, determinism at any
// tsdx::par thread count, the bounded ingestion hand-off, and the
// server -> ingestor -> index streaming path end to end.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <future>
#include <utility>
#include <vector>

#include "core/check.hpp"
#include "core/extractor.hpp"
#include "core/lockorder.hpp"
#include "index/flat.hpp"
#include "index/ingest.hpp"
#include "index/ivf.hpp"
#include "index/store.hpp"
#include "index/types.hpp"
#include "obs/metrics.hpp"
#include "sdl/embedding.hpp"
#include "serve/server.hpp"
#include "sim/clipgen.hpp"
#include "sim/world.hpp"
#include "tensor/kernels/parallel_for.hpp"
#include "tensor/rng.hpp"

namespace core = tsdx::core;
namespace ix = tsdx::index;
namespace lockorder = tsdx::lockorder;
namespace obs = tsdx::obs;
namespace par = tsdx::par;
namespace sdl = tsdx::sdl;
namespace serve = tsdx::serve;
namespace sim = tsdx::sim;
namespace tensor = tsdx::tensor;

namespace {

sdl::ScenarioDescription night_crossing() {
  sdl::ScenarioDescription d;
  d.environment.road_layout = sdl::RoadLayout::kIntersection4;
  d.environment.time_of_day = sdl::TimeOfDay::kNight;
  d.environment.weather = sdl::Weather::kClear;
  d.environment.density = sdl::TrafficDensity::kSparse;
  d.ego_action = sdl::EgoAction::kStop;
  d.salient_actor = {sdl::ActorType::kPedestrian, sdl::ActorAction::kCross,
                     sdl::RelativePosition::kAhead};
  return d;
}

std::vector<sdl::ScenarioDescription> sample_corpus(std::size_t n,
                                                    std::uint64_t seed) {
  tensor::Rng rng(seed);
  std::vector<sdl::ScenarioDescription> corpus;
  corpus.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    corpus.push_back(sim::sample_description(rng));
  }
  return corpus;
}

/// Brute-force reference: score every corpus entry with the *public*
/// sdl::cosine_similarity, filter, rank by (score desc, id asc). The index
/// must reproduce this bit-for-bit.
std::vector<ix::Hit> reference_topk(
    const std::vector<sdl::ScenarioDescription>& corpus,
    const sdl::ScenarioDescription& query, std::size_t k,
    const std::vector<ix::SlotPredicate>& predicates = {}) {
  const std::vector<float> qv = sdl::scenario_to_vector(query);
  std::vector<ix::Hit> scored;
  for (std::size_t id = 0; id < corpus.size(); ++id) {
    if (!ix::matches_all(predicates, ix::pack_labels(corpus[id]))) {
      continue;
    }
    scored.push_back(ix::Hit{
        id, sdl::cosine_similarity(qv, sdl::scenario_to_vector(corpus[id]))});
  }
  std::sort(scored.begin(), scored.end(),
            [](const ix::Hit& a, const ix::Hit& b) {
              if (a.score != b.score) return a.score > b.score;
              return a.id < b.id;
            });
  if (scored.size() > k) scored.resize(k);
  return scored;
}

void expect_same_hits(const std::vector<ix::Hit>& got,
                      const std::vector<ix::Hit>& want) {
  ASSERT_EQ(got.size(), want.size());
  for (std::size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i].id, want[i].id) << "rank " << i;
    EXPECT_EQ(got[i].score, want[i].score) << "rank " << i;
  }
}

}  // namespace

// ---- packed labels & predicates ---------------------------------------------------

TEST(IndexTypesTest, PackLabelsMatchesSlotLabels) {
  const auto corpus = sample_corpus(32, /*seed=*/101);
  for (const auto& d : corpus) {
    const ix::PackedLabels packed = ix::pack_labels(d);
    const sdl::SlotLabels labels = sdl::to_slot_labels(d);
    for (std::size_t s = 0; s < sdl::kNumSlots; ++s) {
      EXPECT_EQ(packed[s], labels[s]) << "slot " << s;
    }
  }
}

TEST(IndexTypesTest, EqualsPredicateMatchesExactClass) {
  const auto pred = ix::SlotPredicate::equals(
      sdl::Slot::kTimeOfDay,
      static_cast<std::size_t>(sdl::TimeOfDay::kNight));
  sdl::ScenarioDescription d = night_crossing();
  EXPECT_TRUE(pred.matches(ix::pack_labels(d)));
  d.environment.time_of_day = sdl::TimeOfDay::kDay;
  EXPECT_FALSE(pred.matches(ix::pack_labels(d)));
}

TEST(IndexTypesTest, AnyOfPredicateMatchesUnion) {
  const auto pred = ix::SlotPredicate::any_of(
      sdl::Slot::kActorType,
      {static_cast<std::size_t>(sdl::ActorType::kPedestrian),
       static_cast<std::size_t>(sdl::ActorType::kCyclist)});
  sdl::ScenarioDescription d = night_crossing();
  EXPECT_TRUE(pred.matches(ix::pack_labels(d)));
  d.salient_actor.type = sdl::ActorType::kCyclist;
  EXPECT_TRUE(pred.matches(ix::pack_labels(d)));
  d.salient_actor.type = sdl::ActorType::kTruck;
  EXPECT_FALSE(pred.matches(ix::pack_labels(d)));
}

TEST(IndexTypesTest, PredicateClassRangeChecked) {
  EXPECT_THROW(ix::SlotPredicate::equals(sdl::Slot::kTimeOfDay,
                                            sdl::kNumTimesOfDay),
               tsdx::ValueError);
  EXPECT_THROW(ix::SlotPredicate::any_of(sdl::Slot::kWeather,
                                            {0, sdl::kNumWeathers}),
               tsdx::ValueError);
}

TEST(IndexTypesTest, EmptyPredicateListMatchesEverything) {
  EXPECT_TRUE(ix::matches_all({}, ix::pack_labels(night_crossing())));
}

// ---- flat index -------------------------------------------------------------------

TEST(FlatIndexTest, MatchesBruteForceReference) {
  const auto corpus = sample_corpus(400, /*seed=*/21);
  ix::FlatIndex flat;
  for (std::size_t id = 0; id < corpus.size(); ++id) {
    flat.insert(id, corpus[id]);
  }
  EXPECT_EQ(flat.size(), corpus.size());

  const auto queries = sample_corpus(8, /*seed=*/22);
  for (const auto& q : queries) {
    expect_same_hits(flat.search({q, {}, 10}), reference_topk(corpus, q, 10));
  }
}

TEST(FlatIndexTest, TiesRankByAscendingDocId) {
  ix::FlatIndex flat;
  const sdl::ScenarioDescription d = night_crossing();
  // Insert in descending-id order: ties must come back ascending anyway.
  for (std::uint64_t id : {40u, 30u, 20u, 10u}) flat.insert(id, d);
  const auto hits = flat.search({d, {}, 4});
  ASSERT_EQ(hits.size(), 4u);
  for (std::size_t i = 0; i < hits.size(); ++i) {
    EXPECT_EQ(hits[i].id, 10 * (i + 1));
    EXPECT_FLOAT_EQ(hits[i].score, 1.0f);
  }
}

TEST(FlatIndexTest, ResultsInvariantUnderThreadCount) {
  const auto corpus = sample_corpus(600, /*seed=*/31);
  ix::FlatIndex flat;
  for (std::size_t id = 0; id < corpus.size(); ++id) {
    flat.insert(id, corpus[id]);
  }
  const auto queries = sample_corpus(4, /*seed=*/32);

  const std::size_t original = par::threads();
  std::vector<std::vector<ix::Hit>> per_thread_count;
  for (const std::size_t t : {std::size_t{1}, std::size_t{3}}) {
    par::set_threads(t);
    for (const auto& q : queries) {
      per_thread_count.push_back(flat.search({q, {}, 12}));
    }
  }
  par::set_threads(original);
  for (std::size_t i = 0; i < queries.size(); ++i) {
    expect_same_hits(per_thread_count[i], per_thread_count[queries.size() + i]);
  }
}

TEST(FlatIndexTest, PredicatePushdownEqualsPostFilter) {
  const auto corpus = sample_corpus(500, /*seed=*/41);
  ix::FlatIndex flat;
  for (std::size_t id = 0; id < corpus.size(); ++id) {
    flat.insert(id, corpus[id]);
  }
  const std::vector<ix::SlotPredicate> predicates = {
      ix::SlotPredicate::equals(
          sdl::Slot::kActorAction,
          static_cast<std::size_t>(sdl::ActorAction::kCross)),
      ix::SlotPredicate::equals(
          sdl::Slot::kTimeOfDay,
          static_cast<std::size_t>(sdl::TimeOfDay::kNight)),
  };
  const sdl::ScenarioDescription q = night_crossing();
  const auto hits = flat.search({q, predicates, 10});
  expect_same_hits(hits, reference_topk(corpus, q, 10, predicates));
  // And every returned document really satisfies the predicates.
  for (const auto& hit : hits) {
    EXPECT_TRUE(ix::matches_all(
        predicates, ix::pack_labels(corpus[hit.id])));
  }
}

TEST(FlatIndexTest, KLargerThanIndexReturnsAll) {
  ix::FlatIndex flat;
  const auto corpus = sample_corpus(5, /*seed=*/51);
  for (std::size_t id = 0; id < corpus.size(); ++id) {
    flat.insert(id, corpus[id]);
  }
  EXPECT_EQ(flat.search({corpus[0], {}, 50}).size(), 5u);
  EXPECT_TRUE(flat.search({corpus[0], {}, 0}).empty());
}

// ---- IVF index --------------------------------------------------------------------

TEST(IvfIndexTest, UntrainedSearchIsExact) {
  ix::IvfConfig cfg;
  cfg.train_size = 1000;  // corpus smaller than this: stays untrained
  ix::IvfIndex ivf(cfg);
  const auto corpus = sample_corpus(200, /*seed=*/61);
  for (std::size_t id = 0; id < corpus.size(); ++id) {
    ivf.insert(id, corpus[id]);
  }
  EXPECT_FALSE(ivf.trained());
  EXPECT_EQ(ivf.size(), corpus.size());
  const auto queries = sample_corpus(4, /*seed=*/62);
  for (const auto& q : queries) {
    expect_same_hits(ivf.search({q, {}, 10}), reference_topk(corpus, q, 10));
  }
}

TEST(IvfIndexTest, FullProbeMatchesFlatExactly) {
  ix::IvfConfig cfg;
  cfg.nlist = 16;
  cfg.nprobe = 16;  // probe everything: partition cannot lose a candidate
  cfg.train_size = 128;
  ix::IvfIndex ivf(cfg);
  ix::FlatIndex flat;
  const auto corpus = sample_corpus(800, /*seed=*/71);
  for (std::size_t id = 0; id < corpus.size(); ++id) {
    ivf.insert(id, corpus[id]);
    flat.insert(id, corpus[id]);
  }
  EXPECT_TRUE(ivf.trained());
  EXPECT_EQ(ivf.size(), corpus.size());
  const auto queries = sample_corpus(6, /*seed=*/72);
  for (const auto& q : queries) {
    expect_same_hits(ivf.search({q, {}, 10}), flat.search({q, {}, 10}));
  }
}

TEST(IvfIndexTest, PartialProbeKeepsUsefulRecall) {
  ix::IvfConfig cfg;
  cfg.nlist = 32;
  cfg.nprobe = 8;
  cfg.train_size = 256;
  ix::IvfIndex ivf(cfg);
  ix::FlatIndex flat;
  const auto corpus = sample_corpus(2000, /*seed=*/81);
  for (std::size_t id = 0; id < corpus.size(); ++id) {
    ivf.insert(id, corpus[id]);
    flat.insert(id, corpus[id]);
  }
  const auto queries = sample_corpus(20, /*seed=*/82);
  std::size_t found = 0, total = 0;
  for (const auto& q : queries) {
    const auto exact = flat.search({q, {}, 10});
    const auto approx = ivf.search({q, {}, 10});
    for (const auto& want : exact) {
      ++total;
      for (const auto& got : approx) {
        if (got.id == want.id) {
          ++found;
          break;
        }
      }
    }
  }
  // Everything is seeded, so this is a fixed number — the bound just leaves
  // headroom against embedding-weight tweaks upstream.
  EXPECT_GE(static_cast<double>(found) / static_cast<double>(total), 0.6);
}

TEST(IvfIndexTest, InsertBatchEquivalentToSequentialInserts) {
  ix::IvfConfig cfg;
  cfg.nlist = 8;
  cfg.train_size = 64;
  const auto corpus = sample_corpus(300, /*seed=*/91);

  ix::IvfIndex one_by_one(cfg);
  ix::IvfIndex batched(cfg);
  std::vector<std::pair<ix::DocId, sdl::ScenarioDescription>> docs;
  for (std::size_t id = 0; id < corpus.size(); ++id) {
    one_by_one.insert(id, corpus[id]);
    docs.emplace_back(id, corpus[id]);
  }
  batched.insert_batch(docs);

  EXPECT_TRUE(one_by_one.trained());
  EXPECT_TRUE(batched.trained());
  EXPECT_EQ(one_by_one.size(), batched.size());
  const auto queries = sample_corpus(5, /*seed=*/92);
  for (const auto& q : queries) {
    expect_same_hits(batched.search({q, {}, 10}),
                     one_by_one.search({q, {}, 10}));
  }
}

TEST(IvfIndexTest, RebuildFromSameStreamIsIdentical) {
  ix::IvfConfig cfg;
  cfg.nlist = 16;
  cfg.nprobe = 4;
  cfg.train_size = 128;
  const auto corpus = sample_corpus(700, /*seed=*/111);
  ix::IvfIndex a(cfg);
  ix::IvfIndex b(cfg);
  for (std::size_t id = 0; id < corpus.size(); ++id) {
    a.insert(id, corpus[id]);
    b.insert(id, corpus[id]);
  }
  const auto queries = sample_corpus(6, /*seed=*/112);
  for (const auto& q : queries) {
    expect_same_hits(a.search({q, {}, 10}), b.search({q, {}, 10}));
  }
}

TEST(IvfIndexTest, PredicatePushdownFiltersProbedLists) {
  ix::IvfConfig cfg;
  cfg.nlist = 16;
  cfg.nprobe = 16;
  cfg.train_size = 128;
  ix::IvfIndex ivf(cfg);
  const auto corpus = sample_corpus(600, /*seed=*/121);
  for (std::size_t id = 0; id < corpus.size(); ++id) {
    ivf.insert(id, corpus[id]);
  }
  const std::vector<ix::SlotPredicate> predicates = {
      ix::SlotPredicate::equals(
          sdl::Slot::kTimeOfDay,
          static_cast<std::size_t>(sdl::TimeOfDay::kNight)),
  };
  const sdl::ScenarioDescription q = night_crossing();
  const auto hits = ivf.search({q, predicates, 10});
  expect_same_hits(hits, reference_topk(corpus, q, 10, predicates));
}

TEST(IvfIndexTest, ConfigValidated) {
  ix::IvfConfig bad;
  bad.nlist = 64;
  bad.train_size = 32;  // fewer samples than centroids
  EXPECT_THROW(ix::IvfIndex{bad}, tsdx::ValueError);
}

// ---- metrics ----------------------------------------------------------------------

TEST(IndexMetricsTest, CountersAndGaugeTrackOperations) {
  auto registry = std::make_shared<obs::Registry>();
  ix::FlatConfig cfg;
  cfg.metrics = registry;
  ix::FlatIndex flat(cfg);
  const auto corpus = sample_corpus(25, /*seed=*/131);
  for (std::size_t id = 0; id < corpus.size(); ++id) {
    flat.insert(id, corpus[id]);
  }
  flat.search({corpus[0], {}, 5});
  flat.search({corpus[1], {}, 5});
  EXPECT_EQ(registry->counter("index.inserts").value(), 25u);
  EXPECT_EQ(registry->counter("index.queries").value(), 2u);
  EXPECT_EQ(registry->gauge("index.size").value(), 25);
  EXPECT_EQ(registry->histogram("index.scanned_rows",
                                ix::scan_rows_buckets()).count(), 2u);
}

TEST(IndexMetricsTest, IvfReportsProbedLists) {
  auto registry = std::make_shared<obs::Registry>();
  ix::IvfConfig cfg;
  cfg.nlist = 8;
  cfg.nprobe = 3;
  cfg.train_size = 64;
  cfg.metrics = registry;
  ix::IvfIndex ivf(cfg);
  const auto corpus = sample_corpus(128, /*seed=*/141);
  for (std::size_t id = 0; id < corpus.size(); ++id) {
    ivf.insert(id, corpus[id]);
  }
  ASSERT_TRUE(ivf.trained());
  ivf.search({corpus[0], {}, 5});
  auto& probes =
      registry->histogram("index.probe_lists", ix::probe_lists_buckets());
  EXPECT_EQ(probes.count(), 1u);
  EXPECT_EQ(probes.sum(), 3.0);
}

// ---- locking discipline -----------------------------------------------------------

namespace {
void fail_on_violation(const lockorder::Violation& v) {
  GTEST_FAIL() << "lock-order violation: " << v.report;
}
}  // namespace

TEST(IndexLockOrderTest, ScanUnderIndexLockRespectsHierarchy) {
  lockorder::ScopedEnable enable;
  const auto previous = lockorder::set_violation_handler(fail_on_violation);
  {
    // The parallel scan acquires the tsdx::par pool locks (ranks 50..80)
    // while the kIndex (45) mutex is held — that must be a legal nesting.
    const std::size_t original = par::threads();
    par::set_threads(3);
    ix::IvfConfig cfg;
    cfg.nlist = 8;
    cfg.train_size = 64;
    ix::IvfIndex ivf(cfg);
    ix::FlatIndex flat;
    const auto corpus = sample_corpus(300, /*seed=*/151);
    for (std::size_t id = 0; id < corpus.size(); ++id) {
      ivf.insert(id, corpus[id]);
      flat.insert(id, corpus[id]);
    }
    flat.search({corpus[0], {}, 10});
    ivf.search({corpus[0], {}, 10});
    par::set_threads(original);
  }
  lockorder::set_violation_handler(previous);
}

// ---- ingestion --------------------------------------------------------------------

TEST(IngestTest, DrainsEverythingPushedBeforeClose) {
  ix::FlatIndex flat;
  const auto corpus = sample_corpus(150, /*seed=*/161);
  {
    ix::IndexIngestor ingestor(flat);
    for (std::size_t id = 0; id < corpus.size(); ++id) {
      ingestor.push(id, corpus[id]);
    }
    ingestor.close();
    EXPECT_EQ(ingestor.dropped(), 0u);
  }
  EXPECT_EQ(flat.size(), corpus.size());
}

TEST(IngestTest, PushAfterCloseCountsAsDropped) {
  ix::FlatIndex flat;
  ix::IndexIngestor ingestor(flat);
  ingestor.push(0, night_crossing());
  ingestor.close();
  ingestor.push(1, night_crossing());
  EXPECT_EQ(ingestor.dropped(), 1u);
  EXPECT_EQ(flat.size(), 1u);
}

// ---- server -> index streaming ----------------------------------------------------

namespace {

core::ModelConfig micro_config() {
  core::ModelConfig cfg;
  cfg.frames = 2;
  cfg.image_size = 8;
  cfg.patch_size = 4;
  cfg.tubelet_frames = 1;
  cfg.dim = 8;
  cfg.depth = 1;
  cfg.heads = 2;
  cfg.attention = core::AttentionKind::kDividedST;
  return cfg;
}

}  // namespace

TEST(ServerIndexStreamingTest, CompletedExtractionsBecomeSearchable) {
  auto extractor =
      std::make_shared<core::ScenarioExtractor>(micro_config(), /*seed=*/7);
  extractor->freeze();

  ix::FlatIndex flat;
  ix::IndexIngestor ingestor(flat);

  serve::ServerConfig cfg;
  cfg.workers = 0;  // deterministic inline mode; drain() processes the queue
  cfg.max_batch = 4;
  cfg.on_result = ingestor.sink();
  serve::InferenceServer server(extractor, cfg);

  const core::ModelConfig model_cfg = micro_config();
  sim::RenderConfig render;
  render.height = render.width = model_cfg.image_size;
  render.frames = model_cfg.frames;
  sim::ClipGenerator gen(render, /*seed=*/13);

  constexpr std::size_t kClips = 10;
  std::vector<std::future<core::ExtractionResult>> futures;
  for (std::size_t i = 0; i < kClips; ++i) {
    futures.push_back(server.submit(gen.generate().video));
  }
  server.drain();
  std::vector<core::ExtractionResult> results;
  for (auto& f : futures) results.push_back(f.get());
  ingestor.close();

  // Every completed request is searchable under its admission-order DocId.
  ASSERT_EQ(flat.size(), kClips);
  EXPECT_EQ(ingestor.dropped(), 0u);
  for (std::size_t i = 0; i < kClips; ++i) {
    const auto hits = flat.search({results[i].description, {}, 1});
    ASSERT_EQ(hits.size(), 1u);
    // The top hit for result i's own description scores exactly 1.0 —
    // either doc i itself or an identical extraction with a smaller id.
    EXPECT_FLOAT_EQ(hits[0].score, 1.0f);
    EXPECT_LE(hits[0].id, i);
  }
}
