// lockorder_test.cpp — the runtime lock-order validator's contract
// (core/lockorder.hpp): a deliberate rank inversion is reported with both
// mutex identities, recursive acquisition of one mutex is called out as a
// self-deadlock, the held-lock tracker balances across RAII scopes and
// condition-variable waits, and — the half that guards the production code —
// the server's real lock hierarchy is silent under a full request workload
// with the validator enabled.
#include <gtest/gtest.h>

#include <chrono>
#include <cstddef>
#include <future>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "core/annotations.hpp"
#include "core/extractor.hpp"
#include "core/lockorder.hpp"
#include "obs/metrics.hpp"
#include "plan/executor.hpp"
#include "serve/server.hpp"
#include "sim/clipgen.hpp"
#include "tensor/kernels/parallel_for.hpp"

namespace core = tsdx::core;
namespace lockorder = tsdx::lockorder;
namespace obs = tsdx::obs;
namespace par = tsdx::par;
namespace serve = tsdx::serve;
namespace sim = tsdx::sim;

using tsdx::CondVar;
using tsdx::LockGuard;
using tsdx::Mutex;
using tsdx::UniqueLock;

namespace {

/// Captured violations. The handler is a plain function pointer (no state
/// capture), so the store is a file-level singleton; a std::mutex (not a
/// tsdx::Mutex) guards it so the handler itself never re-enters the
/// validator it is reporting for. Violations can fire on server worker
/// threads, hence the locking at all.
struct CaptureStore {
  std::mutex mutex;
  std::vector<lockorder::Violation> violations;
};

CaptureStore& store() {
  static CaptureStore instance;
  return instance;
}

void capture_handler(const lockorder::Violation& violation) {
  std::lock_guard<std::mutex> lock(store().mutex);
  store().violations.push_back(violation);
}

/// RAII: install the capturing handler (clearing past captures) and enable
/// the validator; restore both on scope exit.
class CaptureViolations {
 public:
  CaptureViolations()
      : previous_(lockorder::set_violation_handler(capture_handler)) {
    std::lock_guard<std::mutex> lock(store().mutex);
    store().violations.clear();
  }
  ~CaptureViolations() { lockorder::set_violation_handler(previous_); }

  CaptureViolations(const CaptureViolations&) = delete;
  CaptureViolations& operator=(const CaptureViolations&) = delete;

  std::size_t count() const {
    std::lock_guard<std::mutex> lock(store().mutex);
    return store().violations.size();
  }
  lockorder::Violation at(std::size_t i) const {
    std::lock_guard<std::mutex> lock(store().mutex);
    return store().violations.at(i);
  }

 private:
  lockorder::Handler previous_;
  lockorder::ScopedEnable enable_;
};

core::ModelConfig micro_config() {
  core::ModelConfig cfg;
  cfg.frames = 2;
  cfg.image_size = 8;
  cfg.patch_size = 4;
  cfg.tubelet_frames = 1;
  cfg.dim = 8;
  cfg.depth = 1;
  cfg.heads = 2;
  cfg.attention = core::AttentionKind::kDividedST;
  return cfg;
}

std::vector<sim::VideoClip> make_clips(std::size_t count) {
  const core::ModelConfig cfg = micro_config();
  sim::RenderConfig render;
  render.height = render.width = cfg.image_size;
  render.frames = cfg.frames;
  sim::ClipGenerator gen(render, /*seed=*/11);
  std::vector<sim::VideoClip> clips;
  clips.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    clips.push_back(gen.generate().video);
  }
  return clips;
}

}  // namespace

TEST(LockOrderTest, IncreasingRanksAreSilent) {
  CaptureViolations capture;
  Mutex low("test.low", lockorder::Rank::kQueue);
  Mutex high("test.high", lockorder::Rank::kCircuit);
  {
    LockGuard outer(low);
    LockGuard inner(high);
    EXPECT_EQ(lockorder::held_count(), 2u);
  }
  EXPECT_EQ(lockorder::held_count(), 0u);
  EXPECT_EQ(capture.count(), 0u);
}

TEST(LockOrderTest, InversionReportsBothMutexes) {
  CaptureViolations capture;
  Mutex low("test.low", lockorder::Rank::kQueue);
  Mutex high("test.high", lockorder::Rank::kCircuit);
  {
    LockGuard outer(high);
    // Acquiring the lower-ranked lock second is the A→B/B→A half the
    // static annotations cannot see. The capturing handler does not abort,
    // so execution continues; the violating acquisition is deliberately not
    // recorded (no cascade of follow-on reports).
    LockGuard inner(low);
  }
  ASSERT_EQ(capture.count(), 1u);
  const lockorder::Violation v = capture.at(0);
  EXPECT_STREQ(v.acquiring_name, "test.low");
  EXPECT_EQ(v.acquiring_rank, lockorder::Rank::kQueue);
  EXPECT_STREQ(v.held_name, "test.high");
  EXPECT_EQ(v.held_rank, lockorder::Rank::kCircuit);
  EXPECT_FALSE(v.same_mutex);
  // The report carries both acquisition contexts for the log.
  EXPECT_NE(v.report.find("test.low"), std::string::npos);
  EXPECT_NE(v.report.find("test.high"), std::string::npos);
  EXPECT_EQ(lockorder::held_count(), 0u);
}

TEST(LockOrderTest, EqualRankHeldTogetherIsAViolation) {
  CaptureViolations capture;
  Mutex a("test.a", lockorder::Rank::kStats);
  Mutex b("test.b", lockorder::Rank::kStats);
  {
    LockGuard outer(a);
    LockGuard inner(b);  // equal rank: order between the two is undefined
  }
  ASSERT_EQ(capture.count(), 1u);
  EXPECT_STREQ(capture.at(0).acquiring_name, "test.b");
  EXPECT_STREQ(capture.at(0).held_name, "test.a");
}

TEST(LockOrderTest, RecursiveAcquisitionIsSelfDeadlock) {
  CaptureViolations capture;
  // Drive the hooks directly: actually re-locking a std::mutex the thread
  // owns is undefined behaviour, which is exactly what the validator exists
  // to report before it happens.
  int token = 0;
  lockorder::on_acquire(&token, "test.recursive", lockorder::Rank::kCircuit);
  lockorder::on_acquire(&token, "test.recursive", lockorder::Rank::kCircuit);
  ASSERT_EQ(capture.count(), 1u);
  EXPECT_TRUE(capture.at(0).same_mutex);
  EXPECT_NE(capture.at(0).report.find("self-deadlock"), std::string::npos);
  lockorder::on_release(&token);
  EXPECT_EQ(lockorder::held_count(), 0u);
}

TEST(LockOrderTest, CondVarWaitReleasesAndReacquiresTracking) {
  CaptureViolations capture;
  Mutex mutex("test.cv", lockorder::Rank::kCircuit);
  CondVar cv;
  {
    UniqueLock lock(mutex);
    EXPECT_EQ(lockorder::held_count(), 1u);
    // Timed wait (nobody notifies): the wait releases the tracker entry and
    // re-registers it on wake — still held afterwards, still rank-checked.
    cv.wait_for(lock, std::chrono::milliseconds(1));
    EXPECT_EQ(lockorder::held_count(), 1u);
    // Proof the re-registration is live: a lower-ranked acquisition after
    // the wait must still be flagged against the re-acquired mutex.
    Mutex low("test.low", lockorder::Rank::kQueue);
    LockGuard inner(low);
  }
  ASSERT_EQ(capture.count(), 1u);
  EXPECT_STREQ(capture.at(0).held_name, "test.cv");
  EXPECT_EQ(lockorder::held_count(), 0u);
}

TEST(LockOrderTest, DisabledValidatorRecordsNothing) {
  const lockorder::Handler previous =
      lockorder::set_violation_handler(capture_handler);
  {
    std::lock_guard<std::mutex> lock(store().mutex);
    store().violations.clear();
  }
  lockorder::set_enabled(false);
  Mutex high("test.high", lockorder::Rank::kCircuit);
  Mutex low("test.low", lockorder::Rank::kQueue);
  {
    LockGuard outer(high);
    LockGuard inner(low);  // inversion, but the validator is off
    EXPECT_EQ(lockorder::held_count(), 0u);
  }
  lockorder::set_violation_handler(previous);
  std::lock_guard<std::mutex> lock(store().mutex);
  EXPECT_TRUE(store().violations.empty());
}

// The guard on the production code: a full request workload — concurrent
// submitters, batching workers, the supervisor, stats, the circuit breaker,
// metrics, and a nested tsdx::par fan-out — must acquire every lock in
// documented hierarchy order. Any inversion introduced into src/serve or
// src/tensor turns into a concrete Violation here (and in the TSan CI job,
// which runs the serve suites with TSDX_LOCK_ORDER=1).
TEST(LockOrderTest, ServerWorkloadObeysTheHierarchy) {
  CaptureViolations capture;

  auto extractor =
      std::make_shared<core::ScenarioExtractor>(micro_config(), /*seed=*/7);
  extractor->freeze();
  serve::ServerConfig cfg;
  cfg.workers = 2;
  cfg.max_batch = 2;
  cfg.queue_capacity = 4;
  cfg.metrics = std::make_shared<obs::Registry>();
  serve::InferenceServer server(extractor, cfg);

  const auto clips = make_clips(6);
  std::vector<std::future<core::ExtractionResult>> pending;
  pending.reserve(clips.size());
  for (const auto& clip : clips) pending.push_back(server.submit(clip));
  for (auto& f : pending) f.get();
  server.drain();
  (void)server.stats();
  server.shutdown();

  // The intra-op pool under the validator, including the nested re-entry
  // path that falls back inline.
  par::set_threads(2);
  par::parallel_for(8, 2, [](std::int64_t b, std::int64_t e) {
    par::parallel_for(e - b, 1, [](std::int64_t, std::int64_t) {});
  });
  par::set_threads(1);

  EXPECT_EQ(capture.count(), 0u) << capture.at(0).report;
  EXPECT_EQ(lockorder::held_count(), 0u);
}

// The plan cache compiles while *holding* its kPlan (43) mutex, and
// compilation runs a full traced forward that fans out through tsdx::par
// (ranks 50+). kPlan therefore has to sit below every pool rank — this test
// pins that ordering: a multi-threaded compile under the validator must be
// silent, and so must compiled execution through a served workload.
TEST(LockOrderTest, PlanCacheCompileUnderCacheLockObeysTheHierarchy) {
  CaptureViolations capture;

  auto extractor =
      std::make_shared<core::ScenarioExtractor>(micro_config(), /*seed=*/7);
  extractor->freeze();

  // Compile with the intra-op pool live so the traced forward's kernels
  // acquire the kPool* locks while get_or_compile holds plan.cache (kPlan).
  par::set_threads(2);
  auto cache = std::make_shared<tsdx::plan::PlanCache>();
  const auto plan = cache->get_or_compile(
      extractor->model(),
      {1, micro_config().frames, micro_config().channels,
       micro_config().image_size, micro_config().image_size});
  EXPECT_NE(plan, nullptr);

  // And the full serving stack with compiled plans on.
  serve::ServerConfig cfg;
  cfg.workers = 2;
  cfg.max_batch = 2;
  cfg.queue_capacity = 4;
  cfg.use_compiled_plan = true;
  cfg.metrics = std::make_shared<obs::Registry>();
  serve::InferenceServer server(extractor, cfg);
  const auto clips = make_clips(4);
  std::vector<std::future<core::ExtractionResult>> pending;
  pending.reserve(clips.size());
  for (const auto& clip : clips) pending.push_back(server.submit(clip));
  for (auto& f : pending) f.get();
  server.drain();
  par::set_threads(1);

  EXPECT_EQ(capture.count(), 0u) << capture.at(0).report;
  EXPECT_EQ(lockorder::held_count(), 0u);
}
