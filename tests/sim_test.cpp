// sim_test.cpp — trajectory kinematics, road geometry, scenario sampler
// validity (property-swept over seeds), rendering invariants, determinism.
#include <gtest/gtest.h>

#include <cmath>

#include "sdl/description.hpp"
#include "sim/clipgen.hpp"
#include "sim/render.hpp"
#include "sim/road.hpp"
#include "sim/trajectory.hpp"
#include "sim/world.hpp"

namespace sim = tsdx::sim;
namespace sdl = tsdx::sdl;
using sim::Pose;
using sim::Trajectory;
using sim::Vec2;

// ---- geometry helpers ------------------------------------------------------------

TEST(GeometryTest, VectorOps) {
  Vec2 a{3, 4};
  EXPECT_DOUBLE_EQ(a.norm(), 5.0);
  EXPECT_DOUBLE_EQ(a.dot({1, 0}), 3.0);
  const Vec2 r = Vec2{1, 0}.rotated(sim::kPi / 2);
  EXPECT_NEAR(r.x, 0.0, 1e-12);
  EXPECT_NEAR(r.y, 1.0, 1e-12);
}

TEST(GeometryTest, OrientedRectMembership) {
  const Pose pose{{0, 0}, sim::kPi / 2};  // facing north, length along y
  EXPECT_TRUE(sim::in_oriented_rect({0, 1.9}, pose, 4.0, 2.0));
  EXPECT_FALSE(sim::in_oriented_rect({0, 2.1}, pose, 4.0, 2.0));
  EXPECT_TRUE(sim::in_oriented_rect({0.9, 0}, pose, 4.0, 2.0));
  EXPECT_FALSE(sim::in_oriented_rect({1.1, 0}, pose, 4.0, 2.0));
}

TEST(GeometryTest, Smoothstep) {
  EXPECT_DOUBLE_EQ(sim::smoothstep(-1.0), 0.0);
  EXPECT_DOUBLE_EQ(sim::smoothstep(0.0), 0.0);
  EXPECT_DOUBLE_EQ(sim::smoothstep(0.5), 0.5);
  EXPECT_DOUBLE_EQ(sim::smoothstep(1.0), 1.0);
  EXPECT_DOUBLE_EQ(sim::smoothstep(2.0), 1.0);
}

// ---- trajectories ----------------------------------------------------------------

TEST(TrajectoryTest, StationaryNeverMoves) {
  const Pose p{{1, 2}, 0.3};
  const Trajectory t = Trajectory::stationary(p);
  for (double time : {0.0, 1.0, 100.0}) {
    EXPECT_DOUBLE_EQ(t.at(time).pos.x, 1.0);
    EXPECT_DOUBLE_EQ(t.at(time).pos.y, 2.0);
    EXPECT_DOUBLE_EQ(t.at(time).heading, 0.3);
  }
}

TEST(TrajectoryTest, StraightHasConstantSpeed) {
  const Trajectory t =
      Trajectory::straight(Pose{{0, 0}, sim::kPi / 2}, /*speed=*/5.0);
  const Pose p1 = t.at(1.0);
  const Pose p2 = t.at(2.0);
  EXPECT_NEAR(p1.pos.y, 5.0, 1e-9);
  EXPECT_NEAR(p2.pos.y, 10.0, 1e-9);
  EXPECT_NEAR(p1.pos.x, 0.0, 1e-9);
}

TEST(TrajectoryTest, DecelerateStopsExactlyAndStays) {
  const Trajectory t = Trajectory::decelerate_to_stop(
      Pose{{0, 0}, sim::kPi / 2}, /*speed=*/8.0, /*stop_time=*/2.0);
  // Total distance = v*T/2 = 8.
  EXPECT_NEAR(t.at(2.0).pos.y, 8.0, 1e-9);
  EXPECT_NEAR(t.at(5.0).pos.y, 8.0, 1e-9);  // stays stopped
  // Monotone position, decreasing increments.
  const double d1 = t.at(0.5).pos.y - t.at(0.0).pos.y;
  const double d2 = t.at(1.5).pos.y - t.at(1.0).pos.y;
  EXPECT_GT(d1, d2);
  EXPECT_GT(d2, 0.0);
}

TEST(TrajectoryTest, LaneChangeReachesLateralOffset) {
  const Trajectory t = Trajectory::lane_change(
      Pose{{0, 0}, sim::kPi / 2}, /*speed=*/8.0, /*lateral=*/3.5,
      /*t0=*/1.0, /*t1=*/2.0);
  // Left of a north heading is -x.
  EXPECT_NEAR(t.at(0.5).pos.x, 0.0, 1e-9);
  EXPECT_NEAR(t.at(3.0).pos.x, -3.5, 1e-9);
  EXPECT_NEAR(t.at(3.0).pos.y, 24.0, 1e-9);
  // Heading returns to straight after the manoeuvre.
  EXPECT_NEAR(t.at(3.0).heading, sim::kPi / 2, 1e-9);
}

TEST(TrajectoryTest, TurnLeftRotatesHeadingPlus90) {
  const double speed = 8.0;
  const double radius = 6.0;
  const double approach = 8.0;
  const Trajectory t = Trajectory::turn(Pose{{0, 0}, sim::kPi / 2}, speed,
                                        radius, approach, sim::kPi / 2);
  // End of approach phase.
  const double t_arc_start = approach / speed;
  EXPECT_NEAR(t.at(t_arc_start).pos.y, approach, 1e-9);
  EXPECT_NEAR(t.at(t_arc_start).heading, sim::kPi / 2, 1e-9);
  // After the arc the heading has turned +90 degrees (now facing -x / west).
  const double arc_time = radius * (sim::kPi / 2) / speed;
  const Pose after = t.at(t_arc_start + arc_time + 0.5);
  EXPECT_NEAR(after.heading, sim::kPi, 1e-9);
  EXPECT_LT(after.pos.x, 0.0);  // moved west after a left turn
}

TEST(TrajectoryTest, TurnRightRotatesHeadingMinus90) {
  const Trajectory t = Trajectory::turn(Pose{{0, 0}, sim::kPi / 2}, 8.0, 4.0,
                                        8.0, -sim::kPi / 2);
  const Pose end = t.at(4.0);
  EXPECT_NEAR(end.heading, 0.0, 1e-9);  // facing east
  EXPECT_GT(end.pos.x, 0.0);
}

TEST(TrajectoryTest, TurnPathIsContinuous) {
  const Trajectory t = Trajectory::turn(Pose{{0.5, -14}, sim::kPi / 2}, 8.0,
                                        5.0, 10.0, sim::kPi / 2);
  Pose prev = t.at(0.0);
  for (double time = 0.05; time <= 4.0; time += 0.05) {
    const Pose cur = t.at(time);
    const double step = (cur.pos - prev.pos).norm();
    EXPECT_LT(step, 8.0 * 0.05 * 1.2) << "discontinuity at t=" << time;
    EXPECT_GT(step, 8.0 * 0.05 * 0.8) << "stall at t=" << time;
    prev = cur;
  }
}

TEST(TrajectoryTest, ArcStaysOnCircle) {
  const Vec2 center{10, 0};
  const Trajectory t = Trajectory::arc(center, 5.0, 0.0, 2.0);
  for (double time : {0.0, 1.0, 3.0, 7.0}) {
    EXPECT_NEAR((t.at(time).pos - center).norm(), 5.0, 1e-9);
  }
}

// ---- roads ---------------------------------------------------------------------------

TEST(RoadTest, StraightRoadMembership) {
  EXPECT_TRUE(sim::is_on_road(sdl::RoadLayout::kStraight, {0, 50}));
  EXPECT_TRUE(sim::is_on_road(sdl::RoadLayout::kStraight, {3.4, -50}));
  EXPECT_FALSE(sim::is_on_road(sdl::RoadLayout::kStraight, {3.6, 0}));
}

TEST(RoadTest, IntersectionHasBothRoads) {
  EXPECT_TRUE(sim::is_on_road(sdl::RoadLayout::kIntersection4, {0, 20}));
  EXPECT_TRUE(sim::is_on_road(sdl::RoadLayout::kIntersection4, {20, 0}));
  EXPECT_FALSE(sim::is_on_road(sdl::RoadLayout::kIntersection4, {20, 20}));
}

TEST(RoadTest, TJunctionHasNoWestArm) {
  EXPECT_TRUE(sim::is_on_road(sdl::RoadLayout::kTJunction, {20, 0}));
  EXPECT_FALSE(sim::is_on_road(sdl::RoadLayout::kTJunction, {-20, 0}));
  EXPECT_TRUE(sim::is_on_road(sdl::RoadLayout::kTJunction, {0, -20}));
}

TEST(RoadTest, CurveFollowsArcNorthOfOrigin) {
  // South of origin: straight segment.
  EXPECT_TRUE(sim::is_on_road(sdl::RoadLayout::kCurve, {0, -10}));
  // North: points near the arc of radius kCurveRadius around curve_center().
  const Vec2 center = sim::curve_center();
  const Vec2 on_arc = center + Vec2{-sim::kCurveRadius, 0}.rotated(0.5);
  EXPECT_TRUE(sim::is_on_road(sdl::RoadLayout::kCurve, on_arc));
  EXPECT_FALSE(sim::is_on_road(sdl::RoadLayout::kCurve, {-10, 10}));
}

// ---- scenario sampler: property sweep over seeds ----------------------------------------

class SamplerProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SamplerProperty, SampledDescriptionsAreAlwaysValid) {
  tsdx::tensor::Rng rng(GetParam());
  for (int i = 0; i < 50; ++i) {
    const sdl::ScenarioDescription d = sim::sample_description(rng);
    const auto errors = sdl::validate(d);
    EXPECT_TRUE(errors.empty())
        << "seed " << GetParam() << " sample " << i << ": " << errors[0]
        << "\n" << sdl::to_sentence(d);
  }
}

TEST_P(SamplerProperty, BackgroundCountMatchesDensity) {
  tsdx::tensor::Rng rng(GetParam() ^ 0xABCDu);
  for (int i = 0; i < 30; ++i) {
    const sdl::ScenarioDescription d = sim::sample_description(rng);
    const std::size_t n = d.background_actors.size();
    switch (d.environment.density) {
      case sdl::TrafficDensity::kSparse:
        EXPECT_EQ(n, 0u);
        break;
      case sdl::TrafficDensity::kMedium:
        EXPECT_EQ(n, 2u);
        break;
      case sdl::TrafficDensity::kDense:
        EXPECT_EQ(n, 4u);
        break;
    }
  }
}

TEST_P(SamplerProperty, WorldAgentsMatchDescription) {
  tsdx::tensor::Rng rng(GetParam() ^ 0x1234u);
  const sim::World w = sim::sample_world(rng);
  const bool has_salient =
      w.description.salient_actor.type != sdl::ActorType::kNone;
  const std::size_t expected =
      (has_salient ? 1u : 0u) + w.description.background_actors.size();
  EXPECT_EQ(w.actors.size(), expected);
  if (has_salient) {
    EXPECT_TRUE(w.actors[0].is_salient);
    EXPECT_EQ(w.actors[0].type, w.description.salient_actor.type);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SamplerProperty,
                         ::testing::Values(1u, 2u, 3u, 17u, 99u, 12345u));

// ---- rendering -----------------------------------------------------------------------------

namespace {
sim::RenderConfig small_render() {
  sim::RenderConfig cfg;
  cfg.height = cfg.width = 32;
  cfg.frames = 4;
  return cfg;
}
}  // namespace

TEST(RenderTest, ClipShapeAndRange) {
  tsdx::tensor::Rng rng(5);
  const sim::World w = sim::sample_world(rng);
  tsdx::tensor::Rng noise(6);
  const sim::VideoClip clip = sim::render_clip(w, small_render(), noise);
  EXPECT_EQ(clip.frames, 4);
  EXPECT_EQ(clip.height, 32);
  EXPECT_EQ(clip.data.size(),
            static_cast<std::size_t>(4 * sim::kNumChannels * 32 * 32));
  for (float v : clip.data) {
    EXPECT_GE(v, 0.0f);
    EXPECT_LE(v, 1.0f);
  }
}

TEST(RenderTest, EgoVisibleNearViewCenter) {
  tsdx::tensor::Rng rng(7);
  const sim::World w = sim::sample_world(rng);
  tsdx::tensor::Rng noise(8);
  const sim::VideoClip clip = sim::render_clip(w, small_render(), noise);
  // The camera centers 6 m ahead of the ego, so the ego rectangle sits just
  // below center. Look for a bright vehicle pixel in the lower middle.
  float best = 0.0f;
  for (std::int64_t y = 16; y < 28; ++y) {
    for (std::int64_t x = 8; x < 24; ++x) {
      best = std::max(best, clip.at(0, 1, y, x));
    }
  }
  EXPECT_GT(best, 0.8f);
}

TEST(RenderTest, RoadBrighterInDayThanNight) {
  sdl::ScenarioDescription d;
  d.environment.road_layout = sdl::RoadLayout::kStraight;
  d.environment.weather = sdl::Weather::kClear;
  d.ego_action = sdl::EgoAction::kCruise;

  auto road_mean = [&](sdl::TimeOfDay tod) {
    d.environment.time_of_day = tod;
    tsdx::tensor::Rng rng(11);
    const sim::World w = sim::build_world(d, rng);
    tsdx::tensor::Rng noise(12);
    const sim::VideoClip clip = sim::render_clip(w, small_render(), noise);
    double sum = 0.0;
    const std::size_t plane = 32 * 32;
    for (std::size_t i = 0; i < plane; ++i) sum += clip.data[i];
    return sum / plane;
  };
  EXPECT_GT(road_mean(sdl::TimeOfDay::kDay),
            road_mean(sdl::TimeOfDay::kNight) + 0.05);
}

TEST(RenderTest, PedestrianAppearsInVruChannel) {
  sdl::ScenarioDescription d;
  d.environment.road_layout = sdl::RoadLayout::kStraight;
  d.ego_action = sdl::EgoAction::kCruise;
  d.salient_actor = {sdl::ActorType::kPedestrian, sdl::ActorAction::kCross,
                     sdl::RelativePosition::kAhead};
  tsdx::tensor::Rng rng(13);
  const sim::World w = sim::build_world(d, rng);
  tsdx::tensor::Rng noise(14);
  sim::RenderConfig cfg = small_render();
  cfg.frames = 8;
  const sim::VideoClip clip = sim::render_clip(w, cfg, noise);
  float peak = 0.0f;
  for (std::int64_t f = 0; f < clip.frames; ++f) {
    for (std::int64_t y = 0; y < 32; ++y) {
      for (std::int64_t x = 0; x < 32; ++x) {
        peak = std::max(peak, clip.at(f, 2, y, x));
      }
    }
  }
  EXPECT_GT(peak, 0.5f);  // the pedestrian shows up at some point
}

TEST(RenderTest, MotionChangesFrames) {
  tsdx::tensor::Rng rng(15);
  sdl::ScenarioDescription d;
  d.ego_action = sdl::EgoAction::kCruise;
  d.salient_actor = {sdl::ActorType::kCar, sdl::ActorAction::kCruise,
                     sdl::RelativePosition::kOncoming};
  const sim::World w = sim::build_world(d, rng);
  tsdx::tensor::Rng noise(16);
  const sim::VideoClip clip = sim::render_clip(w, small_render(), noise);
  // Vehicle channel must differ between first and last frame.
  double diff = 0.0;
  for (std::int64_t y = 0; y < 32; ++y) {
    for (std::int64_t x = 0; x < 32; ++x) {
      diff += std::abs(clip.at(0, 1, y, x) - clip.at(3, 1, y, x));
    }
  }
  EXPECT_GT(diff, 1.0);
}

TEST(RenderTest, AsciiFrameHasExpectedDimensions) {
  tsdx::tensor::Rng rng(17);
  const sim::World w = sim::sample_world(rng);
  tsdx::tensor::Rng noise(18);
  const sim::VideoClip clip = sim::render_clip(w, small_render(), noise);
  const std::string art = sim::ascii_frame(clip, 0);
  EXPECT_EQ(art.size(), static_cast<std::size_t>(33 * 32));  // 32 cols + \n
  EXPECT_NE(art.find('#'), std::string::npos);  // ego rectangle visible
}

// ---- clip generator ----------------------------------------------------------------------------

TEST(ClipGeneratorTest, DeterministicAcrossInstances) {
  sim::ClipGenerator g1(small_render(), 77);
  sim::ClipGenerator g2(small_render(), 77);
  for (int i = 0; i < 3; ++i) {
    const sim::LabeledClip a = g1.generate();
    const sim::LabeledClip b = g2.generate();
    EXPECT_EQ(a.description, b.description);
    EXPECT_EQ(a.video.data, b.video.data);
  }
}

TEST(ClipGeneratorTest, DifferentSeedsDiffer) {
  sim::ClipGenerator g1(small_render(), 1);
  sim::ClipGenerator g2(small_render(), 2);
  bool any_diff = false;
  for (int i = 0; i < 3 && !any_diff; ++i) {
    any_diff = g1.generate().description != g2.generate().description;
  }
  EXPECT_TRUE(any_diff);
}

TEST(ClipGeneratorTest, GenerateForRealizesGivenDescription) {
  sdl::ScenarioDescription d;
  d.environment.road_layout = sdl::RoadLayout::kTJunction;
  d.environment.time_of_day = sdl::TimeOfDay::kDusk;
  d.ego_action = sdl::EgoAction::kTurnRight;
  sim::ClipGenerator gen(small_render(), 3);
  const sim::LabeledClip clip = gen.generate_for(d);
  EXPECT_EQ(clip.description, d);
  EXPECT_EQ(clip.video.frames, 4);
}

TEST(ClipGeneratorTest, LabelsAlwaysValidOverManyClips) {
  sim::ClipGenerator gen(small_render(), 4);
  for (int i = 0; i < 40; ++i) {
    const sim::LabeledClip clip = gen.generate();
    EXPECT_TRUE(sdl::is_valid(clip.description));
    // Labels must be in range for every slot.
    const sdl::SlotLabels labels = sdl::to_slot_labels(clip.description);
    for (std::size_t s = 0; s < sdl::kNumSlots; ++s) {
      EXPECT_LT(labels[s], sdl::kSlotCardinality[s]);
    }
  }
}

// ---- camera frames ---------------------------------------------------------------------------

TEST(CameraFrameTest, EgoAlignedKeepsEgoPointingUp) {
  // A turning ego: in the ego-aligned view the ego rectangle must stay
  // upright at the view center in every frame.
  sdl::ScenarioDescription d;
  d.environment.road_layout = sdl::RoadLayout::kIntersection4;
  d.ego_action = sdl::EgoAction::kTurnLeft;
  tsdx::tensor::Rng jitter(31);
  const sim::World w = sim::build_world(d, jitter);

  sim::RenderConfig cfg = small_render();
  cfg.frames = 6;
  cfg.camera = sim::CameraFrame::kEgoAligned;
  tsdx::tensor::Rng noise(32);
  const sim::VideoClip clip = sim::render_clip(w, cfg, noise);

  // Ego occupies the pixel column at the center, rows just below middle
  // (look_ahead shifts it down) — in every frame, including mid-turn.
  for (std::int64_t f = 0; f < clip.frames; ++f) {
    float center_peak = 0.0f;
    for (std::int64_t y = 18; y < 26; ++y) {
      for (std::int64_t x = 14; x < 18; ++x) {
        center_peak = std::max(center_peak, clip.at(f, 1, y, x));
      }
    }
    EXPECT_GT(center_peak, 0.8f) << "frame " << f;
  }
}

TEST(CameraFrameTest, NorthUpAndEgoAlignedAgreeWhileDrivingStraight) {
  // Heading is pi/2 on a straight cruise, so the two camera frames coincide
  // (same axes) and the renders must match except for the noise stream.
  sdl::ScenarioDescription d;
  d.environment.road_layout = sdl::RoadLayout::kStraight;
  d.ego_action = sdl::EgoAction::kCruise;
  tsdx::tensor::Rng jitter(33);
  const sim::World w = sim::build_world(d, jitter);

  sim::RenderConfig north = small_render();
  sim::RenderConfig aligned = small_render();
  aligned.camera = sim::CameraFrame::kEgoAligned;
  tsdx::tensor::Rng n1(34), n2(34);
  const sim::VideoClip a = sim::render_clip(w, north, n1);
  const sim::VideoClip b = sim::render_clip(w, aligned, n2);
  for (std::size_t i = 0; i < a.data.size(); ++i) {
    ASSERT_NEAR(a.data[i], b.data[i], 1e-6f);
  }
}
