// sdl_test.cpp — taxonomy round-trips, description labels, semantic
// validation, JSON (writer + parser), serialization, and the Scenario2Vector
// embedding / retrieval index.
#include <gtest/gtest.h>

#include "sdl/description.hpp"
#include "sdl/embedding.hpp"
#include "sdl/json.hpp"
#include "sdl/serialization.hpp"
#include "sdl/diff.hpp"
#include "sdl/taxonomy.hpp"

namespace sdl = tsdx::sdl;

// ---- taxonomy ------------------------------------------------------------------

TEST(TaxonomyTest, EnumNameRoundTrips) {
  for (std::size_t i = 0; i < sdl::kNumRoadLayouts; ++i) {
    const auto v = static_cast<sdl::RoadLayout>(i);
    EXPECT_EQ(sdl::parse_road_layout(sdl::to_string(v)), v);
  }
  for (std::size_t i = 0; i < sdl::kNumEgoActions; ++i) {
    const auto v = static_cast<sdl::EgoAction>(i);
    EXPECT_EQ(sdl::parse_ego_action(sdl::to_string(v)), v);
  }
  for (std::size_t i = 0; i < sdl::kNumActorTypes; ++i) {
    const auto v = static_cast<sdl::ActorType>(i);
    EXPECT_EQ(sdl::parse_actor_type(sdl::to_string(v)), v);
  }
  for (std::size_t i = 0; i < sdl::kNumActorActions; ++i) {
    const auto v = static_cast<sdl::ActorAction>(i);
    EXPECT_EQ(sdl::parse_actor_action(sdl::to_string(v)), v);
  }
  for (std::size_t i = 0; i < sdl::kNumRelativePositions; ++i) {
    const auto v = static_cast<sdl::RelativePosition>(i);
    EXPECT_EQ(sdl::parse_relative_position(sdl::to_string(v)), v);
  }
  for (std::size_t i = 0; i < sdl::kNumTimesOfDay; ++i) {
    const auto v = static_cast<sdl::TimeOfDay>(i);
    EXPECT_EQ(sdl::parse_time_of_day(sdl::to_string(v)), v);
  }
  for (std::size_t i = 0; i < sdl::kNumWeathers; ++i) {
    const auto v = static_cast<sdl::Weather>(i);
    EXPECT_EQ(sdl::parse_weather(sdl::to_string(v)), v);
  }
  for (std::size_t i = 0; i < sdl::kNumTrafficDensities; ++i) {
    const auto v = static_cast<sdl::TrafficDensity>(i);
    EXPECT_EQ(sdl::parse_traffic_density(sdl::to_string(v)), v);
  }
}

TEST(TaxonomyTest, UnknownTokensRejected) {
  EXPECT_FALSE(sdl::parse_road_layout("roundabout").has_value());
  EXPECT_FALSE(sdl::parse_ego_action("").has_value());
  EXPECT_FALSE(sdl::parse_actor_type("Car").has_value());  // case-sensitive
}

TEST(TaxonomyTest, SlotCardinalityConsistent) {
  EXPECT_EQ(sdl::kSlotCardinality[static_cast<std::size_t>(
                sdl::Slot::kRoadLayout)],
            sdl::kNumRoadLayouts);
  EXPECT_EQ(sdl::kSlotCardinality[static_cast<std::size_t>(
                sdl::Slot::kActorAction)],
            sdl::kNumActorActions);
  // Every slot/class pair has a printable name.
  for (std::size_t s = 0; s < sdl::kNumSlots; ++s) {
    for (std::size_t c = 0; c < sdl::kSlotCardinality[s]; ++c) {
      EXPECT_FALSE(
          sdl::slot_class_name(static_cast<sdl::Slot>(s), c).empty());
    }
  }
}

// ---- slot labels --------------------------------------------------------------------

namespace {

sdl::ScenarioDescription example_description() {
  sdl::ScenarioDescription d;
  d.environment.road_layout = sdl::RoadLayout::kIntersection4;
  d.environment.time_of_day = sdl::TimeOfDay::kNight;
  d.environment.weather = sdl::Weather::kRain;
  d.environment.density = sdl::TrafficDensity::kMedium;
  d.ego_action = sdl::EgoAction::kTurnLeft;
  d.salient_actor = {sdl::ActorType::kPedestrian, sdl::ActorAction::kCross,
                     sdl::RelativePosition::kAhead};
  d.background_actors.push_back({sdl::ActorType::kCar,
                                 sdl::ActorAction::kParked,
                                 sdl::RelativePosition::kRight});
  return d;
}

}  // namespace

TEST(DescriptionTest, SlotLabelRoundTrip) {
  const sdl::ScenarioDescription d = example_description();
  const sdl::SlotLabels labels = sdl::to_slot_labels(d);
  const sdl::ScenarioDescription back = sdl::from_slot_labels(labels);
  // background actors are not representable in slot labels
  EXPECT_EQ(back.environment, d.environment);
  EXPECT_EQ(back.ego_action, d.ego_action);
  EXPECT_EQ(back.salient_actor, d.salient_actor);
  EXPECT_TRUE(back.background_actors.empty());
}

TEST(DescriptionTest, FromSlotLabelsRangeChecked) {
  sdl::SlotLabels bad{};
  bad[0] = sdl::kNumRoadLayouts;  // out of range
  EXPECT_THROW(sdl::from_slot_labels(bad), std::out_of_range);
}

// ---- validation -------------------------------------------------------------------------

TEST(ValidationTest, ValidDescriptionPasses) {
  EXPECT_TRUE(sdl::is_valid(example_description()));
}

TEST(ValidationTest, EgoTurnRequiresJunction) {
  sdl::ScenarioDescription d = example_description();
  d.environment.road_layout = sdl::RoadLayout::kStraight;
  d.ego_action = sdl::EgoAction::kTurnLeft;
  const auto errors = sdl::validate(d);
  ASSERT_FALSE(errors.empty());
  EXPECT_NE(errors[0].find("ego"), std::string::npos);
}

TEST(ValidationTest, PedestrianCannotCruise) {
  sdl::ScenarioDescription d = example_description();
  d.salient_actor.action = sdl::ActorAction::kCruise;
  EXPECT_FALSE(sdl::is_valid(d));
}

TEST(ValidationTest, CrossRequiresVru) {
  sdl::ScenarioDescription d = example_description();
  d.salient_actor.type = sdl::ActorType::kTruck;  // truck crossing: invalid
  EXPECT_FALSE(sdl::is_valid(d));
  d.salient_actor.type = sdl::ActorType::kCyclist;
  EXPECT_TRUE(sdl::is_valid(d));
}

TEST(ValidationTest, NoneFieldsMustAgree) {
  sdl::ScenarioDescription d = example_description();
  d.salient_actor = {sdl::ActorType::kNone, sdl::ActorAction::kCross,
                     sdl::RelativePosition::kNone};
  EXPECT_FALSE(sdl::is_valid(d));
  d.salient_actor = {sdl::ActorType::kNone, sdl::ActorAction::kNone,
                     sdl::RelativePosition::kNone};
  EXPECT_TRUE(sdl::is_valid(d));
}

TEST(ValidationTest, ActorTurnRequiresJunction) {
  sdl::ScenarioDescription d = example_description();
  d.environment.road_layout = sdl::RoadLayout::kCurve;
  d.ego_action = sdl::EgoAction::kCruise;
  d.salient_actor = {sdl::ActorType::kCar, sdl::ActorAction::kTurnRight,
                     sdl::RelativePosition::kAhead};
  EXPECT_FALSE(sdl::is_valid(d));
}

TEST(ValidationTest, BackgroundActorsChecked) {
  sdl::ScenarioDescription d = example_description();
  d.background_actors.push_back({sdl::ActorType::kNone,
                                 sdl::ActorAction::kNone,
                                 sdl::RelativePosition::kNone});
  EXPECT_FALSE(sdl::is_valid(d));
}

// ---- sentence rendering ----------------------------------------------------------------------

TEST(SentenceTest, ContainsKeyPhrases) {
  const std::string s = sdl::to_sentence(example_description());
  EXPECT_NE(s.find("4-way intersection"), std::string::npos);
  EXPECT_NE(s.find("turns left"), std::string::npos);
  EXPECT_NE(s.find("pedestrian"), std::string::npos);
  EXPECT_NE(s.find("crosses"), std::string::npos);
  EXPECT_EQ(s.back(), '.');
}

TEST(SentenceTest, NoActorOmitsWhileClause) {
  sdl::ScenarioDescription d = example_description();
  d.salient_actor = {};
  const std::string s = sdl::to_sentence(d);
  EXPECT_EQ(s.find("while"), std::string::npos);
}

// ---- JSON ------------------------------------------------------------------------------------

TEST(JsonTest, ScalarsAndDump) {
  EXPECT_EQ(sdl::Json(nullptr).dump(), "null");
  EXPECT_EQ(sdl::Json(true).dump(), "true");
  EXPECT_EQ(sdl::Json(42).dump(), "42");
  EXPECT_EQ(sdl::Json(2.5).dump(), "2.5");
  EXPECT_EQ(sdl::Json("hi").dump(), "\"hi\"");
}

TEST(JsonTest, StringEscaping) {
  EXPECT_EQ(sdl::Json("a\"b\\c\nd").dump(), "\"a\\\"b\\\\c\\nd\"");
}

TEST(JsonTest, ObjectsAndArrays) {
  sdl::JsonObject obj;
  obj.emplace("b", sdl::Json(1));
  obj.emplace("a", sdl::Json(sdl::JsonArray{sdl::Json(1), sdl::Json("x")}));
  const sdl::Json j(std::move(obj));
  // std::map keys are sorted -> deterministic output.
  EXPECT_EQ(j.dump(), "{\"a\":[1,\"x\"],\"b\":1}");
}

TEST(JsonTest, ParseRoundTrip) {
  const std::string text =
      R"({"arr":[1,2.5,true,null,"s"],"nested":{"k":"v"},"n":-3})";
  auto parsed = sdl::Json::parse(text);
  ASSERT_TRUE(parsed.has_value());
  auto reparsed = sdl::Json::parse(parsed->dump());
  ASSERT_TRUE(reparsed.has_value());
  EXPECT_EQ(*parsed, *reparsed);
  EXPECT_EQ(parsed->find("n")->as_number(), -3.0);
  EXPECT_EQ(parsed->find("nested")->find("k")->as_string(), "v");
}

TEST(JsonTest, ParseWhitespaceAndUnicodeEscapes) {
  auto j = sdl::Json::parse("  { \"k\" : \"\\u0041\\u00e9\" }  ");
  ASSERT_TRUE(j.has_value());
  EXPECT_EQ(j->find("k")->as_string(), "A\xc3\xa9");
}

TEST(JsonTest, MalformedInputsRejectedWithErrors) {
  const char* bad[] = {
      "",            "{",        "[1,]",      "{\"a\":}",   "{\"a\" 1}",
      "tru",         "\"unterminated", "{\"a\":1}extra", "[1 2]", "nan",
  };
  for (const char* text : bad) {
    std::string error;
    EXPECT_FALSE(sdl::Json::parse(text, &error).has_value()) << text;
    EXPECT_FALSE(error.empty()) << text;
  }
}

TEST(JsonTest, FindOnNonObjectReturnsNull) {
  EXPECT_EQ(sdl::Json(3).find("x"), nullptr);
}

TEST(JsonTest, PrettyPrintParsesBack) {
  const sdl::Json j = sdl::to_json(example_description());
  auto round = sdl::Json::parse(j.dump_pretty());
  ASSERT_TRUE(round.has_value());
  EXPECT_EQ(*round, j);
}

// ---- serialization ----------------------------------------------------------------------------

TEST(SerializationTest, DescriptionJsonRoundTrip) {
  const sdl::ScenarioDescription d = example_description();
  const std::string text = sdl::to_json_string(d);
  std::string error;
  const auto back = sdl::description_from_string(text, &error);
  ASSERT_TRUE(back.has_value()) << error;
  EXPECT_EQ(*back, d);
}

TEST(SerializationTest, PrettyRoundTrip) {
  const sdl::ScenarioDescription d = example_description();
  const auto back =
      sdl::description_from_string(sdl::to_json_string(d, /*pretty=*/true));
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(*back, d);
}

TEST(SerializationTest, MissingFieldsReported) {
  std::string error;
  EXPECT_FALSE(sdl::description_from_string("{}", &error).has_value());
  EXPECT_FALSE(error.empty());
}

TEST(SerializationTest, UnknownTokenReported) {
  sdl::Json j = sdl::to_json(example_description());
  j.as_object().at("ego_action") = sdl::Json("teleport");
  std::string error;
  EXPECT_FALSE(sdl::description_from_json(j, &error).has_value());
  EXPECT_NE(error.find("teleport"), std::string::npos);
}

TEST(SerializationTest, BackgroundActorsPreserved) {
  sdl::ScenarioDescription d = example_description();
  d.background_actors.push_back({sdl::ActorType::kTruck,
                                 sdl::ActorAction::kCruise,
                                 sdl::RelativePosition::kOncoming});
  const auto back = sdl::description_from_string(sdl::to_json_string(d));
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->background_actors.size(), 2u);
  EXPECT_EQ(*back, d);
}

// ---- embedding / retrieval -----------------------------------------------------------------------

TEST(EmbeddingTest, VectorIsUnitNorm) {
  const auto v = sdl::scenario_to_vector(example_description());
  EXPECT_EQ(v.size(), sdl::scenario_vector_dim());
  double norm = 0;
  for (float x : v) norm += x * x;
  EXPECT_NEAR(norm, 1.0, 1e-5);
}

TEST(EmbeddingTest, IdenticalScenariosHaveSimilarityOne) {
  const auto d = example_description();
  EXPECT_NEAR(sdl::scenario_similarity(d, d), 1.0f, 1e-5f);
}

TEST(EmbeddingTest, SimilarityOrderingIsSemantic) {
  const sdl::ScenarioDescription base = example_description();
  // One slot differs (weather) vs many slots differ.
  sdl::ScenarioDescription near = base;
  near.environment.weather = sdl::Weather::kClear;
  sdl::ScenarioDescription far = base;
  far.environment = {};
  far.ego_action = sdl::EgoAction::kCruise;
  far.salient_actor = {};
  EXPECT_GT(sdl::scenario_similarity(base, near),
            sdl::scenario_similarity(base, far));
}

TEST(EmbeddingTest, ActionWeightDominatesWeather) {
  // With default weights, changing the ego action moves the vector more
  // than changing the weather.
  const sdl::ScenarioDescription base = example_description();
  sdl::ScenarioDescription weather_diff = base;
  weather_diff.environment.weather = sdl::Weather::kFog;
  sdl::ScenarioDescription action_diff = base;
  action_diff.ego_action = sdl::EgoAction::kStop;
  EXPECT_GT(sdl::scenario_similarity(base, weather_diff),
            sdl::scenario_similarity(base, action_diff));
}

TEST(EmbeddingTest, ZeroActorDescriptionIsUnitNorm) {
  // The all-kNone actor slots are valid labels, not missing data: they embed
  // as ordinary one-hot entries and the vector still normalizes.
  sdl::ScenarioDescription d;
  d.ego_action = sdl::EgoAction::kCruise;
  d.salient_actor = {};
  d.background_actors.clear();
  const auto v = sdl::scenario_to_vector(d);
  double norm = 0;
  for (float x : v) norm += x * x;
  EXPECT_NEAR(norm, 1.0, 1e-5);
  EXPECT_NEAR(sdl::scenario_similarity(d, d), 1.0f, 1e-5f);
}

TEST(EmbeddingTest, BackgroundBlockSaturatesOnPresence) {
  // The background block is multi-hot over *presence*: three parked cars
  // embed identically to one (multiplicity must not inflate the weight).
  sdl::ScenarioDescription one = example_description();
  sdl::ScenarioDescription many = one;
  many.background_actors.push_back(many.background_actors.front());
  many.background_actors.push_back(many.background_actors.front());
  EXPECT_EQ(sdl::scenario_to_vector(one), sdl::scenario_to_vector(many));
}

TEST(EmbeddingTest, ZeroedSlotWeightStillNormalizes) {
  // A weights profile that zeroes a slot removes it from the metric but must
  // not break normalization — the remaining blocks carry the norm.
  sdl::EmbeddingWeights w;
  w.weather = 0.0f;
  const auto v = sdl::scenario_to_vector(example_description(), w);
  double norm = 0;
  for (float x : v) norm += x * x;
  EXPECT_NEAR(norm, 1.0, 1e-5);
  // And the weather block really is zero: scenarios differing only in
  // weather become indistinguishable under this profile.
  sdl::ScenarioDescription other = example_description();
  other.environment.weather = sdl::Weather::kFog;
  EXPECT_NEAR(sdl::scenario_similarity(example_description(), other, w), 1.0f,
              1e-6f);
}

TEST(ScenarioIndexTest, QueryRanksExactMatchFirst) {
  sdl::ScenarioIndex index;
  const sdl::ScenarioDescription a = example_description();
  sdl::ScenarioDescription b = a;
  b.ego_action = sdl::EgoAction::kStop;
  sdl::ScenarioDescription c = a;
  c.environment.road_layout = sdl::RoadLayout::kStraight;
  c.ego_action = sdl::EgoAction::kCruise;
  c.salient_actor = {};

  index.add("a", a);
  index.add("b", b);
  index.add("c", c);
  ASSERT_EQ(index.size(), 3u);

  const auto hits = index.query(a, 2);
  ASSERT_EQ(hits.size(), 2u);
  EXPECT_EQ(hits[0].id, "a");
  EXPECT_NEAR(hits[0].similarity, 1.0f, 1e-5f);
  EXPECT_EQ(hits[1].id, "b");
}

TEST(ScenarioIndexTest, KLargerThanIndexReturnsAll) {
  sdl::ScenarioIndex index;
  index.add("only", example_description());
  EXPECT_EQ(index.query(example_description(), 10).size(), 1u);
}

// ---- diff -------------------------------------------------------------------------------------

TEST(DiffTest, IdenticalDescriptionsHaveNoDiff) {
  const auto d = example_description();
  EXPECT_TRUE(sdl::diff_descriptions(d, d).empty());
  EXPECT_EQ(sdl::matching_slots(d, d), sdl::kNumSlots);
  EXPECT_EQ(sdl::diff_to_string({}), "");
}

TEST(DiffTest, ReportsChangedSlotsWithNames) {
  sdl::ScenarioDescription a = example_description();
  sdl::ScenarioDescription b = a;
  b.ego_action = sdl::EgoAction::kCruise;
  b.environment.weather = sdl::Weather::kFog;
  const auto diffs = sdl::diff_descriptions(a, b);
  ASSERT_EQ(diffs.size(), 2u);
  EXPECT_EQ(sdl::matching_slots(a, b), sdl::kNumSlots - 2);
  const std::string text = sdl::diff_to_string(diffs);
  EXPECT_NE(text.find("weather: rain->fog"), std::string::npos);
  EXPECT_NE(text.find("ego_action: turn_left->cruise"), std::string::npos);
}

TEST(DiffTest, BackgroundActorsIgnored) {
  sdl::ScenarioDescription a = example_description();
  sdl::ScenarioDescription b = a;
  b.background_actors.clear();
  EXPECT_TRUE(sdl::diff_descriptions(a, b).empty());
}
