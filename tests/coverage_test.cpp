// coverage_test.cpp — scenario-coverage analysis: the valid-combination
// enumeration, value/pair coverage accounting, and missing-pair reporting.
#include <gtest/gtest.h>

#include "sdl/coverage.hpp"
#include "sdl/spec.hpp"
#include <set>
#include "sim/world.hpp"

namespace sdl = tsdx::sdl;
namespace sim = tsdx::sim;

TEST(ValidCombinationsTest, EnumerationIsNonTrivialAndValid) {
  const auto& combos = sdl::all_valid_label_combinations();
  // A meaningful fraction of the 136k raw tuples must survive, and far from
  // all of them (the SDL has real constraints).
  std::size_t raw = 1;
  for (std::size_t c : sdl::kSlotCardinality) raw *= c;
  EXPECT_GT(combos.size(), raw / 100);
  EXPECT_LT(combos.size(), raw);
  for (std::size_t i = 0; i < combos.size(); i += 997) {  // sample
    EXPECT_TRUE(sdl::is_valid(sdl::from_slot_labels(combos[i])));
  }
}

TEST(ValidCombinationsTest, KnownInvalidTupleExcluded) {
  // straight road + ego turn_left is invalid and must not appear.
  for (const auto& labels : sdl::all_valid_label_combinations()) {
    const bool straight =
        labels[0] == static_cast<std::size_t>(sdl::RoadLayout::kStraight);
    const bool turns =
        labels[4] == static_cast<std::size_t>(sdl::EgoAction::kTurnLeft) ||
        labels[4] == static_cast<std::size_t>(sdl::EgoAction::kTurnRight);
    EXPECT_FALSE(straight && turns);
  }
}

TEST(CoverageTest, EmptyAnalyzer) {
  sdl::CoverageAnalyzer cov;
  EXPECT_EQ(cov.count(), 0u);
  EXPECT_DOUBLE_EQ(cov.slot_value_coverage(sdl::Slot::kWeather), 0.0);
  EXPECT_DOUBLE_EQ(cov.overall_value_coverage(), 0.0);
  EXPECT_DOUBLE_EQ(cov.pair_coverage(sdl::Slot::kRoadLayout,
                                     sdl::Slot::kEgoAction),
                   0.0);
}

TEST(CoverageTest, SingleDescriptionCountsOnce) {
  sdl::CoverageAnalyzer cov;
  sdl::ScenarioDescription d;
  d.environment.weather = sdl::Weather::kRain;
  cov.add(d);
  EXPECT_EQ(cov.count(), 1u);
  EXPECT_EQ(cov.seen_count(sdl::Slot::kWeather,
                           static_cast<std::size_t>(sdl::Weather::kRain)),
            1u);
  EXPECT_NEAR(cov.slot_value_coverage(sdl::Slot::kWeather), 1.0 / 3.0, 1e-12);
}

TEST(CoverageTest, PairCoverageAgainstValidCombosOnly) {
  sdl::CoverageAnalyzer cov;
  // Observe one valid (road, ego) pair.
  sdl::ScenarioDescription d;
  d.environment.road_layout = sdl::RoadLayout::kIntersection4;
  d.ego_action = sdl::EgoAction::kTurnLeft;
  cov.add(d);
  const double pc =
      cov.pair_coverage(sdl::Slot::kRoadLayout, sdl::Slot::kEgoAction);
  EXPECT_GT(pc, 0.0);
  EXPECT_LT(pc, 1.0);

  // The never-valid (straight, turn_left) combo must not be in missing list
  // (it's invalid, not missing), while valid unseen combos must be.
  const auto missing =
      cov.missing_pairs(sdl::Slot::kRoadLayout, sdl::Slot::kEgoAction);
  bool has_invalid = false;
  bool has_valid_unseen = false;
  for (const auto& mp : missing) {
    if (mp.value_a == "straight" && mp.value_b == "turn_left") {
      has_invalid = true;
    }
    if (mp.value_a == "t_junction" && mp.value_b == "turn_right") {
      has_valid_unseen = true;
    }
  }
  EXPECT_FALSE(has_invalid);
  EXPECT_TRUE(has_valid_unseen);
}

TEST(CoverageTest, LargeSampleApproachesFullValueCoverage) {
  sdl::CoverageAnalyzer cov;
  tsdx::tensor::Rng rng(11);
  for (int i = 0; i < 600; ++i) cov.add(sim::sample_description(rng));
  EXPECT_EQ(cov.count(), 600u);
  // Every slot value the sampler can produce should have appeared.
  EXPECT_GT(cov.overall_value_coverage(), 0.95);
  // Pair coverage grows but includes rare combos; just check sane range.
  const double pc =
      cov.pair_coverage(sdl::Slot::kEgoAction, sdl::Slot::kActorAction);
  EXPECT_GT(pc, 0.3);
  EXPECT_LE(pc, 1.0);
}

TEST(CoverageTest, MissingPairsShrinkWithMoreData) {
  tsdx::tensor::Rng rng(12);
  sdl::CoverageAnalyzer small, big;
  for (int i = 0; i < 10; ++i) small.add(sim::sample_description(rng));
  tsdx::tensor::Rng rng2(12);
  for (int i = 0; i < 300; ++i) big.add(sim::sample_description(rng2));
  EXPECT_GE(small.missing_pairs(sdl::Slot::kRoadLayout, sdl::Slot::kEgoAction)
                .size(),
            big.missing_pairs(sdl::Slot::kRoadLayout, sdl::Slot::kEgoAction)
                .size());
}

// ---- partial specs & completion sampling ------------------------------------------------

TEST(SpecTest, EmptySpecMatchesEverything) {
  sdl::PartialScenarioSpec spec;
  EXPECT_EQ(spec.constraint_count(), 0u);
  EXPECT_TRUE(sdl::matches(spec, sdl::ScenarioDescription{}));
  EXPECT_EQ(sdl::valid_completions(spec).size(),
            sdl::all_valid_label_combinations().size());
}

TEST(SpecTest, ConstrainedSlotsFilter) {
  sdl::PartialScenarioSpec spec;
  spec.ego_action = sdl::EgoAction::kTurnLeft;
  spec.actor_type = sdl::ActorType::kPedestrian;
  EXPECT_EQ(spec.constraint_count(), 2u);

  sdl::ScenarioDescription yes;
  yes.environment.road_layout = sdl::RoadLayout::kIntersection4;
  yes.ego_action = sdl::EgoAction::kTurnLeft;
  yes.salient_actor = {sdl::ActorType::kPedestrian, sdl::ActorAction::kCross,
                       sdl::RelativePosition::kAhead};
  EXPECT_TRUE(sdl::matches(spec, yes));

  sdl::ScenarioDescription no = yes;
  no.ego_action = sdl::EgoAction::kCruise;
  EXPECT_FALSE(sdl::matches(spec, no));
}

TEST(SpecTest, CompletionsRespectGrammar) {
  // Ego turn constrains the layout to junctions in every completion.
  sdl::PartialScenarioSpec spec;
  spec.ego_action = sdl::EgoAction::kTurnRight;
  const auto completions = sdl::valid_completions(spec);
  ASSERT_FALSE(completions.empty());
  for (std::size_t i = 0; i < completions.size(); i += 101) {
    const auto d = sdl::from_slot_labels(completions[i]);
    EXPECT_TRUE(sdl::is_valid(d));
    EXPECT_TRUE(d.environment.road_layout == sdl::RoadLayout::kIntersection4 ||
                d.environment.road_layout == sdl::RoadLayout::kTJunction);
  }
}

TEST(SpecTest, UnsatisfiableSpecYieldsNothing) {
  sdl::PartialScenarioSpec spec;
  spec.actor_type = sdl::ActorType::kTruck;
  spec.actor_action = sdl::ActorAction::kCross;  // trucks cannot cross
  EXPECT_TRUE(sdl::valid_completions(spec).empty());
  tsdx::tensor::Rng rng(1);
  EXPECT_FALSE(sdl::sample_matching(spec, rng).has_value());
}

TEST(SpecTest, SampleMatchingIsValidAndMatches) {
  sdl::PartialScenarioSpec spec;
  spec.time_of_day = sdl::TimeOfDay::kNight;
  spec.actor_action = sdl::ActorAction::kCross;
  tsdx::tensor::Rng rng(2);
  for (int i = 0; i < 20; ++i) {
    const auto d = sdl::sample_matching(spec, rng);
    ASSERT_TRUE(d.has_value());
    EXPECT_TRUE(sdl::is_valid(*d));
    EXPECT_TRUE(sdl::matches(spec, *d));
    EXPECT_EQ(d->environment.time_of_day, sdl::TimeOfDay::kNight);
  }
}

TEST(SpecTest, SamplingCoversMultipleCompletions) {
  sdl::PartialScenarioSpec spec;
  spec.ego_action = sdl::EgoAction::kStop;
  spec.actor_type = sdl::ActorType::kNone;
  tsdx::tensor::Rng rng(3);
  std::set<std::string> seen;
  for (int i = 0; i < 40; ++i) {
    const auto d = sdl::sample_matching(spec, rng);
    ASSERT_TRUE(d.has_value());
    seen.insert(sdl::to_sentence(*d));
  }
  EXPECT_GT(seen.size(), 5u);  // uniform sampling over many completions
}
