// calibration_test.cpp — ECE computation and temperature scaling, plus the
// attention-pooling model variant (both post-first-release extensions).
#include <gtest/gtest.h>

#include "core/calibration.hpp"
#include "core/extractor.hpp"
#include "core/trainer.hpp"

namespace core = tsdx::core;
namespace data = tsdx::data;
namespace sdl = tsdx::sdl;
namespace sim = tsdx::sim;
namespace tt = tsdx::tensor;

// ---- ECE -------------------------------------------------------------------------

TEST(EceTest, PerfectlyCalibratedIsZero) {
  // Confidence 1.0 and always correct.
  const std::vector<float> conf(50, 1.0f);
  const std::vector<bool> correct(50, true);
  EXPECT_NEAR(core::expected_calibration_error(conf, correct), 0.0, 1e-9);
}

TEST(EceTest, OverconfidenceMeasured) {
  // Claims 0.95 confidence but only 50% correct -> ECE ~ 0.45.
  std::vector<float> conf(100, 0.95f);
  std::vector<bool> correct(100, false);
  for (std::size_t i = 0; i < 50; ++i) correct[i] = true;
  EXPECT_NEAR(core::expected_calibration_error(conf, correct), 0.45, 1e-6);
}

TEST(EceTest, BinningGroupsByConfidence) {
  // Two groups: (0.9 conf, 90% acc) and (0.6 conf, 60% acc) -> ECE 0.
  std::vector<float> conf;
  std::vector<bool> correct;
  for (int i = 0; i < 100; ++i) {
    conf.push_back(0.9f);
    correct.push_back(i < 90);
  }
  for (int i = 0; i < 100; ++i) {
    conf.push_back(0.6f);
    correct.push_back(i < 60);
  }
  EXPECT_NEAR(core::expected_calibration_error(conf, correct), 0.0, 1e-6);
}

TEST(EceTest, DegenerateInputs) {
  EXPECT_DOUBLE_EQ(core::expected_calibration_error({}, {}), 0.0);
  EXPECT_DOUBLE_EQ(core::expected_calibration_error({0.5f}, {true, false}),
                   0.0);  // size mismatch -> 0
}

// ---- temperature scaling ---------------------------------------------------------

namespace {

struct CalibFixture {
  data::Dataset train, val, test;
  std::unique_ptr<core::ScenarioExtractor> extractor;

  CalibFixture() {
    core::ModelConfig cfg = core::ModelConfig::tiny();
    sim::RenderConfig render;
    render.height = render.width = cfg.image_size;
    render.frames = cfg.frames;
    const data::Dataset ds = data::Dataset::synthesize(render, 120, 31);
    auto splits = ds.split(0.6, 0.2);
    train = std::move(splits.train);
    val = std::move(splits.val);
    test = std::move(splits.test);
    extractor = std::make_unique<core::ScenarioExtractor>(cfg, 32);
    core::TrainConfig tc;
    tc.epochs = 10;
    tc.batch_size = 8;
    extractor->train(train, val, tc);
    extractor->model().set_training(false);
  }
};

CalibFixture& fixture() {
  static CalibFixture f;
  return f;
}

}  // namespace

TEST(TemperatureTest, DefaultIsIdentity) {
  core::TemperatureScaling scaling;
  for (std::size_t s = 0; s < sdl::kNumSlots; ++s) {
    EXPECT_FLOAT_EQ(scaling.temperature(static_cast<sdl::Slot>(s)), 1.0f);
  }
}

TEST(TemperatureTest, FitProducesPositiveTemperatures) {
  auto& f = fixture();
  const auto scaling =
      core::TemperatureScaling::fit(f.extractor->model(), f.val);
  for (std::size_t s = 0; s < sdl::kNumSlots; ++s) {
    const float t = scaling.temperature(static_cast<sdl::Slot>(s));
    EXPECT_GT(t, 0.2f);
    EXPECT_LT(t, 4.1f);
  }
}

TEST(TemperatureTest, ScalingDoesNotChangeAccuracy) {
  // Temperature scaling is monotone per row: argmax (accuracy) is invariant.
  auto& f = fixture();
  const auto scaling =
      core::TemperatureScaling::fit(f.extractor->model(), f.val);
  core::TemperatureScaling identity;
  for (std::size_t s = 0; s < sdl::kNumSlots; ++s) {
    const auto slot = static_cast<sdl::Slot>(s);
    const auto raw = identity.report(f.extractor->model(), f.test, slot);
    const auto scaled = scaling.report(f.extractor->model(), f.test, slot);
    EXPECT_NEAR(raw.accuracy, scaled.accuracy, 1e-9);
  }
}

TEST(TemperatureTest, ScalingImprovesMeanEce) {
  auto& f = fixture();
  const auto scaling =
      core::TemperatureScaling::fit(f.extractor->model(), f.val);
  core::TemperatureScaling identity;
  double raw_sum = 0, scaled_sum = 0;
  for (std::size_t s = 0; s < sdl::kNumSlots; ++s) {
    const auto slot = static_cast<sdl::Slot>(s);
    raw_sum += identity.report(f.extractor->model(), f.test, slot).ece;
    scaled_sum += scaling.report(f.extractor->model(), f.test, slot).ece;
  }
  // Fit on val, measured on test: allow slack, but the mean should not
  // degrade materially.
  EXPECT_LE(scaled_sum, raw_sum + 0.02 * sdl::kNumSlots);
}

// ---- attention pooling variant ------------------------------------------------------

TEST(AttentionPoolingTest, ForwardShapeAndExtraParameter) {
  tt::Rng rng(41);
  core::ModelConfig cfg = core::ModelConfig::tiny();
  cfg.pooling = core::Pooling::kAttention;
  core::VideoTransformer attn_pool(cfg, rng);
  tt::Rng rng2(41);
  core::ModelConfig mean_cfg = core::ModelConfig::tiny();
  core::VideoTransformer mean_pool(mean_cfg, rng2);

  EXPECT_EQ(attn_pool.num_parameters(),
            mean_pool.num_parameters() + cfg.dim);

  tt::Rng data_rng(42);
  const auto clip = tt::Tensor::rand_uniform(
      {2, cfg.frames, cfg.channels, cfg.image_size, cfg.image_size}, data_rng,
      0.0f, 1.0f);
  EXPECT_EQ(attn_pool.forward(clip).shape(), (tt::Shape{2, cfg.dim}));
}

TEST(AttentionPoolingTest, GradFlowsThroughPoolQuery) {
  tt::Rng rng(43);
  core::ModelConfig cfg = core::ModelConfig::tiny();
  cfg.pooling = core::Pooling::kAttention;
  core::VideoTransformer model(cfg, rng);
  tt::Rng data_rng(44);
  const auto clip = tt::Tensor::rand_uniform(
      {1, cfg.frames, cfg.channels, cfg.image_size, cfg.image_size}, data_rng,
      0.0f, 1.0f);
  tt::sum_all(model.forward(clip)).backward();
  // Find the pool_query parameter by name and verify non-zero grad.
  bool found = false;
  for (const auto& [name, p] : model.named_parameters()) {
    if (name == "pool_query") {
      found = true;
      bool any = false;
      for (float g : p.grad()) any |= g != 0.0f;
      EXPECT_TRUE(any);
    }
  }
  EXPECT_TRUE(found);
}

TEST(AttentionPoolingTest, PoolingNameForReports) {
  EXPECT_EQ(core::to_string(core::Pooling::kMean), "mean");
  EXPECT_EQ(core::to_string(core::Pooling::kAttention), "attn_pool");
}
