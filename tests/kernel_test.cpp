// kernel_test.cpp — the compute-kernel layer's contract (see DESIGN.md
// "Compute kernels & threading model"):
//
//   1. The blocked, packed GEMM is BIT-identical to the textbook ikj loop
//      for every transpose variant, including shapes that don't divide the
//      micro-kernel or panel sizes.
//   2. Results are BIT-identical at any thread count (1, 2, 8), because work
//      partitioning is a pure function of the shape.
//   3. parallel_for covers every index exactly once, and tree_sum is both
//      deterministic and accurate.
//   4. The autograd ops routed through the kernels (matmul, matmul_nt) still
//      pass finite-difference gradchecks.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <vector>

#include "tensor/gradcheck.hpp"
#include "tensor/kernels/gemm.hpp"
#include "tensor/kernels/parallel_for.hpp"
#include "tensor/ops.hpp"
#include "tensor/rng.hpp"

namespace tt = tsdx::tensor;
namespace kn = tsdx::tensor::kernels;
namespace par = tsdx::par;
using tt::Shape;
using tt::Tensor;

namespace {

std::vector<float> random_vec(std::size_t n, std::uint64_t seed) {
  tt::Rng rng(seed);
  std::vector<float> v(n);
  for (auto& x : v) x = static_cast<float>(rng.normal());
  return v;
}

/// Textbook reference: C += op(A)·op(B) with the plain ikj loop — the same
/// ascending-k accumulation order the blocked kernel promises to preserve.
void naive_mm(kn::Trans ta, kn::Trans tb, std::int64_t m, std::int64_t k,
              std::int64_t n, const float* a, const float* b, float* c) {
  for (std::int64_t i = 0; i < m; ++i) {
    for (std::int64_t p = 0; p < k; ++p) {
      const float av = (ta == kn::Trans::kN) ? a[i * k + p] : a[p * m + i];
      for (std::int64_t j = 0; j < n; ++j) {
        const float bv = (tb == kn::Trans::kN) ? b[p * n + j] : b[j * k + p];
        c[i * n + j] += av * bv;
      }
    }
  }
}

struct MmCase {
  kn::Trans ta;
  kn::Trans tb;
  const char* name;
};

constexpr MmCase kVariants[] = {
    {kn::Trans::kN, kn::Trans::kN, "nn"},
    {kn::Trans::kN, kn::Trans::kT, "nt"},
    {kn::Trans::kT, kn::Trans::kN, "tn"},
};

// Shapes straddling every blocking boundary: below/at/above the micro-kernel
// height (4), non-dividing the KC/NC panels, and degenerate dims.
constexpr std::int64_t kDims[] = {1, 3, 17, 64, 129};

}  // namespace

TEST(GemmKernelTest, BlockedMatchesNaiveBitExact) {
  for (const MmCase& v : kVariants) {
    for (std::int64_t m : kDims) {
      for (std::int64_t k : kDims) {
        for (std::int64_t n : kDims) {
          const auto a = random_vec(static_cast<std::size_t>(m * k),
                                    1000 + static_cast<std::uint64_t>(m));
          const auto b = random_vec(static_cast<std::size_t>(k * n),
                                    2000 + static_cast<std::uint64_t>(n));
          // Non-zero C exercises the accumulate (+=) semantics.
          auto c_blocked = random_vec(static_cast<std::size_t>(m * n), 3000);
          auto c_naive = c_blocked;
          kn::mm(v.ta, v.tb, m, k, n, a.data(), b.data(), c_blocked.data());
          naive_mm(v.ta, v.tb, m, k, n, a.data(), b.data(), c_naive.data());
          for (std::size_t i = 0; i < c_blocked.size(); ++i) {
            ASSERT_EQ(c_blocked[i], c_naive[i])
                << "variant=" << v.name << " m=" << m << " k=" << k
                << " n=" << n << " at flat index " << i;
          }
        }
      }
    }
  }
}

TEST(GemmKernelTest, ThreadCountDoesNotChangeBits) {
  constexpr std::int64_t m = 129, k = 65, n = 77;
  const auto a = random_vec(static_cast<std::size_t>(m * k), 42);
  const auto b = random_vec(static_cast<std::size_t>(k * n), 43);

  std::vector<std::vector<float>> results;
  for (std::size_t threads : {1u, 2u, 8u}) {
    par::set_threads(threads);
    EXPECT_EQ(par::threads(), threads);
    std::vector<float> c(static_cast<std::size_t>(m * n), 0.0f);
    kn::mm_nn(m, k, n, a.data(), b.data(), c.data());
    results.push_back(std::move(c));
  }
  par::set_threads(1);
  for (std::size_t t = 1; t < results.size(); ++t) {
    for (std::size_t i = 0; i < results[0].size(); ++i) {
      ASSERT_EQ(results[0][i], results[t][i])
          << "thread config " << t << " diverged at flat index " << i;
    }
  }
}

TEST(GemmKernelTest, BatchedMatchesPerSliceLoopBitExact) {
  // mm_batched's contract: one dispatch, same bits as calling mm() per
  // slice — for strided B (per-head attention products), shared B (weight
  // matrices, b_stride 0) and both orientations of B, at several thread
  // counts (chunks may straddle slice boundaries only when the pool
  // partitions the row space, so thread count is part of the matrix).
  struct Case {
    kn::Trans tb;
    std::int64_t batch, m, k, n;
    bool shared;
  };
  // Attention-like tiny slices, a weight-like shared slice, and shapes that
  // leave partial chunks (m not a multiple of the micro-kernel height).
  const Case cases[] = {
      {kn::Trans::kT, 32, 17, 12, 17, false},
      {kn::Trans::kN, 32, 17, 17, 12, false},
      {kn::Trans::kN, 8, 33, 48, 48, true},
      {kn::Trans::kT, 8, 33, 48, 48, true},
      {kn::Trans::kT, 5, 129, 65, 77, false},
  };
  for (const Case& c : cases) {
    const std::int64_t b_slice = c.k * c.n;
    const auto a = random_vec(static_cast<std::size_t>(c.batch * c.m * c.k),
                              51 + static_cast<std::uint64_t>(c.batch));
    const auto b = random_vec(
        static_cast<std::size_t>((c.shared ? 1 : c.batch) * b_slice),
        52 + static_cast<std::uint64_t>(c.n));
    std::vector<float> want(static_cast<std::size_t>(c.batch * c.m * c.n),
                            0.0f);
    const std::int64_t b_stride = c.shared ? 0 : b_slice;
    for (std::int64_t g = 0; g < c.batch; ++g) {
      kn::mm(kn::Trans::kN, c.tb, c.m, c.k, c.n, a.data() + g * c.m * c.k,
             b.data() + g * b_stride, want.data() + g * c.m * c.n);
    }
    for (std::size_t threads : {1u, 2u, 8u}) {
      par::set_threads(threads);
      std::vector<float> got(want.size(), 0.0f);
      kn::mm_batched(kn::Trans::kN, c.tb, c.batch, c.m, c.k, c.n, a.data(),
                     b.data(), b_stride, got.data());
      for (std::size_t i = 0; i < want.size(); ++i) {
        ASSERT_EQ(got[i], want[i])
            << "batch=" << c.batch << " m=" << c.m << " k=" << c.k
            << " n=" << c.n << " shared=" << c.shared
            << " threads=" << threads << " at flat index " << i;
      }
    }
    par::set_threads(1);
  }
}

TEST(ParallelForTest, CoversEveryIndexExactlyOnce) {
  for (std::size_t threads : {1u, 4u}) {
    par::set_threads(threads);
    for (std::int64_t total : {1, 7, 64, 1000}) {
      for (std::int64_t grain : {1, 3, 64, 2000}) {
        std::vector<std::atomic<int>> hits(static_cast<std::size_t>(total));
        for (auto& h : hits) h.store(0);
        par::parallel_for(total, grain, [&](std::int64_t b, std::int64_t e) {
          ASSERT_LE(b, e);
          ASSERT_LE(e, total);
          for (std::int64_t i = b; i < e; ++i) {
            hits[static_cast<std::size_t>(i)].fetch_add(1);
          }
        });
        for (std::int64_t i = 0; i < total; ++i) {
          ASSERT_EQ(hits[static_cast<std::size_t>(i)].load(), 1)
              << "threads=" << threads << " total=" << total
              << " grain=" << grain << " index " << i;
        }
      }
    }
  }
  par::set_threads(1);
}

TEST(ParallelForTest, NestedCallsRunInlineWithoutDeadlock) {
  par::set_threads(4);
  std::atomic<std::int64_t> count{0};
  par::parallel_for(8, 1, [&](std::int64_t b, std::int64_t e) {
    for (std::int64_t i = b; i < e; ++i) {
      par::parallel_for(16, 4, [&](std::int64_t ib, std::int64_t ie) {
        count.fetch_add(ie - ib);
      });
    }
  });
  EXPECT_EQ(count.load(), 8 * 16);
  par::set_threads(1);
}

// Regression for the publisher-thread re-entry hole: the thread that
// publishes a fan-out owns the pool's job mutex while running its own
// chunks, and on the 1-thread budget it still owns it inside the inline
// path. A chunk fn that calls parallel_for again used to reach try_lock on
// that owned (non-recursive) mutex — undefined behaviour. The fix routes
// any nested call inline via a thread-local in-fanout flag before the lock
// is ever touched; this test drives both re-entry paths, three levels deep,
// and checks every index is covered exactly once at every level.
TEST(ParallelForTest, ParallelForNestedReentry) {
  for (std::size_t threads : {1u, 4u}) {
    par::set_threads(threads);
    constexpr std::int64_t kOuter = 6;
    constexpr std::int64_t kMid = 8;
    constexpr std::int64_t kInner = 5;
    std::vector<std::atomic<int>> hits(
        static_cast<std::size_t>(kOuter * kMid * kInner));
    for (auto& h : hits) h.store(0);
    // kMid/kInner chunk counts are > 1 so the nested calls would take the
    // pool path (and hit the owned mutex) if the in-fanout check regressed.
    par::parallel_for(kOuter, 1, [&](std::int64_t ob, std::int64_t oe) {
      for (std::int64_t o = ob; o < oe; ++o) {
        par::parallel_for(kMid, 2, [&](std::int64_t mb, std::int64_t me) {
          for (std::int64_t m = mb; m < me; ++m) {
            par::parallel_for(kInner, 1, [&](std::int64_t ib, std::int64_t ie) {
              for (std::int64_t i = ib; i < ie; ++i) {
                hits[static_cast<std::size_t>((o * kMid + m) * kInner + i)]
                    .fetch_add(1);
              }
            });
          }
        });
      }
    });
    for (std::size_t i = 0; i < hits.size(); ++i) {
      ASSERT_EQ(hits[i].load(), 1)
          << "threads=" << threads << " flat index " << i;
    }
  }
  par::set_threads(1);
}

TEST(ParallelForTest, TreeSumIsDeterministicAndAccurate) {
  const auto v = random_vec(10001, 7);
  double seq = 0.0;
  for (float x : v) seq += x;

  std::vector<double> sums;
  for (std::size_t threads : {1u, 2u, 8u}) {
    par::set_threads(threads);
    sums.push_back(
        par::tree_sum(v.data(), static_cast<std::int64_t>(v.size()), 128));
  }
  par::set_threads(1);
  // Bit-identical across thread counts; near the sequential double sum.
  EXPECT_EQ(sums[0], sums[1]);
  EXPECT_EQ(sums[0], sums[2]);
  EXPECT_NEAR(sums[0], seq, 1e-6 * v.size());
}

TEST(ParallelForTest, SuggestGrainIsShapePureAndBounded) {
  // Pure function of its arguments (same inputs, same grain) and always a
  // usable chunk size.
  EXPECT_EQ(par::suggest_grain(1000, 10), par::suggest_grain(1000, 10));
  EXPECT_GE(par::suggest_grain(1, 1), 1);
  EXPECT_GE(par::suggest_grain(1 << 20, 1), 1);
  // Expensive rows need no batching; cheap rows get grouped.
  EXPECT_EQ(par::suggest_grain(1000, 1 << 20), 1);
  EXPECT_GT(par::suggest_grain(1 << 20, 1), 1);
}

TEST(MatmulNtTest, MatchesExplicitTransposeBitExact) {
  tt::Rng rng(11);
  for (std::size_t threads : {1u, 4u}) {
    par::set_threads(threads);
    const Shape as{2, 3, 9, 5};
    const Shape bs{2, 3, 7, 5};
    Tensor a = Tensor::randn(as, rng);
    Tensor b = Tensor::randn(bs, rng);
    Tensor via_nt = tt::matmul_nt(a, b);
    Tensor via_transpose = tt::matmul(a, tt::transpose_last2(b));
    ASSERT_EQ(via_nt.shape(), via_transpose.shape());
    const auto x = via_nt.data();
    const auto y = via_transpose.data();
    for (std::size_t i = 0; i < x.size(); ++i) {
      ASSERT_EQ(x[i], y[i]) << "threads=" << threads << " index " << i;
    }
  }
  par::set_threads(1);
}

TEST(MatmulNtTest, SharedRhsMatchesExplicitTranspose) {
  tt::Rng rng(12);
  Tensor a = Tensor::randn({4, 6, 5}, rng);
  Tensor b = Tensor::randn({3, 5}, rng);  // shared [N, K]
  Tensor via_nt = tt::matmul_nt(a, b);
  Tensor via_transpose = tt::matmul(a, tt::transpose_last2(b));
  const auto x = via_nt.data();
  const auto y = via_transpose.data();
  ASSERT_EQ(x.size(), y.size());
  for (std::size_t i = 0; i < x.size(); ++i) ASSERT_EQ(x[i], y[i]);
}

TEST(KernelGradTest, MatmulPathsPassGradcheck) {
  struct Case {
    const char* name;
    Shape a, b;
    bool nt;
  };
  const Case cases[] = {
      {"SharedRhs", {3, 4, 5}, {5, 6}, false},
      {"Batched", {2, 3, 4}, {2, 4, 5}, false},
      {"OddShapes", {1, 7, 9}, {9, 3}, false},
      {"NtBatched", {2, 3, 4}, {2, 6, 4}, true},
      {"NtSharedRhs", {3, 4, 5}, {6, 5}, true},
  };
  tt::Rng rng(21);
  for (const Case& c : cases) {
    std::vector<Tensor> inputs;
    inputs.push_back(Tensor::randn(c.a, rng, 1.0f, /*requires_grad=*/true));
    inputs.push_back(Tensor::randn(c.b, rng, 1.0f, /*requires_grad=*/true));
    const bool nt = c.nt;
    auto result = tt::grad_check(
        [nt](const std::vector<Tensor>& in) {
          Tensor y = nt ? tt::matmul_nt(in[0], in[1])
                        : tt::matmul(in[0], in[1]);
          return tt::sum_all(tt::mul(y, y));
        },
        std::move(inputs));
    EXPECT_TRUE(result.ok) << c.name << ": " << result.detail;
  }
}

TEST(KernelGradTest, MatmulBackwardThreadCountInvariant) {
  // Gradients must also be bit-identical at any thread count: the backward
  // GEMMs partition over output rows exactly like the forward.
  const Shape as{4, 9, 7};
  const Shape bs{7, 5};
  std::vector<std::vector<float>> ga_runs, gb_runs;
  for (std::size_t threads : {1u, 8u}) {
    par::set_threads(threads);
    tt::Rng rng(33);
    Tensor a = Tensor::randn(as, rng, 1.0f, /*requires_grad=*/true);
    Tensor b = Tensor::randn(bs, rng, 1.0f, /*requires_grad=*/true);
    Tensor loss = tt::sum_all(tt::matmul(a, b));
    loss.backward();
    ga_runs.emplace_back(a.grad().begin(), a.grad().end());
    gb_runs.emplace_back(b.grad().begin(), b.grad().end());
  }
  par::set_threads(1);
  ASSERT_EQ(ga_runs[0].size(), ga_runs[1].size());
  for (std::size_t i = 0; i < ga_runs[0].size(); ++i) {
    ASSERT_EQ(ga_runs[0][i], ga_runs[1][i]) << "dA index " << i;
  }
  ASSERT_EQ(gb_runs[0].size(), gb_runs[1].size());
  for (std::size_t i = 0; i < gb_runs[0].size(); ++i) {
    ASSERT_EQ(gb_runs[0][i], gb_runs[1][i]) << "dB index " << i;
  }
}
