// router_test.cpp — the sharded replica router: deterministic least-loaded
// dispatch, per-tenant admission (token bucket + weighted fair in-flight
// shares), replica-kill failover with zero lost futures, deadline-aware
// retries that never extend the original deadline, health-probe heal, and
// the fully-dark-fleet degraded path. Faults are scheduled through
// fault::ReplicaPlan (replica-scoped, keyed on ServerConfig::fault_domain)
// so the same replicas die at the same dispatches on every run — this
// binary runs directly under the CI ThreadSanitizer job with
// TSDX_LOCK_ORDER=1.
#include <gtest/gtest.h>

#include <array>
#include <chrono>
#include <future>
#include <memory>
#include <thread>
#include <vector>

#include "core/extractor.hpp"
#include "obs/metrics.hpp"
#include "sdl/description.hpp"
#include "serve/admission.hpp"
#include "serve/error.hpp"
#include "serve/fallback.hpp"
#include "serve/fault/inject.hpp"
#include "serve/router.hpp"
#include "sim/clipgen.hpp"

namespace core = tsdx::core;
namespace obs = tsdx::obs;
namespace sdl = tsdx::sdl;
namespace serve = tsdx::serve;
namespace fault = tsdx::serve::fault;
namespace sim = tsdx::sim;

using Clock = serve::Router::Clock;

namespace {

core::ModelConfig micro_config() {
  core::ModelConfig cfg;
  cfg.frames = 2;
  cfg.image_size = 8;
  cfg.patch_size = 4;
  cfg.tubelet_frames = 1;
  cfg.dim = 8;
  cfg.depth = 1;
  cfg.heads = 2;
  cfg.attention = core::AttentionKind::kDividedST;
  return cfg;
}

std::shared_ptr<core::ScenarioExtractor> make_frozen_extractor(
    std::uint64_t seed = 7) {
  auto extractor =
      std::make_shared<core::ScenarioExtractor>(micro_config(), seed);
  extractor->freeze();
  return extractor;
}

std::vector<sim::VideoClip> make_clips(std::size_t count,
                                       std::uint64_t seed = 11) {
  const core::ModelConfig cfg = micro_config();
  sim::RenderConfig render;
  render.height = render.width = cfg.image_size;
  render.frames = cfg.frames;
  sim::ClipGenerator gen(render, seed);
  std::vector<sim::VideoClip> clips;
  clips.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    clips.push_back(gen.generate().video);
  }
  return clips;
}

std::shared_ptr<serve::MajorityFallback> make_fallback() {
  sdl::SlotLabels labels{};
  std::array<float, sdl::kNumSlots> confidence{};
  confidence.fill(1.0f);
  return std::make_shared<serve::MajorityFallback>(labels, confidence);
}

bool is_degraded(const core::ExtractionResult& result) {
  return !result.warnings.empty() &&
         result.warnings.front() == serve::kDegradedWarning;
}

/// Replicas of one worker, batches of one, no batching window: each
/// replica's extract dispatch N is exactly its Nth request, so
/// ReplicaPlan call indices map 1:1 to per-replica requests.
serve::RouterConfig sequential_router(std::size_t replicas) {
  serve::RouterConfig cfg;
  cfg.replicas = replicas;
  cfg.server.workers = 1;
  cfg.server.max_batch = 1;
  cfg.server.batch_window = std::chrono::microseconds{0};
  cfg.server.queue_capacity = 8;
  cfg.metrics = std::make_shared<obs::Registry>();
  return cfg;
}

/// Inline-mode fleet: workers = 0, so nothing resolves until drain() — the
/// router's view of per-replica load is frozen between submits, which makes
/// the least-loaded pick sequence exactly reproducible.
serve::RouterConfig inline_router(std::size_t replicas) {
  serve::RouterConfig cfg = sequential_router(replicas);
  cfg.server.workers = 0;
  return cfg;
}

}  // namespace

// ---- dispatch policy ------------------------------------------------------------

// With workers = 0 no request resolves between submits, so the least-loaded
// pick is a pure function of the queue the previous submits built: equal
// load ties break to the lowest index, and each dispatch alternates the
// fleet deterministically.
TEST(RouterTest, LeastLoadedDispatchAlternatesDeterministically) {
  serve::Router router(make_frozen_extractor(), inline_router(2));
  const auto clips = make_clips(6);

  std::vector<std::future<core::ExtractionResult>> futures;
  for (const auto& clip : clips) futures.push_back(router.submit(clip));

  // Submits 1,3,5 land on replica0 (ties -> lowest index), 2,4,6 on
  // replica1 (strictly less loaded after each odd submit).
  auto& registry = router.metrics_registry();
  EXPECT_EQ(registry.counter("route.replica_dispatched.0").value(), 3u);
  EXPECT_EQ(registry.counter("route.replica_dispatched.1").value(), 3u);

  router.drain();
  for (auto& future : futures) EXPECT_FALSE(is_degraded(future.get()));
  const serve::RouterStats stats = router.stats();
  EXPECT_EQ(stats.admitted, 6u);
  EXPECT_EQ(stats.completed, 6u);
  EXPECT_EQ(stats.failed, 0u);
  EXPECT_EQ(stats.retries, 0u);
  EXPECT_EQ(stats.pending, 0u);
}

// Plain happy path through live workers, with the route.* series visible in
// both metric exports.
TEST(RouterTest, HealthyFleetServesPrimaryAnswers) {
  serve::Router router(make_frozen_extractor(), sequential_router(2));
  const auto clips = make_clips(4);

  std::vector<std::future<core::ExtractionResult>> futures;
  for (const auto& clip : clips) futures.push_back(router.submit(clip));
  for (auto& future : futures) EXPECT_FALSE(is_degraded(future.get()));
  router.drain();

  const serve::RouterStats stats = router.stats();
  EXPECT_EQ(stats.completed, 4u);
  EXPECT_EQ(stats.failed, 0u);
  EXPECT_EQ(stats.degraded, 0u);
  EXPECT_EQ(stats.pending, 0u);
  EXPECT_EQ(stats.replica_states.size(), 2u);
  EXPECT_NE(router.metrics_json().find("route.completed"), std::string::npos);
  EXPECT_NE(router.metrics_text().find("route_completed 4"),
            std::string::npos);
}

// ---- admission control ----------------------------------------------------------

// Weighted fair in-flight shares: once the fleet is congested
// (congestion_window in flight), tenant A (weight 3) keeps 3 of 4 slots and
// tenant B (weight 1) keeps 1 — further submits from either are rejected
// with a typed error and counted per tenant, without touching any queue.
TEST(RouterTest, CongestedFleetEnforcesWeightedFairShares) {
  serve::RouterConfig cfg = inline_router(1);
  cfg.admission.congestion_window = 4;
  cfg.admission.tenants = {{"A", 3.0}, {"B", 1.0}};
  serve::Router router(make_frozen_extractor(), cfg);
  const auto clips = make_clips(1);

  std::vector<std::future<core::ExtractionResult>> futures;
  futures.push_back(router.submit(clips[0], std::nullopt, "A"));
  futures.push_back(router.submit(clips[0], std::nullopt, "A"));
  futures.push_back(router.submit(clips[0], std::nullopt, "A"));
  futures.push_back(router.submit(clips[0], std::nullopt, "B"));

  // 4 in flight = the congestion window: both tenants sit at their caps.
  EXPECT_THROW(router.submit(clips[0], std::nullopt, "A"),
               serve::AdmissionRejectedError);
  EXPECT_THROW(router.submit(clips[0], std::nullopt, "B"),
               serve::AdmissionRejectedError);

  EXPECT_EQ(router.admission().tenant_admitted("A"), 3u);
  EXPECT_EQ(router.admission().tenant_rejected("A"), 1u);
  EXPECT_EQ(router.admission().tenant_admitted("B"), 1u);
  EXPECT_EQ(router.admission().tenant_rejected("B"), 1u);

  router.drain();
  for (auto& future : futures) EXPECT_NO_THROW(future.get());
  const serve::RouterStats stats = router.stats();
  EXPECT_EQ(stats.admitted, 4u);
  EXPECT_EQ(stats.shed, 2u);
  EXPECT_EQ(stats.completed, 4u);
}

// Token buckets with caller-supplied clocks: the aggregate refill is split
// by weight (A:4x over B), bursts are bounded by the bucket depth, and the
// refill after exactly 0.5 s restores exactly rate x 0.5 tokens.
TEST(RouterTest, TokenBucketSplitsAggregateRateByWeight) {
  obs::Registry registry;
  serve::AdmissionConfig cfg;
  cfg.aggregate_rate_per_s = 10.0;
  cfg.burst_seconds = 0.5;
  cfg.tenants = {{"A", 4.0}, {"B", 1.0}};
  serve::AdmissionController admission(cfg, registry);

  const auto t0 = Clock::now();
  // A: rate 8/s, depth 4. B: rate 2/s, depth max(1, 1) = 1.
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(admission.admit("A", t0), serve::AdmitVerdict::kAdmitted);
  }
  EXPECT_EQ(admission.admit("A", t0), serve::AdmitVerdict::kRateLimited);
  EXPECT_EQ(admission.admit("B", t0), serve::AdmitVerdict::kAdmitted);
  EXPECT_EQ(admission.admit("B", t0), serve::AdmitVerdict::kRateLimited);

  const auto t1 = t0 + std::chrono::milliseconds(500);
  // Refill: A earns 8 x 0.5 = 4 tokens, B earns 2 x 0.5 = 1.
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(admission.admit("A", t1), serve::AdmitVerdict::kAdmitted);
  }
  EXPECT_EQ(admission.admit("A", t1), serve::AdmitVerdict::kRateLimited);
  EXPECT_EQ(admission.admit("B", t1), serve::AdmitVerdict::kAdmitted);
  EXPECT_EQ(admission.admit("B", t1), serve::AdmitVerdict::kRateLimited);

  EXPECT_EQ(admission.admitted(), 10u);
  EXPECT_EQ(admission.rejected(), 4u);
  EXPECT_EQ(admission.in_flight(), 10u);
  for (int i = 0; i < 6; ++i) admission.on_done("A");
  for (int i = 0; i < 2; ++i) admission.on_done("B");
  EXPECT_EQ(admission.in_flight(), 2u);
}

// Tenants need no pre-registration: an unknown tenant is admitted at
// default_weight, and its arrival renormalizes everyone's share of the
// aggregate refill.
TEST(RouterTest, UnknownTenantsGetDefaultWeightAndRenormalizeRates) {
  obs::Registry registry;
  serve::AdmissionConfig cfg;
  cfg.aggregate_rate_per_s = 6.0;
  cfg.burst_seconds = 1.0;
  serve::AdmissionController admission(cfg, registry);

  const auto t0 = Clock::now();
  // Alone, tenant x owns the whole 6/s budget: bucket depth 6.
  for (int i = 0; i < 6; ++i) {
    EXPECT_EQ(admission.admit("x", t0), serve::AdmitVerdict::kAdmitted);
  }
  EXPECT_EQ(admission.admit("x", t0), serve::AdmitVerdict::kRateLimited);

  // Tenant y appears (default weight): the budget now splits 3/s each.
  EXPECT_EQ(admission.admit("y", t0), serve::AdmitVerdict::kAdmitted);

  const auto t1 = t0 + std::chrono::seconds(1);
  // x refills at its renormalized 3/s and its depth shrank to 3.
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(admission.admit("x", t1), serve::AdmitVerdict::kAdmitted);
  }
  EXPECT_EQ(admission.admit("x", t1), serve::AdmitVerdict::kRateLimited);
}

// ---- failover & retries ---------------------------------------------------------

// A replica-scoped kill plan murders replica0's every dispatch: the first
// attempt fails there, the retry spends a budget token, backs off, and fails
// over to replica1 — one retry, one failover, zero lost requests.
TEST(RouterTest, ReplicaKillFailsOverToHealthySibling) {
  serve::Router router(make_frozen_extractor(), sequential_router(2));
  const auto clips = make_clips(1);

  fault::FaultPlan plan;
  plan.replica_plans = {{/*domain=*/0, /*kill_from_call=*/1, {}, {}}};
  fault::ScopedFaultPlan armed(plan);

  // Both replicas idle -> the tie-break targets replica0 first.
  auto future = router.submit(clips[0]);
  EXPECT_FALSE(is_degraded(future.get()));
  router.drain();

  const serve::RouterStats stats = router.stats();
  EXPECT_EQ(stats.completed, 1u);
  EXPECT_EQ(stats.failed, 0u);
  EXPECT_EQ(stats.retries, 1u);
  EXPECT_EQ(stats.failovers, 1u);
  auto& registry = router.metrics_registry();
  EXPECT_EQ(registry.counter("route.replica_failures.0").value(), 1u);
  EXPECT_EQ(registry.counter("route.retries").value(), 1u);
}

// Deadline propagation through retries: the retried request keeps the
// ORIGINAL submit_within deadline. When the remaining budget cannot cover
// backoff + retry_cost_floor, the router fails fast with
// DeadlineExceededError instead of burning a doomed attempt.
TEST(RouterTest, InsufficientDeadlineBudgetFailsFastWithoutRetry) {
  serve::RouterConfig cfg = sequential_router(2);
  cfg.retry_backoff = std::chrono::microseconds(50000);      // 50 ms
  cfg.retry_backoff_cap = std::chrono::microseconds(50000);
  cfg.retry_cost_floor = std::chrono::microseconds(10000);   // 10 ms
  serve::Router router(make_frozen_extractor(), cfg);
  const auto clips = make_clips(1);

  fault::FaultPlan plan;
  plan.replica_plans = {{/*domain=*/0, /*kill_from_call=*/1, {}, {}},
                        {/*domain=*/1, /*kill_from_call=*/1, {}, {}}};
  fault::ScopedFaultPlan armed(plan);

  // 20 ms of budget can never fit a >= 25 ms backoff + 10 ms floor: after
  // the first attempt fails, the router must fail fast — with the deadline
  // error, not the injected fault — and never extend the deadline.
  auto future =
      router.submit_within(clips[0], std::chrono::milliseconds(20));
  EXPECT_THROW(future.get(), serve::DeadlineExceededError);
  router.drain();

  const serve::RouterStats stats = router.stats();
  EXPECT_EQ(stats.retries, 0u);
  EXPECT_EQ(stats.failed, 1u);
  EXPECT_EQ(stats.completed, 0u);
}

// A replica that stalls mid-extract past the deadline + grace is abandoned:
// the request fails with DeadlineExceededError at roughly the deadline (not
// after the full stall), and the stall is charged to the replica's failure
// streak.
TEST(RouterTest, WedgedReplicaIsAbandonedAtTheDeadline) {
  serve::Router router(make_frozen_extractor(), sequential_router(1));
  const auto clips = make_clips(1);

  fault::FaultPlan plan;
  fault::ReplicaPlan wedge;
  wedge.domain = 0;
  wedge.stall_on_calls = {1};
  wedge.stall = std::chrono::microseconds(200000);  // 200 ms
  plan.replica_plans = {wedge};
  fault::ScopedFaultPlan armed(plan);

  const auto start = Clock::now();
  auto future = router.submit_within(clips[0], std::chrono::milliseconds(20));
  EXPECT_THROW(future.get(), serve::DeadlineExceededError);
  const auto elapsed = Clock::now() - start;
  EXPECT_LT(elapsed, std::chrono::milliseconds(150));  // not the full stall

  router.drain();  // waits out the stalled batch inside the replica
  auto& registry = router.metrics_registry();
  EXPECT_EQ(registry.counter("route.replica_failures.0").value(), 1u);
  EXPECT_EQ(router.stats().failed, 1u);
}

// Mid-stream replica death under concurrent load: replica0 hard-dies after
// its 2nd dispatch; every one of the 12 requests must still resolve exactly
// once, successfully, via retry + failover, and replica0 must end DOWN.
TEST(RouterTest, MidStreamReplicaDeathLosesNothing) {
  serve::RouterConfig cfg = sequential_router(2);
  cfg.retry_budget_floor = 16.0;  // ample: this test is about failover
  cfg.down_after_failures = 3;
  cfg.heal_backoff = std::chrono::seconds(30);  // no passive heal mid-test
  serve::Router router(make_frozen_extractor(), cfg);
  const auto clips = make_clips(1);

  fault::FaultPlan plan;
  plan.replica_plans = {{/*domain=*/0, /*kill_from_call=*/3, {}, {}}};
  fault::ScopedFaultPlan armed(plan);

  std::vector<std::future<core::ExtractionResult>> futures;
  for (int i = 0; i < 12; ++i) futures.push_back(router.submit(clips[0]));
  std::size_t ok = 0;
  for (auto& future : futures) {
    EXPECT_NO_THROW(future.get());
    ++ok;
  }
  router.drain();

  EXPECT_EQ(ok, 12u);
  const serve::RouterStats stats = router.stats();
  EXPECT_EQ(stats.completed, 12u);
  EXPECT_EQ(stats.failed, 0u);
  EXPECT_EQ(stats.pending, 0u);
  EXPECT_GE(stats.retries, 1u);
  EXPECT_EQ(router.replica_state(0), serve::ReplicaState::kDown);
  EXPECT_EQ(router.replica_state(1), serve::ReplicaState::kUp);
}

// ---- fleet-dark degradation -----------------------------------------------------

// Every replica killed + a fleet fallback: the router answers degraded
// (kDegradedWarning) instead of failing — robustness floor intact.
TEST(RouterTest, FullyDarkFleetDegradesToFallback) {
  serve::RouterConfig cfg = sequential_router(2);
  cfg.fallback = make_fallback();
  serve::Router router(make_frozen_extractor(), cfg);
  const auto clips = make_clips(1);

  router.kill_replica(0);
  router.kill_replica(1);
  EXPECT_EQ(router.replica_state(0), serve::ReplicaState::kDown);
  EXPECT_EQ(router.replica_state(1), serve::ReplicaState::kDown);

  const core::ExtractionResult result = router.submit(clips[0]).get();
  EXPECT_TRUE(is_degraded(result));
  router.drain();

  const serve::RouterStats stats = router.stats();
  EXPECT_EQ(stats.completed, 1u);
  EXPECT_EQ(stats.degraded, 1u);
  EXPECT_EQ(stats.failed, 0u);
}

// The same dark fleet without a fallback fails typed: the caller can tell
// "the fleet is gone" from every other failure mode.
TEST(RouterTest, FullyDarkFleetWithoutFallbackFailsTyped) {
  serve::Router router(make_frozen_extractor(), sequential_router(2));
  const auto clips = make_clips(1);

  router.kill_replica(0);
  router.kill_replica(1);
  auto future = router.submit(clips[0]);
  EXPECT_THROW(future.get(), serve::NoReplicaAvailableError);
  router.drain();
  EXPECT_EQ(router.stats().failed, 1u);
}

// kill + revive round trip: traffic steers away from the killed replica and
// returns to it after revive (ties break back to index 0).
TEST(RouterTest, ReviveRestoresKilledReplicaToRotation) {
  serve::Router router(make_frozen_extractor(), sequential_router(2));
  const auto clips = make_clips(1);
  auto& registry = router.metrics_registry();

  EXPECT_NO_THROW(router.submit(clips[0]).get());  // idle tie -> replica0
  EXPECT_EQ(registry.counter("route.replica_dispatched.0").value(), 1u);

  router.kill_replica(0);
  EXPECT_NO_THROW(router.submit(clips[0]).get());  // only replica1 remains
  EXPECT_EQ(registry.counter("route.replica_dispatched.1").value(), 1u);

  router.revive_replica(0);
  EXPECT_EQ(router.replica_state(0), serve::ReplicaState::kUp);
  EXPECT_NO_THROW(router.submit(clips[0]).get());  // idle tie -> replica0
  EXPECT_EQ(registry.counter("route.replica_dispatched.0").value(), 2u);
  router.drain();
  EXPECT_EQ(router.stats().completed, 3u);
}

// ---- health probes --------------------------------------------------------------

// A replica demoted DOWN by a fault streak is readmitted by an active heal
// probe once the fault script is disarmed — and serves primary traffic
// again.
TEST(RouterTest, HealthProbeReadmitsRecoveredReplica) {
  serve::RouterConfig cfg = sequential_router(2);
  cfg.down_after_failures = 3;
  cfg.probe_interval = std::chrono::milliseconds(10);
  cfg.probe_clip = make_clips(1, /*seed=*/23)[0];
  cfg.retry_budget_floor = 16.0;
  serve::Router router(make_frozen_extractor(), cfg);
  const auto clips = make_clips(1);

  {
    fault::FaultPlan plan;
    plan.replica_plans = {{/*domain=*/0, /*kill_from_call=*/1, {}, {}}};
    fault::ScopedFaultPlan armed(plan);
    // Three sequential requests: each first targets idle replica0, fails
    // there (streak 1..3), and fails over to replica1.
    for (int i = 0; i < 3; ++i) {
      EXPECT_NO_THROW(router.submit(clips[0]).get());
    }
    EXPECT_EQ(router.replica_state(0), serve::ReplicaState::kDown);
  }  // plan disarmed: replica0's server is healthy again

  // The probe thread submits probe_clip to the DOWN replica and marks it UP
  // on success. Bounded wait: 10 ms cadence, give it 5 s of slack.
  const auto give_up = Clock::now() + std::chrono::seconds(5);
  while (router.replica_state(0) != serve::ReplicaState::kUp &&
         Clock::now() < give_up) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_EQ(router.replica_state(0), serve::ReplicaState::kUp);

  EXPECT_NO_THROW(router.submit(clips[0]).get());
  router.drain();
  EXPECT_EQ(router.stats().failed, 0u);
}
