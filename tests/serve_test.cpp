// serve_test.cpp — the tsdx::serve runtime: micro-batched results must be
// bit-identical to sequential extract(), backpressure policies must do what
// they say, drain must complete everything, and nothing may be lost or
// duplicated under concurrent producers (this file is a primary target of
// the CI ThreadSanitizer job).
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <future>
#include <optional>
#include <thread>
#include <vector>

#include "core/extractor.hpp"
#include "serve/queue.hpp"
#include "serve/server.hpp"
#include "serve/stats.hpp"
#include "serve/thread_pool.hpp"
#include "sim/clipgen.hpp"

namespace core = tsdx::core;
namespace serve = tsdx::serve;
namespace sim = tsdx::sim;

namespace {

core::ModelConfig micro_config() {
  core::ModelConfig cfg;
  cfg.frames = 2;
  cfg.image_size = 8;
  cfg.patch_size = 4;
  cfg.tubelet_frames = 1;
  cfg.dim = 8;
  cfg.depth = 1;
  cfg.heads = 2;
  cfg.dropout = 0.1f;  // exercises the inference-path RNG guard
  cfg.attention = core::AttentionKind::kDividedST;
  return cfg;
}

std::shared_ptr<core::ScenarioExtractor> make_frozen_extractor(
    std::uint64_t seed = 7) {
  auto extractor = std::make_shared<core::ScenarioExtractor>(micro_config(),
                                                             seed);
  extractor->freeze();
  return extractor;
}

std::vector<sim::VideoClip> make_clips(std::size_t count,
                                       std::uint64_t seed = 11) {
  const core::ModelConfig cfg = micro_config();
  sim::RenderConfig render;
  render.height = render.width = cfg.image_size;
  render.frames = cfg.frames;
  sim::ClipGenerator gen(render, seed);
  std::vector<sim::VideoClip> clips;
  clips.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    clips.push_back(gen.generate().video);
  }
  return clips;
}

/// Bit-identical result comparison: same labels, same confidences (exact
/// float equality), same validation warnings.
void expect_identical(const core::ExtractionResult& a,
                      const core::ExtractionResult& b) {
  EXPECT_EQ(a.description, b.description);
  for (std::size_t s = 0; s < tsdx::sdl::kNumSlots; ++s) {
    EXPECT_EQ(a.confidence[s], b.confidence[s]) << "slot " << s;
  }
  EXPECT_EQ(a.warnings, b.warnings);
}

serve::ServerConfig config_with(std::size_t workers, std::size_t max_batch,
                                std::size_t capacity,
                                serve::OverflowPolicy policy) {
  serve::ServerConfig cfg;
  cfg.workers = workers;
  cfg.max_batch = max_batch;
  cfg.queue_capacity = capacity;
  cfg.overflow = policy;
  return cfg;
}

}  // namespace

// ---- equivalence with the sequential path ---------------------------------------

// The micro-batcher stacks several clips into one forward pass; every
// per-clip result must be bit-identical to a batch-of-1 extract() of the
// same clip. workers=0 + drain() forms maximal batches deterministically.
TEST(ServeEquivalenceTest, BatchedInlineMatchesSequential) {
  auto extractor = make_frozen_extractor();
  const auto clips = make_clips(12);

  std::vector<core::ExtractionResult> expected;
  for (const auto& clip : clips) expected.push_back(extractor->extract(clip));

  serve::InferenceServer server(
      extractor, config_with(/*workers=*/0, /*max_batch=*/4,
                             /*capacity=*/64, serve::OverflowPolicy::kBlock));
  std::vector<std::future<core::ExtractionResult>> futures;
  for (const auto& clip : clips) futures.push_back(server.submit(clip));
  server.drain();

  for (std::size_t i = 0; i < clips.size(); ++i) {
    expect_identical(futures[i].get(), expected[i]);
  }
  const serve::ServerStats stats = server.stats();
  EXPECT_EQ(stats.completed, clips.size());
  // workers=0: everything was queued when drain() ran, so batches are full.
  EXPECT_EQ(stats.batches(), 3u);
  EXPECT_EQ(stats.batch_size_counts[4], 3u);
}

TEST(ServeEquivalenceTest, ThreadedServerMatchesSequential) {
  auto extractor = make_frozen_extractor();
  const auto clips = make_clips(16);

  std::vector<core::ExtractionResult> expected;
  for (const auto& clip : clips) expected.push_back(extractor->extract(clip));

  serve::InferenceServer server(
      extractor, config_with(/*workers=*/2, /*max_batch=*/4,
                             /*capacity=*/64, serve::OverflowPolicy::kBlock));
  std::vector<std::future<core::ExtractionResult>> futures;
  for (const auto& clip : clips) futures.push_back(server.submit(clip));
  server.drain();

  for (std::size_t i = 0; i < clips.size(); ++i) {
    expect_identical(futures[i].get(), expected[i]);
  }
}

// Regression for the inference-path RNG hazard: even on a model left in
// training mode, no-grad extraction must not touch the shared dropout Rng —
// concurrent extract() calls must equal the sequential results exactly.
TEST(ServeEquivalenceTest, ConcurrentExtractOnTrainingModeModelIsDeterministic) {
  auto extractor =
      std::make_shared<core::ScenarioExtractor>(micro_config(), /*seed=*/7);
  ASSERT_TRUE(extractor->model().training());  // deliberately NOT frozen
  const auto clips = make_clips(4);

  std::vector<core::ExtractionResult> sequential;
  for (const auto& clip : clips) sequential.push_back(extractor->extract(clip));

  std::vector<core::ExtractionResult> concurrent(clips.size());
  serve::ThreadPool::run(clips.size(), [&](std::size_t i) {
    concurrent[i] = extractor->extract(clips[i]);
  });

  for (std::size_t i = 0; i < clips.size(); ++i) {
    expect_identical(concurrent[i], sequential[i]);
  }
  // And re-running sequentially still matches: extraction consumed no RNG.
  for (std::size_t i = 0; i < clips.size(); ++i) {
    expect_identical(extractor->extract(clips[i]), sequential[i]);
  }
}

// ---- backpressure policies ------------------------------------------------------

TEST(ServeBackpressureTest, ServerRequiresFrozenModel) {
  auto extractor =
      std::make_shared<core::ScenarioExtractor>(micro_config(), /*seed=*/7);
  EXPECT_THROW(serve::InferenceServer(extractor, serve::ServerConfig{}),
               tsdx::ValueError);
}

TEST(ServeBackpressureTest, RejectPolicyThrowsQueueFull) {
  auto extractor = make_frozen_extractor();
  const auto clips = make_clips(3);
  serve::InferenceServer server(
      extractor, config_with(/*workers=*/0, /*max_batch=*/8,
                             /*capacity=*/2, serve::OverflowPolicy::kReject));

  auto f0 = server.submit(clips[0]);
  auto f1 = server.submit(clips[1]);
  EXPECT_THROW(server.submit(clips[2]), serve::QueueFullError);
  EXPECT_EQ(server.stats().rejected, 1u);
  EXPECT_EQ(server.stats().submitted, 2u);

  server.drain();  // the two accepted requests still complete
  EXPECT_NO_THROW(f0.get());
  EXPECT_NO_THROW(f1.get());
}

TEST(ServeBackpressureTest, ShedOldestEvictsFrontAndFailsItsFuture) {
  auto extractor = make_frozen_extractor();
  const auto clips = make_clips(3);
  serve::InferenceServer server(
      extractor,
      config_with(/*workers=*/0, /*max_batch=*/8,
                  /*capacity=*/2, serve::OverflowPolicy::kShedOldest));

  auto f0 = server.submit(clips[0]);
  auto f1 = server.submit(clips[1]);
  auto f2 = server.submit(clips[2]);  // evicts request 0
  EXPECT_EQ(server.queue_depth(), 2u);
  EXPECT_THROW(f0.get(), serve::QueueFullError);
  EXPECT_EQ(server.stats().shed, 1u);

  server.drain();  // survivors complete normally
  EXPECT_NO_THROW(f1.get());
  EXPECT_NO_THROW(f2.get());
  EXPECT_EQ(server.stats().completed, 2u);
}

TEST(ServeBackpressureTest, BlockPolicyLosesNothingUnderPressure) {
  auto extractor = make_frozen_extractor();
  const auto clips = make_clips(4);
  // Capacity 2 with 2 workers: producers must repeatedly wait for space.
  serve::InferenceServer server(
      extractor, config_with(/*workers=*/2, /*max_batch=*/2,
                             /*capacity=*/2, serve::OverflowPolicy::kBlock));
  constexpr std::size_t kRequests = 24;
  std::vector<std::future<core::ExtractionResult>> futures;
  for (std::size_t i = 0; i < kRequests; ++i) {
    futures.push_back(server.submit(clips[i % clips.size()]));
  }
  server.drain();
  for (auto& f : futures) EXPECT_NO_THROW(f.get());
  const serve::ServerStats stats = server.stats();
  EXPECT_EQ(stats.completed, kRequests);
  EXPECT_LE(stats.queue_depth_max, 2u);
}

// ---- lifecycle ------------------------------------------------------------------

TEST(ServeLifecycleTest, DrainCompletesEverythingThenRefusesSubmit) {
  auto extractor = make_frozen_extractor();
  const auto clips = make_clips(2);
  serve::InferenceServer server(
      extractor, config_with(/*workers=*/2, /*max_batch=*/4,
                             /*capacity=*/64, serve::OverflowPolicy::kBlock));
  std::vector<std::future<core::ExtractionResult>> futures;
  for (std::size_t i = 0; i < 10; ++i) {
    futures.push_back(server.submit(clips[i % clips.size()]));
  }
  server.drain();
  for (auto& f : futures) {
    ASSERT_EQ(f.wait_for(std::chrono::seconds(0)), std::future_status::ready);
    EXPECT_NO_THROW(f.get());
  }
  EXPECT_EQ(server.stats().completed, 10u);
  EXPECT_EQ(server.queue_depth(), 0u);
  EXPECT_THROW(server.submit(clips[0]), serve::ServerStoppedError);
}

TEST(ServeLifecycleTest, ShutdownCancelsQueuedRequests) {
  auto extractor = make_frozen_extractor();
  const auto clips = make_clips(3);
  serve::InferenceServer server(
      extractor, config_with(/*workers=*/0, /*max_batch=*/8,
                             /*capacity=*/8, serve::OverflowPolicy::kBlock));
  auto f0 = server.submit(clips[0]);
  auto f1 = server.submit(clips[1]);
  server.shutdown();
  EXPECT_THROW(f0.get(), serve::ServerStoppedError);
  EXPECT_THROW(f1.get(), serve::ServerStoppedError);
  EXPECT_EQ(server.stats().cancelled, 2u);
  EXPECT_THROW(server.submit(clips[2]), serve::ServerStoppedError);
  server.shutdown();  // idempotent
}

// A clip whose geometry the model rejects must fail only its own future —
// via the model's typed exception — and never take down a worker.
TEST(ServeLifecycleTest, ModelErrorPropagatesThroughFuture) {
  auto extractor = make_frozen_extractor();
  serve::InferenceServer server(
      extractor, config_with(/*workers=*/1, /*max_batch=*/4,
                             /*capacity=*/8, serve::OverflowPolicy::kBlock));
  sim::VideoClip bad;
  bad.frames = 1;  // model expects 2 frames
  bad.height = bad.width = 8;
  bad.data.assign(static_cast<std::size_t>(1 * sim::kNumChannels * 8 * 8),
                  0.5f);
  auto bad_future = server.submit(bad);
  EXPECT_THROW(bad_future.get(), std::invalid_argument);

  // The worker survives and serves the next request.
  const auto clips = make_clips(1);
  auto good_future = server.submit(clips[0]);
  server.drain();
  EXPECT_NO_THROW(good_future.get());
  const serve::ServerStats stats = server.stats();
  EXPECT_EQ(stats.failed, 1u);
  EXPECT_EQ(stats.completed, 1u);
}

// ---- stress: no lost or duplicated requests -------------------------------------

// 10k submissions from 8 producer threads. Every future must resolve with
// the result of exactly its own clip (catching lost, duplicated, and
// cross-wired responses), and the server counters must balance.
TEST(ServeStressTest, EightProducersTenThousandRequests) {
  auto extractor = make_frozen_extractor();
  constexpr std::size_t kProducers = 8;
  constexpr std::size_t kPerProducer = 1250;
  constexpr std::size_t kTotal = kProducers * kPerProducer;  // 10'000

  // A small pool of distinct clips with precomputed sequential results.
  const auto clips = make_clips(kProducers);
  std::vector<core::ExtractionResult> expected;
  for (const auto& clip : clips) expected.push_back(extractor->extract(clip));

  serve::InferenceServer server(
      extractor, config_with(/*workers=*/4, /*max_batch=*/32,
                             /*capacity=*/256, serve::OverflowPolicy::kBlock));

  std::atomic<std::size_t> mismatches{0};
  std::atomic<std::size_t> resolved{0};
  serve::ThreadPool::run(kProducers, [&](std::size_t p) {
    for (std::size_t i = 0; i < kPerProducer; ++i) {
      const std::size_t which = (p + i) % clips.size();
      std::future<core::ExtractionResult> future =
          server.submit(clips[which]);
      const core::ExtractionResult result = future.get();
      resolved.fetch_add(1, std::memory_order_relaxed);
      if (!(result.description == expected[which].description &&
            result.confidence == expected[which].confidence)) {
        mismatches.fetch_add(1, std::memory_order_relaxed);
      }
    }
  });
  server.drain();

  EXPECT_EQ(resolved.load(), kTotal);
  EXPECT_EQ(mismatches.load(), 0u);
  const serve::ServerStats stats = server.stats();
  EXPECT_EQ(stats.submitted, kTotal);
  EXPECT_EQ(stats.completed, kTotal);
  EXPECT_EQ(stats.failed, 0u);
  EXPECT_EQ(stats.shed, 0u);
  EXPECT_EQ(stats.cancelled, 0u);
  EXPECT_EQ(stats.latency.count(), kTotal);
  // Every dispatched batch is accounted for and within the configured bound.
  std::uint64_t batched = 0;
  for (std::size_t s = 0; s < stats.batch_size_counts.size(); ++s) {
    batched += stats.batch_size_counts[s] * s;
  }
  EXPECT_EQ(batched, kTotal);
}

// ---- queue timed pop: the spurious-wakeup contract ------------------------------

// try_pop_until must return std::nullopt only when the deadline has
// genuinely elapsed — never early.
TEST(BoundedQueueTimedPopTest, TimesOutOnlyAtTheDeadline) {
  serve::BoundedQueue<int> queue(4, serve::OverflowPolicy::kBlock);
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(20);
  EXPECT_FALSE(queue.try_pop_until(deadline).has_value());
  EXPECT_GE(std::chrono::steady_clock::now(), deadline);
  // A deadline already in the past degrades to a non-waiting try_pop.
  queue.push(7);
  const auto past =
      std::chrono::steady_clock::now() - std::chrono::milliseconds(1);
  EXPECT_EQ(queue.try_pop_until(past), 7);
}

// Regression for the audited wakeup path in BoundedQueue::try_pop_until
// (see the contract comment in queue.hpp): push() notifies the timed
// waiter, but a faster consumer can steal the item before the waiter
// reacquires the lock. The waiter then wakes to an *empty* queue with time
// left on the clock — exactly the shape of a spurious wakeup — and must
// re-wait for the follow-up item instead of reporting a timeout. The steal
// is a race, so the test runs many jittered rounds and asserts the
// invariant whichever way each round's race resolves.
TEST(BoundedQueueTimedPopTest, WakeupFindingQueueEmptyReWaits) {
  for (int round = 0; round < 100; ++round) {
    serve::BoundedQueue<int> queue(4, serve::OverflowPolicy::kBlock);
    std::optional<int> got;
    serve::ThreadPool waiter;
    waiter.spawn(1, [&](std::size_t) {
      got = queue.try_pop_until(std::chrono::steady_clock::now() +
                                std::chrono::seconds(20));
    });
    // Jitter so successive rounds catch the waiter at different points
    // (not yet waiting, parked in the wait, mid-wakeup).
    std::this_thread::sleep_for(std::chrono::microseconds(50 * (round % 4)));
    queue.push(1);
    const std::optional<int> stolen = queue.try_pop();  // races the waiter
    queue.push(2);
    waiter.join();
    ASSERT_TRUE(got.has_value())
        << "round " << round << ": waiter timed out 20s early (stole="
        << stolen.has_value() << ")";
    EXPECT_EQ(*got, stolen ? 2 : 1) << "round " << round;
  }
}

// ---- stats surface --------------------------------------------------------------

TEST(ServeStatsTest, PercentilesAreExactOnKnownSamples) {
  serve::LatencyHistogram hist;
  for (int i = 1; i <= 100; ++i) hist.record(static_cast<double>(i));
  EXPECT_DOUBLE_EQ(hist.percentile(50.0), 50.0);
  EXPECT_DOUBLE_EQ(hist.percentile(95.0), 95.0);
  EXPECT_DOUBLE_EQ(hist.percentile(99.0), 99.0);
  EXPECT_DOUBLE_EQ(hist.percentile(100.0), 100.0);
  EXPECT_DOUBLE_EQ(hist.percentile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(hist.mean(), 50.5);
  EXPECT_DOUBLE_EQ(hist.max(), 100.0);
  EXPECT_DOUBLE_EQ(serve::LatencyHistogram().percentile(99.0), 0.0);
}

TEST(ServeStatsTest, SnapshotTracksQueueAndBatches) {
  auto extractor = make_frozen_extractor();
  const auto clips = make_clips(5);
  serve::InferenceServer server(
      extractor, config_with(/*workers=*/0, /*max_batch=*/2,
                             /*capacity=*/8, serve::OverflowPolicy::kBlock));
  for (const auto& clip : clips) (void)server.submit(clip);
  EXPECT_EQ(server.stats().queue_depth, 5u);
  server.drain();
  const serve::ServerStats stats = server.stats();
  EXPECT_EQ(stats.queue_depth, 0u);
  EXPECT_EQ(stats.queue_depth_max, 5u);
  EXPECT_EQ(stats.queue_capacity, 8u);
  // 5 requests with max_batch=2 -> batches of 2, 2, 1.
  EXPECT_EQ(stats.batches(), 3u);
  EXPECT_EQ(stats.batch_size_counts[2], 2u);
  EXPECT_EQ(stats.batch_size_counts[1], 1u);
  EXPECT_DOUBLE_EQ(stats.mean_batch_size(), 5.0 / 3.0);
  EXPECT_EQ(stats.latency.count(), 5u);
  EXPECT_LE(stats.latency.percentile(50.0), stats.latency.percentile(99.0));
  EXPECT_FALSE(serve::ServerStats::table_header().empty());
  EXPECT_FALSE(stats.table_row("workers=0").empty());
}
