// gradcheck_test.cpp — every backward pass in the library is verified against
// central finite differences. The parameterized suite sweeps the op zoo; the
// standalone tests cover full nn modules (attention, LSTM, encoder layers,
// tubelet embedding) whose backward is the composition of many taped ops.
#include <gtest/gtest.h>

#include <cmath>
#include <functional>

#include "core/video_transformer.hpp"
#include "nn/attention.hpp"
#include "nn/gru.hpp"
#include "nn/lstm.hpp"
#include "tensor/gradcheck.hpp"
#include "tensor/nn_ops.hpp"
#include "tensor/ops.hpp"

namespace tt = tsdx::tensor;
namespace nn = tsdx::nn;
using tt::Shape;
using tt::Tensor;

namespace {

/// Reduce an op output to a scalar with fixed non-uniform weights, so that
/// gradients of ops with constant-sum outputs (softmax) are still exercised.
Tensor weighted_sum(const Tensor& y) {
  std::vector<float> w(static_cast<std::size_t>(y.numel()));
  for (std::size_t i = 0; i < w.size(); ++i) {
    w[i] = std::sin(0.7f * static_cast<float>(i) + 0.3f) + 0.1f;
  }
  return tt::sum_all(tt::mul(y, Tensor::from_vector(y.shape(), std::move(w))));
}

using OpFn = std::function<Tensor(const std::vector<Tensor>&)>;

struct GradCase {
  std::string name;
  std::vector<Shape> input_shapes;
  OpFn op;              ///< maps inputs to the op result (any shape)
  bool positive = false;  ///< draw inputs from U(0.5, 1.5) instead of N(0,1)
};

std::vector<GradCase> op_cases() {
  std::vector<GradCase> cases;
  auto add_case = [&cases](std::string name, std::vector<Shape> shapes, OpFn op,
                           bool positive = false) {
    cases.push_back(GradCase{std::move(name), std::move(shapes), std::move(op),
                             positive});
  };

  // Elementwise binary, same shape and both broadcast directions.
  add_case("AddSame", {{2, 3}, {2, 3}},
           [](const auto& in) { return tt::add(in[0], in[1]); });
  add_case("AddBroadcastRhs", {{2, 3}, {3}},
           [](const auto& in) { return tt::add(in[0], in[1]); });
  add_case("AddBroadcastLhs", {{3}, {2, 3}},
           [](const auto& in) { return tt::add(in[0], in[1]); });
  add_case("Sub", {{2, 3}, {2, 3}},
           [](const auto& in) { return tt::sub(in[0], in[1]); });
  add_case("MulBroadcast", {{2, 2, 2}, {2}},
           [](const auto& in) { return tt::mul(in[0], in[1]); });
  add_case("Div", {{2, 3}, {2, 3}},
           [](const auto& in) { return tt::div(in[0], in[1]); },
           /*positive=*/true);
  add_case("DivBroadcast", {{2, 3}, {3}},
           [](const auto& in) { return tt::div(in[0], in[1]); },
           /*positive=*/true);

  // Scalar & unary.
  add_case("AddScalar", {{2, 3}},
           [](const auto& in) { return tt::add_scalar(in[0], 1.5f); });
  add_case("MulScalar", {{2, 3}},
           [](const auto& in) { return tt::mul_scalar(in[0], -2.0f); });
  add_case("Neg", {{4}}, [](const auto& in) { return tt::neg(in[0]); });
  add_case("Exp", {{2, 3}}, [](const auto& in) { return tt::exp(in[0]); });
  add_case("Log", {{2, 3}}, [](const auto& in) { return tt::log(in[0]); },
           true);
  add_case("Sqrt", {{2, 3}}, [](const auto& in) { return tt::sqrt(in[0]); },
           true);
  add_case("Tanh", {{2, 3}}, [](const auto& in) { return tt::tanh(in[0]); });
  add_case("Sigmoid", {{2, 3}},
           [](const auto& in) { return tt::sigmoid(in[0]); });
  add_case("Gelu", {{2, 3}}, [](const auto& in) { return tt::gelu(in[0]); });
  add_case("Relu", {{3, 3}}, [](const auto& in) { return tt::relu(in[0]); });

  add_case("Abs", {{3, 3}}, [](const auto& in) { return tt::abs(in[0]); });
  add_case("Clamp", {{3, 3}},
           [](const auto& in) { return tt::clamp(in[0], -0.5f, 0.5f); });
  add_case("PowSquare", {{2, 3}},
           [](const auto& in) { return tt::pow(in[0], 2.0f); }, true);
  add_case("PowHalf", {{2, 3}},
           [](const auto& in) { return tt::pow(in[0], 0.5f); }, true);

  // Matmul variants.
  add_case("Matmul2D", {{3, 2}, {2, 4}},
           [](const auto& in) { return tt::matmul(in[0], in[1]); });
  add_case("MatmulBatched", {{2, 3, 2}, {2, 2, 3}},
           [](const auto& in) { return tt::matmul(in[0], in[1]); });
  add_case("MatmulSharedRhs", {{2, 2, 3}, {3, 2}},
           [](const auto& in) { return tt::matmul(in[0], in[1]); });

  // Reductions.
  add_case("SumAll", {{2, 3}},
           [](const auto& in) { return tt::sum_all(in[0]); });
  add_case("MeanAll", {{2, 3}},
           [](const auto& in) { return tt::mean_all(in[0]); });
  add_case("SumDim0", {{2, 3, 2}},
           [](const auto& in) { return tt::sum_dim(in[0], 0); });
  add_case("SumDim1", {{2, 3, 2}},
           [](const auto& in) { return tt::sum_dim(in[0], 1); });
  add_case("MeanDim2", {{2, 3, 2}},
           [](const auto& in) { return tt::mean_dim(in[0], 2); });
  add_case("MaxDim1", {{2, 4, 2}},
           [](const auto& in) { return tt::max_dim(in[0], 1); });

  // Shape ops.
  add_case("Reshape", {{2, 6}},
           [](const auto& in) { return tt::reshape(in[0], {3, 4}); });
  add_case("Permute", {{2, 3, 2}},
           [](const auto& in) { return tt::permute(in[0], {1, 2, 0}); });
  add_case("TransposeLast2", {{2, 3, 4}},
           [](const auto& in) { return tt::transpose_last2(in[0]); });
  add_case("Slice", {{2, 5}},
           [](const auto& in) { return tt::slice(in[0], 1, 1, 3); });
  add_case("Concat", {{2, 2}, {2, 3}},
           [](const auto& in) { return tt::concat({in[0], in[1]}, 1); });
  add_case("Stack", {{2, 3}, {2, 3}},
           [](const auto& in) { return tt::stack({in[0], in[1]}); });
  add_case("FlipLast", {{2, 4}},
           [](const auto& in) { return tt::flip(in[0], 1); });
  add_case("FlipMiddle", {{2, 3, 2}},
           [](const auto& in) { return tt::flip(in[0], 1); });

  // Softmax family.
  add_case("Softmax", {{3, 5}},
           [](const auto& in) { return tt::softmax_lastdim(in[0]); });
  add_case("LogSoftmax", {{3, 5}},
           [](const auto& in) { return tt::log_softmax_lastdim(in[0]); });

  // Fused nn ops.
  add_case("LayerNorm", {{3, 6}, {6}, {6}}, [](const auto& in) {
    return tt::layer_norm(in[0], in[1], in[2]);
  });
  add_case("CrossEntropy", {{4, 5}}, [](const auto& in) {
    return tt::cross_entropy_logits(in[0], {0, 3, 2, 1});
  });
  add_case("Embedding", {{5, 3}}, [](const auto& in) {
    return tt::embedding_lookup(in[0], {4, 0, 2, 4});
  });
  add_case("Conv2d", {{2, 2, 5, 5}, {3, 2, 3, 3}, {3}}, [](const auto& in) {
    return tt::conv2d(in[0], in[1], in[2], /*stride=*/2, /*pad=*/1);
  });
  add_case("Conv2dStride1NoPad", {{1, 1, 4, 4}, {2, 1, 2, 2}, {2}},
           [](const auto& in) {
             return tt::conv2d(in[0], in[1], in[2], 1, 0);
           });
  add_case("MaxPool2d", {{1, 2, 4, 4}},
           [](const auto& in) { return tt::max_pool2d(in[0], 2); });

  return cases;
}

class OpGradCheck : public ::testing::TestWithParam<GradCase> {};

TEST_P(OpGradCheck, AnalyticMatchesNumeric) {
  const GradCase& c = GetParam();
  tt::Rng rng(0xC0FFEE);
  std::vector<Tensor> inputs;
  for (const Shape& shape : c.input_shapes) {
    Tensor t = c.positive
                   ? Tensor::rand_uniform(shape, rng, 0.5f, 1.5f, true)
                   : Tensor::randn(shape, rng, 1.0f, true);
    // Nudge values away from non-smooth points (relu kink, pool ties).
    auto data = t.mutable_data();
    for (auto& v : data) {
      if (std::abs(v) < 0.05f) v += v >= 0 ? 0.1f : -0.1f;
    }
    inputs.push_back(t);
  }
  const auto fn = [&c](const std::vector<Tensor>& in) {
    return weighted_sum(c.op(in));
  };
  const tt::GradCheckResult result = tt::grad_check(fn, inputs);
  EXPECT_TRUE(result.ok) << c.name << ": max_rel_err=" << result.max_rel_err
                         << " (" << result.detail << ")";
}

INSTANTIATE_TEST_SUITE_P(AllOps, OpGradCheck, ::testing::ValuesIn(op_cases()),
                         [](const ::testing::TestParamInfo<GradCase>& info) {
                           return info.param.name;
                         });

}  // namespace

// ---- module-level grad checks -------------------------------------------------

namespace {

/// Check d(weighted_sum(module_forward(x)))/d(x and all params).
template <class Forward>
void check_module(const nn::Module& module, Tensor x, Forward forward) {
  std::vector<Tensor> inputs = {x};
  for (const Tensor& p : module.parameters()) inputs.push_back(p);
  const auto fn = [&forward](const std::vector<Tensor>& in) {
    return weighted_sum(forward(in[0]));
  };
  const tt::GradCheckResult result =
      tt::grad_check(fn, inputs, /*eps=*/1e-2, /*tol=*/5e-2);
  EXPECT_TRUE(result.ok) << "max_rel_err=" << result.max_rel_err << " ("
                         << result.detail << ")";
}

}  // namespace

TEST(ModuleGradCheck, Linear) {
  tt::Rng rng(1);
  nn::Linear linear(3, 2, rng);
  Tensor x = Tensor::randn({2, 3}, rng, 1.0f, true);
  check_module(linear, x, [&](const Tensor& in) { return linear.forward(in); });
}

TEST(ModuleGradCheck, MultiHeadAttention) {
  tt::Rng rng(2);
  nn::MultiHeadAttention mha(8, 2, 0.0f, rng);
  Tensor x = Tensor::randn({1, 3, 8}, rng, 1.0f, true);
  check_module(mha, x, [&](const Tensor& in) { return mha.forward(in); });
}

TEST(ModuleGradCheck, TransformerEncoderLayer) {
  tt::Rng rng(3);
  nn::TransformerEncoderLayer layer(8, 2, 16, 0.0f, rng);
  Tensor x = Tensor::randn({1, 3, 8}, rng, 1.0f, true);
  check_module(layer, x, [&](const Tensor& in) { return layer.forward(in); });
}

TEST(ModuleGradCheck, LstmFinalHidden) {
  tt::Rng rng(4);
  nn::Lstm lstm(3, 4, rng);
  Tensor x = Tensor::randn({2, 3, 3}, rng, 1.0f, true);
  check_module(lstm, x, [&](const Tensor& in) { return lstm.forward(in); });
}

TEST(ModuleGradCheck, GruFinalHidden) {
  tt::Rng rng(6);
  nn::Gru gru(3, 4, rng);
  Tensor x = Tensor::randn({2, 3, 3}, rng, 1.0f, true);
  check_module(gru, x, [&](const Tensor& in) { return gru.forward(in); });
}

TEST(ModuleGradCheck, TransformerEncoderDeepAttention) {
  // Two stacked layers: gradients must survive the full attention recursion
  // (softmax -> matmul -> projection) twice, plus the final norm.
  tt::Rng rng(7);
  nn::TransformerEncoder encoder(/*depth=*/2, /*dim=*/4, /*heads=*/2,
                                 /*mlp_hidden=*/8, /*dropout_p=*/0.0f, rng);
  Tensor x = Tensor::randn({1, 3, 4}, rng, 1.0f, true);
  check_module(encoder, x,
               [&](const Tensor& in) { return encoder.forward(in); });
}

TEST(ModuleGradCheck, VideoTransformerAttentionPool) {
  // End-to-end through the attention-pooling head (the learned pool_query
  // path in VideoTransformer::pool), which no op-level case exercises.
  tt::Rng rng(8);
  tsdx::core::ModelConfig cfg;
  cfg.frames = 2;
  cfg.channels = 2;
  cfg.image_size = 4;
  cfg.patch_size = 2;
  cfg.tubelet_frames = 1;
  cfg.dim = 4;
  cfg.depth = 1;
  cfg.heads = 2;
  cfg.pooling = tsdx::core::Pooling::kAttention;
  tsdx::core::VideoTransformer model(cfg, rng);
  Tensor x = Tensor::randn({1, 2, 2, 4, 4}, rng, 1.0f, true);
  check_module(model, x, [&](const Tensor& in) { return model.forward(in); });
}

TEST(ModuleGradCheck, TubeletEmbedding) {
  tt::Rng rng(5);
  tsdx::core::ModelConfig cfg;
  cfg.frames = 2;
  cfg.channels = 2;
  cfg.image_size = 4;
  cfg.patch_size = 2;
  cfg.tubelet_frames = 1;
  cfg.dim = 4;
  cfg.depth = 1;
  cfg.heads = 2;
  tsdx::core::TubeletEmbedding embed(cfg, rng);
  Tensor x = Tensor::randn({1, 2, 2, 4, 4}, rng, 1.0f, true);
  check_module(embed, x, [&](const Tensor& in) { return embed.forward(in); });
}
