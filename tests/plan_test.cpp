// plan_test.cpp — the inference plan compiler's contract (src/plan/):
//
// * Trace coverage: every supported architecture (4 attention kinds,
//   both poolings, all positional kinds) compiles — no TraceError — and
//   the compiled logits are BIT-IDENTICAL to the dynamic forward's. The
//   comparison is memcmp, not a tolerance: plan.hpp's equivalence contract
//   is exact equality, because every plan kernel replays the dynamic
//   kernel's arithmetic element for element.
// * Each fusion (bias+GELU, QK^T+scale+softmax, residual+LayerNorm) stays
//   bit-exact when enabled alone, and the all-off plan matches too.
// * Thread-count invariance: the same plan produces identical bytes at 1,
//   2 and 8 intra-op threads (the kernels split rows at the same grains as
//   the dynamic path, whose determinism contract is thread-invariant).
// * Arena discipline: repeated executions reuse one allocation
//   (Arena::growths() stays at 1) and produce identical results — the
//   liveness planner's in-place aliasing is exercised on every run, and the
//   suite runs under ASan in CI (`ctest -L sanitize`), so an offset overlap
//   or out-of-bounds write fails loudly.
// * Fallback contract: constrained decoding and unfrozen models take the
//   dynamic path (same results, plan.fallbacks counted); a trace failure is
//   negatively cached (one plan.trace_errors bump, not one per batch).
// * End-to-end: an InferenceServer with use_compiled_plan on answers every
//   request identically to the dynamic server.
#include <gtest/gtest.h>

#include <array>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <future>
#include <memory>
#include <string>
#include <vector>

#include "core/extractor.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "plan/executor.hpp"
#include "plan/plan.hpp"
#include "plan/trace.hpp"
#include "sdl/description.hpp"
#include "serve/server.hpp"
#include "sim/clipgen.hpp"
#include "tensor/kernels/parallel_for.hpp"
#include "tensor/ops.hpp"

namespace core = tsdx::core;
namespace data = tsdx::data;
namespace obs = tsdx::obs;
namespace par = tsdx::par;
namespace plan = tsdx::plan;
namespace sdl = tsdx::sdl;
namespace serve = tsdx::serve;
namespace sim = tsdx::sim;
namespace tt = tsdx::tensor;

namespace {

/// CI failure artifacts. When TSDX_PLAN_ARTIFACT_DIR is set, a bit-exactness
/// mismatch writes the offending plan's debug_dump() there, and the span
/// trace of the whole run is flushed alongside it on teardown — the uploaded
/// artifact then shows exactly which ops the compiler built, where the arena
/// placed them, and what executed. Unset (the normal local run), this is all
/// inert.
const char* artifact_dir() {
  static const char* dir = std::getenv("TSDX_PLAN_ARTIFACT_DIR");
  return dir;
}

void write_plan_artifact(const std::string& what, const plan::Plan& compiled) {
  const char* dir = artifact_dir();
  if (dir == nullptr) return;
  std::filesystem::create_directories(dir);
  std::string name = what;
  for (char& c : name) {
    if (c == '/' || c == ' ') c = '_';
  }
  std::ofstream out(std::filesystem::path(dir) / (name + ".plan.txt"));
  out << compiled.debug_dump();
}

class ArtifactEnvironment : public ::testing::Environment {
 public:
  void SetUp() override {
    if (artifact_dir() != nullptr) {
      tsdx::obs::trace::set_mode(tsdx::obs::trace::Mode::kFull);
    }
  }
  void TearDown() override {
    const char* dir = artifact_dir();
    if (dir == nullptr) return;
    std::filesystem::create_directories(dir);
    tsdx::obs::trace::flush_trace(
        (std::filesystem::path(dir) / "plan_trace.json").string());
  }
};

const auto* const kArtifactEnv =
    ::testing::AddGlobalTestEnvironment(new ArtifactEnvironment);

/// Small but structurally complete geometry: 2 clips, 4 frames, 16x16.
constexpr std::int64_t kBatch = 2;

core::ModelConfig small_config(core::AttentionKind kind) {
  core::ModelConfig mc;
  mc.frames = 4;
  mc.image_size = 16;
  mc.patch_size = 8;
  mc.dim = 16;
  mc.depth = 2;  // two layers so kDividedST alternates spatial/temporal
  mc.heads = 4;
  mc.attention = kind;
  return mc;
}

tt::Shape input_shape(const core::ModelConfig& mc) {
  return {kBatch, mc.frames, mc.channels, mc.image_size, mc.image_size};
}

/// Deterministic non-trivial input (zeros would mask accumulation-order
/// differences).
std::vector<float> probe_values(const tt::Shape& shape) {
  std::int64_t n = 1;
  for (const std::int64_t d : shape) n *= d;
  std::vector<float> values(static_cast<std::size_t>(n));
  for (std::size_t i = 0; i < values.size(); ++i) {
    values[i] = 0.001f * static_cast<float>(i % 997) - 0.3f;
  }
  return values;
}

/// Dynamic-forward logits for `values` at `shape`.
std::array<tt::Tensor, sdl::kNumSlots> dynamic_logits(
    const core::ScenarioModel& model, const tt::Shape& shape,
    const std::vector<float>& values) {
  const tt::Tensor input = tt::Tensor::from_vector(shape, values);
  tt::NoGradGuard no_grad;
  return model.forward(input);
}

/// Compile at `options`, run, and require bit-identical logits for every
/// slot. Returns the plan for further inspection.
std::shared_ptr<const plan::Plan> expect_bit_identical(
    const core::ScenarioExtractor& extractor, const tt::Shape& shape,
    const plan::CompileOptions& options, const std::string& what) {
  const std::vector<float> values = probe_values(shape);
  const auto dynamic =
      dynamic_logits(extractor.model(), shape, values);
  std::shared_ptr<const plan::Plan> compiled;
  try {
    compiled = plan::Plan::compile(extractor.model(), shape, options);
  } catch (const plan::TraceError& e) {
    ADD_FAILURE() << what << ": TraceError: " << e.what();
    return nullptr;
  }
  std::vector<float> arena(compiled->arena_bytes() / sizeof(float));
  compiled->run(values.data(), arena.data());
  bool mismatch = false;
  for (std::size_t s = 0; s < sdl::kNumSlots; ++s) {
    const float* got = compiled->logits_ptr(s, arena.data());
    const std::vector<float>& want = dynamic[s].node()->data;
    const int diff =
        std::memcmp(got, want.data(), want.size() * sizeof(float));
    mismatch = mismatch || diff != 0;
    EXPECT_EQ(0, diff)
        << what << ": slot " << s << " logits differ from the dynamic path";
  }
  if (mismatch) write_plan_artifact(what, *compiled);
  return compiled;
}

core::ScenarioExtractor frozen_extractor(const core::ModelConfig& mc,
                                         std::uint64_t seed = 7) {
  core::ScenarioExtractor extractor(mc, seed);
  extractor.freeze();
  return extractor;
}

data::Batch probe_batch(const core::ModelConfig& mc) {
  data::Batch batch;
  const tt::Shape shape = input_shape(mc);
  batch.video = tt::Tensor::from_vector(shape, probe_values(shape));
  return batch;
}

void expect_same_results(const std::vector<core::ExtractionResult>& a,
                         const std::vector<core::ExtractionResult>& b,
                         const std::string& what) {
  ASSERT_EQ(a.size(), b.size()) << what;
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(sdl::to_slot_labels(a[i].description),
              sdl::to_slot_labels(b[i].description))
        << what << ": labels differ at clip " << i;
    for (std::size_t s = 0; s < sdl::kNumSlots; ++s) {
      EXPECT_EQ(a[i].confidence[s], b[i].confidence[s])
          << what << ": confidence differs at clip " << i << " slot " << s;
    }
    EXPECT_EQ(a[i].warnings, b[i].warnings) << what << ": clip " << i;
  }
}

}  // namespace

TEST(PlanTest, EveryAttentionKindCompilesBitIdentical) {
  for (const auto kind :
       {core::AttentionKind::kJoint, core::AttentionKind::kDividedST,
        core::AttentionKind::kFactorizedEncoder,
        core::AttentionKind::kSpaceOnly}) {
    const core::ModelConfig mc = small_config(kind);
    const auto extractor = frozen_extractor(mc);
    const auto compiled = expect_bit_identical(
        extractor, input_shape(mc), plan::CompileOptions{},
        core::to_string(kind));
    if (compiled == nullptr) continue;
    EXPECT_GT(compiled->fused_ops(), 0) << core::to_string(kind);
    EXPECT_GT(compiled->arena_bytes(), 0u) << core::to_string(kind);
  }
}

TEST(PlanTest, PoolingAndPositionalVariantsCompileBitIdentical) {
  for (const auto pooling : {core::Pooling::kMean, core::Pooling::kAttention}) {
    for (const auto positional :
         {core::PositionalKind::kLearned, core::PositionalKind::kSinusoidal,
          core::PositionalKind::kNone}) {
      core::ModelConfig mc = small_config(core::AttentionKind::kJoint);
      mc.pooling = pooling;
      mc.positional = positional;
      const auto extractor = frozen_extractor(mc);
      expect_bit_identical(extractor, input_shape(mc), plan::CompileOptions{},
                           core::to_string(pooling) + "/" +
                               core::to_string(positional));
    }
  }
}

TEST(PlanTest, EachFusionAloneStaysBitIdentical) {
  const core::ModelConfig mc = small_config(core::AttentionKind::kJoint);
  const auto extractor = frozen_extractor(mc);
  const tt::Shape shape = input_shape(mc);

  plan::CompileOptions none;
  none.fuse_bias_gelu = false;
  none.fuse_attention_softmax = false;
  none.fuse_residual_norm = false;
  const auto unfused = expect_bit_identical(extractor, shape, none, "no-fuse");
  ASSERT_NE(unfused, nullptr);
  EXPECT_EQ(unfused->fused_ops(), 0);

  struct Case {
    const char* name;
    plan::CompileOptions options;
  };
  std::vector<Case> cases;
  {
    Case c{"bias_gelu", none};
    c.options.fuse_bias_gelu = true;
    cases.push_back(c);
  }
  {
    Case c{"attention_softmax", none};
    c.options.fuse_attention_softmax = true;
    cases.push_back(c);
  }
  {
    Case c{"residual_norm", none};
    c.options.fuse_residual_norm = true;
    cases.push_back(c);
  }
  for (const Case& c : cases) {
    const auto compiled =
        expect_bit_identical(extractor, shape, c.options, c.name);
    ASSERT_NE(compiled, nullptr) << c.name;
    EXPECT_GT(compiled->fused_ops(), 0) << c.name;
    // Fusing strictly shrinks the op list relative to the unfused plan.
    EXPECT_LT(compiled->graph().ops.size(), unfused->graph().ops.size())
        << c.name;
  }
}

TEST(PlanTest, ThreadCountInvariance) {
  const core::ModelConfig mc = small_config(core::AttentionKind::kDividedST);
  const auto extractor = frozen_extractor(mc);
  const tt::Shape shape = input_shape(mc);
  const std::vector<float> values = probe_values(shape);
  const auto dynamic = dynamic_logits(extractor.model(), shape, values);
  const auto compiled =
      plan::Plan::compile(extractor.model(), shape, plan::CompileOptions{});

  for (const std::size_t threads : {1u, 2u, 8u}) {
    par::set_threads(threads);
    std::vector<float> arena(compiled->arena_bytes() / sizeof(float));
    compiled->run(values.data(), arena.data());
    for (std::size_t s = 0; s < sdl::kNumSlots; ++s) {
      const float* got = compiled->logits_ptr(s, arena.data());
      const std::vector<float>& want = dynamic[s].node()->data;
      EXPECT_EQ(0,
                std::memcmp(got, want.data(), want.size() * sizeof(float)))
          << "slot " << s << " differs at " << threads << " threads";
    }
  }
  par::set_threads(1);
}

TEST(PlanTest, ExecutorReusesArenaAndMatchesDynamicPath) {
  const core::ModelConfig mc = small_config(core::AttentionKind::kJoint);
  auto extractor =
      std::make_shared<core::ScenarioExtractor>(mc, /*seed=*/7);
  extractor->freeze();
  auto cache = std::make_shared<plan::PlanCache>();
  plan::PlanExecutor executor(extractor, cache);

  const data::Batch batch = probe_batch(mc);
  const auto expected = extractor->extract_batch(batch);

  obs::Counter& executions =
      obs::Registry::global().counter("plan.executions");
  const std::uint64_t executions_before = executions.value();

  std::vector<core::ExtractionResult> last;
  for (int round = 0; round < 3; ++round) {
    last = executor.extract_batch(batch);
    expect_same_results(last, expected,
                        "round " + std::to_string(round));
  }
  // One geometry -> one arena allocation, reused by every later run: the
  // compiled hot path stops allocating after warm-up.
  EXPECT_EQ(executor.arena().growths(), 1u);
  EXPECT_EQ(executions.value(), executions_before + 3);
}

TEST(PlanTest, ConstrainedDecodingFallsBackToDynamic) {
  const core::ModelConfig mc = small_config(core::AttentionKind::kJoint);
  auto extractor =
      std::make_shared<core::ScenarioExtractor>(mc, /*seed=*/7);
  extractor->freeze();
  extractor->set_constrained_decoding(true);
  auto cache = std::make_shared<plan::PlanCache>();
  plan::PlanExecutor executor(extractor, cache);

  obs::Counter& fallbacks = obs::Registry::global().counter("plan.fallbacks");
  const std::uint64_t fallbacks_before = fallbacks.value();

  const data::Batch batch = probe_batch(mc);
  const auto via_executor = executor.extract_batch(batch);
  const auto via_dynamic = extractor->extract_batch(batch);
  expect_same_results(via_executor, via_dynamic, "constrained");
  EXPECT_EQ(fallbacks.value(), fallbacks_before + 1);
  // The constrained path never compiled anything; the arena is untouched.
  EXPECT_EQ(executor.arena().growths(), 0u);
}

TEST(PlanTest, CacheRemembersTraceFailure) {
  // A model left in training mode is untraceable (TraceError at compile).
  const core::ModelConfig mc = small_config(core::AttentionKind::kJoint);
  core::ScenarioExtractor extractor(mc, /*seed=*/7);
  ASSERT_TRUE(extractor.model().training());

  obs::Counter& errors =
      obs::Registry::global().counter("plan.trace_errors");
  const std::uint64_t errors_before = errors.value();

  plan::PlanCache cache;
  const tt::Shape shape = input_shape(mc);
  EXPECT_EQ(cache.get_or_compile(extractor.model(), shape), nullptr);
  EXPECT_EQ(cache.get_or_compile(extractor.model(), shape), nullptr);
  // Negative caching: the second lookup hits the remembered failure, it
  // does not re-trace.
  EXPECT_EQ(errors.value(), errors_before + 1);
}

TEST(PlanTest, DebugDumpListsOpsAndOffsets) {
  const core::ModelConfig mc = small_config(core::AttentionKind::kJoint);
  const auto extractor = frozen_extractor(mc);
  const auto compiled = plan::Plan::compile(
      extractor.model(), input_shape(mc), plan::CompileOptions{});
  const std::string dump = compiled->debug_dump();
  EXPECT_NE(dump.find("matmul"), std::string::npos);
  EXPECT_NE(dump.find("layer_norm"), std::string::npos);
  EXPECT_NE(dump.find("arena"), std::string::npos);
  // At least one fusion fired on a transformer forward, and the dump names
  // the fused op so a CI artifact shows what the compiler did.
  EXPECT_NE(dump.find("scaled_softmax_nt"), std::string::npos);
}

TEST(PlanTest, ServerAnswersIdenticallyWithCompiledPlans) {
  sim::RenderConfig render;
  render.height = render.width = 16;
  render.frames = 4;
  core::ModelConfig mc = small_config(core::AttentionKind::kDividedST);

  auto extractor =
      std::make_shared<core::ScenarioExtractor>(mc, /*seed=*/7);
  extractor->freeze();

  sim::ClipGenerator gen(render, /*seed=*/42);
  std::vector<sim::VideoClip> clips;
  for (int i = 0; i < 6; ++i) clips.push_back(gen.generate().video);

  // workers = 0: deterministic inline processing on drain(), no thread
  // scheduling noise in the comparison.
  const auto run_server = [&](bool compiled) {
    serve::ServerConfig sc;
    sc.workers = 0;
    sc.max_batch = 4;
    sc.use_compiled_plan = compiled;
    sc.metrics = std::make_shared<obs::Registry>();
    serve::InferenceServer server(extractor, sc);
    std::vector<std::future<core::ExtractionResult>> futures;
    for (const sim::VideoClip& clip : clips) {
      futures.push_back(server.submit(clip));
    }
    server.drain();
    std::vector<core::ExtractionResult> results;
    for (auto& f : futures) results.push_back(f.get());
    return results;
  };

  const auto dynamic = run_server(/*compiled=*/false);
  const auto compiled = run_server(/*compiled=*/true);
  expect_same_results(compiled, dynamic, "server");
}
