#!/usr/bin/env python3
"""trace_check — validate the observability artifacts serve_demo dumps.

CI runs `serve_demo --smoke --metrics-dump` and feeds the two JSON files it
writes to this script:

  trace_check.py [--plan] tsdx_trace.json tsdx_metrics.json

Checks (exit 0 = pass, 1 = fail, 2 = usage/IO error):

  trace shape       tsdx_trace.json is Chrome trace-event JSON: a non-empty
                    "traceEvents" list of complete ("ph": "X") events, each
                    with name / tid / ts / dur and an args.trace_id.
  end-to-end trace  At least one trace ID covers the full request path:
                    serve.request + serve.queue_wait + serve.batch +
                    extract.batch + model.embed + model.attention + gemm.mm
                    all sharing that ID — i.e. one submitted clip was traced
                    from the queue through batch formation into the model's
                    layers and down to the GEMM kernel.
  span nesting      For such a trace, on the dispatching worker's thread:
                    extract.batch sits inside serve.batch, and model.* /
                    gemm.mm sit inside extract.batch (span intervals nest,
                    which is what makes the Perfetto rendering meaningful).
  metrics shape     tsdx_metrics.json has counters/gauges/histograms maps;
                    serve.submitted and serve.completed counted this run's
                    requests, gemm.calls > 0, and the serve.latency_ms
                    histogram holds as many samples as serve.completed.

With --plan, the run under test served through compiled inference plans
(`serve_demo --smoke --metrics-dump --compiled`) and the checks change to
the plan-level span structure instead:

  plan trace        At least one trace ID covers serve.request +
                    serve.queue_wait + serve.batch + plan.execute — a
                    request batch executed through a compiled plan, not the
                    dynamic interpreter. (model.*/gemm.* spans are NOT
                    required: the compiled hot path may dispatch to the
                    plan's wide kernels, which trade per-op spans for the
                    single plan.execute span.)
  plan nesting      plan.execute sits inside serve.batch on the worker's
                    thread, and a plan.compile span exists somewhere in the
                    buffer (compilation happens once per clip geometry, on
                    the first batch that sees it).
  plan metrics      counters plan.compiled and plan.executions are positive
                    — plans were built and actually used, not silently
                    fallen back from (the serve.* checks still apply).

Optional artifact checks (combinable with or without the positionals; at
least one check must be requested):

  --prom FILE       Prometheus exposition with OpenMetrics exemplars: every
                    `# {...}` suffix parses as ` # {trace_id="N"} value`, and
                    at least one histogram bucket carries one — the slowest
                    requests are linkable to a concrete flight-recorder
                    trace.
  --recorder FILE   Flight-recorder ring dump (serve_demo --metrics-dump
                    writes tsdx_recorder.json): {"records": [...]}, each
                    record carrying the full schema (id / trace_id / kind /
                    outcome / path / batching / timeline fields), with at
                    least one terminal served record.
  --dump FILE       Anomaly dump written by the SLO engine to
                    TSDX_OBS_DUMP_DIR: anomaly kind, offending trace_id, slo
                    window snapshot, recorder records, span tail. When
                    trace_id is nonzero, a record with that trace must be in
                    the dump.
"""

from __future__ import annotations

import json
import re
import sys

REQUIRED_SPANS = {
    "serve.request",
    "serve.queue_wait",
    "serve.batch",
    "extract.batch",
    "model.embed",
    "model.attention",
    "gemm.mm",
}

# Parent -> children that must nest inside it (same thread, same trace).
NESTING = {
    "serve.batch": ["extract.batch"],
    "extract.batch": ["model.embed", "model.attention", "gemm.mm"],
}

# --plan mode: the compiled-path equivalents. One span covers the whole
# fused execution, so the request path bottoms out at plan.execute.
PLAN_REQUIRED_SPANS = {
    "serve.request",
    "serve.queue_wait",
    "serve.batch",
    "plan.execute",
}

PLAN_NESTING = {
    "serve.batch": ["plan.execute"],
}


def fail(msg: str) -> None:
    print(f"trace_check: FAIL: {msg}")
    sys.exit(1)


def load_json(path: str):
    try:
        with open(path, encoding="utf-8") as f:
            return json.load(f)
    except (OSError, json.JSONDecodeError) as err:
        print(f"trace_check: cannot read {path}: {err}")
        sys.exit(2)


def check_trace(trace, plan_mode: bool) -> None:
    required = PLAN_REQUIRED_SPANS if plan_mode else REQUIRED_SPANS
    nesting = PLAN_NESTING if plan_mode else NESTING
    events = trace.get("traceEvents")
    if not isinstance(events, list) or not events:
        fail("traceEvents is missing or empty")
    by_trace: dict[int, list[dict]] = {}
    for i, e in enumerate(events):
        for key in ("name", "ph", "tid", "ts", "dur", "args"):
            if key not in e:
                fail(f"traceEvents[{i}] is missing `{key}`")
        if e["ph"] != "X":
            fail(f"traceEvents[{i}] has ph={e['ph']!r}, want complete 'X'")
        if e["dur"] < 0:
            fail(f"traceEvents[{i}] has negative duration")
        tid = e["args"].get("trace_id")
        if not isinstance(tid, int):
            fail(f"traceEvents[{i}] has no integer args.trace_id")
        by_trace.setdefault(tid, []).append(e)

    full = [
        tid
        for tid, spans in by_trace.items()
        if tid > 0 and required <= {s["name"] for s in spans}
    ]
    if not full:
        seen = {s["name"] for spans in by_trace.values() for s in spans}
        fail(
            "no trace ID carries the full request path "
            f"{sorted(required)}; span names seen: {sorted(seen)}"
        )
    if plan_mode and not any(
        s["name"] == "plan.compile" for spans in by_trace.values() for s in spans
    ):
        fail("no plan.compile span — nothing was compiled this run")

    # Nesting holds for at least one fully-traced request: RAII spans on the
    # worker thread must contain their children's intervals exactly.
    def nests(spans: list[dict]) -> bool:
        for parent_name, children in nesting.items():
            parents = [s for s in spans if s["name"] == parent_name]
            for child_name in children:
                ok = any(
                    p["tid"] == c["tid"]
                    and p["ts"] <= c["ts"]
                    and c["ts"] + c["dur"] <= p["ts"] + p["dur"]
                    for c in spans
                    if c["name"] == child_name
                    for p in parents
                )
                if not ok:
                    return False
        return True

    if not any(nests(by_trace[tid]) for tid in full):
        want = (
            "serve.batch > plan.execute on one thread"
            if plan_mode
            else "serve.batch > extract.batch > model.*/gemm.mm on one thread"
        )
        fail(f"no fully-traced request has properly nested spans ({want})")
    print(
        f"trace_check: trace OK — {len(events)} spans, "
        f"{len(full)} fully-traced request(s)"
    )


def check_metrics(metrics, plan_mode: bool) -> None:
    for section in ("counters", "gauges", "histograms"):
        if not isinstance(metrics.get(section), dict):
            fail(f"metrics JSON is missing the `{section}` map")
    counters = metrics["counters"]
    # gemm.calls is not required in plan mode: the compiled hot path may run
    # the plan's own wide kernels, which the dynamic GEMM counters never see.
    required = ["serve.submitted", "serve.completed"]
    required += ["plan.compiled", "plan.executions"] if plan_mode else ["gemm.calls"]
    for name in required:
        if counters.get(name, 0) <= 0:
            fail(f"counter `{name}` is missing or zero")
    latency = metrics["histograms"].get("serve.latency_ms")
    if latency is None:
        fail("histogram `serve.latency_ms` is missing")
    if latency.get("count", 0) != counters["serve.completed"]:
        fail(
            f"serve.latency_ms holds {latency.get('count', 0)} samples, "
            f"want one per completed request ({counters['serve.completed']})"
        )
    if plan_mode:
        detail = (
            f"{counters['plan.compiled']} plan(s) compiled, "
            f"{counters['plan.executions']} compiled execution(s)"
        )
    else:
        detail = f"{counters['gemm.calls']} GEMM calls"
    print(
        f"trace_check: metrics OK — {counters['serve.completed']} completed, "
        + detail
    )


# One flight-recorder record, as append_record_json (src/obs/recorder.cpp)
# emits it. `admission` is optional (only router-hop records that reached the
# admission gate carry it); everything else is always present.
RECORD_REQUIRED = {
    "id": int,
    "trace_id": int,
    "kind": str,
    "outcome": str,
    "path": str,
    "batch_id": int,
    "batch_size": int,
    "worker": int,
    "replica": int,
    "attempts": int,
    "failovers": int,
    "submit_ns": int,
    "enqueue_ns": int,
    "dispatch_ns": int,
    "execute_ns": int,
    "done_ns": int,
    "backoff_ns": int,
}

RECORD_KINDS = {"server", "router"}
RECORD_OUTCOMES = {
    "in_flight", "completed", "degraded", "failed", "deadline_expired",
    "shed", "rejected", "cancelled",
}
RECORD_PATHS = {"unknown", "dynamic", "plan", "fallback"}
ANOMALY_KINDS = {"deadline_miss", "circuit_trip", "retry_storm",
                 "arena_growth"}

# OpenMetrics exemplar suffix as Histogram::to_prometheus writes it:
#   serve_latency_ms_bucket{le="0.5"} 12 # {trace_id="7"} 0.35
EXEMPLAR = re.compile(r' # \{trace_id="\d+"\} -?\d+(?:\.\d+)?(?:[eE][+-]?\d+)?$')


def check_record(record, where: str) -> None:
    if not isinstance(record, dict):
        fail(f"{where} is not an object")
    for key, typ in RECORD_REQUIRED.items():
        if not isinstance(record.get(key), typ) or isinstance(
            record.get(key), bool
        ):
            fail(f"{where} is missing integer/string field `{key}`")
    if record["kind"] not in RECORD_KINDS:
        fail(f"{where} has unknown kind {record['kind']!r}")
    if record["outcome"] not in RECORD_OUTCOMES:
        fail(f"{where} has unknown outcome {record['outcome']!r}")
    if record["path"] not in RECORD_PATHS:
        fail(f"{where} has unknown path {record['path']!r}")
    if "admission" in record and not isinstance(record["admission"], str):
        fail(f"{where} has a non-string `admission`")


def check_prom(path: str) -> None:
    try:
        with open(path, encoding="utf-8") as f:
            text = f.read()
    except OSError as err:
        print(f"trace_check: cannot read {path}: {err}")
        sys.exit(2)
    exemplars = 0
    for lineno, line in enumerate(text.splitlines(), 1):
        if " # {" not in line:
            continue
        if not EXEMPLAR.search(line):
            fail(
                f"{path}:{lineno}: malformed exemplar suffix "
                f"(want ` # {{trace_id=\"N\"}} value`): {line!r}"
            )
        if "_bucket{" not in line:
            fail(f"{path}:{lineno}: exemplar on a non-bucket line: {line!r}")
        exemplars += 1
    if exemplars == 0:
        fail(f"{path}: no histogram bucket carries a trace-ID exemplar")
    print(f"trace_check: prom OK — {exemplars} bucket exemplar(s)")


def check_recorder(dump) -> None:
    records = dump.get("records") if isinstance(dump, dict) else None
    if not isinstance(records, list) or not records:
        fail("recorder dump has no non-empty `records` list")
    for i, record in enumerate(records):
        check_record(record, f"records[{i}]")
    served = [
        r
        for r in records
        if r["outcome"] in ("completed", "degraded", "failed")
    ]
    if not served:
        fail("recorder dump holds no terminally served record")
    print(
        f"trace_check: recorder OK — {len(records)} record(s), "
        f"{len(served)} served"
    )


def check_dump(dump) -> None:
    if not isinstance(dump, dict):
        fail("anomaly dump is not a JSON object")
    anomaly = dump.get("anomaly")
    if anomaly not in ANOMALY_KINDS:
        fail(f"anomaly dump has unknown kind {anomaly!r}")
    trace_id = dump.get("trace_id")
    if not isinstance(trace_id, int):
        fail("anomaly dump has no integer `trace_id`")
    slo = dump.get("slo")
    if not isinstance(slo, dict):
        fail("anomaly dump has no `slo` snapshot")
    for key in (
        "good_fast", "bad_fast", "good_slow", "bad_slow", "burn_rate_fast",
        "burn_rate_slow", "budget_remaining", "latency_objective_ms",
        "target",
    ):
        if not isinstance(slo.get(key), (int, float)):
            fail(f"anomaly dump slo snapshot is missing numeric `{key}`")
    records = dump.get("records")
    if not isinstance(records, list):
        fail("anomaly dump has no `records` list")
    for i, record in enumerate(records):
        check_record(record, f"records[{i}]")
    spans = dump.get("spans")
    if not isinstance(spans, list):
        fail("anomaly dump has no `spans` list")
    for i, span in enumerate(spans):
        if not isinstance(span, dict):
            fail(f"spans[{i}] is not an object")
        if not isinstance(span.get("name"), str):
            fail(f"spans[{i}] has no string `name`")
        for key in ("trace_id", "tid", "start_ns", "duration_ns"):
            if not isinstance(span.get(key), int):
                fail(f"spans[{i}] has no integer `{key}`")
    if trace_id != 0 and not any(r["trace_id"] == trace_id for r in records):
        fail(
            f"anomaly dump names trace {trace_id} but no record in the dump "
            "carries it"
        )
    print(
        f"trace_check: dump OK — anomaly {anomaly!r}, trace {trace_id}, "
        f"{len(records)} record(s), {len(spans)} span(s)"
    )


def take_flag(argv: list[str], flag: str) -> str | None:
    if flag not in argv:
        return None
    i = argv.index(flag)
    if i + 1 >= len(argv):
        print(f"trace_check: {flag} needs a file argument")
        sys.exit(2)
    value = argv[i + 1]
    del argv[i : i + 2]
    return value


def main() -> int:
    argv = sys.argv[1:]
    plan_mode = "--plan" in argv
    argv = [a for a in argv if a != "--plan"]
    prom = take_flag(argv, "--prom")
    recorder = take_flag(argv, "--recorder")
    dump = take_flag(argv, "--dump")
    if len(argv) not in (0, 2) or (
        not argv and prom is None and recorder is None and dump is None
    ):
        print(__doc__)
        return 2
    if argv:
        check_trace(load_json(argv[0]), plan_mode)
        check_metrics(load_json(argv[1]), plan_mode)
    if prom is not None:
        check_prom(prom)
    if recorder is not None:
        check_recorder(load_json(recorder))
    if dump is not None:
        check_dump(load_json(dump))
    print("trace_check: PASS" + (" (plan mode)" if plan_mode else ""))
    return 0


if __name__ == "__main__":
    sys.exit(main())
