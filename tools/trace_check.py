#!/usr/bin/env python3
"""trace_check — validate the observability artifacts serve_demo dumps.

CI runs `serve_demo --smoke --metrics-dump` and feeds the two JSON files it
writes to this script:

  trace_check.py [--plan] tsdx_trace.json tsdx_metrics.json

Checks (exit 0 = pass, 1 = fail, 2 = usage/IO error):

  trace shape       tsdx_trace.json is Chrome trace-event JSON: a non-empty
                    "traceEvents" list of complete ("ph": "X") events, each
                    with name / tid / ts / dur and an args.trace_id.
  end-to-end trace  At least one trace ID covers the full request path:
                    serve.request + serve.queue_wait + serve.batch +
                    extract.batch + model.embed + model.attention + gemm.mm
                    all sharing that ID — i.e. one submitted clip was traced
                    from the queue through batch formation into the model's
                    layers and down to the GEMM kernel.
  span nesting      For such a trace, on the dispatching worker's thread:
                    extract.batch sits inside serve.batch, and model.* /
                    gemm.mm sit inside extract.batch (span intervals nest,
                    which is what makes the Perfetto rendering meaningful).
  metrics shape     tsdx_metrics.json has counters/gauges/histograms maps;
                    serve.submitted and serve.completed counted this run's
                    requests, gemm.calls > 0, and the serve.latency_ms
                    histogram holds as many samples as serve.completed.

With --plan, the run under test served through compiled inference plans
(`serve_demo --smoke --metrics-dump --compiled`) and the checks change to
the plan-level span structure instead:

  plan trace        At least one trace ID covers serve.request +
                    serve.queue_wait + serve.batch + plan.execute — a
                    request batch executed through a compiled plan, not the
                    dynamic interpreter. (model.*/gemm.* spans are NOT
                    required: the compiled hot path may dispatch to the
                    plan's wide kernels, which trade per-op spans for the
                    single plan.execute span.)
  plan nesting      plan.execute sits inside serve.batch on the worker's
                    thread, and a plan.compile span exists somewhere in the
                    buffer (compilation happens once per clip geometry, on
                    the first batch that sees it).
  plan metrics      counters plan.compiled and plan.executions are positive
                    — plans were built and actually used, not silently
                    fallen back from (the serve.* checks still apply).
"""

from __future__ import annotations

import json
import sys

REQUIRED_SPANS = {
    "serve.request",
    "serve.queue_wait",
    "serve.batch",
    "extract.batch",
    "model.embed",
    "model.attention",
    "gemm.mm",
}

# Parent -> children that must nest inside it (same thread, same trace).
NESTING = {
    "serve.batch": ["extract.batch"],
    "extract.batch": ["model.embed", "model.attention", "gemm.mm"],
}

# --plan mode: the compiled-path equivalents. One span covers the whole
# fused execution, so the request path bottoms out at plan.execute.
PLAN_REQUIRED_SPANS = {
    "serve.request",
    "serve.queue_wait",
    "serve.batch",
    "plan.execute",
}

PLAN_NESTING = {
    "serve.batch": ["plan.execute"],
}


def fail(msg: str) -> None:
    print(f"trace_check: FAIL: {msg}")
    sys.exit(1)


def load_json(path: str):
    try:
        with open(path, encoding="utf-8") as f:
            return json.load(f)
    except (OSError, json.JSONDecodeError) as err:
        print(f"trace_check: cannot read {path}: {err}")
        sys.exit(2)


def check_trace(trace, plan_mode: bool) -> None:
    required = PLAN_REQUIRED_SPANS if plan_mode else REQUIRED_SPANS
    nesting = PLAN_NESTING if plan_mode else NESTING
    events = trace.get("traceEvents")
    if not isinstance(events, list) or not events:
        fail("traceEvents is missing or empty")
    by_trace: dict[int, list[dict]] = {}
    for i, e in enumerate(events):
        for key in ("name", "ph", "tid", "ts", "dur", "args"):
            if key not in e:
                fail(f"traceEvents[{i}] is missing `{key}`")
        if e["ph"] != "X":
            fail(f"traceEvents[{i}] has ph={e['ph']!r}, want complete 'X'")
        if e["dur"] < 0:
            fail(f"traceEvents[{i}] has negative duration")
        tid = e["args"].get("trace_id")
        if not isinstance(tid, int):
            fail(f"traceEvents[{i}] has no integer args.trace_id")
        by_trace.setdefault(tid, []).append(e)

    full = [
        tid
        for tid, spans in by_trace.items()
        if tid > 0 and required <= {s["name"] for s in spans}
    ]
    if not full:
        seen = {s["name"] for spans in by_trace.values() for s in spans}
        fail(
            "no trace ID carries the full request path "
            f"{sorted(required)}; span names seen: {sorted(seen)}"
        )
    if plan_mode and not any(
        s["name"] == "plan.compile" for spans in by_trace.values() for s in spans
    ):
        fail("no plan.compile span — nothing was compiled this run")

    # Nesting holds for at least one fully-traced request: RAII spans on the
    # worker thread must contain their children's intervals exactly.
    def nests(spans: list[dict]) -> bool:
        for parent_name, children in nesting.items():
            parents = [s for s in spans if s["name"] == parent_name]
            for child_name in children:
                ok = any(
                    p["tid"] == c["tid"]
                    and p["ts"] <= c["ts"]
                    and c["ts"] + c["dur"] <= p["ts"] + p["dur"]
                    for c in spans
                    if c["name"] == child_name
                    for p in parents
                )
                if not ok:
                    return False
        return True

    if not any(nests(by_trace[tid]) for tid in full):
        want = (
            "serve.batch > plan.execute on one thread"
            if plan_mode
            else "serve.batch > extract.batch > model.*/gemm.mm on one thread"
        )
        fail(f"no fully-traced request has properly nested spans ({want})")
    print(
        f"trace_check: trace OK — {len(events)} spans, "
        f"{len(full)} fully-traced request(s)"
    )


def check_metrics(metrics, plan_mode: bool) -> None:
    for section in ("counters", "gauges", "histograms"):
        if not isinstance(metrics.get(section), dict):
            fail(f"metrics JSON is missing the `{section}` map")
    counters = metrics["counters"]
    # gemm.calls is not required in plan mode: the compiled hot path may run
    # the plan's own wide kernels, which the dynamic GEMM counters never see.
    required = ["serve.submitted", "serve.completed"]
    required += ["plan.compiled", "plan.executions"] if plan_mode else ["gemm.calls"]
    for name in required:
        if counters.get(name, 0) <= 0:
            fail(f"counter `{name}` is missing or zero")
    latency = metrics["histograms"].get("serve.latency_ms")
    if latency is None:
        fail("histogram `serve.latency_ms` is missing")
    if latency.get("count", 0) != counters["serve.completed"]:
        fail(
            f"serve.latency_ms holds {latency.get('count', 0)} samples, "
            f"want one per completed request ({counters['serve.completed']})"
        )
    if plan_mode:
        detail = (
            f"{counters['plan.compiled']} plan(s) compiled, "
            f"{counters['plan.executions']} compiled execution(s)"
        )
    else:
        detail = f"{counters['gemm.calls']} GEMM calls"
    print(
        f"trace_check: metrics OK — {counters['serve.completed']} completed, "
        + detail
    )


def main() -> int:
    argv = sys.argv[1:]
    plan_mode = "--plan" in argv
    argv = [a for a in argv if a != "--plan"]
    if len(argv) != 2:
        print(__doc__)
        return 2
    check_trace(load_json(argv[0]), plan_mode)
    check_metrics(load_json(argv[1]), plan_mode)
    print("trace_check: PASS" + (" (plan mode)" if plan_mode else ""))
    return 0


if __name__ == "__main__":
    sys.exit(main())
