#!/usr/bin/env python3
"""obs_report — render critical-path latency attribution from a metrics dump.

The flight recorder (src/obs/recorder.cpp) decomposes every served request's
end-to-end latency into named segments and feeds them to the metrics
registry as obs.segment_ms.* histograms; serve_demo --metrics-dump writes
the registry (tsdx_metrics.json) and the recorder ring (tsdx_recorder.json).
This script turns those files back into the operator's view:

  obs_report.py tsdx_metrics.json [--recorder tsdx_recorder.json]
                [--max-unattributed FRAC]

* A per-segment table: count, p50/p95/p99 (bucket-interpolated), total ms,
  and each segment's share of the summed end-to-end time.
* The attribution check: the four server-side segments (admission, queue,
  batch_wait, execute) are a complete partition of e2e by construction —
  their sums must add up to obs.e2e_ms's sum. The residual fraction is
  reported, and with --max-unattributed FRAC the script exits 1 when it
  exceeds FRAC (CI runs with 0.05: more than 5% unattributed time means the
  segment derivation and the e2e clock have drifted apart).
* With --recorder, the slowest served requests from the ring, each with its
  trace ID and per-segment breakdown — the concrete requests behind the p99.

Exit codes: 0 = pass, 1 = attribution gate failed, 2 = usage/IO error.
"""

from __future__ import annotations

import json
import sys

# The server-side segments, in pipeline order. They partition e2e exactly
# (recorder.cpp clamps missing milestones to zero-length segments).
SEGMENTS = ["admission", "queue", "batch_wait", "execute"]
# Router-side extra: backoff spent between failover attempts. Reported but
# outside the e2e partition (it is a different request population).
EXTRA_SEGMENTS = ["retry_backoff"]


def die(msg: str) -> None:
    print(f"obs_report: {msg}", file=sys.stderr)
    sys.exit(2)


def load_json(path: str):
    try:
        with open(path, encoding="utf-8") as f:
            return json.load(f)
    except (OSError, json.JSONDecodeError) as err:
        die(f"cannot read {path}: {err}")


def quantile(hist: dict, q: float) -> float:
    """Bucket-interpolated quantile from {count, buckets: [{le, count}...]}
    with per-bucket (non-cumulative) counts, mirroring Histogram::quantile."""
    total = hist.get("count", 0)
    if total == 0:
        return 0.0
    rank = q * total
    cumulative = 0
    prev_bound = 0.0
    last_finite = 0.0
    for bucket in hist["buckets"]:
        le = bucket["le"]
        count = bucket["count"]
        if le == "+Inf":
            return last_finite  # rank landed in the overflow bucket
        le = float(le)
        if cumulative + count >= rank and count > 0:
            into = (rank - cumulative) / count
            return prev_bound + (le - prev_bound) * min(1.0, max(0.0, into))
        cumulative += count
        prev_bound = le
        last_finite = le
    return last_finite


def segment_row(name: str, hist: dict, e2e_sum: float) -> str:
    share = hist["sum"] / e2e_sum if e2e_sum > 0 else 0.0
    return (
        f"  {name:<14} {hist.get('count', 0):>8} "
        f"{quantile(hist, 0.50):>9.3f} {quantile(hist, 0.95):>9.3f} "
        f"{quantile(hist, 0.99):>9.3f} {hist['sum']:>12.3f} {share:>7.1%}"
    )


def report_metrics(metrics, max_unattributed: float | None) -> int:
    histograms = metrics.get("histograms")
    if not isinstance(histograms, dict):
        die("metrics JSON has no `histograms` map")
    e2e = histograms.get("obs.e2e_ms")
    if e2e is None or e2e.get("count", 0) == 0:
        die(
            "metrics JSON has no populated obs.e2e_ms histogram — was the "
            "dump taken from a run that served requests?"
        )
    e2e_sum = e2e["sum"]

    print("critical-path attribution (ms):")
    print(
        f"  {'segment':<14} {'count':>8} {'p50':>9} {'p95':>9} {'p99':>9} "
        f"{'total':>12} {'share':>7}"
    )
    attributed = 0.0
    for name in SEGMENTS:
        hist = histograms.get(f"obs.segment_ms.{name}")
        if hist is None:
            die(f"metrics JSON is missing obs.segment_ms.{name}")
        attributed += hist["sum"]
        print(segment_row(name, hist, e2e_sum))
    print(segment_row("e2e", e2e, e2e_sum))
    for name in EXTRA_SEGMENTS:
        hist = histograms.get(f"obs.segment_ms.{name}")
        if hist is not None and hist.get("count", 0) > 0:
            print(segment_row(f"{name} *", hist, e2e_sum))
            print("  (* router-side backoff, outside the e2e partition)")

    residual = abs(e2e_sum - attributed)
    frac = residual / e2e_sum if e2e_sum > 0 else 0.0
    print(
        f"\nunattributed: {residual:.3f} ms of {e2e_sum:.3f} ms e2e "
        f"({frac:.2%})"
    )
    if max_unattributed is not None and frac > max_unattributed:
        print(
            f"obs_report: FAIL — unattributed fraction {frac:.2%} exceeds "
            f"the {max_unattributed:.0%} gate: the segment decomposition no "
            "longer accounts for the measured end-to-end time"
        )
        return 1
    return 0


def report_recorder(dump, top: int = 5) -> None:
    records = dump.get("records", []) if isinstance(dump, dict) else []
    served = [
        r
        for r in records
        if r.get("kind") == "server"
        and r.get("outcome") in ("completed", "degraded", "failed")
    ]
    if not served:
        print("\nrecorder: no served records in the ring")
        return
    served.sort(key=lambda r: r["done_ns"] - r["submit_ns"], reverse=True)
    print(f"\nslowest {min(top, len(served))} served request(s):")
    print(
        f"  {'trace':>8} {'e2e ms':>9} {'adm':>7} {'queue':>7} {'bwait':>7} "
        f"{'exec':>7}  {'path':<8} {'outcome':<10} batch"
    )
    for r in served[:top]:
        # Mirror recorder.cpp's clamping: hooks run on different threads, so
        # a later milestone can carry an earlier raw timestamp by a few ns.
        submit = r["submit_ns"]
        enqueue = max(submit, r["enqueue_ns"] or submit)
        dispatch = max(enqueue, r["dispatch_ns"] or enqueue)
        execute = max(dispatch, r["execute_ns"] or dispatch)
        done = max(execute, r["done_ns"])
        ms = 1e-6
        print(
            f"  {r['trace_id']:>8} {(done - submit) * ms:>9.3f} "
            f"{(enqueue - submit) * ms:>7.3f} "
            f"{(dispatch - enqueue) * ms:>7.3f} "
            f"{(execute - dispatch) * ms:>7.3f} {(done - execute) * ms:>7.3f}"
            f"  {r['path']:<8} {r['outcome']:<10} "
            f"{r['batch_size']}@w{r['worker']}"
        )


def main() -> int:
    argv = sys.argv[1:]
    recorder = None
    max_unattributed = None
    if "--recorder" in argv:
        i = argv.index("--recorder")
        if i + 1 >= len(argv):
            die("--recorder needs a file argument")
        recorder = argv[i + 1]
        del argv[i : i + 2]
    if "--max-unattributed" in argv:
        i = argv.index("--max-unattributed")
        if i + 1 >= len(argv):
            die("--max-unattributed needs a fraction argument")
        try:
            max_unattributed = float(argv[i + 1])
        except ValueError:
            die(f"--max-unattributed: not a number: {argv[i + 1]!r}")
        del argv[i : i + 2]
    if len(argv) != 1:
        print(__doc__)
        return 2
    status = report_metrics(load_json(argv[0]), max_unattributed)
    if recorder is not None:
        report_recorder(load_json(recorder))
    if status == 0:
        print("obs_report: PASS")
    return status


if __name__ == "__main__":
    sys.exit(main())
