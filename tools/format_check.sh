#!/bin/sh
# format_check.sh — check-only clang-format pass over the tracked C++ sources.
# Exits non-zero if any file would be reformatted; never modifies files.
set -eu

CLANG_FORMAT="${1:-clang-format}"
cd "$(dirname "$0")/.."

if ! command -v "$CLANG_FORMAT" >/dev/null 2>&1; then
  echo "format_check: $CLANG_FORMAT not found; skipping" >&2
  exit 0
fi

status=0
for f in $(find src bench tests examples -name '*.hpp' -o -name '*.cpp' | sort); do
  if ! "$CLANG_FORMAT" --dry-run --Werror "$f" >/dev/null 2>&1; then
    echo "format_check: would reformat $f"
    status=1
  fi
done

if [ "$status" -eq 0 ]; then
  echo "format_check: clean"
fi
exit "$status"
