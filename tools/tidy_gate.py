#!/usr/bin/env python3
"""tidy_gate.py — enforced clang-tidy gate with a committed baseline.

Runs clang-tidy (via run-clang-tidy when available, else sequentially) over
every .cpp under src/ using the compile database of a clang configure
(`cmake --preset clang-analysis`), normalizes the findings, and compares
them against tools/tidy_baseline.txt:

  * a finding not in the baseline fails the gate (exit 1) — new warnings are
    build breaks, exactly like -Werror;
  * a baseline entry that no longer fires is reported as stale so the
    baseline can be shrunk (tidy debt only ratchets down);
  * `--update` rewrites the baseline from the current run.

Findings are normalized to `<repo-relative-file> [<check>]` — no line
numbers or message text, so unrelated edits and clang version drift do not
invalidate the baseline. The committed baseline is empty: the tree is
tidy-clean and must stay that way.

Exit 0 with a skip message when clang-tidy or the compile database is
missing (developer containers without clang); the clang-analysis CI job is
the enforcement point.
"""

from __future__ import annotations

import argparse
import json
import re
import shutil
import subprocess
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
BASELINE = REPO_ROOT / "tools" / "tidy_baseline.txt"

# `/abs/path/file.cpp:12:3: warning: text [check-name]`
FINDING_RE = re.compile(
    r"^(?P<file>/[^:]+\.(?:cpp|hpp|h|cc)):\d+:\d+:\s+"
    r"(?:warning|error):\s+.*\[(?P<checks>[A-Za-z0-9.,_-]+)\]\s*$"
)


def compile_db_sources(build_dir: Path) -> list[Path]:
    """The src/ .cpp files clang-tidy can analyze (present in the db)."""
    db = build_dir / "compile_commands.json"
    entries = json.loads(db.read_text())
    sources = set()
    for entry in entries:
        path = Path(entry["file"])
        if not path.is_absolute():
            path = (Path(entry["directory"]) / path).resolve()
        try:
            rel = path.resolve().relative_to(REPO_ROOT)
        except ValueError:
            continue
        if rel.parts and rel.parts[0] == "src":
            sources.add(path.resolve())
    return sorted(sources)


def run_tidy(build_dir: Path, sources: list[Path]) -> str:
    """Run clang-tidy over `sources`, returning combined stdout."""
    runner = shutil.which("run-clang-tidy") or shutil.which(
        "run-clang-tidy-14"
    )
    if runner:
        # run-clang-tidy parallelizes and takes regex file filters.
        proc = subprocess.run(
            [runner, "-quiet", "-p", str(build_dir), r"^.*/src/.*\.cpp$"],
            capture_output=True,
            text=True,
            cwd=REPO_ROOT,
        )
        return proc.stdout + proc.stderr
    out = []
    for source in sources:
        proc = subprocess.run(
            ["clang-tidy", "--quiet", "-p", str(build_dir), str(source)],
            capture_output=True,
            text=True,
            cwd=REPO_ROOT,
        )
        out.append(proc.stdout)
        out.append(proc.stderr)
    return "".join(out)


def normalize(output: str) -> set[str]:
    findings = set()
    for line in output.splitlines():
        match = FINDING_RE.match(line.strip())
        if not match:
            continue
        path = Path(match.group("file"))
        try:
            rel = path.resolve().relative_to(REPO_ROOT)
        except ValueError:
            continue  # a system header leaked through the header filter
        for check in match.group("checks").split(","):
            findings.add(f"{rel.as_posix()} [{check}]")
    return findings


def read_baseline() -> set[str]:
    if not BASELINE.exists():
        return set()
    entries = set()
    for line in BASELINE.read_text().splitlines():
        line = line.strip()
        if line and not line.startswith("#"):
            entries.add(line)
    return entries


def write_baseline(findings: set[str]) -> None:
    lines = [
        "# tidy_baseline.txt — accepted clang-tidy findings, one",
        "# `<file> [<check>]` per line. Maintained by tools/tidy_gate.py",
        "# (--update); the gate fails on any finding not listed here, so",
        "# this file only ever shrinks. An empty list means src/ is",
        "# tidy-clean.",
    ]
    lines.extend(sorted(findings))
    BASELINE.write_text("\n".join(lines) + "\n")


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--build-dir",
        type=Path,
        default=REPO_ROOT / "build-clang",
        help="build dir with compile_commands.json (default: build-clang)",
    )
    parser.add_argument(
        "--update",
        action="store_true",
        help="rewrite the baseline from this run instead of gating",
    )
    args = parser.parse_args()

    if not (shutil.which("clang-tidy") or shutil.which("run-clang-tidy")):
        print("tidy_gate: clang-tidy not found; skipping (CI enforces)")
        return 0
    build_dir = args.build_dir.resolve()
    if not (build_dir / "compile_commands.json").exists():
        print(
            f"tidy_gate: no compile_commands.json in {build_dir}; "
            "configure with `cmake --preset clang-analysis` first"
        )
        return 0

    sources = compile_db_sources(build_dir)
    if not sources:
        print("tidy_gate: compile database lists no src/ sources",
              file=sys.stderr)
        return 1
    print(f"tidy_gate: analyzing {len(sources)} src/ files ...")
    findings = normalize(run_tidy(build_dir, sources))

    if args.update:
        write_baseline(findings)
        print(f"tidy_gate: baseline rewritten with {len(findings)} entries")
        return 0

    baseline = read_baseline()
    new = sorted(findings - baseline)
    stale = sorted(baseline - findings)
    if stale:
        print("tidy_gate: stale baseline entries (fixed — remove them):")
        for entry in stale:
            print(f"  {entry}")
    if new:
        print("tidy_gate: NEW clang-tidy findings (not in baseline):",
              file=sys.stderr)
        for entry in new:
            print(f"  {entry}", file=sys.stderr)
        print(
            "tidy_gate: fix them or (for accepted debt) re-baseline with "
            "tools/tidy_gate.py --update",
            file=sys.stderr,
        )
        return 1
    print(f"tidy_gate: OK ({len(findings)} findings, all baselined)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
