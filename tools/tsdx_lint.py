#!/usr/bin/env python3
"""tsdx_lint — repo-invariant checker for the tsdx tree.

Enforced invariants (each maps to a rule id shown in diagnostics):

  header-guard      Every header under src/, bench/, tests/ uses `#pragma once`
                    (the repo convention; no #ifndef-style guards).
  raw-array-new     No raw `new T[...]` / `delete[]` outside src/tensor/.
                    Owning storage lives in std::vector / smart pointers; the
                    tensor layer is the only place allowed to opt out (it
                    currently doesn't either, but it owns the memory model).
  bench-common      Every benchmark translation unit in bench/ includes
                    bench_common.hpp so all reconstructed tables share one
                    dataset recipe and train/eval loop.
  raw-thread        No raw std::thread / std::jthread construction outside
                    src/serve/ and the intra-op pool implementation
                    (src/tensor/kernels/parallel_for.{hpp,cpp}) — every
                    thread in a tsdx process must go through the serve layer
                    (ThreadPool / InferenceServer / the Router's relay and
                    probe pools, src/serve/router.cpp) or tsdx::par, which
                    own spawning and deterministic joining. Inside src/tensor/
                    specifically, compute code must use tsdx::par so results
                    stay deterministic at any thread count. Static members
                    like std::thread::hardware_concurrency() are fine.
                    (src/serve/ headers are swept by the header-guard and
                    raw-array-new rules like every other module.)
  catch-all-swallow No `catch (...)` outside src/serve/ unless the handler
                    rethrows (`throw;`) or routes through the fault-injection
                    layer (`fault::`). A catch-all that swallows is how
                    recovery bugs hide: the serve layer is the one place with
                    a contract for translating arbitrary failures (worker
                    supervision, circuit breaker, degraded fallback, the
                    Router's failover retries in src/serve/router.cpp);
                    every other layer must let unknown exceptions propagate
                    to it.
  taxonomy-int      No floating-point literals in src/sdl/taxonomy.{hpp,cpp}.
                    The SDL slot tables are pure integral enums; a float
                    literal there means an accidental float->int narrowing.
  raw-log           No raw std::cout / std::cerr / printf / fprintf logging
                    in src/serve/, src/obs/, src/index/ or src/plan/ —
                    operational diagnostics in
                    those layers go through TSDX_LOG_INFO / TSDX_LOG_WARN
                    (src/obs/log.hpp, the single allowlisted raw-stderr
                    site). A server's stdout belongs to its operator. This
                    covers the flight recorder (src/obs/recorder.cpp) and
                    SLO engine (src/obs/slo.cpp) too: an anomaly dump is
                    written with fopen/fwrite to TSDX_OBS_DUMP_DIR, never
                    narrated to the console. snprintf-into-a-returned-string
                    (stats table printers) is not logging and stays legal.
  op-shape-check    Every public op declared in src/tensor/ops.hpp and
                    src/tensor/nn_ops.hpp validates its input shapes: its
                    definition must use TSDX_CHECK / TSDX_SHAPE_ASSERT, go
                    through a validating helper (binary_op / unary_op /
                    classify / shape_error), or delegate to another validated
                    op. Genuinely shape-agnostic ops are allowlisted below.
  raw-mutex         No bare std::mutex / std::lock_guard / std::unique_lock /
                    std::condition_variable in src/serve/, src/obs/,
                    src/index/ or src/plan/ — those
                    layers lock through tsdx::Mutex / LockGuard / UniqueLock /
                    CondVar (src/core/annotations.hpp) so every lock carries
                    thread-safety annotations and a lockorder::Rank (the
                    router stack — src/serve/router.cpp, admission.cpp,
                    replica.cpp — sits at the bottom ranks kRouter <
                    kAdmission < kReplica of that hierarchy, while the
                    obs v2 surfaces sit near the top: kSlo < kRecorder <
                    kRegistry < kTraceRing, so the SLO engine may snapshot
                    the recorder ring and span buffer while holding its
                    lock). The wrappers themselves (src/core/) are the one
                    place the raw primitives live.
  unannotated-shared  A mutable data member declared after a tsdx::Mutex
                    member in the same class must carry TSDX_GUARDED_BY (or
                    be a const / static / atomic / another sync primitive).
                    Positional convention: guarded state sits below its lock,
                    so an unannotated member next to a Mutex is either a
                    missing annotation or state whose locking story is
                    undocumented. Checked in src/serve/, src/obs/,
                    src/index/, src/plan/ and src/tensor/kernels/ — which
                    sweeps the new obs v2 state too: the Recorder's ring and
                    the SloEngine's rolling buckets / dump budget are all
                    TSDX_GUARDED_BY their rank-checked mutexes.

Usage: tsdx_lint.py [repo_root]      (exit 0 = clean, 1 = violations)
If repo_root is omitted it is derived from this script's location, so the
linter gives identical results from any working directory.
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

# Ops whose domain really is every shape; nothing to validate.
SHAPE_AGNOSTIC_OPS = {"sum_all"}

# Helpers that perform validation on behalf of their caller. `unary_op` is in
# this set because elementwise unary ops are shape-agnostic by construction;
# `matmul_dims` centralizes the matmul/matmul_nt shape contract (ops.cpp).
VALIDATING_HELPERS = {"binary_op", "unary_op", "classify", "shape_error",
                      "matmul_dims"}

VALIDATION_MACROS = ("TSDX_CHECK", "TSDX_SHAPE_ASSERT")


def strip_comments_and_strings(text: str) -> str:
    """Blank out comments and string/char literals, preserving line structure."""
    out = []
    i, n = 0, len(text)
    while i < n:
        ch = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if ch == "/" and nxt == "/":
            j = text.find("\n", i)
            j = n if j == -1 else j
            i = j
        elif ch == "/" and nxt == "*":
            j = text.find("*/", i + 2)
            j = n - 2 if j == -1 else j
            out.append("\n" * text.count("\n", i, j + 2))
            i = j + 2
        elif ch in "\"'":
            quote = ch
            j = i + 1
            while j < n and text[j] != quote:
                j += 2 if text[j] == "\\" else 1
            out.append(quote + quote)
            i = j + 1
        else:
            out.append(ch)
            i += 1
    return "".join(out)


class Linter:
    def __init__(self, root: Path):
        self.root = root
        self.errors: list[str] = []

    def error(self, path: Path, line: int, rule: str, msg: str) -> None:
        rel = path.relative_to(self.root)
        self.errors.append(f"{rel}:{line}: [{rule}] {msg}")

    # ---- header-guard -------------------------------------------------------

    def check_header_guards(self) -> None:
        for sub in ("src", "bench", "tests"):
            for path in sorted((self.root / sub).rglob("*.hpp")):
                text = path.read_text()
                if "#pragma once" not in text:
                    self.error(path, 1, "header-guard",
                               "header is missing `#pragma once`")
                elif re.search(r"^#ifndef\s+\w+_HPP", text, re.M):
                    self.error(path, 1, "header-guard",
                               "mixes #ifndef guard with `#pragma once`")

    # ---- raw-array-new ------------------------------------------------------

    def check_raw_array_new(self) -> None:
        tensor_dir = self.root / "src" / "tensor"
        pats = (re.compile(r"\bnew\s+[\w:<>,\s]+\["),
                re.compile(r"\bdelete\s*\[\]"))
        for sub in ("src", "bench", "tests", "examples"):
            for path in sorted((self.root / sub).rglob("*")):
                if path.suffix not in (".hpp", ".cpp"):
                    continue
                if tensor_dir in path.parents:
                    continue
                clean = strip_comments_and_strings(path.read_text())
                for lineno, line in enumerate(clean.splitlines(), 1):
                    if any(p.search(line) for p in pats):
                        self.error(path, lineno, "raw-array-new",
                                   "raw array new/delete outside src/tensor/")

    # ---- raw-thread ---------------------------------------------------------

    def check_raw_thread(self) -> None:
        serve_dir = self.root / "src" / "serve"
        tensor_dir = self.root / "src" / "tensor"
        # The intra-op pool is the one compute-side owner of threads; see
        # parallel_for.hpp's determinism contract.
        par_files = {tensor_dir / "kernels" / "parallel_for.hpp",
                     tensor_dir / "kernels" / "parallel_for.cpp"}
        # `std::thread` / `std::jthread` as a type (construction, members,
        # containers of threads) — but not scoped statics like
        # `std::thread::hardware_concurrency()`.
        pat = re.compile(r"\bstd::j?thread\b(?!::)")
        for sub in ("src", "bench", "tests", "examples"):
            for path in sorted((self.root / sub).rglob("*")):
                if path.suffix not in (".hpp", ".cpp"):
                    continue
                if serve_dir in path.parents or path in par_files:
                    continue
                in_tensor = tensor_dir in path.parents
                clean = strip_comments_and_strings(path.read_text())
                for lineno, line in enumerate(clean.splitlines(), 1):
                    if pat.search(line):
                        if in_tensor:
                            self.error(path, lineno, "raw-thread",
                                       "raw std::thread in src/tensor/ — "
                                       "compute kernels must use tsdx::par "
                                       "(kernels/parallel_for.hpp) so results "
                                       "are deterministic at any thread count")
                        else:
                            self.error(path, lineno, "raw-thread",
                                       "raw std::thread outside src/serve/ — "
                                       "use tsdx::serve::ThreadPool, the "
                                       "InferenceServer worker pool, or "
                                       "tsdx::par for intra-op parallelism")

    # ---- catch-all-swallow --------------------------------------------------

    def check_catch_all_swallow(self) -> None:
        serve_dir = self.root / "src" / "serve"
        catch_all = re.compile(r"\bcatch\s*\(\s*\.\.\.\s*\)")
        rethrow = re.compile(r"\bthrow\s*;")
        for sub in ("src", "bench", "tests", "examples"):
            for path in sorted((self.root / sub).rglob("*")):
                if path.suffix not in (".hpp", ".cpp"):
                    continue
                if serve_dir in path.parents:
                    continue
                clean = strip_comments_and_strings(path.read_text())
                for m in catch_all.finditer(clean):
                    lineno = clean.count("\n", 0, m.start()) + 1
                    brace = clean.find("{", m.end())
                    if brace == -1:
                        continue
                    depth, j = 0, brace
                    while j < len(clean):
                        if clean[j] == "{":
                            depth += 1
                        elif clean[j] == "}":
                            depth -= 1
                            if depth == 0:
                                break
                        j += 1
                    body = clean[brace:j + 1]
                    if not rethrow.search(body) and "fault::" not in body:
                        self.error(path, lineno, "catch-all-swallow",
                                   "catch (...) outside src/serve/ must "
                                   "rethrow (`throw;`) or route through the "
                                   "fault:: layer — swallowing unknown "
                                   "exceptions hides recovery bugs")

    # ---- bench-common -------------------------------------------------------

    def check_bench_common(self) -> None:
        for path in sorted((self.root / "bench").glob("*.cpp")):
            if '#include "bench_common.hpp"' not in path.read_text():
                self.error(path, 1, "bench-common",
                           "bench translation unit must use bench_common.hpp")

    # ---- raw-log ------------------------------------------------------------

    def check_raw_log(self) -> None:
        # obs/log.hpp is the one place allowed to touch stderr directly; the
        # macros it defines are what everyone else uses.
        allow = {self.root / "src" / "obs" / "log.hpp"}
        # cout/cerr as streams, printf/fprintf as calls. The lookbehind keeps
        # snprintf (formatting into a returned buffer, not logging) legal.
        pat = re.compile(
            r"std::cout|std::cerr|\bfprintf\s*\(|(?<!\w)printf\s*\(")
        for sub in ("src/serve", "src/obs", "src/index", "src/plan"):
            for path in sorted((self.root / sub).rglob("*")):
                if path.suffix not in (".hpp", ".cpp") or path in allow:
                    continue
                clean = strip_comments_and_strings(path.read_text())
                for lineno, line in enumerate(clean.splitlines(), 1):
                    if pat.search(line):
                        self.error(path, lineno, "raw-log",
                                   "raw stdout/stderr logging in the serving/"
                                   "observability layers — use TSDX_LOG_INFO /"
                                   " TSDX_LOG_WARN from obs/log.hpp")

    # ---- taxonomy-int -------------------------------------------------------

    def check_taxonomy_tables(self) -> None:
        float_lit = re.compile(r"\b\d+\.\d*f?|\b\.\d+f?")
        for name in ("taxonomy.hpp", "taxonomy.cpp"):
            path = self.root / "src" / "sdl" / name
            if not path.exists():
                continue
            clean = strip_comments_and_strings(path.read_text())
            for lineno, line in enumerate(clean.splitlines(), 1):
                if float_lit.search(line):
                    self.error(path, lineno, "taxonomy-int",
                               "float literal in integral SDL taxonomy table "
                               f"({line.strip()})")

    # ---- op-shape-check -----------------------------------------------------

    @staticmethod
    def _public_ops(header_text: str) -> list[str]:
        decl = re.compile(
            r"^(?:Tensor|std::vector<std::int64_t>)\s+(\w+)\(", re.M)
        return decl.findall(header_text)

    @staticmethod
    def _op_bodies(cpp_text: str) -> dict[str, tuple[int, str]]:
        """Map op name -> (line, body text) for column-0 definitions."""
        bodies: dict[str, tuple[int, str]] = {}
        defn = re.compile(
            r"^(?:Tensor|std::vector<std::int64_t>)\s+(\w+)\(", re.M)
        for m in defn.finditer(cpp_text):
            name = m.group(1)
            brace = cpp_text.find("{", m.end())
            if brace == -1:
                continue  # declaration, not definition
            depth, j = 0, brace
            while j < len(cpp_text):
                if cpp_text[j] == "{":
                    depth += 1
                elif cpp_text[j] == "}":
                    depth -= 1
                    if depth == 0:
                        break
                j += 1
            line = cpp_text.count("\n", 0, m.start()) + 1
            bodies[name] = (line, cpp_text[brace:j + 1])
        return bodies

    def check_op_shape_validation(self) -> None:
        pairs = [("src/tensor/ops.hpp", "src/tensor/ops.cpp"),
                 ("src/tensor/nn_ops.hpp", "src/tensor/nn_ops.cpp")]
        call = {h: re.compile(rf"\b{h}\s*\(") for h in VALIDATING_HELPERS}
        for hpp, cpp in pairs:
            header, source = self.root / hpp, self.root / cpp
            if not header.exists() or not source.exists():
                self.error(self.root / "CMakeLists.txt", 1, "op-shape-check",
                           f"expected {hpp} and {cpp} to exist")
                continue
            ops = self._public_ops(strip_comments_and_strings(
                header.read_text()))
            bodies = self._op_bodies(strip_comments_and_strings(
                source.read_text()))
            validated = set(SHAPE_AGNOSTIC_OPS)
            # Fixed point: an op is validated if it checks directly, uses a
            # validating helper, or calls an already-validated sibling op.
            changed = True
            while changed:
                changed = False
                for name in ops:
                    if name in validated or name not in bodies:
                        continue
                    body = bodies[name][1]
                    ok = (any(macro in body for macro in VALIDATION_MACROS)
                          or any(p.search(body) for p in call.values())
                          or any(re.search(rf"\b{v}\s*\(", body)
                                 for v in validated))
                    if ok:
                        validated.add(name)
                        changed = True
            for name in ops:
                if name not in bodies:
                    self.error(source, 1, "op-shape-check",
                               f"public op `{name}` declared in {hpp} has no "
                               "column-0 definition here")
                elif name not in validated:
                    self.error(source, bodies[name][0], "op-shape-check",
                               f"public op `{name}` does not validate its "
                               "input shapes (TSDX_CHECK / TSDX_SHAPE_ASSERT)")

    # ---- raw-mutex ----------------------------------------------------------

    def check_raw_mutex(self) -> None:
        # std::mutex and friends as types; tsdx::Mutex wraps them exactly
        # once, in src/core/annotations.hpp (outside this rule's scope).
        pat = re.compile(
            r"\bstd::(?:mutex|timed_mutex|recursive_mutex|shared_mutex|"
            r"lock_guard|unique_lock|scoped_lock|shared_lock|"
            r"condition_variable(?:_any)?)\b")
        for sub in ("src/serve", "src/obs", "src/index", "src/plan"):
            for path in sorted((self.root / sub).rglob("*")):
                if path.suffix not in (".hpp", ".cpp"):
                    continue
                clean = strip_comments_and_strings(path.read_text())
                for lineno, line in enumerate(clean.splitlines(), 1):
                    if pat.search(line):
                        self.error(path, lineno, "raw-mutex",
                                   "raw std sync primitive in an annotated "
                                   "layer — use tsdx::Mutex / LockGuard / "
                                   "UniqueLock / CondVar from "
                                   "core/annotations.hpp so the lock is "
                                   "thread-safety-annotated and rank-checked")

    # ---- unannotated-shared -------------------------------------------------

    # Declarations that never need TSDX_GUARDED_BY: other sync primitives,
    # immutables, nested types, functions and access specifiers.
    _SHARED_EXEMPT = re.compile(
        r"^(?:mutable\s+)?(?:Mutex|CondVar)\b"
        r"|^(?:static|constexpr|using|friend|enum|struct|class|template"
        r"|public|private|protected|explicit|virtual|~)\b"
        r"|^const\b"
        r"|\bstd::atomic\b")

    def _member_statements(self, lines: list[str], start: int,
                           indent: int) -> list[tuple[int, str]]:
        """Joined `;`-terminated statements after `start` until the
        enclosing scope closes (a `}` at indentation below `indent`)."""
        statements: list[tuple[int, str]] = []
        buf: list[str] = []
        first = 0
        depth = 0  # nested scopes (function bodies, nested types) are skipped
        for lineno in range(start, len(lines)):
            line = lines[lineno]
            stripped = line.strip()
            if not stripped:
                continue
            if depth > 0:
                depth += stripped.count("{") - stripped.count("}")
                continue
            line_indent = len(line) - len(line.lstrip())
            if stripped.startswith("}") and line_indent < indent:
                break
            if not buf:
                first = lineno
            buf.append(stripped)
            net = stripped.count("{") - stripped.count("}")
            if net > 0:
                # Entering a nested scope: drop the opener and everything
                # inside — members of nested types get their own pass when
                # their own Mutex declaration matches.
                depth = net
                buf = []
            elif stripped.endswith(";"):
                statements.append((first + 1, " ".join(buf)))
                buf = []
        return statements

    def check_unannotated_shared(self) -> None:
        mutex_decl = re.compile(r"^(\s*)(?:mutable\s+)?Mutex\s+\w+")
        for sub in ("src/serve", "src/obs", "src/index", "src/plan",
                    "src/tensor/kernels"):
            for path in sorted((self.root / sub).rglob("*")):
                if path.suffix not in (".hpp", ".cpp"):
                    continue
                clean = strip_comments_and_strings(path.read_text())
                lines = clean.splitlines()
                for i, line in enumerate(lines):
                    m = mutex_decl.match(line)
                    if not m:
                        continue
                    # Find the end of the Mutex member's own statement.
                    j = i
                    while j < len(lines) and ";" not in lines[j]:
                        j += 1
                    for lineno, stmt in self._member_statements(
                            lines, j + 1, len(m.group(1))):
                        if "TSDX_GUARDED_BY" in stmt:
                            continue
                        if self._SHARED_EXEMPT.search(stmt):
                            continue
                        # Strip initializers, then treat a remaining `(` as
                        # a function declaration (data members only carry
                        # parens inside initializers or annotations).
                        head = re.split(r"=|\{", stmt, maxsplit=1)[0]
                        if "(" in head:
                            continue
                        self.error(path, lineno, "unannotated-shared",
                                   "mutable member below a tsdx::Mutex "
                                   "lacks TSDX_GUARDED_BY — annotate it "
                                   "(or move it above the lock if it is "
                                   f"not shared state): `{stmt}`")

    # ---- driver -------------------------------------------------------------

    def run(self) -> int:
        self.check_header_guards()
        self.check_raw_array_new()
        self.check_raw_thread()
        self.check_catch_all_swallow()
        self.check_bench_common()
        self.check_raw_log()
        self.check_taxonomy_tables()
        self.check_op_shape_validation()
        self.check_raw_mutex()
        self.check_unannotated_shared()
        if self.errors:
            for e in self.errors:
                print(e)
            by_rule: dict[str, int] = {}
            for e in self.errors:
                rule = e.split("[", 1)[1].split("]", 1)[0]
                by_rule[rule] = by_rule.get(rule, 0) + 1
            summary = "  ".join(f"{rule}={count}" for rule, count in
                                sorted(by_rule.items()))
            print(f"tsdx_lint: {len(self.errors)} violation(s)  [{summary}]")
            return 1
        print("tsdx_lint: clean")
        return 0


def main() -> int:
    # Default the root to this script's parent repo (not the CWD) so the
    # linter behaves identically from the repo root, a build dir, or CI.
    root = (Path(sys.argv[1]).resolve() if len(sys.argv) > 1
            else Path(__file__).resolve().parent.parent)
    if not (root / "CMakeLists.txt").exists():
        print(f"tsdx_lint: {root} does not look like the repo root",
              file=sys.stderr)
        return 2
    return Linter(root).run()


if __name__ == "__main__":
    sys.exit(main())
