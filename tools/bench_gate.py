#!/usr/bin/env python3
"""bench_gate — perf-regression gate for the bench-smoke CI job.

Compares a fresh bench JSON report against its committed baseline and fails
(exit 1) if any gated metric dropped more than the threshold (default 25%)
on any shape. Which metrics are gated is part of the report itself: a
top-level "gated_metrics" array names per-shape keys (all higher-is-better);
reports without the field get the historical bench_k1_kernels defaults
(blocked_gflops / parallel_gflops), so existing baselines keep working.

Gated benches and their committed baselines:

    bench_k1_kernels --smoke --json  ->  bench/BENCH_K1_baseline.json
    bench_i1_index   --smoke --json  ->  bench/BENCH_I1_baseline.json
    bench_k2_plan    --smoke --json  ->  bench/BENCH_K2_baseline.json

A gated metric that is present on one side but missing from the other (a
stale baseline, or a bench that stopped emitting a metric it is supposed to
defend) is a gate FAILURE with an expected-vs-found message, never a silent
skip.

The baseline is recorded on a reference run and then derated (multiplied by
0.8) before committing, so the gate tolerates runner-to-runner variance on
top of the explicit threshold; it exists to catch order-of-magnitude
regressions (a dropped fast path, an accidental de-vectorization, a pool that
stopped parallelizing, an index scanning everything), not single-digit noise.
Refresh with e.g.:

    build/bench/bench_k1_kernels --json /tmp/k1.json
    python3 tools/bench_gate.py --derate 0.8 /tmp/k1.json \
        > bench/BENCH_K1_baseline.json

A markdown comparison table is printed, and appended to the CI job summary
when $GITHUB_STEP_SUMMARY is set.

Usage:
    bench_gate.py CURRENT.json BASELINE.json [--threshold 0.25]
    bench_gate.py --derate 0.8 CURRENT.json     (emit derated baseline JSON)
"""

from __future__ import annotations

import argparse
import json
import os
import sys

DEFAULT_GATED_METRICS = ("blocked_gflops", "parallel_gflops")


def load(path: str) -> dict:
    with open(path) as f:
        return json.load(f)


def gated_metrics(report: dict) -> tuple[str, ...]:
    return tuple(report.get("gated_metrics", DEFAULT_GATED_METRICS))


def derate(report: dict, factor: float) -> dict:
    out = dict(report)
    out["derated_by"] = factor
    out["shapes"] = []
    # scalar_gflops is ungated context in the K1 report but derated alongside
    # so the baseline file reads consistently.
    derated_keys = ("scalar_gflops",) + gated_metrics(report)
    for shape in report["shapes"]:
        row = dict(shape)
        for key in derated_keys:
            if key in row:
                row[key] = round(row[key] * factor, 4)
        out["shapes"].append(row)
    if "summary" in out:
        out["summary"] = {
            k: (round(v * factor, 4) if isinstance(v, float) else v)
            for k, v in report["summary"].items()
        }
    return out


def compare(current: dict, baseline: dict, threshold: float) -> tuple[str, list[str]]:
    """Return (markdown table, list of failure strings)."""
    base_by_name = {s["name"]: s for s in baseline["shapes"]}
    failures: list[str] = []
    lines = [
        "| shape | metric | baseline | current | ratio | status |",
        "|---|---|---:|---:|---:|---|",
    ]
    for shape in current["shapes"]:
        name = shape["name"]
        base = base_by_name.get(name)
        if base is None:
            lines.append(f"| {name} | — | — | — | — | no baseline (new shape) |")
            continue
        for metric in gated_metrics(current):
            cur_v, base_v = shape.get(metric), base.get(metric)
            # A gated metric absent from either side is a gate failure, not a
            # skip: a silently-missing metric is exactly how a regression
            # hides (a stale baseline file, or a bench that stopped emitting
            # the metric it is supposed to defend).
            if cur_v is None or base_v is None:
                present = sorted(k for k in (base if cur_v is not None
                                             else shape) if k != "name")
                side = "baseline" if cur_v is not None else "current report"
                failures.append(
                    f"{name}/{metric}: gated metric missing from {side} "
                    f"(expected '{metric}', found only: {', '.join(present)})")
                lines.append(f"| {name} | {metric} | — | — | — "
                             f"| **FAIL** (missing from {side}) |")
                continue
            if base_v <= 0:
                failures.append(
                    f"{name}/{metric}: baseline value {base_v} is not a "
                    f"positive number — regenerate the baseline "
                    f"(tools/bench_gate.py --derate)")
                lines.append(f"| {name} | {metric} | {base_v} | {cur_v:.2f} "
                             f"| — | **FAIL** (bad baseline) |")
                continue
            ratio = cur_v / base_v
            ok = ratio >= 1.0 - threshold
            status = "ok" if ok else f"**FAIL** (>{threshold:.0%} drop)"
            if not ok:
                failures.append(
                    f"{name}/{metric}: {cur_v:.2f} vs baseline "
                    f"{base_v:.2f} ({ratio:.2f}x, floor {1.0 - threshold:.2f}x)")
            lines.append(
                f"| {name} | {metric} | {base_v:.2f} "
                f"| {cur_v:.2f} | {ratio:.2f}x | {status} |")
    missing = set(base_by_name) - {s["name"] for s in current["shapes"]}
    for name in sorted(missing):
        failures.append(f"{name}: present in baseline but missing from current run")
        lines.append(f"| {name} | — | — | — | — | **FAIL** (missing) |")
    return "\n".join(lines), failures


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("current", help="fresh bench JSON report")
    parser.add_argument("baseline", nargs="?",
                        help="committed baseline JSON to gate against")
    parser.add_argument("--threshold", type=float, default=0.25,
                        help="max tolerated fractional drop (default 0.25)")
    parser.add_argument("--derate", type=float, default=None, metavar="FACTOR",
                        help="emit CURRENT scaled by FACTOR as a new baseline "
                             "and exit (no gating)")
    args = parser.parse_args()

    current = load(args.current)
    if args.derate is not None:
        json.dump(derate(current, args.derate), sys.stdout, indent=2)
        print()
        return 0
    if args.baseline is None:
        parser.error("BASELINE is required unless --derate is given")

    baseline = load(args.baseline)
    for label, report in (("current", current), ("baseline", baseline)):
        if not isinstance(report.get("shapes"), list):
            print(f"bench_gate: {label} report has no 'shapes' array "
                  f"(top-level keys: {', '.join(sorted(report))})",
                  file=sys.stderr)
            return 2
    table, failures = compare(current, baseline, args.threshold)

    bench_name = current.get("bench", "bench")
    header = f"## bench-smoke: {bench_name} vs baseline\n"
    verdict = ("\n**Gate: FAIL**\n" + "\n".join(f"- {f}" for f in failures)
               if failures else "\n**Gate: pass** — no metric dropped more "
                                f"than {args.threshold:.0%}.")
    report = f"{header}\n{table}\n{verdict}\n"
    print(report)

    summary_path = os.environ.get("GITHUB_STEP_SUMMARY")
    if summary_path:
        with open(summary_path, "a") as f:
            f.write(report + "\n")

    if failures:
        print(f"bench_gate: {len(failures)} gated metric(s) regressed",
              file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
