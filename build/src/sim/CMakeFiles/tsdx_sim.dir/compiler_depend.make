# Empty compiler generated dependencies file for tsdx_sim.
# This may be replaced when dependencies are built.
