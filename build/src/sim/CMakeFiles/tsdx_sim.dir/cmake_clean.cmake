file(REMOVE_RECURSE
  "CMakeFiles/tsdx_sim.dir/clipgen.cpp.o"
  "CMakeFiles/tsdx_sim.dir/clipgen.cpp.o.d"
  "CMakeFiles/tsdx_sim.dir/render.cpp.o"
  "CMakeFiles/tsdx_sim.dir/render.cpp.o.d"
  "CMakeFiles/tsdx_sim.dir/road.cpp.o"
  "CMakeFiles/tsdx_sim.dir/road.cpp.o.d"
  "CMakeFiles/tsdx_sim.dir/trajectory.cpp.o"
  "CMakeFiles/tsdx_sim.dir/trajectory.cpp.o.d"
  "CMakeFiles/tsdx_sim.dir/world.cpp.o"
  "CMakeFiles/tsdx_sim.dir/world.cpp.o.d"
  "libtsdx_sim.a"
  "libtsdx_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tsdx_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
