file(REMOVE_RECURSE
  "libtsdx_sim.a"
)
