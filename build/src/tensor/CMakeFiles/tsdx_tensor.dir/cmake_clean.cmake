file(REMOVE_RECURSE
  "CMakeFiles/tsdx_tensor.dir/gradcheck.cpp.o"
  "CMakeFiles/tsdx_tensor.dir/gradcheck.cpp.o.d"
  "CMakeFiles/tsdx_tensor.dir/nn_ops.cpp.o"
  "CMakeFiles/tsdx_tensor.dir/nn_ops.cpp.o.d"
  "CMakeFiles/tsdx_tensor.dir/ops.cpp.o"
  "CMakeFiles/tsdx_tensor.dir/ops.cpp.o.d"
  "CMakeFiles/tsdx_tensor.dir/tensor.cpp.o"
  "CMakeFiles/tsdx_tensor.dir/tensor.cpp.o.d"
  "libtsdx_tensor.a"
  "libtsdx_tensor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tsdx_tensor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
