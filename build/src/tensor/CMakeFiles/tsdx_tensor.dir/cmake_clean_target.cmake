file(REMOVE_RECURSE
  "libtsdx_tensor.a"
)
