# Empty compiler generated dependencies file for tsdx_tensor.
# This may be replaced when dependencies are built.
