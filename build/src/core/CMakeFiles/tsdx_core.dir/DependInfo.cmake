
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/augment.cpp" "src/core/CMakeFiles/tsdx_core.dir/augment.cpp.o" "gcc" "src/core/CMakeFiles/tsdx_core.dir/augment.cpp.o.d"
  "/root/repo/src/core/calibration.cpp" "src/core/CMakeFiles/tsdx_core.dir/calibration.cpp.o" "gcc" "src/core/CMakeFiles/tsdx_core.dir/calibration.cpp.o.d"
  "/root/repo/src/core/config.cpp" "src/core/CMakeFiles/tsdx_core.dir/config.cpp.o" "gcc" "src/core/CMakeFiles/tsdx_core.dir/config.cpp.o.d"
  "/root/repo/src/core/decoding.cpp" "src/core/CMakeFiles/tsdx_core.dir/decoding.cpp.o" "gcc" "src/core/CMakeFiles/tsdx_core.dir/decoding.cpp.o.d"
  "/root/repo/src/core/extractor.cpp" "src/core/CMakeFiles/tsdx_core.dir/extractor.cpp.o" "gcc" "src/core/CMakeFiles/tsdx_core.dir/extractor.cpp.o.d"
  "/root/repo/src/core/model.cpp" "src/core/CMakeFiles/tsdx_core.dir/model.cpp.o" "gcc" "src/core/CMakeFiles/tsdx_core.dir/model.cpp.o.d"
  "/root/repo/src/core/trainer.cpp" "src/core/CMakeFiles/tsdx_core.dir/trainer.cpp.o" "gcc" "src/core/CMakeFiles/tsdx_core.dir/trainer.cpp.o.d"
  "/root/repo/src/core/video_transformer.cpp" "src/core/CMakeFiles/tsdx_core.dir/video_transformer.cpp.o" "gcc" "src/core/CMakeFiles/tsdx_core.dir/video_transformer.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/nn/CMakeFiles/tsdx_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/tsdx_data.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/tsdx_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/sdl/CMakeFiles/tsdx_sdl.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/tsdx_tensor.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
