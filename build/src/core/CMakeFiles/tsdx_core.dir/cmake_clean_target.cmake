file(REMOVE_RECURSE
  "libtsdx_core.a"
)
