# Empty dependencies file for tsdx_core.
# This may be replaced when dependencies are built.
