file(REMOVE_RECURSE
  "CMakeFiles/tsdx_core.dir/augment.cpp.o"
  "CMakeFiles/tsdx_core.dir/augment.cpp.o.d"
  "CMakeFiles/tsdx_core.dir/calibration.cpp.o"
  "CMakeFiles/tsdx_core.dir/calibration.cpp.o.d"
  "CMakeFiles/tsdx_core.dir/config.cpp.o"
  "CMakeFiles/tsdx_core.dir/config.cpp.o.d"
  "CMakeFiles/tsdx_core.dir/decoding.cpp.o"
  "CMakeFiles/tsdx_core.dir/decoding.cpp.o.d"
  "CMakeFiles/tsdx_core.dir/extractor.cpp.o"
  "CMakeFiles/tsdx_core.dir/extractor.cpp.o.d"
  "CMakeFiles/tsdx_core.dir/model.cpp.o"
  "CMakeFiles/tsdx_core.dir/model.cpp.o.d"
  "CMakeFiles/tsdx_core.dir/trainer.cpp.o"
  "CMakeFiles/tsdx_core.dir/trainer.cpp.o.d"
  "CMakeFiles/tsdx_core.dir/video_transformer.cpp.o"
  "CMakeFiles/tsdx_core.dir/video_transformer.cpp.o.d"
  "libtsdx_core.a"
  "libtsdx_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tsdx_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
