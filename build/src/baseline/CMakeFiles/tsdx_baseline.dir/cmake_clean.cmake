file(REMOVE_RECURSE
  "CMakeFiles/tsdx_baseline.dir/cnn.cpp.o"
  "CMakeFiles/tsdx_baseline.dir/cnn.cpp.o.d"
  "CMakeFiles/tsdx_baseline.dir/cnn3d.cpp.o"
  "CMakeFiles/tsdx_baseline.dir/cnn3d.cpp.o.d"
  "CMakeFiles/tsdx_baseline.dir/majority.cpp.o"
  "CMakeFiles/tsdx_baseline.dir/majority.cpp.o.d"
  "libtsdx_baseline.a"
  "libtsdx_baseline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tsdx_baseline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
