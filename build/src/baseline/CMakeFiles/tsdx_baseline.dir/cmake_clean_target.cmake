file(REMOVE_RECURSE
  "libtsdx_baseline.a"
)
