# Empty dependencies file for tsdx_baseline.
# This may be replaced when dependencies are built.
