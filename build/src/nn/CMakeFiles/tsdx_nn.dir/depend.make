# Empty dependencies file for tsdx_nn.
# This may be replaced when dependencies are built.
