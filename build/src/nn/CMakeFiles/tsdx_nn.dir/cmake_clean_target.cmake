file(REMOVE_RECURSE
  "libtsdx_nn.a"
)
