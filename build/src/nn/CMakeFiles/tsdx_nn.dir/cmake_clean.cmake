file(REMOVE_RECURSE
  "CMakeFiles/tsdx_nn.dir/attention.cpp.o"
  "CMakeFiles/tsdx_nn.dir/attention.cpp.o.d"
  "CMakeFiles/tsdx_nn.dir/conv.cpp.o"
  "CMakeFiles/tsdx_nn.dir/conv.cpp.o.d"
  "CMakeFiles/tsdx_nn.dir/gru.cpp.o"
  "CMakeFiles/tsdx_nn.dir/gru.cpp.o.d"
  "CMakeFiles/tsdx_nn.dir/layers.cpp.o"
  "CMakeFiles/tsdx_nn.dir/layers.cpp.o.d"
  "CMakeFiles/tsdx_nn.dir/lstm.cpp.o"
  "CMakeFiles/tsdx_nn.dir/lstm.cpp.o.d"
  "CMakeFiles/tsdx_nn.dir/module.cpp.o"
  "CMakeFiles/tsdx_nn.dir/module.cpp.o.d"
  "CMakeFiles/tsdx_nn.dir/optim.cpp.o"
  "CMakeFiles/tsdx_nn.dir/optim.cpp.o.d"
  "CMakeFiles/tsdx_nn.dir/serialize.cpp.o"
  "CMakeFiles/tsdx_nn.dir/serialize.cpp.o.d"
  "libtsdx_nn.a"
  "libtsdx_nn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tsdx_nn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
