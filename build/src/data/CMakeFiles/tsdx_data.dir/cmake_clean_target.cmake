file(REMOVE_RECURSE
  "libtsdx_data.a"
)
