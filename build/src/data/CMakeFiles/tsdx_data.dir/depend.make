# Empty dependencies file for tsdx_data.
# This may be replaced when dependencies are built.
