file(REMOVE_RECURSE
  "CMakeFiles/tsdx_data.dir/corruption.cpp.o"
  "CMakeFiles/tsdx_data.dir/corruption.cpp.o.d"
  "CMakeFiles/tsdx_data.dir/dataset.cpp.o"
  "CMakeFiles/tsdx_data.dir/dataset.cpp.o.d"
  "CMakeFiles/tsdx_data.dir/export.cpp.o"
  "CMakeFiles/tsdx_data.dir/export.cpp.o.d"
  "CMakeFiles/tsdx_data.dir/metrics.cpp.o"
  "CMakeFiles/tsdx_data.dir/metrics.cpp.o.d"
  "libtsdx_data.a"
  "libtsdx_data.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tsdx_data.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
