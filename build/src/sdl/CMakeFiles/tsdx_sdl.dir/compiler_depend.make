# Empty compiler generated dependencies file for tsdx_sdl.
# This may be replaced when dependencies are built.
