
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sdl/coverage.cpp" "src/sdl/CMakeFiles/tsdx_sdl.dir/coverage.cpp.o" "gcc" "src/sdl/CMakeFiles/tsdx_sdl.dir/coverage.cpp.o.d"
  "/root/repo/src/sdl/description.cpp" "src/sdl/CMakeFiles/tsdx_sdl.dir/description.cpp.o" "gcc" "src/sdl/CMakeFiles/tsdx_sdl.dir/description.cpp.o.d"
  "/root/repo/src/sdl/diff.cpp" "src/sdl/CMakeFiles/tsdx_sdl.dir/diff.cpp.o" "gcc" "src/sdl/CMakeFiles/tsdx_sdl.dir/diff.cpp.o.d"
  "/root/repo/src/sdl/embedding.cpp" "src/sdl/CMakeFiles/tsdx_sdl.dir/embedding.cpp.o" "gcc" "src/sdl/CMakeFiles/tsdx_sdl.dir/embedding.cpp.o.d"
  "/root/repo/src/sdl/json.cpp" "src/sdl/CMakeFiles/tsdx_sdl.dir/json.cpp.o" "gcc" "src/sdl/CMakeFiles/tsdx_sdl.dir/json.cpp.o.d"
  "/root/repo/src/sdl/serialization.cpp" "src/sdl/CMakeFiles/tsdx_sdl.dir/serialization.cpp.o" "gcc" "src/sdl/CMakeFiles/tsdx_sdl.dir/serialization.cpp.o.d"
  "/root/repo/src/sdl/spec.cpp" "src/sdl/CMakeFiles/tsdx_sdl.dir/spec.cpp.o" "gcc" "src/sdl/CMakeFiles/tsdx_sdl.dir/spec.cpp.o.d"
  "/root/repo/src/sdl/taxonomy.cpp" "src/sdl/CMakeFiles/tsdx_sdl.dir/taxonomy.cpp.o" "gcc" "src/sdl/CMakeFiles/tsdx_sdl.dir/taxonomy.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
