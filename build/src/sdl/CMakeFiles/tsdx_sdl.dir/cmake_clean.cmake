file(REMOVE_RECURSE
  "CMakeFiles/tsdx_sdl.dir/coverage.cpp.o"
  "CMakeFiles/tsdx_sdl.dir/coverage.cpp.o.d"
  "CMakeFiles/tsdx_sdl.dir/description.cpp.o"
  "CMakeFiles/tsdx_sdl.dir/description.cpp.o.d"
  "CMakeFiles/tsdx_sdl.dir/diff.cpp.o"
  "CMakeFiles/tsdx_sdl.dir/diff.cpp.o.d"
  "CMakeFiles/tsdx_sdl.dir/embedding.cpp.o"
  "CMakeFiles/tsdx_sdl.dir/embedding.cpp.o.d"
  "CMakeFiles/tsdx_sdl.dir/json.cpp.o"
  "CMakeFiles/tsdx_sdl.dir/json.cpp.o.d"
  "CMakeFiles/tsdx_sdl.dir/serialization.cpp.o"
  "CMakeFiles/tsdx_sdl.dir/serialization.cpp.o.d"
  "CMakeFiles/tsdx_sdl.dir/spec.cpp.o"
  "CMakeFiles/tsdx_sdl.dir/spec.cpp.o.d"
  "CMakeFiles/tsdx_sdl.dir/taxonomy.cpp.o"
  "CMakeFiles/tsdx_sdl.dir/taxonomy.cpp.o.d"
  "libtsdx_sdl.a"
  "libtsdx_sdl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tsdx_sdl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
