file(REMOVE_RECURSE
  "libtsdx_sdl.a"
)
