
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/error_analysis.cpp" "examples/CMakeFiles/error_analysis.dir/error_analysis.cpp.o" "gcc" "examples/CMakeFiles/error_analysis.dir/error_analysis.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/tsdx_core.dir/DependInfo.cmake"
  "/root/repo/build/src/baseline/CMakeFiles/tsdx_baseline.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/tsdx_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/tsdx_data.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/tsdx_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/sdl/CMakeFiles/tsdx_sdl.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/tsdx_tensor.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
