file(REMOVE_RECURSE
  "CMakeFiles/train_extractor.dir/train_extractor.cpp.o"
  "CMakeFiles/train_extractor.dir/train_extractor.cpp.o.d"
  "train_extractor"
  "train_extractor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/train_extractor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
