# Empty compiler generated dependencies file for train_extractor.
# This may be replaced when dependencies are built.
