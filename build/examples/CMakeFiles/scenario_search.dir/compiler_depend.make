# Empty compiler generated dependencies file for scenario_search.
# This may be replaced when dependencies are built.
