file(REMOVE_RECURSE
  "CMakeFiles/scenario_search.dir/scenario_search.cpp.o"
  "CMakeFiles/scenario_search.dir/scenario_search.cpp.o.d"
  "scenario_search"
  "scenario_search.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scenario_search.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
