file(REMOVE_RECURSE
  "CMakeFiles/bench_f5_camera.dir/bench_f5_camera.cpp.o"
  "CMakeFiles/bench_f5_camera.dir/bench_f5_camera.cpp.o.d"
  "bench_f5_camera"
  "bench_f5_camera.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_f5_camera.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
