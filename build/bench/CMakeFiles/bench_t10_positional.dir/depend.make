# Empty dependencies file for bench_t10_positional.
# This may be replaced when dependencies are built.
