file(REMOVE_RECURSE
  "CMakeFiles/bench_t10_positional.dir/bench_t10_positional.cpp.o"
  "CMakeFiles/bench_t10_positional.dir/bench_t10_positional.cpp.o.d"
  "bench_t10_positional"
  "bench_t10_positional.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_t10_positional.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
