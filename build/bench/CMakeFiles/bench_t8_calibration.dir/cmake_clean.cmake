file(REMOVE_RECURSE
  "CMakeFiles/bench_t8_calibration.dir/bench_t8_calibration.cpp.o"
  "CMakeFiles/bench_t8_calibration.dir/bench_t8_calibration.cpp.o.d"
  "bench_t8_calibration"
  "bench_t8_calibration.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_t8_calibration.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
