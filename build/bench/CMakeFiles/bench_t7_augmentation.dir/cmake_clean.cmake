file(REMOVE_RECURSE
  "CMakeFiles/bench_t7_augmentation.dir/bench_t7_augmentation.cpp.o"
  "CMakeFiles/bench_t7_augmentation.dir/bench_t7_augmentation.cpp.o.d"
  "bench_t7_augmentation"
  "bench_t7_augmentation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_t7_augmentation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
