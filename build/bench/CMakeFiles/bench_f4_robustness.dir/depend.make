# Empty dependencies file for bench_f4_robustness.
# This may be replaced when dependencies are built.
