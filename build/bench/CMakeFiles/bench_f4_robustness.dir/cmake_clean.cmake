file(REMOVE_RECURSE
  "CMakeFiles/bench_f4_robustness.dir/bench_f4_robustness.cpp.o"
  "CMakeFiles/bench_f4_robustness.dir/bench_f4_robustness.cpp.o.d"
  "bench_f4_robustness"
  "bench_f4_robustness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_f4_robustness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
