# Empty compiler generated dependencies file for bench_t2_attention_ablation.
# This may be replaced when dependencies are built.
