file(REMOVE_RECURSE
  "CMakeFiles/bench_t2_attention_ablation.dir/bench_t2_attention_ablation.cpp.o"
  "CMakeFiles/bench_t2_attention_ablation.dir/bench_t2_attention_ablation.cpp.o.d"
  "bench_t2_attention_ablation"
  "bench_t2_attention_ablation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_t2_attention_ablation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
