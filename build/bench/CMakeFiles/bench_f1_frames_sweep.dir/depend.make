# Empty dependencies file for bench_f1_frames_sweep.
# This may be replaced when dependencies are built.
