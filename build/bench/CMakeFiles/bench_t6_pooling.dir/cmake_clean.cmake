file(REMOVE_RECURSE
  "CMakeFiles/bench_t6_pooling.dir/bench_t6_pooling.cpp.o"
  "CMakeFiles/bench_t6_pooling.dir/bench_t6_pooling.cpp.o.d"
  "bench_t6_pooling"
  "bench_t6_pooling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_t6_pooling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
