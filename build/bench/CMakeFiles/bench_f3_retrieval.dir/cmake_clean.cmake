file(REMOVE_RECURSE
  "CMakeFiles/bench_f3_retrieval.dir/bench_f3_retrieval.cpp.o"
  "CMakeFiles/bench_f3_retrieval.dir/bench_f3_retrieval.cpp.o.d"
  "bench_f3_retrieval"
  "bench_f3_retrieval.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_f3_retrieval.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
