file(REMOVE_RECURSE
  "CMakeFiles/bench_t3_latency.dir/bench_t3_latency.cpp.o"
  "CMakeFiles/bench_t3_latency.dir/bench_t3_latency.cpp.o.d"
  "bench_t3_latency"
  "bench_t3_latency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_t3_latency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
