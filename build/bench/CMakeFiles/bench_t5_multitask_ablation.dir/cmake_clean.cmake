file(REMOVE_RECURSE
  "CMakeFiles/bench_t5_multitask_ablation.dir/bench_t5_multitask_ablation.cpp.o"
  "CMakeFiles/bench_t5_multitask_ablation.dir/bench_t5_multitask_ablation.cpp.o.d"
  "bench_t5_multitask_ablation"
  "bench_t5_multitask_ablation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_t5_multitask_ablation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
