# Empty dependencies file for bench_t5_multitask_ablation.
# This may be replaced when dependencies are built.
