file(REMOVE_RECURSE
  "CMakeFiles/bench_t4_data_efficiency.dir/bench_t4_data_efficiency.cpp.o"
  "CMakeFiles/bench_t4_data_efficiency.dir/bench_t4_data_efficiency.cpp.o.d"
  "bench_t4_data_efficiency"
  "bench_t4_data_efficiency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_t4_data_efficiency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
