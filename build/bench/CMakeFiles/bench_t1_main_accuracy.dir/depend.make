# Empty dependencies file for bench_t1_main_accuracy.
# This may be replaced when dependencies are built.
