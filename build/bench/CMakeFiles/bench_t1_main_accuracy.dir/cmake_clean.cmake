file(REMOVE_RECURSE
  "CMakeFiles/bench_t1_main_accuracy.dir/bench_t1_main_accuracy.cpp.o"
  "CMakeFiles/bench_t1_main_accuracy.dir/bench_t1_main_accuracy.cpp.o.d"
  "bench_t1_main_accuracy"
  "bench_t1_main_accuracy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_t1_main_accuracy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
