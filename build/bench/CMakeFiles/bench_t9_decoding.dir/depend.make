# Empty dependencies file for bench_t9_decoding.
# This may be replaced when dependencies are built.
