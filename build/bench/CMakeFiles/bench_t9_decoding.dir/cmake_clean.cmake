file(REMOVE_RECURSE
  "CMakeFiles/bench_t9_decoding.dir/bench_t9_decoding.cpp.o"
  "CMakeFiles/bench_t9_decoding.dir/bench_t9_decoding.cpp.o.d"
  "bench_t9_decoding"
  "bench_t9_decoding.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_t9_decoding.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
