# Empty compiler generated dependencies file for sdl_test.
# This may be replaced when dependencies are built.
