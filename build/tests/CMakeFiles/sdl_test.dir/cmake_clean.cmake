file(REMOVE_RECURSE
  "CMakeFiles/sdl_test.dir/sdl_test.cpp.o"
  "CMakeFiles/sdl_test.dir/sdl_test.cpp.o.d"
  "sdl_test"
  "sdl_test.pdb"
  "sdl_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sdl_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
