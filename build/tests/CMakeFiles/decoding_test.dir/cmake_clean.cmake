file(REMOVE_RECURSE
  "CMakeFiles/decoding_test.dir/decoding_test.cpp.o"
  "CMakeFiles/decoding_test.dir/decoding_test.cpp.o.d"
  "decoding_test"
  "decoding_test.pdb"
  "decoding_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/decoding_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
