# Empty compiler generated dependencies file for decoding_test.
# This may be replaced when dependencies are built.
