# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/tensor_test[1]_include.cmake")
include("/root/repo/build/tests/gradcheck_test[1]_include.cmake")
include("/root/repo/build/tests/nn_test[1]_include.cmake")
include("/root/repo/build/tests/sdl_test[1]_include.cmake")
include("/root/repo/build/tests/sim_test[1]_include.cmake")
include("/root/repo/build/tests/data_test[1]_include.cmake")
include("/root/repo/build/tests/core_test[1]_include.cmake")
include("/root/repo/build/tests/baseline_test[1]_include.cmake")
include("/root/repo/build/tests/decoding_test[1]_include.cmake")
include("/root/repo/build/tests/property_test[1]_include.cmake")
include("/root/repo/build/tests/augment_test[1]_include.cmake")
include("/root/repo/build/tests/coverage_test[1]_include.cmake")
include("/root/repo/build/tests/calibration_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
