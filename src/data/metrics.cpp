#include "data/metrics.hpp"

#include <algorithm>
#include <cstdio>
#include <stdexcept>

namespace tsdx::data {

void ConfusionMatrix::add(std::size_t truth, std::size_t pred) {
  if (truth >= n_ || pred >= n_) {
    throw std::out_of_range("ConfusionMatrix::add: class out of range");
  }
  ++counts_[truth * n_ + pred];
}

std::uint64_t ConfusionMatrix::total() const {
  std::uint64_t t = 0;
  for (std::uint64_t c : counts_) t += c;
  return t;
}

double ConfusionMatrix::accuracy() const {
  const std::uint64_t t = total();
  if (t == 0) return 0.0;
  std::uint64_t correct = 0;
  for (std::size_t i = 0; i < n_; ++i) correct += count(i, i);
  return static_cast<double>(correct) / static_cast<double>(t);
}

double ConfusionMatrix::precision(std::size_t cls) const {
  std::uint64_t predicted = 0;
  for (std::size_t i = 0; i < n_; ++i) predicted += count(i, cls);
  if (predicted == 0) return 0.0;
  return static_cast<double>(count(cls, cls)) / static_cast<double>(predicted);
}

double ConfusionMatrix::recall(std::size_t cls) const {
  std::uint64_t actual = 0;
  for (std::size_t i = 0; i < n_; ++i) actual += count(cls, i);
  if (actual == 0) return 0.0;
  return static_cast<double>(count(cls, cls)) / static_cast<double>(actual);
}

double ConfusionMatrix::f1(std::size_t cls) const {
  const double p = precision(cls);
  const double r = recall(cls);
  if (p + r == 0.0) return 0.0;
  return 2.0 * p * r / (p + r);
}

double ConfusionMatrix::macro_f1() const {
  double sum = 0.0;
  std::size_t present = 0;
  for (std::size_t c = 0; c < n_; ++c) {
    std::uint64_t actual = 0;
    for (std::size_t i = 0; i < n_; ++i) actual += count(c, i);
    if (actual == 0) continue;  // class absent from ground truth
    sum += f1(c);
    ++present;
  }
  return present == 0 ? 0.0 : sum / static_cast<double>(present);
}

std::string ConfusionMatrix::to_string() const {
  std::string out = "truth\\pred";
  char buf[32];
  for (std::size_t c = 0; c < n_; ++c) {
    std::snprintf(buf, sizeof(buf), "%8zu", c);
    out += buf;
  }
  out += '\n';
  for (std::size_t r = 0; r < n_; ++r) {
    std::snprintf(buf, sizeof(buf), "%9zu ", r);
    out += buf;
    for (std::size_t c = 0; c < n_; ++c) {
      std::snprintf(buf, sizeof(buf), "%8llu",
                    static_cast<unsigned long long>(count(r, c)));
      out += buf;
    }
    out += '\n';
  }
  return out;
}

namespace {
std::array<ConfusionMatrix, sdl::kNumSlots> make_matrices() {
  return {ConfusionMatrix(sdl::kSlotCardinality[0]),
          ConfusionMatrix(sdl::kSlotCardinality[1]),
          ConfusionMatrix(sdl::kSlotCardinality[2]),
          ConfusionMatrix(sdl::kSlotCardinality[3]),
          ConfusionMatrix(sdl::kSlotCardinality[4]),
          ConfusionMatrix(sdl::kSlotCardinality[5]),
          ConfusionMatrix(sdl::kSlotCardinality[6]),
          ConfusionMatrix(sdl::kSlotCardinality[7])};
}
}  // namespace

SlotMetrics::SlotMetrics() : matrices_(make_matrices()) {}

void SlotMetrics::add(const sdl::SlotLabels& truth, const sdl::SlotLabels& pred) {
  bool all = true;
  for (std::size_t s = 0; s < sdl::kNumSlots; ++s) {
    matrices_[s].add(truth[s], pred[s]);
    all = all && truth[s] == pred[s];
  }
  ++count_;
  if (all) ++exact_;
}

double SlotMetrics::mean_accuracy() const {
  double sum = 0.0;
  for (const auto& m : matrices_) sum += m.accuracy();
  return sum / static_cast<double>(sdl::kNumSlots);
}

double SlotMetrics::mean_macro_f1() const {
  double sum = 0.0;
  for (const auto& m : matrices_) sum += m.macro_f1();
  return sum / static_cast<double>(sdl::kNumSlots);
}

double SlotMetrics::exact_match() const {
  return count_ == 0 ? 0.0
                     : static_cast<double>(exact_) / static_cast<double>(count_);
}

double precision_at_k(const std::vector<bool>& ranked_relevance,
                      std::size_t k) {
  if (k == 0) return 0.0;
  const std::size_t n = std::min(k, ranked_relevance.size());
  if (n == 0) return 0.0;
  std::size_t hits = 0;
  for (std::size_t i = 0; i < n; ++i) hits += ranked_relevance[i] ? 1 : 0;
  return static_cast<double>(hits) / static_cast<double>(k);
}

double average_precision(const std::vector<bool>& ranked_relevance) {
  std::size_t hits = 0;
  double sum = 0.0;
  for (std::size_t i = 0; i < ranked_relevance.size(); ++i) {
    if (ranked_relevance[i]) {
      ++hits;
      sum += static_cast<double>(hits) / static_cast<double>(i + 1);
    }
  }
  return hits == 0 ? 0.0 : sum / static_cast<double>(hits);
}

double mean_average_precision(
    const std::vector<std::vector<bool>>& ranked_relevances) {
  if (ranked_relevances.empty()) return 0.0;
  double sum = 0.0;
  for (const auto& r : ranked_relevances) sum += average_precision(r);
  return sum / static_cast<double>(ranked_relevances.size());
}

}  // namespace tsdx::data
