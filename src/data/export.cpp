#include "data/export.hpp"

#include <fstream>
#include <sstream>

#include "sdl/serialization.hpp"

namespace tsdx::data {

std::string to_jsonl(const std::vector<DescriptionRecord>& records) {
  std::string out;
  for (const DescriptionRecord& r : records) {
    sdl::Json j = sdl::to_json(r.description);
    j.as_object().emplace("id", sdl::Json(r.id));
    out += j.dump();
    out += '\n';
  }
  return out;
}

std::optional<std::vector<DescriptionRecord>> from_jsonl(
    const std::string& text, std::string* error) {
  std::vector<DescriptionRecord> records;
  std::istringstream stream(text);
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(stream, line)) {
    ++line_no;
    if (line.find_first_not_of(" \t\r") == std::string::npos) continue;
    std::string parse_error;
    auto j = sdl::Json::parse(line, &parse_error);
    if (!j) {
      if (error) {
        *error = "line " + std::to_string(line_no) + ": " + parse_error;
      }
      return std::nullopt;
    }
    DescriptionRecord record;
    if (const sdl::Json* id = j->find("id"); id && id->is_string()) {
      record.id = id->as_string();
    }
    auto d = sdl::description_from_json(*j, &parse_error);
    if (!d) {
      if (error) {
        *error = "line " + std::to_string(line_no) + ": " + parse_error;
      }
      return std::nullopt;
    }
    record.description = std::move(*d);
    records.push_back(std::move(record));
  }
  return records;
}

void write_jsonl_file(const std::vector<DescriptionRecord>& records,
                      const std::string& path) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("export: cannot open " + path);
  out << to_jsonl(records);
  if (!out) throw std::runtime_error("export: write failed for " + path);
}

std::optional<std::vector<DescriptionRecord>> read_jsonl_file(
    const std::string& path, std::string* error) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("export: cannot open " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return from_jsonl(buffer.str(), error);
}

}  // namespace tsdx::data
