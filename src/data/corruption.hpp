// corruption.hpp — input-corruption models for robustness evaluation.
//
// DATE's concern is deploying extractors on real, degraded sensor stacks.
// These corruptions model the three dominant failure modes of the BEV input:
//   * kSensorNoise   — additive Gaussian pixel noise (cheap sensors, rain)
//   * kTrackerDropout — the salient/tracked-object channel goes blank
//                        (upstream tracker lost the agent)
//   * kFrameDrop     — random frames are stuck (transport drops; the last
//                        good frame is repeated, as real pipelines do)
// Severity in [0, 1] scales each corruption; 0 is identity.
#pragma once

#include "sim/render.hpp"
#include "tensor/rng.hpp"

namespace tsdx::data {

enum class Corruption : std::uint8_t {
  kSensorNoise = 0,
  kTrackerDropout,
  kFrameDrop,
};

std::string corruption_name(Corruption kind);

/// Apply a corruption at `severity` to a copy of `clip`.
///  * kSensorNoise: sigma = 0.3 * severity additive noise, clamped to [0,1]
///  * kTrackerDropout: each frame's salient channel zeroed w.p. `severity`
///  * kFrameDrop: each frame (except the first) replaced by its predecessor
///    w.p. `severity`
sim::VideoClip corrupt_clip(const sim::VideoClip& clip, Corruption kind,
                            double severity, tensor::Rng& rng);

}  // namespace tsdx::data
