// export.hpp — JSONL interchange for scenario descriptions.
//
// One description per line, in the canonical sdl JSON wire format with an
// optional "id" field — the format scenario-mining pipelines exchange.
// (Video pixels are not exported; clips are regenerable from seeds.)
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "sdl/description.hpp"

namespace tsdx::data {

struct DescriptionRecord {
  std::string id;
  sdl::ScenarioDescription description;

  bool operator==(const DescriptionRecord&) const = default;
};

/// Serialize records to JSONL text (one compact JSON object per line).
std::string to_jsonl(const std::vector<DescriptionRecord>& records);

/// Parse JSONL text; returns nullopt with `error` (prefixed with the 1-based
/// line number) on the first malformed line. Blank lines are skipped.
std::optional<std::vector<DescriptionRecord>> from_jsonl(
    const std::string& text, std::string* error = nullptr);

/// File convenience wrappers. Throws std::runtime_error on I/O failure;
/// parse failures are reported like from_jsonl.
void write_jsonl_file(const std::vector<DescriptionRecord>& records,
                      const std::string& path);
std::optional<std::vector<DescriptionRecord>> read_jsonl_file(
    const std::string& path, std::string* error = nullptr);

}  // namespace tsdx::data
