// metrics.hpp — classification and retrieval metrics for the evaluation
// harness (accuracy, macro-F1, confusion matrices, precision@k, mAP).
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "sdl/description.hpp"

namespace tsdx::data {

/// Square confusion matrix over `num_classes`; rows = ground truth,
/// columns = prediction.
class ConfusionMatrix {
 public:
  explicit ConfusionMatrix(std::size_t num_classes)
      : n_(num_classes), counts_(num_classes * num_classes, 0) {}

  void add(std::size_t truth, std::size_t pred);

  std::size_t num_classes() const { return n_; }
  std::uint64_t count(std::size_t truth, std::size_t pred) const {
    return counts_.at(truth * n_ + pred);
  }
  std::uint64_t total() const;

  double accuracy() const;
  /// Precision/recall/F1 of one class (0 when the class never appears).
  double precision(std::size_t cls) const;
  double recall(std::size_t cls) const;
  double f1(std::size_t cls) const;
  /// Unweighted mean F1 over classes that appear in the ground truth.
  double macro_f1() const;

  /// Fixed-width text rendering for reports.
  std::string to_string() const;

 private:
  std::size_t n_;
  std::vector<std::uint64_t> counts_;
};

/// One confusion matrix per SDL slot plus convenience aggregates.
class SlotMetrics {
 public:
  SlotMetrics();

  void add(const sdl::SlotLabels& truth, const sdl::SlotLabels& pred);

  const ConfusionMatrix& slot(sdl::Slot s) const {
    return matrices_[static_cast<std::size_t>(s)];
  }
  double slot_accuracy(sdl::Slot s) const { return slot(s).accuracy(); }
  double slot_macro_f1(sdl::Slot s) const { return slot(s).macro_f1(); }

  /// Mean accuracy / macro-F1 over all 8 slots.
  double mean_accuracy() const;
  double mean_macro_f1() const;
  /// Fraction of examples with every slot correct (exact description match).
  double exact_match() const;

  std::uint64_t count() const { return count_; }

 private:
  std::array<ConfusionMatrix, sdl::kNumSlots> matrices_;
  std::uint64_t count_ = 0;
  std::uint64_t exact_ = 0;
};

// ---- retrieval -----------------------------------------------------------------

/// Precision@k: fraction of the top-k ranked items that are relevant.
/// `ranked_relevance[i]` is the relevance of the i-th ranked item.
double precision_at_k(const std::vector<bool>& ranked_relevance, std::size_t k);

/// Average precision of a single ranked list (0 when nothing is relevant).
double average_precision(const std::vector<bool>& ranked_relevance);

/// Mean of average precisions over queries.
double mean_average_precision(
    const std::vector<std::vector<bool>>& ranked_relevances);

}  // namespace tsdx::data
