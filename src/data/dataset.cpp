#include "data/dataset.hpp"

#include <algorithm>
#include <numeric>
#include <stdexcept>

namespace tsdx::data {

Dataset Dataset::synthesize(const sim::RenderConfig& config, std::size_t count,
                            std::uint64_t seed) {
  sim::ClipGenerator gen(config, seed);
  Dataset ds;
  for (std::size_t i = 0; i < count; ++i) {
    sim::LabeledClip clip = gen.generate();
    Example ex;
    ex.labels = sdl::to_slot_labels(clip.description);
    ex.description = std::move(clip.description);
    ex.video = std::move(clip.video);
    ds.add(std::move(ex));
  }
  return ds;
}

Dataset::Splits Dataset::split(double train_frac, double val_frac) const {
  if (train_frac < 0 || val_frac < 0 || train_frac + val_frac > 1.0) {
    throw std::invalid_argument("Dataset::split: bad fractions");
  }
  const std::size_t n = examples_.size();
  const std::size_t n_train = static_cast<std::size_t>(n * train_frac);
  const std::size_t n_val = static_cast<std::size_t>(n * val_frac);
  Splits s;
  for (std::size_t i = 0; i < n; ++i) {
    if (i < n_train) {
      s.train.add(examples_[i]);
    } else if (i < n_train + n_val) {
      s.val.add(examples_[i]);
    } else {
      s.test.add(examples_[i]);
    }
  }
  return s;
}

Dataset Dataset::take(std::size_t count) const {
  Dataset out;
  for (std::size_t i = 0; i < std::min(count, examples_.size()); ++i) {
    out.add(examples_[i]);
  }
  return out;
}

Batch Dataset::make_batch(std::size_t first, std::size_t count) const {
  std::vector<std::size_t> idx(count);
  std::iota(idx.begin(), idx.end(), first);
  return Batcher(*this, count).gather(idx);
}

std::array<std::vector<std::size_t>, sdl::kNumSlots> Dataset::label_histogram()
    const {
  std::array<std::vector<std::size_t>, sdl::kNumSlots> hist;
  for (std::size_t s = 0; s < sdl::kNumSlots; ++s) {
    hist[s].assign(sdl::kSlotCardinality[s], 0);
  }
  for (const Example& ex : examples_) {
    for (std::size_t s = 0; s < sdl::kNumSlots; ++s) {
      hist[s][ex.labels[s]]++;
    }
  }
  return hist;
}

std::vector<std::vector<std::size_t>> Batcher::epoch(Rng& rng) const {
  std::vector<std::size_t> order(dataset_->size());
  std::iota(order.begin(), order.end(), 0);
  // Fisher–Yates with our deterministic Rng.
  for (std::size_t i = order.size(); i > 1; --i) {
    std::swap(order[i - 1],
              order[static_cast<std::size_t>(rng.uniform_index(i))]);
  }
  std::vector<std::vector<std::size_t>> batches;
  for (std::size_t start = 0; start < order.size(); start += batch_size_) {
    const std::size_t end = std::min(start + batch_size_, order.size());
    batches.emplace_back(order.begin() + static_cast<std::ptrdiff_t>(start),
                         order.begin() + static_cast<std::ptrdiff_t>(end));
  }
  return batches;
}

Batch Batcher::gather(const std::vector<std::size_t>& indices) const {
  if (indices.empty()) throw std::invalid_argument("Batcher: empty batch");
  const Example& first = (*dataset_)[indices[0]];
  const std::int64_t t = first.video.frames;
  const std::int64_t h = first.video.height;
  const std::int64_t w = first.video.width;
  const std::size_t per = first.video.data.size();
  const std::int64_t b = static_cast<std::int64_t>(indices.size());

  std::vector<float> stacked(per * indices.size());
  Batch batch;
  for (std::size_t i = 0; i < indices.size(); ++i) {
    const Example& ex = (*dataset_)[indices[i]];
    if (ex.video.data.size() != per) {
      throw std::invalid_argument("Batcher: inhomogeneous clip sizes");
    }
    std::copy(ex.video.data.begin(), ex.video.data.end(),
              stacked.begin() + static_cast<std::ptrdiff_t>(i * per));
    for (std::size_t s = 0; s < sdl::kNumSlots; ++s) {
      batch.labels[s].push_back(static_cast<std::int64_t>(ex.labels[s]));
    }
  }
  batch.video = Tensor::from_vector({b, t, sim::kNumChannels, h, w},
                                    std::move(stacked));
  return batch;
}

}  // namespace tsdx::data
