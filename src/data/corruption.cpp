#include "data/corruption.hpp"

#include <algorithm>
#include <stdexcept>

namespace tsdx::data {

std::string corruption_name(Corruption kind) {
  switch (kind) {
    case Corruption::kSensorNoise:
      return "sensor_noise";
    case Corruption::kTrackerDropout:
      return "tracker_dropout";
    case Corruption::kFrameDrop:
      return "frame_drop";
  }
  return "?";
}

sim::VideoClip corrupt_clip(const sim::VideoClip& clip, Corruption kind,
                            double severity, tensor::Rng& rng) {
  if (severity < 0.0 || severity > 1.0) {
    throw std::invalid_argument("corrupt_clip: severity must be in [0, 1]");
  }
  sim::VideoClip out = clip;
  if (severity == 0.0) return out;

  const std::size_t plane =
      static_cast<std::size_t>(clip.height * clip.width);
  const std::size_t frame_size = static_cast<std::size_t>(sim::kNumChannels) *
                                 plane;

  switch (kind) {
    case Corruption::kSensorNoise: {
      const float sigma = static_cast<float>(0.3 * severity);
      for (float& v : out.data) {
        v = std::clamp(v + static_cast<float>(rng.normal()) * sigma, 0.0f,
                       1.0f);
      }
      break;
    }
    case Corruption::kTrackerDropout: {
      for (std::int64_t t = 0; t < clip.frames; ++t) {
        if (!rng.bernoulli(severity)) continue;
        float* salient =
            out.data.data() + static_cast<std::size_t>(t) * frame_size +
            3 * plane;  // channel 3 = tracked-object mask
        std::fill_n(salient, plane, 0.0f);
      }
      break;
    }
    case Corruption::kFrameDrop: {
      for (std::int64_t t = 1; t < clip.frames; ++t) {
        if (!rng.bernoulli(severity)) continue;
        // Repeat the previous (already possibly-stuck) frame.
        std::copy_n(out.data.data() + static_cast<std::size_t>(t - 1) *
                                          frame_size,
                    frame_size,
                    out.data.data() + static_cast<std::size_t>(t) *
                                          frame_size);
      }
      break;
    }
  }
  return out;
}

}  // namespace tsdx::data
