// dataset.hpp — labeled clip datasets, splits, and batching.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "sdl/description.hpp"
#include "sim/clipgen.hpp"
#include "tensor/tensor.hpp"

namespace tsdx::data {

using tensor::Rng;
using tensor::Tensor;

struct Example {
  sim::VideoClip video;
  sdl::ScenarioDescription description;
  sdl::SlotLabels labels;  ///< derived from description at construction
};

/// One training batch: videos stacked to [B, T, C, H, W] plus per-slot
/// integer targets (each vector has B entries).
struct Batch {
  Tensor video;
  std::array<std::vector<std::int64_t>, sdl::kNumSlots> labels;

  std::int64_t size() const { return video.numel() ? video.dim(0) : 0; }
};

class Dataset {
 public:
  Dataset() = default;

  /// Generate `count` examples with the simulator. Deterministic in
  /// (config, seed).
  static Dataset synthesize(const sim::RenderConfig& config, std::size_t count,
                            std::uint64_t seed);

  void add(Example example) { examples_.push_back(std::move(example)); }
  std::size_t size() const { return examples_.size(); }
  bool empty() const { return examples_.empty(); }
  const Example& operator[](std::size_t i) const { return examples_.at(i); }

  /// Deterministic contiguous split by fractions (e.g. 0.7/0.15/0.15).
  /// The fractions must sum to <= 1; the test split absorbs the remainder.
  struct Splits;
  Splits split(double train_frac, double val_frac) const;

  /// First `count` examples as a new dataset (data-efficiency sweeps).
  Dataset take(std::size_t count) const;

  /// Stack examples [first, first+count) into a batch.
  Batch make_batch(std::size_t first, std::size_t count) const;

  /// Per-slot class histograms (label balance diagnostics).
  std::array<std::vector<std::size_t>, sdl::kNumSlots> label_histogram() const;

 private:
  std::vector<Example> examples_;
};

struct Dataset::Splits {
  Dataset train;
  Dataset val;
  Dataset test;
};

/// Epoch iterator producing shuffled batches. Shuffling is deterministic in
/// the Rng passed to each call of `epoch`.
class Batcher {
 public:
  Batcher(const Dataset& dataset, std::size_t batch_size)
      : dataset_(&dataset), batch_size_(batch_size) {}

  /// Batch index lists for one epoch (last partial batch kept).
  std::vector<std::vector<std::size_t>> epoch(Rng& rng) const;

  /// Gather a batch from explicit indices.
  Batch gather(const std::vector<std::size_t>& indices) const;

 private:
  const Dataset* dataset_;
  std::size_t batch_size_;
};

}  // namespace tsdx::data
