// calibration.hpp — confidence calibration for extracted descriptions.
//
// Downstream consumers (scenario miners, safety monitors) act on the
// extractor's per-slot confidence; an over-confident extractor silently
// poisons them. This module measures calibration (expected calibration
// error) and fits the standard post-hoc fix: per-slot temperature scaling
// on a held-out validation split (Guo et al.'s recipe, one scalar per head).
#pragma once

#include <array>

#include "core/model.hpp"
#include "data/dataset.hpp"

namespace tsdx::core {

/// Reliability statistics of one slot on one dataset.
struct CalibrationReport {
  double ece = 0.0;              ///< expected calibration error (15 bins)
  double mean_confidence = 0.0;  ///< average argmax confidence
  double accuracy = 0.0;         ///< argmax accuracy
};

/// Per-slot softmax temperatures (1.0 = untouched logits).
class TemperatureScaling {
 public:
  TemperatureScaling() { temperature_.fill(1.0f); }

  /// Fit each slot's temperature by grid search minimizing validation NLL.
  /// Grid: 0.25 .. 4.0 in multiplicative steps — ample for linear heads.
  static TemperatureScaling fit(const ScenarioModel& model,
                                const data::Dataset& val,
                                std::size_t batch_size = 16);

  float temperature(sdl::Slot slot) const {
    return temperature_[static_cast<std::size_t>(slot)];
  }
  void set_temperature(sdl::Slot slot, float t) {
    temperature_[static_cast<std::size_t>(slot)] = t;
  }

  /// Reliability report of `model` on `dataset` for one slot, with this
  /// scaling applied (identity scaling measures the raw model).
  CalibrationReport report(const ScenarioModel& model,
                           const data::Dataset& dataset, sdl::Slot slot,
                           std::size_t batch_size = 16) const;

 private:
  std::array<float, sdl::kNumSlots> temperature_;
};

/// Expected calibration error of (confidence, correctness) pairs with
/// `bins` equal-width confidence bins (standard ECE definition).
double expected_calibration_error(const std::vector<float>& confidences,
                                  const std::vector<bool>& correct,
                                  std::size_t bins = 15);

}  // namespace tsdx::core
