#include "core/decoding.hpp"

#include <cmath>
#include <stdexcept>

#include "tensor/ops.hpp"

namespace tsdx::core {

namespace tt = tsdx::tensor;

namespace {

std::array<std::vector<float>, sdl::kNumSlots> log_probs(
    const SlotProbabilities& probs) {
  std::array<std::vector<float>, sdl::kNumSlots> out;
  for (std::size_t s = 0; s < sdl::kNumSlots; ++s) {
    if (probs[s].size() != sdl::kSlotCardinality[s]) {
      throw std::invalid_argument("decode: wrong probability vector size");
    }
    out[s].reserve(probs[s].size());
    for (float p : probs[s]) {
      out[s].push_back(std::log(std::max(p, 1e-12f)));
    }
  }
  return out;
}

}  // namespace

sdl::SlotLabels decode_argmax(const SlotProbabilities& probs) {
  sdl::SlotLabels labels{};
  for (std::size_t s = 0; s < sdl::kNumSlots; ++s) {
    if (probs[s].size() != sdl::kSlotCardinality[s]) {
      throw std::invalid_argument("decode: wrong probability vector size");
    }
    std::size_t best = 0;
    for (std::size_t c = 1; c < probs[s].size(); ++c) {
      if (probs[s][c] > probs[s][best]) best = c;
    }
    labels[s] = best;
  }
  return labels;
}

sdl::SlotLabels decode_constrained(const SlotProbabilities& probs) {
  // Fast path: if the argmax is already valid it is also the constrained
  // optimum (it maximizes each term independently).
  const sdl::SlotLabels greedy = decode_argmax(probs);
  if (sdl::is_valid(sdl::from_slot_labels(greedy))) return greedy;

  const auto lp = log_probs(probs);
  const auto& valid = sdl::all_valid_label_combinations();
  double best_score = -1e300;
  sdl::SlotLabels best = valid.front();
  for (const sdl::SlotLabels& labels : valid) {
    double score = 0.0;
    for (std::size_t s = 0; s < sdl::kNumSlots; ++s) {
      score += lp[s][labels[s]];
    }
    if (score > best_score) {
      best_score = score;
      best = labels;
    }
  }
  return best;
}

std::vector<sdl::SlotLabels> decode_batch(const ScenarioModel& model,
                                          const nn::Tensor& video,
                                          bool constrained) {
  tt::NoGradGuard no_grad;
  const auto logits = model.forward(video);
  const std::int64_t b = video.dim(0);

  std::vector<sdl::SlotLabels> out;
  out.reserve(static_cast<std::size_t>(b));
  // Per-slot softmax once per batch.
  std::array<nn::Tensor, sdl::kNumSlots> probs;
  for (std::size_t s = 0; s < sdl::kNumSlots; ++s) {
    probs[s] = tt::softmax_lastdim(logits[s]);
  }
  for (std::int64_t i = 0; i < b; ++i) {
    SlotProbabilities row;
    for (std::size_t s = 0; s < sdl::kNumSlots; ++s) {
      const std::int64_t c = probs[s].dim(1);
      row[s].resize(static_cast<std::size_t>(c));
      for (std::int64_t j = 0; j < c; ++j) {
        row[s][static_cast<std::size_t>(j)] = probs[s].at(i * c + j);
      }
    }
    out.push_back(constrained ? decode_constrained(row) : decode_argmax(row));
  }
  return out;
}

double validity_rate(const std::vector<sdl::SlotLabels>& predictions) {
  if (predictions.empty()) return 1.0;
  std::size_t valid = 0;
  for (const auto& labels : predictions) {
    if (sdl::is_valid(sdl::from_slot_labels(labels))) ++valid;
  }
  return static_cast<double>(valid) / static_cast<double>(predictions.size());
}

}  // namespace tsdx::core
