#include "core/trainer.hpp"

#include <chrono>
#include <cstdio>

#include "nn/optim.hpp"

namespace tsdx::core {

TrainResult Trainer::fit(ScenarioModel& model, const data::Dataset& train,
                         const data::Dataset& val) const {
  const auto t0 = std::chrono::steady_clock::now();
  nn::Rng shuffle_rng(config_.seed);
  data::Batcher batcher(train, config_.batch_size);
  nn::Adam opt(model.parameters(), config_.lr, 0.9f, 0.999f, 1e-8f,
               config_.weight_decay);

  const std::int64_t steps_per_epoch = static_cast<std::int64_t>(
      (train.size() + config_.batch_size - 1) / config_.batch_size);
  const std::int64_t total_steps =
      steps_per_epoch * static_cast<std::int64_t>(config_.epochs);

  TrainResult result;
  std::int64_t step = 0;
  double best_val = -1.0;
  std::size_t epochs_since_best = 0;
  std::vector<std::vector<float>> best_params;  // snapshot for restore_best
  const auto params = model.parameters();

  for (std::size_t epoch = 0; epoch < config_.epochs; ++epoch) {
    model.set_training(true);
    double loss_sum = 0.0;
    std::size_t batches = 0;
    for (const auto& indices : batcher.epoch(shuffle_rng)) {
      const data::Batch batch = batcher.gather(indices);
      opt.set_lr(nn::cosine_warmup_lr(step, total_steps, config_.lr,
                                      config_.warmup_steps));
      model.zero_grad();
      nn::Tensor loss = model.loss(batch.video, batch.labels);
      loss.backward();
      nn::clip_grad_norm(model.parameters(), config_.clip_norm);
      opt.step();
      loss_sum += loss.item();
      ++batches;
      ++step;
    }

    model.set_training(false);  // disable dropout for evaluation
    EpochStats stats;
    stats.train_loss = batches ? loss_sum / static_cast<double>(batches) : 0.0;
    if (!val.empty()) {
      const data::SlotMetrics m = evaluate(model, val, config_.batch_size);
      stats.val_mean_accuracy = m.mean_accuracy();
      stats.val_mean_macro_f1 = m.mean_macro_f1();
    }
    if (config_.verbose) {
      std::printf("epoch %2zu  loss %.4f  val_acc %.3f  val_f1 %.3f\n",
                  epoch + 1, stats.train_loss, stats.val_mean_accuracy,
                  stats.val_mean_macro_f1);
      std::fflush(stdout);
    }
    result.history.push_back(stats);

    if (!val.empty()) {
      if (stats.val_mean_accuracy > best_val) {
        best_val = stats.val_mean_accuracy;
        result.best_epoch = epoch;
        epochs_since_best = 0;
        if (config_.restore_best) {
          best_params.clear();
          for (const nn::Tensor& p : params) {
            best_params.emplace_back(p.data().begin(), p.data().end());
          }
        }
      } else {
        ++epochs_since_best;
        if (config_.patience > 0 && epochs_since_best >= config_.patience) {
          result.stopped_early = true;
          if (config_.verbose) {
            std::printf("early stop at epoch %zu (best %zu)\n", epoch + 1,
                        result.best_epoch + 1);
          }
          break;
        }
      }
    }
  }
  if (config_.restore_best && !best_params.empty()) {
    for (std::size_t i = 0; i < params.size(); ++i) {
      nn::Tensor p = params[i];
      std::copy(best_params[i].begin(), best_params[i].end(),
                p.mutable_data().begin());
    }
  }
  result.train_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  return result;
}

data::SlotMetrics Trainer::evaluate(const ScenarioModel& model,
                                    const data::Dataset& dataset,
                                    std::size_t batch_size) {
  // Caller is responsible for model.set_training(false); fit() does this
  // before each validation pass. Gradients are disabled inside predict().
  data::SlotMetrics metrics;
  for (std::size_t start = 0; start < dataset.size(); start += batch_size) {
    const std::size_t count = std::min(batch_size, dataset.size() - start);
    const data::Batch batch = dataset.make_batch(start, count);
    const auto preds = model.predict(batch.video);
    for (std::size_t i = 0; i < preds.size(); ++i) {
      metrics.add(dataset[start + i].labels, preds[i]);
    }
  }
  return metrics;
}

}  // namespace tsdx::core
