// backbone.hpp — the interface every clip encoder implements.
//
// A backbone maps a video batch [B, T, C, H, W] to clip features [B, D].
// The video transformer (core) and the CNN baselines (baseline/) all
// implement this, so heads, trainer, benches, and metrics are shared.
#pragma once

#include "nn/module.hpp"

namespace tsdx::core {

class Backbone : public nn::Module {
 public:
  /// [B, T, C, H, W] -> [B, feature_dim()].
  virtual nn::Tensor forward(const nn::Tensor& video) const = 0;
  virtual std::int64_t feature_dim() const = 0;
  /// Short identifier for experiment tables ("vt_divided_st", "cnn_lstm", …).
  virtual std::string name() const = 0;
};

}  // namespace tsdx::core
