#include "core/extractor.hpp"

#include <algorithm>

#include "core/decoding.hpp"
#include "obs/trace.hpp"
#include "tensor/ops.hpp"

namespace tsdx::core {

namespace tt = tsdx::tensor;

float ExtractionResult::min_confidence() const {
  return *std::min_element(confidence.begin(), confidence.end());
}

nn::Tensor clip_to_tensor(const sim::VideoClip& clip) {
  return nn::Tensor::from_vector(
      {1, clip.frames, sim::kNumChannels, clip.height, clip.width},
      std::vector<float>(clip.data.begin(), clip.data.end()));
}

ScenarioExtractor::ScenarioExtractor(std::shared_ptr<ScenarioModel> model)
    : model_(std::move(model)) {}

ScenarioExtractor::ScenarioExtractor(const ModelConfig& config,
                                     std::uint64_t seed)
    : rng_(std::make_shared<nn::Rng>(seed)) {
  auto backbone = std::make_unique<VideoTransformer>(config, *rng_);
  model_ = std::make_shared<ScenarioModel>(std::move(backbone), *rng_);
}

TrainResult ScenarioExtractor::train(const data::Dataset& train_set,
                                     const data::Dataset& val_set,
                                     const TrainConfig& config) {
  return Trainer(config).fit(*model_, train_set, val_set);
}

namespace {

ExtractionResult make_result(const sdl::SlotLabels& labels,
                             const std::array<float, sdl::kNumSlots>& conf) {
  ExtractionResult result;
  result.description = sdl::from_slot_labels(labels);
  result.confidence = conf;
  result.warnings = sdl::validate(result.description);
  return result;
}

}  // namespace

std::vector<ExtractionResult> ScenarioExtractor::extract_batch(
    const data::Batch& batch) const {
  TSDX_TRACE_SPAN("extract.batch");
  if (!constrained_) {
    const auto preds = model_->predict_with_confidence(batch.video);
    std::vector<ExtractionResult> out;
    out.reserve(preds.size());
    for (const auto& p : preds) {
      out.push_back(make_result(p.labels, p.confidence));
    }
    return out;
  }

  // Constrained path: decode against the valid set, then report the decoded
  // class's probability (not the argmax's) as the confidence.
  tt::NoGradGuard no_grad;
  const auto logits = model_->forward(batch.video);
  const std::int64_t b = batch.video.dim(0);
  std::array<nn::Tensor, sdl::kNumSlots> probs;
  for (std::size_t s = 0; s < sdl::kNumSlots; ++s) {
    probs[s] = tt::softmax_lastdim(logits[s]);
  }
  std::vector<ExtractionResult> out;
  out.reserve(static_cast<std::size_t>(b));
  for (std::int64_t i = 0; i < b; ++i) {
    SlotProbabilities row;
    for (std::size_t s = 0; s < sdl::kNumSlots; ++s) {
      const std::int64_t c = probs[s].dim(1);
      row[s].resize(static_cast<std::size_t>(c));
      for (std::int64_t j = 0; j < c; ++j) {
        row[s][static_cast<std::size_t>(j)] = probs[s].at(i * c + j);
      }
    }
    const sdl::SlotLabels labels = decode_constrained(row);
    std::array<float, sdl::kNumSlots> conf{};
    for (std::size_t s = 0; s < sdl::kNumSlots; ++s) {
      conf[s] = row[s][labels[s]];
    }
    out.push_back(make_result(labels, conf));
  }
  return out;
}

ExtractionResult ScenarioExtractor::extract(const sim::VideoClip& clip) const {
  data::Batch batch;
  batch.video = clip_to_tensor(clip);
  return extract_batch(batch)[0];
}

}  // namespace tsdx::core
