#include "core/video_transformer.hpp"

#include <cmath>
#include <stdexcept>

#include "core/check.hpp"
#include "obs/trace.hpp"
#include "tensor/ops.hpp"

namespace tsdx::core {

namespace tt = tsdx::tensor;
using nn::Tensor;

TubeletEmbedding::TubeletEmbedding(const ModelConfig& cfg, nn::Rng& rng)
    : cfg_(cfg), proj_(cfg.tubelet_dim(), cfg.dim, rng) {
  cfg_.validate();
  register_module("proj", proj_);
}

Tensor TubeletEmbedding::forward(const Tensor& video) const {
  TSDX_TRACE_SPAN("model.embed");
  TSDX_SHAPE_ASSERT(video.rank() == 5, "TubeletEmbedding: expected [B,T,C,H,W], got ",
                    tt::to_string(video.shape()));
  const std::int64_t b = video.dim(0);
  const std::int64_t t = video.dim(1);
  const std::int64_t c = video.dim(2);
  const std::int64_t h = video.dim(3);
  const std::int64_t w = video.dim(4);
  TSDX_SHAPE_ASSERT(
      t == cfg_.frames && c == cfg_.channels && h == cfg_.image_size &&
          w == cfg_.image_size,
      "TubeletEmbedding: clip ", tt::to_string(video.shape()),
      " does not match configured geometry [B, ", cfg_.frames, ", ",
      cfg_.channels, ", ", cfg_.image_size, ", ", cfg_.image_size, "]");
  const std::int64_t nt = cfg_.temporal_tokens();
  const std::int64_t tub = cfg_.tubelet_frames;
  const std::int64_t g = cfg_.image_size / cfg_.patch_size;  // grid side
  const std::int64_t p = cfg_.patch_size;

  // [B,T,C,H,W] = [B, nt, tub, C, g, p, g, p]
  Tensor x = tt::reshape(video, {b, nt, tub, c, g, p, g, p});
  // -> [B, nt, gh, gw, tub, C, ph, pw]
  x = tt::permute(x, {0, 1, 4, 6, 2, 3, 5, 7});
  // -> [B, N, tubelet_dim]
  x = tt::reshape(x, {b, nt * g * g, cfg_.tubelet_dim()});
  return proj_.forward(x);
}

namespace {

/// Classic transformer sin/cos code for `position` in a `dim`-vector, scaled
/// down to match the tubelet embedding magnitude.
void write_sinusoid(float* out, std::int64_t dim, double position,
                    float scale) {
  for (std::int64_t i = 0; i < dim; i += 2) {
    const double freq =
        std::pow(10000.0, -static_cast<double>(i) / static_cast<double>(dim));
    out[i] += scale * static_cast<float>(std::sin(position * freq));
    if (i + 1 < dim) {
      out[i + 1] += scale * static_cast<float>(std::cos(position * freq));
    }
  }
}

}  // namespace

VideoTransformer::VideoTransformer(const ModelConfig& cfg, nn::Rng& rng)
    : cfg_(cfg), embed_(cfg, rng) {
  cfg_.validate();
  if (cfg_.pooling == Pooling::kAttention) {
    pool_query_ = register_parameter(
        "pool_query", Tensor::randn({cfg_.dim, 1}, rng, 0.05f));
  }
  register_module("embed", embed_);
  switch (cfg_.positional) {
    case PositionalKind::kLearned:
      pos_spatial_ = std::make_unique<nn::Embedding>(cfg_.tokens_per_frame(),
                                                     cfg_.dim, rng);
      pos_temporal_ = std::make_unique<nn::Embedding>(cfg_.temporal_tokens(),
                                                      cfg_.dim, rng);
      register_module("pos_spatial", *pos_spatial_);
      register_module("pos_temporal", *pos_temporal_);
      break;
    case PositionalKind::kSinusoidal: {
      const std::int64_t ns = cfg_.tokens_per_frame();
      const std::int64_t nt = cfg_.temporal_tokens();
      std::vector<float> table(static_cast<std::size_t>(nt * ns * cfg_.dim),
                               0.0f);
      for (std::int64_t n = 0; n < nt * ns; ++n) {
        float* row = table.data() + n * cfg_.dim;
        // Spatial code over the first half of each row's budget, temporal
        // over positions offset by 0.5 so the two codes stay distinguishable.
        write_sinusoid(row, cfg_.dim, static_cast<double>(n % ns), 0.02f);
        write_sinusoid(row, cfg_.dim, static_cast<double>(n / ns) + 0.5,
                       0.02f);
      }
      sinusoidal_pos_ =
          Tensor::from_vector({nt * ns, cfg_.dim}, std::move(table));
      break;
    }
    case PositionalKind::kNone:
      break;
  }

  const std::int64_t mlp_hidden = cfg_.dim * cfg_.mlp_ratio;
  switch (cfg_.attention) {
    case AttentionKind::kJoint:
    case AttentionKind::kSpaceOnly:
      encoder_ = std::make_unique<nn::TransformerEncoder>(
          cfg_.depth, cfg_.dim, cfg_.heads, mlp_hidden, cfg_.dropout, rng);
      register_module("encoder", *encoder_);
      break;
    case AttentionKind::kFactorizedEncoder:
      encoder_ = std::make_unique<nn::TransformerEncoder>(
          cfg_.depth, cfg_.dim, cfg_.heads, mlp_hidden, cfg_.dropout, rng);
      register_module("encoder", *encoder_);
      // A shallow temporal encoder over per-frame features (ViViT model 2
      // uses a small temporal transformer after the spatial one).
      temporal_encoder_ = std::make_unique<nn::TransformerEncoder>(
          /*depth=*/2, cfg_.dim, cfg_.heads, mlp_hidden, cfg_.dropout, rng);
      register_module("temporal_encoder", *temporal_encoder_);
      break;
    case AttentionKind::kDividedST:
      for (std::int64_t i = 0; i < cfg_.depth; ++i) {
        divided_layers_.push_back(
            std::make_unique<nn::TransformerEncoderLayer>(
                cfg_.dim, cfg_.heads, mlp_hidden, cfg_.dropout, rng));
        register_module("divided_layer" + std::to_string(i),
                        *divided_layers_.back());
      }
      divided_norm_ = std::make_unique<nn::LayerNorm>(cfg_.dim);
      register_module("divided_norm", *divided_norm_);
      break;
  }
}

Tensor VideoTransformer::tokenize(const Tensor& video) const {
  Tensor tokens = embed_.forward(video);  // [B, N, D]
  switch (cfg_.positional) {
    case PositionalKind::kLearned: {
      const std::int64_t ns = cfg_.tokens_per_frame();
      const std::int64_t nt = cfg_.temporal_tokens();
      // Token n covers spatial cell n % ns of temporal slice n / ns.
      std::vector<std::int64_t> sidx(static_cast<std::size_t>(nt * ns));
      std::vector<std::int64_t> tidx(sidx.size());
      for (std::int64_t n = 0; n < nt * ns; ++n) {
        sidx[static_cast<std::size_t>(n)] = n % ns;
        tidx[static_cast<std::size_t>(n)] = n / ns;
      }
      const Tensor pos =
          tt::add(pos_spatial_->forward(sidx), pos_temporal_->forward(tidx));
      return tt::add(tokens, pos);  // [N, D] broadcast over batch
    }
    case PositionalKind::kSinusoidal:
      return tt::add(tokens, sinusoidal_pos_);
    case PositionalKind::kNone:
      return tokens;
  }
  throw std::logic_error("VideoTransformer: unknown positional kind");
}

Tensor VideoTransformer::pool(const Tensor& tokens) const {
  TSDX_SHAPE_ASSERT(tokens.rank() == 3 && tokens.dim(2) == cfg_.dim,
                    "VideoTransformer::pool: expected [B, N, ", cfg_.dim,
                    "], got ", tt::to_string(tokens.shape()));
  if (cfg_.pooling == Pooling::kMean) return tt::mean_dim(tokens, 1);
  // Single-query attention pool: softmax(tokens . q) weighted token sum.
  const std::int64_t b = tokens.dim(0);
  const std::int64_t n = tokens.dim(1);
  Tensor scores = tt::reshape(tt::matmul(tokens, pool_query_), {b, n});
  Tensor weights = tt::reshape(tt::softmax_lastdim(scores), {b, n, 1});
  return tt::reshape(tt::matmul(tt::transpose_last2(tokens), weights),
                     {b, cfg_.dim});
}

Tensor VideoTransformer::forward_joint(const Tensor& tokens,
                                       std::int64_t /*b*/) const {
  return pool(encoder_->forward(tokens));
}

Tensor VideoTransformer::forward_space_only(const Tensor& tokens,
                                            std::int64_t b) const {
  const std::int64_t ns = cfg_.tokens_per_frame();
  const std::int64_t nt = cfg_.temporal_tokens();
  Tensor frames = tt::reshape(tokens, {b * nt, ns, cfg_.dim});
  Tensor enc = encoder_->forward(frames);
  Tensor frame_feat = tt::mean_dim(enc, 1);  // [B*nt, D]
  return pool(tt::reshape(frame_feat, {b, nt, cfg_.dim}));
}

Tensor VideoTransformer::forward_factorized(const Tensor& tokens,
                                            std::int64_t b) const {
  const std::int64_t ns = cfg_.tokens_per_frame();
  const std::int64_t nt = cfg_.temporal_tokens();
  Tensor frames = tt::reshape(tokens, {b * nt, ns, cfg_.dim});
  Tensor frame_feat = tt::mean_dim(encoder_->forward(frames), 1);
  Tensor seq = tt::reshape(frame_feat, {b, nt, cfg_.dim});
  return pool(temporal_encoder_->forward(seq));
}

Tensor VideoTransformer::forward_divided(const Tensor& tokens,
                                         std::int64_t b) const {
  const std::int64_t ns = cfg_.tokens_per_frame();
  const std::int64_t nt = cfg_.temporal_tokens();
  Tensor h = tokens;  // [B, N, D]
  for (std::size_t i = 0; i < divided_layers_.size(); ++i) {
    if (i % 2 == 0) {
      // Spatial: attend within each temporal slice.
      Tensor x = tt::reshape(h, {b * nt, ns, cfg_.dim});
      x = divided_layers_[i]->forward(x);
      h = tt::reshape(x, {b, nt * ns, cfg_.dim});
    } else {
      // Temporal: attend across time at each spatial site.
      Tensor x = tt::reshape(h, {b, nt, ns, cfg_.dim});
      x = tt::permute(x, {0, 2, 1, 3});  // [B, ns, nt, D]
      x = tt::reshape(x, {b * ns, nt, cfg_.dim});
      x = divided_layers_[i]->forward(x);
      x = tt::reshape(x, {b, ns, nt, cfg_.dim});
      x = tt::permute(x, {0, 2, 1, 3});
      h = tt::reshape(x, {b, nt * ns, cfg_.dim});
    }
  }
  return pool(divided_norm_->forward(h));
}

Tensor VideoTransformer::forward(const Tensor& video) const {
  TSDX_SHAPE_ASSERT(video.rank() == 5, "VideoTransformer: expected [B,T,C,H,W], got ",
                    tt::to_string(video.shape()));
  const std::int64_t b = video.dim(0);
  const Tensor tokens = tokenize(video);
  switch (cfg_.attention) {
    case AttentionKind::kJoint:
      return forward_joint(tokens, b);
    case AttentionKind::kDividedST:
      return forward_divided(tokens, b);
    case AttentionKind::kFactorizedEncoder:
      return forward_factorized(tokens, b);
    case AttentionKind::kSpaceOnly:
      return forward_space_only(tokens, b);
  }
  throw std::logic_error("VideoTransformer: unknown attention kind");
}

}  // namespace tsdx::core
