// check.hpp — contract assertions for the tensor/NN/core stack.
//
// Every public op validates its inputs with these macros so that a mis-shaped
// or out-of-contract call fails with a typed, descriptive exception instead of
// silently reading out of bounds. The checks are always on (not NDEBUG-gated):
// they run once per op call, which is negligible next to the op itself, and
// they are exactly what makes sanitizer runs and downstream serving safe.
//
// The layer is header-only and dependency-free so the lowest layer
// (src/tensor) can use it without linking against tsdx_core.
//
// Idiom:
//   TSDX_CHECK(stride >= 1, "conv2d: stride must be >= 1, got ", stride);
//   TSDX_SHAPE_ASSERT(a.shape() == b.shape(), "add: incompatible shapes ",
//                     to_string(a.shape()), " and ", to_string(b.shape()));
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace tsdx {

/// A value-level contract violation (bad stride, index out of range, ...).
/// Derives from std::invalid_argument so existing call sites and tests that
/// catch the standard type keep working.
class ValueError : public std::invalid_argument {
 public:
  explicit ValueError(const std::string& what_arg)
      : std::invalid_argument(what_arg) {}
};

/// A shape-level contract violation (rank/extent mismatch between operands).
class ShapeError : public std::invalid_argument {
 public:
  explicit ShapeError(const std::string& what_arg)
      : std::invalid_argument(what_arg) {}
};

namespace check_detail {

template <class... Parts>
std::string concat(const Parts&... parts) {
  std::ostringstream os;
  static_cast<void>((os << ... << parts));
  return os.str();
}

template <class... Parts>
[[noreturn]] void fail_value(const char* file, int line, const char* cond,
                             const Parts&... parts) {
  std::string msg = concat(parts...);
  if (msg.empty()) msg = "contract violated";
  throw ValueError(concat(msg, " [", file, ":", line, ": CHECK(", cond,
                          ")]"));
}

template <class... Parts>
[[noreturn]] void fail_shape(const char* file, int line, const char* cond,
                             const Parts&... parts) {
  std::string msg = concat(parts...);
  if (msg.empty()) msg = "shape contract violated";
  throw ShapeError(concat(msg, " [", file, ":", line, ": SHAPE_ASSERT(", cond,
                          ")]"));
}

}  // namespace check_detail
}  // namespace tsdx

/// Throw tsdx::ValueError with a formatted message unless `cond` holds.
#define TSDX_CHECK(cond, ...)                                              \
  do {                                                                     \
    if (!(cond)) {                                                         \
      ::tsdx::check_detail::fail_value(__FILE__, __LINE__,                 \
                                       #cond __VA_OPT__(, ) __VA_ARGS__);  \
    }                                                                      \
  } while (false)

/// Throw tsdx::ShapeError with a formatted message unless `cond` holds.
#define TSDX_SHAPE_ASSERT(cond, ...)                                       \
  do {                                                                     \
    if (!(cond)) {                                                         \
      ::tsdx::check_detail::fail_shape(__FILE__, __LINE__,                 \
                                       #cond __VA_OPT__(, ) __VA_ARGS__);  \
    }                                                                      \
  } while (false)
