// video_transformer.hpp — the paper's model: a transformer over space-time
// tubelet tokens with a configurable attention factorization.
//
// Pipeline: clip [B,T,C,H,W] -> tubelet tokens [B,N,D] (+ learned spatial and
// temporal positional embeddings) -> encoder (Joint / DividedST /
// FactorizedEncoder / SpaceOnly) -> mean-pooled clip feature [B,D].
#pragma once

#include <memory>
#include <vector>

#include "core/backbone.hpp"
#include "core/config.hpp"
#include "nn/attention.hpp"

namespace tsdx::core {

/// Cuts the clip into (tubelet_frames x patch x patch) tubelets and linearly
/// projects each to the model dimension.
class TubeletEmbedding : public nn::Module {
 public:
  TubeletEmbedding(const ModelConfig& cfg, nn::Rng& rng);

  /// [B, T, C, H, W] -> [B, N, dim], token order is time-major
  /// (token n = temporal index n / tokens_per_frame, spatial n % ...).
  nn::Tensor forward(const nn::Tensor& video) const;

 private:
  ModelConfig cfg_;
  nn::Linear proj_;
};

class VideoTransformer : public Backbone {
 public:
  VideoTransformer(const ModelConfig& cfg, nn::Rng& rng);

  nn::Tensor forward(const nn::Tensor& video) const override;
  std::int64_t feature_dim() const override { return cfg_.dim; }
  std::string name() const override {
    return "vt_" + core::to_string(cfg_.attention);
  }

  const ModelConfig& config() const { return cfg_; }

 private:
  /// Tokens with positional information, shape [B, N, D].
  nn::Tensor tokenize(const nn::Tensor& video) const;

  /// Reduce [B, N, D] -> [B, D] per cfg_.pooling (mean or learned
  /// single-query attention pool).
  nn::Tensor pool(const nn::Tensor& tokens) const;

  nn::Tensor forward_joint(const nn::Tensor& tokens, std::int64_t b) const;
  nn::Tensor forward_divided(const nn::Tensor& tokens, std::int64_t b) const;
  nn::Tensor forward_factorized(const nn::Tensor& tokens, std::int64_t b) const;
  nn::Tensor forward_space_only(const nn::Tensor& tokens, std::int64_t b) const;

  ModelConfig cfg_;
  TubeletEmbedding embed_;
  // Learned positional tables; null unless cfg_.positional == kLearned.
  std::unique_ptr<nn::Embedding> pos_spatial_;   ///< [tokens_per_frame, dim]
  std::unique_ptr<nn::Embedding> pos_temporal_;  ///< [temporal_tokens, dim]
  /// Fixed sin/cos table [N, dim]; populated for kSinusoidal.
  nn::Tensor sinusoidal_pos_;

  // Encoder variants — exactly one set is populated, per cfg_.attention.
  std::unique_ptr<nn::TransformerEncoder> encoder_;           // joint / space / factorized-spatial
  std::unique_ptr<nn::TransformerEncoder> temporal_encoder_;  // factorized only
  std::vector<std::unique_ptr<nn::TransformerEncoderLayer>> divided_layers_;
  std::unique_ptr<nn::LayerNorm> divided_norm_;

  /// Learned pooling query [dim, 1]; only populated for Pooling::kAttention.
  nn::Tensor pool_query_;
};

}  // namespace tsdx::core
