// model.hpp — backbone + per-slot classification heads = a full extraction
// model with a multi-task loss.
#pragma once

#include <array>
#include <memory>

#include "core/backbone.hpp"
#include "data/dataset.hpp"
#include "nn/layers.hpp"
#include "sdl/description.hpp"

namespace tsdx::core {

/// One linear classifier per SDL slot, sharing the backbone feature.
class SlotHeads : public nn::Module {
 public:
  SlotHeads(std::int64_t feature_dim, nn::Rng& rng);

  /// [B, D] -> logits per slot, each [B, cardinality(slot)].
  std::array<nn::Tensor, sdl::kNumSlots> forward(const nn::Tensor& features)
      const;

 private:
  std::array<std::unique_ptr<nn::Linear>, sdl::kNumSlots> heads_;
};

/// Which slots participate in training/evaluation (all by default; the
/// multi-task ablation R-T5 trains single-slot variants).
using SlotMask = std::array<bool, sdl::kNumSlots>;
inline constexpr SlotMask kAllSlots = {true, true, true, true,
                                       true, true, true, true};

class ScenarioModel : public nn::Module {
 public:
  /// Takes ownership of the backbone.
  ScenarioModel(std::unique_ptr<Backbone> backbone, nn::Rng& rng,
                SlotMask active = kAllSlots);

  /// Per-slot logits for a video batch [B, T, C, H, W].
  std::array<nn::Tensor, sdl::kNumSlots> forward(const nn::Tensor& video) const;

  /// Mean cross-entropy over active slots (scalar).
  nn::Tensor loss(const nn::Tensor& video,
                  const std::array<std::vector<std::int64_t>, sdl::kNumSlots>&
                      labels) const;

  /// Argmax labels for a batch; inactive slots predict class 0.
  std::vector<sdl::SlotLabels> predict(const nn::Tensor& video) const;

  /// Per-example softmax confidence of the predicted class, per slot.
  struct Prediction {
    sdl::SlotLabels labels;
    std::array<float, sdl::kNumSlots> confidence;
  };
  std::vector<Prediction> predict_with_confidence(const nn::Tensor& video) const;

  const Backbone& backbone() const { return *backbone_; }
  const SlotMask& active_slots() const { return active_; }

 private:
  std::unique_ptr<Backbone> backbone_;
  SlotHeads heads_;
  SlotMask active_;
};

}  // namespace tsdx::core
