// extractor.hpp — the user-facing API of the library: video clip in,
// structured scenario description out.
#pragma once

#include <memory>
#include <string>

#include "core/model.hpp"
#include "core/trainer.hpp"
#include "core/video_transformer.hpp"
#include "sim/render.hpp"

namespace tsdx::core {

/// The result of running extraction on one clip.
struct ExtractionResult {
  sdl::ScenarioDescription description;
  std::array<float, sdl::kNumSlots> confidence{};  ///< softmax of argmax class
  /// Semantic-consistency warnings from sdl::validate (a model can emit
  /// combinations the SDL grammar forbids; downstream consumers should check).
  std::vector<std::string> warnings;

  /// Minimum slot confidence — a quick usefulness gate.
  float min_confidence() const;
};

/// Owns a ScenarioModel and converts raw clips to descriptions.
class ScenarioExtractor {
 public:
  /// Wrap an existing (typically trained) model.
  explicit ScenarioExtractor(std::shared_ptr<ScenarioModel> model);

  /// Build an untrained video-transformer extractor (then call train()).
  ScenarioExtractor(const ModelConfig& config, std::uint64_t seed);

  /// When enabled, extract() decodes with the exact maximum-likelihood
  /// search over semantically valid label combinations (see decoding.hpp):
  /// the returned description is then guaranteed to pass sdl::validate.
  void set_constrained_decoding(bool enabled) { constrained_ = enabled; }
  bool constrained_decoding() const { return constrained_; }

  /// Train on a labeled dataset; returns the training history.
  TrainResult train(const data::Dataset& train_set,
                    const data::Dataset& val_set, const TrainConfig& config);

  /// Freeze the model for inference (disables dropout). On a frozen model,
  /// extract()/extract_batch() are pure const traversals of the weights:
  /// deterministic, RNG-free, and safe to call concurrently from multiple
  /// threads (the contract tsdx::serve::InferenceServer relies on).
  void freeze() { model_->set_training(false); }
  bool frozen() const { return !model_->training(); }

  /// Extract the description of a single clip.
  ExtractionResult extract(const sim::VideoClip& clip) const;

  /// Batch extraction.
  std::vector<ExtractionResult> extract_batch(const data::Batch& batch) const;

  const ScenarioModel& model() const { return *model_; }
  ScenarioModel& model() { return *model_; }

 private:
  // The Rng must outlive the model (layers keep pointers for dropout).
  std::shared_ptr<nn::Rng> rng_;
  std::shared_ptr<ScenarioModel> model_;
  bool constrained_ = false;
};

/// Convert a single clip into a [1, T, C, H, W] tensor.
nn::Tensor clip_to_tensor(const sim::VideoClip& clip);

}  // namespace tsdx::core
