#include "core/lockorder.hpp"

#include <atomic>
#include <cstdlib>
#include <sstream>
#include <vector>

#include "obs/log.hpp"

#if defined(__has_include)
#if __has_include(<execinfo.h>)
#include <execinfo.h>
#define TSDX_LOCKORDER_HAVE_BACKTRACE 1
#endif
#endif

namespace tsdx::lockorder {

namespace {

constexpr std::size_t kMaxFrames = 24;

/// One held lock: identity, rank, and the raw acquisition backtrace (not
/// symbolized until a violation actually fires).
struct Held {
  const void* mutex = nullptr;
  const char* name = nullptr;
  Rank rank = Rank::kLeaf;
  void* frames[kMaxFrames] = {};
  int frame_count = 0;
};

/// Per-thread held-lock stack. A vector, not a set: lock nesting is shallow
/// (2-3 deep in practice) and release order matches LIFO closely enough that
/// a linear scan wins over any hashed structure.
thread_local std::vector<Held> t_held;

/// -1 = unresolved (consult TSDX_LOCK_ORDER on first hook), else 0/1.
std::atomic<int> g_enabled{-1};

std::atomic<Handler> g_handler{nullptr};

int resolve_enabled() {
  const char* env = std::getenv("TSDX_LOCK_ORDER");
  const int on =
      (env != nullptr && env[0] != '\0' && !(env[0] == '0' && env[1] == '\0'))
          ? 1
          : 0;
  int expected = -1;
  // Racing first readers resolve the same environment value; whichever store
  // wins, the value is identical.
  g_enabled.compare_exchange_strong(expected, on, std::memory_order_relaxed);
  return g_enabled.load(std::memory_order_relaxed);
}

int capture_stack(void** frames) {
#ifdef TSDX_LOCKORDER_HAVE_BACKTRACE
  return backtrace(frames, static_cast<int>(kMaxFrames));
#else
  (void)frames;
  return 0;
#endif
}

void append_stack(std::ostringstream& os, void* const* frames, int count) {
#ifdef TSDX_LOCKORDER_HAVE_BACKTRACE
  if (count <= 0) {
    os << "    <no backtrace captured>\n";
    return;
  }
  char** symbols = backtrace_symbols(frames, count);
  for (int i = 0; i < count; ++i) {
    os << "    #" << i << " ";
    if (symbols != nullptr && symbols[i] != nullptr) {
      os << symbols[i];
    } else {
      os << frames[i];
    }
    os << "\n";
  }
  std::free(symbols);
#else
  (void)frames;
  (void)count;
  os << "    <backtrace unavailable on this platform>\n";
#endif
}

void report_violation(const Held& held, const void* mutex, const char* name,
                      Rank rank, void* const* frames, int frame_count) {
  Violation violation;
  violation.acquiring_name = name;
  violation.acquiring_rank = rank;
  violation.held_name = held.name;
  violation.held_rank = held.rank;
  violation.same_mutex = held.mutex == mutex;

  std::ostringstream os;
  if (violation.same_mutex) {
    os << "lock-order violation: recursive acquisition of `" << name
       << "` (rank " << static_cast<std::uint32_t>(rank)
       << ") — this mutex is not recursive, this is a self-deadlock\n";
  } else {
    os << "lock-order violation: acquiring `" << name << "` (rank "
       << static_cast<std::uint32_t>(rank) << ") while holding `" << held.name
       << "` (rank " << static_cast<std::uint32_t>(held.rank)
       << ") — ranks must be strictly increasing; see DESIGN.md §12\n";
  }
  os << "  stack acquiring `" << name << "`:\n";
  append_stack(os, frames, frame_count);
  os << "  stack that acquired `" << held.name << "`:\n";
  append_stack(os, held.frames, held.frame_count);
  violation.report = os.str();

  const Handler handler = g_handler.load(std::memory_order_acquire);
  if (handler != nullptr) {
    handler(violation);
    return;
  }
  TSDX_LOG_WARN("lockorder", violation.report);
  std::abort();
}

}  // namespace

Handler set_violation_handler(Handler handler) {
  return g_handler.exchange(handler, std::memory_order_acq_rel);
}

bool enabled() {
  const int on = g_enabled.load(std::memory_order_relaxed);
  return (on == -1 ? resolve_enabled() : on) != 0;
}

void set_enabled(bool on) {
  g_enabled.store(on ? 1 : 0, std::memory_order_relaxed);
}

ScopedEnable::ScopedEnable() : previous_(enabled()) { set_enabled(true); }

ScopedEnable::~ScopedEnable() { set_enabled(previous_); }

void on_acquire(const void* mutex, const char* name, Rank rank) {
  if (!enabled()) return;
  Held entry;
  entry.mutex = mutex;
  entry.name = name;
  entry.rank = rank;
  entry.frame_count = capture_stack(entry.frames);
  // Check every held lock, not just the most recent: release order is not
  // guaranteed LIFO, so the outranking lock may sit anywhere in the set.
  for (const Held& held : t_held) {
    if (held.mutex == mutex || held.rank >= rank) {
      report_violation(held, mutex, name, rank, entry.frames,
                       entry.frame_count);
      // A test handler that chose not to abort: skip recording so the
      // violating acquisition doesn't cascade into follow-on reports.
      return;
    }
  }
  t_held.push_back(entry);
}

void on_release(const void* mutex) {
  if (t_held.empty()) return;
  // Scan newest-first: releases are LIFO in the common RAII case.
  for (std::size_t i = t_held.size(); i-- > 0;) {
    if (t_held[i].mutex == mutex) {
      t_held.erase(t_held.begin() + static_cast<std::ptrdiff_t>(i));
      return;
    }
  }
}

std::size_t held_count() { return t_held.size(); }

}  // namespace tsdx::lockorder
