// trainer.hpp — multi-task training loop and evaluation.
#pragma once

#include <cstdint>
#include <vector>

#include "core/model.hpp"
#include "data/dataset.hpp"
#include "data/metrics.hpp"

namespace tsdx::core {

struct TrainConfig {
  std::size_t epochs = 6;
  std::size_t batch_size = 8;
  float lr = 3e-3f;
  std::int64_t warmup_steps = 20;
  float weight_decay = 1e-4f;
  float clip_norm = 5.0f;
  std::uint64_t seed = 1;
  bool verbose = false;  ///< print per-epoch progress to stdout
  /// Early stopping on validation mean accuracy: stop after `patience`
  /// epochs without improvement (0 disables). Requires a non-empty val set.
  std::size_t patience = 0;
  /// After training, restore the parameters of the best validation epoch
  /// (only meaningful with a non-empty val set).
  bool restore_best = false;
};

struct EpochStats {
  double train_loss = 0.0;
  double val_mean_accuracy = 0.0;
  double val_mean_macro_f1 = 0.0;
};

struct TrainResult {
  std::vector<EpochStats> history;
  double train_seconds = 0.0;
  std::size_t best_epoch = 0;        ///< index of the best val epoch
  bool stopped_early = false;

  const EpochStats& last() const { return history.back(); }
};

class Trainer {
 public:
  explicit Trainer(TrainConfig config) : config_(config) {}

  /// AdamW + cosine/warmup schedule + grad clipping. `val` may be empty,
  /// in which case val metrics are reported as 0.
  TrainResult fit(ScenarioModel& model, const data::Dataset& train,
                  const data::Dataset& val) const;

  /// Full-dataset evaluation (argmax predictions vs ground truth).
  static data::SlotMetrics evaluate(const ScenarioModel& model,
                                    const data::Dataset& dataset,
                                    std::size_t batch_size = 16);

  const TrainConfig& config() const { return config_; }

 private:
  TrainConfig config_;
};

}  // namespace tsdx::core
