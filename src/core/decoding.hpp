// decoding.hpp — semantically-constrained decoding of slot predictions.
//
// Independent per-slot argmax can emit descriptions the SDL grammar forbids
// (e.g. "truck crossing", "turn on a straight road"). Constrained decoding
// instead returns the *valid* label combination with maximum joint
// likelihood under the per-slot softmax distributions:
//
//   argmax_{labels in ValidSet}  sum_s log p_s(labels[s])
//
// The valid set (~tens of thousands of tuples, enumerated once from
// sdl::validate) is small enough for exact search — no beam approximation
// is needed. Guaranteed-valid output is what downstream scenario databases
// require.
#pragma once

#include <array>
#include <vector>

#include "core/model.hpp"
#include "sdl/coverage.hpp"

namespace tsdx::core {

/// Per-slot class probabilities for one example.
using SlotProbabilities =
    std::array<std::vector<float>, sdl::kNumSlots>;

/// Exact maximum-likelihood valid assignment for one example.
/// Each probs[s] must have size kSlotCardinality[s]; probabilities are
/// clamped below at 1e-12 before taking logs.
sdl::SlotLabels decode_constrained(const SlotProbabilities& probs);

/// Unconstrained per-slot argmax (the baseline decoder), for comparison.
sdl::SlotLabels decode_argmax(const SlotProbabilities& probs);

/// Run a model on a batch and decode every example.
/// `constrained` selects the decoder.
std::vector<sdl::SlotLabels> decode_batch(const ScenarioModel& model,
                                          const nn::Tensor& video,
                                          bool constrained);

/// Fraction of a prediction set that is semantically valid (diagnostic).
double validity_rate(const std::vector<sdl::SlotLabels>& predictions);

}  // namespace tsdx::core
