// augment.hpp — label-aware data augmentation.
//
// The only non-trivial augmentation for BEV driving video is the horizontal
// mirror (x -> -x through the view center): it preserves physical
// plausibility but *changes labels* — left/right turns, lane changes, and
// relative positions all swap. This module applies the video flip and the
// matching label remap together so augmented examples stay correct.
//
// Note: mirrored clips are slightly out of the simulator's distribution
// (the mirrored T-junction arm points west, the mirrored ego drives in the
// left-hand lane). Labels remain semantically valid, which is exactly what
// makes the mirror a *useful* augmentation: it exposes the model to layouts
// the sampler never generates while keeping supervision exact.
#pragma once

#include "data/dataset.hpp"
#include "sdl/description.hpp"

namespace tsdx::core {

/// Mirror the left/right-sensitive slots of a description.
sdl::EgoAction mirror(sdl::EgoAction a);
sdl::ActorAction mirror(sdl::ActorAction a);
sdl::RelativePosition mirror(sdl::RelativePosition p);
sdl::ScenarioDescription mirror_description(const sdl::ScenarioDescription& d);

/// Flip a rendered clip about its vertical center line (reverses the W axis
/// of every frame/channel).
sim::VideoClip mirror_clip(const sim::VideoClip& clip);

/// Mirror a full labeled example (video + description + labels).
data::Example mirror_example(const data::Example& example);

/// Dataset with a mirrored copy appended after each original
/// (size doubles; order: e0, mirror(e0), e1, mirror(e1), ...).
data::Dataset augment_mirror(const data::Dataset& dataset);

}  // namespace tsdx::core
