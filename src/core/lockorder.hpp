// lockorder.hpp — runtime lock-order validator for the tsdx mutex hierarchy.
//
// The thread-safety annotations in core/annotations.hpp prove *which lock*
// guards *which data*; they cannot prove that two locks are always taken in
// the same order. That second invariant — the lock *hierarchy* — is what
// this validator checks at runtime: every tsdx::Mutex carries a Rank, a
// thread may only acquire a mutex whose rank is strictly greater than every
// rank it already holds, and any inversion aborts the process with the
// acquisition stacks of both locks involved (the one being taken and the
// already-held one that outranks it).
//
// The hierarchy itself is documented in DESIGN.md §12 "Locking discipline";
// the Rank enum below is its executable form. Ranks are spaced by 10 so a
// new lock can slot between existing levels without renumbering.
//
// Cost model: when disabled (the default in release builds) every hook is a
// single relaxed atomic load and an early return — cheap enough to leave
// compiled into every build, the same posture as the fault injector
// (serve/fault/inject.hpp). When enabled, each acquire appends to a
// thread-local held-lock vector (a handful of entries deep in practice) and
// captures a raw backtrace; nothing is symbolized until a violation fires.
//
// Enablement, in precedence order:
//   1. set_enabled(true/false)          — programmatic, wins over the env.
//   2. TSDX_LOCK_ORDER=1 environment    — read once, at first hook.
//   3. default: off.
// Tests use ScopedEnable + set_violation_handler to assert on violations
// without dying (see tests/lockorder_test.cpp); CI's TSan job runs the
// chaos/stress suites with TSDX_LOCK_ORDER=1 so the documented hierarchy is
// continuously re-validated under real interleavings.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

namespace tsdx::lockorder {

/// The mutex hierarchy, outermost (acquired first) to innermost. A thread
/// holding a lock of rank R may only acquire locks of rank strictly greater
/// than R; two locks of equal rank may never be held together. See
/// DESIGN.md §12 for the prose version and the reasoning per level.
enum class Rank : std::uint32_t {
  kRouter = 2,            ///< Router lifecycle + pending count + probe mailbox;
                          ///< outermost of the whole hierarchy — the router
                          ///< drains/kills whole replica servers (rank 10+)
                          ///< while holding it
  kAdmission = 4,         ///< AdmissionController token buckets + in-flight
                          ///< shares (below kRouter: admission is consulted
                          ///< on the submit path, never the other way round)
  kReplica = 6,           ///< per-ManagedReplica health state machine; above
                          ///< kAdmission, below every InferenceServer lock so
                          ///< a probe may submit into a replica while holding
                          ///< its state lock. One replica lock at a time —
                          ///< equal ranks may never nest.
  kServerLifecycle = 10,  ///< InferenceServer lifecycle (drain/shutdown)
  kQueue = 20,            ///< BoundedQueue request queue
  kServerPending = 30,    ///< InferenceServer accepted-request count
  kSupervisor = 40,       ///< InferenceServer dead-worker mailbox
  kPlan = 43,             ///< tsdx::plan compiled-plan cache; below the par
                          ///< ranks because compilation traces a forward that
                          ///< fans out through tsdx::par while holding it
  kIndex = 45,            ///< tsdx::index vector stores (flat / IVF lists);
                          ///< below the par ranks because index scans fan
                          ///< out through tsdx::par while holding it
  kPoolJob = 50,          ///< tsdx::par fan-out serialization
  kPoolConfig = 60,       ///< tsdx::par pool sizing
  kPoolState = 70,        ///< tsdx::par job publication
  kPoolDone = 80,         ///< tsdx::par per-job completion latch
  kCircuit = 90,          ///< CircuitBreaker state machine
  kStats = 100,           ///< StatsCollector exact sample store
  kThreadPool = 110,      ///< serve::ThreadPool thread list
  kFaultInjector = 120,   ///< fault::Injector armed plan
  kSlo = 122,             ///< obs::SloEngine rolling windows + dump budget;
                          ///< below kRecorder/kRegistry/kTraceRing because an
                          ///< anomaly dump snapshots the recorder ring and
                          ///< span buffer while holding it
  kRecorder = 126,        ///< obs::Recorder flight-recorder ring
  kRegistry = 130,        ///< obs::Registry metric maps
  kTraceRing = 140,       ///< obs::trace span ring buffer
  kLeaf = 1000,           ///< default: must be the innermost lock held
};

/// Everything a violation report needs, handed to the installed handler.
/// `report` is the full human-readable text including both acquisition
/// stacks; the typed fields let tests assert on the specific pair.
struct Violation {
  const char* acquiring_name = nullptr;  ///< mutex being acquired
  Rank acquiring_rank = Rank::kLeaf;
  const char* held_name = nullptr;  ///< already-held mutex that outranks it
  Rank held_rank = Rank::kLeaf;
  bool same_mutex = false;  ///< recursive acquisition of one mutex
  std::string report;       ///< formatted report with both stacks
};

/// Violation sink. The default handler logs the report and calls
/// std::abort() — an inversion is a latent deadlock and must not be ridden
/// past. Returns the previously installed handler so tests can restore it.
using Handler = void (*)(const Violation&);
Handler set_violation_handler(Handler handler);

/// Is the validator checking acquisitions right now?
bool enabled();

/// Programmatic override of TSDX_LOCK_ORDER (set_enabled wins).
void set_enabled(bool on);

/// RAII enable for tests: enables on construction, restores the previous
/// state on destruction.
class ScopedEnable {
 public:
  ScopedEnable();
  ~ScopedEnable();
  ScopedEnable(const ScopedEnable&) = delete;
  ScopedEnable& operator=(const ScopedEnable&) = delete;

 private:
  bool previous_;
};

/// Hook: this thread is about to acquire `mutex`. Called by tsdx::Mutex
/// *before* the underlying lock so an inversion is reported even when the
/// interleaving didn't happen to deadlock this run. No-op when disabled.
void on_acquire(const void* mutex, const char* name, Rank rank);

/// Hook: this thread released `mutex`. Also used by CondVar around a wait
/// (the wait releases the mutex; re-entry goes through on_acquire again).
void on_release(const void* mutex);

/// Locks this thread currently holds according to the tracker (test/debug
/// surface; always answers, even when disabled — disabled means the set
/// stays empty).
std::size_t held_count();

}  // namespace tsdx::lockorder
