#include "core/model.hpp"

#include <cmath>
#include <stdexcept>

#include "tensor/nn_ops.hpp"
#include "tensor/ops.hpp"

namespace tsdx::core {

namespace tt = tsdx::tensor;
using nn::Tensor;

SlotHeads::SlotHeads(std::int64_t feature_dim, nn::Rng& rng) {
  for (std::size_t s = 0; s < sdl::kNumSlots; ++s) {
    heads_[s] = std::make_unique<nn::Linear>(
        feature_dim, static_cast<std::int64_t>(sdl::kSlotCardinality[s]), rng);
    register_module(std::string("head_") +
                        std::string(sdl::to_string(static_cast<sdl::Slot>(s))),
                    *heads_[s]);
  }
}

std::array<Tensor, sdl::kNumSlots> SlotHeads::forward(
    const Tensor& features) const {
  std::array<Tensor, sdl::kNumSlots> out;
  for (std::size_t s = 0; s < sdl::kNumSlots; ++s) {
    out[s] = heads_[s]->forward(features);
  }
  return out;
}

ScenarioModel::ScenarioModel(std::unique_ptr<Backbone> backbone, nn::Rng& rng,
                             SlotMask active)
    : backbone_(std::move(backbone)),
      heads_(backbone_->feature_dim(), rng),
      active_(active) {
  register_module("backbone", *backbone_);
  register_module("heads", heads_);
}

std::array<Tensor, sdl::kNumSlots> ScenarioModel::forward(
    const Tensor& video) const {
  return heads_.forward(backbone_->forward(video));
}

Tensor ScenarioModel::loss(
    const Tensor& video,
    const std::array<std::vector<std::int64_t>, sdl::kNumSlots>& labels) const {
  const auto logits = forward(video);
  Tensor total = Tensor::zeros({});
  std::size_t active_count = 0;
  for (std::size_t s = 0; s < sdl::kNumSlots; ++s) {
    if (!active_[s]) continue;
    total = tt::add(total, tt::cross_entropy_logits(logits[s], labels[s]));
    ++active_count;
  }
  if (active_count == 0) {
    throw std::logic_error("ScenarioModel::loss: no active slots");
  }
  return tt::mul_scalar(total, 1.0f / static_cast<float>(active_count));
}

std::vector<sdl::SlotLabels> ScenarioModel::predict(const Tensor& video) const {
  std::vector<sdl::SlotLabels> out;
  for (const auto& p : predict_with_confidence(video)) out.push_back(p.labels);
  return out;
}

std::vector<ScenarioModel::Prediction> ScenarioModel::predict_with_confidence(
    const Tensor& video) const {
  tt::NoGradGuard no_grad;
  const auto logits = forward(video);
  const std::int64_t b = video.dim(0);

  std::vector<Prediction> out(static_cast<std::size_t>(b));
  for (std::size_t s = 0; s < sdl::kNumSlots; ++s) {
    if (!active_[s]) {
      for (auto& p : out) {
        p.labels[s] = 0;
        p.confidence[s] = 0.0f;
      }
      continue;
    }
    const Tensor probs = tt::softmax_lastdim(logits[s]);
    const auto arg = tt::argmax_lastdim(probs);
    const std::int64_t c = probs.dim(1);
    for (std::int64_t i = 0; i < b; ++i) {
      const auto cls = static_cast<std::size_t>(arg[static_cast<std::size_t>(i)]);
      out[static_cast<std::size_t>(i)].labels[s] = cls;
      out[static_cast<std::size_t>(i)].confidence[s] =
          probs.at(i * c + static_cast<std::int64_t>(cls));
    }
  }
  return out;
}

}  // namespace tsdx::core
