#include "core/calibration.hpp"

#include <cmath>

#include "tensor/ops.hpp"

namespace tsdx::core {

namespace tt = tsdx::tensor;

namespace {

/// Softmax probabilities of `logits[row]` at temperature `t`.
std::vector<float> row_probs(const nn::Tensor& logits, std::int64_t row,
                             float t) {
  const std::int64_t c = logits.dim(1);
  std::vector<float> p(static_cast<std::size_t>(c));
  float mx = -1e30f;
  for (std::int64_t i = 0; i < c; ++i) {
    p[static_cast<std::size_t>(i)] = logits.at(row * c + i) / t;
    mx = std::max(mx, p[static_cast<std::size_t>(i)]);
  }
  float sum = 0.0f;
  for (auto& v : p) {
    v = std::exp(v - mx);
    sum += v;
  }
  for (auto& v : p) v /= sum;
  return p;
}

/// Collect (per-example logits, target) for one slot across a dataset.
struct SlotLogits {
  std::vector<nn::Tensor> logits;               ///< one [B, C] tensor per batch
  std::vector<std::vector<std::int64_t>> targets;  ///< parallel targets
};

SlotLogits collect_logits(const ScenarioModel& model,
                          const data::Dataset& dataset, sdl::Slot slot,
                          std::size_t batch_size) {
  tt::NoGradGuard no_grad;
  SlotLogits out;
  for (std::size_t start = 0; start < dataset.size(); start += batch_size) {
    const std::size_t count = std::min(batch_size, dataset.size() - start);
    const data::Batch batch = dataset.make_batch(start, count);
    auto logits = model.forward(batch.video);
    out.logits.push_back(logits[static_cast<std::size_t>(slot)]);
    out.targets.push_back(batch.labels[static_cast<std::size_t>(slot)]);
  }
  return out;
}

/// Mean negative log-likelihood at temperature `t`.
double nll_at(const SlotLogits& data, float t) {
  double nll = 0.0;
  std::size_t n = 0;
  for (std::size_t b = 0; b < data.logits.size(); ++b) {
    const std::int64_t rows = data.logits[b].dim(0);
    for (std::int64_t r = 0; r < rows; ++r) {
      const auto p = row_probs(data.logits[b], r, t);
      const auto target =
          static_cast<std::size_t>(data.targets[b][static_cast<std::size_t>(r)]);
      nll -= std::log(std::max(p[target], 1e-12f));
      ++n;
    }
  }
  return n ? nll / static_cast<double>(n) : 0.0;
}

}  // namespace

double expected_calibration_error(const std::vector<float>& confidences,
                                  const std::vector<bool>& correct,
                                  std::size_t bins) {
  if (confidences.size() != correct.size() || confidences.empty() || bins == 0) {
    return 0.0;
  }
  std::vector<double> bin_conf(bins, 0.0), bin_acc(bins, 0.0);
  std::vector<std::size_t> bin_n(bins, 0);
  for (std::size_t i = 0; i < confidences.size(); ++i) {
    std::size_t b = static_cast<std::size_t>(confidences[i] *
                                             static_cast<float>(bins));
    if (b >= bins) b = bins - 1;
    bin_conf[b] += confidences[i];
    bin_acc[b] += correct[i] ? 1.0 : 0.0;
    ++bin_n[b];
  }
  double ece = 0.0;
  const double n = static_cast<double>(confidences.size());
  for (std::size_t b = 0; b < bins; ++b) {
    if (bin_n[b] == 0) continue;
    const double conf = bin_conf[b] / static_cast<double>(bin_n[b]);
    const double acc = bin_acc[b] / static_cast<double>(bin_n[b]);
    ece += (static_cast<double>(bin_n[b]) / n) * std::abs(conf - acc);
  }
  return ece;
}

TemperatureScaling TemperatureScaling::fit(const ScenarioModel& model,
                                           const data::Dataset& val,
                                           std::size_t batch_size) {
  TemperatureScaling scaling;
  for (std::size_t s = 0; s < sdl::kNumSlots; ++s) {
    const auto slot = static_cast<sdl::Slot>(s);
    const SlotLogits data = collect_logits(model, val, slot, batch_size);
    float best_t = 1.0f;
    double best_nll = nll_at(data, 1.0f);
    for (float t = 0.25f; t <= 4.01f; t *= 1.1892071f) {  // 2^(1/4) steps
      const double nll = nll_at(data, t);
      if (nll < best_nll) {
        best_nll = nll;
        best_t = t;
      }
    }
    scaling.temperature_[s] = best_t;
  }
  return scaling;
}

CalibrationReport TemperatureScaling::report(const ScenarioModel& model,
                                             const data::Dataset& dataset,
                                             sdl::Slot slot,
                                             std::size_t batch_size) const {
  const SlotLogits data = collect_logits(model, dataset, slot, batch_size);
  const float t = temperature(slot);

  std::vector<float> confidences;
  std::vector<bool> correct;
  for (std::size_t b = 0; b < data.logits.size(); ++b) {
    const std::int64_t rows = data.logits[b].dim(0);
    for (std::int64_t r = 0; r < rows; ++r) {
      const auto p = row_probs(data.logits[b], r, t);
      std::size_t arg = 0;
      for (std::size_t i = 1; i < p.size(); ++i) {
        if (p[i] > p[arg]) arg = i;
      }
      confidences.push_back(p[arg]);
      correct.push_back(static_cast<std::int64_t>(arg) ==
                        data.targets[b][static_cast<std::size_t>(r)]);
    }
  }
  CalibrationReport out;
  out.ece = expected_calibration_error(confidences, correct);
  double conf_sum = 0.0, acc_sum = 0.0;
  for (std::size_t i = 0; i < confidences.size(); ++i) {
    conf_sum += confidences[i];
    acc_sum += correct[i] ? 1.0 : 0.0;
  }
  if (!confidences.empty()) {
    out.mean_confidence = conf_sum / static_cast<double>(confidences.size());
    out.accuracy = acc_sum / static_cast<double>(confidences.size());
  }
  return out;
}

}  // namespace tsdx::core
