#include "core/config.hpp"

#include <stdexcept>

namespace tsdx::core {

std::string to_string(AttentionKind kind) {
  switch (kind) {
    case AttentionKind::kJoint:
      return "joint";
    case AttentionKind::kDividedST:
      return "divided_st";
    case AttentionKind::kFactorizedEncoder:
      return "factorized";
    case AttentionKind::kSpaceOnly:
      return "space_only";
  }
  return "?";
}

std::string to_string(PositionalKind kind) {
  switch (kind) {
    case PositionalKind::kLearned:
      return "learned";
    case PositionalKind::kSinusoidal:
      return "sinusoidal";
    case PositionalKind::kNone:
      return "none";
  }
  return "?";
}

std::string to_string(Pooling pooling) {
  switch (pooling) {
    case Pooling::kMean:
      return "mean";
    case Pooling::kAttention:
      return "attn_pool";
  }
  return "?";
}

void ModelConfig::validate() const {
  if (image_size % patch_size != 0) {
    throw std::invalid_argument("ModelConfig: image_size % patch_size != 0");
  }
  if (frames % tubelet_frames != 0) {
    throw std::invalid_argument("ModelConfig: frames % tubelet_frames != 0");
  }
  if (dim % heads != 0) {
    throw std::invalid_argument("ModelConfig: dim % heads != 0");
  }
  if (depth < 1) throw std::invalid_argument("ModelConfig: depth < 1");
}

ModelConfig ModelConfig::tiny() {
  ModelConfig c;
  c.frames = 4;
  c.image_size = 32;
  c.patch_size = 8;
  c.dim = 32;
  c.depth = 2;
  c.heads = 4;
  return c;
}

ModelConfig ModelConfig::small() {
  ModelConfig c;
  c.frames = 8;
  c.image_size = 64;
  c.patch_size = 8;
  c.dim = 48;
  c.depth = 4;
  c.heads = 4;
  return c;
}

}  // namespace tsdx::core
