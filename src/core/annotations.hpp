// annotations.hpp — Clang Thread Safety Analysis macros and the annotated
// synchronization wrappers the concurrent layers are required to use.
//
// Two enforcement mechanisms meet in this header (DESIGN.md §12):
//
//   * Static: the TSDX_* macros expand to Clang's thread-safety attributes,
//     so a clang build with -Wthread-safety -Werror (the `clang-analysis`
//     CI job) refuses to compile any access to a TSDX_GUARDED_BY field
//     without its mutex held, any call to a TSDX_REQUIRES function without
//     the named capability, and any mismatched acquire/release. Under GCC
//     (the tier-1 toolchain) every macro expands to nothing — annotations
//     are free documentation there.
//   * Dynamic: tsdx::Mutex carries a lockorder::Rank and reports every
//     acquire/release to the lock-order validator (core/lockorder.hpp), so
//     the hierarchy the annotations document is also checked at runtime
//     under the chaos/stress suites.
//
// Usage rules (enforced by tools/tsdx_lint.py rules `raw-mutex` and
// `unannotated-shared`):
//   * src/serve and src/obs must not use std::mutex / std::lock_guard /
//     std::unique_lock / std::condition_variable directly — always these
//     wrappers, so every lock is both annotated and rank-checked.
//   * every mutable field declared after a tsdx::Mutex member must carry
//     TSDX_GUARDED_BY (or be an atomic / another sync primitive).
//   * condition-variable predicates are written as explicit while-loops at
//     the wait site, not as lambda predicates: the analysis checks lambda
//     bodies as independent functions without the caller's lock set, so a
//     `cv.wait(lock, [&]{ return guarded_; })` would (correctly) be flagged
//     even though the protocol is sound. The explicit loop keeps the
//     guarded reads inside the function that visibly holds the capability.
#pragma once

#include <chrono>
#include <condition_variable>
#include <mutex>

#include "core/lockorder.hpp"

#if defined(__clang__)
#define TSDX_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define TSDX_THREAD_ANNOTATION(x)  // no-op off Clang (GCC, MSVC)
#endif

/// Type is a lockable capability (mutexes; `x` names it in diagnostics).
#define TSDX_CAPABILITY(x) TSDX_THREAD_ANNOTATION(capability(x))
/// Type is an RAII object that acquires on construction, releases on
/// destruction (LockGuard / UniqueLock).
#define TSDX_SCOPED_CAPABILITY TSDX_THREAD_ANNOTATION(scoped_lockable)
/// Field may only be touched while holding the named mutex.
#define TSDX_GUARDED_BY(x) TSDX_THREAD_ANNOTATION(guarded_by(x))
/// Pointee may only be touched while holding the named mutex.
#define TSDX_PT_GUARDED_BY(x) TSDX_THREAD_ANNOTATION(pt_guarded_by(x))
/// Function must be called with the named mutex(es) already held.
#define TSDX_REQUIRES(...) \
  TSDX_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))
/// Function acquires the named mutex(es) (or `this` when empty).
#define TSDX_ACQUIRE(...) \
  TSDX_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))
/// Function attempts acquisition; first arg is the success return value.
#define TSDX_TRY_ACQUIRE(...) \
  TSDX_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))
/// Function releases the named mutex(es) (or `this` when empty).
#define TSDX_RELEASE(...) \
  TSDX_THREAD_ANNOTATION(release_capability(__VA_ARGS__))
/// Function must NOT be called with the named mutex(es) held (deadlock
/// documentation for public entry points that take the lock themselves).
#define TSDX_EXCLUDES(...) TSDX_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))
/// Static hierarchy hints mirroring the lockorder::Rank ordering.
#define TSDX_ACQUIRED_BEFORE(...) \
  TSDX_THREAD_ANNOTATION(acquired_before(__VA_ARGS__))
#define TSDX_ACQUIRED_AFTER(...) \
  TSDX_THREAD_ANNOTATION(acquired_after(__VA_ARGS__))
/// Function returns a reference to the named capability.
#define TSDX_RETURN_CAPABILITY(x) TSDX_THREAD_ANNOTATION(lock_returned(x))
/// Escape hatch — use only with a comment explaining why the analysis
/// cannot see the protocol (there are currently no uses in src/).
#define TSDX_NO_THREAD_SAFETY_ANALYSIS \
  TSDX_THREAD_ANNOTATION(no_thread_safety_analysis)

namespace tsdx {

class CondVar;

/// Annotated, rank-checked mutex. Construction names the lock (diagnostics)
/// and places it in the lock hierarchy (lockorder::Rank); every acquire is
/// reported to the lock-order validator *before* the underlying lock, so an
/// inversion is caught even on interleavings that didn't deadlock this run.
class TSDX_CAPABILITY("mutex") Mutex {
 public:
  explicit Mutex(const char* name,
                 lockorder::Rank rank = lockorder::Rank::kLeaf)
      : name_(name), rank_(rank) {}

  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() TSDX_ACQUIRE() {
    lockorder::on_acquire(this, name_, rank_);
    mutex_.lock();
  }

  void unlock() TSDX_RELEASE() {
    mutex_.unlock();
    lockorder::on_release(this);
  }

  /// Non-blocking acquisition. A failed try is not an order violation (it
  /// cannot deadlock), so the validator only records successes.
  bool try_lock() TSDX_TRY_ACQUIRE(true) {
    if (!mutex_.try_lock()) return false;
    lockorder::on_acquire(this, name_, rank_);
    return true;
  }

  const char* name() const { return name_; }
  lockorder::Rank rank() const { return rank_; }

 private:
  friend class CondVar;

  std::mutex mutex_;
  const char* const name_;
  const lockorder::Rank rank_;
};

/// std::lock_guard equivalent over tsdx::Mutex.
class TSDX_SCOPED_CAPABILITY LockGuard {
 public:
  explicit LockGuard(Mutex& mutex) TSDX_ACQUIRE(mutex) : mutex_(mutex) {
    mutex_.lock();
  }
  ~LockGuard() TSDX_RELEASE() { mutex_.unlock(); }

  LockGuard(const LockGuard&) = delete;
  LockGuard& operator=(const LockGuard&) = delete;

 private:
  Mutex& mutex_;
};

/// Adopts a mutex the thread already holds — the RAII tail of a successful
/// try_lock() — and releases it on scope exit. The constructor's
/// TSDX_REQUIRES is the adoption contract: the analysis verifies the caller
/// really holds the capability it is handing over.
class TSDX_SCOPED_CAPABILITY AdoptLock {
 public:
  explicit AdoptLock(Mutex& mutex) TSDX_REQUIRES(mutex) : mutex_(mutex) {}
  ~AdoptLock() TSDX_RELEASE() { mutex_.unlock(); }

  AdoptLock(const AdoptLock&) = delete;
  AdoptLock& operator=(const AdoptLock&) = delete;

 private:
  Mutex& mutex_;
};

/// The lock handle CondVar waits on (std::unique_lock's role, minus the
/// modes nothing here needs: no defer/adopt/try constructors, no early
/// unlock, no re-lock — every extra mode is another state the analysis
/// would have to trust). Scope-for-scope it is exactly a LockGuard; the
/// separate type exists so only CV-capable call sites can be waited on.
class TSDX_SCOPED_CAPABILITY UniqueLock {
 public:
  explicit UniqueLock(Mutex& mutex) TSDX_ACQUIRE(mutex) : mutex_(mutex) {
    mutex_.lock();
  }
  ~UniqueLock() TSDX_RELEASE() { mutex_.unlock(); }

  UniqueLock(const UniqueLock&) = delete;
  UniqueLock& operator=(const UniqueLock&) = delete;

 private:
  friend class CondVar;

  Mutex& mutex_;
};

/// Condition variable over tsdx::Mutex. Waits release and re-acquire the
/// lock-order tracker entry around the underlying wait (the thread really
/// does drop the mutex while parked), and the re-acquisition runs the full
/// rank check. The thread-safety analysis models a wait as the capability
/// being continuously held — which is exactly the caller-visible contract:
/// guarded reads before and after the wait are equally protected.
///
/// No predicate overloads on purpose: write the `while (!condition) wait;`
/// loop at the call site (see the header comment).
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  void notify_one() { cv_.notify_one(); }
  void notify_all() { cv_.notify_all(); }

  void wait(UniqueLock& lock) {
    Mutex& mutex = lock.mutex_;
    lockorder::on_release(&mutex);
    std::unique_lock<std::mutex> native(mutex.mutex_, std::adopt_lock);
    cv_.wait(native);
    native.release();
    lockorder::on_acquire(&mutex, mutex.name_, mutex.rank_);
  }

  template <typename Clock, typename Duration>
  std::cv_status wait_until(
      UniqueLock& lock,
      const std::chrono::time_point<Clock, Duration>& deadline) {
    Mutex& mutex = lock.mutex_;
    lockorder::on_release(&mutex);
    std::unique_lock<std::mutex> native(mutex.mutex_, std::adopt_lock);
    const std::cv_status status = cv_.wait_until(native, deadline);
    native.release();
    lockorder::on_acquire(&mutex, mutex.name_, mutex.rank_);
    return status;
  }

  template <typename Rep, typename Period>
  std::cv_status wait_for(UniqueLock& lock,
                          const std::chrono::duration<Rep, Period>& timeout) {
    return wait_until(lock, std::chrono::steady_clock::now() + timeout);
  }

 private:
  std::condition_variable cv_;
};

}  // namespace tsdx
