// config.hpp — model configuration for the video-transformer extractor.
#pragma once

#include <cstdint>
#include <string>

namespace tsdx::core {

/// How self-attention is factorized over space and time — the central
/// architectural knob ablated in experiment R-T2.
enum class AttentionKind : std::uint8_t {
  kJoint = 0,         ///< one encoder over all space-time tokens (ViViT model 1)
  kDividedST,         ///< alternating spatial / temporal layers (TimeSformer-style)
  kFactorizedEncoder, ///< spatial encoder per frame, then temporal encoder (ViViT model 2)
  kSpaceOnly,         ///< spatial encoder + frame-average (no temporal attention)
};

std::string to_string(AttentionKind kind);

/// Where tokens get their space/time position information from.
enum class PositionalKind : std::uint8_t {
  kLearned = 0,  ///< learned spatial + temporal embedding tables
  kSinusoidal,   ///< fixed sin/cos codes (no parameters)
  kNone,         ///< no positional information (ablation floor)
};

std::string to_string(PositionalKind kind);

/// How the final token set is reduced to one clip feature.
enum class Pooling : std::uint8_t {
  kMean = 0,   ///< unweighted token average
  kAttention,  ///< learned single-query attention pool (softmax-weighted)
};

std::string to_string(Pooling pooling);

struct ModelConfig {
  // Input geometry (must match the RenderConfig used for the data).
  std::int64_t frames = 8;
  std::int64_t channels = 4;  ///< matches sim::kNumChannels (road/veh/vru/salient)
  std::int64_t image_size = 64;

  // Tokenization.
  std::int64_t patch_size = 8;    ///< spatial tubelet edge (pixels)
  std::int64_t tubelet_frames = 1;  ///< temporal tubelet depth (frames)

  // Transformer.
  std::int64_t dim = 48;
  std::int64_t depth = 4;
  std::int64_t heads = 4;
  std::int64_t mlp_ratio = 2;  ///< hidden = dim * mlp_ratio
  float dropout = 0.0f;
  AttentionKind attention = AttentionKind::kDividedST;
  Pooling pooling = Pooling::kMean;
  PositionalKind positional = PositionalKind::kLearned;

  // Derived quantities.
  std::int64_t tokens_per_frame() const {
    const std::int64_t side = image_size / patch_size;
    return side * side;
  }
  std::int64_t temporal_tokens() const { return frames / tubelet_frames; }
  std::int64_t total_tokens() const {
    return tokens_per_frame() * temporal_tokens();
  }
  std::int64_t tubelet_dim() const {
    return tubelet_frames * channels * patch_size * patch_size;
  }

  /// Throws std::invalid_argument when geometry does not divide evenly.
  void validate() const;

  /// Presets used throughout tests/benches.
  static ModelConfig tiny();   ///< dim 32, depth 2 — unit-test scale
  static ModelConfig small();  ///< dim 48, depth 4 — bench scale
};

}  // namespace tsdx::core
