#include "core/augment.hpp"

namespace tsdx::core {

sdl::EgoAction mirror(sdl::EgoAction a) {
  switch (a) {
    case sdl::EgoAction::kTurnLeft:
      return sdl::EgoAction::kTurnRight;
    case sdl::EgoAction::kTurnRight:
      return sdl::EgoAction::kTurnLeft;
    case sdl::EgoAction::kLaneChangeLeft:
      return sdl::EgoAction::kLaneChangeRight;
    case sdl::EgoAction::kLaneChangeRight:
      return sdl::EgoAction::kLaneChangeLeft;
    default:
      return a;
  }
}

sdl::ActorAction mirror(sdl::ActorAction a) {
  switch (a) {
    case sdl::ActorAction::kTurnLeft:
      return sdl::ActorAction::kTurnRight;
    case sdl::ActorAction::kTurnRight:
      return sdl::ActorAction::kTurnLeft;
    default:
      return a;
  }
}

sdl::RelativePosition mirror(sdl::RelativePosition p) {
  switch (p) {
    case sdl::RelativePosition::kLeft:
      return sdl::RelativePosition::kRight;
    case sdl::RelativePosition::kRight:
      return sdl::RelativePosition::kLeft;
    default:
      return p;
  }
}

sdl::ScenarioDescription mirror_description(const sdl::ScenarioDescription& d) {
  sdl::ScenarioDescription out = d;
  out.ego_action = mirror(d.ego_action);
  out.salient_actor.action = mirror(d.salient_actor.action);
  out.salient_actor.position = mirror(d.salient_actor.position);
  for (auto& actor : out.background_actors) {
    actor.action = mirror(actor.action);
    actor.position = mirror(actor.position);
  }
  return out;
}

sim::VideoClip mirror_clip(const sim::VideoClip& clip) {
  sim::VideoClip out = clip;
  const std::int64_t w = clip.width;
  for (std::int64_t t = 0; t < clip.frames; ++t) {
    for (std::int64_t c = 0; c < sim::kNumChannels; ++c) {
      for (std::int64_t y = 0; y < clip.height; ++y) {
        for (std::int64_t x = 0; x < w; ++x) {
          out.data[out.index(t, c, y, x)] = clip.at(t, c, y, w - 1 - x);
        }
      }
    }
  }
  return out;
}

data::Example mirror_example(const data::Example& example) {
  data::Example out;
  out.video = mirror_clip(example.video);
  out.description = mirror_description(example.description);
  out.labels = sdl::to_slot_labels(out.description);
  return out;
}

data::Dataset augment_mirror(const data::Dataset& dataset) {
  data::Dataset out;
  for (std::size_t i = 0; i < dataset.size(); ++i) {
    out.add(dataset[i]);
    out.add(mirror_example(dataset[i]));
  }
  return out;
}

}  // namespace tsdx::core
