#include "serve/stats.hpp"

#include <algorithm>
#include <cstdio>
#include <numeric>

#include "core/check.hpp"
#include "obs/slo.hpp"
#include "serve/queue.hpp"

namespace tsdx::serve {

namespace {

/// serve.batch_size histogram bounds. Registry buckets are fixed at first
/// registration, so they cannot depend on one server's max_batch; powers of
/// two cover every configuration and the exact per-size counts live in the
/// collector.
const std::vector<double>& batch_size_bounds() {
  static const std::vector<double> bounds{1, 2, 4, 8, 16, 32, 64, 128};
  return bounds;
}

double to_ms(std::chrono::steady_clock::duration d) {
  return std::chrono::duration<double, std::milli>(d).count();
}

}  // namespace

const char* to_string(OverflowPolicy policy) {
  switch (policy) {
    case OverflowPolicy::kBlock: return "block";
    case OverflowPolicy::kReject: return "reject";
    case OverflowPolicy::kShedOldest: return "shed-oldest";
  }
  return "?";
}

std::uint64_t ServerStats::batches() const {
  return std::accumulate(batch_size_counts.begin(), batch_size_counts.end(),
                         std::uint64_t{0});
}

double ServerStats::mean_batch_size() const {
  std::uint64_t total = 0;
  std::uint64_t weighted = 0;
  for (std::size_t s = 0; s < batch_size_counts.size(); ++s) {
    total += batch_size_counts[s];
    weighted += batch_size_counts[s] * s;
  }
  if (total == 0) return 0.0;
  return static_cast<double>(weighted) / static_cast<double>(total);
}

std::string ServerStats::table_header() {
  char buf[200];
  std::snprintf(buf, sizeof(buf),
                "%-26s %9s %9s %6s %6s %7s %8s %8s %8s %6s %6s",
                "config", "completed", "dropped", "depth", "batch", "p50ms",
                "p95ms", "p99ms", "meanms", "faults", "degr");
  return buf;
}

std::string ServerStats::table_row(const std::string& label) const {
  char buf[240];
  std::snprintf(buf, sizeof(buf),
                "%-26s %9llu %9llu %6zu %6.2f %7.2f %8.2f %8.2f %8.2f %6llu "
                "%6llu",
                label.c_str(), static_cast<unsigned long long>(completed),
                static_cast<unsigned long long>(rejected + shed + cancelled +
                                                deadline_expired),
                queue_depth_max, mean_batch_size(), latency.percentile(50.0),
                latency.percentile(95.0), latency.percentile(99.0),
                latency.mean(),
                static_cast<unsigned long long>(worker_faults),
                static_cast<unsigned long long>(degraded_completions));
  return buf;
}

std::string ServerStats::fault_summary() const {
  char buf[200];
  std::snprintf(buf, sizeof(buf),
                "worker_faults=%llu deadline_expired=%llu "
                "degraded_completions=%llu circuit=%s trips=%llu",
                static_cast<unsigned long long>(worker_faults),
                static_cast<unsigned long long>(deadline_expired),
                static_cast<unsigned long long>(degraded_completions),
                to_string(circuit_state),
                static_cast<unsigned long long>(circuit_trips));
  return buf;
}

StatsCollector::Bound StatsCollector::bind(obs::Registry& registry,
                                           const char* name) {
  obs::Counter& counter = registry.counter(name);
  return Bound{counter, counter.value()};
}

StatsCollector::StatsCollector(obs::Registry& registry,
                               std::size_t queue_capacity,
                               std::size_t max_batch)
    : submitted_(bind(registry, "serve.submitted")),
      completed_(bind(registry, "serve.completed")),
      failed_(bind(registry, "serve.failed")),
      rejected_(bind(registry, "serve.rejected")),
      shed_(bind(registry, "serve.shed")),
      cancelled_(bind(registry, "serve.cancelled")),
      worker_faults_(bind(registry, "serve.worker_faults")),
      deadline_expired_(bind(registry, "serve.deadline_expired")),
      degraded_completions_(bind(registry, "serve.degraded_completions")),
      queue_depth_gauge_(registry.gauge("serve.queue_depth")),
      queue_depth_max_gauge_(registry.gauge("serve.queue_depth_max")),
      latency_hist_(registry.histogram("serve.latency_ms")),
      queue_wait_hist_(registry.histogram("serve.queue_wait_ms")),
      batch_size_hist_(registry.histogram("serve.batch_size",
                                          batch_size_bounds())),
      queue_capacity_(queue_capacity) {
  batch_size_counts_.assign(max_batch + 1, 0);
}

void StatsCollector::on_submit(std::size_t queue_depth_after) {
  submitted_.inc();
  queue_depth_gauge_.set(static_cast<std::int64_t>(queue_depth_after));
  queue_depth_max_gauge_.update_max(
      static_cast<std::int64_t>(queue_depth_after));
  LockGuard lock(mutex_);
  queue_depth_max_ = std::max(queue_depth_max_, queue_depth_after);
}

void StatsCollector::on_reject() { rejected_.inc(); }

void StatsCollector::on_shed() { shed_.inc(); }

void StatsCollector::on_cancel(std::size_t count) { cancelled_.inc(count); }

void StatsCollector::on_dispatch(std::chrono::steady_clock::duration queue_wait,
                                 std::uint64_t trace_id) {
  queue_wait_hist_.observe(to_ms(queue_wait), trace_id);
}

void StatsCollector::on_batch(std::size_t batch_size) {
  batch_size_hist_.observe(static_cast<double>(batch_size));
  LockGuard lock(mutex_);
  TSDX_CHECK(batch_size < batch_size_counts_.size(),
             "StatsCollector::on_batch: size ", batch_size,
             " exceeds max_batch ", batch_size_counts_.size() - 1);
  ++batch_size_counts_[batch_size];
}

void StatsCollector::on_done(std::chrono::steady_clock::duration latency,
                             DoneKind kind, std::uint64_t trace_id) {
  // Relaxed counter bumps are still visible to a client that observed its
  // future's outcome: they are sequenced before the promise resolution in
  // server.cpp, and future.get() synchronizes with set_value/set_exception.
  switch (kind) {
    case DoneKind::kCompleted:
      completed_.inc();
      break;
    case DoneKind::kFailed:
      failed_.inc();
      break;
    case DoneKind::kDegraded:
      completed_.inc();
      degraded_completions_.inc();
      break;
  }
  const double ms = to_ms(latency);
  latency_hist_.observe(ms, trace_id);
  {
    LockGuard lock(mutex_);
    latency_samples_.record(ms);
  }
  // SLO accounting is process-wide by design: the burn gauges answer "is
  // this deployment eating its error budget", across however many servers
  // share the process. kFailed burns budget; so does a completion slower
  // than the objective (the engine applies the threshold).
  obs::SloEngine::global().on_event(kind != DoneKind::kFailed, ms);
}

void StatsCollector::on_worker_fault() { worker_faults_.inc(); }

void StatsCollector::on_deadline_expired() {
  deadline_expired_.inc();
  // An expired request is a bad event no matter how fast it would have been.
  obs::SloEngine::global().on_event(/*ok=*/false, /*latency_ms=*/0.0);
}

ServerStats StatsCollector::snapshot(std::size_t queue_depth_now,
                                     CircuitState circuit_state,
                                     std::uint64_t circuit_trips) const {
  ServerStats stats;
  stats.submitted = submitted_.delta();
  stats.completed = completed_.delta();
  stats.failed = failed_.delta();
  stats.rejected = rejected_.delta();
  stats.shed = shed_.delta();
  stats.cancelled = cancelled_.delta();
  stats.worker_faults = worker_faults_.delta();
  stats.deadline_expired = deadline_expired_.delta();
  stats.degraded_completions = degraded_completions_.delta();
  stats.circuit_state = circuit_state;
  stats.circuit_trips = circuit_trips;
  stats.queue_depth = queue_depth_now;
  stats.queue_capacity = queue_capacity_;
  LockGuard lock(mutex_);
  stats.queue_depth_max = queue_depth_max_;
  stats.batch_size_counts = batch_size_counts_;
  stats.latency = latency_samples_;
  return stats;
}

}  // namespace tsdx::serve
