#include "serve/stats.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <numeric>

#include "core/check.hpp"
#include "serve/queue.hpp"

namespace tsdx::serve {

const char* to_string(OverflowPolicy policy) {
  switch (policy) {
    case OverflowPolicy::kBlock: return "block";
    case OverflowPolicy::kReject: return "reject";
    case OverflowPolicy::kShedOldest: return "shed-oldest";
  }
  return "?";
}

double percentile(std::vector<double> samples, double p) {
  TSDX_CHECK(p >= 0.0 && p <= 100.0, "percentile: p must be in [0,100], got ",
             p);
  if (samples.empty()) return 0.0;
  std::sort(samples.begin(), samples.end());
  // Nearest-rank: smallest sample with at least p% of the mass at or below.
  const double rank = std::ceil(p / 100.0 * static_cast<double>(samples.size()));
  const std::size_t idx =
      rank < 1.0 ? 0 : static_cast<std::size_t>(rank) - 1;
  return samples[std::min(idx, samples.size() - 1)];
}

double LatencyHistogram::mean() const {
  if (samples_.empty()) return 0.0;
  return std::accumulate(samples_.begin(), samples_.end(), 0.0) /
         static_cast<double>(samples_.size());
}

double LatencyHistogram::max() const {
  if (samples_.empty()) return 0.0;
  return *std::max_element(samples_.begin(), samples_.end());
}

std::uint64_t ServerStats::batches() const {
  return std::accumulate(batch_size_counts.begin(), batch_size_counts.end(),
                         std::uint64_t{0});
}

double ServerStats::mean_batch_size() const {
  std::uint64_t total = 0;
  std::uint64_t weighted = 0;
  for (std::size_t s = 0; s < batch_size_counts.size(); ++s) {
    total += batch_size_counts[s];
    weighted += batch_size_counts[s] * s;
  }
  if (total == 0) return 0.0;
  return static_cast<double>(weighted) / static_cast<double>(total);
}

std::string ServerStats::table_header() {
  char buf[200];
  std::snprintf(buf, sizeof(buf),
                "%-26s %9s %9s %6s %6s %7s %8s %8s %8s %6s %6s",
                "config", "completed", "dropped", "depth", "batch", "p50ms",
                "p95ms", "p99ms", "meanms", "faults", "degr");
  return buf;
}

std::string ServerStats::table_row(const std::string& label) const {
  char buf[240];
  std::snprintf(buf, sizeof(buf),
                "%-26s %9llu %9llu %6zu %6.2f %7.2f %8.2f %8.2f %8.2f %6llu "
                "%6llu",
                label.c_str(), static_cast<unsigned long long>(completed),
                static_cast<unsigned long long>(rejected + shed + cancelled +
                                                deadline_expired),
                queue_depth_max, mean_batch_size(), latency.percentile(50.0),
                latency.percentile(95.0), latency.percentile(99.0),
                latency.mean(),
                static_cast<unsigned long long>(worker_faults),
                static_cast<unsigned long long>(degraded_completions));
  return buf;
}

std::string ServerStats::fault_summary() const {
  char buf[200];
  std::snprintf(buf, sizeof(buf),
                "worker_faults=%llu deadline_expired=%llu "
                "degraded_completions=%llu circuit=%s trips=%llu",
                static_cast<unsigned long long>(worker_faults),
                static_cast<unsigned long long>(deadline_expired),
                static_cast<unsigned long long>(degraded_completions),
                to_string(circuit_state),
                static_cast<unsigned long long>(circuit_trips));
  return buf;
}

StatsCollector::StatsCollector(std::size_t queue_capacity,
                               std::size_t max_batch) {
  stats_.queue_capacity = queue_capacity;
  stats_.batch_size_counts.assign(max_batch + 1, 0);
}

void StatsCollector::on_submit(std::size_t queue_depth_after) {
  std::lock_guard<std::mutex> lock(mutex_);
  ++stats_.submitted;
  stats_.queue_depth_max = std::max(stats_.queue_depth_max, queue_depth_after);
}

void StatsCollector::on_reject() {
  std::lock_guard<std::mutex> lock(mutex_);
  ++stats_.rejected;
}

void StatsCollector::on_shed() {
  std::lock_guard<std::mutex> lock(mutex_);
  ++stats_.shed;
}

void StatsCollector::on_cancel(std::size_t count) {
  std::lock_guard<std::mutex> lock(mutex_);
  stats_.cancelled += count;
}

void StatsCollector::on_batch(std::size_t batch_size) {
  std::lock_guard<std::mutex> lock(mutex_);
  TSDX_CHECK(batch_size < stats_.batch_size_counts.size(),
             "StatsCollector::on_batch: size ", batch_size,
             " exceeds max_batch ", stats_.batch_size_counts.size() - 1);
  ++stats_.batch_size_counts[batch_size];
}

void StatsCollector::on_done(std::chrono::steady_clock::duration latency,
                             DoneKind kind) {
  const double ms =
      std::chrono::duration<double, std::milli>(latency).count();
  std::lock_guard<std::mutex> lock(mutex_);
  switch (kind) {
    case DoneKind::kCompleted:
      ++stats_.completed;
      break;
    case DoneKind::kFailed:
      ++stats_.failed;
      break;
    case DoneKind::kDegraded:
      ++stats_.completed;
      ++stats_.degraded_completions;
      break;
  }
  stats_.latency.record(ms);
}

void StatsCollector::on_worker_fault() {
  std::lock_guard<std::mutex> lock(mutex_);
  ++stats_.worker_faults;
}

void StatsCollector::on_deadline_expired() {
  std::lock_guard<std::mutex> lock(mutex_);
  ++stats_.deadline_expired;
}

ServerStats StatsCollector::snapshot(std::size_t queue_depth_now,
                                     CircuitState circuit_state,
                                     std::uint64_t circuit_trips) const {
  std::lock_guard<std::mutex> lock(mutex_);
  ServerStats copy = stats_;
  copy.queue_depth = queue_depth_now;
  copy.circuit_state = circuit_state;
  copy.circuit_trips = circuit_trips;
  return copy;
}

}  // namespace tsdx::serve
