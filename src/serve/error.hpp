// error.hpp — typed failure modes of the serving runtime.
//
// Both errors derive from std::runtime_error so callers that only care about
// "the request did not produce a result" can catch the standard type, while
// backpressure-aware clients can distinguish overload (QueueFullError, retry
// with backoff) from teardown (ServerStoppedError, do not retry).
#pragma once

#include <stdexcept>
#include <string>

namespace tsdx::serve {

/// The bounded request queue was full and the configured overflow policy
/// chose to fail a request: thrown synchronously from submit() under
/// OverflowPolicy::kReject, and delivered through the evicted request's
/// future under OverflowPolicy::kShedOldest.
class QueueFullError : public std::runtime_error {
 public:
  explicit QueueFullError(const std::string& what_arg)
      : std::runtime_error(what_arg) {}
};

/// The server is no longer accepting or processing work: thrown from
/// submit() after drain()/shutdown(), and delivered through the futures of
/// requests that were still queued when shutdown() discarded them.
class ServerStoppedError : public std::runtime_error {
 public:
  explicit ServerStoppedError(const std::string& what_arg)
      : std::runtime_error(what_arg) {}
};

/// The router's admission controller refused the request before it reached
/// any replica queue: the tenant is over its token-bucket rate, or the fleet
/// is congested and the tenant is already using its weighted fair share of
/// in-flight slots. Thrown synchronously from Router::submit — the caller
/// owns backoff, exactly like QueueFullError under OverflowPolicy::kReject.
class AdmissionRejectedError : public std::runtime_error {
 public:
  explicit AdmissionRejectedError(const std::string& what_arg)
      : std::runtime_error(what_arg) {}
};

/// Every replica of the fleet is DOWN and no fleet-level fallback is
/// configured: there is nothing left to answer from. Delivered through the
/// future (or thrown from Router::submit when dispatch fails synchronously).
/// With a fallback configured the router degrades instead of raising this.
class NoReplicaAvailableError : public std::runtime_error {
 public:
  explicit NoReplicaAvailableError(const std::string& what_arg)
      : std::runtime_error(what_arg) {}
};

/// The request's deadline passed before a worker dispatched it: delivered
/// through the future, either at submit() time (deadline already in the
/// past) or when the micro-batcher scrubbed the expired request instead of
/// giving it a batch slot. The request was NOT processed — a client that
/// still wants the answer must resubmit with a fresh deadline.
class DeadlineExceededError : public std::runtime_error {
 public:
  explicit DeadlineExceededError(const std::string& what_arg)
      : std::runtime_error(what_arg) {}
};

}  // namespace tsdx::serve
