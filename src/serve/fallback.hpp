// fallback.hpp — degraded-mode extractors for the serving runtime.
//
// When the circuit breaker is OPEN, workers stop dispatching the (faulting
// or saturated) primary model and answer from one of these instead. The
// contract mirrors the safety framing of the TAP / TrafficVLM line of work:
// downstream AV-behaviour comparison would rather consume a cheap, bounded-
// quality scenario description than a dropped request — degraded answers
// carry an explicit warning so no client can mistake one for a primary
// extraction.
//
// Two implementations, matching the repo's baseline ladder (src/baseline):
//   MajorityFallback   — the no-learning floor: a canned per-slot majority
//                        answer, O(1) per request, never throws.
//   ExtractorFallback  — any frozen ScenarioExtractor (typically a CnnAvg
//                        backbone: ~10x cheaper than the transformer).
#pragma once

#include <array>
#include <memory>
#include <string>

#include "core/extractor.hpp"
#include "data/dataset.hpp"
#include "sdl/description.hpp"
#include "sim/render.hpp"

namespace tsdx::serve {

/// A degraded-mode answer source. Implementations must be thread-safe const
/// (multiple workers call extract() concurrently while the circuit is open).
class FallbackExtractor {
 public:
  virtual ~FallbackExtractor() = default;

  virtual core::ExtractionResult extract(const sim::VideoClip& clip) const = 0;

  /// Short name for stats/bench labels ("majority", "cnn_avg", ...).
  virtual std::string name() const = 0;
};

/// Warning string prepended to every degraded result's warnings list, so
/// clients (and tests) can tell degraded answers from primary ones.
inline constexpr const char* kDegradedWarning =
    "degraded: answered by fallback extractor, not the primary model";

/// The per-slot majority answer of a training set, served as a constant.
/// Confidence is each slot's empirical majority-class frequency — an honest
/// "this is the base rate" signal, not a model posterior.
class MajorityFallback final : public FallbackExtractor {
 public:
  MajorityFallback(const sdl::SlotLabels& labels,
                   const std::array<float, sdl::kNumSlots>& confidence);

  /// Fit on a labeled dataset via baseline::MajorityPredictor.
  static std::shared_ptr<MajorityFallback> fit(const data::Dataset& train);

  core::ExtractionResult extract(const sim::VideoClip& clip) const override;
  std::string name() const override { return "majority"; }

 private:
  core::ExtractionResult canned_;
};

/// Wraps a frozen (typically cheap, e.g. CnnAvg-backbone) ScenarioExtractor.
/// Refuses unfrozen models for the same Rng-race reason InferenceServer does.
class ExtractorFallback final : public FallbackExtractor {
 public:
  explicit ExtractorFallback(
      std::shared_ptr<const core::ScenarioExtractor> extractor);

  core::ExtractionResult extract(const sim::VideoClip& clip) const override;
  std::string name() const override;

 private:
  std::shared_ptr<const core::ScenarioExtractor> extractor_;
};

}  // namespace tsdx::serve
