#include "serve/router.hpp"

#include <algorithm>
#include <exception>
#include <thread>
#include <utility>

#include "core/check.hpp"
#include "obs/slo.hpp"
#include "serve/error.hpp"
#include "serve/fault/inject.hpp"

namespace tsdx::serve {

Router::Router(std::shared_ptr<const core::ScenarioExtractor> extractor,
               RouterConfig config)
    : extractor_(std::move(extractor)),
      config_(std::move(config)),
      // Aliasing shared_ptr: global() is a process-lifetime static (same
      // idiom as InferenceServer).
      registry_(config_.metrics != nullptr
                    ? config_.metrics
                    : std::shared_ptr<obs::Registry>(
                          std::shared_ptr<void>(), &obs::Registry::global())),
      admission_(
          std::make_unique<AdmissionController>(config_.admission, *registry_)),
      relay_queue_(std::max<std::size_t>(1, config_.relay_queue_capacity),
                   OverflowPolicy::kBlock),
      completed_counter_(registry_->counter("route.completed")),
      failed_counter_(registry_->counter("route.failed")),
      degraded_counter_(registry_->counter("route.degraded")),
      retries_counter_(registry_->counter("route.retries")),
      failovers_counter_(registry_->counter("route.failovers")) {
  TSDX_CHECK(config_.replicas >= 1, "Router: need at least one replica, got ",
             config_.replicas);
  TSDX_CHECK(config_.max_attempts >= 1,
             "Router: max_attempts must be >= 1, got ", config_.max_attempts);
  replicas_.reserve(config_.replicas);
  for (std::size_t i = 0; i < config_.replicas; ++i) {
    ReplicaConfig replica_config;
    replica_config.server = config_.server;
    replica_config.server.name = "replica" + std::to_string(i);
    replica_config.server.fault_domain = static_cast<int>(i);
    replica_config.server.metrics = registry_;
    replica_config.retry_budget_floor = config_.retry_budget_floor;
    replica_config.retry_budget_ratio = config_.retry_budget_ratio;
    replica_config.retry_budget_cap = config_.retry_budget_cap;
    replica_config.down_after_failures = config_.down_after_failures;
    replicas_.push_back(std::make_unique<ManagedReplica>(
        i, extractor_, std::move(replica_config), *registry_));
  }
  relays_.spawn(std::max<std::size_t>(1, config_.relay_threads),
                [this](std::size_t) { relay_loop(); });
  prober_.spawn(1, [this](std::size_t) { probe_loop(); });
}

Router::~Router() { shutdown(); }

std::future<core::ExtractionResult> Router::submit(
    sim::VideoClip clip, std::optional<Clock::time_point> deadline,
    const std::string& tenant) {
  TSDX_TRACE_SPAN("route.submit");
  if (!accepting_.load(std::memory_order_acquire)) {
    throw ServerStoppedError("router is not accepting requests");
  }
  const auto now = Clock::now();
  // Mint the trace before admission so even a shed request leaves a
  // flight-recorder record carrying the verdict.
  const obs::trace::Context trace = obs::trace::mint();
  auto& recorder = obs::Recorder::global();
  const std::uint64_t rec =
      recorder.begin(obs::Recorder::Kind::kRouter, trace.trace_id);
  const AdmitVerdict verdict = admission_->admit(tenant, now);
  recorder.on_admission(rec, to_string(verdict));
  if (verdict != AdmitVerdict::kAdmitted) {
    recorder.finish(rec, obs::Recorder::Outcome::kRejected, registry_.get());
    throw AdmissionRejectedError("admission rejected tenant '" + tenant +
                                 "': " + to_string(verdict));
  }

  Ticket ticket;
  ticket.tenant = tenant;
  ticket.clip = std::move(clip);
  ticket.deadline = deadline;
  ticket.sequence = next_sequence_.fetch_add(1, std::memory_order_relaxed);
  ticket.submit_time = now;
  ticket.trace = trace;
  ticket.rec = rec;
  auto future = ticket.promise.get_future();
  pending_inc();

  std::exception_ptr dispatch_error;
  if (dispatch(ticket, std::nullopt, false, &dispatch_error) !=
      DispatchOutcome::kDispatched) {
    resolve_fleet_dark(ticket, dispatch_error);
    return future;
  }
  const std::size_t target = ticket.replica;
  try {
    relay_queue_.push(std::move(ticket));
  } catch (const ServerStoppedError&) {
    // shutdown() closed the relay queue between our accepting_ check and
    // the push. The inner request is already in flight on the replica (the
    // replica's own shutdown resolves it); release the router-side
    // accounting and report teardown to the caller.
    replicas_[target]->on_expired();
    admission_->on_done(tenant);
    {
      LockGuard lock(router_mutex_);
      if (pending_ > 0) --pending_;
      pending_cv_.notify_all();
    }
    throw;
  }
  return future;
}

std::optional<std::size_t> Router::pick_replica(
    std::optional<std::size_t> exclude, const std::vector<bool>& tried) const {
  std::optional<std::size_t> best;
  int best_tier = 0;
  std::size_t best_load = 0;
  for (std::size_t i = 0; i < replicas_.size(); ++i) {
    if (tried[i]) continue;
    const ManagedReplica& replica = *replicas_[i];
    const ReplicaState state = replica.state();
    if (state == ReplicaState::kDown) continue;
    const auto server = replica.server();
    if (!server) continue;
    int tier = (state == ReplicaState::kUp &&
                server->circuit_state() != CircuitState::kOpen)
                   ? 0
                   : 1;
    if (exclude && *exclude == i) tier += 2;
    const std::size_t load = replica.load();
    // Strict < on (tier, load) keeps the lowest index on ties: the pick is
    // a pure function of observed state, which is what makes dispatch
    // deterministic enough to pin in router_test.
    if (!best || tier < best_tier ||
        (tier == best_tier && load < best_load)) {
      best = i;
      best_tier = tier;
      best_load = load;
    }
  }
  return best;
}

Router::DispatchOutcome Router::dispatch(Ticket& ticket,
                                         std::optional<std::size_t> exclude,
                                         bool is_retry,
                                         std::exception_ptr* last_error) {
  std::vector<bool> tried(replicas_.size(), false);
  bool budget_denied = false;
  for (;;) {
    const auto pick = pick_replica(exclude, tried);
    if (!pick) break;
    const std::size_t index = *pick;
    tried[index] = true;
    ManagedReplica& replica = *replicas_[index];
    if (is_retry && !replica.try_spend_retry_token()) {
      budget_denied = true;
      continue;
    }
    const auto server = replica.server();
    if (!server) continue;
    try {
      // Adopt the ticket's trace for the inner submit: the replica server
      // reuses an ambient context instead of minting, so the replica-side
      // record, spans, and exemplars all share the router's trace ID.
      obs::trace::ContextGuard trace_guard(ticket.trace);
      auto inner = server->submit(sim::VideoClip(ticket.clip), ticket.deadline);
      replica.on_dispatch();
      ticket.inner = std::move(inner);
      ticket.replica = index;
      obs::Recorder::global().set_replica(ticket.rec,
                                          static_cast<std::int32_t>(index));
      return DispatchOutcome::kDispatched;
    } catch (const QueueFullError&) {
      if (last_error) *last_error = std::current_exception();
    } catch (const ServerStoppedError&) {
      if (last_error) *last_error = std::current_exception();
    }
  }
  return budget_denied ? DispatchOutcome::kNoBudget
                       : DispatchOutcome::kNoCandidate;
}

void Router::relay_loop() {
  for (;;) {
    auto popped = relay_queue_.pop();
    if (!popped) return;  // closed and empty
    Ticket ticket = std::move(*popped);
    service(ticket);
  }
}

void Router::service(Ticket& ticket) {
  for (;;) {
    if (ticket.deadline) {
      const auto give_up = *ticket.deadline + config_.deadline_grace;
      if (ticket.inner.wait_until(give_up) != std::future_status::ready) {
        // The replica is wedged past the deadline + grace (its own batcher
        // would have expired an undispatched request by now). Abandon the
        // inner future — deadlines are never extended — and charge the
        // stall to the replica's failure streak.
        replicas_[ticket.replica]->on_outcome(false);
        // The inner server never saw this expiry (it's wedged inside the
        // batch), so the router is the one that flags the miss.
        obs::SloEngine::global().note_anomaly(obs::Anomaly::kDeadlineMiss,
                                              ticket.trace.trace_id);
        fail_ticket(ticket,
                    std::make_exception_ptr(DeadlineExceededError(
                        "deadline passed while replica" +
                        std::to_string(ticket.replica) + " stalled")),
                    obs::Recorder::Outcome::kDeadlineExpired);
        return;
      }
    } else {
      ticket.inner.wait();
    }

    std::exception_ptr error;
    try {
      core::ExtractionResult result = ticket.inner.get();
      replicas_[ticket.replica]->on_outcome(true);
      complete_ticket(ticket, std::move(result));
      return;
    } catch (const DeadlineExceededError&) {
      // Scrubbed pre-dispatch by the replica: overload, not a shard fault —
      // and the deadline cannot be extended, so there is nothing to retry.
      replicas_[ticket.replica]->on_expired();
      fail_ticket(ticket, std::current_exception(),
                  obs::Recorder::Outcome::kDeadlineExpired);
      return;
    } catch (...) {
      error = std::current_exception();
    }
    replicas_[ticket.replica]->on_outcome(false);

    if (shutting_down_.load(std::memory_order_acquire) ||
        ticket.attempt >= config_.max_attempts) {
      if (!shutting_down_.load(std::memory_order_acquire)) {
        // The request burned every attempt it was allowed — retry storm
        // territory; dump the recorder so the sequence of shards and
        // backoffs is reconstructible.
        obs::SloEngine::global().note_anomaly(obs::Anomaly::kRetryStorm,
                                              ticket.trace.trace_id);
      }
      fail_ticket(ticket, error);
      return;
    }
    const auto backoff = backoff_for(ticket);
    if (ticket.deadline &&
        Clock::now() + backoff + config_.retry_cost_floor >= *ticket.deadline) {
      // Fail fast: the remaining budget cannot cover backoff plus a useful
      // attempt. The original submit_within deadline stands — a retry never
      // buys the request more time.
      fail_ticket(ticket,
                  std::make_exception_ptr(DeadlineExceededError(
                      "remaining deadline budget cannot cover a retry after "
                      "attempt " +
                      std::to_string(ticket.attempt) + " failed")),
                  obs::Recorder::Outcome::kDeadlineExpired);
      return;
    }
    if (backoff.count() > 0) std::this_thread::sleep_for(backoff);

    const std::size_t failed_replica = ticket.replica;
    ticket.attempt += 1;
    switch (dispatch(ticket, failed_replica, true, nullptr)) {
      case DispatchOutcome::kDispatched:
        retries_counter_.inc();
        if (ticket.replica != failed_replica) failovers_counter_.inc();
        obs::Recorder::global().on_retry(
            ticket.rec,
            static_cast<std::uint64_t>(
                std::chrono::duration_cast<std::chrono::nanoseconds>(backoff)
                    .count()),
            /*failover=*/ticket.replica != failed_replica);
        break;  // await the new inner future
      case DispatchOutcome::kNoCandidate:
        resolve_fleet_dark(ticket, error);
        return;
      case DispatchOutcome::kNoBudget:
        // The budget is the storm brake: surface the original failure
        // instead of hammering replicas that stopped earning tokens. That
        // brake engaging IS the retry-storm signal.
        obs::SloEngine::global().note_anomaly(obs::Anomaly::kRetryStorm,
                                              ticket.trace.trace_id);
        fail_ticket(ticket, error);
        return;
    }
  }
}

std::chrono::microseconds Router::backoff_for(const Ticket& ticket) const {
  std::int64_t base = config_.retry_backoff.count();
  const std::int64_t cap =
      std::max<std::int64_t>(base, config_.retry_backoff_cap.count());
  for (std::size_t k = 1; k < ticket.attempt && base < cap; ++k) base *= 2;
  base = std::min(base, cap);
  if (base <= 0) return std::chrono::microseconds{0};
  const std::uint64_t h =
      fault::mix64(config_.seed ^ fault::mix64(ticket.sequence) ^
                   static_cast<std::uint64_t>(ticket.attempt));
  // Jitter into [1/2, 1] x base from the top 53 bits — deterministic for a
  // fixed RouterConfig::seed, decorrelated across (request, attempt).
  const double frac =
      0.5 + 0.5 * static_cast<double>(h >> 11) /
                static_cast<double>(std::uint64_t{1} << 53);
  return std::chrono::microseconds(
      static_cast<std::int64_t>(static_cast<double>(base) * frac));
}

void Router::resolve_fleet_dark(Ticket& ticket, std::exception_ptr cause) {
  if (config_.fallback != nullptr) {
    // The fallback's extract prepends kDegradedWarning itself (fallback.hpp
    // contract), which is also what complete_ticket keys the degraded
    // counter on.
    complete_ticket(ticket, config_.fallback->extract(ticket.clip));
    return;
  }
  fail_ticket(ticket,
              cause != nullptr
                  ? cause
                  : std::make_exception_ptr(NoReplicaAvailableError(
                        "every replica is down and no fleet fallback is "
                        "configured")));
}

void Router::complete_ticket(Ticket& ticket, core::ExtractionResult result) {
  const bool degraded =
      !result.warnings.empty() && result.warnings.front() == kDegradedWarning;
  completed_counter_.inc();
  if (degraded) degraded_counter_.inc();
  obs::trace::record_span("route.request", ticket.trace, ticket.submit_time,
                          Clock::now());
  obs::Recorder::global().finish(ticket.rec,
                                 degraded
                                     ? obs::Recorder::Outcome::kDegraded
                                     : obs::Recorder::Outcome::kCompleted,
                                 registry_.get());
  ticket.promise.set_value(std::move(result));
  finish_ticket(ticket);
}

void Router::fail_ticket(Ticket& ticket, std::exception_ptr error,
                         obs::Recorder::Outcome outcome) {
  failed_counter_.inc();
  obs::trace::record_span("route.request", ticket.trace, ticket.submit_time,
                          Clock::now());
  obs::Recorder::global().finish(ticket.rec, outcome, registry_.get());
  ticket.promise.set_exception(std::move(error));
  finish_ticket(ticket);
}

void Router::finish_ticket(Ticket& ticket) {
  admission_->on_done(ticket.tenant);
  LockGuard lock(router_mutex_);
  if (pending_ > 0) --pending_;
  if (pending_ == 0) pending_cv_.notify_all();
}

void Router::pending_inc() {
  LockGuard lock(router_mutex_);
  ++pending_;
}

void Router::wait_pending_zero() {
  UniqueLock lock(router_mutex_);
  while (pending_ != 0) {
    pending_cv_.wait(lock);
  }
}

void Router::probe_loop() {
  for (;;) {
    {
      UniqueLock lock(router_mutex_);
      const auto wake = Clock::now() + config_.probe_interval;
      while (!probe_stop_) {
        if (probe_cv_.wait_until(lock, wake) == std::cv_status::timeout) {
          break;
        }
      }
      if (probe_stop_) return;
    }
    probe_tick();
  }
}

void Router::probe_tick() {
  const auto now = Clock::now();
  for (auto& entry : replicas_) {
    ManagedReplica& replica = *entry;
    replica.update_queue_gauge();
    const auto server = replica.server();
    if (!server) continue;  // killed — only revive_replica() brings it back
    replica.observe_circuit(server->circuit_state());
    if (replica.state() != ReplicaState::kDown) continue;
    if (config_.probe_clip) {
      bool healthy = false;
      try {
        auto probe = server->submit_within(
            sim::VideoClip(*config_.probe_clip), config_.probe_timeout);
        if (probe.wait_until(Clock::now() + 2 * config_.probe_timeout) ==
            std::future_status::ready) {
          probe.get();  // throws if the probe failed
          healthy = true;
        }
      } catch (...) {
        healthy = false;
      }
      if (healthy) replica.mark_up();
    } else if (now - replica.down_since() >= config_.heal_backoff) {
      replica.mark_up();
    }
  }
}

void Router::stop_prober() {
  {
    LockGuard lock(router_mutex_);
    probe_stop_ = true;
    probe_cv_.notify_all();
  }
  prober_.join();
}

void Router::drain() {
  {
    LockGuard lock(router_mutex_);
    if (stopped_) return;
    stopped_ = true;
  }
  accepting_.store(false, std::memory_order_release);
  stop_prober();
  // Drain replicas one by one: each completes every request it accepted.
  // Replicas must drain before the pending wait — an inline (workers == 0)
  // server only processes its queue inside drain(). The flip side: a retry
  // sleeping out its backoff can wake to a drained fleet and resolve
  // fleet-dark, so callers that need every retry to play out against live
  // replicas must settle (stats().pending == 0) before calling drain().
  for (auto& replica : replicas_) replica->drain_server();
  wait_pending_zero();
  relay_queue_.close();
  relays_.join();
}

void Router::shutdown() {
  {
    LockGuard lock(router_mutex_);
    if (stopped_) return;
    stopped_ = true;
  }
  accepting_.store(false, std::memory_order_release);
  shutting_down_.store(true, std::memory_order_release);
  stop_prober();
  for (auto& replica : replicas_) replica->shutdown_server();
  // Every inner future is resolved now (shutdown fails queued requests and
  // finishes in-flight batches), and shutting_down_ disables retries.
  // Tickets still parked in the relay queue are serviced right here so no
  // router future is ever abandoned.
  auto leftovers = relay_queue_.close_and_drain();
  for (auto& ticket : leftovers) service(ticket);
  wait_pending_zero();
  relays_.join();
}

void Router::kill_replica(std::size_t index) {
  TSDX_CHECK(index < replicas_.size(), "kill_replica: index ", index,
             " out of range (", replicas_.size(), " replicas)");
  replicas_[index]->kill();
}

void Router::revive_replica(std::size_t index) {
  TSDX_CHECK(index < replicas_.size(), "revive_replica: index ", index,
             " out of range (", replicas_.size(), " replicas)");
  replicas_[index]->revive();
}

ReplicaState Router::replica_state(std::size_t index) const {
  TSDX_CHECK(index < replicas_.size(), "replica_state: index ", index,
             " out of range (", replicas_.size(), " replicas)");
  return replicas_[index]->state();
}

RouterStats Router::stats() const {
  RouterStats stats;
  stats.admitted = admission_->admitted();
  stats.shed = admission_->rejected();
  stats.completed = completed_counter_.value();
  stats.failed = failed_counter_.value();
  stats.degraded = degraded_counter_.value();
  stats.retries = retries_counter_.value();
  stats.failovers = failovers_counter_.value();
  {
    LockGuard lock(router_mutex_);
    stats.pending = pending_;
  }
  stats.replica_states.reserve(replicas_.size());
  for (const auto& replica : replicas_) {
    stats.replica_states.push_back(replica->state());
  }
  return stats;
}

}  // namespace tsdx::serve
