// router.hpp — tsdx::serve::Router: the sharded front door over a fleet of
// InferenceServer replicas.
//
// Architecture (DESIGN.md §15 "Router & admission control"):
//
//   client threads ──submit(clip, deadline, tenant)──▶ AdmissionController
//        ▲                                              (token bucket +
//        │ std::future                                   fair in-flight
//        │                                               shares)
//        │                 least-loaded dispatch ──▶ ManagedReplica[0..N)
//        │                 (tier by health, then         each: InferenceServer
//        │                  load, then index)            + health state
//        │                                               + retry budget
//        └── relay threads ◀── relay queue ◀── Ticket
//            (await inner future; classify outcome;      probe thread
//             failover-retry with jittered backoff       (queue gauges,
//             or resolve the router future)               circuit watch,
//                                                         DOWN heal probes)
//
// * submit() admits (or rejects, AdmissionRejectedError), picks the
//   least-loaded healthy replica (deterministic: lowest (tier, load, index)),
//   forwards the clip, and parks a Ticket — the router-side promise plus the
//   replica-side future — on the relay queue.
// * Relay threads await inner futures and classify: success resolves the
//   router future; a replica fault triggers a deadline-aware retry — the
//   original deadline is NEVER extended, a retry must fit backoff +
//   retry_cost_floor inside the remaining budget or the request fails fast
//   with DeadlineExceededError; each retry spends a token from the *target*
//   replica's RetryBudget so a dying fleet is probed, not hammered.
// * Every accepted request resolves exactly once: completed, failed, or
//   (fleet fully dark, fallback configured) answered degraded with
//   kDegradedWarning. chaos_test kills a replica mid-stream and counts.
// * Lock ranks kRouter(2) < kAdmission(4) < kReplica(6) sit *below* every
//   server-internal rank, so router code may call into replica servers while
//   holding router state — never the reverse (DESIGN.md §12).
#pragma once

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <future>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/annotations.hpp"
#include "core/extractor.hpp"
#include "obs/metrics.hpp"
#include "obs/recorder.hpp"
#include "obs/trace.hpp"
#include "serve/admission.hpp"
#include "serve/queue.hpp"
#include "serve/replica.hpp"
#include "serve/server.hpp"
#include "serve/thread_pool.hpp"

namespace tsdx::serve {

struct RouterConfig {
  /// Fleet size. Each replica is an independent InferenceServer built from
  /// the `server` template with name "replica<i>", fault_domain i, and the
  /// router's metrics registry stamped in.
  std::size_t replicas = 2;
  ServerConfig server;
  AdmissionConfig admission;

  /// Fleet-level degraded answer source for a fully-dark fleet (every
  /// replica DOWN): the router answers from here (with kDegradedWarning)
  /// instead of failing with NoReplicaAvailableError. Distinct from
  /// server.fallback, which each replica's own circuit breaker uses.
  std::shared_ptr<const FallbackExtractor> fallback;

  /// Relay threads awaiting inner futures. Each blocked relay is one
  /// in-flight request being shepherded; size it like a connection pool.
  std::size_t relay_threads = 2;
  std::size_t relay_queue_capacity = 256;

  /// Total dispatch attempts per request (1 = no retries).
  std::size_t max_attempts = 3;
  /// Backoff before attempt k+1: retry_backoff x 2^(k-1), capped, then
  /// jittered into [1/2, 1] x by mix64(seed, sequence, attempt) — fully
  /// deterministic for a fixed seed.
  std::chrono::microseconds retry_backoff{500};
  std::chrono::microseconds retry_backoff_cap{20000};
  /// Minimum useful remaining deadline budget after backoff: a retry that
  /// cannot fit backoff + retry_cost_floor before the deadline fails fast.
  std::chrono::microseconds retry_cost_floor{1000};
  /// How long past a request's deadline a relay keeps waiting on a wedged
  /// replica before abandoning the inner future and failing the request
  /// (the inner server normally expires it first; the grace covers a stall
  /// inside extract_batch).
  std::chrono::microseconds deadline_grace{2000};
  std::uint64_t seed = 0;

  /// Per-replica retry-budget token bucket (see RetryBudget).
  double retry_budget_floor = 3.0;
  double retry_budget_ratio = 0.1;
  double retry_budget_cap = 64.0;

  /// Consecutive failures that mark a replica DOWN.
  std::size_t down_after_failures = 3;

  /// Health-probe cadence. Each tick refreshes queue-depth gauges, mirrors
  /// circuit state into UP/DRAINING, and tries to readmit DOWN replicas.
  std::chrono::milliseconds probe_interval{20};
  /// Deadline for an active heal probe's answer.
  std::chrono::milliseconds probe_timeout{250};
  /// Passive heal: with no probe_clip, a DOWN (but not killed) replica is
  /// optimistically readmitted after this long.
  std::chrono::milliseconds heal_backoff{100};
  /// Active heal: a canned clip submitted to DOWN replicas; success (within
  /// probe_timeout) readmits. Leave unset for workers == 0 replicas — with
  /// no worker threads a probe can never complete, so passive heal applies.
  std::optional<sim::VideoClip> probe_clip;

  /// Metrics registry (route.* series plus every replica's serve.* series).
  /// Null means obs::Registry::global().
  std::shared_ptr<obs::Registry> metrics;
};

/// Counter snapshot (values since this router's construction counters were
/// registered; pass a private RouterConfig::metrics registry for exact
/// per-instance counts, as tests do).
struct RouterStats {
  std::uint64_t admitted = 0;
  std::uint64_t shed = 0;  ///< refused at admission (route.shed)
  std::uint64_t completed = 0;
  std::uint64_t failed = 0;
  std::uint64_t degraded = 0;
  std::uint64_t retries = 0;
  std::uint64_t failovers = 0;  ///< retries that changed replica
  std::size_t pending = 0;      ///< admitted, not yet resolved
  std::vector<ReplicaState> replica_states;
};

class Router {
 public:
  using Clock = std::chrono::steady_clock;

  /// Builds `config.replicas` InferenceServers over the shared frozen
  /// extractor and starts the relay pool + health-probe thread.
  Router(std::shared_ptr<const core::ScenarioExtractor> extractor,
         RouterConfig config);

  /// Calls shutdown() if the router is still running.
  ~Router();

  Router(const Router&) = delete;
  Router& operator=(const Router&) = delete;

  /// Route one clip through the fleet. Thread-safe. Throws
  /// AdmissionRejectedError synchronously when the tenant is over its rate
  /// or fair share, ServerStoppedError after drain()/shutdown(). The future
  /// resolves with the extraction (primary, or degraded with
  /// kDegradedWarning), or DeadlineExceededError, or the final attempt's
  /// failure, or NoReplicaAvailableError (fleet dark, no fallback).
  std::future<core::ExtractionResult> submit(
      sim::VideoClip clip,
      std::optional<Clock::time_point> deadline = std::nullopt,
      const std::string& tenant = "default");

  /// Convenience: deadline as a timeout from now.
  std::future<core::ExtractionResult> submit_within(
      sim::VideoClip clip, std::chrono::microseconds timeout,
      const std::string& tenant = "default") {
    return submit(std::move(clip), Clock::now() + timeout, tenant);
  }

  /// Stop intake, resolve every accepted request (draining each replica),
  /// stop relays and prober.
  void drain() TSDX_EXCLUDES(router_mutex_);

  /// Stop intake, shut every replica down (queued inner requests fail),
  /// resolve every accepted router future, stop relays and prober.
  void shutdown() TSDX_EXCLUDES(router_mutex_);

  /// Chaos/test surface: hard-kill replica i (its server shuts down; the
  /// slot goes DOWN) / rebuild it from the original extractor and config.
  void kill_replica(std::size_t index);
  void revive_replica(std::size_t index);

  ReplicaState replica_state(std::size_t index) const;
  std::size_t replica_count() const { return replicas_.size(); }

  RouterStats stats() const TSDX_EXCLUDES(router_mutex_);
  AdmissionController& admission() { return *admission_; }

  obs::Registry& metrics_registry() const { return *registry_; }
  std::string metrics_text() const { return registry_->to_prometheus(); }
  std::string metrics_json() const { return registry_->to_json(); }

  const RouterConfig& config() const { return config_; }

 private:
  struct Ticket {
    std::string tenant;
    sim::VideoClip clip;  ///< kept for retries
    std::uint64_t sequence = 0;
    std::optional<Clock::time_point> deadline;
    std::promise<core::ExtractionResult> promise;
    std::future<core::ExtractionResult> inner;
    std::size_t replica = 0;  ///< current attempt's target
    std::size_t attempt = 1;  ///< dispatch attempts made
    Clock::time_point submit_time;
    obs::trace::Context trace;
    std::uint64_t rec = 0;  ///< router-hop flight-recorder handle
  };

  enum class DispatchOutcome {
    kDispatched,
    kNoCandidate,  ///< no dispatchable replica at all (fleet dark)
    kNoBudget      ///< candidates existed but every retry budget was empty
  };

  /// Deterministic least-loaded pick: lowest (tier, load, index) among
  /// un-tried replicas; tier 0 = UP with circuit not OPEN, tier 1 =
  /// DRAINING / circuit-open, +2 when the replica equals `exclude` (the
  /// attempt that just failed) so a retry changes shard whenever it can.
  std::optional<std::size_t> pick_replica(
      std::optional<std::size_t> exclude,
      const std::vector<bool>& tried) const;

  /// Submit the ticket's clip to the best candidate, walking down the
  /// preference order past replicas whose submit throws (queue full /
  /// stopped); the last such throw is reported through `last_error` (may be
  /// null). Retries additionally spend a token from each candidate's retry
  /// budget before targeting it.
  DispatchOutcome dispatch(Ticket& ticket, std::optional<std::size_t> exclude,
                           bool is_retry, std::exception_ptr* last_error);

  void relay_loop();
  /// Await the ticket's inner future and drive it to resolution (possibly
  /// through several retries). On return the router future is resolved.
  void service(Ticket& ticket);
  /// Backoff before the ticket's next attempt (exponential + seeded jitter).
  std::chrono::microseconds backoff_for(const Ticket& ticket) const;

  void probe_loop() TSDX_EXCLUDES(router_mutex_);
  void probe_tick();
  void stop_prober() TSDX_EXCLUDES(router_mutex_);

  /// Fleet fully dark: answer from config_.fallback (degraded) or fail with
  /// `cause` (the last per-replica submit error) when one exists, else
  /// NoReplicaAvailableError. Resolves the ticket either way.
  void resolve_fleet_dark(Ticket& ticket, std::exception_ptr cause = nullptr);
  void complete_ticket(Ticket& ticket, core::ExtractionResult result);
  void fail_ticket(
      Ticket& ticket, std::exception_ptr error,
      obs::Recorder::Outcome outcome = obs::Recorder::Outcome::kFailed);
  /// Admission release + pending decrement, after the promise is resolved.
  void finish_ticket(Ticket& ticket) TSDX_EXCLUDES(router_mutex_);

  void pending_inc() TSDX_EXCLUDES(router_mutex_);
  void wait_pending_zero() TSDX_EXCLUDES(router_mutex_);

  const std::shared_ptr<const core::ScenarioExtractor> extractor_;
  const RouterConfig config_;
  const std::shared_ptr<obs::Registry> registry_;  // never null
  std::unique_ptr<AdmissionController> admission_;
  std::vector<std::unique_ptr<ManagedReplica>> replicas_;
  BoundedQueue<Ticket> relay_queue_;
  ThreadPool relays_;
  ThreadPool prober_;

  obs::Counter& completed_counter_;
  obs::Counter& failed_counter_;
  obs::Counter& degraded_counter_;
  obs::Counter& retries_counter_;
  obs::Counter& failovers_counter_;

  std::atomic<bool> accepting_{true};
  /// Set by shutdown(): disables retries so leftover tickets resolve fast.
  std::atomic<bool> shutting_down_{false};
  std::atomic<std::uint64_t> next_sequence_{0};

  /// Outermost router lock (rank kRouter): pending count, prober stop flag,
  /// teardown serialization.
  mutable Mutex router_mutex_{"route.router", lockorder::Rank::kRouter};
  CondVar pending_cv_;
  CondVar probe_cv_;
  std::size_t pending_ TSDX_GUARDED_BY(router_mutex_) = 0;
  bool probe_stop_ TSDX_GUARDED_BY(router_mutex_) = false;
  bool stopped_ TSDX_GUARDED_BY(router_mutex_) = false;
};

}  // namespace tsdx::serve
