#include "serve/circuit.hpp"

#include "core/check.hpp"
#include "obs/slo.hpp"
#include "obs/trace.hpp"

namespace tsdx::serve {

const char* to_string(CircuitState state) {
  switch (state) {
    case CircuitState::kClosed: return "closed";
    case CircuitState::kOpen: return "open";
    case CircuitState::kHalfOpen: return "half-open";
  }
  return "?";
}

CircuitBreaker::CircuitBreaker(CircuitConfig config, bool has_fallback,
                               obs::Gauge* state_gauge,
                               obs::Counter* trips_counter)
    : config_(config),
      has_fallback_(has_fallback),
      state_gauge_(state_gauge),
      trips_counter_(trips_counter) {
  TSDX_CHECK(config_.fault_threshold >= 1,
             "CircuitBreaker: fault_threshold must be >= 1, got ",
             config_.fault_threshold);
  if (state_gauge_ != nullptr) {
    state_gauge_->set(static_cast<std::int64_t>(state_));
  }
}

CircuitBreaker::Route CircuitBreaker::route(Clock::time_point now) {
  LockGuard lock(mutex_);
  switch (state_) {
    case CircuitState::kClosed:
      return Route::kPrimary;
    case CircuitState::kOpen:
      if (now - opened_at_ >= config_.cooldown) {
        set_state_locked(CircuitState::kHalfOpen);
        return Route::kProbe;
      }
      return Route::kDegraded;
    case CircuitState::kHalfOpen:
      // A probe is already in flight; keep degrading until it resolves.
      return Route::kDegraded;
  }
  return Route::kPrimary;
}

void CircuitBreaker::on_fault(Clock::time_point now) {
  LockGuard lock(mutex_);
  if (state_ == CircuitState::kHalfOpen) {
    // The probe failed: the primary is still sick. Restart the cooldown.
    trip_locked(now);
    return;
  }
  ++consecutive_faults_;
  if (state_ == CircuitState::kClosed &&
      consecutive_faults_ >= config_.fault_threshold && has_fallback_) {
    trip_locked(now);
  }
}

void CircuitBreaker::on_success() {
  LockGuard lock(mutex_);
  consecutive_faults_ = 0;
  if (state_ == CircuitState::kHalfOpen) {
    set_state_locked(CircuitState::kClosed);
    saturated_ = false;
  }
}

void CircuitBreaker::on_queue_depth(std::size_t depth, std::size_t capacity,
                                    Clock::time_point now) {
  if (config_.saturation_window.count() == 0) return;
  LockGuard lock(mutex_);
  if (depth < capacity) {
    saturated_ = false;
    return;
  }
  if (!saturated_) {
    saturated_ = true;
    saturated_since_ = now;
    return;
  }
  if (state_ == CircuitState::kClosed && has_fallback_ &&
      now - saturated_since_ >= config_.saturation_window) {
    trip_locked(now);
  }
}

CircuitState CircuitBreaker::state() const {
  LockGuard lock(mutex_);
  return state_;
}

std::uint64_t CircuitBreaker::trips() const {
  LockGuard lock(mutex_);
  return trips_;
}

void CircuitBreaker::trip_locked(Clock::time_point now) {
  set_state_locked(CircuitState::kOpen);
  opened_at_ = now;
  consecutive_faults_ = 0;
  saturated_ = false;
  ++trips_;
  if (trips_counter_ != nullptr) trips_counter_->inc();
  // A trip is fleet-level distress: snapshot the flight-recorder state. The
  // tripping thread usually runs under the faulting batch's trace (rank
  // kCircuit < kSlo, so calling out while holding mutex_ is in order).
  obs::SloEngine::global().note_anomaly(obs::Anomaly::kCircuitTrip,
                                        obs::trace::current().trace_id);
}

void CircuitBreaker::set_state_locked(CircuitState state) {
  state_ = state;
  if (state_gauge_ != nullptr) {
    state_gauge_->set(static_cast<std::int64_t>(state));
  }
}

}  // namespace tsdx::serve
