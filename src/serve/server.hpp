// server.hpp — tsdx::serve::InferenceServer: the concurrent request path of
// the extractor.
//
// Architecture (see DESIGN.md "Serving runtime"):
//
//   client threads ──submit()──▶ BoundedQueue ──▶ worker pool (ThreadPool)
//        ▲                        (capacity +        each worker: Replica
//        └── std::future ◀────── backpressure)       ├─ micro-batcher
//                                                    └─ extract_batch()
//
// * submit() converts nothing and trains nothing: it enqueues the clip and
//   hands back a std::future<ExtractionResult>. Overflow behaviour is the
//   queue's OverflowPolicy (block / reject / shed-oldest).
// * Each worker owns a Replica — a handle onto the *shared, frozen* model
//   weights. Inference is a const traversal of those weights; the server
//   refuses models left in training mode, where dropout would mutate the
//   shared Rng behind extract()'s const facade (see layers.hpp::Dropout).
// * The micro-batcher coalesces queued requests: a worker takes the first
//   request, then keeps accepting more until `max_batch` are in hand or
//   `batch_window` has elapsed — whichever comes first — and dispatches one
//   extract_batch() call per clip geometry.
// * drain() stops intake and completes every accepted request, then stops
//   the workers. shutdown() stops intake, fails still-queued requests with
//   ServerStoppedError, finishes in-flight batches, and stops the workers.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <future>
#include <memory>
#include <mutex>
#include <vector>

#include "core/extractor.hpp"
#include "serve/queue.hpp"
#include "serve/stats.hpp"
#include "serve/thread_pool.hpp"

namespace tsdx::serve {

struct ServerConfig {
  /// Worker (consumer) threads. 0 is a deterministic test/debug mode: no
  /// threads are spawned and queued requests are processed inline by
  /// drain() on the calling thread.
  std::size_t workers = 2;
  /// Largest model batch a worker will assemble.
  std::size_t max_batch = 8;
  /// How long a worker holds an incomplete batch open waiting for more
  /// requests. 0 means "never wait": batch whatever is already queued.
  std::chrono::microseconds batch_window{2000};
  /// Bound on queued (not yet dispatched) requests.
  std::size_t queue_capacity = 64;
  OverflowPolicy overflow = OverflowPolicy::kBlock;
};

class InferenceServer {
 public:
  /// Starts the worker pool. The extractor's model must be frozen
  /// (`model().set_training(false)`) — a model in training mode would run
  /// dropout, whose weight masks draw from the shared training Rng.
  InferenceServer(std::shared_ptr<const core::ScenarioExtractor> extractor,
                  ServerConfig config);

  /// Calls shutdown() if the server is still running.
  ~InferenceServer();

  InferenceServer(const InferenceServer&) = delete;
  InferenceServer& operator=(const InferenceServer&) = delete;

  /// Enqueue one clip for extraction. Thread-safe. The future resolves with
  /// the result, or with the model's exception if inference failed, or with
  /// QueueFullError if this request was later shed, or ServerStoppedError
  /// if shutdown() discarded it. Throws QueueFullError (kReject, queue
  /// full) or ServerStoppedError (after drain()/shutdown()).
  std::future<core::ExtractionResult> submit(sim::VideoClip clip);

  /// Stop intake, complete every accepted request, stop workers.
  void drain();

  /// Stop intake, fail queued requests with ServerStoppedError, finish
  /// in-flight batches, stop workers.
  void shutdown();

  /// Counter/gauge/histogram snapshot (thread-safe, callable live).
  ServerStats stats() const;

  const ServerConfig& config() const { return config_; }
  std::size_t queue_depth() const { return queue_.size(); }

 private:
  struct Request {
    sim::VideoClip clip;
    std::promise<core::ExtractionResult> promise;
    std::chrono::steady_clock::time_point submit_time;
  };

  /// Per-worker handle onto the shared frozen weights. Owning a shared_ptr
  /// (not a raw reference) pins the model for the worker's lifetime; the
  /// struct is the seam where per-replica state (scratch buffers, pinned
  /// devices) would live in a larger deployment.
  struct Replica {
    std::shared_ptr<const core::ScenarioExtractor> extractor;
    std::size_t worker_index = 0;
  };

  void worker_loop(std::size_t worker_index);
  /// Assemble one micro-batch starting from `first` (max_batch / batch
  /// window, whichever first).
  std::vector<Request> fill_batch(Request first);
  /// Dispatch a micro-batch through the replica, grouped by clip geometry,
  /// and resolve every request's promise.
  void process_batch(const Replica& replica, std::vector<Request> requests);
  void finish_request(Request& request, bool ok);
  void fail_request(Request& request, std::exception_ptr error);
  void process_inline();  // workers == 0 path, used by drain()

  const std::shared_ptr<const core::ScenarioExtractor> extractor_;
  const ServerConfig config_;
  BoundedQueue<Request> queue_;
  StatsCollector stats_;
  ThreadPool workers_;

  std::atomic<bool> accepting_{true};
  bool stopped_ = false;          // guarded by lifecycle_mutex_
  std::mutex lifecycle_mutex_;    // serializes drain()/shutdown()

  // Accepted-but-unresolved request count; drain() waits for it to hit 0.
  std::mutex pending_mutex_;
  std::condition_variable pending_cv_;
  std::size_t pending_ = 0;
};

}  // namespace tsdx::serve
