// server.hpp — tsdx::serve::InferenceServer: the concurrent request path of
// the extractor.
//
// Architecture (see DESIGN.md "Serving runtime" and "Fault tolerance
// contract"):
//
//   client threads ──submit()──▶ BoundedQueue ──▶ worker pool (ThreadPool)
//        ▲                        (capacity +        each worker: Replica
//        └── std::future ◀────── backpressure)       ├─ micro-batcher
//                                                    ├─ deadline scrub
//                                  supervisor ──┐    └─ extract_batch()
//                                  (restarts    │         │ faults
//                                   dead ◀──────┴─────────┘
//                                   workers)   CircuitBreaker ─▶ fallback
//
// * submit() converts nothing and trains nothing: it enqueues the clip and
//   hands back a std::future<ExtractionResult>. Overflow behaviour is the
//   queue's OverflowPolicy (block / reject / shed-oldest). An optional
//   per-request deadline bounds how long the request may wait: the batcher
//   scrubs already-expired requests (failing their futures with
//   DeadlineExceededError) so doomed work never occupies a batch slot.
// * Each worker owns a Replica — a handle onto the *shared, frozen* model
//   weights. Inference is a const traversal of those weights; the server
//   refuses models left in training mode, where dropout would mutate the
//   shared Rng behind extract()'s const facade (see layers.hpp::Dropout).
// * The micro-batcher coalesces queued requests: a worker takes the first
//   request, then keeps accepting more until `max_batch` are in hand or
//   `batch_window` has elapsed — whichever comes first — and dispatches one
//   extract_batch() call per clip geometry.
// * Worker supervision: an exception thrown out of extract_batch fails only
//   the in-flight batch's futures (with the captured exception), increments
//   ServerStats::worker_faults, and kills that worker thread; a supervisor
//   thread restarts it so capacity recovers. K consecutive faults — or
//   sustained queue saturation — trip the CircuitBreaker into degraded
//   mode, routing requests to the configured FallbackExtractor until a
//   cooldown + successful probe heals it (DESIGN.md §9 has the state
//   machine).
// * drain() stops intake and completes every accepted request, then stops
//   the workers. shutdown() stops intake, fails still-queued requests with
//   ServerStoppedError, finishes in-flight batches, and stops the workers.
#pragma once

#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <future>
#include <memory>
#include <optional>
#include <vector>

#include "core/annotations.hpp"
#include "core/extractor.hpp"
#include "obs/metrics.hpp"
#include "obs/recorder.hpp"
#include "plan/executor.hpp"
#include "obs/trace.hpp"
#include "serve/circuit.hpp"
#include "serve/fallback.hpp"
#include "serve/queue.hpp"
#include "serve/stats.hpp"
#include "serve/thread_pool.hpp"

namespace tsdx::serve {

/// One successfully answered request, as seen by ServerConfig::on_result.
/// `result` is a reference into the serving path and is valid only for the
/// duration of the callback — copy what you keep.
struct CompletionInfo {
  /// Admission order: the value of a per-server counter at submit(). Dense
  /// and unique across the server's lifetime, which makes it a ready-made
  /// document id for downstream consumers (tsdx::index ingestion) even
  /// though *completion* order is whatever the worker pool produced.
  std::uint64_t sequence = 0;
  const core::ExtractionResult& result;
  /// True when the answer came from the fallback extractor (circuit open).
  bool degraded = false;
};

struct ServerConfig {
  /// Worker (consumer) threads. 0 is a deterministic test/debug mode: no
  /// threads are spawned and queued requests are processed inline by
  /// drain() on the calling thread.
  std::size_t workers = 2;
  /// Largest model batch a worker will assemble.
  std::size_t max_batch = 8;
  /// How long a worker holds an incomplete batch open waiting for more
  /// requests. 0 means "never wait": batch whatever is already queued.
  std::chrono::microseconds batch_window{2000};
  /// Bound on queued (not yet dispatched) requests.
  std::size_t queue_capacity = 64;
  OverflowPolicy overflow = OverflowPolicy::kBlock;

  /// Degraded-mode answer source. When null, the circuit breaker never
  /// trips: worker faults still fail their batch and restart the worker,
  /// but there is nothing to route around the model to.
  std::shared_ptr<const FallbackExtractor> fallback;
  /// Trip/heal thresholds for the circuit breaker (see circuit.hpp).
  CircuitConfig circuit;

  /// Execute batches through compiled inference plans (tsdx::plan): one
  /// forward trace per clip geometry, fused ops, a per-worker arena instead
  /// of per-op heap tensors. Output is bit-identical to the dynamic path
  /// (plan.hpp's equivalence contract), so this flag is purely a perf
  /// switch. Geometries (or models) the compiler cannot trace fall back to
  /// the dynamic path per batch — flipping this on can never lose requests.
  bool use_compiled_plan = false;

  /// Intra-op (tsdx::par) thread budget each worker's kernels may use. 0
  /// picks hardware_concurrency / workers (min 1) so inter-op workers don't
  /// oversubscribe the cores between them. Ignored when TSDX_NUM_THREADS is
  /// set — an explicit user choice always wins (par::env_override()).
  std::size_t intra_op_threads = 0;

  /// Metrics registry this server reports into (serve.* counters, gauges
  /// and histograms). Null means the process-wide obs::Registry::global() —
  /// the right default for a deployment with one scrape endpoint. Tests
  /// that assert exact process-visible counts pass a private registry.
  std::shared_ptr<obs::Registry> metrics;

  /// Instance name for per-shard metric series. Empty (a standalone server)
  /// keeps the historical names serve.circuit_state / serve.circuit_trips;
  /// non-empty (the Router names each replica "replica<i>") appends
  /// ".<name>" so N breakers sharing one registry don't fight over a gauge.
  std::string name;

  /// Identity for replica-scoped fault injection (fault::ReplicaPlan). The
  /// Router sets it to the replica index; kNoDomain (-1, the default) makes
  /// the server immune to replica-scoped plans while still counting toward
  /// the process-wide fault script.
  int fault_domain = fault_domain_none();
  static constexpr int fault_domain_none() { return -1; }

  /// Completion sink: invoked once per *successfully* answered request
  /// (primary or degraded), on the worker thread, just before the request's
  /// future resolves. Failed requests (faults, deadlines, sheds, shutdown)
  /// are not reported — the sink sees exactly the results clients got.
  /// Called concurrently from every worker, so it must be thread-safe; keep
  /// it cheap (a queue push — see index::IndexIngestor::sink()), because it
  /// runs on the serving path. Exceptions it throws are swallowed: a broken
  /// sink must not convert a successful extraction into a failed future.
  std::function<void(const CompletionInfo&)> on_result;
};

class InferenceServer {
 public:
  using Clock = std::chrono::steady_clock;

  /// Starts the worker pool (plus a supervisor thread that restarts workers
  /// killed by faults). The extractor's model must be frozen
  /// (`model().set_training(false)`) — a model in training mode would run
  /// dropout, whose weight masks draw from the shared training Rng.
  InferenceServer(std::shared_ptr<const core::ScenarioExtractor> extractor,
                  ServerConfig config);

  /// Calls shutdown() if the server is still running.
  ~InferenceServer();

  InferenceServer(const InferenceServer&) = delete;
  InferenceServer& operator=(const InferenceServer&) = delete;

  /// Enqueue one clip for extraction. Thread-safe. The future resolves with
  /// the result (primary or, in degraded mode, fallback), or with the
  /// model's exception if inference failed, or with DeadlineExceededError
  /// if `deadline` passed before dispatch, or QueueFullError if this
  /// request was later shed, or ServerStoppedError if shutdown() discarded
  /// it. Throws QueueFullError (kReject, queue full) or ServerStoppedError
  /// (after drain()/shutdown()).
  std::future<core::ExtractionResult> submit(
      sim::VideoClip clip,
      std::optional<Clock::time_point> deadline = std::nullopt);

  /// Convenience: deadline as a timeout from now.
  std::future<core::ExtractionResult> submit_within(
      sim::VideoClip clip, std::chrono::microseconds timeout) {
    return submit(std::move(clip), Clock::now() + timeout);
  }

  /// Stop intake, complete every accepted request, stop workers.
  void drain() TSDX_EXCLUDES(lifecycle_mutex_);

  /// Stop intake, fail queued requests with ServerStoppedError, finish
  /// in-flight batches, stop workers.
  void shutdown() TSDX_EXCLUDES(lifecycle_mutex_);

  /// Counter/gauge/histogram snapshot (thread-safe, callable live).
  ServerStats stats() const;

  /// The registry this server reports into (ServerConfig::metrics, else
  /// the process-wide obs::Registry::global()).
  obs::Registry& metrics_registry() const { return *registry_; }
  /// Prometheus text exposition of that registry — the response body a
  /// GET /metrics endpoint would serve.
  std::string metrics_text() const { return registry_->to_prometheus(); }
  /// JSON snapshot of the same registry (tools/trace_check.py schema).
  std::string metrics_json() const { return registry_->to_json(); }

  /// Live circuit-breaker state (kClosed when healthy).
  CircuitState circuit_state() const { return circuit_.state(); }

  const ServerConfig& config() const { return config_; }
  std::size_t queue_depth() const { return queue_.size(); }

 private:
  struct Request {
    sim::VideoClip clip;
    /// Admission counter value (see CompletionInfo::sequence).
    std::uint64_t sequence = 0;
    std::promise<core::ExtractionResult> promise;
    std::chrono::steady_clock::time_point submit_time;
    std::optional<Clock::time_point> deadline;
    /// Trace context carried to the worker so the batch's spans
    /// (serve.batch -> extract.batch -> model.*) join the submitting
    /// request's trace. Minted at submit() — unless the submitting thread
    /// already runs under a trace (the Router's dispatch), which the server
    /// adopts so the routed hop and the replica hop share one trace ID.
    obs::trace::Context trace;
    /// Flight-recorder handle (obs::Recorder), opened at submit().
    std::uint64_t rec = 0;
  };

  /// Internal signal: a batch threw out of extract_batch. The worker's loop
  /// catches it, reports to the supervisor, and lets the thread die;
  /// process_inline() catches it and keeps consuming.
  struct WorkerFault {};

  /// Per-worker handle onto the shared frozen weights. Owning a shared_ptr
  /// (not a raw reference) pins the model for the worker's lifetime; the
  /// struct is the seam where per-replica state (scratch buffers, pinned
  /// devices) would live in a larger deployment.
  struct Replica {
    std::shared_ptr<const core::ScenarioExtractor> extractor;
    std::size_t worker_index = 0;
    /// Compiled execution (ServerConfig::use_compiled_plan). Worker-owned —
    /// it wraps this worker's arena — while the plans themselves live in the
    /// server-wide PlanCache so each geometry compiles once.
    std::shared_ptr<plan::PlanExecutor> plan_executor;
  };

  /// Build the per-worker replica (attaching a PlanExecutor when compiled
  /// execution is on).
  Replica make_replica(std::size_t worker_index) const;

  void worker_loop(std::size_t worker_index);
  /// Restart-on-fault loop: waits for dead-worker notices and respawns.
  void supervisor_loop() TSDX_EXCLUDES(supervisor_mutex_);
  void report_worker_death(std::size_t worker_index)
      TSDX_EXCLUDES(supervisor_mutex_);
  void stop_supervisor() TSDX_EXCLUDES(supervisor_mutex_);
  /// Assemble one micro-batch starting from `first` (max_batch / batch
  /// window, whichever first), scrubbing expired requests as it goes. May
  /// return an empty batch if everything it saw had expired.
  std::vector<Request> fill_batch(Request first);
  /// Dispatch a micro-batch through the replica (or the fallback when the
  /// circuit is open), grouped by clip geometry, and resolve every
  /// request's promise. Throws WorkerFault after failing the batch's
  /// futures if the primary model threw.
  void process_batch(const Replica& replica, std::vector<Request> requests);
  void process_degraded(std::vector<Request>& requests);
  /// If the request's deadline has passed, fail it with
  /// DeadlineExceededError and return true.
  bool expire_if_due(Request& request, Clock::time_point now);
  /// Deliver a successful result to ServerConfig::on_result (if set),
  /// swallowing any exception the sink throws.
  void notify_result(const Request& request,
                     const core::ExtractionResult& result, bool degraded);
  void finish_request(Request& request, DoneKind kind)
      TSDX_EXCLUDES(pending_mutex_);
  /// `outcome` closes the request's flight record (why the future failed:
  /// shed, cancelled, deadline-expired, ...).
  void fail_request(Request& request, std::exception_ptr error,
                    obs::Recorder::Outcome outcome)
      TSDX_EXCLUDES(pending_mutex_);
  void process_inline();  // workers == 0 path, used by drain()

  const std::shared_ptr<const core::ScenarioExtractor> extractor_;
  const ServerConfig config_;
  /// Non-null iff config_.use_compiled_plan: geometry -> compiled plan,
  /// shared by every worker (and by restarted workers, which keep the
  /// already-compiled plans).
  const std::shared_ptr<plan::PlanCache> plan_cache_;
  const std::shared_ptr<obs::Registry> registry_;  // never null
  BoundedQueue<Request> queue_;
  StatsCollector stats_;
  CircuitBreaker circuit_;
  ThreadPool workers_;
  ThreadPool supervisor_;

  std::atomic<bool> accepting_{true};
  /// Mints Request::sequence at submit() (admission order).
  std::atomic<std::uint64_t> next_sequence_{0};

  /// Serializes drain()/shutdown(). Rank kServerLifecycle: the outermost
  /// lock of the server — teardown holds it while walking the pending /
  /// queue / supervisor locks below it (DESIGN.md §12).
  Mutex lifecycle_mutex_{"serve.lifecycle",
                         lockorder::Rank::kServerLifecycle};
  bool stopped_ TSDX_GUARDED_BY(lifecycle_mutex_) = false;

  // Dead-worker mailbox: workers push their index on a fault, the
  // supervisor pops and respawns (unless stopping).
  Mutex supervisor_mutex_{"serve.supervisor", lockorder::Rank::kSupervisor};
  CondVar supervisor_cv_;
  std::vector<std::size_t> dead_workers_ TSDX_GUARDED_BY(supervisor_mutex_);
  bool supervisor_stop_ TSDX_GUARDED_BY(supervisor_mutex_) = false;

  // Accepted-but-unresolved request count; drain() waits for it to hit 0.
  Mutex pending_mutex_{"serve.pending", lockorder::Rank::kServerPending};
  CondVar pending_cv_;
  std::size_t pending_ TSDX_GUARDED_BY(pending_mutex_) = 0;
};

}  // namespace tsdx::serve
