// stats.hpp — observability surface of the serving runtime.
//
// Since the tsdx::obs registry landed, this header is a thin serving-side
// view over it (DESIGN.md §11):
//
//   * percentile() / LatencyHistogram — aliases of the obs originals, shared
//     with the bench harness (bench_common.hpp) so every latency column in
//     the repo is computed identically.
//   * ServerStats — immutable snapshot of one server's counters, queue
//     gauge, batch-size distribution and end-to-end latency distribution,
//     plus a bench-table printer. Unchanged shape: everything above
//     src/serve keeps consuming it as before.
//   * StatsCollector — the live accumulator behind InferenceServer::stats().
//     Counters, gauges and bucketed latency/queue-wait/batch-size
//     distributions now live in an obs::Registry (lock-cheap relaxed
//     atomics, exported via to_json / to_prometheus); the collector captures
//     each counter's value at construction so ServerStats stays "cumulative
//     since construction" even when several servers share the process-wide
//     Registry::global(). Exact latency samples and the exact per-size batch
//     histogram stay mutex-guarded here — fixed registry buckets cannot
//     carry them.
//
// Consistency note: counter bumps are relaxed atomics and the exact sample
// store is mutex-guarded, so a snapshot taken *while workers are mid-flight*
// may see a counter increment whose latency sample hasn't landed yet (or
// vice versa). Quiescent snapshots — after drain()/shutdown(), which is when
// the tests and bench tables read them — are exact.
#pragma once

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "core/annotations.hpp"
#include "obs/metrics.hpp"
#include "serve/circuit.hpp"

namespace tsdx::serve {

/// Shared implementations (see obs/metrics.hpp for the edge-case contract).
using obs::percentile;
using LatencyHistogram = obs::LatencyHistogram;

/// Point-in-time snapshot of a server's observable state. All counters are
/// cumulative since construction.
struct ServerStats {
  // Request counters (submitted == completed + failed + deadline_expired +
  // shed + cancelled + still-pending at snapshot time; degraded_completions
  // is a subset of completed).
  std::uint64_t submitted = 0;   ///< accepted by submit()
  std::uint64_t completed = 0;   ///< result delivered through the future
  std::uint64_t failed = 0;      ///< model error delivered through the future
  std::uint64_t rejected = 0;    ///< submit() threw QueueFullError (kReject)
  std::uint64_t shed = 0;        ///< evicted by kShedOldest
  std::uint64_t cancelled = 0;   ///< discarded by shutdown()

  // Fault-tolerance counters (see DESIGN.md §9).
  std::uint64_t worker_faults = 0;        ///< batches thrown out of a worker
  std::uint64_t deadline_expired = 0;     ///< DeadlineExceededError futures
  std::uint64_t degraded_completions = 0; ///< answered by the fallback
  std::uint64_t circuit_trips = 0;        ///< transitions into OPEN
  CircuitState circuit_state = CircuitState::kClosed;  ///< at snapshot time

  // Queue-depth gauge.
  std::size_t queue_depth = 0;      ///< at snapshot time
  std::size_t queue_depth_max = 0;  ///< high-water mark
  std::size_t queue_capacity = 0;

  // Micro-batching behaviour: batch_size_counts[s] = number of dispatched
  // model batches of size s (index 0 unused).
  std::vector<std::uint64_t> batch_size_counts;
  std::uint64_t batches() const;
  double mean_batch_size() const;

  // End-to-end request latency (submit() -> future ready), milliseconds.
  LatencyHistogram latency;

  /// One bench-table row: counters, mean batch, p50/p95/p99. `label` names
  /// the configuration (e.g. "workers=4 window=2ms").
  std::string table_row(const std::string& label) const;
  /// Header matching table_row's columns.
  static std::string table_header();

  /// One-line fault-tolerance summary: worker faults, expired deadlines,
  /// degraded completions, circuit state/trips. Printed by bench_s1_serving
  /// and bench_r1_degradation alongside the throughput tables.
  std::string fault_summary() const;
};

/// How a request's future was resolved by a worker.
enum class DoneKind {
  kCompleted,  ///< primary model result
  kFailed,     ///< model/injected exception delivered through the future
  kDegraded,   ///< fallback extractor result (counts as completed too)
};

/// Thread-safe accumulator behind InferenceServer::stats(), reporting into
/// `registry` under the serve.* namespace (counters serve.submitted …
/// serve.degraded_completions, gauges serve.queue_depth[_max], histograms
/// serve.latency_ms / serve.queue_wait_ms / serve.batch_size).
class StatsCollector {
 public:
  StatsCollector(obs::Registry& registry, std::size_t queue_capacity,
                 std::size_t max_batch);

  void on_submit(std::size_t queue_depth_after) TSDX_EXCLUDES(mutex_);
  void on_reject();
  void on_shed();
  void on_cancel(std::size_t count);
  /// A request left the queue for a batch slot; `queue_wait` is
  /// submit-to-dispatch. A nonzero `trace_id` becomes the histogram bucket's
  /// exemplar (obs::Histogram::observe).
  void on_dispatch(std::chrono::steady_clock::duration queue_wait,
                   std::uint64_t trace_id = 0);
  void on_batch(std::size_t batch_size) TSDX_EXCLUDES(mutex_);
  /// Terminal request accounting. Besides the serve.* counters and latency
  /// histograms (exemplared with `trace_id` when nonzero), feeds the
  /// process-wide obs::SloEngine one good/bad event — kFailed and
  /// objective-overrunning latencies burn error budget.
  void on_done(std::chrono::steady_clock::duration latency, DoneKind kind,
               std::uint64_t trace_id = 0) TSDX_EXCLUDES(mutex_);
  void on_worker_fault();
  /// Counts the expiry and feeds the SLO engine a bad event (an expired
  /// request never got an answer, whatever its latency would have been).
  void on_deadline_expired();

  ServerStats snapshot(std::size_t queue_depth_now,
                       CircuitState circuit_state,
                       std::uint64_t circuit_trips) const
      TSDX_EXCLUDES(mutex_);

 private:
  /// A registry counter plus its value when this collector was built:
  /// delta() is the "since construction" reading ServerStats reports, while
  /// the registry itself keeps the process-cumulative value for scrapes.
  struct Bound {
    obs::Counter& counter;
    std::uint64_t base;
    void inc(std::uint64_t delta = 1) { counter.inc(delta); }
    std::uint64_t delta() const { return counter.value() - base; }
  };
  static Bound bind(obs::Registry& registry, const char* name);

  Bound submitted_;
  Bound completed_;
  Bound failed_;
  Bound rejected_;
  Bound shed_;
  Bound cancelled_;
  Bound worker_faults_;
  Bound deadline_expired_;
  Bound degraded_completions_;
  obs::Gauge& queue_depth_gauge_;
  obs::Gauge& queue_depth_max_gauge_;  ///< process high-water (update_max)
  obs::Histogram& latency_hist_;
  obs::Histogram& queue_wait_hist_;
  obs::Histogram& batch_size_hist_;

  // Exact per-server state the registry's fixed buckets can't carry.
  mutable Mutex mutex_{"serve.stats", lockorder::Rank::kStats};
  LatencyHistogram latency_samples_ TSDX_GUARDED_BY(mutex_);
  std::vector<std::uint64_t> batch_size_counts_ TSDX_GUARDED_BY(mutex_);
  std::size_t queue_depth_max_ TSDX_GUARDED_BY(mutex_) = 0;
  const std::size_t queue_capacity_;  // set once at construction
};

}  // namespace tsdx::serve
