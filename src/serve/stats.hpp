// stats.hpp — observability surface of the serving runtime.
//
// Three layers:
//   * percentile()        — exact percentile over a sample vector (shared
//                           with the bench harness, see bench_common.hpp).
//   * LatencyHistogram    — sample store with p50/p95/p99/mean accessors.
//   * ServerStats         — immutable snapshot of one server's counters,
//                           queue gauge, batch-size distribution and
//                           end-to-end latency distribution, plus a
//                           bench-table printer.
//
// The live collector (StatsCollector) is mutex-guarded and updated once per
// submit and once per processed batch, so its cost is invisible next to a
// model forward pass.
#pragma once

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "serve/circuit.hpp"

namespace tsdx::serve {

/// Exact percentile (nearest-rank on a copy; `p` in [0, 100]). Returns 0 for
/// an empty sample set so printers need no special-casing.
double percentile(std::vector<double> samples, double p);

/// Accumulates latency samples (milliseconds) and answers distribution
/// queries. Not thread-safe on its own — owners lock around it.
class LatencyHistogram {
 public:
  void record(double ms) { samples_.push_back(ms); }

  std::size_t count() const { return samples_.size(); }
  double mean() const;
  double max() const;
  /// p in [0, 100], e.g. p50/p95/p99 tail latency.
  double percentile(double p) const { return serve::percentile(samples_, p); }

  const std::vector<double>& samples() const { return samples_; }

 private:
  std::vector<double> samples_;
};

/// Point-in-time snapshot of a server's observable state. All counters are
/// cumulative since construction.
struct ServerStats {
  // Request counters (submitted == completed + failed + deadline_expired +
  // shed + cancelled + still-pending at snapshot time; degraded_completions
  // is a subset of completed).
  std::uint64_t submitted = 0;   ///< accepted by submit()
  std::uint64_t completed = 0;   ///< result delivered through the future
  std::uint64_t failed = 0;      ///< model error delivered through the future
  std::uint64_t rejected = 0;    ///< submit() threw QueueFullError (kReject)
  std::uint64_t shed = 0;        ///< evicted by kShedOldest
  std::uint64_t cancelled = 0;   ///< discarded by shutdown()

  // Fault-tolerance counters (see DESIGN.md §9).
  std::uint64_t worker_faults = 0;        ///< batches thrown out of a worker
  std::uint64_t deadline_expired = 0;     ///< DeadlineExceededError futures
  std::uint64_t degraded_completions = 0; ///< answered by the fallback
  std::uint64_t circuit_trips = 0;        ///< transitions into OPEN
  CircuitState circuit_state = CircuitState::kClosed;  ///< at snapshot time

  // Queue-depth gauge.
  std::size_t queue_depth = 0;      ///< at snapshot time
  std::size_t queue_depth_max = 0;  ///< high-water mark
  std::size_t queue_capacity = 0;

  // Micro-batching behaviour: batch_size_counts[s] = number of dispatched
  // model batches of size s (index 0 unused).
  std::vector<std::uint64_t> batch_size_counts;
  std::uint64_t batches() const;
  double mean_batch_size() const;

  // End-to-end request latency (submit() -> future ready), milliseconds.
  LatencyHistogram latency;

  /// One bench-table row: counters, mean batch, p50/p95/p99. `label` names
  /// the configuration (e.g. "workers=4 window=2ms").
  std::string table_row(const std::string& label) const;
  /// Header matching table_row's columns.
  static std::string table_header();

  /// One-line fault-tolerance summary: worker faults, expired deadlines,
  /// degraded completions, circuit state/trips. Printed by bench_s1_serving
  /// and bench_r1_degradation alongside the throughput tables.
  std::string fault_summary() const;
};

/// How a request's future was resolved by a worker.
enum class DoneKind {
  kCompleted,  ///< primary model result
  kFailed,     ///< model/injected exception delivered through the future
  kDegraded,   ///< fallback extractor result (counts as completed too)
};

/// Thread-safe accumulator behind InferenceServer::stats().
class StatsCollector {
 public:
  explicit StatsCollector(std::size_t queue_capacity, std::size_t max_batch);

  void on_submit(std::size_t queue_depth_after);
  void on_reject();
  void on_shed();
  void on_cancel(std::size_t count);
  void on_batch(std::size_t batch_size);
  void on_done(std::chrono::steady_clock::duration latency, DoneKind kind);
  void on_worker_fault();
  void on_deadline_expired();

  ServerStats snapshot(std::size_t queue_depth_now,
                       CircuitState circuit_state,
                       std::uint64_t circuit_trips) const;

 private:
  mutable std::mutex mutex_;
  ServerStats stats_;
};

}  // namespace tsdx::serve
