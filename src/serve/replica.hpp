// replica.hpp — one managed shard of the router's fleet.
//
// A ManagedReplica owns an InferenceServer plus the router-side facts about
// it that no single request can see: a health state machine, the in-flight
// dispatch count that feeds least-loaded routing, the consecutive-failure
// streak that demotes it, and the retry budget that stops failovers from
// turning into retry storms (DESIGN.md §15).
//
// State machine:
//
//            consecutive failures >= down_after_failures,
//            or kill() (server shut down)
//     UP ───────────────────────────────────────────────▶ DOWN
//      │ ▲                                                 │
//      │ │ circuit closes                probe succeeds,   │
//      ▼ │ (observe_circuit)             passive heal      │
//   DRAINING ◀── circuit opens           backoff elapses,  │
//                (observe_circuit)       or revive()       │
//      ▲                                                   │
//      └────────────── UP ◀────────────────────────────────┘
//
//   UP        healthy: preferred dispatch target.
//   DRAINING  alive but degraded (its circuit breaker is OPEN, so it answers
//             from its per-shard fallback): steered away from while any UP
//             replica exists, still eligible when the rest of the fleet is
//             worse off — a degraded answer beats no answer.
//   DOWN      not dispatched at all; only a probe (or revive()) readmits it.
//
// Thread-safety: one tsdx::Mutex (rank kReplica) guards everything mutable.
// Replica locks all share one rank, so they may never nest — the router
// touches replicas strictly one at a time.
#pragma once

#include <chrono>
#include <cstddef>
#include <memory>
#include <string>

#include "core/annotations.hpp"
#include "obs/metrics.hpp"
#include "serve/server.hpp"

namespace tsdx::serve {

enum class ReplicaState { kUp, kDraining, kDown };

const char* to_string(ReplicaState state);

/// Deterministic token bucket limiting retries *onto* one replica. Each
/// primary success earns `ratio` tokens (capped), each retry spends one; the
/// floor seeds the bucket so a cold fleet can absorb a burst of failovers.
/// Classic retry-budget math: sustained retry throughput can never exceed
/// ratio x success throughput + the one-time floor, so a hard-down replica
/// is probed, not hammered. Not internally synchronized — owned under the
/// replica's mutex.
struct RetryBudget {
  double tokens = 0.0;
  double ratio = 0.1;
  double cap = 64.0;

  bool try_spend() {
    if (tokens < 1.0) return false;
    tokens -= 1.0;
    return true;
  }
  void earn() { tokens = tokens + ratio < cap ? tokens + ratio : cap; }
};

/// Router-side knobs for one replica (the ServerConfig inside is fully
/// resolved: the Router stamps name/fault_domain/metrics per index).
struct ReplicaConfig {
  ServerConfig server;
  /// Initial retry-budget tokens (the floor in the budget math above).
  double retry_budget_floor = 3.0;
  /// Tokens earned per primary success.
  double retry_budget_ratio = 0.1;
  /// Bucket depth cap.
  double retry_budget_cap = 64.0;
  /// Consecutive router-observed failures that demote UP/DRAINING -> DOWN.
  std::size_t down_after_failures = 3;
};

/// One shard: an InferenceServer plus its health/load/retry-budget state.
class ManagedReplica {
 public:
  using Clock = std::chrono::steady_clock;

  /// Builds the underlying server immediately (state starts UP). Exports
  /// route.replica_state.<i> / route.replica_queue_depth.<i> gauges and
  /// route.replica_dispatched.<i> / route.replica_failures.<i> counters
  /// into `registry`.
  ManagedReplica(std::size_t index,
                 std::shared_ptr<const core::ScenarioExtractor> extractor,
                 ReplicaConfig config, obs::Registry& registry);

  ManagedReplica(const ManagedReplica&) = delete;
  ManagedReplica& operator=(const ManagedReplica&) = delete;

  std::size_t index() const { return index_; }

  ReplicaState state() const TSDX_EXCLUDES(mutex_);

  /// The live server, or null after kill(). Callers copy the shared_ptr and
  /// submit outside the replica lock; a server swapped out mid-flight fails
  /// the caller's submit with ServerStoppedError, which the router treats
  /// as one failed attempt.
  std::shared_ptr<InferenceServer> server() const TSDX_EXCLUDES(mutex_);

  /// Load score for least-loaded dispatch: router-tracked in-flight
  /// dispatches + the server's queued depth. DOWN/killed replicas answer
  /// max(). Ties are broken by index, in the router.
  std::size_t load() const TSDX_EXCLUDES(mutex_);

  std::size_t in_flight() const TSDX_EXCLUDES(mutex_);

  /// One dispatch left for this replica (submit accepted). Pairs with
  /// exactly one on_outcome().
  void on_dispatch() TSDX_EXCLUDES(mutex_);

  /// The dispatch resolved. Success resets the failure streak and earns
  /// retry budget; failure extends the streak and demotes the replica to
  /// DOWN at down_after_failures.
  void on_outcome(bool success) TSDX_EXCLUDES(mutex_);

  /// The dispatch was abandoned without a verdict on replica health (its
  /// deadline expired pre-dispatch — overload, not a shard fault): releases
  /// the in-flight slot without touching the failure streak or the budget.
  void on_expired() TSDX_EXCLUDES(mutex_);

  /// Spend one retry-budget token if available (a retry is about to target
  /// this replica).
  bool try_spend_retry_token() TSDX_EXCLUDES(mutex_);
  double retry_tokens() const TSDX_EXCLUDES(mutex_);

  /// Probe-thread input: the replica's circuit-breaker state. OPEN demotes
  /// UP -> DRAINING (steer away before it has to degrade more traffic);
  /// closing it promotes DRAINING -> UP. Never touches DOWN.
  void observe_circuit(CircuitState circuit) TSDX_EXCLUDES(mutex_);

  /// Probe-thread verdicts. mark_up readmits a DOWN replica (probe
  /// succeeded / heal backoff elapsed) and clears the failure streak.
  void mark_up() TSDX_EXCLUDES(mutex_);
  void mark_down() TSDX_EXCLUDES(mutex_);
  /// When the replica entered DOWN (valid while state() == kDown).
  Clock::time_point down_since() const TSDX_EXCLUDES(mutex_);

  /// Refresh the route.replica_queue_depth.<i> gauge from the live server.
  void update_queue_gauge() TSDX_EXCLUDES(mutex_);

  /// Hard-stop this shard: the server is shut down (queued requests fail
  /// with ServerStoppedError) and the slot goes DOWN with no server.
  void kill() TSDX_EXCLUDES(mutex_);

  /// Rebuild the server from the original extractor/config and go UP.
  void revive() TSDX_EXCLUDES(mutex_);

  /// Graceful teardown used by Router::drain()/shutdown(). Null-safe.
  void drain_server() TSDX_EXCLUDES(mutex_);
  void shutdown_server() TSDX_EXCLUDES(mutex_);

 private:
  void set_state_locked(ReplicaState next) TSDX_REQUIRES(mutex_);

  const std::size_t index_;
  const ReplicaConfig config_;
  const std::shared_ptr<const core::ScenarioExtractor> extractor_;
  obs::Gauge& state_gauge_;
  obs::Gauge& queue_gauge_;
  obs::Counter& dispatched_counter_;
  obs::Counter& failures_counter_;

  mutable Mutex mutex_{"route.replica", lockorder::Rank::kReplica};
  std::shared_ptr<InferenceServer> server_ TSDX_GUARDED_BY(mutex_);
  ReplicaState state_ TSDX_GUARDED_BY(mutex_) = ReplicaState::kUp;
  std::size_t in_flight_ TSDX_GUARDED_BY(mutex_) = 0;
  std::size_t consecutive_failures_ TSDX_GUARDED_BY(mutex_) = 0;
  RetryBudget retry_budget_ TSDX_GUARDED_BY(mutex_);
  Clock::time_point down_since_ TSDX_GUARDED_BY(mutex_){};
};

}  // namespace tsdx::serve
