// circuit.hpp — the circuit breaker that decides primary vs degraded
// dispatch for the serving runtime.
//
// State machine (see DESIGN.md §9 "Fault tolerance contract"):
//
//            K consecutive worker faults,
//            or queue saturated past saturation_window
//   CLOSED ────────────────────────────────────────────▶ OPEN (degraded)
//     ▲                                                    │
//     │ probe batch succeeds                 cooldown over │
//     │                                                    ▼
//     └──────────────────────────────────────────────── HALF-OPEN
//                        probe batch faults: back to OPEN,
//                        cooldown restarts
//
// While OPEN, workers route every batch to the configured fallback extractor
// (degraded-but-bounded answers instead of shed requests). After `cooldown`,
// exactly one batch is let through to the primary model as a probe
// (HALF-OPEN); its outcome decides whether the circuit heals or re-opens.
//
// The breaker only ever trips when a fallback exists — with nothing to
// degrade to, routing around the model would turn one failure into many.
#pragma once

#include <chrono>
#include <cstddef>
#include <cstdint>

#include "core/annotations.hpp"
#include "obs/metrics.hpp"

namespace tsdx::serve {

enum class CircuitState { kClosed, kOpen, kHalfOpen };

const char* to_string(CircuitState state);

struct CircuitConfig {
  /// Consecutive worker faults (no intervening primary success) that trip
  /// the breaker.
  std::size_t fault_threshold = 3;
  /// How long the breaker stays OPEN before probing the primary again.
  std::chrono::milliseconds cooldown{250};
  /// Trip when the queue has been continuously at capacity for this long.
  /// 0 disables saturation tripping (faults still trip).
  std::chrono::milliseconds saturation_window{0};
};

/// Thread-safe breaker shared by every worker of one InferenceServer.
class CircuitBreaker {
 public:
  using Clock = std::chrono::steady_clock;

  /// Where the caller should send the batch it is about to dispatch.
  /// kProbe is kPrimary with a claim attached: the caller is the single
  /// in-flight probe and must report the outcome (on_fault / on_success).
  enum class Route { kPrimary, kDegraded, kProbe };

  /// `state_gauge` / `trips_counter` (both optional) mirror the breaker into
  /// a metrics registry: the gauge holds the numeric state (kClosed = 0,
  /// kOpen = 1, kHalfOpen = 2 — the enum order) and the counter counts
  /// transitions into OPEN. The server wires these to serve.circuit_state /
  /// serve.circuit_trips.
  CircuitBreaker(CircuitConfig config, bool has_fallback,
                 obs::Gauge* state_gauge = nullptr,
                 obs::Counter* trips_counter = nullptr);

  /// Routing decision for one batch. Transitions OPEN -> HALF-OPEN when the
  /// cooldown has elapsed (first caller gets kProbe, the rest keep
  /// degrading until the probe resolves).
  Route route(Clock::time_point now) TSDX_EXCLUDES(mutex_);

  /// A batch dispatched to the primary threw. Trips CLOSED -> OPEN at the
  /// fault threshold; re-opens a HALF-OPEN probe.
  void on_fault(Clock::time_point now) TSDX_EXCLUDES(mutex_);

  /// A batch dispatched to the primary succeeded. Resets the consecutive-
  /// fault streak; heals HALF-OPEN -> CLOSED.
  void on_success() TSDX_EXCLUDES(mutex_);

  /// Queue-depth observation from submit(). Saturation that persists past
  /// `saturation_window` trips the breaker just like faults do.
  void on_queue_depth(std::size_t depth, std::size_t capacity,
                      Clock::time_point now) TSDX_EXCLUDES(mutex_);

  CircuitState state() const TSDX_EXCLUDES(mutex_);
  /// Times the breaker has transitioned into OPEN.
  std::uint64_t trips() const TSDX_EXCLUDES(mutex_);

 private:
  void trip_locked(Clock::time_point now) TSDX_REQUIRES(mutex_);
  /// Single place every state transition goes through, so the mirror gauge
  /// can never drift from state_.
  void set_state_locked(CircuitState state) TSDX_REQUIRES(mutex_);

  const CircuitConfig config_;
  const bool has_fallback_;
  obs::Gauge* const state_gauge_;      // may be null
  obs::Counter* const trips_counter_;  // may be null

  mutable Mutex mutex_{"serve.circuit", lockorder::Rank::kCircuit};
  CircuitState state_ TSDX_GUARDED_BY(mutex_) = CircuitState::kClosed;
  std::size_t consecutive_faults_ TSDX_GUARDED_BY(mutex_) = 0;
  std::uint64_t trips_ TSDX_GUARDED_BY(mutex_) = 0;
  Clock::time_point opened_at_ TSDX_GUARDED_BY(mutex_){};
  bool saturated_ TSDX_GUARDED_BY(mutex_) = false;
  Clock::time_point saturated_since_ TSDX_GUARDED_BY(mutex_){};
};

}  // namespace tsdx::serve
