#include "serve/replica.hpp"

#include <limits>
#include <utility>

namespace tsdx::serve {

const char* to_string(ReplicaState state) {
  switch (state) {
    case ReplicaState::kUp:
      return "up";
    case ReplicaState::kDraining:
      return "draining";
    case ReplicaState::kDown:
      return "down";
  }
  return "unknown";
}

ManagedReplica::ManagedReplica(
    std::size_t index, std::shared_ptr<const core::ScenarioExtractor> extractor,
    ReplicaConfig config, obs::Registry& registry)
    : index_(index),
      config_(std::move(config)),
      extractor_(std::move(extractor)),
      state_gauge_(registry.gauge("route.replica_state." +
                                  std::to_string(index))),
      queue_gauge_(registry.gauge("route.replica_queue_depth." +
                                  std::to_string(index))),
      dispatched_counter_(registry.counter("route.replica_dispatched." +
                                           std::to_string(index))),
      failures_counter_(registry.counter("route.replica_failures." +
                                         std::to_string(index))) {
  retry_budget_.ratio = config_.retry_budget_ratio;
  retry_budget_.cap = config_.retry_budget_cap;
  retry_budget_.tokens = config_.retry_budget_floor;
  server_ = std::make_shared<InferenceServer>(extractor_, config_.server);
  state_gauge_.set(static_cast<std::int64_t>(ReplicaState::kUp));
}

ReplicaState ManagedReplica::state() const {
  LockGuard lock(mutex_);
  return state_;
}

std::shared_ptr<InferenceServer> ManagedReplica::server() const {
  LockGuard lock(mutex_);
  return server_;
}

std::size_t ManagedReplica::load() const {
  std::shared_ptr<InferenceServer> server;
  std::size_t in_flight = 0;
  {
    LockGuard lock(mutex_);
    if (state_ == ReplicaState::kDown || !server_) {
      return std::numeric_limits<std::size_t>::max();
    }
    server = server_;
    in_flight = in_flight_;
  }
  // queue_depth() takes the server's queue lock (rank kQueue, above
  // kReplica) — taken here *outside* the replica lock regardless, since the
  // depth is advisory and a stale read only costs routing precision.
  return in_flight + server->queue_depth();
}

std::size_t ManagedReplica::in_flight() const {
  LockGuard lock(mutex_);
  return in_flight_;
}

void ManagedReplica::on_dispatch() {
  {
    LockGuard lock(mutex_);
    ++in_flight_;
  }
  dispatched_counter_.inc();
}

void ManagedReplica::on_outcome(bool success) {
  bool failed = false;
  {
    LockGuard lock(mutex_);
    if (in_flight_ > 0) --in_flight_;
    if (success) {
      consecutive_failures_ = 0;
      retry_budget_.earn();
    } else {
      failed = true;
      ++consecutive_failures_;
      if (consecutive_failures_ >= config_.down_after_failures &&
          state_ != ReplicaState::kDown) {
        set_state_locked(ReplicaState::kDown);
      }
    }
  }
  if (failed) failures_counter_.inc();
}

void ManagedReplica::on_expired() {
  LockGuard lock(mutex_);
  if (in_flight_ > 0) --in_flight_;
}

bool ManagedReplica::try_spend_retry_token() {
  LockGuard lock(mutex_);
  return retry_budget_.try_spend();
}

double ManagedReplica::retry_tokens() const {
  LockGuard lock(mutex_);
  return retry_budget_.tokens;
}

void ManagedReplica::observe_circuit(CircuitState circuit) {
  LockGuard lock(mutex_);
  if (circuit == CircuitState::kOpen) {
    if (state_ == ReplicaState::kUp) set_state_locked(ReplicaState::kDraining);
  } else {
    if (state_ == ReplicaState::kDraining) set_state_locked(ReplicaState::kUp);
  }
}

void ManagedReplica::mark_up() {
  LockGuard lock(mutex_);
  if (!server_) return;  // killed: only revive() can bring it back
  consecutive_failures_ = 0;
  set_state_locked(ReplicaState::kUp);
}

void ManagedReplica::mark_down() {
  LockGuard lock(mutex_);
  set_state_locked(ReplicaState::kDown);
}

ManagedReplica::Clock::time_point ManagedReplica::down_since() const {
  LockGuard lock(mutex_);
  return down_since_;
}

void ManagedReplica::update_queue_gauge() {
  std::shared_ptr<InferenceServer> server;
  {
    LockGuard lock(mutex_);
    server = server_;
  }
  queue_gauge_.set(
      server ? static_cast<std::int64_t>(server->queue_depth()) : 0);
}

void ManagedReplica::kill() {
  std::shared_ptr<InferenceServer> doomed;
  {
    LockGuard lock(mutex_);
    doomed = std::move(server_);
    server_ = nullptr;
    set_state_locked(ReplicaState::kDown);
  }
  // Shut down outside the replica lock: shutdown() joins worker threads and
  // may take a while; routing reads must not block behind it. Relay threads
  // still holding shared_ptr copies keep the object alive until their
  // in-flight futures resolve.
  if (doomed) doomed->shutdown();
}

void ManagedReplica::revive() {
  auto fresh = std::make_shared<InferenceServer>(extractor_, config_.server);
  LockGuard lock(mutex_);
  server_ = std::move(fresh);
  consecutive_failures_ = 0;
  set_state_locked(ReplicaState::kUp);
}

void ManagedReplica::drain_server() {
  std::shared_ptr<InferenceServer> server;
  {
    LockGuard lock(mutex_);
    server = server_;
  }
  if (server) server->drain();
}

void ManagedReplica::shutdown_server() {
  std::shared_ptr<InferenceServer> server;
  {
    LockGuard lock(mutex_);
    server = server_;
  }
  if (server) server->shutdown();
}

void ManagedReplica::set_state_locked(ReplicaState next) {
  if (state_ != next && next == ReplicaState::kDown) {
    down_since_ = Clock::now();
  }
  state_ = next;
  state_gauge_.set(static_cast<std::int64_t>(next));
}

}  // namespace tsdx::serve
