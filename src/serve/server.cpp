#include "serve/server.hpp"

#include <exception>
#include <utility>

#include "core/check.hpp"

namespace tsdx::serve {

namespace {

using Clock = std::chrono::steady_clock;

/// Stack same-geometry clips into one [B, T, C, H, W] batch tensor. Clip
/// storage is already [T, C, H, W] row-major, so stacking is concatenation.
nn::Tensor stack_clips(const std::vector<const sim::VideoClip*>& clips) {
  const sim::VideoClip& head = *clips.front();
  const std::size_t per_clip =
      static_cast<std::size_t>(head.frames * sim::kNumChannels * head.height *
                               head.width);
  std::vector<float> stacked;
  stacked.reserve(per_clip * clips.size());
  for (const sim::VideoClip* clip : clips) {
    TSDX_CHECK(clip->data.size() == per_clip,
               "InferenceServer: clip data has ", clip->data.size(),
               " values, geometry implies ", per_clip);
    stacked.insert(stacked.end(), clip->data.begin(), clip->data.end());
  }
  return nn::Tensor::from_vector(
      {static_cast<std::int64_t>(clips.size()), head.frames, sim::kNumChannels,
       head.height, head.width},
      std::move(stacked));
}

bool same_geometry(const sim::VideoClip& a, const sim::VideoClip& b) {
  return a.frames == b.frames && a.height == b.height && a.width == b.width;
}

}  // namespace

InferenceServer::InferenceServer(
    std::shared_ptr<const core::ScenarioExtractor> extractor,
    ServerConfig config)
    : extractor_(std::move(extractor)),
      config_(config),
      queue_(config.queue_capacity, config.overflow),
      stats_(config.queue_capacity, config.max_batch) {
  TSDX_CHECK(extractor_ != nullptr, "InferenceServer: extractor is null");
  TSDX_CHECK(config_.max_batch >= 1,
             "InferenceServer: max_batch must be >= 1, got ",
             config_.max_batch);
  TSDX_CHECK(!extractor_->model().training(),
             "InferenceServer: model is in training mode; freeze it with "
             "model().set_training(false) before serving (training-mode "
             "dropout draws from the shared Rng and is not thread-safe)");
  if (config_.workers > 0) {
    workers_.spawn(config_.workers,
                   [this](std::size_t index) { worker_loop(index); });
  }
}

InferenceServer::~InferenceServer() { shutdown(); }

std::future<core::ExtractionResult> InferenceServer::submit(
    sim::VideoClip clip) {
  if (!accepting_.load(std::memory_order_acquire)) {
    throw ServerStoppedError("submit after drain()/shutdown()");
  }
  Request request;
  request.clip = std::move(clip);
  request.submit_time = Clock::now();
  std::future<core::ExtractionResult> future = request.promise.get_future();

  {
    std::lock_guard<std::mutex> lock(pending_mutex_);
    ++pending_;
  }
  std::optional<Request> shed;
  try {
    shed = queue_.push(std::move(request));
  } catch (const QueueFullError&) {
    stats_.on_reject();
    {
      std::lock_guard<std::mutex> lock(pending_mutex_);
      --pending_;
    }
    pending_cv_.notify_all();
    throw;
  } catch (const ServerStoppedError&) {
    // A kBlock push parked on a full queue can be woken by shutdown().
    {
      std::lock_guard<std::mutex> lock(pending_mutex_);
      --pending_;
    }
    pending_cv_.notify_all();
    throw;
  }
  stats_.on_submit(queue_.size());

  if (shed) {
    stats_.on_shed();
    fail_request(*shed, std::make_exception_ptr(QueueFullError(
                            "request shed by a newer submission "
                            "(OverflowPolicy::kShedOldest)")));
  }
  return future;
}

void InferenceServer::worker_loop(std::size_t worker_index) {
  Replica replica{extractor_, worker_index};
  while (std::optional<Request> first = queue_.pop()) {
    process_batch(replica, fill_batch(std::move(*first)));
  }
}

std::vector<InferenceServer::Request> InferenceServer::fill_batch(
    Request first) {
  std::vector<Request> batch;
  batch.reserve(config_.max_batch);
  batch.push_back(std::move(first));
  const auto deadline = Clock::now() + config_.batch_window;
  while (batch.size() < config_.max_batch) {
    std::optional<Request> more = config_.batch_window.count() == 0
                                      ? queue_.try_pop()
                                      : queue_.try_pop_until(deadline);
    if (!more) break;
    batch.push_back(std::move(*more));
  }
  return batch;
}

void InferenceServer::process_batch(const Replica& replica,
                                    std::vector<Request> requests) {
  // Partition into same-geometry groups (first-appearance order) so each
  // model dispatch sees a rectangular [B, T, C, H, W] batch.
  std::vector<std::vector<std::size_t>> groups;
  for (std::size_t i = 0; i < requests.size(); ++i) {
    bool placed = false;
    for (auto& group : groups) {
      if (same_geometry(requests[group.front()].clip, requests[i].clip)) {
        group.push_back(i);
        placed = true;
        break;
      }
    }
    if (!placed) groups.push_back({i});
  }

  for (const auto& group : groups) {
    stats_.on_batch(group.size());
    std::size_t resolved = 0;
    try {
      std::vector<const sim::VideoClip*> clips;
      clips.reserve(group.size());
      for (std::size_t i : group) clips.push_back(&requests[i].clip);
      data::Batch batch;
      batch.video = stack_clips(clips);
      std::vector<core::ExtractionResult> results =
          replica.extractor->extract_batch(batch);
      TSDX_CHECK(results.size() == group.size(),
                 "InferenceServer: extract_batch returned ", results.size(),
                 " results for a batch of ", group.size());
      for (; resolved < group.size(); ++resolved) {
        Request& request = requests[group[resolved]];
        request.promise.set_value(std::move(results[resolved]));
        finish_request(request, /*ok=*/true);
      }
    } catch (...) {
      const std::exception_ptr error = std::current_exception();
      for (std::size_t i = resolved; i < group.size(); ++i) {
        Request& request = requests[group[i]];
        request.promise.set_exception(error);
        finish_request(request, /*ok=*/false);
      }
    }
  }
}

void InferenceServer::finish_request(Request& request, bool ok) {
  stats_.on_done(Clock::now() - request.submit_time, ok);
  {
    std::lock_guard<std::mutex> lock(pending_mutex_);
    --pending_;
  }
  pending_cv_.notify_all();
}

void InferenceServer::fail_request(Request& request, std::exception_ptr error) {
  request.promise.set_exception(std::move(error));
  {
    std::lock_guard<std::mutex> lock(pending_mutex_);
    --pending_;
  }
  pending_cv_.notify_all();
}

void InferenceServer::process_inline() {
  Replica replica{extractor_, /*worker_index=*/0};
  while (std::optional<Request> first = queue_.try_pop()) {
    process_batch(replica, fill_batch(std::move(*first)));
  }
}

void InferenceServer::drain() {
  std::lock_guard<std::mutex> lifecycle(lifecycle_mutex_);
  if (stopped_) return;
  accepting_.store(false, std::memory_order_release);
  if (config_.workers == 0) {
    // No worker threads: consume on this thread until every accepted
    // request (including any being delivered by a producer blocked in a
    // kBlock push) has been resolved.
    while (true) {
      process_inline();
      std::unique_lock<std::mutex> lock(pending_mutex_);
      if (pending_ == 0) break;
      pending_cv_.wait_for(lock, std::chrono::milliseconds(1));
    }
  } else {
    std::unique_lock<std::mutex> lock(pending_mutex_);
    pending_cv_.wait(lock, [&] { return pending_ == 0; });
  }
  queue_.close();
  workers_.join();
  stopped_ = true;
}

void InferenceServer::shutdown() {
  std::lock_guard<std::mutex> lifecycle(lifecycle_mutex_);
  if (stopped_) return;
  accepting_.store(false, std::memory_order_release);
  std::vector<Request> leftover = queue_.close_and_drain();
  stats_.on_cancel(leftover.size());
  const std::exception_ptr stopped = std::make_exception_ptr(
      ServerStoppedError("server shut down before the request was dispatched"));
  for (Request& request : leftover) {
    fail_request(request, stopped);
  }
  // Workers finish their in-flight batch, see the closed-and-empty queue,
  // and exit; join() then waits for exactly that.
  workers_.join();
  stopped_ = true;
}

ServerStats InferenceServer::stats() const {
  return stats_.snapshot(queue_.size());
}

}  // namespace tsdx::serve
