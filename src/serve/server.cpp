#include "serve/server.hpp"

#include <algorithm>
#include <exception>
#include <thread>
#include <utility>

#include "core/check.hpp"
#include "obs/slo.hpp"
#include "serve/fault/inject.hpp"
#include "tensor/kernels/parallel_for.hpp"

namespace tsdx::serve {

namespace {

using Clock = std::chrono::steady_clock;

/// Stack same-geometry clips into one [B, T, C, H, W] batch tensor. Clip
/// storage is already [T, C, H, W] row-major, so stacking is concatenation.
nn::Tensor stack_clips(const std::vector<const sim::VideoClip*>& clips) {
  const sim::VideoClip& head = *clips.front();
  const std::size_t per_clip =
      static_cast<std::size_t>(head.frames * sim::kNumChannels * head.height *
                               head.width);
  std::vector<float> stacked;
  stacked.reserve(per_clip * clips.size());
  for (const sim::VideoClip* clip : clips) {
    TSDX_CHECK(clip->data.size() == per_clip,
               "InferenceServer: clip data has ", clip->data.size(),
               " values, geometry implies ", per_clip);
    stacked.insert(stacked.end(), clip->data.begin(), clip->data.end());
  }
  return nn::Tensor::from_vector(
      {static_cast<std::int64_t>(clips.size()), head.frames, sim::kNumChannels,
       head.height, head.width},
      std::move(stacked));
}

bool same_geometry(const sim::VideoClip& a, const sim::VideoClip& b) {
  return a.frames == b.frames && a.height == b.height && a.width == b.width;
}

}  // namespace

InferenceServer::InferenceServer(
    std::shared_ptr<const core::ScenarioExtractor> extractor,
    ServerConfig config)
    : extractor_(std::move(extractor)),
      config_(std::move(config)),
      plan_cache_(config_.use_compiled_plan
                      ? std::make_shared<plan::PlanCache>()
                      : nullptr),
      // Aliasing shared_ptr: global() is a process-lifetime static, so a
      // non-owning handle is safe and keeps the two cases uniform.
      registry_(config_.metrics != nullptr
                    ? config_.metrics
                    : std::shared_ptr<obs::Registry>(
                          std::shared_ptr<void>(), &obs::Registry::global())),
      queue_(config_.queue_capacity, config_.overflow),
      stats_(*registry_, config_.queue_capacity, config_.max_batch),
      // Per-shard series when the server is named (Router replicas), the
      // historical flat names otherwise — see ServerConfig::name.
      circuit_(config_.circuit, config_.fallback != nullptr,
               &registry_->gauge(config_.name.empty()
                                     ? "serve.circuit_state"
                                     : "serve.circuit_state." + config_.name),
               &registry_->counter(
                   config_.name.empty()
                       ? "serve.circuit_trips"
                       : "serve.circuit_trips." + config_.name)) {
  TSDX_CHECK(extractor_ != nullptr, "InferenceServer: extractor is null");
  TSDX_CHECK(config_.max_batch >= 1,
             "InferenceServer: max_batch must be >= 1, got ",
             config_.max_batch);
  TSDX_CHECK(!extractor_->model().training(),
             "InferenceServer: model is in training mode; freeze it with "
             "model().set_training(false) before serving (training-mode "
             "dropout draws from the shared Rng and is not thread-safe)");
  if (config_.workers > 0) {
    // Budget the intra-op pool so inter-op workers share the machine instead
    // of each assuming they own it. TSDX_NUM_THREADS (an explicit user
    // choice) takes precedence over both the config field and the default.
    if (!par::env_override()) {
      std::size_t budget = config_.intra_op_threads;
      if (budget == 0) {
        const std::size_t cores =
            std::max<std::size_t>(1, std::thread::hardware_concurrency());
        budget = std::max<std::size_t>(1, cores / config_.workers);
      }
      par::set_threads(budget);
    }
    workers_.spawn(config_.workers,
                   [this](std::size_t index) { worker_loop(index); });
    supervisor_.spawn(1, [this](std::size_t) { supervisor_loop(); });
  }
}

InferenceServer::~InferenceServer() { shutdown(); }

std::future<core::ExtractionResult> InferenceServer::submit(
    sim::VideoClip clip, std::optional<Clock::time_point> deadline) {
  if (!accepting_.load(std::memory_order_acquire)) {
    throw ServerStoppedError("submit after drain()/shutdown()");
  }
  Request request;
  request.clip = std::move(clip);
  request.sequence = next_sequence_.fetch_add(1, std::memory_order_relaxed);
  // One trace ID per request. Minted at the boundary — unless the submitting
  // thread already carries a context (the Router's dispatch runs under the
  // ticket's trace): adopting it stitches the router hop and this server hop
  // into one trace. The context rides in the Request so the worker that
  // dispatches it can adopt it; the guard scopes it to this call so the
  // client thread's serve.submit span (and any inline processing under
  // drain()) records under it too.
  const obs::trace::Context ambient = obs::trace::current();
  request.trace = ambient.trace_id != 0 ? ambient : obs::trace::mint();
  request.rec = obs::Recorder::global().begin(obs::Recorder::Kind::kServer,
                                              request.trace.trace_id);
  obs::trace::ContextGuard trace_guard(request.trace);
  TSDX_TRACE_SPAN("serve.submit");
  request.submit_time = Clock::now();
  request.deadline = deadline;
  std::future<core::ExtractionResult> future = request.promise.get_future();

  // A deadline already in the past fails fast: the request is accounted for
  // (submitted + deadline_expired) but never reaches the queue, so it
  // cannot displace live work.
  if (deadline && *deadline <= request.submit_time) {
    stats_.on_submit(queue_.size());
    stats_.on_deadline_expired();
    obs::Recorder::global().finish(request.rec,
                                   obs::Recorder::Outcome::kDeadlineExpired,
                                   registry_.get());
    obs::SloEngine::global().note_anomaly(obs::Anomaly::kDeadlineMiss,
                                          request.trace.trace_id);
    request.promise.set_exception(std::make_exception_ptr(
        DeadlineExceededError("deadline already expired at submit()")));
    return future;
  }

  {
    LockGuard lock(pending_mutex_);
    ++pending_;
  }
  const std::uint64_t rec = request.rec;  // survives the move into the queue
  std::optional<Request> shed;
  try {
    shed = queue_.push(std::move(request));
  } catch (const QueueFullError&) {
    stats_.on_reject();
    obs::Recorder::global().finish(rec, obs::Recorder::Outcome::kRejected,
                                   registry_.get());
    {
      LockGuard lock(pending_mutex_);
      --pending_;
    }
    pending_cv_.notify_all();
    throw;
  } catch (const ServerStoppedError&) {
    // A kBlock push parked on a full queue can be woken by shutdown().
    obs::Recorder::global().finish(rec, obs::Recorder::Outcome::kCancelled,
                                   registry_.get());
    {
      LockGuard lock(pending_mutex_);
      --pending_;
    }
    pending_cv_.notify_all();
    throw;
  }
  obs::Recorder::global().on_enqueued(rec);
  const std::size_t depth = queue_.size();
  stats_.on_submit(depth);
  circuit_.on_queue_depth(depth, config_.queue_capacity, Clock::now());

  if (shed) {
    stats_.on_shed();
    fail_request(*shed,
                 std::make_exception_ptr(QueueFullError(
                     "request shed by a newer submission "
                     "(OverflowPolicy::kShedOldest)")),
                 obs::Recorder::Outcome::kShed);
  }
  return future;
}

InferenceServer::Replica InferenceServer::make_replica(
    std::size_t worker_index) const {
  Replica replica{extractor_, worker_index, nullptr};
  if (plan_cache_ != nullptr) {
    replica.plan_executor =
        std::make_shared<plan::PlanExecutor>(extractor_, plan_cache_);
  }
  return replica;
}

void InferenceServer::worker_loop(std::size_t worker_index) {
  Replica replica = make_replica(worker_index);
  while (std::optional<Request> first = queue_.pop()) {
    try {
      process_batch(replica, fill_batch(std::move(*first)));
    } catch (const WorkerFault&) {
      // The batch's futures are already failed; this thread is done. The
      // supervisor spawns a replacement with the same index.
      report_worker_death(worker_index);
      return;
    }
  }
}

void InferenceServer::supervisor_loop() {
  while (true) {
    std::vector<std::size_t> dead;
    {
      UniqueLock lock(supervisor_mutex_);
      while (!supervisor_stop_ && dead_workers_.empty()) {
        supervisor_cv_.wait(lock);
      }
      if (supervisor_stop_) return;
      dead.swap(dead_workers_);
    }
    for (const std::size_t index : dead) {
      workers_.spawn_one([this, index] { worker_loop(index); });
    }
  }
}

void InferenceServer::report_worker_death(std::size_t worker_index) {
  {
    LockGuard lock(supervisor_mutex_);
    dead_workers_.push_back(worker_index);
  }
  supervisor_cv_.notify_one();
}

void InferenceServer::stop_supervisor() {
  {
    LockGuard lock(supervisor_mutex_);
    supervisor_stop_ = true;
  }
  supervisor_cv_.notify_all();
  supervisor_.join();
}

std::vector<InferenceServer::Request> InferenceServer::fill_batch(
    Request first) {
  std::vector<Request> batch;
  batch.reserve(config_.max_batch);
  const auto window_deadline = Clock::now() + config_.batch_window;
  if (!expire_if_due(first, Clock::now())) {
    obs::Recorder::global().on_dispatch(first.rec);
    batch.push_back(std::move(first));
  }
  while (batch.size() < config_.max_batch) {
    std::optional<Request> more =
        config_.batch_window.count() == 0
            ? queue_.try_pop()
            : queue_.try_pop_until(window_deadline);
    if (!more) break;
    // Scrub expired requests here, at batching time: a request whose
    // deadline has passed is failed immediately and never takes a slot a
    // live request could use.
    if (expire_if_due(*more, Clock::now())) continue;
    obs::Recorder::global().on_dispatch(more->rec);
    batch.push_back(std::move(*more));
  }
  return batch;
}

void InferenceServer::process_batch(const Replica& replica,
                                    std::vector<Request> requests) {
  // Final deadline scrub: the batch window may have outlived a deadline.
  const auto now = Clock::now();
  std::vector<Request> live;
  live.reserve(requests.size());
  for (auto& request : requests) {
    if (!expire_if_due(request, now)) live.push_back(std::move(request));
  }
  if (live.empty()) return;

  // Adopt the oldest live request's trace for the whole dispatch: every span
  // below (serve.batch -> extract.batch -> model.* -> gemm.mm, including
  // tsdx::par workers) joins that request's trace. Per-request queue waits
  // are recorded with explicit endpoints under each request's own context.
  obs::trace::ContextGuard trace_guard(live.front().trace);
  TSDX_TRACE_SPAN("serve.batch");
  for (Request& request : live) {
    stats_.on_dispatch(now - request.submit_time, request.trace.trace_id);
    obs::trace::record_span("serve.queue_wait", request.trace,
                            request.submit_time, now);
  }

  if (circuit_.route(now) == CircuitBreaker::Route::kDegraded) {
    process_degraded(live);
    return;
  }

  // Partition into same-geometry groups (first-appearance order) so each
  // model dispatch sees a rectangular [B, T, C, H, W] batch.
  std::vector<std::vector<std::size_t>> groups;
  for (std::size_t i = 0; i < live.size(); ++i) {
    bool placed = false;
    for (auto& group : groups) {
      if (same_geometry(live[group.front()].clip, live[i].clip)) {
        group.push_back(i);
        placed = true;
        break;
      }
    }
    if (!placed) groups.push_back({i});
  }

  for (std::size_t g = 0; g < groups.size(); ++g) {
    const auto& group = groups[g];
    stats_.on_batch(group.size());
    // Flight-record the execution start: one batch id per model dispatch
    // (each geometry group is its own dispatch).
    obs::Recorder& recorder = obs::Recorder::global();
    const std::uint64_t batch_id = recorder.mint_batch_id();
    for (const std::size_t i : group) {
      recorder.on_execute(live[i].rec, batch_id,
                          static_cast<std::uint32_t>(group.size()),
                          static_cast<std::int32_t>(replica.worker_index));
    }
    std::size_t resolved = 0;
    try {
      std::vector<const sim::VideoClip*> clips;
      clips.reserve(group.size());
      for (std::size_t i : group) clips.push_back(&live[i].clip);
      data::Batch batch;
      batch.video = stack_clips(clips);
      fault::Injector::instance().on_extract_batch(config_.fault_domain);
      // Compiled execution when configured — bit-identical results (see
      // plan.hpp), with per-batch dynamic fallback inside the executor.
      std::vector<core::ExtractionResult> results =
          replica.plan_executor != nullptr
              ? replica.plan_executor->extract_batch(batch)
              : replica.extractor->extract_batch(batch);
      const obs::Recorder::Path path =
          replica.plan_executor != nullptr &&
                  replica.plan_executor->last_used_plan()
              ? obs::Recorder::Path::kPlan
              : obs::Recorder::Path::kDynamic;
      for (const std::size_t i : group) recorder.set_path(live[i].rec, path);
      TSDX_CHECK(results.size() == group.size(),
                 "InferenceServer: extract_batch returned ", results.size(),
                 " results for a batch of ", group.size());
      // Accounting before resolution, here and in the catch below: a client
      // that has observed its future's outcome must also observe the
      // matching counters and circuit state (future.get() synchronizes with
      // set_value/set_exception, so updates sequenced before those calls
      // are visible after it).
      circuit_.on_success();
      for (; resolved < group.size(); ++resolved) {
        Request& request = live[group[resolved]];
        notify_result(request, results[resolved], /*degraded=*/false);
        finish_request(request, DoneKind::kCompleted);
        request.promise.set_value(std::move(results[resolved]));
      }
    } catch (...) {
      // Worker fault: every future still in flight on this worker — the
      // rest of this group and every not-yet-dispatched group of the same
      // micro-batch — fails with the captured exception. The worker thread
      // then dies and is restarted by the supervisor (WorkerFault signal).
      const std::exception_ptr error = std::current_exception();
      stats_.on_worker_fault();
      circuit_.on_fault(Clock::now());
      for (std::size_t i = resolved; i < group.size(); ++i) {
        Request& request = live[group[i]];
        finish_request(request, DoneKind::kFailed);
        request.promise.set_exception(error);
      }
      for (std::size_t g2 = g + 1; g2 < groups.size(); ++g2) {
        for (const std::size_t i : groups[g2]) {
          Request& request = live[i];
          finish_request(request, DoneKind::kFailed);
          request.promise.set_exception(error);
        }
      }
      throw WorkerFault{};
    }
  }
}

void InferenceServer::process_degraded(std::vector<Request>& requests) {
  // The circuit only routes here when a fallback is configured.
  for (Request& request : requests) {
    obs::Recorder::global().set_path(request.rec,
                                     obs::Recorder::Path::kFallback);
    try {
      core::ExtractionResult result = config_.fallback->extract(request.clip);
      // Accounting before resolution (same visibility contract as
      // process_batch): a client that got a degraded answer can rely on
      // degraded_completions already counting it.
      notify_result(request, result, /*degraded=*/true);
      finish_request(request, DoneKind::kDegraded);
      request.promise.set_value(std::move(result));
    } catch (...) {
      // A fallback error fails only this request — degraded mode must not
      // take down the worker that is keeping the service answering.
      finish_request(request, DoneKind::kFailed);
      request.promise.set_exception(std::current_exception());
    }
  }
}

bool InferenceServer::expire_if_due(Request& request, Clock::time_point now) {
  if (!request.deadline || now < *request.deadline) return false;
  stats_.on_deadline_expired();
  fail_request(request,
               std::make_exception_ptr(DeadlineExceededError(
                   "request deadline expired before dispatch")),
               obs::Recorder::Outcome::kDeadlineExpired);
  // A missed deadline is the SLO engine's flagship anomaly: snapshot the
  // recorder + span state while the evidence is still in the rings.
  obs::SloEngine::global().note_anomaly(obs::Anomaly::kDeadlineMiss,
                                        request.trace.trace_id);
  return true;
}

void InferenceServer::notify_result(const Request& request,
                                    const core::ExtractionResult& result,
                                    bool degraded) {
  if (!config_.on_result) return;
  try {
    config_.on_result(CompletionInfo{request.sequence, result, degraded});
  } catch (...) {
    // The sink's contract (ServerConfig::on_result): a throwing sink is a
    // consumer bug, not a serving failure — the client still gets its
    // successfully extracted result.
  }
}

void InferenceServer::finish_request(Request& request, DoneKind kind) {
  const auto now = Clock::now();
  stats_.on_done(now - request.submit_time, kind, request.trace.trace_id);
  obs::trace::record_span("serve.request", request.trace, request.submit_time,
                          now);
  obs::Recorder::Outcome outcome = obs::Recorder::Outcome::kCompleted;
  switch (kind) {
    case DoneKind::kCompleted: outcome = obs::Recorder::Outcome::kCompleted;
      break;
    case DoneKind::kDegraded: outcome = obs::Recorder::Outcome::kDegraded;
      break;
    case DoneKind::kFailed: outcome = obs::Recorder::Outcome::kFailed; break;
  }
  obs::Recorder::global().finish(request.rec, outcome, registry_.get());
  {
    LockGuard lock(pending_mutex_);
    --pending_;
  }
  pending_cv_.notify_all();
}

void InferenceServer::fail_request(Request& request, std::exception_ptr error,
                                   obs::Recorder::Outcome outcome) {
  obs::trace::record_span("serve.request", request.trace, request.submit_time,
                          Clock::now());
  obs::Recorder::global().finish(request.rec, outcome, registry_.get());
  request.promise.set_exception(std::move(error));
  {
    LockGuard lock(pending_mutex_);
    --pending_;
  }
  pending_cv_.notify_all();
}

void InferenceServer::process_inline() {
  Replica replica = make_replica(/*worker_index=*/0);
  while (std::optional<Request> first = queue_.try_pop()) {
    try {
      process_batch(replica, fill_batch(std::move(*first)));
    } catch (const WorkerFault&) {
      // Inline mode has no thread to restart: the batch's futures are
      // failed and the fault is counted; keep consuming.
    }
  }
}

void InferenceServer::drain() {
  LockGuard lifecycle(lifecycle_mutex_);
  if (stopped_) return;
  accepting_.store(false, std::memory_order_release);
  if (config_.workers == 0) {
    // No worker threads: consume on this thread until every accepted
    // request (including any being delivered by a producer blocked in a
    // kBlock push) has been resolved.
    while (true) {
      process_inline();
      UniqueLock lock(pending_mutex_);
      if (pending_ == 0) break;
      pending_cv_.wait_for(lock, std::chrono::milliseconds(1));
    }
  } else {
    // Workers (restarted by the supervisor if they fault) finish every
    // accepted request before we tear anything down.
    UniqueLock lock(pending_mutex_);
    while (pending_ != 0) {
      pending_cv_.wait(lock);
    }
  }
  queue_.close();
  stop_supervisor();
  workers_.join();
  stopped_ = true;
}

void InferenceServer::shutdown() {
  LockGuard lifecycle(lifecycle_mutex_);
  if (stopped_) return;
  accepting_.store(false, std::memory_order_release);
  // Stop the supervisor first: a worker that faults during teardown is not
  // replaced (the queue is about to be emptied, so there is no queued work
  // a replacement could rescue).
  stop_supervisor();
  std::vector<Request> leftover = queue_.close_and_drain();
  stats_.on_cancel(leftover.size());
  const std::exception_ptr stopped = std::make_exception_ptr(
      ServerStoppedError("server shut down before the request was dispatched"));
  for (Request& request : leftover) {
    fail_request(request, stopped, obs::Recorder::Outcome::kCancelled);
  }
  // Workers finish their in-flight batch, see the closed-and-empty queue,
  // and exit; join() then waits for exactly that.
  workers_.join();
  stopped_ = true;
}

ServerStats InferenceServer::stats() const {
  return stats_.snapshot(queue_.size(), circuit_.state(), circuit_.trips());
}

}  // namespace tsdx::serve
