#include "serve/admission.hpp"

#include <algorithm>
#include <utility>

namespace tsdx::serve {

const char* to_string(AdmitVerdict verdict) {
  switch (verdict) {
    case AdmitVerdict::kAdmitted:
      return "admitted";
    case AdmitVerdict::kRateLimited:
      return "rate-limited";
    case AdmitVerdict::kOverFairShare:
      return "over-fair-share";
  }
  return "unknown";
}

AdmissionController::AdmissionController(AdmissionConfig config,
                                         obs::Registry& registry)
    : config_(std::move(config)),
      registry_(registry),
      admitted_total_(registry.counter("route.admitted")),
      rejected_total_(registry.counter("route.shed")),
      inflight_gauge_(registry.gauge("route.inflight")) {
  LockGuard lock(mutex_);
  for (const TenantConfig& tc : config_.tenants) {
    Tenant& tenant = tenants_[tc.name];
    if (tenant.admitted != nullptr) continue;  // duplicate declaration
    tenant.weight = tc.weight > 0.0 ? tc.weight : config_.default_weight;
    tenant.admitted =
        &registry_.counter("route.tenant." + tc.name + ".admitted");
    tenant.rejected =
        &registry_.counter("route.tenant." + tc.name + ".rejected");
    total_weight_ += tenant.weight;
  }
}

AdmissionController::Tenant& AdmissionController::tenant_locked(
    const std::string& name) {
  auto it = tenants_.find(name);
  if (it != tenants_.end()) return it->second;
  Tenant& tenant = tenants_[name];
  tenant.weight = config_.default_weight > 0.0 ? config_.default_weight : 1.0;
  tenant.admitted = &registry_.counter("route.tenant." + name + ".admitted");
  tenant.rejected = &registry_.counter("route.tenant." + name + ".rejected");
  total_weight_ += tenant.weight;
  return tenant;
}

double AdmissionController::rate_locked(const Tenant& tenant) const {
  if (config_.aggregate_rate_per_s <= 0.0 || total_weight_ <= 0.0) return 0.0;
  return config_.aggregate_rate_per_s * tenant.weight / total_weight_;
}

double AdmissionController::bucket_depth_locked(const Tenant& tenant) const {
  const double rate = rate_locked(tenant);
  return std::max(1.0, rate * config_.burst_seconds);
}

AdmitVerdict AdmissionController::admit(const std::string& tenant_name,
                                        Clock::time_point now) {
  AdmitVerdict verdict = AdmitVerdict::kAdmitted;
  obs::Counter* tenant_admitted = nullptr;
  obs::Counter* tenant_rejected = nullptr;
  {
    LockGuard lock(mutex_);
    Tenant& tenant = tenant_locked(tenant_name);
    tenant_admitted = tenant.admitted;
    tenant_rejected = tenant.rejected;

    // Gate 2 first: the congestion cap. Checking it before spending a token
    // means a fair-share rejection does not also drain the tenant's bucket.
    if (config_.congestion_window > 0 &&
        total_in_flight_ >= config_.congestion_window) {
      const double share = total_weight_ > 0.0
                               ? tenant.weight / total_weight_
                               : 1.0;
      const auto cap = static_cast<std::size_t>(std::max(
          1.0, share * static_cast<double>(config_.congestion_window)));
      if (tenant.in_flight >= cap) verdict = AdmitVerdict::kOverFairShare;
    }

    // Gate 1: the token bucket. Refill is computed from the caller's clock
    // reading, so a test feeding synthetic `now` values gets exact token
    // arithmetic with no wall-clock dependence.
    const double rate = rate_locked(tenant);
    if (verdict == AdmitVerdict::kAdmitted && rate > 0.0) {
      const double depth = bucket_depth_locked(tenant);
      if (!tenant.bucket_primed) {
        tenant.tokens = depth;
        tenant.bucket_primed = true;
      } else if (now > tenant.last_refill) {
        const double elapsed_s =
            std::chrono::duration<double>(now - tenant.last_refill).count();
        tenant.tokens = std::min(depth, tenant.tokens + rate * elapsed_s);
      }
      tenant.last_refill = now;
      if (tenant.tokens >= 1.0) {
        tenant.tokens -= 1.0;
      } else {
        verdict = AdmitVerdict::kRateLimited;
      }
    }

    if (verdict == AdmitVerdict::kAdmitted) {
      ++tenant.in_flight;
      ++total_in_flight_;
      inflight_gauge_.set(static_cast<std::int64_t>(total_in_flight_));
    }
  }
  if (verdict == AdmitVerdict::kAdmitted) {
    admitted_total_.inc();
    tenant_admitted->inc();
  } else {
    rejected_total_.inc();
    tenant_rejected->inc();
  }
  return verdict;
}

void AdmissionController::on_done(const std::string& tenant_name) {
  LockGuard lock(mutex_);
  Tenant& tenant = tenant_locked(tenant_name);
  if (tenant.in_flight > 0) --tenant.in_flight;
  if (total_in_flight_ > 0) --total_in_flight_;
  inflight_gauge_.set(static_cast<std::int64_t>(total_in_flight_));
}

std::size_t AdmissionController::in_flight() const {
  LockGuard lock(mutex_);
  return total_in_flight_;
}

std::uint64_t AdmissionController::tenant_admitted(
    const std::string& tenant) const {
  LockGuard lock(mutex_);
  const auto it = tenants_.find(tenant);
  return it == tenants_.end() ? 0 : it->second.admitted->value();
}

std::uint64_t AdmissionController::tenant_rejected(
    const std::string& tenant) const {
  LockGuard lock(mutex_);
  const auto it = tenants_.find(tenant);
  return it == tenants_.end() ? 0 : it->second.rejected->value();
}

}  // namespace tsdx::serve
