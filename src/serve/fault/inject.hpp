// inject.hpp — deterministic fault injection for the serving stack.
//
// Recovery paths that are only exercised by accident are recovery paths that
// don't work. This header gives tests and benches a way to *schedule* the
// accidents: a seeded FaultPlan names exactly which extract_batch dispatch
// throws, which dispatch stalls, and whether the next checkpoint save gets
// one byte flipped — so `chaos_test` can drive worker supervision, the
// circuit breaker, and checkpoint CRC rejection down a reproducible script
// (same plan, same failures, same recovery, every run, under TSan).
//
// Design constraints:
//   * Compiled in always, inert unless armed. The hooks are a mutex-guarded
//     counter bump on paths that already cost a model forward pass; there is
//     no build-flavor divergence between what CI chaos-tests and what ships.
//   * Header-only with inline state, deliberately: the hook sites live in
//     two different static libraries (tsdx_serve for extract_batch,
//     tsdx_nn for checkpoint saves), and a header-only injector lets
//     nn/serialize.cpp consume the plan without tsdx_nn link-depending on
//     the serve layer (which sits *above* it in the dependency DAG).
//   * Thread-safe: worker threads hit on_extract_batch concurrently while a
//     test arms/disarms from the main thread.
#pragma once

#include <chrono>
#include <cstdint>
#include <map>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "core/annotations.hpp"

namespace tsdx::serve::fault {

/// SplitMix64 — the repo's standard seed mixer; used to derive the corrupted
/// checkpoint byte offset deterministically from FaultPlan::seed.
inline std::uint64_t mix64(std::uint64_t x) {
  x += 0x9E3779B97F4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}

/// The fault thrown by an armed plan out of extract_batch. Typed so chaos
/// tests can assert that a failed future carries an *injected* fault and not
/// an incidental model error.
class InjectedFaultError : public std::runtime_error {
 public:
  explicit InjectedFaultError(const std::string& what_arg)
      : std::runtime_error(what_arg) {}
};

/// The fault a killed replica throws out of every dispatch from its kill
/// point on. Derives from InjectedFaultError so generic "was this injected?"
/// assertions keep working; typed separately so router tests can tell a
/// hard-down replica from a one-shot fault.
class ReplicaKilledError : public InjectedFaultError {
 public:
  explicit ReplicaKilledError(const std::string& what_arg)
      : InjectedFaultError(what_arg) {}
};

/// A replica-scoped fault script. `domain` matches the dispatching server's
/// ServerConfig::fault_domain (the Router wires it to the replica index), so
/// chaos tests can murder replica 2 of a fleet without touching its
/// neighbours. Call indices are 1-based and count only that domain's
/// dispatches since the plan was armed.
struct ReplicaPlan {
  int domain = 0;
  /// Hard-down from this per-domain dispatch index on: every dispatch with
  /// index >= kill_from_call throws ReplicaKilledError until the plan is
  /// disarmed (the replica stays dead — unlike throw_on_extract_calls, which
  /// is a one-dispatch fault). 0 disables.
  std::uint64_t kill_from_call = 0;
  /// Per-domain dispatch indices that stall for `stall` before proceeding
  /// (a wedged-but-alive replica: the dispatch then completes normally).
  std::vector<std::uint64_t> stall_on_calls;
  std::chrono::microseconds stall{0};
};

/// A deterministic script of faults. Call indices are 1-based and count
/// every extract_batch dispatch process-wide from the moment the plan is
/// armed (arming resets the counter).
struct FaultPlan {
  /// Seeds derived randomness (currently: which checkpoint byte to flip).
  std::uint64_t seed = 0;
  /// extract_batch dispatches that throw InjectedFaultError.
  std::vector<std::uint64_t> throw_on_extract_calls;
  /// extract_batch dispatches that stall for `extract_delay` first.
  std::vector<std::uint64_t> delay_on_extract_calls;
  std::chrono::microseconds extract_delay{0};
  /// Replica-scoped kill/stall scripts, keyed by fault domain. Domains are
  /// counted independently of the process-wide indices above; both apply.
  std::vector<ReplicaPlan> replica_plans;
  /// Flip one seed-chosen byte of the next checkpoint save (after its CRC
  /// footer is computed, so the corruption is CRC-detectable on load).
  bool corrupt_next_checkpoint = false;
};

/// Process-wide injector the hook sites consult. Inert (two branch-free
/// loads under a mutex) unless a plan is armed.
class Injector {
 public:
  static Injector& instance() {
    static Injector injector;
    return injector;
  }

  /// A server with no assigned fault domain (ServerConfig::fault_domain's
  /// default): its dispatches count process-wide but match no ReplicaPlan.
  static constexpr int kNoDomain = -1;

  void arm(FaultPlan plan) TSDX_EXCLUDES(mutex_) {
    LockGuard lock(mutex_);
    plan_ = std::move(plan);
    armed_ = true;
    extract_calls_ = 0;
    domain_calls_.clear();
  }

  void disarm() TSDX_EXCLUDES(mutex_) {
    LockGuard lock(mutex_);
    armed_ = false;
    plan_ = FaultPlan{};
  }

  bool armed() const TSDX_EXCLUDES(mutex_) {
    LockGuard lock(mutex_);
    return armed_;
  }

  /// Dispatches observed since the plan was armed.
  std::uint64_t extract_calls() const TSDX_EXCLUDES(mutex_) {
    LockGuard lock(mutex_);
    return extract_calls_;
  }

  /// Dispatches observed on one fault domain since the plan was armed.
  std::uint64_t domain_calls(int domain) const TSDX_EXCLUDES(mutex_) {
    LockGuard lock(mutex_);
    const auto it = domain_calls_.find(domain);
    return it == domain_calls_.end() ? 0 : it->second;
  }

  /// Hook: call immediately before an extract_batch dispatch. May sleep
  /// (injected latency) and/or throw InjectedFaultError per the armed plan.
  /// `domain` identifies the dispatching replica (ServerConfig::fault_domain;
  /// kNoDomain for standalone servers) for the replica-scoped plans.
  void on_extract_batch(int domain = kNoDomain) TSDX_EXCLUDES(mutex_) {
    std::chrono::microseconds delay{0};
    std::uint64_t call = 0;
    std::uint64_t dcall = 0;
    {
      LockGuard lock(mutex_);
      if (!armed_) return;
      call = ++extract_calls_;
      if (domain != kNoDomain) dcall = ++domain_calls_[domain];
      for (std::uint64_t d : plan_.delay_on_extract_calls) {
        if (d == call) delay = plan_.extract_delay;
      }
      if (domain != kNoDomain) {
        for (const ReplicaPlan& rp : plan_.replica_plans) {
          if (rp.domain != domain) continue;
          for (std::uint64_t s : rp.stall_on_calls) {
            if (s == dcall && rp.stall > delay) delay = rp.stall;
          }
        }
      }
    }
    // Sleep outside the lock so a stalled worker cannot block arm()/stats.
    if (delay.count() > 0) sleep_for(delay);
    {
      LockGuard lock(mutex_);
      if (!armed_) return;
      if (domain != kNoDomain) {
        for (const ReplicaPlan& rp : plan_.replica_plans) {
          if (rp.domain == domain && rp.kill_from_call != 0 &&
              dcall >= rp.kill_from_call) {
            throw ReplicaKilledError(
                "replica domain " + std::to_string(domain) +
                " killed from dispatch #" + std::to_string(rp.kill_from_call) +
                " (this is dispatch #" + std::to_string(dcall) + ")");
          }
        }
      }
      for (std::uint64_t t : plan_.throw_on_extract_calls) {
        if (t == call) {
          throw InjectedFaultError("injected fault on extract_batch call #" +
                                   std::to_string(call));
        }
      }
    }
  }

  /// Hook: checkpoint save asks whether to corrupt this write. One-shot —
  /// consuming clears the flag so only a single save is affected. Returns
  /// the plan seed through `seed_out` when corruption is due.
  bool consume_checkpoint_corruption(std::uint64_t& seed_out)
      TSDX_EXCLUDES(mutex_) {
    LockGuard lock(mutex_);
    if (!armed_ || !plan_.corrupt_next_checkpoint) return false;
    plan_.corrupt_next_checkpoint = false;
    seed_out = plan_.seed;
    return true;
  }

 private:
  Injector() = default;
  static void sleep_for(std::chrono::microseconds delay) {
    std::this_thread::sleep_for(delay);
  }

  mutable Mutex mutex_{"serve.fault_injector",
                       lockorder::Rank::kFaultInjector};
  FaultPlan plan_ TSDX_GUARDED_BY(mutex_);
  bool armed_ TSDX_GUARDED_BY(mutex_) = false;
  std::uint64_t extract_calls_ TSDX_GUARDED_BY(mutex_) = 0;
  /// Per-domain dispatch counters for the replica-scoped plans.
  std::map<int, std::uint64_t> domain_calls_ TSDX_GUARDED_BY(mutex_);
};

/// RAII armer for tests: arms on construction, disarms on scope exit so a
/// failing test cannot leak an armed plan into its neighbours.
class ScopedFaultPlan {
 public:
  explicit ScopedFaultPlan(FaultPlan plan) {
    Injector::instance().arm(std::move(plan));
  }
  ~ScopedFaultPlan() { Injector::instance().disarm(); }
  ScopedFaultPlan(const ScopedFaultPlan&) = delete;
  ScopedFaultPlan& operator=(const ScopedFaultPlan&) = delete;
};

}  // namespace tsdx::serve::fault
