#include "serve/fallback.hpp"

#include <algorithm>
#include <numeric>
#include <utility>

#include "baseline/majority.hpp"
#include "core/check.hpp"

namespace tsdx::serve {

MajorityFallback::MajorityFallback(
    const sdl::SlotLabels& labels,
    const std::array<float, sdl::kNumSlots>& confidence) {
  canned_.description = sdl::from_slot_labels(labels);
  canned_.confidence = confidence;
  canned_.warnings.push_back(kDegradedWarning);
  for (auto& w : sdl::validate(canned_.description)) {
    canned_.warnings.push_back(std::move(w));
  }
}

std::shared_ptr<MajorityFallback> MajorityFallback::fit(
    const data::Dataset& train) {
  TSDX_CHECK(!train.empty(), "MajorityFallback::fit: empty training set");
  baseline::MajorityPredictor predictor;
  predictor.fit(train);
  const sdl::SlotLabels labels = predictor.predict();
  // Confidence = majority-class frequency per slot.
  const auto hist = train.label_histogram();
  std::array<float, sdl::kNumSlots> confidence{};
  for (std::size_t s = 0; s < sdl::kNumSlots; ++s) {
    const auto total = std::accumulate(hist[s].begin(), hist[s].end(),
                                       std::size_t{0});
    confidence[s] = total == 0 ? 0.0f
                               : static_cast<float>(hist[s][labels[s]]) /
                                     static_cast<float>(total);
  }
  return std::make_shared<MajorityFallback>(labels, confidence);
}

core::ExtractionResult MajorityFallback::extract(
    const sim::VideoClip& clip) const {
  static_cast<void>(clip);  // the majority answer is clip-independent
  return canned_;
}

ExtractorFallback::ExtractorFallback(
    std::shared_ptr<const core::ScenarioExtractor> extractor)
    : extractor_(std::move(extractor)) {
  TSDX_CHECK(extractor_ != nullptr, "ExtractorFallback: extractor is null");
  TSDX_CHECK(extractor_->frozen(),
             "ExtractorFallback: fallback model must be frozen before "
             "serving (see InferenceServer's freeze contract)");
}

core::ExtractionResult ExtractorFallback::extract(
    const sim::VideoClip& clip) const {
  core::ExtractionResult result = extractor_->extract(clip);
  result.warnings.insert(result.warnings.begin(), kDegradedWarning);
  return result;
}

std::string ExtractorFallback::name() const {
  return extractor_->model().backbone().name();
}

}  // namespace tsdx::serve
