#include "serve/thread_pool.hpp"

#include "core/check.hpp"

namespace tsdx::serve {

ThreadPool::~ThreadPool() { join(); }

void ThreadPool::spawn(std::size_t count, std::function<void(std::size_t)> fn) {
  TSDX_CHECK(threads_.empty(), "ThreadPool::spawn: pool already spawned (",
             threads_.size(), " threads)");
  threads_.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    threads_.emplace_back([fn, i] { fn(i); });
  }
}

void ThreadPool::join() {
  for (auto& t : threads_) {
    if (t.joinable()) t.join();
  }
  threads_.clear();
}

void ThreadPool::run(std::size_t count,
                     const std::function<void(std::size_t)>& fn) {
  ThreadPool pool;
  pool.spawn(count, fn);
  pool.join();
}

}  // namespace tsdx::serve
