#include "serve/thread_pool.hpp"

#include <utility>

#include "core/check.hpp"

namespace tsdx::serve {

ThreadPool::~ThreadPool() { join(); }

void ThreadPool::spawn(std::size_t count, std::function<void(std::size_t)> fn) {
  LockGuard lock(mutex_);
  TSDX_CHECK(threads_.empty(), "ThreadPool::spawn: pool already spawned (",
             threads_.size(), " threads)");
  threads_.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    threads_.emplace_back([fn, i] { fn(i); });
  }
}

void ThreadPool::spawn_one(std::function<void()> fn) {
  LockGuard lock(mutex_);
  threads_.emplace_back(std::move(fn));
}

void ThreadPool::join() {
  // Joining happens outside the lock (a joined thread may itself be blocked
  // on something the lock-holder must release), and loops because a
  // concurrent spawn_one() may add a thread while we were joining the
  // previous batch.
  while (true) {
    std::vector<std::thread> batch;
    {
      LockGuard lock(mutex_);
      if (threads_.empty()) return;
      batch.swap(threads_);
    }
    for (auto& t : batch) {
      if (t.joinable()) t.join();
    }
  }
}

std::size_t ThreadPool::size() const {
  LockGuard lock(mutex_);
  return threads_.size();
}

void ThreadPool::run(std::size_t count,
                     const std::function<void(std::size_t)>& fn) {
  ThreadPool pool;
  pool.spawn(count, fn);
  pool.join();
}

}  // namespace tsdx::serve
