// admission.hpp — per-tenant admission control for the replica router.
//
// Two independent gates, both deterministic given the caller-supplied clock
// readings (tests drive them with synthetic time points):
//
//   1. Token-bucket rate limiting. The fleet-wide refill budget
//      (aggregate_rate_per_s) is split across tenants in proportion to their
//      weights; each tenant owns a bucket of depth rate x burst_seconds
//      (min 1) and one admit spends one token. A tenant that bursts past its
//      share is rejected (AdmitVerdict::kRateLimited) without touching any
//      replica queue — shedding at the front door is cheaper than shedding
//      after the clip has occupied queue capacity.
//
//   2. Weighted fair in-flight shares. When total admitted-but-unresolved
//      requests reach congestion_window, each tenant is capped at its
//      weighted share of the window (min 1). Below the threshold tenants
//      may freely borrow each other's idle capacity — the cap only bites
//      under contention, which is what makes it work-conserving weighted
//      fair queuing rather than a static partition.
//
// Unknown tenants are admitted with default_weight — the router does not
// require pre-registration, it just guarantees registered heavyweights their
// share.
#pragma once

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "core/annotations.hpp"
#include "obs/metrics.hpp"

namespace tsdx::serve {

struct TenantConfig {
  std::string name;
  /// Fair-share weight: a tenant with weight 2 gets twice the refill rate
  /// and twice the congestion in-flight cap of a tenant with weight 1.
  double weight = 1.0;
};

struct AdmissionConfig {
  /// Fleet-wide token refill rate (requests/s) split across tenants by
  /// weight. 0 disables rate limiting entirely.
  double aggregate_rate_per_s = 0.0;
  /// Bucket depth as seconds of refill (depth = rate x burst_seconds,
  /// floored at 1 token so a positive rate always admits singletons).
  double burst_seconds = 1.0;
  /// In-flight total at which per-tenant fair-share caps activate.
  /// 0 disables the congestion gate.
  std::size_t congestion_window = 0;
  /// Declared tenants (weights). Tenants not listed here get default_weight.
  std::vector<TenantConfig> tenants;
  double default_weight = 1.0;
};

enum class AdmitVerdict { kAdmitted, kRateLimited, kOverFairShare };

const char* to_string(AdmitVerdict verdict);

/// Thread-safe admission gate, one per Router. Exports route.admitted /
/// route.shed totals (shed = refused at the front door), a route.inflight
/// gauge, and per-tenant route.tenant.<name>.admitted / .rejected counters
/// into the registry.
class AdmissionController {
 public:
  using Clock = std::chrono::steady_clock;

  AdmissionController(AdmissionConfig config, obs::Registry& registry);

  AdmissionController(const AdmissionController&) = delete;
  AdmissionController& operator=(const AdmissionController&) = delete;

  /// Decide one request at time `now` (caller supplies the clock reading so
  /// tests are deterministic). kAdmitted charges one token and one in-flight
  /// slot to the tenant; the caller must balance each admit with exactly one
  /// on_done() when the request resolves (success or failure).
  AdmitVerdict admit(const std::string& tenant, Clock::time_point now)
      TSDX_EXCLUDES(mutex_);

  /// Release the in-flight slot charged by an admitted request.
  void on_done(const std::string& tenant) TSDX_EXCLUDES(mutex_);

  std::size_t in_flight() const TSDX_EXCLUDES(mutex_);
  std::uint64_t admitted() const { return admitted_total_.value(); }
  std::uint64_t rejected() const { return rejected_total_.value(); }
  std::uint64_t tenant_admitted(const std::string& tenant) const
      TSDX_EXCLUDES(mutex_);
  std::uint64_t tenant_rejected(const std::string& tenant) const
      TSDX_EXCLUDES(mutex_);

  const AdmissionConfig& config() const { return config_; }

 private:
  struct Tenant {
    double weight = 1.0;
    double tokens = 0.0;
    bool bucket_primed = false;  // first admit seeds a full bucket
    Clock::time_point last_refill{};
    std::size_t in_flight = 0;
    obs::Counter* admitted = nullptr;
    obs::Counter* rejected = nullptr;
  };

  Tenant& tenant_locked(const std::string& name) TSDX_REQUIRES(mutex_);
  /// This tenant's refill rate right now: weight / total_weight x aggregate.
  double rate_locked(const Tenant& tenant) const TSDX_REQUIRES(mutex_);
  double bucket_depth_locked(const Tenant& tenant) const
      TSDX_REQUIRES(mutex_);

  const AdmissionConfig config_;
  obs::Registry& registry_;
  obs::Counter& admitted_total_;
  obs::Counter& rejected_total_;
  obs::Gauge& inflight_gauge_;

  mutable Mutex mutex_{"route.admission", lockorder::Rank::kAdmission};
  std::map<std::string, Tenant> tenants_ TSDX_GUARDED_BY(mutex_);
  /// Sum of weights of every tenant seen so far (declared + dynamic).
  double total_weight_ TSDX_GUARDED_BY(mutex_) = 0.0;
  std::size_t total_in_flight_ TSDX_GUARDED_BY(mutex_) = 0;
};

}  // namespace tsdx::serve
