// queue.hpp — bounded MPMC queue with an explicit backpressure policy.
//
// The queue is the single coupling point between producers (client threads
// calling InferenceServer::submit) and consumers (worker threads forming
// micro-batches). Capacity is a hard bound; what happens when it is reached
// is a first-class configuration choice rather than an accident:
//
//   kBlock      producer waits for space (lossless, propagates backpressure
//               upstream; the right default for batch/offline callers).
//   kReject     push throws QueueFullError immediately (bounded latency;
//               the caller owns retry/backoff — typical RPC front door).
//   kShedOldest the oldest queued item is evicted and returned to the
//               pusher, which fails it; freshest work wins (typical for
//               live video feeds where a stale frame is worthless).
//
// All operations are mutex + condition-variable based: simple, portable, and
// clean under ThreadSanitizer. The serving workload is dominated by model
// forward passes (milliseconds), so lock contention on the queue is noise.
// The mutex is a tsdx::Mutex (rank kQueue, outermost of the worker-side
// hierarchy — see DESIGN.md §12), every shared field is TSDX_GUARDED_BY it,
// and CV waits are explicit loops so the guarded reads stay inside the
// function that visibly holds the capability.
#pragma once

#include <cstddef>
#include <deque>
#include <optional>
#include <vector>

#include "core/annotations.hpp"
#include "core/check.hpp"
#include "serve/error.hpp"

namespace tsdx::serve {

enum class OverflowPolicy { kBlock, kReject, kShedOldest };

const char* to_string(OverflowPolicy policy);

template <typename T>
class BoundedQueue {
 public:
  BoundedQueue(std::size_t capacity, OverflowPolicy policy)
      : capacity_(capacity), policy_(policy) {
    TSDX_CHECK(capacity_ >= 1, "BoundedQueue: capacity must be >= 1, got ",
               capacity_);
  }

  /// Enqueue one item, applying the overflow policy when at capacity.
  /// Returns the evicted item under kShedOldest (the caller must fail it);
  /// std::nullopt otherwise. Throws QueueFullError under kReject when full
  /// and ServerStoppedError if the queue has been closed.
  std::optional<T> push(T item) TSDX_EXCLUDES(mutex_) {
    UniqueLock lock(mutex_);
    if (closed_) throw ServerStoppedError("push on closed queue");
    std::optional<T> shed;
    if (items_.size() >= capacity_) {
      switch (policy_) {
        case OverflowPolicy::kBlock:
          while (items_.size() >= capacity_ && !closed_) {
            not_full_.wait(lock);
          }
          if (closed_) throw ServerStoppedError("push on closed queue");
          break;
        case OverflowPolicy::kReject:
          throw QueueFullError("request queue full (capacity " +
                               std::to_string(capacity_) + ")");
        case OverflowPolicy::kShedOldest:
          shed = std::move(items_.front());
          items_.pop_front();
          break;
      }
    }
    items_.push_back(std::move(item));
    not_empty_.notify_one();
    return shed;
  }

  /// Blocking pop: waits until an item is available or the queue is closed.
  /// After close(), keeps returning remaining items until empty, then
  /// std::nullopt (so a graceful drain can finish queued work).
  std::optional<T> pop() TSDX_EXCLUDES(mutex_) {
    UniqueLock lock(mutex_);
    while (items_.empty() && !closed_) {
      not_empty_.wait(lock);
    }
    return pop_locked();
  }

  /// Pop an item if one is available now or arrives before `deadline`;
  /// std::nullopt on timeout or when closed-and-empty. Used by the
  /// micro-batcher to top up a batch inside the batching window.
  ///
  /// Spurious-wakeup contract (audited; pinned by serve_test's
  /// BoundedQueueTimedPopTest): a wakeup that finds the queue still empty
  /// before `deadline` — whether spurious or from a notify that raced with
  /// another consumer taking the item — RE-WAITS for the remaining time
  /// instead of returning std::nullopt early. The explicit loop below makes
  /// that re-wait visible rather than delegating it to the predicate
  /// overload of wait_until; the loop exits only on (a) an item, (b) close,
  /// or (c) the deadline genuinely elapsing.
  template <typename Clock, typename Duration>
  std::optional<T> try_pop_until(
      const std::chrono::time_point<Clock, Duration>& deadline)
      TSDX_EXCLUDES(mutex_) {
    UniqueLock lock(mutex_);
    while (items_.empty() && !closed_) {
      if (not_empty_.wait_until(lock, deadline) == std::cv_status::timeout &&
          items_.empty() && !closed_) {
        return std::nullopt;
      }
    }
    return pop_locked();
  }

  /// Non-waiting pop: an item if immediately available, else std::nullopt.
  std::optional<T> try_pop() TSDX_EXCLUDES(mutex_) {
    LockGuard lock(mutex_);
    return pop_locked();
  }

  /// Close the queue: pushes fail from now on; blocked producers and
  /// consumers wake. Queued items stay poppable (graceful drain).
  void close() TSDX_EXCLUDES(mutex_) {
    LockGuard lock(mutex_);
    closed_ = true;
    not_empty_.notify_all();
    not_full_.notify_all();
  }

  /// Close and remove every queued item in FIFO order (hard shutdown: the
  /// caller fails the returned items' futures).
  std::vector<T> close_and_drain() TSDX_EXCLUDES(mutex_) {
    LockGuard lock(mutex_);
    closed_ = true;
    std::vector<T> leftover;
    leftover.reserve(items_.size());
    for (auto& item : items_) leftover.push_back(std::move(item));
    items_.clear();
    not_empty_.notify_all();
    not_full_.notify_all();
    return leftover;
  }

  std::size_t size() const TSDX_EXCLUDES(mutex_) {
    LockGuard lock(mutex_);
    return items_.size();
  }

  std::size_t capacity() const { return capacity_; }
  OverflowPolicy policy() const { return policy_; }

 private:
  std::optional<T> pop_locked() TSDX_REQUIRES(mutex_) {
    if (items_.empty()) return std::nullopt;
    std::optional<T> item(std::move(items_.front()));
    items_.pop_front();
    not_full_.notify_one();
    return item;
  }

  const std::size_t capacity_;
  const OverflowPolicy policy_;
  mutable Mutex mutex_{"serve.queue", lockorder::Rank::kQueue};
  CondVar not_empty_;
  CondVar not_full_;
  std::deque<T> items_ TSDX_GUARDED_BY(mutex_);
  bool closed_ TSDX_GUARDED_BY(mutex_) = false;
};

}  // namespace tsdx::serve
