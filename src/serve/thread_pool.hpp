// thread_pool.hpp — inter-op thread creation. Together with the intra-op
// pool in src/tensor/kernels/parallel_for.cpp these are the only places in
// the repo allowed to construct std::thread (enforced by tools/tsdx_lint.py,
// rule `raw-thread`).
//
// Centralizing thread creation keeps ownership/joining in a single audited
// spot: every thread in a tsdx process is an InferenceServer worker, its
// supervisor, a ThreadPool::run() fan-out, or a tsdx::par kernel worker, all
// of which join deterministically — there are no detached threads anywhere.
#pragma once

#include <cstddef>
#include <functional>
#include <thread>
#include <vector>

#include "core/annotations.hpp"

namespace tsdx::serve {

/// A set of named worker threads. Construction is explicit (spawn /
/// spawn_one), teardown is deterministic (join; the destructor joins as a
/// safety net). Internally synchronized: the InferenceServer supervisor may
/// spawn_one() a replacement worker while another thread is in join().
class ThreadPool {
 public:
  ThreadPool() = default;
  ~ThreadPool();
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Launch `count` threads, each running fn(worker_index). May be called
  /// once per pool lifetime (a pool is a batch of workers, not a task queue
  /// — the InferenceServer's request queue plays that role).
  void spawn(std::size_t count, std::function<void(std::size_t)> fn)
      TSDX_EXCLUDES(mutex_);

  /// Launch one additional thread running fn(). Used by the InferenceServer
  /// supervisor to restart a worker that died on a fault; safe to call
  /// concurrently with join() (the new thread is picked up by the join loop).
  void spawn_one(std::function<void()> fn) TSDX_EXCLUDES(mutex_);

  /// Block until every spawned thread — including any spawned concurrently
  /// with this call — has returned. Idempotent.
  void join() TSDX_EXCLUDES(mutex_);

  std::size_t size() const TSDX_EXCLUDES(mutex_);

  /// Spawn-run-join in one call: run fn(i) on `count` concurrent threads and
  /// wait for all of them. This is the sanctioned primitive for producer
  /// fan-out in tests and benches (see the raw-thread lint rule).
  static void run(std::size_t count,
                  const std::function<void(std::size_t)>& fn);

 private:
  mutable Mutex mutex_{"serve.thread_pool", lockorder::Rank::kThreadPool};
  std::vector<std::thread> threads_ TSDX_GUARDED_BY(mutex_);
};

}  // namespace tsdx::serve
