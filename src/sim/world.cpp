#include "sim/world.hpp"

#include <algorithm>
#include <stdexcept>

namespace tsdx::sim {

namespace sdl = tsdx::sdl;
using sdl::ActorAction;
using sdl::ActorType;
using sdl::EgoAction;
using sdl::RelativePosition;
using sdl::RoadLayout;

Footprint footprint(ActorType type) {
  switch (type) {
    case ActorType::kCar:
      return {4.4, 1.8};
    case ActorType::kTruck:
      return {7.5, 2.5};
    case ActorType::kPedestrian:
      return {0.7, 0.7};
    case ActorType::kCyclist:
      return {1.8, 0.8};
    case ActorType::kNone:
      break;
  }
  return {0.0, 0.0};
}

namespace {

template <class T>
T pick(Rng& rng, const std::vector<T>& options) {
  return options[static_cast<std::size_t>(rng.uniform_index(options.size()))];
}

double nominal_speed(ActorType type, Rng& rng) {
  double base = 0.0;
  switch (type) {
    case ActorType::kCar:
      base = 6.5;
      break;
    case ActorType::kTruck:
      base = 5.5;
      break;
    case ActorType::kPedestrian:
      base = 1.4;
      break;
    case ActorType::kCyclist:
      base = 3.5;
      break;
    case ActorType::kNone:
      break;
  }
  return base * rng.uniform(0.9, 1.1);
}

}  // namespace

sdl::ScenarioDescription sample_description(Rng& rng, double p_no_actor) {
  sdl::ScenarioDescription d;
  d.environment.road_layout =
      static_cast<RoadLayout>(rng.uniform_index(sdl::kNumRoadLayouts));
  d.environment.time_of_day =
      static_cast<sdl::TimeOfDay>(rng.uniform_index(sdl::kNumTimesOfDay));
  d.environment.weather =
      static_cast<sdl::Weather>(rng.uniform_index(sdl::kNumWeathers));
  d.environment.density = static_cast<sdl::TrafficDensity>(
      rng.uniform_index(sdl::kNumTrafficDensities));

  const RoadLayout layout = d.environment.road_layout;
  std::vector<EgoAction> ego_actions = {EgoAction::kCruise, EgoAction::kStop};
  if (layout == RoadLayout::kStraight) {
    ego_actions.push_back(EgoAction::kLaneChangeLeft);
    ego_actions.push_back(EgoAction::kLaneChangeRight);
  }
  if (has_junction(layout)) {
    ego_actions.push_back(EgoAction::kTurnLeft);
    ego_actions.push_back(EgoAction::kTurnRight);
  }
  d.ego_action = pick(rng, ego_actions);

  if (!rng.bernoulli(p_no_actor)) {
    ActorType type = static_cast<ActorType>(
        1 + rng.uniform_index(sdl::kNumActorTypes - 1));  // skip kNone

    std::vector<ActorAction> actions;
    switch (type) {
      case ActorType::kPedestrian:
        actions = {ActorAction::kCross, ActorAction::kStop};
        break;
      case ActorType::kCyclist:
        actions = {ActorAction::kCross, ActorAction::kCruise,
                   ActorAction::kStop};
        break;
      default:
        actions = {ActorAction::kCruise, ActorAction::kCruise,
                   ActorAction::kStop, ActorAction::kParked};
        if (has_junction(layout)) {
          actions.push_back(ActorAction::kTurnLeft);
          actions.push_back(ActorAction::kTurnRight);
        }
    }
    const ActorAction action = pick(rng, actions);

    std::vector<RelativePosition> positions;
    const bool is_vehicle =
        type == ActorType::kCar || type == ActorType::kTruck;
    switch (action) {
      case ActorAction::kCross:
        positions = {RelativePosition::kAhead};
        break;
      case ActorAction::kParked:
        positions = {RelativePosition::kLeft, RelativePosition::kRight};
        break;
      case ActorAction::kStop:
        positions = is_vehicle || type == ActorType::kCyclist
                        ? std::vector<RelativePosition>{RelativePosition::kAhead,
                                                        RelativePosition::kBehind}
                        : std::vector<RelativePosition>{RelativePosition::kLeft,
                                                        RelativePosition::kRight};
        break;
      case ActorAction::kTurnLeft:
      case ActorAction::kTurnRight:
        positions = {RelativePosition::kAhead, RelativePosition::kOncoming};
        break;
      case ActorAction::kCruise:
        positions = is_vehicle
                        ? std::vector<RelativePosition>{RelativePosition::kAhead,
                                                        RelativePosition::kBehind,
                                                        RelativePosition::kOncoming}
                        : std::vector<RelativePosition>{RelativePosition::kAhead,
                                                        RelativePosition::kRight};
        break;
      case ActorAction::kNone:
        break;
    }
    d.salient_actor = sdl::ActorDescription{type, action, pick(rng, positions)};
  }

  // Background actor count by density (the ego and salient actor do not
  // count toward density).
  std::size_t bg = 0;
  switch (d.environment.density) {
    case sdl::TrafficDensity::kSparse:
      bg = 0;
      break;
    case sdl::TrafficDensity::kMedium:
      bg = 2;
      break;
    case sdl::TrafficDensity::kDense:
      bg = 4;
      break;
  }
  for (std::size_t i = 0; i < bg; ++i) {
    const ActorType type =
        rng.bernoulli(0.25) ? ActorType::kTruck : ActorType::kCar;
    const bool parked = rng.bernoulli(0.4);
    sdl::ActorDescription a;
    a.type = type;
    a.action = parked ? ActorAction::kParked : ActorAction::kCruise;
    a.position = parked ? (rng.bernoulli(0.5) ? RelativePosition::kLeft
                                              : RelativePosition::kRight)
                        : (rng.bernoulli(0.5) ? RelativePosition::kOncoming
                                              : RelativePosition::kAhead);
    d.background_actors.push_back(a);
  }
  return d;
}

namespace {

/// Ego-lane arc radius on the curved layout (lane sits inside the centerline).
double curve_lane_radius() { return kCurveRadius - kEgoLaneX; }

Trajectory make_ego_trajectory(const sdl::ScenarioDescription& d, Rng& rng,
                               double ego_y0) {
  const double speed = kEgoSpeed * rng.uniform(0.9, 1.1);
  const Pose start{{kEgoLaneX, ego_y0}, kPi / 2.0};
  const RoadLayout layout = d.environment.road_layout;

  switch (d.ego_action) {
    case EgoAction::kCruise: {
      if (layout == RoadLayout::kCurve) {
        const double approach = -ego_y0;
        const double radius = curve_lane_radius();
        const double arc_angle =
            -(speed * kClipDuration - approach) / radius;  // right-hand bend
        return Trajectory::turn(start, speed, radius, approach, arc_angle);
      }
      return Trajectory::straight(start, speed);
    }
    case EgoAction::kStop: {
      // Stop just before the stop line / obstruction.
      const double stop_time = rng.uniform(2.0, 2.8);
      return Trajectory::decelerate_to_stop(start, speed, stop_time);
    }
    case EgoAction::kTurnLeft: {
      const double approach = -ego_y0 - 6.0;  // arc begins near the junction
      return Trajectory::turn(start, speed, 6.0, approach, kPi / 2.0);
    }
    case EgoAction::kTurnRight: {
      const double approach = -ego_y0 - 6.0;
      return Trajectory::turn(start, speed, 4.0, approach, -kPi / 2.0);
    }
    case EgoAction::kLaneChangeLeft:
      return Trajectory::lane_change(start, speed, kLaneWidth,
                                     rng.uniform(0.8, 1.2),
                                     rng.uniform(2.4, 2.9));
    case EgoAction::kLaneChangeRight:
      return Trajectory::lane_change(start, speed, -kLaneWidth,
                                     rng.uniform(0.8, 1.2),
                                     rng.uniform(2.4, 2.9));
  }
  return Trajectory::straight(start, speed);
}

Trajectory make_salient_trajectory(const sdl::ActorDescription& a, Rng& rng,
                                   double ego_y0) {
  const double speed = nominal_speed(a.type, rng);
  const double side_x = kRoadHalfWidth + 1.2;

  switch (a.action) {
    case ActorAction::kCross: {
      // Walk/ride across the road, ahead of the ego, right-to-left.
      const bool from_right = rng.bernoulli(0.5);
      const double x0 = from_right ? side_x + 0.5 : -side_x - 0.5;
      const double heading = from_right ? kPi : 0.0;  // toward -x / +x
      const double y = ego_y0 + rng.uniform(12.0, 18.0);
      return Trajectory::straight(Pose{{x0, y}, heading}, speed);
    }
    case ActorAction::kParked: {
      const double x = a.position == RelativePosition::kLeft ? -side_x : side_x;
      const double y = ego_y0 + rng.uniform(6.0, 16.0);
      return Trajectory::stationary(Pose{{x, y}, kPi / 2.0});
    }
    case ActorAction::kStop: {
      if (a.position == RelativePosition::kLeft ||
          a.position == RelativePosition::kRight) {
        // VRU waiting at the roadside.
        const double x =
            a.position == RelativePosition::kLeft ? -side_x : side_x;
        const double y = ego_y0 + rng.uniform(8.0, 14.0);
        return Trajectory::stationary(Pose{{x, y}, kPi});
      }
      const double y = a.position == RelativePosition::kBehind
                           ? ego_y0 - rng.uniform(7.0, 10.0)
                           : ego_y0 + rng.uniform(9.0, 13.0);
      return Trajectory::decelerate_to_stop(Pose{{kEgoLaneX, y}, kPi / 2.0},
                                            speed, rng.uniform(1.2, 2.0));
    }
    case ActorAction::kTurnLeft:
    case ActorAction::kTurnRight: {
      const double sign = a.action == ActorAction::kTurnLeft ? 1.0 : -1.0;
      if (a.position == RelativePosition::kOncoming) {
        const Pose start{{kOncomingLaneX, ego_y0 + 26.0}, -kPi / 2.0};
        const double approach = (ego_y0 + 26.0) - 6.0;
        return Trajectory::turn(start, speed, 5.0, approach,
                                sign * kPi / 2.0);
      }
      const Pose start{{kEgoLaneX, ego_y0 + 8.0}, kPi / 2.0};
      const double approach = -(ego_y0 + 8.0) - 5.0;
      return Trajectory::turn(start, speed, 5.0, std::max(2.0, approach),
                              sign * kPi / 2.0);
    }
    case ActorAction::kCruise: {
      switch (a.position) {
        case RelativePosition::kAhead: {
          const double x = a.type == ActorType::kCyclist
                               ? kRoadHalfWidth - 0.6
                               : kEgoLaneX;
          return Trajectory::straight(
              Pose{{x, ego_y0 + rng.uniform(8.0, 12.0)}, kPi / 2.0}, speed);
        }
        case RelativePosition::kBehind:
          return Trajectory::straight(
              Pose{{kEgoLaneX, ego_y0 - rng.uniform(7.0, 10.0)}, kPi / 2.0},
              speed * 1.2);
        case RelativePosition::kOncoming:
          return Trajectory::straight(
              Pose{{kOncomingLaneX, ego_y0 + rng.uniform(22.0, 30.0)},
                   -kPi / 2.0},
              speed);
        case RelativePosition::kRight:
          return Trajectory::straight(
              Pose{{kRoadHalfWidth - 0.6, ego_y0 + rng.uniform(6.0, 10.0)},
                   kPi / 2.0},
              speed);
        case RelativePosition::kLeft:
          return Trajectory::straight(
              Pose{{-kRoadHalfWidth + 0.6, ego_y0 + rng.uniform(6.0, 10.0)},
                   kPi / 2.0},
              speed);
        case RelativePosition::kNone:
          break;
      }
      break;
    }
    case ActorAction::kNone:
      break;
  }
  return Trajectory::stationary(Pose{{side_x, ego_y0 + 10.0}, kPi / 2.0});
}

Trajectory make_background_trajectory(const sdl::ActorDescription& a,
                                      Rng& rng, double ego_y0,
                                      std::size_t slot) {
  const double side_x = kRoadHalfWidth + 1.1;
  // Staggered longitudinal slots keep background agents from stacking.
  const double y = ego_y0 + 4.0 + 7.0 * static_cast<double>(slot) +
                   rng.uniform(-1.5, 1.5);
  if (a.action == ActorAction::kParked) {
    const double x = a.position == RelativePosition::kLeft ? -side_x : side_x;
    return Trajectory::stationary(Pose{{x, y}, kPi / 2.0});
  }
  if (a.position == RelativePosition::kOncoming) {
    return Trajectory::straight(
        Pose{{kOncomingLaneX, y + 18.0}, -kPi / 2.0},
        nominal_speed(a.type, rng));
  }
  return Trajectory::straight(Pose{{kEgoLaneX, y + 14.0}, kPi / 2.0},
                              nominal_speed(a.type, rng) * 0.9);
}

}  // namespace

World build_world(const sdl::ScenarioDescription& description, Rng& rng) {
  World world;
  world.description = description;
  world.duration = kClipDuration;

  const double ego_y0 = -14.0 + rng.uniform(-1.0, 1.0);
  world.ego = make_ego_trajectory(description, rng, ego_y0);

  if (description.salient_actor.type != ActorType::kNone) {
    Agent agent;
    agent.type = description.salient_actor.type;
    agent.is_salient = true;
    agent.trajectory =
        make_salient_trajectory(description.salient_actor, rng, ego_y0);
    world.actors.push_back(std::move(agent));
  }
  std::size_t slot = 0;
  for (const sdl::ActorDescription& a : description.background_actors) {
    Agent agent;
    agent.type = a.type;
    agent.is_salient = false;
    agent.trajectory = make_background_trajectory(a, rng, ego_y0, slot++);
    world.actors.push_back(std::move(agent));
  }
  return world;
}

World sample_world(Rng& rng, double p_no_actor) {
  return build_world(sample_description(rng, p_no_actor), rng);
}

}  // namespace tsdx::sim
