#include "sim/trajectory.hpp"

#include <algorithm>

namespace tsdx::sim {

Trajectory Trajectory::stationary(Pose pose) {
  return Trajectory([pose](double) { return pose; });
}

Trajectory Trajectory::straight(Pose start, double speed) {
  return Trajectory([start, speed](double t) {
    Pose p = start;
    p.pos = start.pos + unit(start.heading) * (speed * t);
    return p;
  });
}

Trajectory Trajectory::decelerate_to_stop(Pose start, double speed,
                                          double stop_time) {
  // Constant deceleration a = v/stop_time; distance covered s(t) = vt - at²/2.
  return Trajectory([start, speed, stop_time](double t) {
    const double tc = std::clamp(t, 0.0, stop_time);
    const double a = stop_time > 0.0 ? speed / stop_time : 0.0;
    const double s = speed * tc - 0.5 * a * tc * tc;
    Pose p = start;
    p.pos = start.pos + unit(start.heading) * s;
    return p;
  });
}

Trajectory Trajectory::lane_change(Pose start, double speed, double lateral,
                                   double t0, double t1) {
  return Trajectory([start, speed, lateral, t0, t1](double t) {
    const double along = speed * t;
    const double u = (t1 > t0) ? (t - t0) / (t1 - t0) : 1.0;
    const double off = lateral * smoothstep(u);
    Pose p = start;
    p.pos = start.pos + unit(start.heading) * along +
            left_normal(start.heading) * off;
    // Heading nudges toward the manoeuvre direction mid-change (visible yaw).
    const double mid = 4.0 * smoothstep(u) * (1.0 - smoothstep(u));
    p.heading = start.heading + 0.15 * mid * (lateral > 0 ? 1.0 : -1.0);
    return p;
  });
}

Trajectory Trajectory::turn(Pose start, double speed, double radius,
                            double approach_dist, double arc_angle) {
  return Trajectory([start, speed, radius, approach_dist, arc_angle](double t) {
    const double s = speed * t;  // distance along the path
    const double arc_len = radius * std::abs(arc_angle);

    if (s <= approach_dist) {
      Pose p = start;
      p.pos = start.pos + unit(start.heading) * s;
      return p;
    }
    // Pose at the start of the arc.
    const Vec2 arc_entry = start.pos + unit(start.heading) * approach_dist;
    const double side = arc_angle >= 0.0 ? 1.0 : -1.0;  // left or right turn
    const Vec2 center = arc_entry + left_normal(start.heading) * (side * radius);

    if (s <= approach_dist + arc_len) {
      const double frac = (s - approach_dist) / arc_len;  // 0..1 along the arc
      const double dheading = arc_angle * frac;
      // Vector from center to entry, rotated by the heading change.
      const Vec2 radial = (arc_entry - center).rotated(dheading);
      Pose p;
      p.pos = center + radial;
      p.heading = start.heading + dheading;
      return p;
    }
    // Exit straight.
    const double rest = s - approach_dist - arc_len;
    const double exit_heading = start.heading + arc_angle;
    const Vec2 radial_end = (arc_entry - center).rotated(arc_angle);
    Pose p;
    p.pos = center + radial_end + unit(exit_heading) * rest;
    p.heading = exit_heading;
    return p;
  });
}

Trajectory Trajectory::arc(Vec2 center, double radius, double start_angle,
                           double speed) {
  return Trajectory([center, radius, start_angle, speed](double t) {
    const double omega = radius > 0.0 ? speed / radius : 0.0;
    const double angle = start_angle + omega * t;
    Pose p;
    p.pos = center + unit(angle) * radius;
    // Tangent direction for counter-clockwise travel.
    p.heading = angle + kPi / 2.0 * (speed >= 0.0 ? 1.0 : -1.0);
    return p;
  });
}

}  // namespace tsdx::sim
