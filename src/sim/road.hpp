// road.hpp — road-network geometry for each SDL road layout.
//
// All layouts are centered on the world origin, which the ego vehicle
// approaches from the south (negative y). Roads are two-lane (one per
// direction), lane width kLaneWidth; the right-hand ("ego") lane of the
// main road is centered at x = +kLaneWidth/2, the oncoming lane at
// x = -kLaneWidth/2.
#pragma once

#include "sdl/taxonomy.hpp"
#include "sim/geometry.hpp"

namespace tsdx::sim {

inline constexpr double kLaneWidth = 3.5;            ///< meters
inline constexpr double kRoadHalfWidth = kLaneWidth;  ///< two lanes total
inline constexpr double kCurveRadius = 18.0;  ///< centerline radius of kCurve
inline constexpr double kStopLineY = -5.0;    ///< stop line south of origin

/// Center x of the ego-direction lane on the main (south-north) road.
inline constexpr double kEgoLaneX = kLaneWidth / 2.0;
/// Center x of the oncoming lane on the main road.
inline constexpr double kOncomingLaneX = -kLaneWidth / 2.0;

/// Center of the arc the kCurve layout bends around (curving to the right,
/// i.e. toward +x, as the ego drives north).
inline Vec2 curve_center() { return Vec2{kCurveRadius, 0.0}; }

/// Is `p` on drivable surface for `layout`?
bool is_on_road(sdl::RoadLayout layout, const Vec2& p);

/// Does the layout contain a junction the ego can turn at?
inline bool has_junction(sdl::RoadLayout layout) {
  return layout == sdl::RoadLayout::kIntersection4 ||
         layout == sdl::RoadLayout::kTJunction;
}

}  // namespace tsdx::sim
