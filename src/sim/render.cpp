#include "sim/render.hpp"

#include <algorithm>

namespace tsdx::sim {

namespace {

float time_brightness(sdl::TimeOfDay t) {
  switch (t) {
    case sdl::TimeOfDay::kDay:
      return 1.0f;
    case sdl::TimeOfDay::kDusk:
      return 0.65f;
    case sdl::TimeOfDay::kNight:
      return 0.35f;
  }
  return 1.0f;
}

float vehicle_intensity(sdl::ActorType t) {
  switch (t) {
    case sdl::ActorType::kCar:
      return 0.7f;
    case sdl::ActorType::kTruck:
      return 1.0f;
    case sdl::ActorType::kCyclist:
      return 0.6f;
    case sdl::ActorType::kPedestrian:
      return 0.9f;
    case sdl::ActorType::kNone:
      break;
  }
  return 0.0f;
}

}  // namespace

void render_frame(const World& world, const RenderConfig& cfg, double t,
                  Rng& noise_rng, float* out) {
  const std::int64_t h = cfg.height;
  const std::int64_t w = cfg.width;
  const double m_per_px = cfg.view_size / static_cast<double>(h);

  const Pose ego = world.ego.at(t);
  // View basis: for kNorthUp the camera axes are world-fixed (turns show as
  // ego-rectangle rotation); for kEgoAligned the view rotates with the ego
  // (turns show as world rotation, like a stabilized dashcam BEV).
  const bool ego_aligned = cfg.camera == CameraFrame::kEgoAligned;
  const Vec2 fwd = ego_aligned ? unit(ego.heading) : Vec2{0.0, 1.0};
  const Vec2 right = ego_aligned ? unit(ego.heading - kPi / 2.0)
                                 : Vec2{1.0, 0.0};
  const Vec2 cam = ego.pos + fwd * cfg.look_ahead;

  const auto& env = world.description.environment;
  const float road_level = 0.55f * time_brightness(env.time_of_day);
  const bool fog = env.weather == sdl::Weather::kFog;
  const bool rain = env.weather == sdl::Weather::kRain;
  const float noise_sigma = fog ? 0.10f : (rain ? 0.04f : 0.02f);

  // Actor poses at this instant (ego handled separately).
  std::vector<std::pair<const Agent*, Pose>> poses;
  poses.reserve(world.actors.size());
  for (const Agent& a : world.actors) poses.emplace_back(&a, a.trajectory.at(t));

  for (std::int64_t py = 0; py < h; ++py) {
    for (std::int64_t px = 0; px < w; ++px) {
      // Pixel row 0 is the top of the image (most-forward view point).
      const double vx = (static_cast<double>(px) - w / 2.0 + 0.5) * m_per_px;
      const double vy = (h / 2.0 - static_cast<double>(py) - 0.5) * m_per_px;
      const Vec2 p = cam + right * vx + fwd * vy;

      float road = 0.0f;
      if (is_on_road(env.road_layout, p)) {
        road = road_level;
        // Lane marking: faint bright line along the main-road center.
        if (std::abs(p.x) < 0.25) road = std::min(1.0f, road + 0.2f);
      }
      // Sensor/weather noise on the surface channel.
      road += static_cast<float>(noise_rng.normal()) * noise_sigma;
      if (rain && noise_rng.bernoulli(0.01)) road = 0.85f;
      if (fog) road = 0.5f * road + 0.18f;  // washed-out contrast

      float veh = 0.0f;
      float vru = 0.0f;
      float salient = 0.0f;
      // Ego vehicle: brightest rectangle.
      const Footprint ego_fp = footprint(sdl::ActorType::kCar);
      if (in_oriented_rect(p, ego, ego_fp.length, ego_fp.width)) {
        veh = std::max(veh, 1.0f);
      }
      for (const auto& [agent, pose] : poses) {
        const Footprint fp = footprint(agent->type);
        const bool is_vru = agent->type == sdl::ActorType::kPedestrian ||
                            agent->type == sdl::ActorType::kCyclist;
        if (in_oriented_rect(p, pose, fp.length, fp.width)) {
          const float level = vehicle_intensity(agent->type) *
                              (0.8f + 0.2f * time_brightness(env.time_of_day));
          if (is_vru) {
            vru = std::max(vru, level);
          } else {
            veh = std::max(veh, level);
          }
          if (agent->is_salient) salient = 1.0f;
        }
      }
      // Mild noise on the object channels too (detector imperfection).
      veh += static_cast<float>(noise_rng.normal()) * (noise_sigma * 0.5f);
      vru += static_cast<float>(noise_rng.normal()) * (noise_sigma * 0.5f);

      const std::size_t base = static_cast<std::size_t>(py * w + px);
      const std::size_t plane = static_cast<std::size_t>(h * w);
      out[base] = std::clamp(road, 0.0f, 1.0f);
      out[plane + base] = std::clamp(veh, 0.0f, 1.0f);
      out[2 * plane + base] = std::clamp(vru, 0.0f, 1.0f);
      out[3 * plane + base] = salient;  // tracker mask: crisp, noise-free
    }
  }
}

VideoClip render_clip(const World& world, const RenderConfig& cfg,
                      Rng& noise_rng) {
  VideoClip clip;
  clip.frames = cfg.frames;
  clip.height = cfg.height;
  clip.width = cfg.width;
  clip.data.resize(static_cast<std::size_t>(cfg.frames * kNumChannels *
                                            cfg.height * cfg.width));
  const double dt = cfg.frames > 1
                        ? world.duration / static_cast<double>(cfg.frames - 1)
                        : 0.0;
  for (std::int64_t f = 0; f < cfg.frames; ++f) {
    float* frame = clip.data.data() +
                   static_cast<std::size_t>(f * kNumChannels * cfg.height *
                                            cfg.width);
    render_frame(world, cfg, dt * static_cast<double>(f), noise_rng, frame);
  }
  return clip;
}

std::string ascii_frame(const VideoClip& clip, std::int64_t frame) {
  std::string out;
  out.reserve(static_cast<std::size_t>((clip.width + 1) * clip.height));
  for (std::int64_t y = 0; y < clip.height; ++y) {
    for (std::int64_t x = 0; x < clip.width; ++x) {
      const float road = clip.at(frame, 0, y, x);
      const float veh = clip.at(frame, 1, y, x);
      const float vru = clip.at(frame, 2, y, x);
      char c = ' ';
      if (road > 0.15f) c = '.';
      if (vru > 0.3f) c = 'o';
      if (veh > 0.3f) c = '#';
      out += c;
    }
    out += '\n';
  }
  return out;
}

}  // namespace tsdx::sim
