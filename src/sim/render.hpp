// render.hpp — rasterizer: World -> video tensor.
//
// The camera is an ego-centered, north-up bird's-eye view (the standard
// HD-map-style input used by AV perception stacks; it substitutes for the
// paper's dashcam footage while preserving the learning problem — appearance
// carries the environment slots, motion across frames carries the action
// slots).
//
// Channels:
//   0: drivable surface, modulated by time-of-day brightness and weather
//      noise (fog lowers contrast, rain adds speckle)
//   1: vehicles (ego + cars/trucks) as oriented rectangles; ego is brightest
//   2: vulnerable road users (pedestrians/cyclists) as blobs
//   3: tracked-object mask covering the *salient* actor only. Upstream AV
//      stacks hand the description extractor detector/tracker output in
//      which the primary agent is marked; this channel plays that role and
//      keeps "which actor is the subject" out of the extraction problem,
//      exactly as a detection-conditioned pipeline would.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sim/world.hpp"

namespace tsdx::sim {

/// Camera reference frame.
enum class CameraFrame : std::uint8_t {
  kNorthUp = 0,  ///< HD-map style: axes fixed to the world, ego rotates
  kEgoAligned,   ///< dashcam-BEV style: ego always points up, world rotates
};

struct RenderConfig {
  std::int64_t height = 64;
  std::int64_t width = 64;
  double view_size = 36.0;  ///< meters covered by the view (square)
  /// Forward bias: the camera center sits this many meters ahead of the ego
  /// (along +y for kNorthUp, along the ego heading for kEgoAligned) so more
  /// of the upcoming scene is visible.
  double look_ahead = 6.0;
  std::int64_t frames = 8;  ///< frames per clip, uniform over the duration
  CameraFrame camera = CameraFrame::kNorthUp;
};

inline constexpr std::int64_t kNumChannels = 4;

/// A rendered clip: row-major [frames, channels, height, width] in [0, 1].
struct VideoClip {
  std::int64_t frames = 0;
  std::int64_t height = 0;
  std::int64_t width = 0;
  std::vector<float> data;

  std::size_t index(std::int64_t t, std::int64_t c, std::int64_t y,
                    std::int64_t x) const {
    return static_cast<std::size_t>(
        ((t * kNumChannels + c) * height + y) * width + x);
  }
  float at(std::int64_t t, std::int64_t c, std::int64_t y,
           std::int64_t x) const {
    return data[index(t, c, y, x)];
  }
};

/// Render one frame at time `t` into `out` (size channels*H*W). `noise_rng`
/// drives weather/sensor noise and should be a per-clip stream so clips are
/// reproducible.
void render_frame(const World& world, const RenderConfig& cfg, double t,
                  Rng& noise_rng, float* out);

/// Render the full clip; frame i is at time i * duration/(frames-1)
/// (a single-frame clip renders t = 0).
VideoClip render_clip(const World& world, const RenderConfig& cfg,
                      Rng& noise_rng);

/// ASCII-art visualization of one frame (for examples and debugging):
/// '#': vehicle, 'o': VRU, '.': road, ' ': off-road.
std::string ascii_frame(const VideoClip& clip, std::int64_t frame);

}  // namespace tsdx::sim
