// trajectory.hpp — parametric, closed-form motion profiles.
//
// Every agent's motion is a pure function of time, which makes clips exactly
// reproducible, keeps behaviours trivially composable, and removes any need
// for numeric integration. The factory functions below cover the SDL action
// vocabulary; each returns a value-type Trajectory.
#pragma once

#include <functional>

#include "sim/geometry.hpp"

namespace tsdx::sim {

class Trajectory {
 public:
  /// Default: parked at the origin facing north.
  Trajectory() : fn_([](double) { return Pose{}; }) {}

  Pose at(double t) const { return fn_(t); }

  // ---- factories -----------------------------------------------------------

  /// Never moves.
  static Trajectory stationary(Pose pose);

  /// Constant speed along the start heading.
  static Trajectory straight(Pose start, double speed);

  /// Constant deceleration from `speed` to rest, stopping exactly at
  /// `stop_time` seconds; stays put afterwards.
  static Trajectory decelerate_to_stop(Pose start, double speed,
                                       double stop_time);

  /// Drive along the heading while easing a lateral offset of `lateral`
  /// meters (positive = to the left of travel) between t0 and t1.
  static Trajectory lane_change(Pose start, double speed, double lateral,
                                double t0, double t1);

  /// Straight for `approach_dist` meters, then a circular arc of signed
  /// `arc_angle` (positive = left turn) with radius `radius`, then straight
  /// again — the standard junction turn. Speed is constant along the path.
  static Trajectory turn(Pose start, double speed, double radius,
                         double approach_dist, double arc_angle);

  /// Full-circle arc around `center` starting at `start_angle` (position
  /// angle on the circle), angular velocity derived from speed/radius;
  /// positive speed drives counter-clockwise. Used for driving along the
  /// curved road layout.
  static Trajectory arc(Vec2 center, double radius, double start_angle,
                        double speed);

 private:
  explicit Trajectory(std::function<Pose(double)> fn) : fn_(std::move(fn)) {}
  std::function<Pose(double)> fn_;
};

}  // namespace tsdx::sim
