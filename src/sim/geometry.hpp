// geometry.hpp — 2-D geometry primitives for the traffic world.
//
// Conventions: world coordinates in meters, +y is "north" (the ego vehicle's
// initial driving direction), heading is the angle from the +x axis in
// radians (so the initial ego heading is pi/2).
#pragma once

#include <cmath>

namespace tsdx::sim {

inline constexpr double kPi = 3.14159265358979323846;

struct Vec2 {
  double x = 0.0;
  double y = 0.0;

  Vec2 operator+(const Vec2& o) const { return {x + o.x, y + o.y}; }
  Vec2 operator-(const Vec2& o) const { return {x - o.x, y - o.y}; }
  Vec2 operator*(double s) const { return {x * s, y * s}; }
  double dot(const Vec2& o) const { return x * o.x + y * o.y; }
  double norm() const { return std::sqrt(x * x + y * y); }

  /// Rotate counter-clockwise by `angle` radians.
  Vec2 rotated(double angle) const {
    const double c = std::cos(angle), s = std::sin(angle);
    return {c * x - s * y, s * x + c * y};
  }
};

/// Unit vector at angle `heading` from +x.
inline Vec2 unit(double heading) {
  return {std::cos(heading), std::sin(heading)};
}

/// Left-hand normal of `heading` (i.e. heading + 90 degrees).
inline Vec2 left_normal(double heading) { return unit(heading + kPi / 2.0); }

struct Pose {
  Vec2 pos;
  double heading = kPi / 2.0;  ///< radians from +x; pi/2 = driving north
};

/// Smoothstep easing on [0, 1]: 3u^2 - 2u^3, clamped.
inline double smoothstep(double u) {
  if (u <= 0.0) return 0.0;
  if (u >= 1.0) return 1.0;
  return u * u * (3.0 - 2.0 * u);
}

/// Is point `p` inside the oriented rectangle centered at `pose.pos`, with
/// `length` along the heading and `width` across it?
inline bool in_oriented_rect(const Vec2& p, const Pose& pose, double length,
                             double width) {
  const Vec2 d = p - pose.pos;
  const Vec2 fwd = unit(pose.heading);
  const Vec2 left = left_normal(pose.heading);
  return std::abs(d.dot(fwd)) <= length / 2.0 &&
         std::abs(d.dot(left)) <= width / 2.0;
}

/// Wrap an angle to (-pi, pi].
inline double wrap_angle(double a) {
  while (a > kPi) a -= 2.0 * kPi;
  while (a <= -kPi) a += 2.0 * kPi;
  return a;
}

}  // namespace tsdx::sim
