#include "sim/clipgen.hpp"

namespace tsdx::sim {

LabeledClip ClipGenerator::generate() {
  // Split per-clip streams so a change in render noise consumption can never
  // perturb the scenario sequence (and vice versa).
  Rng scenario_rng = rng_.split();
  Rng noise_rng = rng_.split();
  World world = sample_world(scenario_rng);
  LabeledClip clip;
  clip.description = world.description;
  clip.video = render_clip(world, config_, noise_rng);
  return clip;
}

LabeledClip ClipGenerator::generate_for(
    const sdl::ScenarioDescription& description) {
  Rng jitter_rng = rng_.split();
  Rng noise_rng = rng_.split();
  World world = build_world(description, jitter_rng);
  LabeledClip clip;
  clip.description = world.description;
  clip.video = render_clip(world, config_, noise_rng);
  return clip;
}

}  // namespace tsdx::sim
