#include "sim/road.hpp"

namespace tsdx::sim {

bool is_on_road(sdl::RoadLayout layout, const Vec2& p) {
  switch (layout) {
    case sdl::RoadLayout::kStraight:
      return std::abs(p.x) <= kRoadHalfWidth;
    case sdl::RoadLayout::kCurve: {
      // South of the origin the road is still straight (the ego approach);
      // north of it the centerline bends around curve_center().
      if (p.y <= 0.0) return std::abs(p.x) <= kRoadHalfWidth;
      const double r = (p - curve_center()).norm();
      return std::abs(r - kCurveRadius) <= kRoadHalfWidth;
    }
    case sdl::RoadLayout::kIntersection4:
      return std::abs(p.x) <= kRoadHalfWidth || std::abs(p.y) <= kRoadHalfWidth;
    case sdl::RoadLayout::kTJunction:
      // Main south-north road plus an east arm.
      return std::abs(p.x) <= kRoadHalfWidth ||
             (std::abs(p.y) <= kRoadHalfWidth && p.x >= 0.0);
  }
  return false;
}

}  // namespace tsdx::sim
