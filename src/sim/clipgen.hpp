// clipgen.hpp — the dataset-facing entry point of the simulator:
// one call = one labeled clip.
#pragma once

#include "sim/render.hpp"
#include "sim/world.hpp"

namespace tsdx::sim {

/// A labeled example: rendered video plus exact ground-truth description.
struct LabeledClip {
  VideoClip video;
  sdl::ScenarioDescription description;
};

/// Deterministic clip generator. Two generators constructed with the same
/// config and seed produce identical sequences of labeled clips.
class ClipGenerator {
 public:
  ClipGenerator(RenderConfig config, std::uint64_t seed)
      : config_(config), rng_(seed) {}

  /// Sample a fresh scenario and render it.
  LabeledClip generate();

  /// Render a clip for a *given* description (used by retrieval experiments
  /// that need multiple clips of the same scenario).
  LabeledClip generate_for(const sdl::ScenarioDescription& description);

  const RenderConfig& config() const { return config_; }

 private:
  RenderConfig config_;
  Rng rng_;
};

}  // namespace tsdx::sim
