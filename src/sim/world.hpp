// world.hpp — concrete scenario instances and the scenario sampler.
//
// A World is a fully-determined episode: the environment, one trajectory per
// agent, and the ground-truth ScenarioDescription it realizes. The sampler
// draws a *semantically valid* description (it respects sdl::validate by
// construction) and instantiates trajectories with bounded random jitter so
// that two clips with the same description still differ in appearance.
#pragma once

#include <vector>

#include "sdl/description.hpp"
#include "sim/road.hpp"
#include "sim/trajectory.hpp"
#include "tensor/rng.hpp"

namespace tsdx::sim {

using tensor::Rng;

/// Episode length in seconds; frames are sampled uniformly inside it.
inline constexpr double kClipDuration = 4.0;
/// Nominal ego cruising speed (m/s).
inline constexpr double kEgoSpeed = 8.0;

struct Agent {
  sdl::ActorType type = sdl::ActorType::kCar;
  Trajectory trajectory;
  bool is_salient = false;
};

struct World {
  sdl::ScenarioDescription description;
  Trajectory ego;
  std::vector<Agent> actors;
  double duration = kClipDuration;
};

/// Footprint (length, width in meters) used for rendering and overlap checks.
struct Footprint {
  double length;
  double width;
};
Footprint footprint(sdl::ActorType type);

/// Draw a semantically valid ScenarioDescription. `p_no_actor` is the
/// probability that the scene has no salient actor.
sdl::ScenarioDescription sample_description(Rng& rng,
                                            double p_no_actor = 0.15);

/// Instantiate trajectories for a description. Jitter (start offsets, speed
/// scale) is drawn from `rng`; the returned world's `description` echoes the
/// input (background actors may be adjusted to what was actually placed).
World build_world(const sdl::ScenarioDescription& description, Rng& rng);

/// sample_description + build_world in one call.
World sample_world(Rng& rng, double p_no_actor = 0.15);

}  // namespace tsdx::sim
