// attention.hpp — multi-head self-attention and the transformer encoder.
#pragma once

#include <memory>
#include <vector>

#include "nn/layers.hpp"

namespace tsdx::nn {

/// Standard multi-head scaled dot-product self-attention over a token
/// sequence x of shape [B, T, D]. D must be divisible by the head count.
class MultiHeadAttention : public Module {
 public:
  MultiHeadAttention(std::int64_t dim, std::int64_t heads, float dropout_p,
                     Rng& rng);

  Tensor forward(const Tensor& x) const;

  std::int64_t heads() const { return heads_; }

 private:
  std::int64_t dim_;
  std::int64_t heads_;
  std::int64_t head_dim_;
  Linear wq_;
  Linear wk_;
  Linear wv_;
  Linear proj_;
  Dropout attn_drop_;
  Dropout proj_drop_;
};

/// Pre-LayerNorm transformer encoder block:
///   x = x + MHA(LN(x));  x = x + MLP(LN(x))
class TransformerEncoderLayer : public Module {
 public:
  TransformerEncoderLayer(std::int64_t dim, std::int64_t heads,
                          std::int64_t mlp_hidden, float dropout_p, Rng& rng);

  Tensor forward(const Tensor& x) const;

 private:
  LayerNorm norm1_;
  MultiHeadAttention attn_;
  LayerNorm norm2_;
  Mlp mlp_;
};

/// A stack of encoder layers followed by a final LayerNorm.
class TransformerEncoder : public Module {
 public:
  TransformerEncoder(std::int64_t depth, std::int64_t dim, std::int64_t heads,
                     std::int64_t mlp_hidden, float dropout_p, Rng& rng);

  Tensor forward(const Tensor& x) const;

  std::int64_t depth() const { return static_cast<std::int64_t>(layers_.size()); }

 private:
  std::vector<std::unique_ptr<TransformerEncoderLayer>> layers_;
  LayerNorm final_norm_;
};

}  // namespace tsdx::nn
