// serialize.hpp — checkpoint save/load.
//
// Format (little-endian binary):
//   magic "TSDX" | u32 version | u64 param_count |
//   per param: u32 name_len | name bytes | u32 rank | i64 dims... | f32 data...
//
// Loading matches parameters by dotted path name and requires exact shape
// agreement, so checkpoints are robust to registration-order changes but not
// to architecture changes (by design — fail loudly).
#pragma once

#include <string>

#include "nn/module.hpp"

namespace tsdx::nn {

void save_checkpoint(const Module& module, const std::string& path);

/// Throws std::runtime_error on missing file, unknown parameter names,
/// missing parameters, or shape mismatches.
void load_checkpoint(Module& module, const std::string& path);

}  // namespace tsdx::nn
