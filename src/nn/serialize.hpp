// serialize.hpp — checkpoint save/load.
//
// Format v2 (little-endian binary):
//   magic "TSDX" | u32 version | u64 param_count |
//   per param: u32 name_len | name bytes | u32 rank | i64 dims... | f32 data...
//   | u32 crc32 footer (CRC-32/ISO-HDLC over every preceding byte)
//
// Integrity contract:
//   * save_checkpoint is atomic: the bytes are written to `path + ".tmp"`
//     and renamed into place only after a successful write, so a crash
//     mid-save can leave a stale .tmp file behind but never a truncated
//     checkpoint under the real name (serialize_test pins the recovery).
//   * load_checkpoint verifies the CRC footer before touching a single
//     parameter, so a corrupt or truncated file throws
//     CheckpointCorruptError (with byte-offset diagnostics) and leaves the
//     module's weights exactly as they were.
//   * load_checkpoint_or_fallback is the serving-bootstrap entry point: it
//     degrades a missing/corrupt checkpoint to "keep the module's current
//     (initialized) weights" instead of crashing the process, and reports
//     which of the three outcomes happened.
//
// Loading matches parameters by dotted path name and requires exact shape
// agreement, so checkpoints are robust to registration-order changes but not
// to architecture changes (by design — fail loudly).
#pragma once

#include <cstddef>
#include <cstdint>
#include <stdexcept>
#include <string>

#include "nn/module.hpp"

namespace tsdx::nn {

/// The checkpoint bytes fail integrity checking: bad magic, truncation, a
/// CRC footer mismatch, or trailing garbage. `byte_offset()` names where in
/// the file the check failed (for a CRC mismatch: the footer's offset, i.e.
/// the end of the protected payload).
class CheckpointCorruptError : public std::runtime_error {
 public:
  CheckpointCorruptError(const std::string& what_arg, std::size_t byte_offset)
      : std::runtime_error(what_arg + " (at byte offset " +
                           std::to_string(byte_offset) + ")"),
        byte_offset_(byte_offset) {}

  std::size_t byte_offset() const { return byte_offset_; }

 private:
  std::size_t byte_offset_;
};

/// CRC-32/ISO-HDLC (the zlib polynomial), exposed for tests.
std::uint32_t crc32(const void* data, std::size_t size);

/// Atomic save: write to `path + ".tmp"`, then rename over `path`. Throws
/// std::runtime_error on I/O failure (the .tmp file is removed).
void save_checkpoint(const Module& module, const std::string& path);

/// Throws std::runtime_error on missing file, unknown parameter names,
/// missing parameters, or shape mismatches; CheckpointCorruptError (a
/// runtime_error) on integrity failures. The module is never partially
/// mutated: integrity is verified before any parameter is written.
void load_checkpoint(Module& module, const std::string& path);

/// Outcome of load_checkpoint_or_fallback.
enum class CheckpointLoad {
  kLoaded,           ///< checkpoint verified and applied
  kMissingKeptInit,  ///< no file; module keeps its current weights
  kCorruptKeptInit,  ///< integrity failure; module keeps its current weights
};

const char* to_string(CheckpointLoad outcome);

/// Serving-bootstrap loader: a missing or corrupt checkpoint degrades to
/// the module's current (e.g. freshly initialized, or cheap-baseline)
/// weights instead of crashing. Structural mismatches — unknown parameter
/// names, wrong shapes, wrong version — still throw: those are deployment
/// bugs, not runtime corruption, and silently serving the wrong
/// architecture would be worse than refusing to start.
CheckpointLoad load_checkpoint_or_fallback(Module& module,
                                           const std::string& path);

}  // namespace tsdx::nn
