#include "nn/layers.hpp"

#include <cmath>

namespace tsdx::nn {

Linear::Linear(std::int64_t in_features, std::int64_t out_features, Rng& rng)
    : in_(in_features), out_(out_features) {
  // Xavier/Glorot uniform: U(-a, a), a = sqrt(6 / (fan_in + fan_out)).
  const float a = std::sqrt(6.0f / static_cast<float>(in_ + out_));
  weight_ = register_parameter(
      "weight", Tensor::rand_uniform({in_, out_}, rng, -a, a));
  bias_ = register_parameter("bias", Tensor::zeros({out_}));
}

Tensor Linear::forward(const Tensor& x) const {
  return tensor::add(tensor::matmul(x, weight_), bias_);
}

LayerNorm::LayerNorm(std::int64_t dim, float eps) : eps_(eps) {
  gamma_ = register_parameter("gamma", Tensor::ones({dim}));
  beta_ = register_parameter("beta", Tensor::zeros({dim}));
}

Tensor LayerNorm::forward(const Tensor& x) const {
  return tensor::layer_norm(x, gamma_, beta_, eps_);
}

Embedding::Embedding(std::int64_t vocab, std::int64_t dim, Rng& rng) {
  table_ = register_parameter("table",
                              Tensor::randn({vocab, dim}, rng, 0.02f));
}

Mlp::Mlp(std::int64_t dim, std::int64_t hidden, float dropout_p, Rng& rng)
    : fc1_(dim, hidden, rng), fc2_(hidden, dim, rng), drop_(dropout_p, rng) {
  register_module("fc1", fc1_);
  register_module("fc2", fc2_);
  register_module("drop", drop_);
}

Tensor Mlp::forward(const Tensor& x) const {
  return fc2_.forward(drop_.forward(tensor::gelu(fc1_.forward(x))));
}

}  // namespace tsdx::nn
