#include "nn/module.hpp"

#include <stdexcept>

namespace tsdx::nn {

Tensor Module::register_parameter(std::string name, Tensor value) {
  if (!value.requires_grad()) {
    // Parameters must always be grad-tracked, even if constructed under a
    // NoGradGuard; rebuild the leaf explicitly.
    value = tensor::make_tensor(value.shape(),
                                std::vector<float>(value.data().begin(),
                                                   value.data().end()),
                                /*requires_grad=*/false);
    value.node()->requires_grad = true;
  }
  params_.emplace_back(std::move(name), value);
  return params_.back().second;
}

void Module::register_module(std::string name, Module& child) {
  if (&child == this) throw std::logic_error("module cannot register itself");
  children_.emplace_back(std::move(name), &child);
}

void Module::visit(
    const std::string& prefix,
    const std::function<void(const std::string&, const Tensor&)>& fn) const {
  for (const auto& [name, t] : params_) {
    fn(prefix.empty() ? name : prefix + "." + name, t);
  }
  for (const auto& [name, child] : children_) {
    child->visit(prefix.empty() ? name : prefix + "." + name, fn);
  }
}

std::vector<Tensor> Module::parameters() const {
  std::vector<Tensor> out;
  visit("", [&out](const std::string&, const Tensor& t) { out.push_back(t); });
  return out;
}

std::vector<std::pair<std::string, Tensor>> Module::named_parameters() const {
  std::vector<std::pair<std::string, Tensor>> out;
  visit("", [&out](const std::string& name, const Tensor& t) {
    out.emplace_back(name, t);
  });
  return out;
}

std::int64_t Module::num_parameters() const {
  std::int64_t n = 0;
  for (const Tensor& t : parameters()) n += t.numel();
  return n;
}

void Module::zero_grad() {
  for (Tensor t : parameters()) t.zero_grad();
}

void Module::set_training(bool training) {
  training_ = training;
  for (auto& [name, child] : children_) child->set_training(training);
}

}  // namespace tsdx::nn
