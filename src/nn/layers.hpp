// layers.hpp — fundamental trainable layers.
#pragma once

#include "nn/module.hpp"
#include "tensor/nn_ops.hpp"
#include "tensor/ops.hpp"

namespace tsdx::nn {

/// y = x W + b, applied over the last dim: [..., in] -> [..., out].
class Linear : public Module {
 public:
  /// Xavier-uniform weight init, zero bias.
  Linear(std::int64_t in_features, std::int64_t out_features, Rng& rng);

  Tensor forward(const Tensor& x) const;

  std::int64_t in_features() const { return in_; }
  std::int64_t out_features() const { return out_; }

 private:
  std::int64_t in_;
  std::int64_t out_;
  Tensor weight_;  ///< [in, out]
  Tensor bias_;    ///< [out]
};

/// Layer normalization over the last dim with learned gamma/beta.
class LayerNorm : public Module {
 public:
  explicit LayerNorm(std::int64_t dim, float eps = 1e-5f);

  Tensor forward(const Tensor& x) const;

 private:
  float eps_;
  Tensor gamma_;
  Tensor beta_;
};

/// Inverted dropout; identity in eval mode, when p == 0, or inside a
/// no-grad (inference) region.
class Dropout : public Module {
 public:
  /// `rng` must outlive the module (the owning model holds it).
  Dropout(float p, Rng& rng) : p_(p), rng_(&rng) {}

  Tensor forward(const Tensor& x) const {
    // The NoGradGuard test makes every inference forward deterministic and
    // RNG-free even if the caller forgot set_training(false): advancing the
    // shared training Rng behind a const predict()/extract() call would be
    // a data race under concurrent serving (see src/serve/server.hpp).
    if (!training() || p_ == 0.0f || tensor::NoGradGuard::active()) return x;
    return tensor::dropout(x, p_, *rng_);
  }

 private:
  float p_;
  Rng* rng_;
};

/// A learned lookup table [vocab, dim]; also usable as a bank of learned
/// positional embeddings (call `table()` and add it directly).
class Embedding : public Module {
 public:
  Embedding(std::int64_t vocab, std::int64_t dim, Rng& rng);

  /// Gather rows: indices (N) -> [N, dim].
  Tensor forward(const std::vector<std::int64_t>& indices) const {
    return tensor::embedding_lookup(table_, indices);
  }

  const Tensor& table() const { return table_; }

 private:
  Tensor table_;
};

/// Two-layer GELU MLP: Linear -> GELU -> Dropout -> Linear.
class Mlp : public Module {
 public:
  Mlp(std::int64_t dim, std::int64_t hidden, float dropout_p, Rng& rng);

  Tensor forward(const Tensor& x) const;

 private:
  Linear fc1_;
  Linear fc2_;
  Dropout drop_;
};

}  // namespace tsdx::nn
