#include "nn/lstm.hpp"

#include "core/check.hpp"

namespace tsdx::nn {

namespace tt = tsdx::tensor;

Lstm::Lstm(std::int64_t input_dim, std::int64_t hidden_dim, Rng& rng)
    : input_(input_dim),
      hidden_(hidden_dim),
      gates_(input_dim + hidden_dim, 4 * hidden_dim, rng) {
  register_module("gates", gates_);
}

std::pair<Tensor, Tensor> Lstm::step(const Tensor& xt, const Tensor& h,
                                     const Tensor& c) const {
  const Tensor zcat = tt::concat({xt, h}, /*dim=*/1);  // [B, In+H]
  const Tensor z = gates_.forward(zcat);               // [B, 4H]
  const Tensor i = tt::sigmoid(tt::slice(z, 1, 0 * hidden_, hidden_));
  const Tensor f = tt::sigmoid(tt::slice(z, 1, 1 * hidden_, hidden_));
  const Tensor g = tt::tanh(tt::slice(z, 1, 2 * hidden_, hidden_));
  const Tensor o = tt::sigmoid(tt::slice(z, 1, 3 * hidden_, hidden_));
  const Tensor c_new = tt::add(tt::mul(f, c), tt::mul(i, g));
  const Tensor h_new = tt::mul(o, tt::tanh(c_new));
  return {h_new, c_new};
}

Tensor Lstm::forward(const Tensor& x) const {
  TSDX_SHAPE_ASSERT(x.rank() == 3 && x.dim(2) == input_, "Lstm: expected [B, T, ",
                    input_, "], got ", tt::to_string(x.shape()));
  const std::int64_t b = x.dim(0);
  const std::int64_t t = x.dim(1);
  Tensor h = Tensor::zeros({b, hidden_});
  Tensor c = Tensor::zeros({b, hidden_});
  for (std::int64_t step_i = 0; step_i < t; ++step_i) {
    const Tensor xt =
        tt::reshape(tt::slice(x, 1, step_i, 1), {b, input_});
    std::tie(h, c) = step(xt, h, c);
  }
  return h;
}

Tensor Lstm::forward_sequence(const Tensor& x) const {
  TSDX_SHAPE_ASSERT(x.rank() == 3 && x.dim(2) == input_,
                    "Lstm: expected [B, T, ", input_, "], got ",
                    tt::to_string(x.shape()));
  const std::int64_t b = x.dim(0);
  const std::int64_t t = x.dim(1);
  Tensor h = Tensor::zeros({b, hidden_});
  Tensor c = Tensor::zeros({b, hidden_});
  std::vector<Tensor> hs;
  hs.reserve(static_cast<std::size_t>(t));
  for (std::int64_t step_i = 0; step_i < t; ++step_i) {
    const Tensor xt = tt::reshape(tt::slice(x, 1, step_i, 1), {b, input_});
    std::tie(h, c) = step(xt, h, c);
    hs.push_back(tt::reshape(h, {b, 1, hidden_}));
  }
  return tt::concat(hs, /*dim=*/1);
}

}  // namespace tsdx::nn
