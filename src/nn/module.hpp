// module.hpp — parameter-owning building block for neural networks.
//
// A Module owns Tensors registered as parameters and references registered
// submodules (which are plain value members of the derived class, registered
// in its constructor). Modules are non-copyable/non-movable so the registered
// child pointers can never dangle.
//
// Traversal gives each parameter a dotted path name ("encoder.0.attn.wq"),
// which is the key used by checkpoint save/load (see serialize.hpp).
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "tensor/rng.hpp"
#include "tensor/tensor.hpp"

namespace tsdx::nn {

using tensor::Rng;
using tensor::Shape;
using tensor::Tensor;

class Module {
 public:
  Module() = default;
  virtual ~Module() = default;
  Module(const Module&) = delete;
  Module& operator=(const Module&) = delete;
  Module(Module&&) = delete;
  Module& operator=(Module&&) = delete;

  /// All parameters of this module and its descendants, in registration order.
  std::vector<Tensor> parameters() const;

  /// Dotted-path name for every parameter, e.g. {"attn.wq", t}.
  std::vector<std::pair<std::string, Tensor>> named_parameters() const;

  /// Total scalar parameter count.
  std::int64_t num_parameters() const;

  /// Clear gradients of every parameter.
  void zero_grad();

  /// Switch train/eval behaviour (dropout) for this module and descendants.
  void set_training(bool training);
  bool training() const { return training_; }

 protected:
  /// Register and return a trainable parameter. Call once per parameter in
  /// the derived constructor. The tensor is marked requires_grad.
  Tensor register_parameter(std::string name, Tensor value);

  /// Register a child module (a value member of the derived class).
  void register_module(std::string name, Module& child);

 private:
  void visit(const std::string& prefix,
             const std::function<void(const std::string&, const Tensor&)>& fn)
      const;

  std::vector<std::pair<std::string, Tensor>> params_;
  std::vector<std::pair<std::string, Module*>> children_;
  bool training_ = true;
};

}  // namespace tsdx::nn
