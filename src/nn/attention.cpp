#include "nn/attention.hpp"

#include <cmath>

#include "core/check.hpp"
#include "obs/trace.hpp"

namespace tsdx::nn {

namespace tt = tsdx::tensor;

MultiHeadAttention::MultiHeadAttention(std::int64_t dim, std::int64_t heads,
                                       float dropout_p, Rng& rng)
    : dim_(dim),
      heads_(heads),
      head_dim_(dim / heads),
      wq_(dim, dim, rng),
      wk_(dim, dim, rng),
      wv_(dim, dim, rng),
      proj_(dim, dim, rng),
      attn_drop_(dropout_p, rng),
      proj_drop_(dropout_p, rng) {
  TSDX_CHECK(heads > 0 && dim % heads == 0, "MultiHeadAttention: dim ", dim,
             " not divisible by heads ", heads);
  register_module("wq", wq_);
  register_module("wk", wk_);
  register_module("wv", wv_);
  register_module("proj", proj_);
  register_module("attn_drop", attn_drop_);
  register_module("proj_drop", proj_drop_);
}

Tensor MultiHeadAttention::forward(const Tensor& x) const {
  TSDX_TRACE_SPAN("model.attention");
  TSDX_SHAPE_ASSERT(x.rank() == 3 && x.shape()[2] == dim_,
                    "MultiHeadAttention: expected [B, T, ", dim_, "], got ",
                    tt::to_string(x.shape()));
  const std::int64_t b = x.dim(0);
  const std::int64_t t = x.dim(1);

  // [B, T, D] -> [B, H, T, Dh]
  const auto split_heads = [&](const Tensor& y) {
    return tt::permute(tt::reshape(y, {b, t, heads_, head_dim_}),
                       {0, 2, 1, 3});
  };
  const Tensor q = split_heads(wq_.forward(x));
  const Tensor k = split_heads(wk_.forward(x));
  const Tensor v = split_heads(wv_.forward(x));

  const float scale = 1.0f / std::sqrt(static_cast<float>(head_dim_));
  // [B, H, T, T]: Q·Kᵀ via the transposed-rhs kernel — no permute copy of K.
  Tensor scores = tt::mul_scalar(tt::matmul_nt(q, k), scale);
  Tensor attn = attn_drop_.forward(tt::softmax_lastdim(scores));
  // [B, H, T, Dh] -> [B, T, D]
  Tensor ctx = tt::reshape(tt::permute(tt::matmul(attn, v), {0, 2, 1, 3}),
                           {b, t, dim_});
  return proj_drop_.forward(proj_.forward(ctx));
}

TransformerEncoderLayer::TransformerEncoderLayer(std::int64_t dim,
                                                 std::int64_t heads,
                                                 std::int64_t mlp_hidden,
                                                 float dropout_p, Rng& rng)
    : norm1_(dim),
      attn_(dim, heads, dropout_p, rng),
      norm2_(dim),
      mlp_(dim, mlp_hidden, dropout_p, rng) {
  register_module("norm1", norm1_);
  register_module("attn", attn_);
  register_module("norm2", norm2_);
  register_module("mlp", mlp_);
}

Tensor TransformerEncoderLayer::forward(const Tensor& x) const {
  Tensor h = tt::add(x, attn_.forward(norm1_.forward(x)));
  return tt::add(h, mlp_.forward(norm2_.forward(h)));
}

TransformerEncoder::TransformerEncoder(std::int64_t depth, std::int64_t dim,
                                       std::int64_t heads,
                                       std::int64_t mlp_hidden,
                                       float dropout_p, Rng& rng)
    : final_norm_(dim) {
  layers_.reserve(static_cast<std::size_t>(depth));
  for (std::int64_t i = 0; i < depth; ++i) {
    layers_.push_back(std::make_unique<TransformerEncoderLayer>(
        dim, heads, mlp_hidden, dropout_p, rng));
    register_module("layer" + std::to_string(i), *layers_.back());
  }
  register_module("final_norm", final_norm_);
}

Tensor TransformerEncoder::forward(const Tensor& x) const {
  Tensor h = x;
  for (const auto& layer : layers_) h = layer->forward(h);
  return final_norm_.forward(h);
}

}  // namespace tsdx::nn
