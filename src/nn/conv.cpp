#include "nn/conv.hpp"

#include <cmath>

#include "core/check.hpp"

namespace tsdx::nn {

Conv2d::Conv2d(std::int64_t in_channels, std::int64_t out_channels,
               std::int64_t kernel, std::int64_t stride, std::int64_t pad,
               Rng& rng)
    : out_channels_(out_channels), stride_(stride), pad_(pad) {
  TSDX_CHECK(in_channels > 0 && out_channels > 0 && kernel > 0 &&
                 stride > 0 && pad >= 0,
             "Conv2d: bad geometry in=", in_channels, " out=", out_channels,
             " k=", kernel, " stride=", stride, " pad=", pad);
  // He (Kaiming) normal: std = sqrt(2 / fan_in).
  const float std =
      std::sqrt(2.0f / static_cast<float>(in_channels * kernel * kernel));
  weight_ = register_parameter(
      "weight",
      Tensor::randn({out_channels, in_channels, kernel, kernel}, rng, std));
  bias_ = register_parameter("bias", Tensor::zeros({out_channels}));
}

Conv3d::Conv3d(std::int64_t in_channels, std::int64_t out_channels,
               std::int64_t kernel_t, std::int64_t kernel_s,
               std::int64_t stride_t, std::int64_t stride_s, std::int64_t pad_t,
               std::int64_t pad_s, Rng& rng)
    : stride_t_(stride_t), stride_s_(stride_s), pad_t_(pad_t), pad_s_(pad_s) {
  TSDX_CHECK(in_channels > 0 && out_channels > 0 && kernel_t > 0 &&
                 kernel_s > 0 && stride_t > 0 && stride_s > 0 && pad_t >= 0 &&
                 pad_s >= 0,
             "Conv3d: bad geometry in=", in_channels, " out=", out_channels,
             " kt=", kernel_t, " ks=", kernel_s, " st=", stride_t,
             " ss=", stride_s, " pt=", pad_t, " ps=", pad_s);
  const float std = std::sqrt(
      2.0f / static_cast<float>(in_channels * kernel_t * kernel_s * kernel_s));
  weight_ = register_parameter(
      "weight", Tensor::randn(
                    {out_channels, in_channels, kernel_t, kernel_s, kernel_s},
                    rng, std));
  bias_ = register_parameter("bias", Tensor::zeros({out_channels}));
}

}  // namespace tsdx::nn
