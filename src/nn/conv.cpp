#include "nn/conv.hpp"

#include <cmath>

namespace tsdx::nn {

Conv2d::Conv2d(std::int64_t in_channels, std::int64_t out_channels,
               std::int64_t kernel, std::int64_t stride, std::int64_t pad,
               Rng& rng)
    : out_channels_(out_channels), stride_(stride), pad_(pad) {
  // He (Kaiming) normal: std = sqrt(2 / fan_in).
  const float std =
      std::sqrt(2.0f / static_cast<float>(in_channels * kernel * kernel));
  weight_ = register_parameter(
      "weight",
      Tensor::randn({out_channels, in_channels, kernel, kernel}, rng, std));
  bias_ = register_parameter("bias", Tensor::zeros({out_channels}));
}

Conv3d::Conv3d(std::int64_t in_channels, std::int64_t out_channels,
               std::int64_t kernel_t, std::int64_t kernel_s,
               std::int64_t stride_t, std::int64_t stride_s, std::int64_t pad_t,
               std::int64_t pad_s, Rng& rng)
    : stride_t_(stride_t), stride_s_(stride_s), pad_t_(pad_t), pad_s_(pad_s) {
  const float std = std::sqrt(
      2.0f / static_cast<float>(in_channels * kernel_t * kernel_s * kernel_s));
  weight_ = register_parameter(
      "weight", Tensor::randn(
                    {out_channels, in_channels, kernel_t, kernel_s, kernel_s},
                    rng, std));
  bias_ = register_parameter("bias", Tensor::zeros({out_channels}));
}

}  // namespace tsdx::nn
