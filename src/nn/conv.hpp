// conv.hpp — convolutional layers for the CNN baselines (and the tubelet
// embedding in the video transformer, which is a strided conv in disguise).
#pragma once

#include "nn/module.hpp"
#include "tensor/nn_ops.hpp"

namespace tsdx::nn {

/// 2-D convolution over NCHW input with He-normal init.
class Conv2d : public Module {
 public:
  Conv2d(std::int64_t in_channels, std::int64_t out_channels,
         std::int64_t kernel, std::int64_t stride, std::int64_t pad, Rng& rng);

  Tensor forward(const Tensor& x) const {
    return tensor::conv2d(x, weight_, bias_, stride_, pad_);
  }

  std::int64_t out_channels() const { return out_channels_; }

 private:
  std::int64_t out_channels_;
  std::int64_t stride_;
  std::int64_t pad_;
  Tensor weight_;  ///< [out, in, k, k]
  Tensor bias_;    ///< [out]
};

/// 3-D (space-time) convolution over NCTHW input with He-normal init.
class Conv3d : public Module {
 public:
  Conv3d(std::int64_t in_channels, std::int64_t out_channels,
         std::int64_t kernel_t, std::int64_t kernel_s, std::int64_t stride_t,
         std::int64_t stride_s, std::int64_t pad_t, std::int64_t pad_s,
         Rng& rng);

  Tensor forward(const Tensor& x) const {
    return tensor::conv3d(x, weight_, bias_, stride_t_, stride_s_, pad_t_,
                          pad_s_);
  }

 private:
  std::int64_t stride_t_;
  std::int64_t stride_s_;
  std::int64_t pad_t_;
  std::int64_t pad_s_;
  Tensor weight_;  ///< [out, in, kt, ks, ks]
  Tensor bias_;    ///< [out]
};

/// Max pooling layer (stateless; kept as a Module for uniform composition).
class MaxPool2d : public Module {
 public:
  explicit MaxPool2d(std::int64_t k, std::int64_t stride = 0)
      : k_(k), stride_(stride) {}

  Tensor forward(const Tensor& x) const {
    return tensor::max_pool2d(x, k_, stride_);
  }

 private:
  std::int64_t k_;
  std::int64_t stride_;
};

}  // namespace tsdx::nn
