// optim.hpp — first-order optimizers and learning-rate schedules.
#pragma once

#include <cstdint>
#include <vector>

#include "nn/module.hpp"

namespace tsdx::nn {

/// Base optimizer: owns handles to the parameters it updates (shared storage
/// with the model). step() consumes gradients accumulated by backward();
/// callers are responsible for zero_grad() between steps.
class Optimizer {
 public:
  explicit Optimizer(std::vector<Tensor> params, float lr)
      : params_(std::move(params)), lr_(lr) {}
  virtual ~Optimizer() = default;
  Optimizer(const Optimizer&) = delete;
  Optimizer& operator=(const Optimizer&) = delete;

  virtual void step() = 0;

  void set_lr(float lr) { lr_ = lr; }
  float lr() const { return lr_; }

 protected:
  std::vector<Tensor> params_;
  float lr_;
};

/// SGD with classical momentum: v = mu*v + g; p -= lr*v.
class Sgd : public Optimizer {
 public:
  Sgd(std::vector<Tensor> params, float lr, float momentum = 0.9f);
  void step() override;

 private:
  float momentum_;
  std::vector<std::vector<float>> velocity_;
};

/// Adam / AdamW (decoupled weight decay when weight_decay > 0).
class Adam : public Optimizer {
 public:
  Adam(std::vector<Tensor> params, float lr, float beta1 = 0.9f,
       float beta2 = 0.999f, float eps = 1e-8f, float weight_decay = 0.0f);
  void step() override;

  std::int64_t step_count() const { return t_; }

 private:
  float beta1_, beta2_, eps_, weight_decay_;
  std::int64_t t_ = 0;
  std::vector<std::vector<float>> m_;
  std::vector<std::vector<float>> v_;
};

/// Cosine-decay schedule with linear warmup; returns the lr for `step`
/// (0-indexed) out of `total_steps`.
float cosine_warmup_lr(std::int64_t step, std::int64_t total_steps,
                       float base_lr, std::int64_t warmup_steps);

/// Global gradient-norm clipping; returns the pre-clip norm.
float clip_grad_norm(const std::vector<Tensor>& params, float max_norm);

}  // namespace tsdx::nn
