#include "nn/gru.hpp"

#include "core/check.hpp"

namespace tsdx::nn {

namespace tt = tsdx::tensor;

Gru::Gru(std::int64_t input_dim, std::int64_t hidden_dim, Rng& rng)
    : input_(input_dim),
      hidden_(hidden_dim),
      zr_gates_(input_dim + hidden_dim, 2 * hidden_dim, rng),
      candidate_(input_dim + hidden_dim, hidden_dim, rng) {
  register_module("zr_gates", zr_gates_);
  register_module("candidate", candidate_);
}

Tensor Gru::step(const Tensor& xt, const Tensor& h) const {
  const Tensor zr =
      tt::sigmoid(zr_gates_.forward(tt::concat({xt, h}, /*dim=*/1)));
  const Tensor z = tt::slice(zr, 1, 0, hidden_);
  const Tensor r = tt::slice(zr, 1, hidden_, hidden_);
  const Tensor n = tt::tanh(
      candidate_.forward(tt::concat({xt, tt::mul(r, h)}, /*dim=*/1)));
  // h' = (1 - z) * n + z * h
  const Tensor one_minus_z = tt::add_scalar(tt::neg(z), 1.0f);
  return tt::add(tt::mul(one_minus_z, n), tt::mul(z, h));
}

Tensor Gru::forward(const Tensor& x) const {
  TSDX_SHAPE_ASSERT(x.rank() == 3 && x.dim(2) == input_, "Gru: expected [B, T, ",
                    input_, "], got ", tt::to_string(x.shape()));
  const std::int64_t b = x.dim(0);
  const std::int64_t t = x.dim(1);
  Tensor h = Tensor::zeros({b, hidden_});
  for (std::int64_t step_i = 0; step_i < t; ++step_i) {
    const Tensor xt = tt::reshape(tt::slice(x, 1, step_i, 1), {b, input_});
    h = step(xt, h);
  }
  return h;
}

}  // namespace tsdx::nn
