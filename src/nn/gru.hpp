// gru.hpp — a single-layer GRU (the lighter recurrent baseline).
//
// Like the LSTM, the recurrence is composed from taped tensor ops, so BPTT
// comes for free from the autograd engine.
#pragma once

#include "nn/layers.hpp"

namespace tsdx::nn {

/// Batch-first GRU: input [B, T, In] -> final hidden [B, H].
/// Gates: z (update), r (reset), n (candidate), with the usual coupling
///   h' = (1 - z) * n + z * h.
class Gru : public Module {
 public:
  Gru(std::int64_t input_dim, std::int64_t hidden_dim, Rng& rng);

  /// Final hidden state h_T, shape [B, H].
  Tensor forward(const Tensor& x) const;

  std::int64_t hidden_dim() const { return hidden_; }

 private:
  Tensor step(const Tensor& xt, const Tensor& h) const;

  std::int64_t input_;
  std::int64_t hidden_;
  Linear zr_gates_;   ///< [In+H] -> [2H] (update + reset)
  Linear candidate_;  ///< [In+H] -> [H]  (with reset-gated hidden)
};

}  // namespace tsdx::nn
