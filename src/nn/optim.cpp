#include "nn/optim.hpp"

#include <cmath>

namespace tsdx::nn {

Sgd::Sgd(std::vector<Tensor> params, float lr, float momentum)
    : Optimizer(std::move(params), lr), momentum_(momentum) {
  velocity_.reserve(params_.size());
  for (const Tensor& p : params_) {
    velocity_.emplace_back(static_cast<std::size_t>(p.numel()), 0.0f);
  }
}

void Sgd::step() {
  for (std::size_t pi = 0; pi < params_.size(); ++pi) {
    Tensor& p = params_[pi];
    const auto g = p.grad();
    if (g.empty()) continue;  // never touched by backward
    auto data = p.mutable_data();
    auto& vel = velocity_[pi];
    for (std::size_t i = 0; i < data.size(); ++i) {
      vel[i] = momentum_ * vel[i] + g[i];
      data[i] -= lr_ * vel[i];
    }
  }
}

Adam::Adam(std::vector<Tensor> params, float lr, float beta1, float beta2,
           float eps, float weight_decay)
    : Optimizer(std::move(params), lr),
      beta1_(beta1),
      beta2_(beta2),
      eps_(eps),
      weight_decay_(weight_decay) {
  m_.reserve(params_.size());
  v_.reserve(params_.size());
  for (const Tensor& p : params_) {
    m_.emplace_back(static_cast<std::size_t>(p.numel()), 0.0f);
    v_.emplace_back(static_cast<std::size_t>(p.numel()), 0.0f);
  }
}

void Adam::step() {
  ++t_;
  const float bc1 = 1.0f - std::pow(beta1_, static_cast<float>(t_));
  const float bc2 = 1.0f - std::pow(beta2_, static_cast<float>(t_));
  for (std::size_t pi = 0; pi < params_.size(); ++pi) {
    Tensor& p = params_[pi];
    const auto g = p.grad();
    if (g.empty()) continue;
    auto data = p.mutable_data();
    auto& m = m_[pi];
    auto& v = v_[pi];
    for (std::size_t i = 0; i < data.size(); ++i) {
      m[i] = beta1_ * m[i] + (1.0f - beta1_) * g[i];
      v[i] = beta2_ * v[i] + (1.0f - beta2_) * g[i] * g[i];
      const float mhat = m[i] / bc1;
      const float vhat = v[i] / bc2;
      data[i] -= lr_ * (mhat / (std::sqrt(vhat) + eps_) +
                        weight_decay_ * data[i]);
    }
  }
}

float cosine_warmup_lr(std::int64_t step, std::int64_t total_steps,
                       float base_lr, std::int64_t warmup_steps) {
  if (warmup_steps > 0 && step < warmup_steps) {
    return base_lr * static_cast<float>(step + 1) /
           static_cast<float>(warmup_steps);
  }
  const float progress =
      static_cast<float>(step - warmup_steps) /
      static_cast<float>(std::max<std::int64_t>(1, total_steps - warmup_steps));
  constexpr float kPi = 3.14159265358979323846f;
  return 0.5f * base_lr * (1.0f + std::cos(kPi * std::min(progress, 1.0f)));
}

float clip_grad_norm(const std::vector<Tensor>& params, float max_norm) {
  double sq = 0.0;
  for (const Tensor& p : params) {
    for (float g : p.grad()) sq += static_cast<double>(g) * g;
  }
  const float norm = static_cast<float>(std::sqrt(sq));
  if (norm > max_norm && norm > 0.0f) {
    const float scale = max_norm / norm;
    for (const Tensor& p : params) {
      // grad() is const-view; scale through the node.
      auto& gv = p.node()->grad;
      for (float& g : gv) g *= scale;
    }
  }
  return norm;
}

}  // namespace tsdx::nn
