#include "nn/serialize.hpp"

#include <cstring>
#include <fstream>
#include <stdexcept>
#include <unordered_map>

namespace tsdx::nn {

namespace {

constexpr char kMagic[4] = {'T', 'S', 'D', 'X'};
constexpr std::uint32_t kVersion = 1;

template <class T>
void write_pod(std::ofstream& out, const T& value) {
  out.write(reinterpret_cast<const char*>(&value), sizeof(T));
}

template <class T>
T read_pod(std::ifstream& in) {
  T value{};
  in.read(reinterpret_cast<char*>(&value), sizeof(T));
  if (!in) throw std::runtime_error("checkpoint: truncated file");
  return value;
}

}  // namespace

void save_checkpoint(const Module& module, const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out) throw std::runtime_error("checkpoint: cannot open " + path);
  out.write(kMagic, 4);
  write_pod(out, kVersion);
  const auto named = module.named_parameters();
  write_pod(out, static_cast<std::uint64_t>(named.size()));
  for (const auto& [name, t] : named) {
    write_pod(out, static_cast<std::uint32_t>(name.size()));
    out.write(name.data(), static_cast<std::streamsize>(name.size()));
    write_pod(out, static_cast<std::uint32_t>(t.rank()));
    for (std::int64_t d : t.shape()) write_pod(out, d);
    out.write(reinterpret_cast<const char*>(t.data().data()),
              static_cast<std::streamsize>(t.numel() * sizeof(float)));
  }
  if (!out) throw std::runtime_error("checkpoint: write failed for " + path);
}

void load_checkpoint(Module& module, const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("checkpoint: cannot open " + path);
  char magic[4];
  in.read(magic, 4);
  if (!in || std::memcmp(magic, kMagic, 4) != 0) {
    throw std::runtime_error("checkpoint: bad magic in " + path);
  }
  const auto version = read_pod<std::uint32_t>(in);
  if (version != kVersion) {
    throw std::runtime_error("checkpoint: unsupported version");
  }

  std::unordered_map<std::string, Tensor> by_name;
  for (auto& [name, t] : module.named_parameters()) by_name.emplace(name, t);

  const auto count = read_pod<std::uint64_t>(in);
  std::size_t loaded = 0;
  for (std::uint64_t i = 0; i < count; ++i) {
    const auto name_len = read_pod<std::uint32_t>(in);
    std::string name(name_len, '\0');
    in.read(name.data(), name_len);
    const auto rank = read_pod<std::uint32_t>(in);
    Shape shape(rank);
    for (auto& d : shape) d = read_pod<std::int64_t>(in);

    auto it = by_name.find(name);
    if (it == by_name.end()) {
      throw std::runtime_error("checkpoint: unknown parameter '" + name + "'");
    }
    Tensor& t = it->second;
    if (t.shape() != shape) {
      throw std::runtime_error("checkpoint: shape mismatch for '" + name + "'");
    }
    in.read(reinterpret_cast<char*>(t.mutable_data().data()),
            static_cast<std::streamsize>(t.numel() * sizeof(float)));
    if (!in) throw std::runtime_error("checkpoint: truncated data");
    ++loaded;
  }
  if (loaded != by_name.size()) {
    throw std::runtime_error("checkpoint: parameter count mismatch");
  }
}

}  // namespace tsdx::nn
