#include "nn/serialize.hpp"

#include <array>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <stdexcept>
#include <unordered_map>
#include <utility>
#include <vector>

// Header-only fault-injection hooks (see inject.hpp: being header-only is
// what lets this low-level layer consume the chaos plan without tsdx_nn
// link-depending on the serve layer above it).
#include "serve/fault/inject.hpp"

namespace tsdx::nn {

namespace {

constexpr char kMagic[4] = {'T', 'S', 'D', 'X'};
constexpr std::uint32_t kVersion = 2;
// magic + version + param_count before any parameter record.
constexpr std::size_t kHeaderBytes = 4 + sizeof(std::uint32_t) +
                                     sizeof(std::uint64_t);
constexpr std::size_t kFooterBytes = sizeof(std::uint32_t);

template <class T>
void append_pod(std::string& out, const T& value) {
  out.append(reinterpret_cast<const char*>(&value), sizeof(T));
}

/// Bounds-checked reader over the in-memory checkpoint image. Any read past
/// the end is corruption (CRC verification happens first, so this is a
/// belt-and-braces backstop) and reports the offending offset.
class Cursor {
 public:
  Cursor(const std::string& buffer, std::size_t limit)
      : buffer_(buffer), limit_(limit) {}

  template <class T>
  T read_pod() {
    require(sizeof(T));
    T value{};
    std::memcpy(&value, buffer_.data() + pos_, sizeof(T));
    pos_ += sizeof(T);
    return value;
  }

  std::string read_string(std::size_t size) {
    require(size);
    std::string value = buffer_.substr(pos_, size);
    pos_ += size;
    return value;
  }

  void read_floats(float* dst, std::size_t count) {
    require(count * sizeof(float));
    std::memcpy(dst, buffer_.data() + pos_, count * sizeof(float));
    pos_ += count * sizeof(float);
  }

  std::size_t position() const { return pos_; }

 private:
  void require(std::size_t bytes) const {
    if (pos_ + bytes > limit_) {
      throw CheckpointCorruptError("checkpoint: truncated record", pos_);
    }
  }

  const std::string& buffer_;
  std::size_t limit_;
  std::size_t pos_ = 0;
};

}  // namespace

std::uint32_t crc32(const void* data, std::size_t size) {
  // CRC-32/ISO-HDLC, table-driven (the zlib polynomial, reflected).
  static const std::array<std::uint32_t, 256> table = [] {
    std::array<std::uint32_t, 256> t{};
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1u) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
      }
      t[i] = c;
    }
    return t;
  }();
  const auto* bytes = static_cast<const unsigned char*>(data);
  std::uint32_t crc = 0xFFFFFFFFu;
  for (std::size_t i = 0; i < size; ++i) {
    crc = table[(crc ^ bytes[i]) & 0xFFu] ^ (crc >> 8);
  }
  return crc ^ 0xFFFFFFFFu;
}

void save_checkpoint(const Module& module, const std::string& path) {
  // Serialize to memory first: the CRC footer covers the exact image, and
  // the write becomes a single all-or-nothing stream into the temp file.
  std::string image;
  image.append(kMagic, 4);
  append_pod(image, kVersion);
  const auto named = module.named_parameters();
  append_pod(image, static_cast<std::uint64_t>(named.size()));
  for (const auto& [name, t] : named) {
    append_pod(image, static_cast<std::uint32_t>(name.size()));
    image.append(name.data(), name.size());
    append_pod(image, static_cast<std::uint32_t>(t.rank()));
    for (std::int64_t d : t.shape()) append_pod(image, d);
    image.append(reinterpret_cast<const char*>(t.data().data()),
                 t.numel() * sizeof(float));
  }
  append_pod(image, crc32(image.data(), image.size()));

  // Fault hook: an armed chaos plan may flip one seed-chosen byte of the
  // CRC-protected payload — after the footer is computed, so the loader's
  // integrity check is what catches it.
  std::uint64_t corrupt_seed = 0;
  if (serve::fault::Injector::instance().consume_checkpoint_corruption(
          corrupt_seed)) {
    const std::size_t offset = static_cast<std::size_t>(
        serve::fault::mix64(corrupt_seed) % (image.size() - kFooterBytes));
    image[offset] = static_cast<char>(image[offset] ^ 0xA5);
  }

  // Atomic publish: write the temp file completely, then rename into place.
  // Readers either see the old checkpoint or the new one, never a torn mix;
  // a crash between write and rename strands only a .tmp file.
  const std::string tmp_path = path + ".tmp";
  {
    std::ofstream out(tmp_path, std::ios::binary | std::ios::trunc);
    if (!out) {
      throw std::runtime_error("checkpoint: cannot open " + tmp_path);
    }
    out.write(image.data(), static_cast<std::streamsize>(image.size()));
    out.flush();
    if (!out) {
      out.close();
      std::remove(tmp_path.c_str());
      throw std::runtime_error("checkpoint: write failed for " + tmp_path);
    }
  }
  if (std::rename(tmp_path.c_str(), path.c_str()) != 0) {
    std::remove(tmp_path.c_str());
    throw std::runtime_error("checkpoint: rename failed for " + path);
  }
}

void load_checkpoint(Module& module, const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("checkpoint: cannot open " + path);
  std::string image((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  if (!in.good() && !in.eof()) {
    throw std::runtime_error("checkpoint: read failed for " + path);
  }

  // ---- integrity before anything else ------------------------------------
  if (image.size() < kHeaderBytes + kFooterBytes) {
    throw CheckpointCorruptError("checkpoint: file too small to be valid",
                                 image.size());
  }
  if (std::memcmp(image.data(), kMagic, 4) != 0) {
    throw CheckpointCorruptError("checkpoint: bad magic", 0);
  }
  const std::size_t payload_size = image.size() - kFooterBytes;
  std::uint32_t stored_crc = 0;
  std::memcpy(&stored_crc, image.data() + payload_size, kFooterBytes);
  const std::uint32_t computed_crc = crc32(image.data(), payload_size);
  if (stored_crc != computed_crc) {
    throw CheckpointCorruptError(
        "checkpoint: crc mismatch (stored " + std::to_string(stored_crc) +
            ", computed " + std::to_string(computed_crc) + " over payload)",
        payload_size);
  }

  // ---- structure (trustworthy now: the image passed its CRC) --------------
  Cursor cursor(image, payload_size);
  cursor.read_string(4);  // magic, already checked
  const auto version = cursor.read_pod<std::uint32_t>();
  if (version != kVersion) {
    throw std::runtime_error("checkpoint: unsupported version " +
                             std::to_string(version) + " (expected " +
                             std::to_string(kVersion) + ")");
  }

  // Parse every record into staging storage before touching the module, so
  // a structural failure (unknown name, shape mismatch) cannot leave the
  // module half-loaded.
  struct Entry {
    std::string name;
    Shape shape;
    std::vector<float> data;
  };
  const auto count = cursor.read_pod<std::uint64_t>();
  std::vector<Entry> entries;
  entries.reserve(static_cast<std::size_t>(count));
  for (std::uint64_t i = 0; i < count; ++i) {
    Entry entry;
    const auto name_len = cursor.read_pod<std::uint32_t>();
    entry.name = cursor.read_string(name_len);
    const auto rank = cursor.read_pod<std::uint32_t>();
    entry.shape.resize(rank);
    std::size_t numel = 1;
    for (auto& d : entry.shape) {
      d = cursor.read_pod<std::int64_t>();
      if (d < 0) {
        throw CheckpointCorruptError("checkpoint: negative dimension",
                                     cursor.position());
      }
      numel *= static_cast<std::size_t>(d);
    }
    entry.data.resize(numel);
    cursor.read_floats(entry.data.data(), numel);
    entries.push_back(std::move(entry));
  }
  if (cursor.position() != payload_size) {
    throw CheckpointCorruptError("checkpoint: trailing bytes after records",
                                 cursor.position());
  }

  std::unordered_map<std::string, Tensor> by_name;
  for (auto& [name, t] : module.named_parameters()) by_name.emplace(name, t);
  if (entries.size() != by_name.size()) {
    throw std::runtime_error("checkpoint: parameter count mismatch");
  }
  for (const Entry& entry : entries) {
    auto it = by_name.find(entry.name);
    if (it == by_name.end()) {
      throw std::runtime_error("checkpoint: unknown parameter '" + entry.name +
                               "'");
    }
    if (it->second.shape() != entry.shape) {
      throw std::runtime_error("checkpoint: shape mismatch for '" +
                               entry.name + "'");
    }
  }
  for (const Entry& entry : entries) {
    Tensor& t = by_name.at(entry.name);
    std::memcpy(t.mutable_data().data(), entry.data.data(),
                entry.data.size() * sizeof(float));
  }
}

const char* to_string(CheckpointLoad outcome) {
  switch (outcome) {
    case CheckpointLoad::kLoaded: return "loaded";
    case CheckpointLoad::kMissingKeptInit: return "missing-kept-init";
    case CheckpointLoad::kCorruptKeptInit: return "corrupt-kept-init";
  }
  return "?";
}

CheckpointLoad load_checkpoint_or_fallback(Module& module,
                                           const std::string& path) {
  {
    std::ifstream probe(path, std::ios::binary);
    if (!probe) return CheckpointLoad::kMissingKeptInit;
  }
  try {
    load_checkpoint(module, path);
    return CheckpointLoad::kLoaded;
  } catch (const CheckpointCorruptError&) {
    return CheckpointLoad::kCorruptKeptInit;
  }
}

}  // namespace tsdx::nn
