// lstm.hpp — a single-layer LSTM for the CNN+LSTM baseline.
//
// The recurrence is composed from differentiable tensor ops, so gradients
// flow through time via the autograd tape (no hand-written BPTT).
#pragma once

#include "nn/layers.hpp"

namespace tsdx::nn {

/// Batch-first LSTM: input [B, T, In] -> hidden states.
/// Gate layout follows the usual i, f, g, o convention with a single fused
/// [In+H, 4H] weight (input and previous hidden concatenated).
class Lstm : public Module {
 public:
  Lstm(std::int64_t input_dim, std::int64_t hidden_dim, Rng& rng);

  /// Returns the final hidden state h_T, shape [B, H].
  Tensor forward(const Tensor& x) const;

  /// Returns all hidden states stacked, shape [B, T, H].
  Tensor forward_sequence(const Tensor& x) const;

  std::int64_t hidden_dim() const { return hidden_; }

 private:
  /// One step: (x_t [B,In], h [B,H], c [B,H]) -> (h', c').
  std::pair<Tensor, Tensor> step(const Tensor& xt, const Tensor& h,
                                 const Tensor& c) const;

  std::int64_t input_;
  std::int64_t hidden_;
  Linear gates_;  ///< [In+H] -> [4H]
};

}  // namespace tsdx::nn
