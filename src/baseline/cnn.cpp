#include "baseline/cnn.hpp"

#include <stdexcept>

#include "tensor/ops.hpp"

namespace tsdx::baseline {

namespace tt = tsdx::tensor;
using nn::Tensor;

FrameCnn::FrameCnn(std::int64_t in_channels, std::int64_t image_size,
                   std::int64_t feature_dim, nn::Rng& rng)
    : feature_dim_(feature_dim),
      conv1_(in_channels, 8, /*kernel=*/3, /*stride=*/2, /*pad=*/1, rng),
      conv2_(8, 16, 3, 2, 1, rng),
      conv3_(16, 32, 3, 2, 1, rng),
      proj_(32, feature_dim, rng) {
  if (image_size % 8 != 0) {
    throw std::invalid_argument("FrameCnn: image_size must be divisible by 8");
  }
  register_module("conv1", conv1_);
  register_module("conv2", conv2_);
  register_module("conv3", conv3_);
  register_module("proj", proj_);
}

Tensor FrameCnn::forward(const Tensor& frames) const {
  Tensor h = tt::relu(conv1_.forward(frames));
  h = tt::relu(conv2_.forward(h));
  h = tt::relu(conv3_.forward(h));  // [N, 32, H/8, W/8]
  const std::int64_t n = h.dim(0);
  const std::int64_t c = h.dim(1);
  // Global average pool over the spatial plane.
  Tensor pooled = tt::mean_dim(tt::reshape(h, {n, c, -1}), 2);  // [N, 32]
  return proj_.forward(pooled);
}

Tensor encode_frames(const FrameCnn& cnn, const nn::Tensor& video) {
  if (video.rank() != 5) {
    throw std::invalid_argument("encode_frames: expected [B,T,C,H,W]");
  }
  const std::int64_t b = video.dim(0);
  const std::int64_t t = video.dim(1);
  const std::int64_t c = video.dim(2);
  const std::int64_t h = video.dim(3);
  const std::int64_t w = video.dim(4);
  Tensor flat = tt::reshape(video, {b * t, c, h, w});
  Tensor feats = cnn.forward(flat);  // [B*T, D]
  return tt::reshape(feats, {b, t, cnn.feature_dim()});
}

CnnAvgBackbone::CnnAvgBackbone(std::int64_t channels, std::int64_t image_size,
                               std::int64_t feature_dim, nn::Rng& rng)
    : cnn_(channels, image_size, feature_dim, rng) {
  register_module("cnn", cnn_);
}

Tensor CnnAvgBackbone::forward(const Tensor& video) const {
  return tt::mean_dim(encode_frames(cnn_, video), 1);
}

CnnLstmBackbone::CnnLstmBackbone(std::int64_t channels, std::int64_t image_size,
                                 std::int64_t feature_dim, nn::Rng& rng)
    : cnn_(channels, image_size, feature_dim, rng),
      lstm_(feature_dim, feature_dim, rng) {
  register_module("cnn", cnn_);
  register_module("lstm", lstm_);
}

Tensor CnnLstmBackbone::forward(const Tensor& video) const {
  return lstm_.forward(encode_frames(cnn_, video));
}

}  // namespace tsdx::baseline
