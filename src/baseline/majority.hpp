// majority.hpp — the no-learning floor: predict the per-slot majority class
// of the training set for every clip.
#pragma once

#include "data/dataset.hpp"
#include "data/metrics.hpp"
#include "sdl/description.hpp"

namespace tsdx::baseline {

class MajorityPredictor {
 public:
  /// Compute per-slot majority classes from a training dataset.
  void fit(const data::Dataset& train);

  sdl::SlotLabels predict() const { return majority_; }

  /// Evaluate against a dataset's ground truth.
  data::SlotMetrics evaluate(const data::Dataset& dataset) const;

 private:
  sdl::SlotLabels majority_{};
};

}  // namespace tsdx::baseline
