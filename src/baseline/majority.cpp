#include "baseline/majority.hpp"

#include <algorithm>

namespace tsdx::baseline {

void MajorityPredictor::fit(const data::Dataset& train) {
  const auto hist = train.label_histogram();
  for (std::size_t s = 0; s < sdl::kNumSlots; ++s) {
    const auto& counts = hist[s];
    majority_[s] = static_cast<std::size_t>(
        std::distance(counts.begin(),
                      std::max_element(counts.begin(), counts.end())));
  }
}

data::SlotMetrics MajorityPredictor::evaluate(
    const data::Dataset& dataset) const {
  data::SlotMetrics metrics;
  for (std::size_t i = 0; i < dataset.size(); ++i) {
    metrics.add(dataset[i].labels, majority_);
  }
  return metrics;
}

}  // namespace tsdx::baseline
