// cnn3d.hpp — additional conventional baselines:
//  * C3dBackbone — a C3D-style 3-D convolutional clip encoder (space-time
//    convolutions end to end), the classic pre-transformer video model;
//  * CnnGruBackbone — per-frame CNN + GRU (lighter recurrent alternative to
//    the CNN-LSTM).
#pragma once

#include "baseline/cnn.hpp"
#include "nn/gru.hpp"

namespace tsdx::baseline {

/// Three 3x3x3 conv+ReLU stages with progressive space-time downsampling,
/// global average pooling, and a linear projection to the feature dim.
/// Input [B, T, C, H, W] (dataset layout); internally NCTHW.
class C3dBackbone : public core::Backbone {
 public:
  /// `frames` must be divisible by 4 and `image_size` by 8.
  C3dBackbone(std::int64_t channels, std::int64_t frames,
              std::int64_t image_size, std::int64_t feature_dim, nn::Rng& rng);

  nn::Tensor forward(const nn::Tensor& video) const override;
  std::int64_t feature_dim() const override { return feature_dim_; }
  std::string name() const override { return "c3d"; }

 private:
  std::int64_t feature_dim_;
  nn::Conv3d conv1_;  ///< spatial stride 2
  nn::Conv3d conv2_;  ///< space-time stride 2
  nn::Conv3d conv3_;  ///< space-time stride 2
  nn::Linear proj_;
};

/// Per-frame CNN + single-layer GRU; clip feature = final hidden state.
class CnnGruBackbone : public core::Backbone {
 public:
  CnnGruBackbone(std::int64_t channels, std::int64_t image_size,
                 std::int64_t feature_dim, nn::Rng& rng);

  nn::Tensor forward(const nn::Tensor& video) const override;
  std::int64_t feature_dim() const override { return gru_.hidden_dim(); }
  std::string name() const override { return "cnn_gru"; }

 private:
  FrameCnn cnn_;
  nn::Gru gru_;
};

}  // namespace tsdx::baseline
