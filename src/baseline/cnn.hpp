// cnn.hpp — convolutional clip encoders used as comparison baselines.
//
// Both reuse a shared per-frame CNN encoder; they differ only in how frame
// features are aggregated over time:
//   CnnAvgBackbone  — temporal average pooling (no temporal modeling at all)
//   CnnLstmBackbone — an LSTM over the frame features (the classic pre-
//                      transformer video architecture)
#pragma once

#include <memory>

#include "core/backbone.hpp"
#include "nn/conv.hpp"
#include "nn/layers.hpp"
#include "nn/lstm.hpp"

namespace tsdx::baseline {

/// Three strided conv+ReLU stages, global average pool, linear projection.
/// [N, C, H, W] -> [N, feature_dim].
class FrameCnn : public nn::Module {
 public:
  FrameCnn(std::int64_t in_channels, std::int64_t image_size,
           std::int64_t feature_dim, nn::Rng& rng);

  nn::Tensor forward(const nn::Tensor& frames) const;

  std::int64_t feature_dim() const { return feature_dim_; }

 private:
  std::int64_t feature_dim_;
  nn::Conv2d conv1_;
  nn::Conv2d conv2_;
  nn::Conv2d conv3_;
  nn::Linear proj_;
};

/// Per-frame CNN + temporal average pooling.
class CnnAvgBackbone : public core::Backbone {
 public:
  CnnAvgBackbone(std::int64_t channels, std::int64_t image_size,
                 std::int64_t feature_dim, nn::Rng& rng);

  nn::Tensor forward(const nn::Tensor& video) const override;
  std::int64_t feature_dim() const override { return cnn_.feature_dim(); }
  std::string name() const override { return "cnn_avg"; }

 private:
  FrameCnn cnn_;
};

/// Per-frame CNN + single-layer LSTM; clip feature = final hidden state.
class CnnLstmBackbone : public core::Backbone {
 public:
  CnnLstmBackbone(std::int64_t channels, std::int64_t image_size,
                  std::int64_t feature_dim, nn::Rng& rng);

  nn::Tensor forward(const nn::Tensor& video) const override;
  std::int64_t feature_dim() const override { return lstm_.hidden_dim(); }
  std::string name() const override { return "cnn_lstm"; }

 private:
  FrameCnn cnn_;
  nn::Lstm lstm_;
};

/// Shared helper: run a per-frame encoder over [B, T, C, H, W], returning
/// frame features [B, T, D].
nn::Tensor encode_frames(const FrameCnn& cnn, const nn::Tensor& video);

}  // namespace tsdx::baseline
