#include "baseline/cnn3d.hpp"

#include <stdexcept>

#include "tensor/ops.hpp"

namespace tsdx::baseline {

namespace tt = tsdx::tensor;
using nn::Tensor;

C3dBackbone::C3dBackbone(std::int64_t channels, std::int64_t frames,
                         std::int64_t image_size, std::int64_t feature_dim,
                         nn::Rng& rng)
    : feature_dim_(feature_dim),
      conv1_(channels, 8, /*kt=*/3, /*ks=*/3, /*st=*/1, /*ss=*/2, /*pt=*/1,
             /*ps=*/1, rng),
      conv2_(8, 16, 3, 3, 2, 2, 1, 1, rng),
      conv3_(16, 32, 3, 3, 2, 2, 1, 1, rng),
      proj_(32, feature_dim, rng) {
  if (image_size % 8 != 0) {
    throw std::invalid_argument("C3dBackbone: image_size must be divisible by 8");
  }
  if (frames % 4 != 0) {
    throw std::invalid_argument("C3dBackbone: frames must be divisible by 4");
  }
  register_module("conv1", conv1_);
  register_module("conv2", conv2_);
  register_module("conv3", conv3_);
  register_module("proj", proj_);
}

Tensor C3dBackbone::forward(const Tensor& video) const {
  if (video.rank() != 5) {
    throw std::invalid_argument("C3dBackbone: expected [B,T,C,H,W]");
  }
  // Dataset layout [B,T,C,H,W] -> conv layout [B,C,T,H,W].
  Tensor x = tt::permute(video, {0, 2, 1, 3, 4});
  x = tt::relu(conv1_.forward(x));
  x = tt::relu(conv2_.forward(x));
  x = tt::relu(conv3_.forward(x));  // [B, 32, T/4, H/8, W/8]
  const std::int64_t b = x.dim(0);
  const std::int64_t c = x.dim(1);
  Tensor pooled = tt::mean_dim(tt::reshape(x, {b, c, -1}), 2);  // [B, 32]
  return proj_.forward(pooled);
}

CnnGruBackbone::CnnGruBackbone(std::int64_t channels, std::int64_t image_size,
                               std::int64_t feature_dim, nn::Rng& rng)
    : cnn_(channels, image_size, feature_dim, rng),
      gru_(feature_dim, feature_dim, rng) {
  register_module("cnn", cnn_);
  register_module("gru", gru_);
}

Tensor CnnGruBackbone::forward(const Tensor& video) const {
  return gru_.forward(encode_frames(cnn_, video));
}

}  // namespace tsdx::baseline
