// flat.hpp — exact brute-force cosine index over scenario embeddings.
//
// The ground-truth backend: every query scans every stored vector (through
// the deterministic parallel scan in store.hpp), so its top-k is exact by
// construction. It is the recall reference the IVF index is measured
// against (bench_i1_index, EXPERIMENTS.md R-I1), the retrieval engine
// behind bench_f3_retrieval, and the right choice outright below a few
// hundred thousand documents, where a full scan is a handful of
// milliseconds.
//
// Concurrency: one tsdx::Mutex (rank kIndex) guards the store. Insert and
// search both take it; the parallel scan runs *under* the lock, which is
// safe because the par ranks (kPoolJob..kPoolDone) sit above kIndex in the
// hierarchy (DESIGN.md §12). Metric handles are registered at construction
// and updated lock-free.
#pragma once

#include <memory>
#include <vector>

#include "core/annotations.hpp"
#include "index/store.hpp"
#include "obs/metrics.hpp"
#include "sdl/embedding.hpp"

namespace tsdx::index {

/// Histogram bounds for rows-touched-per-query (powers of four; a flat scan
/// of 1M docs and an IVF probe of a few thousand land in clearly separate
/// buckets).
const std::vector<double>& scan_rows_buckets();

struct FlatConfig {
  /// Per-slot importance weights of the embedding (sdl/embedding.hpp).
  sdl::EmbeddingWeights weights{};
  /// Registry for index.* metrics. Null means obs::Registry::global().
  std::shared_ptr<obs::Registry> metrics;
};

class FlatIndex : public ScenarioIndexBackend {
 public:
  explicit FlatIndex(FlatConfig config = {});

  void insert(DocId id, const sdl::ScenarioDescription& d) override
      TSDX_EXCLUDES(mutex_);

  std::vector<Hit> search(const StructuredQuery& query) const override
      TSDX_EXCLUDES(mutex_);

  /// Rank against a caller-supplied embedding vector (dim() floats). The
  /// vector surface exists so callers that already hold embeddings — the
  /// retrieval bench, recall evaluation — skip re-embedding per query.
  std::vector<Hit> search_vector(
      const std::vector<float>& query_vec, std::size_t k,
      const std::vector<SlotPredicate>& predicates = {}) const
      TSDX_EXCLUDES(mutex_);

  std::size_t size() const override TSDX_EXCLUDES(mutex_);
  std::size_t dim() const { return dim_; }
  const sdl::EmbeddingWeights& weights() const { return config_.weights; }
  std::size_t memory_bytes() const TSDX_EXCLUDES(mutex_);

 private:
  const FlatConfig config_;
  const std::size_t dim_;
  const std::shared_ptr<obs::Registry> registry_;  // never null
  obs::Counter& inserts_;
  obs::Counter& queries_;
  obs::Gauge& size_gauge_;
  obs::Histogram& scanned_rows_;

  mutable Mutex mutex_{"index.flat", lockorder::Rank::kIndex};
  VectorStore store_ TSDX_GUARDED_BY(mutex_);
};

}  // namespace tsdx::index
