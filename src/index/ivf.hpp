// ivf.hpp — approximate scenario index: inverted lists behind a k-means
// coarse quantizer (the classic IVF-flat design).
//
// Why it works here: Scenario2Vector embeddings are concatenated weighted
// one-hots, so the 1M-document space collapses onto a few hundred thousand
// distinct points with heavy duplication, and duplicates land in the *same*
// inverted list (quantization is a deterministic function of the vector).
// A query therefore finds its near-identical scenarios after probing a
// handful of lists — bench_i1_index measures recall@10 >= 0.9 at a >= 5x
// speedup over the flat scan (EXPERIMENTS.md R-I1).
//
// Lifecycle: inserts buffer into a flat `pending` store until `train_size`
// documents have arrived; the quantizer then trains on that buffer
// (spherical k-means, fixed iteration count, every random draw from one
// seeded Rng — two indexes built from the same stream are identical) and
// the buffer flushes into the lists. Searches before training scan the
// pending buffer exactly, so early results are never wrong, just slower —
// the right behavior for a server that starts streaming extractions into an
// empty index (ingest.hpp).
//
// `nprobe` is the recall/latency knob: how many inverted lists (nearest
// centroids first) a query scans. nprobe == nlist degenerates to the exact
// scan and is pinned bit-identical to FlatIndex in tests/index_test.cpp.
#pragma once

#include <memory>
#include <utility>
#include <vector>

#include "core/annotations.hpp"
#include "index/store.hpp"
#include "obs/metrics.hpp"
#include "sdl/embedding.hpp"

namespace tsdx::index {

/// Histogram bounds for inverted-lists-probed-per-query.
const std::vector<double>& probe_lists_buckets();

struct IvfConfig {
  /// Inverted lists (k-means centroids). More lists = finer partition =
  /// fewer rows scanned per probe, but a larger centroid scan per query.
  std::size_t nlist = 64;
  /// Lists scanned per query (nearest centroids first), clamped to nlist.
  std::size_t nprobe = 8;
  /// Documents buffered before the quantizer trains. Must be >= nlist.
  std::size_t train_size = 4096;
  /// Spherical k-means iterations (fixed count — no data-dependent early
  /// exit, so training cost and results are reproducible).
  std::size_t kmeans_iters = 8;
  /// Seed for centroid init and empty-cluster reseeding.
  std::uint64_t seed = 0x715dc5;
  /// Per-slot importance weights of the embedding (sdl/embedding.hpp).
  sdl::EmbeddingWeights weights{};
  /// Registry for index.* metrics. Null means obs::Registry::global().
  std::shared_ptr<obs::Registry> metrics;
};

class IvfIndex : public ScenarioIndexBackend {
 public:
  explicit IvfIndex(IvfConfig config = {});

  void insert(DocId id, const sdl::ScenarioDescription& d) override
      TSDX_EXCLUDES(mutex_);

  /// Bulk ingestion: embeds and quantizes the batch with a tsdx::par
  /// parallel pass (deterministic), then scatters into the lists under one
  /// lock acquisition. Equivalent to inserting one-by-one, only faster —
  /// pinned by tests/index_test.cpp.
  void insert_batch(
      const std::vector<std::pair<DocId, sdl::ScenarioDescription>>& docs)
      TSDX_EXCLUDES(mutex_);

  std::vector<Hit> search(const StructuredQuery& query) const override
      TSDX_EXCLUDES(mutex_);

  /// Rank against a caller-supplied embedding under the configured nprobe.
  std::vector<Hit> search_vector(
      const std::vector<float>& query_vec, std::size_t k,
      const std::vector<SlotPredicate>& predicates = {}) const
      TSDX_EXCLUDES(mutex_) {
    return search_vector(query_vec, k, predicates, config_.nprobe);
  }

  /// Same, with an explicit nprobe (the bench sweeps this knob).
  std::vector<Hit> search_vector(const std::vector<float>& query_vec,
                                 std::size_t k,
                                 const std::vector<SlotPredicate>& predicates,
                                 std::size_t nprobe) const
      TSDX_EXCLUDES(mutex_);

  std::size_t size() const override TSDX_EXCLUDES(mutex_);
  bool trained() const TSDX_EXCLUDES(mutex_);
  std::size_t dim() const { return dim_; }
  std::size_t nlist() const { return config_.nlist; }
  std::size_t nprobe() const { return config_.nprobe; }
  std::size_t memory_bytes() const TSDX_EXCLUDES(mutex_);

 private:
  /// Quantize: index of the centroid with the largest dot product (ties to
  /// the lower index). Centroids are unit-norm, so dot order == cosine
  /// order.
  std::size_t nearest_centroid_locked(const float* vec) const
      TSDX_REQUIRES(mutex_);
  /// Train the quantizer on the first train_size pending rows and flush the
  /// whole pending buffer into the lists.
  void train_locked() TSDX_REQUIRES(mutex_);
  std::size_t size_locked() const TSDX_REQUIRES(mutex_);

  const IvfConfig config_;
  const std::size_t dim_;
  const std::shared_ptr<obs::Registry> registry_;  // never null
  obs::Counter& inserts_;
  obs::Counter& queries_;
  obs::Gauge& size_gauge_;
  obs::Histogram& scanned_rows_;
  obs::Histogram& probed_lists_;

  mutable Mutex mutex_{"index.ivf", lockorder::Rank::kIndex};
  bool trained_ TSDX_GUARDED_BY(mutex_) = false;
  VectorStore pending_ TSDX_GUARDED_BY(mutex_);
  std::vector<float> centroids_ TSDX_GUARDED_BY(mutex_);  ///< nlist x dim
  std::vector<VectorStore> lists_ TSDX_GUARDED_BY(mutex_);
};

}  // namespace tsdx::index
