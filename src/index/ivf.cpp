#include "index/ivf.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "core/check.hpp"
#include "index/flat.hpp"  // scan_rows_buckets — shared metric bounds
#include "obs/trace.hpp"
#include "tensor/kernels/parallel_for.hpp"
#include "tensor/rng.hpp"

namespace tsdx::index {

namespace {

std::shared_ptr<obs::Registry> resolve_registry(
    const std::shared_ptr<obs::Registry>& configured) {
  if (configured != nullptr) return configured;
  return std::shared_ptr<obs::Registry>(std::shared_ptr<void>(),
                                        &obs::Registry::global());
}

float dot(const float* a, const float* b, std::size_t dim) {
  float sum = 0.0f;
  for (std::size_t i = 0; i < dim; ++i) sum += a[i] * b[i];
  return sum;
}

/// L2-normalize `dim` floats in place; leaves all-zero rows untouched (an
/// all-zero centroid can only arise from an all-zero cluster, which the
/// reseed path replaces anyway).
void normalize(float* v, std::size_t dim) {
  float norm_sq = 0.0f;
  for (std::size_t i = 0; i < dim; ++i) norm_sq += v[i] * v[i];
  if (norm_sq <= 0.0f) return;
  const float inv = 1.0f / std::sqrt(norm_sq);
  for (std::size_t i = 0; i < dim; ++i) v[i] *= inv;
}

/// Argmax-dot assignment of one vector against nlist unit-norm centroids,
/// ties to the lower centroid index. The single quantization rule used by
/// training, flushing, and inserts — a vector always lands in the same list.
std::size_t assign_one(const float* vec, const std::vector<float>& centroids,
                       std::size_t nlist, std::size_t dim) {
  std::size_t best = 0;
  float best_dot = dot(vec, centroids.data(), dim);
  for (std::size_t c = 1; c < nlist; ++c) {
    const float d = dot(vec, centroids.data() + c * dim, dim);
    if (d > best_dot) {
      best_dot = d;
      best = c;
    }
  }
  return best;
}

}  // namespace

const std::vector<double>& probe_lists_buckets() {
  static const std::vector<double> bounds = {1, 2, 4, 8, 16, 32, 64, 128, 256};
  return bounds;
}

IvfIndex::IvfIndex(IvfConfig config)
    : config_(std::move(config)),
      dim_(sdl::scenario_vector_dim()),
      registry_(resolve_registry(config_.metrics)),
      inserts_(registry_->counter("index.inserts")),
      queries_(registry_->counter("index.queries")),
      size_gauge_(registry_->gauge("index.size")),
      scanned_rows_(
          registry_->histogram("index.scanned_rows", scan_rows_buckets())),
      probed_lists_(
          registry_->histogram("index.probe_lists", probe_lists_buckets())),
      pending_(dim_) {
  TSDX_CHECK(config_.nlist >= 1, "IvfIndex: nlist must be >= 1, got ",
             config_.nlist);
  TSDX_CHECK(config_.nprobe >= 1, "IvfIndex: nprobe must be >= 1, got ",
             config_.nprobe);
  TSDX_CHECK(config_.train_size >= config_.nlist,
             "IvfIndex: train_size (", config_.train_size,
             ") must be >= nlist (", config_.nlist,
             ") — k-means needs at least one sample per centroid");
  TSDX_CHECK(config_.kmeans_iters >= 1,
             "IvfIndex: kmeans_iters must be >= 1, got ", config_.kmeans_iters);
}

std::size_t IvfIndex::nearest_centroid_locked(const float* vec) const {
  return assign_one(vec, centroids_, config_.nlist, dim_);
}

void IvfIndex::train_locked() {
  const std::size_t n = pending_.size();
  const std::size_t sample_n = std::min(n, config_.train_size);
  const std::size_t nlist = config_.nlist;

  // --- init: nlist distinct sample rows, chosen by partial Fisher-Yates so
  // the draw is a pure function of the seed.
  tensor::Rng rng(config_.seed);
  std::vector<std::size_t> perm(sample_n);
  std::iota(perm.begin(), perm.end(), std::size_t{0});
  for (std::size_t i = 0; i < nlist; ++i) {
    const std::size_t j = i + rng.uniform_index(sample_n - i);
    std::swap(perm[i], perm[j]);
  }
  centroids_.assign(nlist * dim_, 0.0f);
  for (std::size_t c = 0; c < nlist; ++c) {
    const float* row = pending_.vec(perm[c]);
    std::copy(row, row + dim_, centroids_.begin() + c * dim_);
    normalize(centroids_.data() + c * dim_, dim_);
  }

  // --- spherical k-means: assign by max dot (parallel, disjoint writes),
  // recompute means sequentially in row order (deterministic float sums),
  // renormalize, reseed empty clusters from the sample.
  std::vector<std::size_t> assign(sample_n, 0);
  const std::int64_t grain = par::suggest_grain(
      static_cast<std::int64_t>(sample_n),
      static_cast<std::int64_t>(2 * nlist * dim_));
  for (std::size_t iter = 0; iter < config_.kmeans_iters; ++iter) {
    par::parallel_for(static_cast<std::int64_t>(sample_n), grain,
                      [&](std::int64_t begin, std::int64_t end) {
                        for (std::int64_t row = begin; row < end; ++row) {
                          const std::size_t r = static_cast<std::size_t>(row);
                          assign[r] = assign_one(pending_.vec(r), centroids_,
                                                 nlist, dim_);
                        }
                      });
    std::vector<float> sums(nlist * dim_, 0.0f);
    std::vector<std::size_t> counts(nlist, 0);
    for (std::size_t r = 0; r < sample_n; ++r) {
      const float* row = pending_.vec(r);
      float* sum = sums.data() + assign[r] * dim_;
      for (std::size_t i = 0; i < dim_; ++i) sum[i] += row[i];
      ++counts[assign[r]];
    }
    for (std::size_t c = 0; c < nlist; ++c) {
      if (counts[c] == 0) {
        // Reseed from a deterministic draw so no list goes permanently dead.
        const float* row = pending_.vec(rng.uniform_index(sample_n));
        std::copy(row, row + dim_, centroids_.begin() + c * dim_);
      } else {
        const float inv = 1.0f / static_cast<float>(counts[c]);
        float* centroid = centroids_.data() + c * dim_;
        const float* sum = sums.data() + c * dim_;
        for (std::size_t i = 0; i < dim_; ++i) centroid[i] = sum[i] * inv;
      }
      normalize(centroids_.data() + c * dim_, dim_);
    }
  }

  // --- flush: quantize every pending row (parallel) and scatter into the
  // lists in row order.
  lists_.assign(nlist, VectorStore(dim_));
  std::vector<std::size_t> flush_assign(n, 0);
  par::parallel_for(static_cast<std::int64_t>(n), grain,
                    [&](std::int64_t begin, std::int64_t end) {
                      for (std::int64_t row = begin; row < end; ++row) {
                        const std::size_t r = static_cast<std::size_t>(row);
                        flush_assign[r] = assign_one(pending_.vec(r),
                                                     centroids_, nlist, dim_);
                      }
                    });
  for (std::size_t r = 0; r < n; ++r) {
    lists_[flush_assign[r]].append(pending_.id(r), pending_.vec(r),
                                   pending_.labels(r));
  }
  pending_ = VectorStore(dim_);
  trained_ = true;
}

void IvfIndex::insert(DocId id, const sdl::ScenarioDescription& d) {
  const std::vector<float> vec = sdl::scenario_to_vector(d, config_.weights);
  const PackedLabels labels = pack_labels(d);
  {
    LockGuard lock(mutex_);
    if (trained_) {
      lists_[nearest_centroid_locked(vec.data())].append(id, vec.data(),
                                                         labels);
    } else {
      pending_.append(id, vec.data(), labels);
      if (pending_.size() >= config_.train_size) train_locked();
    }
    size_gauge_.set(static_cast<std::int64_t>(size_locked()));
  }
  inserts_.inc();
}

void IvfIndex::insert_batch(
    const std::vector<std::pair<DocId, sdl::ScenarioDescription>>& docs) {
  const std::size_t n = docs.size();
  if (n == 0) return;
  // Embed outside the lock; embedding one doc is independent of the rest.
  std::vector<float> vecs(n * dim_);
  std::vector<PackedLabels> labels(n);
  const std::int64_t grain = par::suggest_grain(
      static_cast<std::int64_t>(n), static_cast<std::int64_t>(8 * dim_));
  par::parallel_for(static_cast<std::int64_t>(n), grain,
                    [&](std::int64_t begin, std::int64_t end) {
                      for (std::int64_t row = begin; row < end; ++row) {
                        const std::size_t r = static_cast<std::size_t>(row);
                        const std::vector<float> v = sdl::scenario_to_vector(
                            docs[r].second, config_.weights);
                        std::copy(v.begin(), v.end(),
                                  vecs.begin() + r * dim_);
                        labels[r] = pack_labels(docs[r].second);
                      }
                    });
  {
    LockGuard lock(mutex_);
    std::size_t next = 0;
    if (!trained_) {
      // Buffer until the training threshold, then train on what's there;
      // the remainder of the batch takes the trained path below.
      while (next < n && pending_.size() < config_.train_size) {
        pending_.append(docs[next].first, vecs.data() + next * dim_,
                        labels[next]);
        ++next;
      }
      if (pending_.size() >= config_.train_size) train_locked();
    }
    if (trained_ && next < n) {
      // Quantize the remainder in one parallel pass (reads centroids_ under
      // the lock — the par ranks sit above kIndex), scatter in row order.
      const std::size_t rest = n - next;
      std::vector<std::size_t> assign(rest, 0);
      const std::int64_t agrain = par::suggest_grain(
          static_cast<std::int64_t>(rest),
          static_cast<std::int64_t>(2 * config_.nlist * dim_));
      par::parallel_for(
          static_cast<std::int64_t>(rest), agrain,
          [&](std::int64_t begin, std::int64_t end) {
            for (std::int64_t row = begin; row < end; ++row) {
              const std::size_t r = static_cast<std::size_t>(row);
              assign[r] = assign_one(vecs.data() + (next + r) * dim_,
                                     centroids_, config_.nlist, dim_);
            }
          });
      for (std::size_t r = 0; r < rest; ++r) {
        lists_[assign[r]].append(docs[next + r].first,
                                 vecs.data() + (next + r) * dim_,
                                 labels[next + r]);
      }
    }
    size_gauge_.set(static_cast<std::int64_t>(size_locked()));
  }
  inserts_.inc(static_cast<std::uint64_t>(n));
}

std::vector<Hit> IvfIndex::search(const StructuredQuery& query) const {
  return search_vector(sdl::scenario_to_vector(query.like, config_.weights),
                       query.k, query.predicates, config_.nprobe);
}

std::vector<Hit> IvfIndex::search_vector(
    const std::vector<float>& query_vec, std::size_t k,
    const std::vector<SlotPredicate>& predicates, std::size_t nprobe) const {
  TSDX_CHECK(query_vec.size() == dim_, "IvfIndex: query vector has ",
             query_vec.size(), " dims, index has ", dim_);
  TSDX_CHECK(nprobe >= 1, "IvfIndex: nprobe must be >= 1, got ", nprobe);
  TSDX_TRACE_SPAN("index.ivf.query");
  queries_.inc();
  std::vector<Candidate> candidates;
  std::size_t scanned = 0;
  std::size_t probed = 0;
  {
    LockGuard lock(mutex_);
    if (!trained_) {
      // Before training everything lives in the flat pending buffer, so the
      // search is exact — slower per query, never wrong.
      scanned = pending_.size();
      scan_topk(pending_, query_vec.data(), k, predicates, candidates);
    } else {
      const std::size_t nlist = config_.nlist;
      probed = std::min(nprobe, nlist);
      // Rank centroids by (cosine desc, index asc) — the same strict-order
      // convention as document ranking, so probe order is deterministic.
      std::vector<Candidate> order(nlist);
      for (std::size_t c = 0; c < nlist; ++c) {
        order[c] = Candidate{
            exact_cosine(query_vec.data(), centroids_.data() + c * dim_, dim_),
            static_cast<DocId>(c)};
      }
      std::partial_sort(order.begin(),
                        order.begin() + static_cast<std::ptrdiff_t>(probed),
                        order.end(), better);
      for (std::size_t p = 0; p < probed; ++p) {
        const VectorStore& list = lists_[static_cast<std::size_t>(order[p].id)];
        scanned += list.size();
        scan_topk(list, query_vec.data(), k, predicates, candidates);
      }
    }
  }
  scanned_rows_.observe(static_cast<double>(scanned));
  probed_lists_.observe(static_cast<double>(probed));
  return finalize_topk(std::move(candidates), k);
}

std::size_t IvfIndex::size_locked() const {
  std::size_t total = pending_.size();
  for (const VectorStore& list : lists_) total += list.size();
  return total;
}

std::size_t IvfIndex::size() const {
  LockGuard lock(mutex_);
  return size_locked();
}

bool IvfIndex::trained() const {
  LockGuard lock(mutex_);
  return trained_;
}

std::size_t IvfIndex::memory_bytes() const {
  LockGuard lock(mutex_);
  std::size_t total =
      pending_.memory_bytes() + centroids_.capacity() * sizeof(float);
  for (const VectorStore& list : lists_) total += list.memory_bytes();
  return total;
}

}  // namespace tsdx::index
