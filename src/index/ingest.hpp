// ingest.hpp — bounded hand-off between the serving path and an index.
//
// The InferenceServer's on_result sink runs on worker threads, on the
// serving path, so it must cost next to nothing. IndexIngestor gives it a
// serve::BoundedQueue to push into and moves the actual index work —
// embedding, quantization, locked appends — onto one consumer thread
// (serve::ThreadPool, the sanctioned thread constructor). The queue's
// OverflowPolicy decides what a slow index does to a fast server: kBlock
// propagates backpressure into the workers (lossless), kShedOldest keeps
// the server fast and drops the oldest unindexed results (`dropped()`
// counts them — search results go stale-by-omission, the server does not
// slow down).
//
// Shutdown is a graceful drain: close() stops intake, the consumer pops
// the queue dry (BoundedQueue's close semantics), and join guarantees that
// everything pushed before close() is searchable after it. The destructor
// calls close(), so scope exit is a flush.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>

#include "index/types.hpp"
#include "serve/queue.hpp"
#include "serve/server.hpp"
#include "serve/thread_pool.hpp"

namespace tsdx::index {

struct IngestConfig {
  /// Bound on results accepted but not yet inserted into the index.
  std::size_t queue_capacity = 256;
  /// What a full queue does to the producer (see serve/queue.hpp). kReject
  /// is remapped to a drop-and-count here: throwing out of the server's
  /// completion sink would just be swallowed, so an explicit counter is the
  /// honest version of that policy.
  serve::OverflowPolicy overflow = serve::OverflowPolicy::kBlock;
};

/// Streams (DocId, ScenarioDescription) pairs into a ScenarioIndexBackend
/// through a bounded queue and a single consumer thread. The backend must
/// outlive the ingestor.
class IndexIngestor {
 public:
  IndexIngestor(ScenarioIndexBackend& backend, IngestConfig config = {});

  /// Flushes and stops (close()).
  ~IndexIngestor();

  IndexIngestor(const IndexIngestor&) = delete;
  IndexIngestor& operator=(const IndexIngestor&) = delete;

  /// Enqueue one document. Thread-safe. After close(), pushes are counted
  /// as dropped instead of throwing — a completion sink has no one to
  /// report an error to.
  void push(DocId id, const sdl::ScenarioDescription& d);

  /// Adapter for ServerConfig::on_result: uses CompletionInfo::sequence as
  /// the DocId, so ids reflect admission order no matter which worker
  /// finished first. Copies the description out of the callback (the
  /// CompletionInfo reference dies with the call).
  std::function<void(const serve::CompletionInfo&)> sink() {
    return [this](const serve::CompletionInfo& info) {
      push(info.sequence, info.result.description);
    };
  }

  /// Stop intake, drain the queue into the index, join the consumer.
  /// Everything pushed before close() is in the index when it returns.
  /// Idempotent.
  void close();

  /// Documents dropped instead of indexed: shed under kShedOldest, refused
  /// under a full kReject queue, or pushed after close().
  std::uint64_t dropped() const {
    return dropped_.load(std::memory_order_relaxed);
  }

 private:
  struct Item {
    DocId id;
    sdl::ScenarioDescription description;
  };

  void consumer_loop();

  ScenarioIndexBackend& backend_;
  serve::BoundedQueue<Item> queue_;
  serve::ThreadPool consumer_;
  std::atomic<bool> closed_{false};
  std::atomic<std::uint64_t> dropped_{0};
};

}  // namespace tsdx::index
