#include "index/types.hpp"

#include "core/check.hpp"

namespace tsdx::index {

PackedLabels pack_labels(const sdl::ScenarioDescription& d) {
  const sdl::SlotLabels labels = sdl::to_slot_labels(d);
  PackedLabels packed{};
  for (std::size_t s = 0; s < sdl::kNumSlots; ++s) {
    packed[s] = static_cast<std::uint8_t>(labels[s]);
  }
  return packed;
}

SlotPredicate SlotPredicate::equals(sdl::Slot slot, std::size_t cls) {
  TSDX_CHECK(cls < sdl::kSlotCardinality[static_cast<std::size_t>(slot)],
             "SlotPredicate: class ", cls, " out of range for slot ",
             sdl::to_string(slot));
  return SlotPredicate{slot, 1u << cls};
}

SlotPredicate SlotPredicate::any_of(sdl::Slot slot,
                                    std::initializer_list<std::size_t> classes) {
  SlotPredicate p{slot, 0};
  for (const std::size_t cls : classes) {
    TSDX_CHECK(cls < sdl::kSlotCardinality[static_cast<std::size_t>(slot)],
               "SlotPredicate: class ", cls, " out of range for slot ",
               sdl::to_string(slot));
    p.allowed |= 1u << cls;
  }
  return p;
}

bool matches_all(const std::vector<SlotPredicate>& predicates,
                 const PackedLabels& labels) {
  for (const SlotPredicate& p : predicates) {
    if (!p.matches(labels)) return false;
  }
  return true;
}

}  // namespace tsdx::index
