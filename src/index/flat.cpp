#include "index/flat.hpp"

#include "core/check.hpp"
#include "obs/trace.hpp"

namespace tsdx::index {

namespace {

std::shared_ptr<obs::Registry> resolve_registry(
    const std::shared_ptr<obs::Registry>& configured) {
  if (configured != nullptr) return configured;
  // Aliasing shared_ptr onto the process-lifetime global (same idiom as
  // InferenceServer): non-owning, keeps both cases uniform.
  return std::shared_ptr<obs::Registry>(std::shared_ptr<void>(),
                                        &obs::Registry::global());
}

}  // namespace

const std::vector<double>& scan_rows_buckets() {
  static const std::vector<double> bounds = {
      256, 1024, 4096, 16384, 65536, 262144, 1048576, 4194304};
  return bounds;
}

FlatIndex::FlatIndex(FlatConfig config)
    : config_(std::move(config)),
      dim_(sdl::scenario_vector_dim()),
      registry_(resolve_registry(config_.metrics)),
      inserts_(registry_->counter("index.inserts")),
      queries_(registry_->counter("index.queries")),
      size_gauge_(registry_->gauge("index.size")),
      scanned_rows_(
          registry_->histogram("index.scanned_rows", scan_rows_buckets())),
      store_(dim_) {}

void FlatIndex::insert(DocId id, const sdl::ScenarioDescription& d) {
  const std::vector<float> vec = sdl::scenario_to_vector(d, config_.weights);
  const PackedLabels labels = pack_labels(d);
  {
    LockGuard lock(mutex_);
    store_.append(id, vec.data(), labels);
    size_gauge_.set(static_cast<std::int64_t>(store_.size()));
  }
  inserts_.inc();
}

std::vector<Hit> FlatIndex::search(const StructuredQuery& query) const {
  return search_vector(sdl::scenario_to_vector(query.like, config_.weights),
                       query.k, query.predicates);
}

std::vector<Hit> FlatIndex::search_vector(
    const std::vector<float>& query_vec, std::size_t k,
    const std::vector<SlotPredicate>& predicates) const {
  TSDX_CHECK(query_vec.size() == dim_, "FlatIndex: query vector has ",
             query_vec.size(), " dims, index has ", dim_);
  TSDX_TRACE_SPAN("index.flat.query");
  queries_.inc();
  std::vector<Candidate> candidates;
  std::size_t scanned = 0;
  {
    LockGuard lock(mutex_);
    scanned = store_.size();
    scan_topk(store_, query_vec.data(), k, predicates, candidates);
  }
  scanned_rows_.observe(static_cast<double>(scanned));
  return finalize_topk(std::move(candidates), k);
}

std::size_t FlatIndex::size() const {
  LockGuard lock(mutex_);
  return store_.size();
}

std::size_t FlatIndex::memory_bytes() const {
  LockGuard lock(mutex_);
  return store_.memory_bytes();
}

}  // namespace tsdx::index
