#include "index/ingest.hpp"

#include "serve/error.hpp"

namespace tsdx::index {

IndexIngestor::IndexIngestor(ScenarioIndexBackend& backend,
                             IngestConfig config)
    : backend_(backend),
      queue_(config.queue_capacity, config.overflow) {
  consumer_.spawn(1, [this](std::size_t) { consumer_loop(); });
}

IndexIngestor::~IndexIngestor() { close(); }

void IndexIngestor::push(DocId id, const sdl::ScenarioDescription& d) {
  if (closed_.load(std::memory_order_acquire)) {
    dropped_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  try {
    if (queue_.push(Item{id, d})) {
      // kShedOldest evicted the oldest unindexed item to make room.
      dropped_.fetch_add(1, std::memory_order_relaxed);
    }
  } catch (const serve::QueueFullError&) {
    dropped_.fetch_add(1, std::memory_order_relaxed);
  } catch (const serve::ServerStoppedError&) {
    // close() raced this push; same outcome as the closed_ check above.
    dropped_.fetch_add(1, std::memory_order_relaxed);
  }
}

void IndexIngestor::close() {
  closed_.store(true, std::memory_order_release);
  queue_.close();
  consumer_.join();
}

void IndexIngestor::consumer_loop() {
  // pop() returns items until closed-and-empty (BoundedQueue's graceful
  // drain), so everything accepted before close() reaches the index.
  while (std::optional<Item> item = queue_.pop()) {
    backend_.insert(item->id, item->description);
  }
}

}  // namespace tsdx::index
