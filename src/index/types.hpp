// types.hpp — shared vocabulary of the scenario index subsystem.
//
// tsdx::index answers the paper's end-goal query shape ("find all videos
// where a pedestrian crosses at an intersection at night") over millions of
// extracted ScenarioDescriptions. A document is (DocId, embedding vector,
// packed slot labels); a query is a StructuredQuery — an example description
// to rank against (nearest-neighbor under the Scenario2Vector embedding,
// sdl/embedding.hpp) plus zero or more SlotPredicates that hard-filter the
// candidate set before ranking. Two backends implement it: FlatIndex (exact,
// brute-force, the recall ground truth) and IvfIndex (approximate, inverted
// lists behind a k-means coarse quantizer, the at-scale path); both push
// predicates into their scans instead of post-filtering.
#pragma once

#include <array>
#include <cstdint>
#include <initializer_list>
#include <vector>

#include "sdl/description.hpp"

namespace tsdx::index {

/// Caller-visible document handle. The ingestion path (ingest.hpp) assigns
/// them in server acceptance order; standalone users pick their own.
using DocId = std::uint64_t;

/// One byte per SDL slot: the class index of that slot, in sdl::Slot order.
/// 8 bytes per document — small enough to keep resident next to the vectors
/// so predicate filtering never touches the float data.
using PackedLabels = std::array<std::uint8_t, sdl::kNumSlots>;

PackedLabels pack_labels(const sdl::ScenarioDescription& d);

/// Hard filter on one SDL slot: the document's class must be in `allowed`
/// (a bitmask over the slot's classes; slot cardinalities are <= 8, well
/// within 32 bits).
struct SlotPredicate {
  sdl::Slot slot = sdl::Slot::kRoadLayout;
  std::uint32_t allowed = 0;

  /// slot == cls
  static SlotPredicate equals(sdl::Slot slot, std::size_t cls);
  /// slot ∈ classes
  static SlotPredicate any_of(sdl::Slot slot,
                              std::initializer_list<std::size_t> classes);

  bool matches(const PackedLabels& labels) const {
    return (allowed >> labels[static_cast<std::size_t>(slot)]) & 1u;
  }
};

/// AND of all predicates (an empty list matches everything).
bool matches_all(const std::vector<SlotPredicate>& predicates,
                 const PackedLabels& labels);

/// A structured search: rank by similarity to `like` among documents passing
/// every predicate. This is the Chat2Scenario-style query shape: categorical
/// constraints narrow the set, the embedding orders what remains.
struct StructuredQuery {
  sdl::ScenarioDescription like;
  std::vector<SlotPredicate> predicates;
  std::size_t k = 10;
};

/// One ranked answer. `score` is the exact cosine similarity between the
/// query vector and the stored vector (identical arithmetic to
/// sdl::cosine_similarity, so index results are bit-comparable with direct
/// embedding-space scans). Ties rank by ascending id, deterministically.
struct Hit {
  DocId id = 0;
  float score = 0.0f;
};

/// What both backends implement; the ingestion pipeline targets this.
class ScenarioIndexBackend {
 public:
  virtual ~ScenarioIndexBackend() = default;

  /// Thread-safe. DocIds are caller-chosen and not deduplicated.
  virtual void insert(DocId id, const sdl::ScenarioDescription& d) = 0;

  /// Thread-safe. Top-k by (score desc, id asc) among predicate matches.
  virtual std::vector<Hit> search(const StructuredQuery& query) const = 0;

  virtual std::size_t size() const = 0;
};

}  // namespace tsdx::index
