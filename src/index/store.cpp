#include "index/store.hpp"

#include <algorithm>
#include <cmath>

#include "core/check.hpp"
#include "tensor/kernels/parallel_for.hpp"

namespace tsdx::index {

float exact_cosine(const float* a, const float* b, std::size_t dim) {
  float dot = 0.0f, na = 0.0f, nb = 0.0f;
  for (std::size_t i = 0; i < dim; ++i) {
    dot += a[i] * b[i];
    na += a[i] * a[i];
    nb += b[i] * b[i];
  }
  const float denom = std::sqrt(na) * std::sqrt(nb);
  return denom > 0.0f ? dot / denom : 0.0f;
}

VectorStore::VectorStore(std::size_t dim) : dim_(dim) {
  TSDX_CHECK(dim_ >= 1, "VectorStore: dim must be >= 1, got ", dim_);
}

std::size_t VectorStore::append(DocId id, const float* vec,
                                const PackedLabels& labels) {
  data_.insert(data_.end(), vec, vec + dim_);
  ids_.push_back(id);
  labels_.push_back(labels);
  return ids_.size() - 1;
}

void VectorStore::reserve(std::size_t docs) {
  data_.reserve(docs * dim_);
  ids_.reserve(docs);
  labels_.reserve(docs);
}

std::size_t VectorStore::memory_bytes() const {
  return data_.capacity() * sizeof(float) + ids_.capacity() * sizeof(DocId) +
         labels_.capacity() * sizeof(PackedLabels);
}

std::size_t scan_topk(const VectorStore& store, const float* query,
                      std::size_t k,
                      const std::vector<SlotPredicate>& predicates,
                      std::vector<Candidate>& out) {
  const std::int64_t n = static_cast<std::int64_t>(store.size());
  if (n == 0 || k == 0) return 0;
  const std::size_t dim = store.dim();

  // Grain from the problem shape alone (the tsdx::par determinism
  // contract): ~3 multiply-adds per vector element plus the label check.
  const std::int64_t grain =
      par::suggest_grain(n, static_cast<std::int64_t>(4 * dim));
  const std::size_t chunks =
      static_cast<std::size_t>((n + grain - 1) / grain);
  std::vector<std::vector<Candidate>> chunk_top(chunks);
  std::vector<std::size_t> chunk_matched(chunks, 0);

  par::parallel_for(n, grain, [&](std::int64_t begin, std::int64_t end) {
    const std::size_t chunk = static_cast<std::size_t>(begin / grain);
    std::vector<Candidate> local;
    local.reserve(static_cast<std::size_t>(end - begin));
    for (std::int64_t row = begin; row < end; ++row) {
      const std::size_t r = static_cast<std::size_t>(row);
      if (!matches_all(predicates, store.labels(r))) continue;
      local.push_back(
          Candidate{exact_cosine(query, store.vec(r), dim), store.id(r)});
    }
    chunk_matched[chunk] = local.size();
    if (local.size() > k) {
      // The k best form a unique set under the strict total order `better`,
      // so nth_element's unspecified internal ordering cannot leak into the
      // (sorted-later) results.
      std::nth_element(local.begin(),
                       local.begin() + static_cast<std::ptrdiff_t>(k),
                       local.end(), better);
      local.resize(k);
    }
    chunk_top[chunk] = std::move(local);
  });

  std::size_t matched = 0;
  for (std::size_t c = 0; c < chunks; ++c) {
    matched += chunk_matched[c];
    out.insert(out.end(), chunk_top[c].begin(), chunk_top[c].end());
  }
  return matched;
}

std::vector<Hit> finalize_topk(std::vector<Candidate> candidates,
                               std::size_t k) {
  std::sort(candidates.begin(), candidates.end(), better);
  if (candidates.size() > k) candidates.resize(k);
  std::vector<Hit> hits;
  hits.reserve(candidates.size());
  for (const Candidate& c : candidates) hits.push_back(Hit{c.id, c.score});
  return hits;
}

}  // namespace tsdx::index
